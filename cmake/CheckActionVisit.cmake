# Compile-time proof that the visit_action exhaustiveness gate has teeth.
#
# Three probes are compiled against src/protocol/actions.h (pure C++ overload
# resolution — works under every compiler, unlike the clang-only TSA probes):
#   tests/static/action_visit_should_pass.cpp
#       one handler per Action alternative; MUST compile.
#   tests/static/action_visit_missing_should_fail.cpp
#       a handler is missing; MUST be rejected (std::visit exhaustiveness).
#   tests/static/action_visit_catchall_should_fail.cpp
#       a generic [](auto&) catch-all — the moral `default:` label; MUST be
#       rejected (visit_action's static_assert).
# A wrong outcome in either direction is a FATAL_ERROR: it means adding an
# Action alternative (e.g. for the multi-primary refactor) could silently
# fall through a dispatcher again.

try_compile(RDB_AV_PASS_OK
            ${CMAKE_BINARY_DIR}/action_visit_probe_pass
            ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/action_visit_should_pass.cpp
            COMPILE_DEFINITIONS "-I${CMAKE_CURRENT_SOURCE_DIR}/src"
            CXX_STANDARD 20
            CXX_STANDARD_REQUIRED ON
            OUTPUT_VARIABLE _rdb_av_pass_log)

try_compile(RDB_AV_MISSING_COMPILED
            ${CMAKE_BINARY_DIR}/action_visit_probe_missing
            ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/action_visit_missing_should_fail.cpp
            COMPILE_DEFINITIONS "-I${CMAKE_CURRENT_SOURCE_DIR}/src"
            CXX_STANDARD 20
            CXX_STANDARD_REQUIRED ON
            OUTPUT_VARIABLE _rdb_av_missing_log)

try_compile(RDB_AV_CATCHALL_COMPILED
            ${CMAKE_BINARY_DIR}/action_visit_probe_catchall
            ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/action_visit_catchall_should_fail.cpp
            COMPILE_DEFINITIONS "-I${CMAKE_CURRENT_SOURCE_DIR}/src"
            CXX_STANDARD 20
            CXX_STANDARD_REQUIRED ON
            OUTPUT_VARIABLE _rdb_av_catchall_log)

if(NOT RDB_AV_PASS_OK)
  message(FATAL_ERROR
          "action_visit_should_pass.cpp failed to compile — visit_action "
          "rejects a CORRECT exhaustive dispatcher:\n${_rdb_av_pass_log}")
endif()
if(RDB_AV_MISSING_COMPILED)
  message(FATAL_ERROR
          "action_visit_missing_should_fail.cpp COMPILED — std::visit no "
          "longer demands an exhaustive overload set; an Action alternative "
          "can silently fall through a dispatcher. The gate is dead.")
endif()
if(RDB_AV_CATCHALL_COMPILED)
  message(FATAL_ERROR
          "action_visit_catchall_should_fail.cpp COMPILED — visit_action "
          "accepts a generic catch-all handler (a silent default:). Check "
          "the NotAnAction static_assert in protocol/actions.h.")
endif()
message(STATUS
        "Action-visit probes OK: exhaustive dispatch compiles; a missing "
        "handler and a generic catch-all are both rejected")
