# Configure-time proof that the determinism-lint gate has teeth.
#
# scripts/check_determinism.py walks the call graph from RDB_DETERMINISTIC
# roots and rejects nondeterminism (clocks, RNG, env/locale, unordered-
# container iteration, ...). Here two fixtures are pushed through it in
# --fixture mode:
#   tests/static/det_should_pass.cpp — clean det-zone; MUST exit 0.
#   tests/static/det_should_fail.cpp — clock read one call BELOW the
#                                      annotated root; MUST be rejected
#                                      (proves the walk is transitive).
# A wrong outcome in either direction is a FATAL_ERROR: it means the lint
# silently stopped protecting the det-zone.
#
# The script needs only the python3 stdlib (libclang is optional — it falls
# back to its textual engine). Without a python3 interpreter the probes are
# skipped with a status message; the tree-wide lint then still runs through
# tools/detlint's built-in fallback scanner and scripts/check_static.sh.
#
# Also registers ctest entries so `ctest -R determinism` re-proves the gate
# (fixtures + the tree-wide walk) on every test run, not just at configure.

find_package(Python3 COMPONENTS Interpreter QUIET)
if(NOT Python3_Interpreter_FOUND)
  message(STATUS
          "Determinism probes skipped (no python3 interpreter found; "
          "tools/detlint falls back to its built-in token scan)")
  return()
endif()

set(_rdb_det_script ${CMAKE_CURRENT_SOURCE_DIR}/scripts/check_determinism.py)
set(_rdb_det_allowlist
    ${CMAKE_CURRENT_SOURCE_DIR}/scripts/determinism_allowlist.txt)

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${_rdb_det_script}
          --fixture ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/det_should_pass.cpp
          --allowlist ${_rdb_det_allowlist} -q
  RESULT_VARIABLE _rdb_det_pass_rc
  OUTPUT_VARIABLE _rdb_det_pass_log
  ERROR_VARIABLE _rdb_det_pass_log)

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${_rdb_det_script}
          --fixture ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/det_should_fail.cpp
          --allowlist ${_rdb_det_allowlist} -q
  RESULT_VARIABLE _rdb_det_fail_rc
  OUTPUT_VARIABLE _rdb_det_fail_log
  ERROR_VARIABLE _rdb_det_fail_log)

if(NOT _rdb_det_pass_rc EQUAL 0)
  message(FATAL_ERROR
          "det_should_pass.cpp was rejected (exit ${_rdb_det_pass_rc}) — the "
          "determinism lint flags CORRECT code:\n${_rdb_det_pass_log}")
endif()
if(_rdb_det_fail_rc EQUAL 0)
  message(FATAL_ERROR
          "det_should_fail.cpp PASSED — the determinism lint is not walking "
          "the call graph below RDB_DETERMINISTIC roots; the static gate is "
          "dead. Check scripts/check_determinism.py.")
endif()
if(_rdb_det_fail_rc EQUAL 2)
  message(FATAL_ERROR
          "determinism lint setup error on det_should_fail.cpp:"
          "\n${_rdb_det_fail_log}")
endif()
message(STATUS
        "Determinism probes OK: clean det-zone passes, hidden clock read "
        "one call below a root is rejected")

# ctest entries (the configure-time probes above already gate the build, but
# registering them keeps `ctest` output honest about what was checked).
add_test(NAME determinism_fixture_pass
         COMMAND ${Python3_EXECUTABLE} ${_rdb_det_script}
                 --fixture ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/det_should_pass.cpp
                 --allowlist ${_rdb_det_allowlist})
add_test(NAME determinism_fixture_fail
         COMMAND ${Python3_EXECUTABLE} ${_rdb_det_script}
                 --fixture ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/det_should_fail.cpp
                 --allowlist ${_rdb_det_allowlist})
set_tests_properties(determinism_fixture_fail PROPERTIES WILL_FAIL TRUE)
add_test(NAME determinism_tree_walk
         COMMAND ${Python3_EXECUTABLE} ${_rdb_det_script}
                 --repo ${CMAKE_CURRENT_SOURCE_DIR})
