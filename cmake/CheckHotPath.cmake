# Configure-time proof that the hot-path-lint gate has teeth.
#
# scripts/check_hotpath.py walks the call graph from RDB_HOT_PATH roots
# (engine handlers, serialization, the verify burst loop, transport sends)
# and rejects heap allocation, naked blocking, and per-send copy
# amplification. Here two fixtures are pushed through it in --fixture mode:
#   tests/static/hot_should_pass.cpp — clean RT-zone; MUST exit 0.
#   tests/static/hot_should_fail.cpp — naked `new` one call BELOW the
#                                      annotated root; MUST be rejected
#                                      (proves the walk is transitive).
# A wrong outcome in either direction is a FATAL_ERROR: it means the lint
# silently stopped protecting the consensus critical path.
#
# The script needs only the python3 stdlib. Without a python3 interpreter
# the probes are skipped with a status message; scripts/check_static.sh
# still runs the tree-wide lint in CI.
#
# Also registers ctest entries so `ctest -R hotpath` re-proves the gate
# (fixtures + the tree-wide walk) on every test run, not just at configure.

find_package(Python3 COMPONENTS Interpreter QUIET)
if(NOT Python3_Interpreter_FOUND)
  message(STATUS
          "Hot-path probes skipped (no python3 interpreter found; "
          "scripts/check_static.sh still runs the lint in CI)")
  return()
endif()

set(_rdb_hot_script ${CMAKE_CURRENT_SOURCE_DIR}/scripts/check_hotpath.py)
set(_rdb_hot_allowlist
    ${CMAKE_CURRENT_SOURCE_DIR}/scripts/hotpath_allowlist.txt)

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${_rdb_hot_script}
          --fixture ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/hot_should_pass.cpp
          --allowlist ${_rdb_hot_allowlist} -q
  RESULT_VARIABLE _rdb_hot_pass_rc
  OUTPUT_VARIABLE _rdb_hot_pass_log
  ERROR_VARIABLE _rdb_hot_pass_log)

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${_rdb_hot_script}
          --fixture ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/hot_should_fail.cpp
          --allowlist ${_rdb_hot_allowlist} -q
  RESULT_VARIABLE _rdb_hot_fail_rc
  OUTPUT_VARIABLE _rdb_hot_fail_log
  ERROR_VARIABLE _rdb_hot_fail_log)

if(NOT _rdb_hot_pass_rc EQUAL 0)
  message(FATAL_ERROR
          "hot_should_pass.cpp was rejected (exit ${_rdb_hot_pass_rc}) — the "
          "hot-path lint flags CORRECT code:\n${_rdb_hot_pass_log}")
endif()
if(_rdb_hot_fail_rc EQUAL 0)
  message(FATAL_ERROR
          "hot_should_fail.cpp PASSED — the hot-path lint is not walking "
          "the call graph below RDB_HOT_PATH roots; the static gate is "
          "dead. Check scripts/check_hotpath.py.")
endif()
if(_rdb_hot_fail_rc EQUAL 2)
  message(FATAL_ERROR
          "hot-path lint setup error on hot_should_fail.cpp:"
          "\n${_rdb_hot_fail_log}")
endif()
message(STATUS
        "Hot-path probes OK: clean RT-zone passes, hidden heap allocation "
        "one call below a root is rejected")

# ctest entries (the configure-time probes above already gate the build, but
# registering them keeps `ctest` output honest about what was checked).
add_test(NAME hotpath_fixture_pass
         COMMAND ${Python3_EXECUTABLE} ${_rdb_hot_script}
                 --fixture ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/hot_should_pass.cpp
                 --allowlist ${_rdb_hot_allowlist})
add_test(NAME hotpath_fixture_fail
         COMMAND ${Python3_EXECUTABLE} ${_rdb_hot_script}
                 --fixture ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/hot_should_fail.cpp
                 --allowlist ${_rdb_hot_allowlist})
set_tests_properties(hotpath_fixture_fail PROPERTIES WILL_FAIL TRUE)
add_test(NAME hotpath_tree_walk
         COMMAND ${Python3_EXECUTABLE} ${_rdb_hot_script}
                 --repo ${CMAKE_CURRENT_SOURCE_DIR})
