# Compile-time proof that the -Wthread-safety gate has teeth.
#
# Under clang, two probes are compiled against src/common/sync.h, both with
# -Wthread-safety -Werror=thread-safety:
#   tests/static/tsa_should_pass.cpp  — correct locking; MUST compile.
#   tests/static/tsa_should_fail.cpp  — touches a guarded field without the
#                                       lock; MUST be rejected.
# A wrong outcome in either direction is a FATAL_ERROR: it means the
# annotations (or the compiler flags) silently stopped protecting anything.
#
# Under GCC/MSVC the macros are no-ops, so both probes would compile and the
# check proves nothing — it is skipped with a status message.

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(STATUS
          "Thread-safety probes skipped (compiler is ${CMAKE_CXX_COMPILER_ID};"
          " the TSA gate only exists under clang)")
  return()
endif()

set(_rdb_saved_flags "${CMAKE_CXX_FLAGS}")
set(CMAKE_CXX_FLAGS
    "${CMAKE_CXX_FLAGS} -Wthread-safety -Werror=thread-safety")

try_compile(RDB_TSA_PASS_OK
            ${CMAKE_BINARY_DIR}/tsa_probe_pass
            ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/tsa_should_pass.cpp
            COMPILE_DEFINITIONS "-I${CMAKE_CURRENT_SOURCE_DIR}/src"
            CXX_STANDARD 20
            CXX_STANDARD_REQUIRED ON
            OUTPUT_VARIABLE _rdb_tsa_pass_log)

try_compile(RDB_TSA_FAIL_COMPILED
            ${CMAKE_BINARY_DIR}/tsa_probe_fail
            ${CMAKE_CURRENT_SOURCE_DIR}/tests/static/tsa_should_fail.cpp
            COMPILE_DEFINITIONS "-I${CMAKE_CURRENT_SOURCE_DIR}/src"
            CXX_STANDARD 20
            CXX_STANDARD_REQUIRED ON
            OUTPUT_VARIABLE _rdb_tsa_fail_log)

set(CMAKE_CXX_FLAGS "${_rdb_saved_flags}")

if(NOT RDB_TSA_PASS_OK)
  message(FATAL_ERROR
          "tsa_should_pass.cpp failed to compile — the thread-safety "
          "annotations reject CORRECT code:\n${_rdb_tsa_pass_log}")
endif()
if(RDB_TSA_FAIL_COMPILED)
  message(FATAL_ERROR
          "tsa_should_fail.cpp COMPILED — -Wthread-safety is not rejecting "
          "unguarded access to RDB_GUARDED_BY fields; the static gate is "
          "dead. Check the compiler flags and src/common/sync.h macros.")
endif()
message(STATUS
        "Thread-safety probes OK: guarded access compiles, unguarded access "
        "is rejected")
