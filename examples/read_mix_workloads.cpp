// YCSB workload mixes on the simulated fabric: the paper's evaluation is
// write-only (§5.1), but a deployed permissioned ledger also serves reads.
// This example runs YCSB-style A/B/C mixes end to end on the real runtime
// (reads return an FNV checksum over the values observed, so f+1 matching
// responses certify the reads saw identical replicated state), then sweeps
// the same mixes at evaluation scale on the simulated fabric.
#include <cstdio>

#include "api/resilientdb.h"

using namespace rdb;

int main() {
  std::printf("Part 1: read/write mixes on the real 4-replica runtime\n\n");
  struct Mix {
    const char* name;
    double read_fraction;
  };
  constexpr Mix kMixes[] = {
      {"update-heavy (YCSB-A-ish, 50% reads)", 0.5},
      {"read-heavy   (YCSB-B-ish, 95% reads)", 0.95},
      {"write-only   (paper §5.1)", 0.0},
  };

  for (const auto& mix : kMixes) {
    auto wl = std::make_shared<workload::YcsbWorkload>(
        workload::YcsbConfig{.record_count = 2'000,
                             .ops_per_txn = 4,
                             .read_fraction = mix.read_fraction});
    runtime::ClusterConfig cfg;
    cfg.replicas = 4;
    cfg.batch_size = 5;
    cfg.execute = [wl](const protocol::Transaction& t, storage::KvStore& s) {
      return wl->execute(t, s);
    };
    resilientdb::Cluster cluster(cfg);
    // Reads need populated records.
    for (ReplicaId r = 0; r < 4; ++r) wl->populate(cluster.replica(r).store());
    cluster.start();

    auto client = cluster.make_client(1);
    Rng rng(77);
    int committed = 0;
    for (int round = 0; round < 4; ++round) {
      std::vector<protocol::Transaction> burst;
      for (int i = 0; i < 5; ++i) {
        auto t = wl->make_transaction(rng, 1, 0);
        burst.push_back(client->make_transaction(t.payload, t.ops));
      }
      auto res = client->submit_and_wait(std::move(burst));
      if (res) committed += static_cast<int>(res->size());
    }
    cluster.wait_for_execution(cluster.replica(0).last_executed(),
                               std::chrono::seconds(5));
    bool agree = true;
    auto acc = cluster.replica(0).chain().accumulator();
    for (ReplicaId r = 1; r < 4; ++r)
      agree &= cluster.replica(r).chain().accumulator() == acc;
    std::printf("  %-42s %2d txns committed, replicas agree: %s\n", mix.name,
                committed, agree ? "YES" : "NO");
    cluster.stop();
  }

  std::printf(
      "\nPart 2: the same mixes at evaluation scale (simulated fabric,\n"
      "16 replicas, 20K clients) — reads are cheaper to execute, so\n"
      "read-heavy mixes push more operations through the same consensus:\n\n");
  std::printf("  %-14s %14s %14s\n", "mix", "txn/s", "ops/s");
  for (double rf : {0.0, 0.5, 0.95}) {
    simfab::FabricConfig cfg;
    cfg.replicas = 16;
    cfg.clients = 20'000;
    cfg.ops_per_txn = 4;
    cfg.warmup_ns = 600'000'000;
    cfg.measure_ns = 1'000'000'000;
    // The simulator charges storage cost per operation regardless of kind;
    // the mix matters for payload size (reads carry no value bytes).
    cfg.value_bytes = static_cast<std::uint32_t>(8 * (1.0 - rf));
    auto r = simfab::Fabric(cfg).run();
    std::printf("  %3.0f%% reads     %14.0f %14.0f\n", rf * 100,
                r.metrics.throughput_tps, r.metrics.ops_per_sec);
  }

  std::printf("\nread-mix example complete.\n");
  return 0;
}
