// Asset transfer: a domain-specific application on top of the fabric — the
// monetary-exchange workload the paper's introduction motivates. Accounts
// live in the replicated store; a transaction is a signed transfer between
// two accounts with application-level validation (no overdrafts), executed
// deterministically by every replica.
//
// Shows: a custom transaction codec + executor plugged into the public API
// (the fabric is workload-agnostic: YCSB is just the default), PageDB-backed
// persistence, and auditing the transfer history through the blockchain.
#include <cstdio>
#include <filesystem>
#include <string>

#include "api/resilientdb.h"

using namespace rdb;

namespace {

// --- application-level transaction codec ---

struct Transfer {
  std::uint32_t from{0};
  std::uint32_t to{0};
  std::uint64_t amount{0};
};

Bytes encode_transfer(const Transfer& t) {
  Writer w;
  w.u32(t.from);
  w.u32(t.to);
  w.u64(t.amount);
  return w.take();
}

std::optional<Transfer> decode_transfer(BytesView payload) {
  Reader r(payload);
  Transfer t;
  t.from = r.u32();
  t.to = r.u32();
  t.amount = r.u64();
  if (!r.done()) return std::nullopt;
  return t;
}

std::string account_key(std::uint32_t id) {
  return "acct" + std::to_string(id);
}

std::uint64_t read_balance(storage::KvStore& store, std::uint32_t id) {
  auto v = store.get(account_key(id));
  if (!v || v->size() != 8) return 0;
  std::uint64_t balance;
  std::memcpy(&balance, v->data(), 8);
  return balance;
}

void write_balance(storage::KvStore& store, std::uint32_t id,
                   std::uint64_t balance) {
  std::string v(8, '\0');
  std::memcpy(v.data(), &balance, 8);
  store.put(account_key(id), v);
}

// Deterministic executor: every replica applies the same validation and
// state change, so either all of them commit the transfer or none does.
constexpr std::uint64_t kOk = 1;
constexpr std::uint64_t kInsufficientFunds = 2;
constexpr std::uint64_t kMalformed = 3;

std::uint64_t execute_transfer(const protocol::Transaction& txn,
                               storage::KvStore& store) {
  auto t = decode_transfer(BytesView(txn.payload));
  if (!t) return kMalformed;
  std::uint64_t from_balance = read_balance(store, t->from);
  if (from_balance < t->amount) return kInsufficientFunds;
  write_balance(store, t->from, from_balance - t->amount);
  write_balance(store, t->to, read_balance(store, t->to) + t->amount);
  return kOk;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() / "rdb_asset_transfer";
  fs::remove_all(dir);
  fs::create_directories(dir);

  runtime::ClusterConfig config;
  config.replicas = 4;
  config.batch_size = 4;
  config.execute = execute_transfer;
  // Durable ledger state: each replica persists to its own PageDB file.
  config.make_store = [dir](ReplicaId r) -> std::unique_ptr<storage::KvStore> {
    storage::PageDbConfig pc;
    pc.path = (dir / ("bank-replica-" + std::to_string(r) + ".db")).string();
    return std::make_unique<storage::PageDb>(pc);
  };

  resilientdb::Cluster cluster(config);

  // Seed the genesis balances before the replicas start serving.
  for (ReplicaId r = 0; r < 4; ++r) {
    write_balance(cluster.replica(r).store(), 1, 1000);
    write_balance(cluster.replica(r).store(), 2, 500);
  }
  cluster.start();

  auto alice = cluster.make_client(1);
  std::printf("initial balances: acct1=1000, acct2=500\n\n");

  struct Attempt {
    Transfer t;
    const char* label;
  };
  const Attempt attempts[] = {
      {{1, 2, 300}, "acct1 -> acct2: 300"},
      {{2, 1, 50}, "acct2 -> acct1: 50"},
      {{2, 1, 100'000}, "acct2 -> acct1: 100000 (overdraft!)"},
      {{1, 2, 200}, "acct1 -> acct2: 200"},
  };

  for (const auto& [t, label] : attempts) {
    auto txn = alice->make_transaction(encode_transfer(t));
    auto results = alice->submit_and_wait({txn});
    if (!results) {
      std::printf("%-40s TIMEOUT\n", label);
      continue;
    }
    const char* verdict = (*results)[0] == kOk ? "committed"
                          : (*results)[0] == kInsufficientFunds
                              ? "rejected: insufficient funds"
                              : "rejected: malformed";
    std::printf("%-40s %s\n", label, verdict);
  }

  // Wait until every replica has executed everything the primary has.
  cluster.wait_for_execution(cluster.replica(0).last_executed(),
                             std::chrono::seconds(5));
  std::printf("\nfinal balances (replica 0): acct1=%llu acct2=%llu\n",
              static_cast<unsigned long long>(
                  read_balance(cluster.replica(0).store(), 1)),
              static_cast<unsigned long long>(
                  read_balance(cluster.replica(0).store(), 2)));

  // Audit trail: the blockchain records every batch with its certificate.
  const auto& chain = cluster.replica(0).chain();
  std::printf("audit: chain holds %llu blocks, commitment %.16s...\n",
              static_cast<unsigned long long>(chain.total_blocks()),
              to_hex(chain.accumulator()).c_str());

  // All replicas agree byte-for-byte.
  for (ReplicaId r = 1; r < 4; ++r) {
    if (cluster.replica(r).chain().accumulator() != chain.accumulator())
      std::printf("DIVERGENCE at replica %u!\n", r);
  }
  cluster.stop();
  fs::remove_all(dir);
  std::printf("asset transfer example complete.\n");
  return 0;
}
