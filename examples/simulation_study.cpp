// Simulation study: use the discrete-event fabric — the same engine code the
// threaded runtime runs, over simulated CPUs and network links — to answer a
// capacity-planning question in seconds of host time:
//
//   "We expect 20K clients. How many replicas can we afford before
//    throughput degrades, and what does one crashed backup cost us?"
//
// This is the programmatic face of the bench/ harness; see bench/fig*.cpp
// for the full paper-figure reproductions.
#include <cstdio>

#include "api/resilientdb.h"

using namespace rdb;
using namespace rdb::simfab;

int main() {
  std::printf("capacity study: PBFT, 20K clients, batch=100, standard "
              "pipeline (1 worker / 2 batch / 1 execute)\n\n");
  std::printf("%-10s %14s %14s %14s\n", "replicas", "txn/s", "latency(ms)",
              "p99(ms)");

  for (std::uint32_t n : {4u, 7u, 10u, 16u, 25u, 32u}) {
    FabricConfig cfg;
    cfg.replicas = n;
    cfg.clients = 20'000;
    cfg.warmup_ns = 600'000'000;
    cfg.measure_ns = 1'000'000'000;
    Fabric fabric(cfg);
    auto r = fabric.run();
    std::printf("%-10u %14.0f %14.1f %14.1f\n", n, r.metrics.throughput_tps,
                r.metrics.latency_avg_ms, r.metrics.latency_p99_ms);
  }

  std::printf("\none crashed backup at n = 16:\n");
  {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.clients = 20'000;
    cfg.failed_replicas = {5};
    cfg.warmup_ns = 600'000'000;
    cfg.measure_ns = 1'000'000'000;
    Fabric fabric(cfg);
    auto r = fabric.run();
    std::printf("  PBFT keeps committing: %.0f txn/s at %.1f ms "
                "(no view change: %llu)\n",
                r.metrics.throughput_tps, r.metrics.latency_avg_ms,
                static_cast<unsigned long long>(r.view_changes));
  }

  std::printf("\nwhere does the time go at n = 16? (thread saturation)\n");
  {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.clients = 20'000;
    cfg.warmup_ns = 600'000'000;
    cfg.measure_ns = 1'000'000'000;
    Fabric fabric(cfg);
    auto r = fabric.run();
    for (const auto& t : r.primary_threads) {
      if (t.percent < 1.0) continue;
      std::printf("  primary %-16s %5.1f%%\n", t.thread.c_str(), t.percent);
    }
  }

  std::printf("\nsimulation study complete.\n");
  return 0;
}
