// Fault tolerance walk-through: what f = 1 actually buys you.
//
//  Act 1  a backup replica is partitioned away — consensus keeps committing
//         (no PBFT phase needs more than 2f+1 of the 3f+1 replicas).
//  Act 2  the partition heals; the lagging backup catches up from the
//         still-flowing consensus messages.
//  Act 3  the PRIMARY is partitioned — backups time out on relayed client
//         requests, run a view change, elect replica 1, and resume.
#include <cstdio>

#include "api/resilientdb.h"

using namespace rdb;

namespace {

std::vector<protocol::Transaction> burst(runtime::Client& client,
                                         workload::YcsbWorkload& wl, Rng& rng,
                                         int count) {
  std::vector<protocol::Transaction> txns;
  for (int i = 0; i < count; ++i) {
    auto t = wl.make_transaction(rng, client.id(), 0);
    txns.push_back(client.make_transaction(t.payload, t.ops));
  }
  return txns;
}

}  // namespace

int main() {
  auto wl = std::make_shared<workload::YcsbWorkload>(
      workload::YcsbConfig{.record_count = 5'000});

  runtime::ClusterConfig config;
  config.replicas = 4;
  config.batch_size = 5;
  config.request_timeout_ns = 300'000'000;  // 300 ms view-change trigger
  config.execute = [wl](const protocol::Transaction& t,
                        storage::KvStore& s) { return wl->execute(t, s); };

  resilientdb::Cluster cluster(config);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(7);

  // --- Act 1: lose a backup ---
  std::printf("Act 1: partitioning backup replica 3...\n");
  cluster.transport().set_partitioned(Endpoint::replica(3), true);
  auto r1 = client->submit_and_wait(burst(*client, *wl, rng, 5));
  std::printf("  committed with a dead backup: %s\n",
              r1 ? "YES" : "NO (unexpected)");
  cluster.wait_for_execution(1, std::chrono::seconds(3), /*skip=*/{3});
  std::printf("  replica 3 executed: %llu batches (lagging, as expected)\n",
              static_cast<unsigned long long>(
                  cluster.replica(3).last_executed()));

  // --- Act 2: heal the partition ---
  std::printf("\nAct 2: healing the partition...\n");
  cluster.transport().set_partitioned(Endpoint::replica(3), false);
  auto r2 = client->submit_and_wait(burst(*client, *wl, rng, 5));
  std::printf("  next batch committed: %s\n", r2 ? "YES" : "NO");
  // Replica 3 sees the new consensus traffic, detects the gap below the
  // committed frontier, and fetches the batch it missed from f+1 peers
  // (catch-up state transfer).
  bool caught_up = cluster.wait_for_execution(2, std::chrono::seconds(8));
  std::printf("  replica 3 caught up via batch fetch: %s\n",
              caught_up ? "YES" : "NO");
  if (caught_up) {
    bool same = cluster.replica(3).chain().accumulator() ==
                cluster.replica(0).chain().accumulator();
    std::printf("  replica 3's chain matches replica 0's: %s\n",
                same ? "YES" : "NO");
  }

  // --- Act 3: lose the primary ---
  std::printf("\nAct 3: partitioning the PRIMARY (replica 0)...\n");
  cluster.transport().set_partitioned(Endpoint::replica(0), true);
  auto r3 = client->submit_and_wait(burst(*client, *wl, rng, 5));
  std::printf("  committed after view change: %s\n", r3 ? "YES" : "NO");
  std::printf("  new view at replicas 1..3: %llu %llu %llu (primary is now "
              "replica %llu)\n",
              static_cast<unsigned long long>(cluster.replica(1).view()),
              static_cast<unsigned long long>(cluster.replica(2).view()),
              static_cast<unsigned long long>(cluster.replica(3).view()),
              static_cast<unsigned long long>(cluster.replica(1).view() % 4));

  // Safety check: survivors agree on the common prefix of the history.
  // (Replica 3 is still behind on execution, so chain *lengths* differ —
  // agreement means no two replicas hold conflicting blocks.)
  SeqNum common = std::min(cluster.replica(1).chain().last_seq(),
                           cluster.replica(2).chain().last_seq());
  auto b1 = cluster.replica(1).chain().get(common);
  auto b2 = cluster.replica(2).chain().get(common);
  bool agree = b1 && b2 && b1->batch_digest == b2->batch_digest &&
               b1->view == b2->view;
  std::printf("  survivors agree on block %llu: %s\n",
              static_cast<unsigned long long>(common),
              agree ? "YES" : "NO");

  cluster.stop();
  std::printf("\nfault tolerance example complete.\n");
  return 0;
}
