// Quickstart: spin up a 4-replica permissioned blockchain in one process,
// submit transactions from a client, and inspect the resulting chain.
//
//   $ ./build/examples/quickstart
//
// What happens under the hood: the client digitally signs each transaction
// (ED25519-class scheme); the primary's input thread sequences them; batch
// threads verify + build + hash + sign Pre-prepares; PBFT's three phases run
// among the replicas (CMAC-authenticated); the execute threads apply the
// writes in order, append a block carrying the 2f+1-signature commit
// certificate, and answer the client, which waits for f+1 matching replies.
#include <cstdio>

#include "api/resilientdb.h"

using namespace rdb;

int main() {
  // 1. Describe the deployment: 4 replicas (tolerates f = 1 byzantine),
  //    batches of 5, a YCSB-style table of 10K records.
  auto workload = std::make_shared<workload::YcsbWorkload>(
      workload::YcsbConfig{.record_count = 10'000,
                           .zipf_theta = 0.9,
                           .ops_per_txn = 2,
                           .value_bytes = 16});

  runtime::ClusterConfig config;
  config.replicas = 4;
  config.batch_size = 5;
  config.execute = [workload](const protocol::Transaction& txn,
                              storage::KvStore& store) {
    return workload->execute(txn, store);
  };

  resilientdb::Cluster cluster(config);
  cluster.start();
  std::printf("cluster up: %u replicas, f = %u\n", cluster.size(),
              max_faulty(cluster.size()));

  // 2. A client submits a burst of transactions (client-side batching).
  auto client = cluster.make_client(/*id=*/1);
  Rng rng(2024);
  for (int round = 1; round <= 3; ++round) {
    std::vector<protocol::Transaction> burst;
    for (int i = 0; i < 5; ++i) {
      auto txn = workload->make_transaction(rng, client->id(), 0);
      burst.push_back(client->make_transaction(txn.payload, txn.ops));
    }
    auto results = client->submit_and_wait(std::move(burst));
    if (!results) {
      std::printf("round %d timed out!\n", round);
      return 1;
    }
    std::printf("round %d: %zu transactions committed\n", round,
                results->size());
  }

  // 3. Inspect the replicated state: every replica holds the same chain.
  cluster.wait_for_execution(3, std::chrono::seconds(5));
  std::printf("\nper-replica view of the ledger:\n");
  for (ReplicaId r = 0; r < cluster.size(); ++r) {
    const auto& chain = cluster.replica(r).chain();
    std::printf(
        "  replica %u: %llu blocks, commitment %.16s..., %llu records\n", r,
        static_cast<unsigned long long>(chain.total_blocks()),
        to_hex(chain.accumulator()).c_str(),
        static_cast<unsigned long long>(cluster.replica(r).store().size()));
  }

  // 4. Look inside a block: no previous-block hash — a commit certificate
  //    of 2f+1 signed Commit votes proves the order instead (§4.6).
  auto block = cluster.replica(0).chain().get(1);
  if (block) {
    std::printf("\nblock 1: seq=%llu view=%llu certificate votes=%zu\n",
                static_cast<unsigned long long>(block->seq),
                static_cast<unsigned long long>(block->view),
                block->certificate.size());
  }

  cluster.stop();
  std::printf("\nquickstart complete.\n");
  return 0;
}
