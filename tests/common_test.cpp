// Foundations: hex/bytes helpers, serialization, PRNG, statistics.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/compress.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/stats.h"
#include "common/types.h"

namespace rdb {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(BytesView(b)), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);
}

TEST(Bytes, MalformedHexReturnsEmpty) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // non-hex chars
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(BytesView(a), BytesView(b)));
  EXPECT_FALSE(ct_equal(BytesView(a), BytesView(c)));
  EXPECT_FALSE(ct_equal(BytesView(a), BytesView(b).subspan(1)));
}

TEST(Bytes, DigestZeroCheck) {
  Digest d;
  EXPECT_TRUE(d.is_zero());
  d.data[31] = 1;
  EXPECT_FALSE(d.is_zero());
}

TEST(Types, QuorumArithmetic) {
  EXPECT_EQ(max_faulty(4), 1u);
  EXPECT_EQ(max_faulty(7), 2u);
  EXPECT_EQ(max_faulty(16), 5u);
  EXPECT_EQ(max_faulty(32), 10u);
  EXPECT_EQ(prepare_quorum(4), 2u);
  EXPECT_EQ(commit_quorum(4), 3u);
  EXPECT_EQ(commit_quorum(16), 11u);
}

TEST(Types, EndpointEquality) {
  EXPECT_EQ(Endpoint::replica(1), Endpoint::replica(1));
  EXPECT_NE(Endpoint::replica(1), Endpoint::client(1));
  EXPECT_NE(Endpoint::replica(1), Endpoint::replica(2));
}

TEST(Serde, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  Reader r(BytesView(w.data()));
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.done());
}

TEST(Serde, BytesAndStrings) {
  Writer w;
  w.str("hello");
  w.bytes(BytesView());
  w.str("world");
  Reader r(BytesView(w.data()));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_EQ(r.str(), "world");
  EXPECT_TRUE(r.done());
}

TEST(Serde, DigestRoundTrip) {
  Digest d;
  for (int i = 0; i < 32; ++i) d.data[i] = static_cast<std::uint8_t>(i);
  Writer w;
  w.digest(d);
  Reader r(BytesView(w.data()));
  EXPECT_EQ(r.digest(), d);
}

TEST(Serde, TruncatedReadsAreSafe) {
  Writer w;
  w.u64(42);
  Bytes data = w.take();
  data.resize(3);  // truncate mid-scalar
  Reader r{BytesView(data)};
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Serde, HostileLengthPrefixRejected) {
  Writer w;
  w.u32(0xFFFFFFFF);  // claims 4 GiB of bytes follow
  Reader r(BytesView(w.data()));
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

// Any truncation point of a structured buffer must leave the reader !ok()
// or done(), never reading out of bounds (exercised under ASan in CI).
TEST(Serde, EveryTruncationPointHandled) {
  Writer w;
  w.u32(7);
  w.str("payload");
  w.u64(99);
  w.bytes(BytesView(w.data()).subspan(0, 5));
  Bytes full = w.take();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes part(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    Reader r{BytesView(part)};
    (void)r.u32();
    (void)r.str();
    (void)r.u64();
    (void)r.bytes();
    EXPECT_FALSE(r.done()) << "cut=" << cut;
  }
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i)
    if (a2.next() != c.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowCoversBuckets) {
  Rng rng(5);
  int counts[10] = {};
  for (int i = 0; i < 10'000; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 800);   // expect ~1000 each; catastrophic skew fails
    EXPECT_LT(c, 1200);
  }
}

TEST(Histogram, BasicPercentiles) {
  LatencyHistogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i * 1000);  // 1..1000us
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean_ns(), 500'500, 1000);
  // Log-bucketed: percentile is an upper bound within ~8%.
  EXPECT_NEAR(h.percentile_ns(50), 500'000, 50'000);
  EXPECT_NEAR(h.percentile_ns(99), 990'000, 100'000);
  EXPECT_EQ(h.min_ns(), 1000);
  EXPECT_EQ(h.max_ns(), 1'000'000);
}

TEST(Histogram, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.record(1000);
  b.record(2000);
  b.record(3000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min_ns(), 1000);
  EXPECT_EQ(a.max_ns(), 3000);
}

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(99), 0.0);
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.record(5000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Stats, FormatTps) {
  EXPECT_EQ(format_tps(123), "123");
  EXPECT_EQ(format_tps(1500), "1.5K");
  EXPECT_EQ(format_tps(2'000'000), "2.00M");
}

TEST(Stats, SaturationGauge) {
  SaturationGauge g;
  g.add_busy(500);
  EXPECT_DOUBLE_EQ(g.percent(1000), 50.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.percent(1000), 0.0);
}

TEST(Compress, RepetitiveInputShrinksAndRoundTrips) {
  // KV-image-shaped input: shared key prefixes, zero-padded values.
  Bytes in;
  for (int i = 0; i < 200; ++i) {
    std::string rec = "user" + std::to_string(4000 + i % 10);
    in.insert(in.end(), rec.begin(), rec.end());
    in.insert(in.end(), 24, 0);
  }
  Bytes z = lz_compress(BytesView(in));
  EXPECT_LT(z.size(), in.size() / 2);
  auto back = lz_decompress(BytesView(z), in.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, in);
}

TEST(Compress, RandomBytesRoundTrip) {
  Rng rng(77);
  Bytes in;
  for (int i = 0; i < 5000; ++i)
    in.push_back(static_cast<std::uint8_t>(rng.below(256)));
  Bytes z = lz_compress(BytesView(in));
  // Incompressible input may grow, but only by the control-byte overhead.
  EXPECT_LE(z.size(), in.size() + in.size() / 8 + 2);
  auto back = lz_decompress(BytesView(z), in.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, in);
}

TEST(Compress, EmptyRoundTrip) {
  Bytes z = lz_compress(BytesView{});
  auto back = lz_decompress(BytesView(z), 0);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Compress, DecompressEnforcesOutputCap) {
  Bytes in(1000, 0x42);
  Bytes z = lz_compress(BytesView(in));
  EXPECT_FALSE(lz_decompress(BytesView(z), 999).has_value());
  EXPECT_TRUE(lz_decompress(BytesView(z), 1000).has_value());
}

TEST(Compress, DecompressRejectsOutOfBoundsMatch) {
  // Control byte 0 = "8 matches"; first token points 5 bytes back into an
  // empty output. A hostile blob must get nullopt, not an OOB read.
  Bytes evil{0x00, 0x05, 0x00, 0x00};
  EXPECT_FALSE(lz_decompress(BytesView(evil), 1 << 20).has_value());
}

TEST(Compress, DecompressJunkNeverCrashes) {
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    Bytes junk;
    std::size_t len = rng.below(64);
    for (std::size_t i = 0; i < len; ++i)
      junk.push_back(static_cast<std::uint8_t>(rng.below(256)));
    auto out = lz_decompress(BytesView(junk), 4096);
    if (out.has_value()) {
      EXPECT_LE(out->size(), 4096u);
    }
  }
}

}  // namespace
}  // namespace rdb
