// Blockchain and block structure: genesis, append rules, commitment
// accumulator, pruning, serialization, certificate verification hook.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "ledger/block.h"
#include "ledger/blockchain.h"

namespace rdb::ledger {
namespace {

Block make_block(SeqNum seq, ViewId view = 0, std::uint64_t txns = 10) {
  Block b;
  b.seq = seq;
  b.view = view;
  b.batch_digest = crypto::sha256("batch-" + std::to_string(seq));
  b.txn_begin = (seq - 1) * txns + 1;
  b.txn_end = seq * txns + 1;
  b.certificate = {{0, Bytes{1, 2, 3}}, {1, Bytes{4, 5}}, {2, Bytes{6}}};
  return b;
}

TEST(Block, GenesisCarriesPrimaryHash) {
  Block g = Block::genesis();
  EXPECT_EQ(g.seq, 0u);
  EXPECT_EQ(g.batch_digest, crypto::sha256("genesis:primary=0"));
  EXPECT_TRUE(g.certificate.empty());
}

TEST(Block, SerializationRoundTrip) {
  Block b = make_block(7, 2);
  Writer w;
  b.serialize(w);
  Reader r(BytesView(w.data()));
  Block back = Block::deserialize(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(back, b);
}

TEST(Block, HostileCertificateCountRejected) {
  Block b = make_block(1);
  Writer w;
  b.serialize(w);
  Bytes wire = w.take();
  // Overwrite the certificate count (u32 at offset 64 = seq 8 + view 8 +
  // digest 32 + txn_begin 8 + txn_end 8) with a huge value.
  wire[64] = 0xFF;
  wire[65] = 0xFF;
  wire[66] = 0xFF;
  wire[67] = 0xFF;
  Reader r{BytesView(wire)};
  Block back = Block::deserialize(r);
  // Parsing must stop safely: either the reader flags the error or the
  // certificate is rejected, but we never allocate 4G entries.
  EXPECT_LT(back.certificate.size(), 100u);
}

TEST(Block, CanonicalBytesExcludeCertificate) {
  Block a = make_block(3);
  Block b = a;
  b.certificate = {{5, Bytes{9, 9, 9}}};  // different evidence set
  EXPECT_EQ(a.canonical_bytes(), b.canonical_bytes());
  b.view = 1;
  EXPECT_NE(a.canonical_bytes(), b.canonical_bytes());
}

TEST(Blockchain, StartsAtGenesis) {
  Blockchain chain;
  EXPECT_EQ(chain.last_seq(), 0u);
  EXPECT_EQ(chain.total_blocks(), 1u);
  ASSERT_TRUE(chain.get(0).has_value());
  EXPECT_EQ(chain.get(0)->seq, 0u);
}

TEST(Blockchain, AppendsInSequence) {
  Blockchain chain;
  EXPECT_TRUE(chain.append(make_block(1)));
  EXPECT_TRUE(chain.append(make_block(2)));
  EXPECT_EQ(chain.last_seq(), 2u);
  EXPECT_EQ(chain.total_blocks(), 3u);
}

TEST(Blockchain, RejectsGapsAndReplays) {
  Blockchain chain;
  EXPECT_TRUE(chain.append(make_block(1)));
  EXPECT_FALSE(chain.append(make_block(3)));  // gap
  EXPECT_FALSE(chain.append(make_block(1)));  // replay
  EXPECT_FALSE(chain.append(make_block(0)));  // genesis replay
  EXPECT_EQ(chain.last_seq(), 1u);
}

TEST(Blockchain, AccumulatorBindsHistory) {
  Blockchain a, b;
  for (SeqNum s = 1; s <= 5; ++s) {
    a.append(make_block(s));
    b.append(make_block(s));
  }
  EXPECT_EQ(a.accumulator(), b.accumulator());

  Blockchain c;
  for (SeqNum s = 1; s <= 5; ++s) {
    Block blk = make_block(s);
    if (s == 3) blk.batch_digest = crypto::sha256("tampered");
    c.append(std::move(blk));
  }
  EXPECT_NE(a.accumulator(), c.accumulator());
}

TEST(Blockchain, AccumulatorIgnoresCertificateDifferences) {
  // Two replicas collect different 2f+1 commit sets: same history, same
  // commitment (required for checkpoint agreement, §4.7).
  Blockchain a, b;
  Block blk_a = make_block(1);
  Block blk_b = make_block(1);
  blk_b.certificate = {{7, Bytes{42}}};
  a.append(std::move(blk_a));
  b.append(std::move(blk_b));
  EXPECT_EQ(a.accumulator(), b.accumulator());
}

TEST(Blockchain, PruneDiscardsOldBlocksKeepsCommitment) {
  Blockchain chain;
  for (SeqNum s = 1; s <= 10; ++s) chain.append(make_block(s));
  Digest acc = chain.accumulator();
  chain.prune_before(8);
  EXPECT_EQ(chain.retained(), 3u);  // blocks 8, 9, 10
  EXPECT_FALSE(chain.get(5).has_value());
  ASSERT_TRUE(chain.get(8).has_value());
  EXPECT_EQ(chain.accumulator(), acc);
  // The chain keeps extending normally after pruning.
  EXPECT_TRUE(chain.append(make_block(11)));
  EXPECT_EQ(chain.last_seq(), 11u);
}

TEST(Blockchain, PruneEverything) {
  Blockchain chain;
  for (SeqNum s = 1; s <= 3; ++s) chain.append(make_block(s));
  chain.prune_before(100);
  EXPECT_EQ(chain.retained(), 0u);
  EXPECT_TRUE(chain.append(make_block(4)));
}

TEST(Blockchain, VerifierGatesAppend) {
  Blockchain chain;
  chain.set_verifier([](const Block& b) { return b.certificate.size() >= 3; });
  Block good = make_block(1);
  EXPECT_TRUE(chain.append(good));
  Block bad = make_block(2);
  bad.certificate.clear();
  EXPECT_FALSE(chain.append(bad));
  EXPECT_EQ(chain.last_seq(), 1u);
}

TEST(Blockchain, ResetToRebasesOntoAnchor) {
  // Reference chain: record the accumulator at seq 4, then extend to 6.
  Blockchain ref;
  for (SeqNum s = 1; s <= 4; ++s) ref.append(make_block(s));
  Digest anchor = ref.accumulator();
  for (SeqNum s = 5; s <= 6; ++s) ref.append(make_block(s));

  // A recovering replica adopts the anchor and replays only the tail. The
  // rebased chain must land on the exact same commitment.
  Blockchain re;
  re.append(make_block(1));  // pre-crash junk, discarded by reset_to
  re.reset_to(4, anchor);
  EXPECT_EQ(re.last_seq(), 4u);
  EXPECT_EQ(re.accumulator(), anchor);
  EXPECT_FALSE(re.get(4).has_value());  // anchored history is absent, not held
  EXPECT_FALSE(re.append(make_block(4)));  // replay below the anchor
  EXPECT_FALSE(re.append(make_block(6)));  // gap above the anchor
  EXPECT_TRUE(re.append(make_block(5)));
  EXPECT_TRUE(re.append(make_block(6)));
  EXPECT_EQ(re.last_seq(), ref.last_seq());
  EXPECT_EQ(re.accumulator(), ref.accumulator());
}

TEST(Blockchain, GetOutOfRange) {
  Blockchain chain;
  chain.append(make_block(1));
  EXPECT_FALSE(chain.get(2).has_value());
  EXPECT_TRUE(chain.get(1).has_value());
}

}  // namespace
}  // namespace rdb::ledger
