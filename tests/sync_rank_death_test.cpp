// Death tests for the lock-rank deadlock detector (src/common/sync.h §3).
//
// This binary is compiled with -DRDB_LOCK_RANK_FORCE (see
// tests/CMakeLists.txt), so the detector is active even in release
// configurations — the tier-1 suite exercises the ABORT paths regardless of
// CMAKE_BUILD_TYPE. It links ONLY GTest + Threads: no repo library is
// pulled in, so the forced detector cannot collide with the library's
// NDEBUG-configured inline functions (ODR hygiene).
#include "common/sync.h"

#include <gtest/gtest.h>

namespace rdb {
namespace {

static_assert(RDB_LOCK_RANK_CHECKS == 1,
              "death test must be compiled with -DRDB_LOCK_RANK_FORCE");

TEST(LockRankDeath, RankInversionAborts) {
  // A classic AB/BA deadlock shape: this thread takes B (low) then A
  // (high). The detector aborts on the SECOND acquisition — before
  // blocking — naming the violated rule.
  Mutex a(LockRank::kReplicaEngine, "death.A");  // rank 720
  Mutex b(LockRank::kQueue, "death.B");          // rank 200
  EXPECT_DEATH(
      {
        MutexLock lb(b);
        MutexLock la(a);  // 200 held, acquiring 720: inversion
      },
      "LOCK RANK VIOLATION.*rank inversion");
}

TEST(LockRankDeath, EqualRankNestingAborts) {
  // Two mutexes sharing one rank may never nest (no order is defined
  // between them, so an AB/BA cycle is one interleaving away).
  Mutex a(LockRank::kStorage, "death.eq_a");
  Mutex b(LockRank::kStorage, "death.eq_b");
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);
      },
      "LOCK RANK VIOLATION");
}

TEST(LockRankDeath, RecursiveAcquisitionAborts) {
  Mutex mu(LockRank::kStorage, "death.recursive");
  EXPECT_DEATH(
      {
        mu.lock();
        mu.lock();  // self-deadlock: caught before blocking forever
      },
      "LOCK RANK VIOLATION.*recursive acquisition");
}

TEST(LockRankDeath, ReportNamesHeldLocks) {
  // The abort report must list the held stack so the cycle is debuggable.
  Mutex outer(LockRank::kClient, "death.held_outer");
  Mutex inner(LockRank::kLedgerChain, "death.acquired_inner");
  EXPECT_DEATH(
      {
        MutexLock lo(outer);
        MutexLock li(inner);  // 600 held, acquiring 700: inversion
      },
      "death\\.held_outer");
}

TEST(LockRankDeath, DecreasingRanksDoNotAbort) {
  // Sanity: the legal direction stays silent (guards against a detector
  // that aborts on everything).
  Mutex outer(LockRank::kReplicaEngine, "death.ok_outer");
  Mutex mid(LockRank::kStorage, "death.ok_mid");
  Mutex leaf(LockRank::kLogging, "death.ok_leaf");
  MutexLock lo(outer);
  MutexLock lm(mid);
  MutexLock ll(leaf);
  SUCCEED();
}

}  // namespace
}  // namespace rdb
