// Hot-path-lint probe: MUST be rejected (cmake/CheckHotPath.cmake).
//
// The banned token is NOT in the annotated function itself — the heap
// allocation hides one call away, so this probe proves the gate walks the
// call graph instead of only pattern-matching annotated bodies. A naked
// `new` reachable from an RDB_HOT_PATH root is exactly the per-message
// malloc the §4.8 pooling discipline exists to eliminate. If this file
// passes, the gate is dead.
#include <cstddef>
#include <cstdint>

#include "common/rtzone.h"

namespace rdb::hotprobe {

inline std::uint64_t* leaky_helper(std::size_t n) {
  // Banned: per-call heap allocation on the consensus critical path.
  return new std::uint64_t[n];
}

RDB_HOT_PATH std::uint64_t hot_root(std::size_t n) {
  std::uint64_t* scratch = leaky_helper(n);
  std::uint64_t acc = scratch[0];
  delete[] scratch;
  return acc;
}

}  // namespace rdb::hotprobe
