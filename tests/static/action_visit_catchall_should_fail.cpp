// Probe: a visit_action overload set with a GENERIC CATCH-ALL must NOT
// compile. Compiled by cmake/CheckActionVisit.cmake at configure time; the
// [](auto&) handler below is the moral equivalent of a `default:` label —
// it would make the missing-alternative probe useless by swallowing any
// Action added later. The static_assert in visit_action rejects it.
#include "protocol/actions.h"

using namespace rdb::protocol;

int dispatch(Action& action) {
  int kind = -1;
  visit_action(
      action,
      [&](SendAction&) { kind = 0; },
      [&](BroadcastAction&) { kind = 1; },
      [&](auto&) { kind = 99; });  // silent default: — must be rejected
  return kind;
}

int main() {
  Action a = SetTimerAction{7, 1000};
  return dispatch(a);
}
