// Probe: an exhaustive visit_action overload set MUST compile.
// Compiled by cmake/CheckActionVisit.cmake at configure time; if this file
// stops compiling, the dispatch idiom rejects CORRECT code and every fabric
// breaks with it.
#include "protocol/actions.h"

using namespace rdb::protocol;

int dispatch(Action& action) {
  int kind = -1;
  visit_action(
      action,
      [&](SendAction&) { kind = 0; },
      [&](BroadcastAction&) { kind = 1; },
      [&](ExecuteAction&) { kind = 2; },
      [&](SetTimerAction&) { kind = 3; },
      [&](CancelTimerAction&) { kind = 4; },
      [&](StableCheckpointAction&) { kind = 5; },
      [&](ViewChangedAction&) { kind = 6; },
      [&](RequestSnapshotAction&) { kind = 7; },
      [&](ExecDivergenceAction&) { kind = 8; });
  return kind;
}

int main() {
  Action a = SetTimerAction{7, 1000};
  return dispatch(a) == 3 ? 0 : 1;
}
