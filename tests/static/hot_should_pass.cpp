// Hot-path-lint probe: MUST pass (cmake/CheckHotPath.cmake).
//
// An RT-zone root whose entire (transitive) call graph is allocation- and
// blocking-free: arithmetic over a caller-provided scratch buffer, exactly
// the shape the steady-state pipeline stages are held to. If the gate
// rejects this file, the lint flags CORRECT code and has gone bad.
#include <cstddef>
#include <cstdint>

#include "common/rtzone.h"

namespace rdb::hotprobe {

inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  return x ^ (x >> 29);
}

inline std::uint64_t fill_scratch(std::uint64_t* scratch, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scratch[i] = mix(acc + i);  // reuses preallocated storage: no heap
    acc += scratch[i];
  }
  return acc;
}

RDB_HOT_PATH std::uint64_t hot_root(std::uint64_t* scratch, std::size_t n) {
  return fill_scratch(scratch, n);
}

}  // namespace rdb::hotprobe
