// Determinism-lint probe: MUST be rejected (cmake/CheckDeterminism.cmake).
//
// The banned token is NOT in the annotated function itself — it hides one
// call away, so this probe proves the gate walks the call graph instead of
// only pattern-matching annotated bodies. A clock read reachable from an
// RDB_DETERMINISTIC root is exactly the bug class that forks replica state
// in production. If this file passes, the gate is dead.
#include <chrono>

#include "common/det.h"

namespace rdb::detprobe {

long leaky_helper() {
  // Banned: wall/steady time differs across replicas.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

RDB_DETERMINISTIC long det_root() { return leaky_helper(); }

}  // namespace rdb::detprobe
