// Compile-SHOULD-PASS probe for the -Wthread-safety gate
// (cmake/CheckThreadSafety.cmake). Exercises the full annotation
// vocabulary correctly; if this file fails to compile under clang with
// -Werror=thread-safety, the annotations are rejecting correct code.
#include "common/sync.h"

namespace {

class Counter {
 public:
  void increment() RDB_EXCLUDES(mu_) {
    rdb::MutexLock lock(mu_);
    ++value_;
  }

  int get() RDB_EXCLUDES(mu_) {
    rdb::MutexLock lock(mu_);
    return value_;
  }

  void add_locked(int delta) RDB_REQUIRES(mu_) { value_ += delta; }

  void add_twice() RDB_EXCLUDES(mu_) {
    rdb::MutexLock lock(mu_);
    add_locked(1);
    add_locked(1);
  }

 private:
  rdb::Mutex mu_;
  int value_ RDB_GUARDED_BY(mu_) = 0;
};

class SharedCounter {
 public:
  int read() RDB_EXCLUDES(mu_) {
    rdb::ReaderLock lock(mu_);
    return value_;
  }

  void write(int v) RDB_EXCLUDES(mu_) {
    rdb::WriterLock lock(mu_);
    value_ = v;
  }

 private:
  rdb::SharedMutex mu_;
  int value_ RDB_GUARDED_BY(mu_) = 0;
};

class Waiter {
 public:
  void produce() RDB_EXCLUDES(mu_) {
    {
      rdb::MutexLock lock(mu_);
      ready_ = true;
    }
    cv_.notify_all();
  }

  void consume() RDB_EXCLUDES(mu_) {
    rdb::MutexLock lock(mu_);
    while (!ready_) cv_.wait(mu_);
    ready_ = false;
  }

 private:
  rdb::Mutex mu_;
  rdb::CondVar cv_;
  bool ready_ RDB_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Counter c;
  c.increment();
  c.add_twice();
  SharedCounter s;
  s.write(c.get());
  Waiter w;
  w.produce();
  w.consume();
  return s.read() == 0 ? 1 : 0;
}
