// Determinism-lint probe: MUST pass (cmake/CheckDeterminism.cmake).
//
// A det-zone root whose entire (transitive) call graph is clean — pure
// arithmetic, no clocks, no RNG, no unordered iteration. If the gate
// rejects this file, the lint flags CORRECT code and has gone bad.
#include "common/det.h"

namespace rdb::detprobe {

int pure_helper(int x) { return x * 2 + 1; }

int deeper_helper(int x) { return pure_helper(x) - 4; }

RDB_DETERMINISTIC int det_root(int x) { return deeper_helper(x) + 3; }

}  // namespace rdb::detprobe
