// Probe: a visit_action overload set MISSING an alternative must NOT
// compile. Compiled by cmake/CheckActionVisit.cmake at configure time; if
// this file ever compiles, std::visit stopped demanding exhaustiveness and
// adding an Action could silently fall through a dispatcher — the exact
// hazard the idiom exists to prevent.
//
// (ExecDivergenceAction's handler is deliberately absent.)
#include "protocol/actions.h"

using namespace rdb::protocol;

int dispatch(Action& action) {
  int kind = -1;
  visit_action(
      action,
      [&](SendAction&) { kind = 0; },
      [&](BroadcastAction&) { kind = 1; },
      [&](ExecuteAction&) { kind = 2; },
      [&](SetTimerAction&) { kind = 3; },
      [&](CancelTimerAction&) { kind = 4; },
      [&](StableCheckpointAction&) { kind = 5; },
      [&](ViewChangedAction&) { kind = 6; },
      [&](RequestSnapshotAction&) { kind = 7; });
  return kind;
}

int main() {
  Action a = SetTimerAction{7, 1000};
  return dispatch(a);
}
