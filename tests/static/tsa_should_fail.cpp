// Compile-SHOULD-FAIL probe for the -Wthread-safety gate
// (cmake/CheckThreadSafety.cmake). Touches an RDB_GUARDED_BY field without
// holding its mutex; under clang with -Werror=thread-safety this file MUST
// NOT compile. If it ever does, the static gate is dead.
#include "common/sync.h"

namespace {

class Broken {
 public:
  // BUG (deliberate): writes value_ without taking mu_.
  void increment_unlocked() { ++value_; }

 private:
  rdb::Mutex mu_;
  int value_ RDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Broken b;
  b.increment_unlocked();
  return 0;
}
