// Robustness bank: hostile bytes on the wire, byzantine-silent replicas,
// durability flags — the unglamorous paths a production system must survive.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>

#include "runtime/cluster.h"
#include "runtime/tcp_transport.h"
#include "storage/page_db.h"
#include "workload/ycsb.h"

namespace rdb::runtime {
namespace {

namespace fs = std::filesystem;

int connect_raw(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(Robustness, TcpTransportSurvivesHostileFrames) {
  TcpTransport t(Endpoint::replica(0), 0);
  auto inbox = std::make_shared<Transport::Inbox>();
  t.register_endpoint(Endpoint::replica(0), inbox);

  // Frame claiming 4 GiB follows: connection must be cut, process must live.
  {
    int fd = connect_raw(t.port());
    ASSERT_GE(fd, 0);
    std::uint32_t huge = 0xFFFFFFFF;
    ::send(fd, &huge, 4, MSG_NOSIGNAL);
    ::close(fd);
  }
  // Zero-length frame: also invalid.
  {
    int fd = connect_raw(t.port());
    ASSERT_GE(fd, 0);
    std::uint32_t zero = 0;
    ::send(fd, &zero, 4, MSG_NOSIGNAL);
    ::close(fd);
  }
  // Truncated frame (length says 100, sends 3 bytes, disconnects).
  {
    int fd = connect_raw(t.port());
    ASSERT_GE(fd, 0);
    std::uint32_t len = 100;
    ::send(fd, &len, 4, MSG_NOSIGNAL);
    ::send(fd, "abc", 3, MSG_NOSIGNAL);
    ::close(fd);
  }

  // The transport still works for a legitimate peer afterwards.
  TcpTransport peer(Endpoint::replica(1), 0);
  peer.add_peer(Endpoint::replica(0), {"127.0.0.1", t.port()});
  protocol::Message m;
  m.from = Endpoint::replica(1);
  m.payload = protocol::Prepare{};
  peer.send(Endpoint::replica(0), m);
  auto wire = inbox->pop_for(std::chrono::seconds(5));
  ASSERT_TRUE(wire.has_value());
  EXPECT_TRUE(protocol::Message::parse(BytesView(*wire)).has_value());
  peer.stop();
  t.stop();
}

TEST(Robustness, GarbageBytesThroughInprocTransportIgnored) {
  // Raw junk pushed into a replica's inbox must be dropped by the parser,
  // not crash any pipeline thread.
  auto wl = std::make_shared<workload::YcsbWorkload>(
      workload::YcsbConfig{.record_count = 500});
  ClusterConfig cfg;
  cfg.replicas = 4;
  cfg.batch_size = 5;
  cfg.execute = [wl](const protocol::Transaction& t, storage::KvStore& s) {
    return wl->execute(t, s);
  };
  LocalCluster cluster(cfg);
  cluster.start();

  // Inject junk by sending messages whose signature bytes are garbage and
  // truncated payload variants via a raw inbox push path: simplest hostile
  // input is a "message" that fails to parse.
  auto client = cluster.make_client(1);
  Rng rng(3);
  protocol::Message junk;
  junk.from = Endpoint::client(1);
  protocol::ClientRequest req;
  protocol::Transaction t;
  t.client = 1;
  t.req_id = 1;
  t.payload = Bytes(50, 0xEE);
  t.client_sig = Bytes(3, 0x01);  // wrong size and wrong scheme
  req.txns = {t};
  junk.payload = req;
  cluster.transport().send(Endpoint::replica(0), junk);

  // Legitimate traffic still commits afterwards.
  std::vector<protocol::Transaction> burst;
  for (int i = 0; i < 5; ++i) {
    auto txn = wl->make_transaction(rng, 1, 0);
    burst.push_back(client->make_transaction(txn.payload, txn.ops));
  }
  auto res = client->submit_and_wait(std::move(burst));
  ASSERT_TRUE(res.has_value());
  EXPECT_GE(cluster.replica(0).stats().invalid_signatures, 1u);
  cluster.stop();
}

TEST(Robustness, ByzantineSilentBackupPhasesTolerated) {
  // A backup that swallows all Prepare messages (drop hook) is
  // indistinguishable from a byzantine-silent participant in that phase;
  // with f = 1 the other three replicas still commit.
  auto wl = std::make_shared<workload::YcsbWorkload>(
      workload::YcsbConfig{.record_count = 500});
  ClusterConfig cfg;
  cfg.replicas = 4;
  cfg.batch_size = 5;
  cfg.execute = [wl](const protocol::Transaction& t, storage::KvStore& s) {
    return wl->execute(t, s);
  };
  LocalCluster cluster(cfg);
  cluster.start();
  cluster.replica(3).drop_messages(protocol::MsgType::kPrepare, true);

  auto client = cluster.make_client(1);
  Rng rng(4);
  std::vector<protocol::Transaction> burst;
  for (int i = 0; i < 5; ++i) {
    auto txn = wl->make_transaction(rng, 1, 0);
    burst.push_back(client->make_transaction(txn.payload, txn.ops));
  }
  auto res = client->submit_and_wait(std::move(burst));
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(
      cluster.wait_for_execution(1, std::chrono::seconds(5), /*skip=*/{3}));

  // Un-drop: replica 3 commits later batches again.
  cluster.replica(3).drop_messages(protocol::MsgType::kPrepare, false);
  std::vector<protocol::Transaction> burst2;
  for (int i = 0; i < 5; ++i) {
    auto txn = wl->make_transaction(rng, 1, 0);
    burst2.push_back(client->make_transaction(txn.payload, txn.ops));
  }
  ASSERT_TRUE(client->submit_and_wait(std::move(burst2)).has_value());
  cluster.stop();
}

}  // namespace
}  // namespace rdb::runtime

namespace rdb::storage {
namespace {

namespace fs = std::filesystem;

TEST(Robustness, PageDbSyncWalMode) {
  auto dir = fs::temp_directory_path() / "rdb_syncwal";
  fs::remove_all(dir);
  fs::create_directories(dir);
  PageDbConfig cfg;
  cfg.path = (dir / "db").string();
  cfg.sync_wal = true;  // fsync every WAL append
  {
    PageDb db(cfg);
    for (int i = 0; i < 50; ++i)
      db.put("sync" + std::to_string(i), "value" + std::to_string(i));
    EXPECT_EQ(db.size(), 50u);
  }
  PageDb db2(cfg);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(db2.get("sync" + std::to_string(i)).value(),
              "value" + std::to_string(i));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace rdb::storage
