// Wire-format round trips for every message type, plus malformed-input
// handling of the envelope parser (byzantine senders feed us junk).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "protocol/messages.h"

namespace rdb::protocol {
namespace {

Transaction sample_txn(ClientId c = 1, RequestId r = 2) {
  Transaction t;
  t.client = c;
  t.req_id = r;
  t.ops = 3;
  t.payload = {1, 2, 3, 4};
  t.client_sig = {9, 9};
  return t;
}

template <typename P>
Message round_trip(P payload, Endpoint from = Endpoint::replica(1)) {
  Message m;
  m.from = from;
  m.payload = std::move(payload);
  m.signature = {0xAA, 0xBB};
  Bytes wire = m.serialize();
  auto parsed = Message::parse(BytesView(wire));
  EXPECT_TRUE(parsed.has_value());
  // Tests may open the tainted payload directly (check_taint allows tests/).
  Message back = std::move(*parsed).unsafe_release();
  EXPECT_EQ(back.from, m.from);
  EXPECT_EQ(back.signature, m.signature);
  EXPECT_EQ(back.type(), m.type());
  return back;
}

TEST(Messages, TransactionRoundTrip) {
  Transaction t = sample_txn();
  Writer w;
  t.serialize(w);
  Reader r(BytesView(w.data()));
  EXPECT_EQ(Transaction::deserialize(r), t);
  EXPECT_TRUE(r.done());
}

TEST(Messages, TransactionSigningBytesExcludeSignature) {
  Transaction a = sample_txn();
  Transaction b = a;
  b.client_sig = {7};
  EXPECT_EQ(a.signing_bytes(), b.signing_bytes());
  b.payload.push_back(5);
  EXPECT_NE(a.signing_bytes(), b.signing_bytes());
}

TEST(Messages, ClientRequestRoundTrip) {
  ClientRequest req;
  req.txns = {sample_txn(1, 1), sample_txn(1, 2)};
  req.sent_at = 12345;
  auto m = round_trip(req, Endpoint::client(1));
  const auto& back = std::get<ClientRequest>(m.payload);
  EXPECT_EQ(back.txns, req.txns);
  EXPECT_EQ(back.sent_at, 12345u);
}

TEST(Messages, PrePrepareRoundTrip) {
  PrePrepare pp;
  pp.view = 3;
  pp.seq = 99;
  pp.batch_digest = crypto::sha256("batch");
  pp.txns = {sample_txn()};
  pp.txn_begin = 55;
  pp.payload_padding = Bytes(100, 0x77);
  auto m = round_trip(pp);
  const auto& back = std::get<PrePrepare>(m.payload);
  EXPECT_EQ(back.view, 3u);
  EXPECT_EQ(back.seq, 99u);
  EXPECT_EQ(back.batch_digest, pp.batch_digest);
  EXPECT_EQ(back.txns, pp.txns);
  EXPECT_EQ(back.payload_padding, pp.payload_padding);
}

TEST(Messages, PrepareCommitRoundTrip) {
  Prepare p;
  p.view = 1;
  p.seq = 2;
  p.batch_digest = crypto::sha256("x");
  auto mp = round_trip(p);
  EXPECT_EQ(std::get<Prepare>(mp.payload).seq, 2u);

  Commit c;
  c.view = 1;
  c.seq = 2;
  c.batch_digest = crypto::sha256("x");
  auto mc = round_trip(c);
  EXPECT_EQ(std::get<Commit>(mc.payload).batch_digest, crypto::sha256("x"));
}

TEST(Messages, ClientResponseRoundTrip) {
  ClientResponse r;
  r.client = 7;
  r.req_id = 8;
  r.view = 1;
  r.result = 42;
  auto m = round_trip(r);
  EXPECT_EQ(std::get<ClientResponse>(m.payload).result, 42u);
}

TEST(Messages, CheckpointRoundTrip) {
  Checkpoint cp;
  cp.seq = 100;
  cp.state_digest = crypto::sha256("state");
  cp.exec_digest = crypto::sha256("exec fingerprint");
  cp.block_bytes = 4096;
  auto m = round_trip(cp);
  const auto& got = std::get<Checkpoint>(m.payload);
  EXPECT_EQ(got.block_bytes, 4096u);
  EXPECT_EQ(got.state_digest, crypto::sha256("state"));
  EXPECT_EQ(got.exec_digest, crypto::sha256("exec fingerprint"));
}

// A zero exec_digest (engine harnesses, pre-fingerprint peers) must survive
// the round trip as zero — it is the sentinel that disarms the divergence
// tripwire, so it must never pick up stray bytes.
TEST(Messages, CheckpointZeroExecDigestStaysZero) {
  Checkpoint cp;
  cp.seq = 7;
  cp.state_digest = crypto::sha256("state");
  auto m = round_trip(cp);
  EXPECT_TRUE(std::get<Checkpoint>(m.payload).exec_digest.is_zero());
}

TEST(Messages, SnapshotTypesRoundTrip) {
  SnapshotRequest req;
  req.have = 42;
  auto m = round_trip(req);
  EXPECT_EQ(std::get<SnapshotRequest>(m.payload).have, 42u);

  SnapshotResponse resp;
  resp.seq = 16;
  resp.chain_acc = crypto::sha256("chain");
  resp.kv_digest = crypto::sha256("kv image");
  resp.raw_bytes = 1000;
  resp.blob = Bytes(37, 0x5C);
  auto m2 = round_trip(resp);
  const auto& back = std::get<SnapshotResponse>(m2.payload);
  EXPECT_EQ(back.seq, 16u);
  EXPECT_EQ(back.chain_acc, resp.chain_acc);
  EXPECT_EQ(back.kv_digest, resp.kv_digest);
  EXPECT_EQ(back.raw_bytes, 1000u);
  EXPECT_EQ(back.blob, resp.blob);
}

TEST(Messages, ViewChangeNewViewRoundTrip) {
  PreparedProof proof;
  proof.view = 0;
  proof.seq = 5;
  proof.batch_digest = crypto::sha256("p");
  proof.txns = {sample_txn()};
  proof.txn_begin = 41;

  ViewChange vc;
  vc.new_view = 1;
  vc.stable_seq = 4;
  vc.prepared = {proof};
  auto mv = round_trip(vc);
  const auto& vback = std::get<ViewChange>(mv.payload);
  ASSERT_EQ(vback.prepared.size(), 1u);
  EXPECT_EQ(vback.prepared[0].seq, 5u);
  EXPECT_EQ(vback.prepared[0].txns, proof.txns);

  NewView nv;
  nv.view = 1;
  nv.stable_seq = 4;
  nv.reproposals = {proof};
  auto mn = round_trip(nv);
  EXPECT_EQ(std::get<NewView>(mn.payload).reproposals.size(), 1u);
}

TEST(Messages, ZyzzyvaTypesRoundTrip) {
  OrderRequest oreq;
  oreq.view = 0;
  oreq.seq = 3;
  oreq.batch_digest = crypto::sha256("b");
  oreq.history = crypto::sha256("h");
  oreq.txns = {sample_txn()};
  auto mo = round_trip(oreq);
  EXPECT_EQ(std::get<OrderRequest>(mo.payload).history, crypto::sha256("h"));

  SpecResponse sr;
  sr.view = 0;
  sr.seq = 3;
  sr.history = crypto::sha256("h");
  sr.client = 5;
  sr.req_id = 6;
  sr.replica = 2;
  auto ms = round_trip(sr);
  EXPECT_EQ(std::get<SpecResponse>(ms.payload).replica, 2u);

  CommitCert cc;
  cc.view = 0;
  cc.seq = 3;
  cc.history = crypto::sha256("h");
  cc.signers = {0, 1, 2};
  auto mc = round_trip(cc, Endpoint::client(5));
  EXPECT_EQ(std::get<CommitCert>(mc.payload).signers,
            (std::vector<ReplicaId>{0, 1, 2}));

  LocalCommit lc;
  lc.view = 0;
  lc.seq = 3;
  lc.replica = 1;
  lc.client = 5;
  auto ml = round_trip(lc);
  EXPECT_EQ(std::get<LocalCommit>(ml.payload).client, 5u);
}

TEST(Messages, SigningBytesExcludeSignature) {
  Prepare p;
  p.view = 1;
  p.seq = 2;
  p.batch_digest = crypto::sha256("x");
  Message a;
  a.from = Endpoint::replica(1);
  a.payload = p;
  a.signature = {1};
  Message b = a;
  b.signature = {2, 3, 4};
  EXPECT_EQ(a.signing_bytes(), b.signing_bytes());
}

TEST(Messages, ParseRejectsUnknownType) {
  Bytes junk = {0xEE, 0x00, 1, 0, 0, 0};
  EXPECT_FALSE(Message::parse(BytesView(junk)).has_value());
}

TEST(Messages, ParseRejectsEmptyAndTruncated) {
  EXPECT_FALSE(Message::parse(BytesView()).has_value());
  Prepare p;
  p.view = 1;
  p.seq = 2;
  Message m;
  m.from = Endpoint::replica(0);
  m.payload = p;
  Bytes wire = m.serialize();
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    Bytes part(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    auto parsed = Message::parse(BytesView(part));
    EXPECT_FALSE(parsed.has_value()) << "cut=" << cut;
  }
}

TEST(Messages, ParseRandomJunkNeverCrashes) {
  Rng rng(1234);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    (void)Message::parse(BytesView(junk));  // must not crash or overflow
  }
}

TEST(Messages, WireSizeMatchesSerializedSizeApproximately) {
  PrePrepare pp;
  pp.view = 1;
  pp.seq = 2;
  pp.batch_digest = crypto::sha256("b");
  pp.txns = {sample_txn(), sample_txn(2, 3)};
  Message m;
  m.from = Endpoint::replica(0);
  m.payload = pp;
  m.signature = Bytes(17, 0);
  // wire_size() is the sizing model for the simulator; it should track the
  // real serialized size closely.
  double real = static_cast<double>(m.serialize().size());
  double model = static_cast<double>(m.wire_size());
  EXPECT_NEAR(model / real, 1.0, 0.25);
}

}  // namespace
}  // namespace rdb::protocol
