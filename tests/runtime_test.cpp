// Threaded runtime integration: real threads, real crypto, real execution.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "runtime/cluster.h"
#include "storage/page_db.h"
#include "workload/ycsb.h"

namespace rdb::runtime {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<workload::YcsbWorkload> small_workload() {
  workload::YcsbConfig cfg;
  cfg.record_count = 1000;
  cfg.ops_per_txn = 2;
  cfg.value_bytes = 8;
  return std::make_shared<workload::YcsbWorkload>(cfg);
}

ClusterConfig base_config(std::shared_ptr<workload::YcsbWorkload> wl) {
  ClusterConfig cfg;
  cfg.replicas = 4;
  cfg.batch_size = 5;
  cfg.execute = [wl](const protocol::Transaction& t, storage::KvStore& s) {
    return wl->execute(t, s);
  };
  return cfg;
}

std::vector<protocol::Transaction> make_burst(Client& client,
                                              workload::YcsbWorkload& wl,
                                              Rng& rng, int count) {
  std::vector<protocol::Transaction> txns;
  for (int i = 0; i < count; ++i) {
    auto t = wl.make_transaction(rng, client.id(), 0);
    txns.push_back(client.make_transaction(t.payload, t.ops));
  }
  return txns;
}

TEST(Runtime, EndToEndCommitAndExecute) {
  auto wl = small_workload();
  LocalCluster cluster(base_config(wl));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(1);

  auto results = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
  ASSERT_TRUE(results.has_value());
  EXPECT_EQ(results->size(), 5u);
  for (auto r : *results) EXPECT_EQ(r, 2u);  // ops per txn executed

  ASSERT_TRUE(cluster.wait_for_execution(1, std::chrono::seconds(5)));
  cluster.stop();
}

TEST(Runtime, ReplicasConvergeToIdenticalState) {
  auto wl = small_workload();
  LocalCluster cluster(base_config(wl));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(2);
  for (int round = 0; round < 6; ++round) {
    auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
    ASSERT_TRUE(res.has_value()) << "round " << round;
  }
  ASSERT_TRUE(cluster.wait_for_execution(6, std::chrono::seconds(5)));

  // Same chain commitment and same store contents everywhere.
  auto acc0 = cluster.replica(0).chain().accumulator();
  auto size0 = cluster.replica(0).store().size();
  for (ReplicaId r = 1; r < cluster.size(); ++r) {
    EXPECT_EQ(cluster.replica(r).chain().accumulator(), acc0)
        << "replica " << r;
    EXPECT_EQ(cluster.replica(r).store().size(), size0);
  }
  cluster.stop();
}

TEST(Runtime, ConcurrentClients) {
  auto wl = small_workload();
  auto cfg = base_config(wl);
  cfg.batch_size = 10;
  LocalCluster cluster(cfg);
  cluster.start();

  constexpr int kClients = 4;
  constexpr int kRounds = 4;
  std::atomic<int> completed{0};
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client = cluster.make_client(static_cast<ClientId>(c + 1));
        Rng rng(100 + c);
        for (int round = 0; round < kRounds; ++round) {
          auto res =
              client->submit_and_wait(make_burst(*client, *wl, rng, 5));
          if (res) completed.fetch_add(static_cast<int>(res->size()));
        }
      });
    }
  }
  EXPECT_EQ(completed.load(), kClients * kRounds * 5);

  // All replicas converge on the same chain commitment.
  SeqNum last = cluster.replica(0).last_executed();
  ASSERT_TRUE(cluster.wait_for_execution(last, std::chrono::seconds(5)));
  auto acc0 = cluster.replica(0).chain().accumulator();
  for (ReplicaId r = 1; r < cluster.size(); ++r)
    EXPECT_EQ(cluster.replica(r).chain().accumulator(), acc0);
  cluster.stop();
}

TEST(Runtime, ToleratesOneBackupPartition) {
  auto wl = small_workload();
  LocalCluster cluster(base_config(wl));
  cluster.start();
  // Partition backup 3 (f = 1): consensus must keep committing.
  cluster.transport().set_partitioned(Endpoint::replica(3), true);

  auto client = cluster.make_client(1);
  Rng rng(3);
  auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(
      cluster.wait_for_execution(1, std::chrono::seconds(5), /*skip=*/{3}));
  EXPECT_EQ(cluster.replica(3).last_executed(), 0u);
  cluster.stop();
}

TEST(Runtime, PrimaryFailureRecoversViaViewChange) {
  auto wl = small_workload();
  auto cfg = base_config(wl);
  cfg.request_timeout_ns = 200'000'000;  // 200 ms view-change trigger
  LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(4);

  // Commit one batch in view 0 so backups have run the full pipeline.
  auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
  ASSERT_TRUE(res.has_value());

  // Kill the primary mid-protocol: deliver client work, then partition it
  // right away so some pre-prepares may be in flight.
  cluster.transport().set_partitioned(Endpoint::replica(0), true);

  // The client retries; its retry targets rotate through replicas, and the
  // new primary (1) eventually sequences the request in view >= 1.
  auto res2 = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
  ASSERT_TRUE(res2.has_value());
  EXPECT_GE(client->believed_view(), 1u);
  for (ReplicaId r = 1; r < cluster.size(); ++r)
    EXPECT_GE(cluster.replica(r).view(), 1u) << "replica " << r;
  cluster.stop();
}

TEST(Runtime, InvalidClientSignatureExcised) {
  auto wl = small_workload();
  LocalCluster cluster(base_config(wl));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(5);

  // Build a burst and corrupt one signature: the batch thread excises the
  // forged transaction but still proposes the batch (its sequence number is
  // already assigned — dropping it would stall execution forever).
  auto txns = make_burst(*client, *wl, rng, 5);
  txns[2].client_sig[3] ^= 0xFF;

  protocol::ClientRequest req;
  req.txns = txns;
  protocol::Message msg;
  msg.from = Endpoint::client(1);
  msg.payload = req;
  cluster.transport().send(Endpoint::replica(0), msg);

  ASSERT_TRUE(cluster.wait_for_execution(1, std::chrono::seconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto stats = cluster.replica(0).stats();
  EXPECT_GE(stats.invalid_signatures, 1u);
  EXPECT_EQ(stats.txns_executed, 4u);  // the forged transaction is gone
  // 4 valid txns x 2 ops each actually hit the store.
  EXPECT_EQ(cluster.replica(0).store().stats().writes, 8u);
  cluster.stop();
}

TEST(Runtime, VerifyPoolAllEd25519) {
  // Full digital-signature configuration with the Prepare/Commit verify
  // pool enabled: consensus must still commit and execute correctly (the
  // pool may reorder votes; PBFT counts them per sequence number), and the
  // pool threads must show up in the saturation report.
  auto wl = small_workload();
  auto cfg = base_config(wl);
  cfg.schemes = crypto::SchemeConfig::all_ed25519();
  cfg.verify_threads = 2;
  LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(9);

  auto results = client->submit_and_wait(make_burst(*client, *wl, rng, 10));
  ASSERT_TRUE(results.has_value());
  EXPECT_EQ(results->size(), 10u);
  ASSERT_TRUE(cluster.wait_for_execution(2, std::chrono::seconds(10)));

  auto stats = cluster.replica(1).stats();
  EXPECT_EQ(stats.invalid_signatures, 0u);
  bool has_verify_thread = false;
  for (const auto& ts : cluster.replica(1).thread_saturations())
    if (ts.thread.rfind("verify-", 0) == 0) has_verify_thread = true;
  EXPECT_TRUE(has_verify_thread);
  cluster.stop();
}

TEST(Runtime, VerifyPoolRejectsForgedReplicaMessages) {
  // A forged Prepare/Commit arriving at a pool-enabled replica must be
  // dropped by the verify stage and counted, never reaching the engine.
  auto wl = small_workload();
  auto cfg = base_config(wl);
  cfg.schemes = crypto::SchemeConfig::all_ed25519();
  cfg.verify_threads = 1;
  LocalCluster cluster(cfg);
  cluster.start();

  protocol::Prepare prep;
  prep.view = 0;
  prep.seq = 1;
  protocol::Message forged;
  forged.from = Endpoint::replica(2);
  forged.payload = prep;
  forged.signature = Bytes(65, 0xAB);  // garbage signature
  forged.signature[0] = 2;            // kEd25519 scheme id
  cluster.transport().send(Endpoint::replica(1), forged);

  // Give the pipeline a moment, then check the rejection counter.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_GE(cluster.replica(1).stats().invalid_signatures, 1u);
  cluster.stop();
}

TEST(Runtime, VerifyPoolBurstBatchesSignatures) {
  // The verify stage drains bursts of Prepare/Commit votes and settles each
  // burst with one batch-verify call. Under sustained load the batch
  // counters must engage (flushes > 0, mean size >= 1), certificates
  // re-checked through the same path must all hold, and nothing valid may
  // be rejected.
  auto wl = small_workload();
  auto cfg = base_config(wl);
  cfg.schemes = crypto::SchemeConfig::all_ed25519();
  cfg.verify_threads = 2;
  cfg.verify_batch_size = 16;
  cfg.verify_batch_wait_ns = 500'000;  // 500 us flush cutoff
  cfg.verify_certificates = true;
  LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(31);

  for (int round = 0; round < 5; ++round) {
    auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
    ASSERT_TRUE(res.has_value()) << "round " << round;
  }
  ASSERT_TRUE(cluster.wait_for_execution(5, std::chrono::seconds(10)));

  for (ReplicaId r = 0; r < cluster.size(); ++r) {
    auto stats = cluster.replica(r).stats();
    EXPECT_EQ(stats.invalid_signatures, 0u) << "replica " << r;
    EXPECT_GT(stats.batched_sigs, 0u) << "replica " << r;
    EXPECT_GT(stats.batch_flushes, 0u) << "replica " << r;
    EXPECT_GE(stats.batch_mean_size, 1.0) << "replica " << r;
    // All votes were honest: no batch ever needed a culprit hunt, and the
    // certificate re-check found every 2f+1 vote set intact.
    EXPECT_EQ(stats.batch_fallback_bisections, 0u) << "replica " << r;
    EXPECT_EQ(stats.cert_vote_failures, 0u) << "replica " << r;
  }
  cluster.stop();
}

TEST(Runtime, VerifyPoolBatchSizeOneStillConverges) {
  // Degenerate burst size: every message flushes alone, which must behave
  // exactly like the pre-batching stage (correct convergence, no rejects).
  auto wl = small_workload();
  auto cfg = base_config(wl);
  cfg.schemes = crypto::SchemeConfig::all_ed25519();
  cfg.verify_threads = 1;
  cfg.verify_batch_size = 1;
  LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(32);

  auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(cluster.wait_for_execution(1, std::chrono::seconds(10)));
  EXPECT_EQ(cluster.replica(1).stats().invalid_signatures, 0u);
  cluster.stop();
}

TEST(Runtime, RetransmittedRequestExecutesOnce) {
  // A client retransmission (e.g. after a presumed timeout) must not apply
  // the writes twice: the reply cache answers duplicates.
  auto wl = small_workload();
  LocalCluster cluster(base_config(wl));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(21);

  auto burst = make_burst(*client, *wl, rng, 5);
  protocol::ClientRequest req;
  req.txns = burst;
  protocol::Message msg;
  msg.from = Endpoint::client(1);
  msg.payload = req;

  // Deliver the identical request message twice.
  cluster.transport().send(Endpoint::replica(0), msg);
  cluster.transport().send(Endpoint::replica(0), msg);
  ASSERT_TRUE(cluster.wait_for_execution(2, std::chrono::seconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto stats = cluster.replica(0).stats();
  EXPECT_EQ(stats.txns_executed, 5u);
  EXPECT_EQ(stats.duplicate_txns, 5u);
  // Each transaction writes ops_per_txn (=2) records exactly once.
  EXPECT_EQ(cluster.replica(0).store().stats().writes, 10u);
  cluster.stop();
}

TEST(Runtime, CheckpointsBoundChainRetention) {
  auto wl = small_workload();
  auto cfg = base_config(wl);
  cfg.checkpoint_interval = 4;
  LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(6);
  for (int round = 0; round < 12; ++round) {
    auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
    ASSERT_TRUE(res.has_value());
  }
  ASSERT_TRUE(cluster.wait_for_execution(12, std::chrono::seconds(5)));
  // Give checkpoint traffic a moment to stabilize, then check pruning.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_LT(cluster.replica(0).chain().retained(), 13u);
  EXPECT_EQ(cluster.replica(0).chain().total_blocks(), 13u);  // + genesis
  cluster.stop();
}

TEST(Runtime, PageDbBackedReplicas) {
  auto wl = small_workload();
  auto cfg = base_config(wl);
  auto dir = fs::temp_directory_path() / "rdb_runtime_pagedb";
  fs::remove_all(dir);
  fs::create_directories(dir);
  cfg.make_store = [dir](ReplicaId r) -> std::unique_ptr<storage::KvStore> {
    storage::PageDbConfig pc;
    pc.path = (dir / ("replica" + std::to_string(r) + ".db")).string();
    return std::make_unique<storage::PageDb>(pc);
  };
  {
    LocalCluster cluster(cfg);
    cluster.start();
    auto client = cluster.make_client(1);
    Rng rng(7);
    auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
    ASSERT_TRUE(res.has_value());
    ASSERT_TRUE(cluster.wait_for_execution(1, std::chrono::seconds(5)));
    EXPECT_GT(cluster.replica(0).store().size(), 0u);
    cluster.stop();
  }
  fs::remove_all(dir);
}

TEST(Runtime, BufferPoolRecirculates) {
  auto wl = small_workload();
  LocalCluster cluster(base_config(wl));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(8);
  for (int round = 0; round < 5; ++round)
    ASSERT_TRUE(
        client->submit_and_wait(make_burst(*client, *wl, rng, 5)).has_value());
  auto stats = cluster.replica(0).stats();
  EXPECT_GE(stats.pool_hits, 5u);
  EXPECT_EQ(stats.pool_misses, 0u);
  cluster.stop();
}

TEST(Runtime, ThreadSaturationsReported) {
  auto wl = small_workload();
  LocalCluster cluster(base_config(wl));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(31);
  for (int round = 0; round < 3; ++round)
    ASSERT_TRUE(
        client->submit_and_wait(make_burst(*client, *wl, rng, 5)).has_value());

  auto sats = cluster.replica(0).thread_saturations();
  ASSERT_FALSE(sats.empty());
  double worker_pct = -1, input_pct = -1;
  for (const auto& s : sats) {
    EXPECT_GE(s.percent, 0.0);
    EXPECT_LE(s.percent, 100.5);
    if (s.thread == "worker") worker_pct = s.percent;
    if (s.thread == "input") input_pct = s.percent;
  }
  // The primary processed real work: its worker and input threads were busy
  // for a measurable (nonzero) fraction of the run.
  EXPECT_GT(worker_pct, 0.0);
  EXPECT_GT(input_pct, 0.0);
  cluster.stop();
}

TEST(Transport, PartitionDropsBothDirections) {
  InprocTransport t;
  auto inbox = std::make_shared<InprocTransport::Inbox>();
  t.register_endpoint(Endpoint::replica(1), inbox);

  protocol::Message m;
  m.from = Endpoint::replica(0);
  m.payload = protocol::Prepare{};
  t.send(Endpoint::replica(1), m);
  EXPECT_EQ(inbox->size(), 1u);

  t.set_partitioned(Endpoint::replica(1), true);
  t.send(Endpoint::replica(1), m);
  EXPECT_EQ(inbox->size(), 1u);

  t.set_partitioned(Endpoint::replica(1), false);
  t.set_partitioned(Endpoint::replica(0), true);  // sender partitioned
  t.send(Endpoint::replica(1), m);
  EXPECT_EQ(inbox->size(), 1u);
}

TEST(Transport, UnregisteredDestinationIsDropped) {
  InprocTransport t;
  protocol::Message m;
  m.from = Endpoint::replica(0);
  m.payload = protocol::Prepare{};
  t.send(Endpoint::replica(9), m);  // must not crash
  EXPECT_EQ(t.messages_sent(), 0u);
}

}  // namespace
}  // namespace rdb::runtime
