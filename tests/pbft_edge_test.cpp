// PBFT engine edge cases beyond the main flow: message reordering at phase
// granularity, checkpoint vote splitting, quorum gating, watermark behavior.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "tests/engine_harness.h"

namespace rdb::protocol {
namespace {

using test::EngineHarness;
using test::make_batch;

Digest digest_of(const std::string& tag) { return crypto::sha256(tag); }

Message from_replica(ReplicaId r, Payload p) {
  Message m;
  m.from = Endpoint::replica(r);
  m.payload = std::move(p);
  return m;
}

TEST(PbftEdge, PrepareBeforePrePrepareCounts) {
  // §4.3 "How is this possible?": a replica may receive 2f prepares before
  // the pre-prepare. They must be banked and take effect when it arrives.
  EngineHarness<PbftEngine> h(4);
  Prepare pr;
  pr.view = 0;
  pr.seq = 1;
  pr.batch_digest = digest_of("early");

  auto a2 = h.engine(1).on_prepare(from_replica(2, pr));
  auto a3 = h.engine(1).on_prepare(from_replica(3, pr));
  EXPECT_TRUE(a2.empty());
  EXPECT_TRUE(a3.empty());  // no pre-prepare yet: cannot commit

  PrePrepare pp;
  pp.view = 0;
  pp.seq = 1;
  pp.batch_digest = digest_of("early");
  pp.txns = make_batch(1, 0, 1);
  auto acts = h.engine(1).on_preprepare(from_replica(0, pp));
  // Pre-prepare + banked 2f prepares: prepare AND commit broadcast at once.
  int broadcasts = 0;
  for (auto& a : acts)
    if (std::holds_alternative<BroadcastAction>(a)) ++broadcasts;
  EXPECT_EQ(broadcasts, 2);  // its own Prepare plus the Commit
}

TEST(PbftEdge, CommitQuorumWithoutOwnPrepareDoesNotExecute) {
  // A replica that never prepared (e.g. missing pre-prepare) must not
  // execute even with 2f+1 commits — it lacks the request payload.
  EngineHarness<PbftEngine> h(4);
  Commit c;
  c.view = 0;
  c.seq = 1;
  c.batch_digest = digest_of("x");
  for (ReplicaId r = 0; r < 3; ++r)
    h.perform(3, h.engine(3).on_commit(from_replica(r, c)));
  EXPECT_TRUE(h.executed(3).empty());
  EXPECT_EQ(h.engine(3).last_executed(), 0u);
}

TEST(PbftEdge, CheckpointVotesSplitByDigestDoNotStabilize) {
  EngineHarness<PbftEngine> h(4);
  Checkpoint good;
  good.seq = 5;
  good.state_digest = digest_of("state");
  Checkpoint bad = good;
  bad.state_digest = digest_of("byzantine-state");

  // Two honest votes + two conflicting votes: no digest reaches 2f+1 = 3.
  (void)h.engine(1).on_checkpoint(from_replica(0, good));
  (void)h.engine(1).on_checkpoint(from_replica(2, good));
  (void)h.engine(1).on_checkpoint(from_replica(3, bad));
  EXPECT_EQ(h.engine(1).stable_checkpoint(), 0u);

  // A third matching vote stabilizes.
  auto acts = h.engine(1).on_checkpoint(from_replica(3, good));
  bool stable = false;
  for (auto& a : acts)
    if (std::holds_alternative<StableCheckpointAction>(a)) stable = true;
  EXPECT_TRUE(stable);
  EXPECT_EQ(h.engine(1).stable_checkpoint(), 5u);
}

TEST(PbftEdge, StaleCheckpointIgnored) {
  EngineHarness<PbftEngine> h(4);
  Checkpoint cp;
  cp.seq = 5;
  cp.state_digest = digest_of("s");
  for (ReplicaId r = 0; r < 3; ++r)
    (void)h.engine(1).on_checkpoint(from_replica(r, cp));
  EXPECT_EQ(h.engine(1).stable_checkpoint(), 5u);
  // Votes for an older checkpoint are ignored outright.
  Checkpoint old;
  old.seq = 3;
  old.state_digest = digest_of("old");
  for (ReplicaId r = 0; r < 4; ++r)
    EXPECT_TRUE(h.engine(1).on_checkpoint(from_replica(r, old)).empty());
  EXPECT_EQ(h.engine(1).stable_checkpoint(), 5u);
}

TEST(PbftEdge, SuggestNextSeqTracksSlotsAndExecution) {
  EngineHarness<PbftEngine> h(4);
  EXPECT_EQ(h.engine(0).suggest_next_seq(), 1u);
  h.perform(0, h.engine(0).make_preprepare(1, make_batch(1, 0, 1), 1,
                                           digest_of("a")));
  h.run_all();
  EXPECT_EQ(h.engine(0).last_executed(), 1u);
  EXPECT_EQ(h.engine(0).suggest_next_seq(), 2u);
}

TEST(PbftEdge, ClientRequestTimeoutStartsViewChangeOnlyOnBackups) {
  EngineHarness<PbftEngine> h(4);
  // Primary never reacts to its own relayed-request watchdog.
  EXPECT_TRUE(h.engine(0).on_client_request_timeout().empty());
  // A backup starts the view change.
  auto acts = h.engine(1).on_client_request_timeout();
  EXPECT_FALSE(acts.empty());
  EXPECT_TRUE(h.engine(1).in_view_change());
  // ...and does not double-start.
  EXPECT_TRUE(h.engine(1).on_client_request_timeout().empty());
}

TEST(PbftEdge, MessagesDuringViewChangeRejected) {
  EngineHarness<PbftEngine> h(4);
  (void)h.engine(1).on_client_request_timeout();
  ASSERT_TRUE(h.engine(1).in_view_change());

  PrePrepare pp;
  pp.view = 0;
  pp.seq = 1;
  pp.batch_digest = digest_of("late");
  EXPECT_TRUE(h.engine(1).on_preprepare(from_replica(0, pp)).empty());
  Prepare pr;
  pr.view = 0;
  pr.seq = 1;
  pr.batch_digest = digest_of("late");
  EXPECT_TRUE(h.engine(1).on_prepare(from_replica(2, pr)).empty());
}

TEST(PbftEdge, ExecutedSequenceRejectedAsStale) {
  EngineHarness<PbftEngine> h(4);
  h.perform(0, h.engine(0).make_preprepare(1, make_batch(1, 0, 1), 1,
                                           digest_of("done")));
  h.run_all();
  ASSERT_EQ(h.engine(2).last_executed(), 1u);
  // A replayed commit for the executed sequence is below the low watermark.
  Commit c;
  c.view = 0;
  c.seq = 1;
  c.batch_digest = digest_of("done");
  auto before = h.engine(2).metrics().rejected_msgs;
  EXPECT_TRUE(h.engine(2).on_commit(from_replica(3, c)).empty());
  EXPECT_GT(h.engine(2).metrics().rejected_msgs, before);
}

TEST(PbftEdge, TwoConsecutiveViewChanges) {
  // View 0's primary dies; then view 1's primary dies too. The cluster must
  // land in view 2 with replica 2 as primary.
  EngineHarness<PbftEngine> h(4);
  h.crash(0);
  for (ReplicaId r = 1; r < 4; ++r)
    h.perform(r, h.engine(r).on_client_request_timeout());
  h.run_all();
  for (ReplicaId r = 1; r < 4; ++r)
    ASSERT_EQ(h.engine(r).view(), 1u) << "replica " << r;

  h.crash(1);
  for (ReplicaId r = 2; r < 4; ++r)
    h.perform(r, h.engine(r).on_client_request_timeout());
  h.run_all();
  // Only 2 live replicas remain (< 2f+1): view 2 cannot assemble a quorum.
  // Replicas must be *in* the view change, not wedged in a wrong view.
  for (ReplicaId r = 2; r < 4; ++r)
    EXPECT_TRUE(h.engine(r).in_view_change() || h.engine(r).view() == 2u);
}

TEST(PbftEdge, NewPrimaryProposesAfterViewChange) {
  EngineHarness<PbftEngine> h(4);
  h.crash(0);
  for (ReplicaId r = 1; r < 4; ++r)
    h.perform(r, h.engine(r).on_client_request_timeout());
  h.run_all();
  ASSERT_EQ(h.engine(1).view(), 1u);
  ASSERT_TRUE(h.engine(1).is_primary());

  h.perform(1, h.engine(1).make_preprepare(
                   h.engine(1).suggest_next_seq(), make_batch(1, 0, 2), 1,
                   digest_of("view1-batch")));
  h.run_all();
  for (ReplicaId r = 1; r < 4; ++r) {
    ASSERT_EQ(h.executed(r).size(), 1u) << "replica " << r;
    EXPECT_EQ(h.executed(r)[0].batch_digest, digest_of("view1-batch"));
    EXPECT_EQ(h.executed(r)[0].view, 1u);
  }
}

TEST(PbftEdge, PrepareFromPrimaryRejected) {
  // The primary's agreement is its pre-prepare; a Prepare claiming to come
  // from the primary is protocol-invalid.
  EngineHarness<PbftEngine> h(4);
  Prepare pr;
  pr.view = 0;
  pr.seq = 1;
  pr.batch_digest = digest_of("x");
  EXPECT_TRUE(h.engine(1).on_prepare(from_replica(0, pr)).empty());
  EXPECT_GE(h.engine(1).metrics().rejected_msgs, 1u);
}

TEST(PbftEdge, ClientSourcedPhaseMessagesRejected) {
  EngineHarness<PbftEngine> h(4);
  Prepare pr;
  pr.view = 0;
  pr.seq = 1;
  pr.batch_digest = digest_of("x");
  Message m;
  m.from = Endpoint::client(7);
  m.payload = pr;
  EXPECT_TRUE(h.engine(1).on_prepare(m).empty());

  Commit c;
  c.view = 0;
  c.seq = 1;
  c.batch_digest = digest_of("x");
  Message mc;
  mc.from = Endpoint::client(7);
  mc.payload = c;
  EXPECT_TRUE(h.engine(1).on_commit(mc).empty());
}

TEST(PbftEdge, DuplicateTimeoutDuringViewChangeIsStale) {
  // The model checker schedules timer expiry as an ordinary event, so a
  // timer can fire twice (fabric races a cancel against a fire) or fire for
  // a slot the view change already erased. Both must be absorbed without
  // touching protocol state — a second start_view_change(view+1) here used
  // to be the classic double-transition hazard.
  EngineHarness<PbftEngine> h(4);
  PrePrepare pp;
  pp.view = 0;
  pp.seq = 1;
  pp.batch_digest = digest_of("slow");
  pp.txns = make_batch(1, 0, 1);
  (void)h.engine(1).on_preprepare(from_replica(0, pp));

  // First expiry: the backup gives up on view 0.
  auto first = h.engine(1).on_timeout(1);
  EXPECT_FALSE(first.empty());
  ASSERT_TRUE(h.engine(1).in_view_change());
  const Digest mid = h.engine(1).state_digest();
  const auto stale_before = h.engine(1).metrics().stale_timeouts;

  // Duplicate expiry of the same timer mid-view-change: counted, no-op.
  EXPECT_TRUE(h.engine(1).on_timeout(1).empty());
  // Expiry for a slot that never existed: same.
  EXPECT_TRUE(h.engine(1).on_timeout(999).empty());
  EXPECT_EQ(h.engine(1).metrics().stale_timeouts, stale_before + 2);
  EXPECT_EQ(h.engine(1).state_digest(), mid);
}

TEST(PbftEdge, TimeoutForCommittedSlotIsStale) {
  EngineHarness<PbftEngine> h(4);
  h.perform(0, h.engine(0).make_preprepare(1, make_batch(1, 0, 1), 1,
                                           digest_of("done")));
  h.run_all();
  ASSERT_EQ(h.executed(1).size(), 1u);
  const Digest before = h.engine(1).state_digest();
  EXPECT_TRUE(h.engine(1).on_timeout(1).empty());
  EXPECT_FALSE(h.engine(1).in_view_change());
  EXPECT_EQ(h.engine(1).state_digest(), before);
  EXPECT_GE(h.engine(1).metrics().stale_timeouts, 1u);
}

}  // namespace
}  // namespace rdb::protocol
