// Cryptographic primitives against published test vectors, plus provider
// semantics (scheme negotiation, tamper rejection, pairwise keys).
#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "crypto/aes128.h"
#include "crypto/cmac.h"
#include "crypto/hmac.h"
#include "crypto/key_registry.h"
#include "crypto/provider.h"
#include "crypto/sha256.h"

namespace rdb::crypto {
namespace {

// ---------------------------------------------------------------------------
// SHA-256 — FIPS 180-4 / NIST CAVS vectors.
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactlyOneBlock) {
  // 64 bytes: padding spills into a second block.
  std::string msg(64, 'a');
  EXPECT_EQ(to_hex(sha256(msg)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and with "
      "great enthusiasm, until the message spans several blocks.";
  Digest oneshot = sha256(msg);
  // Every possible split point must agree with the one-shot digest.
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), oneshot) << "split at " << split;
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update(std::string_view("abc"));
  Digest first = h.finish();
  h.reset();
  h.update(std::string_view("abc"));
  EXPECT_EQ(h.finish(), first);
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 — RFC 4231 vectors.
// ---------------------------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(BytesView(
                hmac_sha256(BytesView(key), to_bytes("Hi There")).data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      to_hex(BytesView(hmac_sha256(to_bytes("Jefe"),
                                   to_bytes("what do ya want for nothing?"))
                           .data)),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(BytesView(
                hmac_sha256(BytesView(key), BytesView(data)).data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(BytesView(
                hmac_sha256(BytesView(key),
                            to_bytes("Test Using Larger Than Block-Size Key - "
                                     "Hash Key First"))
                    .data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------------------
// AES-128 — FIPS 197 Appendix B & SP 800-38A vectors.
// ---------------------------------------------------------------------------

AesKey key_from_hex(const char* hex) {
  Bytes b = from_hex(hex);
  AesKey k{};
  std::copy(b.begin(), b.end(), k.begin());
  return k;
}

AesBlock block_from_hex(const char* hex) {
  Bytes b = from_hex(hex);
  AesBlock blk{};
  std::copy(b.begin(), b.end(), blk.begin());
  return blk;
}

TEST(Aes128, Fips197AppendixB) {
  Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  AesBlock ct = aes.encrypt(block_from_hex("3243f6a8885a308d313198a2e0370734"));
  EXPECT_EQ(to_hex(BytesView(ct)), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, Sp80038aEcb) {
  Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  AesBlock ct = aes.encrypt(block_from_hex("6bc1bee22e409f96e93d7e117393172a"));
  EXPECT_EQ(to_hex(BytesView(ct)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, DecryptInvertsEncrypt) {
  Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  AesBlock pt = block_from_hex("00112233445566778899aabbccddeeff");
  EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  // FIPS 197 Appendix C.1 known answer.
  EXPECT_EQ(to_hex(BytesView(aes.encrypt(pt))),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// ---------------------------------------------------------------------------
// CMAC-AES128 — RFC 4493 vectors.
// ---------------------------------------------------------------------------

class CmacRfc4493 : public ::testing::Test {
 protected:
  AesKey key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
};

TEST_F(CmacRfc4493, EmptyMessage) {
  EXPECT_EQ(to_hex(BytesView(cmac_aes128(key, BytesView()))),
            "bb1d6929e95937287fa37d129b756746");
}

TEST_F(CmacRfc4493, SixteenBytes) {
  Bytes m = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(to_hex(BytesView(cmac_aes128(key, BytesView(m)))),
            "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST_F(CmacRfc4493, FortyBytes) {
  Bytes m = from_hex(
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411");
  EXPECT_EQ(to_hex(BytesView(cmac_aes128(key, BytesView(m)))),
            "dfa66747de9ae63030ca32611497c827");
}

TEST_F(CmacRfc4493, SixtyFourBytes) {
  Bytes m = from_hex(
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(to_hex(BytesView(cmac_aes128(key, BytesView(m)))),
            "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST_F(CmacRfc4493, ContextMatchesOneShot) {
  CmacContext ctx(key);
  Bytes m = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(ctx.tag(BytesView(m)), cmac_aes128(key, BytesView(m)));
}

// ---------------------------------------------------------------------------
// Key registry & provider.
// ---------------------------------------------------------------------------

TEST(KeyRegistry, PairwiseKeysAreSymmetric) {
  KeyRegistry reg(123);
  auto a = Endpoint::replica(3);
  auto b = Endpoint::client(3);  // same id, different kind
  EXPECT_EQ(reg.pairwise_key(a, b), reg.pairwise_key(b, a));
  EXPECT_NE(reg.pairwise_key(a, b),
            reg.pairwise_key(a, Endpoint::replica(3)));
}

TEST(KeyRegistry, DistinctSecretsPerEndpoint) {
  KeyRegistry reg(123);
  EXPECT_NE(reg.signing_secret(Endpoint::replica(0)),
            reg.signing_secret(Endpoint::replica(1)));
  EXPECT_NE(reg.signing_secret(Endpoint::replica(0)),
            reg.signing_secret(Endpoint::client(0)));
}

TEST(KeyRegistry, DeterministicAcrossInstances) {
  KeyRegistry a(99), b(99), c(100);
  EXPECT_EQ(a.signing_secret(Endpoint::replica(1)),
            b.signing_secret(Endpoint::replica(1)));
  EXPECT_NE(a.signing_secret(Endpoint::replica(1)),
            c.signing_secret(Endpoint::replica(1)));
}

TEST(KeyRegistry, ExpandedKeyCacheHitsAndInvalidation) {
  KeyRegistry reg(77);
  auto who = Endpoint::replica(2);
  EXPECT_EQ(reg.ed25519_cache_stats().hits, 0u);
  EXPECT_EQ(reg.ed25519_cache_stats().misses, 0u);

  auto first = reg.ed25519_expanded(who);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(reg.ed25519_cache_stats().misses, 1u);
  EXPECT_EQ(reg.ed25519_cache_stats().hits, 0u);

  // Second lookup is a hit and returns the SAME expansion object.
  auto second = reg.ed25519_expanded(who);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(reg.ed25519_cache_stats().hits, 1u);
  EXPECT_EQ(reg.ed25519_cache_stats().misses, 1u);

  // A different endpoint misses independently.
  auto other = reg.ed25519_expanded(Endpoint::client(2));
  EXPECT_NE(other.get(), first.get());
  EXPECT_EQ(reg.ed25519_cache_stats().misses, 2u);

  // Invalidation forces a re-expansion (fresh object, one more miss);
  // outstanding shared_ptrs stay valid.
  reg.ed25519_invalidate(who);
  auto third = reg.ed25519_expanded(who);
  ASSERT_NE(third, nullptr);
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(reg.ed25519_cache_stats().misses, 3u);
}

TEST(KeyRegistry, ExpandedKeyVerifiesProviderSignatures) {
  KeyRegistry reg(42);
  auto signer = Endpoint::replica(1);
  CryptoProvider prov(signer, reg, SchemeConfig::all_ed25519());
  Bytes msg = to_bytes("commit(v=0, seq=9)");
  Bytes sig = prov.sign(Endpoint::replica(0), BytesView(msg));
  ASSERT_EQ(sig.size(), 65u);
  Ed25519Signature es{};
  std::copy(sig.begin() + 1, sig.end(), es.begin());
  auto expanded = reg.ed25519_expanded(signer);
  ASSERT_NE(expanded, nullptr);
  EXPECT_TRUE(ed25519_verify_expanded(BytesView(msg), es, *expanded));
  // And the registry-derived public key matches the provider's own.
  EXPECT_EQ(reg.ed25519_public(signer),
            ed25519_public_key([&] {
              Bytes secret = reg.signing_secret(signer);
              Ed25519Seed seed{};
              std::copy_n(secret.begin(), seed.size(), seed.begin());
              return seed;
            }()));
}

class ProviderTest : public ::testing::Test {
 protected:
  KeyRegistry reg{42};
  SchemeConfig standard = SchemeConfig::standard();
};

TEST_F(ProviderTest, ReplicaToReplicaMacRoundTrip) {
  CryptoProvider alice(Endpoint::replica(0), reg, standard);
  CryptoProvider bob(Endpoint::replica(1), reg, standard);
  Bytes msg = to_bytes("prepare(v=0, seq=7)");
  Bytes sig = alice.sign(Endpoint::replica(1), BytesView(msg));
  EXPECT_TRUE(bob.verify(Endpoint::replica(0), BytesView(msg), BytesView(sig)));
}

TEST_F(ProviderTest, TamperedMessageRejected) {
  CryptoProvider alice(Endpoint::replica(0), reg, standard);
  CryptoProvider bob(Endpoint::replica(1), reg, standard);
  Bytes msg = to_bytes("transfer 10 coins");
  Bytes sig = alice.sign(Endpoint::replica(1), BytesView(msg));
  Bytes tampered = to_bytes("transfer 99 coins");
  EXPECT_FALSE(
      bob.verify(Endpoint::replica(0), BytesView(tampered), BytesView(sig)));
}

TEST_F(ProviderTest, TamperedSignatureRejected) {
  CryptoProvider alice(Endpoint::replica(0), reg, standard);
  CryptoProvider bob(Endpoint::replica(1), reg, standard);
  Bytes msg = to_bytes("hello");
  Bytes sig = alice.sign(Endpoint::replica(1), BytesView(msg));
  sig.back() ^= 0x01;
  EXPECT_FALSE(bob.verify(Endpoint::replica(0), BytesView(msg), BytesView(sig)));
}

TEST_F(ProviderTest, MacFromWrongPeerRejected) {
  // A MAC produced by replica 2 for replica 1 must not verify as coming
  // from replica 0 (pairwise keys differ).
  CryptoProvider mallory(Endpoint::replica(2), reg, standard);
  CryptoProvider bob(Endpoint::replica(1), reg, standard);
  Bytes msg = to_bytes("forged");
  Bytes sig = mallory.sign(Endpoint::replica(1), BytesView(msg));
  EXPECT_FALSE(bob.verify(Endpoint::replica(0), BytesView(msg), BytesView(sig)));
  EXPECT_TRUE(bob.verify(Endpoint::replica(2), BytesView(msg), BytesView(sig)));
}

TEST_F(ProviderTest, ClientLinkUsesDigitalSignature) {
  CryptoProvider client(Endpoint::client(5), reg, standard);
  CryptoProvider replica(Endpoint::replica(0), reg, standard);
  Bytes msg = to_bytes("client request");
  Bytes sig = client.sign(Endpoint::replica(0), BytesView(msg));
  // DS signatures are addressee-independent: any replica can verify.
  CryptoProvider other(Endpoint::replica(3), reg, standard);
  EXPECT_TRUE(
      replica.verify(Endpoint::client(5), BytesView(msg), BytesView(sig)));
  EXPECT_TRUE(
      other.verify(Endpoint::client(5), BytesView(msg), BytesView(sig)));
  EXPECT_EQ(sig.size(), scheme_cost(SignatureScheme::kEd25519).sig_bytes + 1);
}

TEST_F(ProviderTest, SchemeDowngradeRejected) {
  // A peer that signs with kNone cannot pass where CMAC is expected.
  SchemeConfig none = SchemeConfig::none();
  CryptoProvider weak(Endpoint::replica(0), reg, none);
  CryptoProvider bob(Endpoint::replica(1), reg, standard);
  Bytes msg = to_bytes("downgrade");
  Bytes sig = weak.sign(Endpoint::replica(1), BytesView(msg));
  EXPECT_FALSE(bob.verify(Endpoint::replica(0), BytesView(msg), BytesView(sig)));
}

TEST_F(ProviderTest, RsaSchemeSizes) {
  SchemeConfig rsa = SchemeConfig::all_rsa();
  CryptoProvider signer(Endpoint::replica(0), reg, rsa);
  Bytes msg = to_bytes("x");
  Bytes sig = signer.sign(Endpoint::replica(1), BytesView(msg));
  EXPECT_EQ(sig.size(), scheme_cost(SignatureScheme::kRsa2048).sig_bytes + 1);
  CryptoProvider bob(Endpoint::replica(1), reg, rsa);
  EXPECT_TRUE(bob.verify(Endpoint::replica(0), BytesView(msg), BytesView(sig)));
}

TEST_F(ProviderTest, EmptySignatureRejected) {
  CryptoProvider bob(Endpoint::replica(1), reg, standard);
  EXPECT_FALSE(bob.verify(Endpoint::replica(0),
                          BytesView(to_bytes("m")), BytesView()));
}

}  // namespace
}  // namespace rdb::crypto
