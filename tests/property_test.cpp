// Property-based / parameterized sweeps over protocol invariants:
// agreement and total order under randomized delivery schedules, loss,
// and crash patterns, for both engines and a spectrum of cluster sizes.
#include <gtest/gtest.h>

#include <tuple>

#include "crypto/sha256.h"
#include "tests/engine_harness.h"

namespace rdb::protocol {
namespace {

using test::EngineHarness;
using test::make_batch;

// ---------------------------------------------------------------------------
// PBFT: agreement + total order for every (n, seed) combination, with
// messages delivered in a seed-determined random order.
// ---------------------------------------------------------------------------

class PbftScheduleProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(PbftScheduleProperty, AgreementAndTotalOrderUnderRandomSchedules) {
  auto [n, seed] = GetParam();
  EngineHarness<PbftEngine> h(n);
  constexpr SeqNum kBatches = 8;
  for (SeqNum s = 1; s <= kBatches; ++s) {
    h.perform(0, h.engine(0).make_preprepare(
                     s, make_batch(1, s * 10, 2), (s - 1) * 2 + 1,
                     crypto::sha256("b" + std::to_string(s))));
  }
  Rng rng(seed);
  h.run_all_shuffled(rng);

  // Everyone executed everything, in strict sequence order.
  for (ReplicaId r = 0; r < n; ++r) {
    ASSERT_EQ(h.executed(r).size(), kBatches) << "n=" << n << " seed=" << seed;
    for (SeqNum s = 1; s <= kBatches; ++s)
      ASSERT_EQ(h.executed(r)[s - 1].seq, s);
  }
  ASSERT_TRUE(h.logs_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PbftScheduleProperty,
    ::testing::Combine(::testing::Values(4u, 7u, 10u, 16u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// PBFT: safety under f crashed replicas with random schedules.
// ---------------------------------------------------------------------------

class PbftCrashProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(PbftCrashProperty, ProgressAndAgreementWithFCrashes) {
  auto [n, seed] = GetParam();
  EngineHarness<PbftEngine> h(n);
  Rng rng(seed);
  // Crash exactly f distinct non-primary replicas.
  std::uint32_t f = max_faulty(n);
  std::set<ReplicaId> crashed;
  while (crashed.size() < f) {
    auto r = static_cast<ReplicaId>(1 + rng.below(n - 1));
    if (crashed.insert(r).second) h.crash(r);
  }

  constexpr SeqNum kBatches = 6;
  for (SeqNum s = 1; s <= kBatches; ++s) {
    h.perform(0, h.engine(0).make_preprepare(
                     s, make_batch(1, s * 10, 1), s,
                     crypto::sha256("c" + std::to_string(s))));
  }
  h.run_all_shuffled(rng);

  for (ReplicaId r = 0; r < n; ++r) {
    if (crashed.contains(r)) continue;
    ASSERT_EQ(h.executed(r).size(), kBatches)
        << "n=" << n << " seed=" << seed << " replica=" << r;
  }
  ASSERT_TRUE(h.logs_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PbftCrashProperty,
    ::testing::Combine(::testing::Values(4u, 7u, 13u),
                       ::testing::Values(11u, 12u, 13u, 14u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Zyzzyva: history convergence under random schedules (order requests may
// arrive out of order; the buffer must restore the chain).
// ---------------------------------------------------------------------------

class ZyzzyvaScheduleProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ZyzzyvaScheduleProperty, HistoriesConvergeUnderRandomSchedules) {
  std::uint64_t seed = GetParam();
  EngineHarness<ZyzzyvaEngine> h(4);
  constexpr SeqNum kBatches = 10;
  for (SeqNum s = 1; s <= kBatches; ++s) {
    h.perform(0, h.engine(0).make_order_request(
                     s, make_batch(1, s * 10, 1), s,
                     crypto::sha256("z" + std::to_string(s))));
  }
  Rng rng(seed);
  h.run_all_shuffled(rng);

  Digest hist = h.engine(0).history();
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(h.engine(r).last_spec_executed(), kBatches) << "seed " << seed;
    EXPECT_EQ(h.engine(r).history(), hist) << "seed " << seed;
    ASSERT_EQ(h.executed(r).size(), kBatches);
    for (SeqNum s = 1; s <= kBatches; ++s)
      EXPECT_EQ(h.executed(r)[s - 1].seq, s);
  }
  EXPECT_TRUE(h.logs_consistent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZyzzyvaScheduleProperty,
                         ::testing::Range<std::uint64_t>(100, 112));

// ---------------------------------------------------------------------------
// SHA-256: arbitrary chunkings must agree with one-shot hashing.
// ---------------------------------------------------------------------------

class Sha256ChunkingProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(Sha256ChunkingProperty, StreamingEqualsOneShot) {
  Rng rng(GetParam());
  Bytes data(1 + rng.below(5000));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  Digest expect = crypto::sha256(BytesView(data));

  crypto::Sha256 h;
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t chunk = 1 + rng.below(97);
    chunk = std::min(chunk, data.size() - pos);
    h.update(BytesView(data).subspan(pos, chunk));
    pos += chunk;
  }
  EXPECT_EQ(h.finish(), expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sha256ChunkingProperty,
                         ::testing::Range<std::uint64_t>(200, 216));

// ---------------------------------------------------------------------------
// Checkpoint GC safety: for any checkpoint interval, slots never grow
// beyond interval + in-flight window once checkpoints stabilize.
// ---------------------------------------------------------------------------

class CheckpointIntervalProperty
    : public ::testing::TestWithParam<SeqNum> {};

TEST_P(CheckpointIntervalProperty, SlotsBoundedByInterval) {
  SeqNum interval = GetParam();
  EngineHarness<PbftEngine> h(4, interval);
  constexpr SeqNum kBatches = 24;
  for (SeqNum s = 1; s <= kBatches; ++s) {
    h.perform(0, h.engine(0).make_preprepare(
                     s, make_batch(1, s, 1), s,
                     crypto::sha256("k" + std::to_string(s))));
    h.run_all();
  }
  SeqNum expected_stable = (kBatches / interval) * interval;
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(h.engine(r).stable_checkpoint(), expected_stable);
    EXPECT_LE(h.engine(r).live_slots(), kBatches - expected_stable);
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, CheckpointIntervalProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12));

}  // namespace
}  // namespace rdb::protocol
