// Directional tests for the factor effects the paper measures: each knob
// must move throughput/latency the way §5 reports, at test-sized scale.
#include <gtest/gtest.h>

#include "simfab/fabric.h"

namespace rdb::simfab {
namespace {

FabricConfig base() {
  FabricConfig cfg;
  cfg.replicas = 4;
  cfg.clients = 1'000;
  cfg.client_machines = 2;
  cfg.batch_size = 20;
  cfg.warmup_ns = 300'000'000;
  cfg.measure_ns = 500'000'000;
  return cfg;
}

TEST(SimFabricEffects, LargerMessagesReduceThroughput) {
  FabricConfig small = base();
  auto r_small = Fabric(small).run();

  FabricConfig big = base();
  big.payload_padding = 4'000;  // ~80KB pre-prepares at batch 20
  auto r_big = Fabric(big).run();

  EXPECT_GT(r_small.metrics.throughput_tps,
            1.2 * r_big.metrics.throughput_tps);
  EXPECT_LT(r_small.metrics.latency_avg_ms, r_big.metrics.latency_avg_ms);
}

TEST(SimFabricEffects, MoreClientsRaiseLatencyNotThroughput) {
  FabricConfig few = base();
  few.clients = 2'000;
  auto r_few = Fabric(few).run();

  FabricConfig many = base();
  many.clients = 8'000;
  auto r_many = Fabric(many).run();

  // Saturated either way: throughput within 20%, latency up by ~4x.
  EXPECT_NEAR(r_many.metrics.throughput_tps / r_few.metrics.throughput_tps,
              1.0, 0.2);
  EXPECT_GT(r_many.metrics.latency_avg_ms,
            2.0 * r_few.metrics.latency_avg_ms);
}

TEST(SimFabricEffects, StrictOrderingThrottlesThroughput) {
  // §4.5/§6: serializing consensus (one round in flight) leaves the
  // pipeline idle for a full round trip per batch.
  FabricConfig ooo = base();
  auto r_ooo = Fabric(ooo).run();

  FabricConfig serial = base();
  serial.max_inflight_batches = 1;
  serial.warmup_ns = 1'000'000'000;
  serial.measure_ns = 1'500'000'000;
  auto r_serial = Fabric(serial).run();

  EXPECT_GT(r_ooo.metrics.throughput_tps,
            1.5 * r_serial.metrics.throughput_tps);
}

TEST(SimFabricEffects, InflightCapMonotone) {
  double prev = 0;
  for (std::uint32_t cap : {1u, 4u, 0u}) {
    FabricConfig cfg = base();
    cfg.max_inflight_batches = cap;
    cfg.warmup_ns = 800'000'000;
    cfg.measure_ns = 1'000'000'000;
    auto r = Fabric(cfg).run();
    EXPECT_GE(r.metrics.throughput_tps, prev * 0.95)
        << "cap=" << cap;  // throughput must not fall as the cap loosens
    prev = r.metrics.throughput_tps;
  }
}

TEST(SimFabricEffects, DeeperPipelineRaisesThroughput) {
  // The headline claim (Q2/Q3): the multi-threaded pipelined architecture
  // beats the monolithic single-worker design.
  FabricConfig mono = base();
  mono.clients = 4'000;
  mono.batch_threads = 0;
  mono.execute_threads = 0;
  auto r_mono = Fabric(mono).run();

  FabricConfig deep = base();
  deep.clients = 4'000;  // standard 2B1E pipeline
  auto r_deep = Fabric(deep).run();

  EXPECT_GT(r_deep.metrics.throughput_tps,
            1.3 * r_mono.metrics.throughput_tps);
  EXPECT_LT(r_deep.metrics.latency_avg_ms, r_mono.metrics.latency_avg_ms);
}

TEST(SimFabricEffects, CryptoSchemeRankingMatchesPaper) {
  auto run_scheme = [&](crypto::SchemeConfig schemes) {
    FabricConfig cfg = base();
    cfg.clients = 4'000;
    cfg.schemes = schemes;
    return Fabric(cfg).run().metrics.throughput_tps;
  };
  double none = run_scheme(crypto::SchemeConfig::none());
  double standard = run_scheme(crypto::SchemeConfig::standard());
  double ed = run_scheme(crypto::SchemeConfig::all_ed25519());

  // Figure 13's ranking: none >= CMAC+ED25519 >= all-ED25519.
  EXPECT_GE(none, standard * 0.98);
  EXPECT_GE(standard, ed * 0.98);
}

TEST(SimFabricEffects, CoreSweepMonotone) {
  double prev = 0;
  for (std::uint32_t cores : {1u, 2u, 4u, 8u}) {
    FabricConfig cfg = base();
    cfg.clients = 4'000;
    cfg.cores = cores;
    auto r = Fabric(cfg).run();
    EXPECT_GE(r.metrics.throughput_tps, prev * 0.9) << cores << " cores";
    prev = r.metrics.throughput_tps;
  }
}

TEST(SimFabricEffects, UpperBoundLatencyScalesWithClients) {
  FabricConfig a = base();
  a.mode = RunMode::kUpperBoundNoExec;
  a.clients = 2'000;
  auto ra = Fabric(a).run();

  FabricConfig b = base();
  b.mode = RunMode::kUpperBoundNoExec;
  b.clients = 8'000;
  auto rb = Fabric(b).run();

  EXPECT_GT(rb.metrics.latency_avg_ms, 1.5 * ra.metrics.latency_avg_ms);
}

TEST(SimFabricEffects, ViewChangeRecoversFromDeadPrimary) {
  FabricConfig cfg = base();
  cfg.failed_replicas = {0};
  cfg.request_timeout_ns = 60'000'000;
  cfg.zyz_client_timeout_ns = 150'000'000;  // client retransmit pace
  cfg.warmup_ns = 2'000'000'000;
  cfg.measure_ns = 2'000'000'000;
  Fabric fab(cfg);
  auto r = fab.run();
  EXPECT_GT(r.view_changes, 0u);
  EXPECT_GT(r.metrics.committed_txns, 0u);
}

TEST(SimFabricEffects, BothProtocolsAgreeOnChainShape) {
  // Same workload, both protocols: block counts are in the same ballpark
  // (one consensus round per batch either way).
  FabricConfig p = base();
  auto rp = Fabric(p).run();
  FabricConfig z = base();
  z.protocol = Protocol::kZyzzyva;
  auto rz = Fabric(z).run();
  EXPECT_GT(rp.blocks_committed, 0u);
  EXPECT_GT(rz.blocks_committed, 0u);
}

}  // namespace
}  // namespace rdb::simfab
