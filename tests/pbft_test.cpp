// PBFT engine: happy path, out-of-order and duplicate handling, byzantine
// primary behaviour, checkpoint garbage collection, and view changes —
// all driven deterministically through the engine harness.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "tests/engine_harness.h"

namespace rdb::protocol {
namespace {

using test::EngineHarness;
using test::make_batch;

Digest digest_of(const std::string& tag) { return crypto::sha256(tag); }

/// Drives the primary of harness `h` to propose batch `seq`.
void propose(EngineHarness<PbftEngine>& h, SeqNum seq,
             const std::string& tag = "") {
  ReplicaId p = h.engine(0).primary();
  auto txns = make_batch(/*client=*/1, seq * 100, 3);
  std::string t = tag.empty() ? "batch-" + std::to_string(seq) : tag;
  h.perform(p, h.engine(p).make_preprepare(seq, std::move(txns),
                                           (seq - 1) * 3 + 1, digest_of(t)));
}

TEST(Pbft, HappyPathCommitsAndExecutes) {
  EngineHarness<PbftEngine> h(4);
  propose(h, 1);
  h.run_all();
  for (ReplicaId r = 0; r < 4; ++r) {
    ASSERT_EQ(h.executed(r).size(), 1u) << "replica " << r;
    EXPECT_EQ(h.executed(r)[0].seq, 1u);
    EXPECT_EQ(h.executed(r)[0].batch_digest, digest_of("batch-1"));
    // Block certificate: 2f+1 commit votes collected (f = 1 -> 3 votes).
    EXPECT_GE(h.executed(r)[0].certificate.size(), 3u);
  }
  EXPECT_TRUE(h.logs_consistent());
  EXPECT_EQ(h.engine(0).metrics().preprepares_sent, 1u);
  EXPECT_EQ(h.engine(1).metrics().prepares_sent, 1u);
  EXPECT_EQ(h.engine(1).metrics().commits_sent, 1u);
}

TEST(Pbft, MultipleBatchesExecuteInOrder) {
  EngineHarness<PbftEngine> h(4);
  for (SeqNum s = 1; s <= 10; ++s) propose(h, s);
  h.run_all();
  for (ReplicaId r = 0; r < 4; ++r) {
    ASSERT_EQ(h.executed(r).size(), 10u);
    for (SeqNum s = 1; s <= 10; ++s)
      EXPECT_EQ(h.executed(r)[s - 1].seq, s);
  }
  EXPECT_TRUE(h.logs_consistent());
}

TEST(Pbft, OutOfOrderConsensusStillExecutesInOrder) {
  // §4.5/§4.6: propose 3 batches, deliver everything in random order —
  // execution must come out 1, 2, 3 at every replica.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EngineHarness<PbftEngine> h(4);
    propose(h, 1);
    propose(h, 2);
    propose(h, 3);
    Rng rng(seed);
    h.run_all_shuffled(rng);
    for (ReplicaId r = 0; r < 4; ++r) {
      ASSERT_EQ(h.executed(r).size(), 3u) << "seed " << seed;
      for (SeqNum s = 1; s <= 3; ++s)
        EXPECT_EQ(h.executed(r)[s - 1].seq, s) << "seed " << seed;
    }
    EXPECT_TRUE(h.logs_consistent()) << "seed " << seed;
  }
}

TEST(Pbft, DuplicateMessagesAreIdempotent) {
  EngineHarness<PbftEngine> h(4);
  ReplicaId p = 0;
  auto acts = h.engine(p).make_preprepare(1, make_batch(1, 0, 2), 1,
                                          digest_of("dup"));
  // Feed the same pre-prepare to replica 1 twice.
  Message pp;
  for (auto& a : acts) {
    if (auto* bc = std::get_if<BroadcastAction>(&a)) pp = bc->msg;
  }
  auto first = h.engine(1).on_preprepare(pp);
  auto second = h.engine(1).on_preprepare(pp);
  EXPECT_FALSE(first.empty());   // prepare broadcast emitted once
  EXPECT_TRUE(second.empty());   // duplicate ignored

  // Duplicate prepares from the same replica count once.
  Prepare pr;
  pr.view = 0;
  pr.seq = 1;
  pr.batch_digest = digest_of("dup");
  Message pm;
  pm.from = Endpoint::replica(2);
  pm.payload = pr;
  (void)h.engine(1).on_prepare(pm);
  auto again = h.engine(1).on_prepare(pm);
  EXPECT_TRUE(again.empty());
}

TEST(Pbft, EquivocatingPrimaryCannotSplitReplicas) {
  // A byzantine primary sends conflicting pre-prepares for the same seq to
  // different replicas. Neither conflicting batch can gather 2f prepares
  // from correct replicas, so nothing commits — safety holds.
  EngineHarness<PbftEngine> h(4);
  PrePrepare a;
  a.view = 0;
  a.seq = 1;
  a.batch_digest = digest_of("A");
  a.txns = make_batch(1, 0, 1);
  PrePrepare b = a;
  b.batch_digest = digest_of("B");

  Message ma;
  ma.from = Endpoint::replica(0);
  ma.payload = a;
  Message mb;
  mb.from = Endpoint::replica(0);
  mb.payload = b;

  // Replicas 1 and 2 see A; replica 3 sees B.
  h.perform(1, h.engine(1).on_preprepare(ma));
  h.perform(2, h.engine(2).on_preprepare(ma));
  h.perform(3, h.engine(3).on_preprepare(mb));
  h.run_all();

  // Replica 3's prepare (digest B) must be rejected by 1 and 2, and vice
  // versa; at most the A-side can prepare (2 prepares = 2f), but replica 3
  // never prepares B (only 1 matching prepare). No replica may execute B.
  for (ReplicaId r = 1; r < 4; ++r) {
    for (const auto& ex : h.executed(r))
      EXPECT_NE(ex.batch_digest, digest_of("B"));
  }
  EXPECT_GT(h.engine(3).metrics().rejected_msgs +
                h.engine(1).metrics().rejected_msgs +
                h.engine(2).metrics().rejected_msgs,
            0u);
}

TEST(Pbft, SecondPrePrepareForSameSeqIgnored) {
  EngineHarness<PbftEngine> h(4);
  PrePrepare a;
  a.view = 0;
  a.seq = 1;
  a.batch_digest = digest_of("first");
  a.txns = make_batch(1, 0, 1);
  Message ma;
  ma.from = Endpoint::replica(0);
  ma.payload = a;
  (void)h.engine(1).on_preprepare(ma);

  PrePrepare b = a;
  b.batch_digest = digest_of("second");
  Message mb;
  mb.from = Endpoint::replica(0);
  mb.payload = b;
  auto acts = h.engine(1).on_preprepare(mb);
  EXPECT_TRUE(acts.empty());
  EXPECT_GE(h.engine(1).metrics().rejected_msgs, 1u);
}

TEST(Pbft, PrePrepareFromNonPrimaryRejected) {
  EngineHarness<PbftEngine> h(4);
  PrePrepare pp;
  pp.view = 0;
  pp.seq = 1;
  pp.batch_digest = digest_of("fake");
  Message m;
  m.from = Endpoint::replica(2);  // not the primary of view 0
  m.payload = pp;
  EXPECT_TRUE(h.engine(1).on_preprepare(m).empty());
  EXPECT_GE(h.engine(1).metrics().rejected_msgs, 1u);
}

TEST(Pbft, WrongViewMessagesRejected) {
  EngineHarness<PbftEngine> h(4);
  Prepare pr;
  pr.view = 5;
  pr.seq = 1;
  pr.batch_digest = digest_of("x");
  Message m;
  m.from = Endpoint::replica(2);
  m.payload = pr;
  EXPECT_TRUE(h.engine(1).on_prepare(m).empty());
}

TEST(Pbft, OutOfWindowSequenceRejected) {
  EngineHarness<PbftEngine> h(4);
  PrePrepare pp;
  pp.view = 0;
  pp.seq = 10'000'000;  // far beyond the watermark window
  pp.batch_digest = digest_of("far");
  Message m;
  m.from = Endpoint::replica(0);
  m.payload = pp;
  EXPECT_TRUE(h.engine(1).on_preprepare(m).empty());
}

TEST(Pbft, SurvivesFBackupFailures) {
  EngineHarness<PbftEngine> h(4);
  h.crash(3);  // f = 1
  for (SeqNum s = 1; s <= 5; ++s) propose(h, s);
  h.run_all();
  for (ReplicaId r = 0; r < 3; ++r) {
    ASSERT_EQ(h.executed(r).size(), 5u) << "replica " << r;
  }
  EXPECT_TRUE(h.logs_consistent());
}

TEST(Pbft, CheckpointBecomesStableAndGarbageCollects) {
  EngineHarness<PbftEngine> h(4, /*cp_interval=*/5);
  for (SeqNum s = 1; s <= 10; ++s) propose(h, s);
  h.run_all();
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(h.engine(r).stable_checkpoint(), 10u) << "replica " << r;
    EXPECT_EQ(h.stable_checkpoint_seen(r), 10u);
    // Slots at or below the stable checkpoint are garbage-collected.
    EXPECT_EQ(h.engine(r).live_slots(), 0u);
    EXPECT_GE(h.engine(r).metrics().stable_checkpoints, 1u);
  }
}

TEST(Pbft, TimersArmedOnPrePrepareCancelledOnExecute) {
  EngineHarness<PbftEngine> h(4);
  propose(h, 1);
  h.run_all();
  // After execution, backups must have cancelled the request timer.
  for (ReplicaId r = 1; r < 4; ++r)
    EXPECT_TRUE(h.timers(r).empty()) << "replica " << r;
}

TEST(Pbft, ViewChangeElectsNextPrimaryAndResumesProgress) {
  EngineHarness<PbftEngine> h(4);
  propose(h, 1);
  h.run_all();

  // The primary (0) proposes seq 2 but goes silent before the prepare
  // phase completes: backups hold the pre-prepare and an armed timer.
  PrePrepare pp;
  pp.view = 0;
  pp.seq = 2;
  pp.batch_digest = digest_of("stalled");
  pp.txns = make_batch(1, 200, 1);
  Message stalled;
  stalled.from = Endpoint::replica(0);
  stalled.payload = pp;
  for (ReplicaId r = 1; r < 4; ++r)
    h.perform(r, h.engine(r).on_preprepare(stalled));
  h.drop_if([](const test::Delivery&) { return true; });  // prepares lost
  h.crash(0);

  // Every backup's request timer for seq 2 expires independently.
  for (ReplicaId r = 1; r < 4; ++r) h.fire_timer(r, 2);
  h.run_all();
  // f+1 join rule then 2f+1 quorum: all live replicas move to view 1.
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_EQ(h.engine(r).view(), 1u) << "replica " << r;
    EXPECT_FALSE(h.engine(r).in_view_change());
    EXPECT_EQ(h.engine(r).primary(), 1u);
  }

  // The new primary proposes and the cluster commits in view 1.
  h.perform(1, h.engine(1).make_preprepare(h.engine(1).suggest_next_seq(),
                                           make_batch(1, 300, 2), 4,
                                           digest_of("after-vc")));
  h.run_all();
  for (ReplicaId r = 1; r < 4; ++r) {
    ASSERT_FALSE(h.executed(r).empty());
    EXPECT_EQ(h.executed(r).back().batch_digest, digest_of("after-vc"));
  }
  EXPECT_TRUE(h.logs_consistent());
}

TEST(Pbft, ViewChangeRepreparesPreparedBatch) {
  // A batch that PREPARED (2f prepares) but did not commit before the view
  // change must be re-proposed and executed in the new view with the SAME
  // digest — the core view-change safety property.
  EngineHarness<PbftEngine> h(4);
  propose(h, 1);
  // Let prepares flow but drop all commits, so everyone prepares seq 1 but
  // nobody commits it.
  bool saw_commit = false;
  for (int guard = 0; guard < 1000; ++guard) {
    h.drop_if([&](const test::Delivery& d) {
      if (d.msg.type() == MsgType::kCommit) {
        saw_commit = true;
        return true;
      }
      return false;
    });
    if (!h.step()) break;
  }
  EXPECT_TRUE(saw_commit);
  for (ReplicaId r = 0; r < 4; ++r) EXPECT_TRUE(h.executed(r).empty());

  h.crash(0);
  for (ReplicaId r = 1; r < 4; ++r) h.fire_timer(r, 1);
  h.run_all();

  for (ReplicaId r = 1; r < 4; ++r) {
    ASSERT_EQ(h.executed(r).size(), 1u) << "replica " << r;
    EXPECT_EQ(h.executed(r)[0].seq, 1u);
    EXPECT_EQ(h.executed(r)[0].batch_digest, digest_of("batch-1"));
  }
}

TEST(Pbft, StaleViewChangeRejected) {
  EngineHarness<PbftEngine> h(4);
  ViewChange vc;
  vc.new_view = 0;  // not greater than current view
  Message m;
  m.from = Endpoint::replica(2);
  m.payload = vc;
  EXPECT_TRUE(h.engine(1).on_view_change(m).empty());
  EXPECT_GE(h.engine(1).metrics().rejected_msgs, 1u);
}

TEST(Pbft, NewViewFromWrongPrimaryRejected) {
  EngineHarness<PbftEngine> h(4);
  NewView nv;
  nv.view = 1;
  Message m;
  m.from = Endpoint::replica(3);  // primary of view 1 is replica 1
  m.payload = nv;
  EXPECT_TRUE(h.engine(2).on_new_view(m).empty());
  EXPECT_EQ(h.engine(2).view(), 0u);
}

TEST(Pbft, NonPrimaryCannotPropose) {
  EngineHarness<PbftEngine> h(4);
  auto acts = h.engine(1).make_preprepare(1, make_batch(1, 0, 1), 1,
                                          digest_of("nope"));
  EXPECT_TRUE(acts.empty());
}

TEST(Pbft, CommitCertificateContainsDistinctReplicas) {
  EngineHarness<PbftEngine> h(4);
  propose(h, 1);
  h.run_all();
  const auto& cert = h.executed(2)[0].certificate;
  std::set<ReplicaId> voters;
  for (const auto& vote : cert) voters.insert(vote.replica);
  EXPECT_EQ(voters.size(), cert.size());
  EXPECT_GE(voters.size(), commit_quorum(4) - 1);
}

}  // namespace
}  // namespace rdb::protocol
