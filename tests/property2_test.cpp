// Second property-test bank: model-based PageDB checking (against a
// std::map reference, including reopen), PoE schedule sweeps, and network
// FIFO ordering in the simulator.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

#include "crypto/sha256.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "storage/page_db.h"
#include "tests/engine_harness.h"

namespace rdb {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// PageDB vs a reference model, randomized, with mid-stream reopen.
// ---------------------------------------------------------------------------

class PageDbModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageDbModelProperty, MatchesReferenceModelAcrossReopen) {
  std::uint64_t seed = GetParam();
  auto dir = fs::temp_directory_path() /
             ("pagedb_model_" + std::to_string(seed));
  fs::remove_all(dir);
  fs::create_directories(dir);
  storage::PageDbConfig cfg;
  cfg.path = (dir / "db").string();
  cfg.cache_pages = 4;   // force heavy eviction
  cfg.bucket_count = 16; // force chains

  std::map<std::string, std::string> model;
  Rng rng(seed);

  auto random_key = [&] { return "k" + std::to_string(rng.below(60)); };
  auto random_value = [&] {
    return std::string(1 + rng.below(120), static_cast<char>('a' + rng.below(26)));
  };

  {
    storage::PageDb db(cfg);
    for (int op = 0; op < 400; ++op) {
      if (rng.chance(0.6)) {
        auto k = random_key();
        auto v = random_value();
        db.put(k, v);
        model[k] = v;
      } else {
        auto k = random_key();
        auto got = db.get(k);
        auto it = model.find(k);
        if (it == model.end()) {
          ASSERT_FALSE(got.has_value()) << "key " << k;
        } else {
          ASSERT_TRUE(got.has_value()) << "key " << k;
          ASSERT_EQ(*got, it->second);
        }
      }
    }
    ASSERT_EQ(db.size(), model.size());
    if (rng.chance(0.5)) db.checkpoint();
  }

  // Reopen (destructor checkpointed; WAL covered anything else) and verify
  // the entire model.
  {
    storage::PageDb db(cfg);
    ASSERT_EQ(db.size(), model.size());
    for (const auto& [k, v] : model) {
      auto got = db.get(k);
      ASSERT_TRUE(got.has_value()) << "key " << k;
      ASSERT_EQ(*got, v);
    }
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageDbModelProperty,
                         ::testing::Range<std::uint64_t>(300, 310));

}  // namespace
}  // namespace rdb

// ---------------------------------------------------------------------------
// PoE under random schedules and crashes.
// ---------------------------------------------------------------------------

namespace rdb::protocol {
namespace {

using test::EngineHarness;
using test::make_batch;

class PoeScheduleProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(PoeScheduleProperty, AgreementUnderRandomSchedulesAndCrashes) {
  auto [n, seed] = GetParam();
  EngineHarness<PoeEngine> h(n);
  Rng rng(seed);
  // Crash up to f random backups.
  std::uint32_t f = max_faulty(n);
  std::set<ReplicaId> crashed;
  std::uint32_t to_crash = rng.below(f + 1);
  while (crashed.size() < to_crash) {
    auto r = static_cast<ReplicaId>(1 + rng.below(n - 1));
    if (crashed.insert(r).second) h.crash(r);
  }

  constexpr SeqNum kBatches = 7;
  for (SeqNum s = 1; s <= kBatches; ++s) {
    h.perform(0, h.engine(0).make_propose(
                     s, make_batch(1, s * 10, 1), s,
                     crypto::sha256("poe" + std::to_string(s))));
  }
  h.run_all_shuffled(rng);

  for (ReplicaId r = 0; r < n; ++r) {
    if (crashed.contains(r)) continue;
    ASSERT_EQ(h.executed(r).size(), kBatches)
        << "n=" << n << " seed=" << seed << " replica=" << r;
    for (SeqNum s = 1; s <= kBatches; ++s)
      ASSERT_EQ(h.executed(r)[s - 1].seq, s);
  }
  ASSERT_TRUE(h.logs_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PoeScheduleProperty,
    ::testing::Combine(::testing::Values(4u, 7u, 13u),
                       ::testing::Values(21u, 22u, 23u, 24u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace rdb::protocol

// ---------------------------------------------------------------------------
// Simulated network: per-link FIFO holds regardless of send pattern.
// ---------------------------------------------------------------------------

namespace rdb::sim {
namespace {

class NetworkFifoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFifoProperty, PerLinkDeliveryPreservesSendOrder) {
  Rng rng(GetParam());
  Scheduler sched;
  NetworkConfig cfg;
  cfg.latency_ns = 1000 + rng.below(100'000);
  cfg.bandwidth_gbps = 1.0 + rng.below(20);
  Network net(sched, cfg, 3);

  // Record the order sends actually happen per link; delivery must match.
  std::vector<int> sent[2], delivered[2];
  int next_id = 0;
  for (int burst = 0; burst < 20; ++burst) {
    sched.schedule(rng.below(1'000'000), [&, id = next_id++] {
      Network::NodeId src = id % 2 == 0 ? 0 : 1;
      sent[src].push_back(id);
      net.send(src, 2, 100 + rng.below(5000),
               [&delivered, src, id] { delivered[src].push_back(id); });
    });
  }
  sched.run();

  EXPECT_EQ(delivered[0], sent[0]);
  EXPECT_EQ(delivered[1], sent[1]);
  EXPECT_EQ(delivered[0].size() + delivered[1].size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFifoProperty,
                         ::testing::Range<std::uint64_t>(400, 408));

}  // namespace
}  // namespace rdb::sim
