// Lock-free queues and buffer pools — single-threaded semantics plus
// multi-threaded stress (counts and content preservation under contention).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "queues/blocking_queue.h"
#include "queues/buffer_pool.h"
#include "queues/mpmc_queue.h"
#include "queues/spsc_ring.h"

namespace rdb {
namespace {

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  int v;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, FullRejectsPush) {
  MpmcQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  int v;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_TRUE(q.try_push(99));  // slot freed
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(MpmcQueue, WrapAroundManyTimes) {
  MpmcQueue<int> q(4);
  int v;
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.try_push(round));
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, round);
  }
}

TEST(MpmcQueue, MultiProducerMultiConsumerPreservesSum) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20'000;
  MpmcQueue<std::uint64_t> q(1024);
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::jthread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t v;
      while (!done.load(std::memory_order_acquire) ||
             consumed_count.load() < kProducers * kPerProducer) {
        if (q.try_pop(v)) {
          consumed_sum.fetch_add(v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
        if (consumed_count.load() >= kProducers * kPerProducer) break;
      }
    });
  }
  std::uint64_t expected_sum = 0;
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          std::uint64_t v =
              static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
          while (!q.try_push(v)) std::this_thread::yield();
        }
      });
    }
    for (int p = 0; p < kProducers; ++p)
      for (int i = 0; i < kPerProducer; ++i)
        expected_sum += static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
  }
  done.store(true, std::memory_order_release);
  threads.clear();
  EXPECT_EQ(consumed_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed_sum.load(), expected_sum);
}

TEST(SpscRing, FifoAndCapacity) {
  SpscRing<int> r(4);
  EXPECT_TRUE(r.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  int v;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(r.try_pop(v));
}

TEST(SpscRing, ProducerConsumerStream) {
  SpscRing<std::uint64_t> r(64);
  constexpr std::uint64_t kCount = 200'000;
  std::uint64_t received = 0, sum = 0;
  std::jthread consumer([&] {
    std::uint64_t v;
    while (received < kCount) {
      if (r.try_pop(v)) {
        sum += v;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 1; i <= kCount; ++i)
    while (!r.try_push(i)) std::this_thread::yield();
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(BlockingQueue, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::jthread pusher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(7);
  });
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(BlockingQueue, ShutdownUnblocksWithNullopt) {
  BlockingQueue<int> q;
  std::jthread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.shutdown();
  });
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  auto v = q.pop_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(v.has_value());
  q.push(3);
  v = q.pop_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 3);
}

TEST(BlockingQueue, DrainsRemainingAfterShutdown) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.shutdown();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

struct Pooled {
  int value{0};
  std::vector<int> data;
};

TEST(BufferPool, ReusesPopulation) {
  BufferPool<Pooled> pool(2);
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_FALSE(a.heap);
  EXPECT_FALSE(b.heap);
  Pooled* first = a.ptr;
  a.ptr->value = 42;
  pool.release(a);
  auto c = pool.acquire();
  EXPECT_EQ(c.ptr, first);       // same object recirculated
  EXPECT_EQ(c.ptr->value, 0);    // scrubbed before reuse
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.hits(), 3u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPool, FallsBackToHeapWhenDrained) {
  BufferPool<Pooled> pool(1);
  auto a = pool.acquire();
  auto b = pool.acquire();  // pool empty: heap allocation
  EXPECT_FALSE(a.heap);
  EXPECT_TRUE(b.heap);
  EXPECT_EQ(pool.misses(), 1u);
  pool.release(b);  // heap object deleted, not pooled
  pool.release(a);
}

TEST(BufferPool, PooledPtrRaii) {
  BufferPool<Pooled> pool(1);
  {
    auto p = acquire_pooled(pool);
    p->value = 9;
    EXPECT_TRUE(static_cast<bool>(p));
  }  // released on scope exit
  auto again = pool.acquire();
  EXPECT_EQ(again.ptr->value, 0);
  pool.release(again);
}

TEST(BufferPool, ConcurrentAcquireRelease) {
  BufferPool<Pooled> pool(16);
  std::atomic<int> heap_count{0};
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 10'000; ++i) {
          auto h = pool.acquire();
          if (h.heap) heap_count.fetch_add(1);
          h.ptr->value = i;
          pool.release(h);
        }
      });
    }
  }
  // Heap fallback happens when a releaser is descheduled mid-push (the
  // Vyukov free list stalls behind the incomplete cell). Under a sanitizer
  // on a loaded host entire time slices can go to one thread, so any
  // percentage threshold is flaky (seen >50% under TSan + parallel build).
  // Assert only the scheduling-independent invariant: the free list is not
  // wholly broken, i.e. SOME acquisition reused a pooled buffer.
  EXPECT_LT(heap_count.load(), 40'000);  // 40'000 == every acquisition
}

}  // namespace
}  // namespace rdb
