// Tests for the parse+validate door (ISSUE 5): per-validator negative paths
// (every RejectReason reachable and correctly named), round-trip/liveness
// properties over every message type via the wirefuzz sample generator, a
// deterministic fuzz smoke run, and the checked-in corpus regression.
//
// Tests sit INSIDE the taint boundary (scripts/check_static.sh, check_taint
// allows tests/), so they may call Message::parse and open Untrusted<T>
// directly where that makes the assertion sharper.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "protocol/validate.h"
#include "protocol/wirefuzz.h"

namespace rdb::protocol {
namespace {

constexpr MsgType kAllTypes[] = {
    MsgType::kClientRequest, MsgType::kPrePrepare,    MsgType::kPrepare,
    MsgType::kCommit,        MsgType::kClientResponse, MsgType::kCheckpoint,
    MsgType::kViewChange,    MsgType::kNewView,        MsgType::kOrderRequest,
    MsgType::kSpecResponse,  MsgType::kCommitCert,     MsgType::kLocalCommit,
    MsgType::kBatchRequest,  MsgType::kBatchResponse,
    MsgType::kSnapshotRequest, MsgType::kSnapshotResponse,
};

ValidationContext ctx4() {
  ValidationContext c;
  c.n = 4;
  c.current_view = 5;
  c.committed_seq = 10;
  return c;
}

Transaction ok_txn() {
  Transaction t;
  t.client = 1;
  t.req_id = 7;
  t.ops = 2;
  t.payload = Bytes{1, 2, 3};
  t.client_sig = Bytes(64, 0xCD);
  return t;
}

Message wrap(Endpoint from, Payload p) {
  Message m;
  m.from = from;
  m.payload = std::move(p);
  m.signature = Bytes(64, 0xAB);
  return m;
}

/// Serializes `m` and runs it through the single door.
RejectReason verdict_of(const Message& m, const ValidationContext& ctx) {
  Bytes wire = m.serialize();
  return validate_wire(BytesView(wire), ctx).reason;
}

// ---------------------------------------------------------------------------
// Liveness + canonicity over every type: the canonical sample of each
// message type is accepted, and the accepted message re-serializes
// byte-identical (no parser ambiguity to split votes with).
// ---------------------------------------------------------------------------

TEST(Validate, EveryTypeRoundTripsThroughTheDoor) {
  Rng rng(2024);
  for (MsgType t : kAllTypes) {
    for (int rep = 0; rep < 25; ++rep) {
      Bytes wire = wirefuzz::sample_wire(rng, t);
      auto v = validate_wire(BytesView(wire), ctx4());
      ASSERT_TRUE(v.ok()) << "type " << int(t) << " rejected: "
                          << reject_reason_name(v.reason);
      EXPECT_EQ(v.msg->get().serialize(), wire)
          << "type " << int(t) << " not canonical";
    }
  }
}

TEST(Validate, AcceptMaskZeroMeansEveryType) {
  Rng rng(7);
  ValidationContext ctx = ctx4();
  ctx.accept_mask = 0;
  for (MsgType t : kAllTypes) {
    Bytes wire = wirefuzz::sample_wire(rng, t);
    EXPECT_TRUE(validate_wire(BytesView(wire), ctx).ok()) << int(t);
  }
}

// ---------------------------------------------------------------------------
// Structural rejects (from parse).
// ---------------------------------------------------------------------------

TEST(Validate, TruncatedFrameIsMalformed) {
  Rng rng(3);
  Bytes wire = wirefuzz::sample_wire(rng, MsgType::kPrepare);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes w(wire.begin(), wire.begin() + cut);
    auto v = validate_wire(BytesView(w), ctx4());
    EXPECT_FALSE(v.ok()) << "accepted a " << cut << "-byte prefix";
    EXPECT_EQ(v.reason, RejectReason::kMalformed) << "cut at " << cut;
  }
}

TEST(Validate, TrailingGarbageIsRejectedNotIgnored) {
  Rng rng(4);
  for (MsgType t : kAllTypes) {
    Bytes wire = wirefuzz::sample_wire(rng, t);
    wire.push_back(0x00);
    auto v = validate_wire(BytesView(wire), ctx4());
    EXPECT_FALSE(v.ok()) << "type " << int(t);
    EXPECT_EQ(v.reason, RejectReason::kTrailingBytes) << "type " << int(t);
  }
}

TEST(Validate, UnknownTypeByteIsMalformed) {
  Rng rng(5);
  Bytes wire = wirefuzz::sample_wire(rng, MsgType::kCommit);
  wire[0] = 0xEE;
  EXPECT_EQ(validate_wire(BytesView(wire), ctx4()).reason,
            RejectReason::kMalformed);
}

// ---------------------------------------------------------------------------
// Envelope rejects.
// ---------------------------------------------------------------------------

TEST(Validate, BadEndpointKindByte) {
  Rng rng(6);
  Bytes wire = wirefuzz::sample_wire(rng, MsgType::kCommit);
  wire[1] = 9;  // no such Endpoint::Kind
  auto v = validate_wire(BytesView(wire), ctx4());
  EXPECT_EQ(v.reason, RejectReason::kBadEndpoint);
}

TEST(Validate, SenderKindMismatch) {
  // A "client request" claiming to come from a replica…
  Message m = wrap(Endpoint::replica(1), ClientRequest{{ok_txn()}, 0});
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kSenderKindMismatch);
  // …and consensus traffic claiming to come from a client.
  Message p = wrap(Endpoint::client(1), Prepare{});
  EXPECT_EQ(verdict_of(p, ctx4()), RejectReason::kSenderKindMismatch);
}

TEST(Validate, ReplicaIdOutOfRange) {
  Message m = wrap(Endpoint::replica(99), Prepare{});
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kReplicaIdOutOfRange);
}

TEST(Validate, AbsurdSignatureLength) {
  Message m = wrap(Endpoint::replica(1), Prepare{});
  m.signature = Bytes(4096, 0xAA);  // default limit is 256
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kBadSignatureLength);
}

TEST(Validate, AcceptMaskRejectsUnexpectedType) {
  ValidationContext ctx = ctx4();
  ctx.accept_mask = accept_bit(MsgType::kClientResponse);
  Message m = wrap(Endpoint::replica(1), Prepare{});
  EXPECT_EQ(verdict_of(m, ctx), RejectReason::kUnexpectedType);
  Message r = wrap(Endpoint::replica(1), ClientResponse{});
  EXPECT_EQ(verdict_of(r, ctx), RejectReason::kNone);
}

// ---------------------------------------------------------------------------
// Size / shape rejects.
// ---------------------------------------------------------------------------

TEST(Validate, EmptyClientRequest) {
  Message m = wrap(Endpoint::client(1), ClientRequest{});
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kEmptyRequest);
}

TEST(Validate, ZeroOpsTransaction) {
  Transaction t = ok_txn();
  t.ops = 0;
  Message m = wrap(Endpoint::client(1), ClientRequest{{t}, 0});
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kBadOpsCount);
}

TEST(Validate, OversizedBatchAgainstCustomLimits) {
  ValidationLimits lim;
  lim.max_batch_txns = 2;
  ValidationContext ctx = ctx4();
  ctx.limits = &lim;
  ClientRequest req;
  req.txns = {ok_txn(), ok_txn(), ok_txn()};
  Message m = wrap(Endpoint::client(1), std::move(req));
  EXPECT_EQ(verdict_of(m, ctx), RejectReason::kBatchTooLarge);
}

TEST(Validate, OversizedTxnPayloadAgainstCustomLimits) {
  ValidationLimits lim;
  lim.max_txn_payload = 8;
  ValidationContext ctx = ctx4();
  ctx.limits = &lim;
  Transaction t = ok_txn();
  t.payload = Bytes(9, 0x11);
  Message m = wrap(Endpoint::client(1), ClientRequest{{t}, 0});
  EXPECT_EQ(verdict_of(m, ctx), RejectReason::kPayloadTooLarge);
}

TEST(Validate, OversizedPrePreparePadding) {
  ValidationLimits lim;
  lim.max_payload_padding = 16;
  ValidationContext ctx = ctx4();
  ctx.limits = &lim;
  PrePrepare pp;
  pp.view = 5;
  pp.seq = 11;
  pp.payload_padding = Bytes(17, 0x22);
  Message m = wrap(Endpoint::replica(0), std::move(pp));
  EXPECT_EQ(verdict_of(m, ctx), RejectReason::kPayloadTooLarge);
}

TEST(Validate, SnapshotResponseLimitsBindBlobAndClaimedRawSize) {
  ValidationLimits lim;
  lim.max_snapshot_bytes = 64;
  ValidationContext ctx = ctx4();
  ctx.limits = &lim;

  SnapshotResponse r;
  r.seq = 12;
  r.raw_bytes = 10;
  r.blob = Bytes(10, 0x11);
  EXPECT_EQ(verdict_of(wrap(Endpoint::replica(2), r), ctx),
            RejectReason::kNone);

  r.blob = Bytes(65, 0x11);
  EXPECT_EQ(verdict_of(wrap(Endpoint::replica(2), r), ctx),
            RejectReason::kPayloadTooLarge);

  // The CLAIMED uncompressed size is the allocation the receiver makes
  // before decompressing — a tiny blob must not get to promise a huge one.
  r.blob = Bytes(10, 0x11);
  r.raw_bytes = 65;
  EXPECT_EQ(verdict_of(wrap(Endpoint::replica(2), r), ctx),
            RejectReason::kPayloadTooLarge);
}

TEST(Validate, SnapshotMessagesRequireReplicaSender) {
  SnapshotRequest q;
  q.have = 1;
  EXPECT_EQ(verdict_of(wrap(Endpoint::client(9), q), ctx4()),
            RejectReason::kSenderKindMismatch);
  SnapshotResponse r;
  r.seq = 12;
  EXPECT_EQ(verdict_of(wrap(Endpoint::client(9), r), ctx4()),
            RejectReason::kSenderKindMismatch);
}

// ---------------------------------------------------------------------------
// Window sanity.
// ---------------------------------------------------------------------------

TEST(Validate, ViewBeyondSlackRejected) {
  ValidationLimits lim;
  lim.view_slack = 100;
  ValidationContext ctx = ctx4();  // current_view = 5
  ctx.limits = &lim;
  Prepare p;
  p.view = 106;  // 5 + 100 + 1
  Message m = wrap(Endpoint::replica(1), p);
  EXPECT_EQ(verdict_of(m, ctx), RejectReason::kViewOutOfWindow);
  p.view = 105;  // exactly at the edge: fine
  Message edge = wrap(Endpoint::replica(1), p);
  EXPECT_EQ(verdict_of(edge, ctx), RejectReason::kNone);
}

TEST(Validate, SeqBeyondWindowRejected) {
  ValidationLimits lim;
  lim.seq_window = 50;
  ValidationContext ctx = ctx4();  // committed_seq = 10
  ctx.limits = &lim;
  Commit c;
  c.view = 5;
  c.seq = 61;  // 10 + 50 + 1
  Message m = wrap(Endpoint::replica(2), c);
  EXPECT_EQ(verdict_of(m, ctx), RejectReason::kSeqOutOfWindow);
  // Stale (low) sequences are NOT the validator's business.
  c.seq = 1;
  Message stale = wrap(Endpoint::replica(2), c);
  EXPECT_EQ(verdict_of(stale, ctx), RejectReason::kNone);
}

// ---------------------------------------------------------------------------
// Certificates: quorum arithmetic and signer distinctness. (The Zyzzyva
// duplicate-signer acceptance was a real bug this PR fixed — a client could
// previously pad a commit certificate with one replica repeated 2f+1 times.)
// ---------------------------------------------------------------------------

TEST(Validate, CommitCertQuorumTooSmall) {
  CommitCert cc;
  cc.view = 5;
  cc.seq = 11;
  cc.signers = {0, 1};  // n = 4 needs 2f+1 = 3
  Message m = wrap(Endpoint::client(1), std::move(cc));
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kQuorumTooSmall);
}

TEST(Validate, CommitCertDuplicateSigner) {
  CommitCert cc;
  cc.view = 5;
  cc.seq = 11;
  cc.signers = {0, 1, 1};  // size passes the quorum bar, but 1 voted twice
  Message m = wrap(Endpoint::client(1), std::move(cc));
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kDuplicateSigner);
}

TEST(Validate, CommitCertPhantomSigner) {
  CommitCert cc;
  cc.view = 5;
  cc.seq = 11;
  cc.signers = {0, 1, 7};  // replica 7 does not exist at n = 4
  Message m = wrap(Endpoint::client(1), std::move(cc));
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kReplicaIdOutOfRange);
}

TEST(Validate, CommitCertValidQuorumAccepted) {
  CommitCert cc;
  cc.view = 5;
  cc.seq = 11;
  cc.signers = {2, 0, 3};  // unordered but distinct and in range
  Message m = wrap(Endpoint::client(1), std::move(cc));
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kNone);
}

TEST(Validate, ViewChangeDuplicateProofSeq) {
  ViewChange vc;
  vc.new_view = 6;
  PreparedProof a;
  a.view = 5;
  a.seq = 12;
  PreparedProof b = a;  // same seq twice: equivocation in the proof list
  vc.prepared = {a, b};
  Message m = wrap(Endpoint::replica(1), std::move(vc));
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kDuplicateProofSeq);
}

TEST(Validate, ViewChangeTooManyProofs) {
  ValidationLimits lim;
  lim.max_proofs = 2;
  ValidationContext ctx = ctx4();
  ctx.limits = &lim;
  ViewChange vc;
  vc.new_view = 6;
  for (SeqNum s = 1; s <= 3; ++s) {
    PreparedProof p;
    p.view = 5;
    p.seq = s;
    vc.prepared.push_back(std::move(p));
  }
  Message m = wrap(Endpoint::replica(1), std::move(vc));
  EXPECT_EQ(verdict_of(m, ctx), RejectReason::kTooManyProofs);
}

// ---------------------------------------------------------------------------
// Catch-up range sanity.
// ---------------------------------------------------------------------------

TEST(Validate, BatchRequestInvertedRange) {
  BatchRequest br;
  br.begin = 10;
  br.end = 5;
  Message m = wrap(Endpoint::replica(1), br);
  EXPECT_EQ(verdict_of(m, ctx4()), RejectReason::kBadCatchupRange);
}

TEST(Validate, BatchRequestAbsurdSpan) {
  ValidationLimits lim;
  lim.max_catchup_span = 100;
  ValidationContext ctx = ctx4();
  ctx.limits = &lim;
  BatchRequest br;
  br.begin = 1;
  br.end = 102;
  Message m = wrap(Endpoint::replica(1), br);
  EXPECT_EQ(verdict_of(m, ctx), RejectReason::kBadCatchupRange);
}

// ---------------------------------------------------------------------------
// The reason table is total: every reason has a distinct printable name.
// ---------------------------------------------------------------------------

TEST(Validate, EveryRejectReasonHasAName) {
  std::vector<std::string> names;
  for (std::size_t i = 1; i < static_cast<std::size_t>(RejectReason::kCount);
       ++i) {
    std::string n = reject_reason_name(static_cast<RejectReason>(i));
    EXPECT_NE(n, "unknown") << "reason " << i;
    EXPECT_FALSE(n.empty());
    for (const auto& seen : names) EXPECT_NE(n, seen) << "duplicate name";
    names.push_back(std::move(n));
  }
}

// ---------------------------------------------------------------------------
// Fuzz smoke: a deterministic in-process run of the structure-aware mutator.
// (CI runs the CLI for 100k iterations under ASan+UBSan; this keeps a
// smaller always-on version in the tier-1 suite.)
// ---------------------------------------------------------------------------

TEST(Validate, WirefuzzSmokeTenThousandMutants) {
  wirefuzz::FuzzConfig cfg;
  cfg.seed = 1;
  cfg.iters = 10000;
  wirefuzz::FuzzResult res = wirefuzz::run(cfg);
  for (const auto& note : res.failure_notes) ADD_FAILURE() << note;
  EXPECT_EQ(res.liveness_failures, 0u);
  EXPECT_EQ(res.canonicity_failures, 0u);
  EXPECT_EQ(res.iterations, cfg.iters);
  EXPECT_GT(res.accepted, 0u);   // kNone samples must be accepted
  EXPECT_GT(res.rejected, 0u);   // mutants must be rejected
  // Every reject landed in a NAMED bucket (nothing silently vanished).
  std::uint64_t bucketed = 0;
  for (std::uint64_t c : res.rejected_by_reason) bucketed += c;
  EXPECT_EQ(bucketed, res.rejected);
}

TEST(Validate, WirefuzzSameSeedSameOutcome) {
  wirefuzz::FuzzConfig cfg;
  cfg.seed = 99;
  cfg.iters = 2000;
  auto a = wirefuzz::run(cfg);
  auto b = wirefuzz::run(cfg);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.rejected_by_reason, b.rejected_by_reason);
}

// ---------------------------------------------------------------------------
// Corpus regression: replay the checked-in exemplars (one per mutation ×
// reject-reason class discovered by the seeded generator) and require the
// safety + canonicity oracles to hold. Guards against a validator change
// silently re-admitting a known-bad frame shape.
// ---------------------------------------------------------------------------

TEST(Validate, CorpusReplayHoldsOracles) {
  namespace fs = std::filesystem;
  fs::path dir(RDB_WIRE_CORPUS_DIR);
  ASSERT_TRUE(fs::exists(dir)) << "corpus missing: " << dir;
  std::vector<Bytes> inputs;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".bin") files.push_back(e.path());
  std::sort(files.begin(), files.end());
  for (const auto& f : files) {
    std::ifstream in(f, std::ios::binary);
    ASSERT_TRUE(in) << f;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Bytes b(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
      b[i] = static_cast<std::uint8_t>(data[i]);
    inputs.push_back(std::move(b));
  }
  ASSERT_GT(inputs.size(), 20u) << "suspiciously small corpus";

  auto res = wirefuzz::replay(inputs, ctx4());
  for (const auto& note : res.failure_notes) ADD_FAILURE() << note;
  EXPECT_EQ(res.canonicity_failures, 0u);
  EXPECT_GT(res.rejected, 0u) << "a corpus of mutants should mostly reject";
}

}  // namespace
}  // namespace rdb::protocol
