// Durable crash recovery end to end: the replica consensus log (group-commit
// WAL), hard kill + restart of a cluster member, and snapshot-anchored rejoin
// for a replica that fell below the batch retention window.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <variant>

#include "protocol/pbft.h"
#include "runtime/cluster.h"
#include "runtime/replica_log.h"
#include "storage/env.h"
#include "storage/faulty_env.h"
#include "workload/ycsb.h"

namespace rdb::runtime {
namespace {

namespace fs = std::filesystem;

using protocol::Actions;
using protocol::Message;

// ---------------------------------------------------------------------------
// ReplicaLog unit tests.
// ---------------------------------------------------------------------------

class ReplicaLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rlog_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "consensus.log").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  ReplicaLogConfig config(storage::Env* env = nullptr) {
    ReplicaLogConfig c;
    c.path = path_;
    c.env = env;
    return c;
  }

  static LoggedBatch batch(SeqNum seq, int ntxns = 2) {
    LoggedBatch b;
    b.seq = seq;
    b.view = 0;
    b.digest.data[0] = static_cast<std::uint8_t>(seq);
    b.txn_begin = seq * 10;
    for (int i = 0; i < ntxns; ++i) {
      protocol::Transaction t;
      t.client = 7;
      t.req_id = seq * 100 + static_cast<RequestId>(i);
      t.payload = {1, 2, 3};
      t.client_sig = {9, 9};
      b.txns.push_back(std::move(t));
    }
    ledger::CommitVote v;
    v.replica = 1;
    v.signature = {4, 5, 6};
    b.certificate.push_back(std::move(v));
    return b;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(ReplicaLogTest, RoundTripBatchesAcrossReopen) {
  {
    ReplicaLog log(config());
    auto rec = log.recover();
    EXPECT_FALSE(rec.has_anchor);
    EXPECT_TRUE(rec.batches.empty());
    for (SeqNum s = 1; s <= 5; ++s) log.append_batch(batch(s));
    log.commit();
  }
  ReplicaLog log2(config());
  auto rec = log2.recover();
  EXPECT_FALSE(rec.has_anchor);
  ASSERT_EQ(rec.batches.size(), 5u);
  for (SeqNum s = 1; s <= 5; ++s) {
    const auto& b = rec.batches[s - 1];
    EXPECT_EQ(b.seq, s);
    EXPECT_EQ(b.txn_begin, s * 10);
    ASSERT_EQ(b.txns.size(), 2u);
    EXPECT_EQ(b.txns[0].req_id, s * 100);
    ASSERT_EQ(b.certificate.size(), 1u);
    EXPECT_EQ(b.certificate[0].signature, Bytes({4, 5, 6}));
  }
  EXPECT_FALSE(rec.tail_truncated);
}

TEST_F(ReplicaLogTest, UncommittedBatchesDieWithTheProcess) {
  {
    ReplicaLog log(config());
    (void)log.recover();
    log.append_batch(batch(1));
    log.commit();
    log.append_batch(batch(2));  // never committed: lost on "crash"
  }
  ReplicaLog log2(config());
  auto rec = log2.recover();
  ASSERT_EQ(rec.batches.size(), 1u);
  EXPECT_EQ(rec.batches[0].seq, 1u);
}

TEST_F(ReplicaLogTest, CompactRewritesAsAnchorPlusTail) {
  {
    ReplicaLog log(config());
    (void)log.recover();
    for (SeqNum s = 1; s <= 8; ++s) log.append_batch(batch(s));
    log.commit();
    Digest acc;
    acc.data[0] = 0xAB;
    log.compact(/*anchor_seq=*/6, /*anchor_view=*/1, acc,
                {batch(7), batch(8)});
    // The compacted log accepts further appends.
    log.append_batch(batch(9));
    log.commit();
  }
  ReplicaLog log2(config());
  auto rec = log2.recover();
  EXPECT_TRUE(rec.has_anchor);
  EXPECT_EQ(rec.anchor_seq, 6u);
  EXPECT_EQ(rec.anchor_view, 1u);
  EXPECT_EQ(rec.anchor_acc.data[0], 0xAB);
  ASSERT_EQ(rec.batches.size(), 3u);
  EXPECT_EQ(rec.batches[0].seq, 7u);
  EXPECT_EQ(rec.batches[2].seq, 9u);
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
}

TEST_F(ReplicaLogTest, NonContiguousTailIsDropped) {
  {
    ReplicaLog log(config());
    (void)log.recover();
    log.append_batch(batch(1));
    log.append_batch(batch(2));
    log.append_batch(batch(4));  // gap: 3 never logged (corruption model)
    log.append_batch(batch(5));
    log.commit();
  }
  ReplicaLog log2(config());
  auto rec = log2.recover();
  ASSERT_EQ(rec.batches.size(), 2u);  // stop at the gap
  EXPECT_EQ(rec.batches.back().seq, 2u);
  EXPECT_EQ(rec.dropped_records, 2u);
}

TEST_F(ReplicaLogTest, TornTailRecoversGoodPrefix) {
  {
    ReplicaLog log(config());
    (void)log.recover();
    for (SeqNum s = 1; s <= 4; ++s) log.append_batch(batch(s));
    log.commit();
  }
  // Chop the last 5 bytes off the file: a torn final record.
  auto size = fs::file_size(path_);
  fs::resize_file(path_, size - 5);
  ReplicaLog log2(config());
  auto rec = log2.recover();
  EXPECT_TRUE(rec.tail_truncated);
  ASSERT_EQ(rec.batches.size(), 3u);
  EXPECT_EQ(rec.batches.back().seq, 3u);
}

// ---------------------------------------------------------------------------
// Engine snapshot/restore units.
// ---------------------------------------------------------------------------

protocol::PbftEngine make_engine(SeqNum interval = 4) {
  protocol::PbftConfig cfg;
  cfg.n = 4;
  cfg.self = 3;
  cfg.checkpoint_interval = interval;
  return protocol::PbftEngine(cfg);
}

Message checkpoint_msg(ReplicaId from, SeqNum seq) {
  protocol::Checkpoint cp;
  cp.seq = seq;
  cp.state_digest.data[0] = static_cast<std::uint8_t>(seq);
  Message m;
  m.from = Endpoint::replica(from);
  m.payload = cp;
  return m;
}

TEST(PbftRecovery, RestoreSeedsCountersFromDurableState) {
  auto e = make_engine();
  e.restore(/*view=*/2, /*last_executed=*/10, /*stable=*/8);
  EXPECT_EQ(e.last_executed(), 10u);
  EXPECT_EQ(e.cluster_stable_hint(), 8u);
}

TEST(PbftRecovery, FPlusOneCheckpointVotesRaiseClusterStableHint) {
  auto e = make_engine();
  (void)e.on_checkpoint(checkpoint_msg(0, 8));
  EXPECT_EQ(e.cluster_stable_hint(), 0u);  // one vote: not evidence yet
  (void)e.on_checkpoint(checkpoint_msg(1, 8));
  EXPECT_EQ(e.cluster_stable_hint(), 8u);  // f+1 = 2 distinct voters
}

TEST(PbftRecovery, SnapshotRequestIsDebouncedThenReissued) {
  auto e = make_engine();
  (void)e.on_checkpoint(checkpoint_msg(0, 8));
  (void)e.on_checkpoint(checkpoint_msg(1, 8));
  ASSERT_GT(e.cluster_stable_hint(), e.last_executed());

  auto count_requests = [](const Actions& acts) {
    int n = 0;
    for (const auto& a : acts)
      if (std::holds_alternative<protocol::RequestSnapshotAction>(a)) ++n;
    return n;
  };
  int fired = 0;
  int first_fire_poll = 0;
  for (int poll = 1; poll <= 30; ++poll) {
    int n = count_requests(e.maybe_request_catchup());
    if (n > 0 && fired == 0) first_fire_poll = poll;
    fired += n;
  }
  // Fires after the 3-poll debounce (a slow-but-healthy replica must not
  // spam requests), then re-fires periodically while the gap persists.
  EXPECT_EQ(first_fire_poll, 3);
  EXPECT_GE(fired, 2);
  EXPECT_EQ(e.metrics().snapshot_requests, static_cast<std::uint64_t>(fired));
}

TEST(PbftRecovery, InstallSnapshotFastForwardsAndStopsRequesting) {
  auto e = make_engine();
  (void)e.on_checkpoint(checkpoint_msg(0, 8));
  (void)e.on_checkpoint(checkpoint_msg(1, 8));
  (void)e.maybe_request_catchup();

  (void)e.install_snapshot(8);
  EXPECT_EQ(e.last_executed(), 8u);
  EXPECT_EQ(e.metrics().snapshots_installed, 1u);
  // The gap is closed: the catch-up poll goes back to normal batch catch-up.
  auto acts = e.maybe_request_catchup();
  for (const auto& a : acts)
    EXPECT_FALSE(std::holds_alternative<protocol::RequestSnapshotAction>(a));

  // Installing below what we already executed is a no-op.
  (void)e.install_snapshot(5);
  EXPECT_EQ(e.last_executed(), 8u);
}

// ---------------------------------------------------------------------------
// Cluster crash-restart drills.
// ---------------------------------------------------------------------------

std::shared_ptr<workload::YcsbWorkload> small_workload() {
  workload::YcsbConfig cfg;
  cfg.record_count = 200;
  cfg.ops_per_txn = 2;
  cfg.value_bytes = 8;
  return std::make_shared<workload::YcsbWorkload>(cfg);
}

struct DurableClusterFixture {
  fs::path dir;
  std::shared_ptr<workload::YcsbWorkload> wl = small_workload();

  explicit DurableClusterFixture(const std::string& name) {
    dir = fs::temp_directory_path() /
          ("recovery_" + std::to_string(::getpid()) + "_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~DurableClusterFixture() { fs::remove_all(dir); }

  ClusterConfig config() {
    ClusterConfig cfg;
    cfg.replicas = 4;
    cfg.batch_size = 5;
    cfg.durable = true;
    cfg.data_dir = dir.string();
    cfg.checkpoint_interval = 4;
    cfg.catchup_poll_ns = 100'000'000;  // 100 ms: rejoin decisions are quick
    cfg.execute = [wl = wl](const protocol::Transaction& t,
                            storage::KvStore& s) { return wl->execute(t, s); };
    return cfg;
  }
};

std::vector<protocol::Transaction> make_burst(Client& client,
                                              workload::YcsbWorkload& wl,
                                              Rng& rng, int count) {
  std::vector<protocol::Transaction> txns;
  for (int i = 0; i < count; ++i) {
    auto t = wl.make_transaction(rng, client.id(), 0);
    txns.push_back(client.make_transaction(t.payload, t.ops));
  }
  return txns;
}

/// Drives `rounds` bursts of one batch each through a fresh client.
void drive(LocalCluster& cluster, workload::YcsbWorkload& wl, ClientId id,
           Rng& rng, int rounds) {
  auto client = cluster.make_client(id);
  for (int i = 0; i < rounds; ++i) {
    auto res = client->submit_and_wait(make_burst(*client, wl, rng, 5));
    ASSERT_TRUE(res.has_value()) << "burst " << i << " got no quorum";
  }
}

void expect_chains_match(LocalCluster& cluster) {
  auto acc0 = cluster.replica(0).chain().accumulator();
  auto seq0 = cluster.replica(0).last_executed();
  for (ReplicaId r = 1; r < cluster.size(); ++r) {
    EXPECT_EQ(cluster.replica(r).chain().accumulator(), acc0)
        << "replica " << r << " diverged";
    EXPECT_EQ(cluster.replica(r).last_executed(), seq0);
  }
}

TEST(Recovery, DurableClusterRestartFromCleanShutdown) {
  DurableClusterFixture fx("clean_restart");
  Rng rng(11);
  SeqNum executed = 0;
  Digest acc_before;
  {
    LocalCluster cluster(fx.config());
    cluster.start();
    drive(cluster, *fx.wl, 1, rng, 6);
    executed = cluster.replica(0).last_executed();
    ASSERT_TRUE(cluster.wait_for_execution(executed, std::chrono::seconds(10)));
    cluster.stop();
    acc_before = cluster.replica(0).chain().accumulator();
  }
  // A brand-new cluster over the same data dirs recovers the same history.
  LocalCluster cluster2(fx.config());
  for (ReplicaId r = 0; r < cluster2.size(); ++r) {
    EXPECT_EQ(cluster2.replica(r).last_executed(), executed)
        << "replica " << r << " lost durable batches";
    EXPECT_EQ(cluster2.replica(r).chain().accumulator(), acc_before);
    EXPECT_GT(cluster2.replica(r).stats().recovered_batches, 0u);
  }
  // And keeps making progress.
  cluster2.start();
  drive(cluster2, *fx.wl, 2, rng, 2);
  ASSERT_TRUE(cluster2.wait_for_execution(executed + 2,
                                          std::chrono::seconds(10)));
  expect_chains_match(cluster2);
  cluster2.stop();
}

TEST(Recovery, HardKilledReplicaRejoinsFromItsLog) {
  DurableClusterFixture fx("kill_rejoin");
  auto cfg = fx.config();
  // Keep the whole run inside one checkpoint interval: no stable checkpoint
  // fires while replica 3 is down, so peers retain the batches it missed and
  // the rejoin exercises the plain batch catch-up path (no snapshots here).
  cfg.checkpoint_interval = 16;
  Rng rng(12);
  LocalCluster cluster(cfg);
  cluster.start();
  drive(cluster, *fx.wl, 1, rng, 4);
  ASSERT_TRUE(cluster.wait_for_execution(4, std::chrono::seconds(10)));

  // Hard kill: replica 3's memory state is destroyed outright.
  cluster.kill_replica(3);
  ASSERT_FALSE(cluster.is_alive(3));

  // The cluster keeps committing with 3 of 4 (f = 1).
  drive(cluster, *fx.wl, 2, rng, 4);
  ASSERT_TRUE(cluster.wait_for_execution(8, std::chrono::seconds(10), {3}));

  // Reboot from disk: recover the durable prefix, then catch up the rest
  // through the normal batch catch-up path.
  cluster.restart_replica(3);
  ASSERT_TRUE(cluster.is_alive(3));
  EXPECT_GT(cluster.replica(3).stats().recovered_batches, 0u);

  drive(cluster, *fx.wl, 3, rng, 2);
  SeqNum target = cluster.replica(0).last_executed();
  ASSERT_TRUE(cluster.wait_for_execution(target, std::chrono::seconds(20)))
      << "restarted replica failed to rejoin";
  cluster.stop();
  expect_chains_match(cluster);
}

TEST(Recovery, ReplicaBelowRetentionWindowRejoinsViaSnapshot) {
  DurableClusterFixture fx("snapshot_rejoin");
  auto cfg = fx.config();
  cfg.enable_snapshots = true;
  Rng rng(13);
  LocalCluster cluster(cfg);
  cluster.start();
  drive(cluster, *fx.wl, 1, rng, 2);
  ASSERT_TRUE(cluster.wait_for_execution(2, std::chrono::seconds(10)));

  cluster.kill_replica(3);

  // Drive far past several checkpoint intervals (interval = 4): the live
  // replicas prune the batches replica 3 is missing, so on restart its only
  // road back is a vouched snapshot.
  drive(cluster, *fx.wl, 2, rng, 14);
  ASSERT_TRUE(cluster.wait_for_execution(16, std::chrono::seconds(20), {3}));

  // Drive past the next checkpoint boundary (seq 20): the fresh round of
  // checkpoint votes is how the rejoiner learns the cluster moved on without
  // it — f+1 votes above its frontier trigger the snapshot request.
  cluster.restart_replica(3);
  drive(cluster, *fx.wl, 3, rng, 6);
  SeqNum target = cluster.replica(0).last_executed();
  ASSERT_TRUE(cluster.wait_for_execution(target, std::chrono::seconds(30)))
      << "below-window replica failed to rejoin";

  // The rejoin went through the snapshot door, and all chains agree.
  EXPECT_GE(cluster.replica(3).stats().snapshots_installed, 1u);
  cluster.stop();
  expect_chains_match(cluster);
  std::uint64_t served = 0;
  for (ReplicaId r = 0; r < 3; ++r)
    served += cluster.replica(r).stats().snapshots_served;
  EXPECT_GE(served, 1u);
}

TEST(Recovery, LogCompactionBoundsTheLogAndSurvivesRestart) {
  DurableClusterFixture fx("compaction");
  Rng rng(14);
  SeqNum executed = 0;
  {
    LocalCluster cluster(fx.config());
    cluster.start();
    drive(cluster, *fx.wl, 1, rng, 12);  // 12 batches, interval 4
    executed = cluster.replica(0).last_executed();
    ASSERT_TRUE(cluster.wait_for_execution(executed, std::chrono::seconds(10)));
    // Give the execute threads an idle tick to process compaction requests.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    cluster.stop();
    std::uint64_t compactions = 0;
    for (ReplicaId r = 0; r < cluster.size(); ++r)
      compactions += cluster.replica(r).stats().log_compactions;
    EXPECT_GE(compactions, 1u) << "no replica ever compacted its log";
  }
  // Restart: anchors + tails reproduce the exact same chains.
  LocalCluster cluster2(fx.config());
  for (ReplicaId r = 1; r < cluster2.size(); ++r)
    EXPECT_EQ(cluster2.replica(r).chain().accumulator(),
              cluster2.replica(0).chain().accumulator());
  EXPECT_EQ(cluster2.replica(0).last_executed(), executed);
}

TEST(Recovery, FsyncFailureFailsStopTheReplicaLog) {
  storage::StorageFaultPlan plan;
  plan.fail_sync_number = 1;
  storage::FaultyEnv env(storage::Env::real(), plan);
  auto dir = fs::temp_directory_path() /
             ("rlog_failstop_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  ReplicaLogConfig lc;
  lc.path = (dir / "consensus.log").string();
  lc.env = &env;
  ReplicaLog log(lc);
  (void)log.recover();
  LoggedBatch b;
  b.seq = 1;
  log.append_batch(b);
  EXPECT_THROW(log.commit(), storage::StorageError);
  EXPECT_TRUE(log.failed());
  EXPECT_THROW(log.append_batch(b), storage::StorageError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace rdb::runtime
