// Model checker (src/mc/): oracle unit tests on hand-built violating
// worlds, bounded-exhaustive exploration of the three engines, Byzantine
// scenarios, counterexample shrinking, byte-deterministic replay, trace
// round-tripping, and the checked-in corpus regression
// (tests/corpus/mc/*.trace).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "mc/explorer.h"
#include "mc/replay.h"

namespace rdb::mc {
namespace {

McConfig config(EngineKind engine, std::uint32_t batches = 1) {
  McConfig cfg;
  cfg.engine = engine;
  cfg.n = 4;
  cfg.batches = batches;
  return cfg;
}

Digest digest_of(const std::string& tag) { return crypto::sha256(tag); }

ExecRecord record(SeqNum seq, const Digest& bd, const Digest& acc,
                  bool speculative = false) {
  ExecRecord r;
  r.seq = seq;
  r.batch_digest = bd;
  r.acc_after = acc;
  r.speculative = speculative;
  return r;
}

// ---------------------------------------------------------------------------
// Oracles: each of the four must fire on a hand-built violating world.
// ---------------------------------------------------------------------------

TEST(McOracles, CleanInitialWorldPassesAll) {
  const World w = make_initial_world(config(EngineKind::kPbft));
  EXPECT_FALSE(evaluate_oracles(w).has_value());
}

TEST(McOracles, AgreementFiresOnDivergentCommittedBatches) {
  World w = make_initial_world(config(EngineKind::kPbft));
  w.replicas[1].exec_log.push_back(
      record(1, digest_of("batch-A"), digest_of("acc-A")));
  w.replicas[2].exec_log.push_back(
      record(1, digest_of("batch-B"), digest_of("acc-B")));
  const auto v = evaluate_oracles(w);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "agreement");
  EXPECT_NE(v->detail.find("replica 1 vs replica 2"), std::string::npos);
}

TEST(McOracles, ChainFiresOnDivergentAccumulators) {
  // Same batch digest at the same seq but different chain accumulators:
  // agreement passes, the hash-chain prefix oracle must catch it.
  World w = make_initial_world(config(EngineKind::kPbft));
  w.replicas[1].exec_log.push_back(
      record(1, digest_of("batch"), digest_of("acc-A")));
  w.replicas[2].exec_log.push_back(
      record(1, digest_of("batch"), digest_of("acc-B")));
  const auto v = evaluate_oracles(w);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "chain");
}

TEST(McOracles, ExactlyOnceFiresOnGap) {
  World w = make_initial_world(config(EngineKind::kPbft));
  w.replicas[3].exec_log.push_back(
      record(2, digest_of("batch"), digest_of("acc")));
  const auto v = evaluate_oracles(w);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "exactly_once");
}

TEST(McOracles, ExactlyOnceFiresOnDuplicateExecution) {
  World w = make_initial_world(config(EngineKind::kPbft));
  w.replicas[3].exec_log.push_back(
      record(1, digest_of("batch"), digest_of("acc")));
  w.replicas[3].exec_log.push_back(
      record(1, digest_of("batch"), digest_of("acc")));
  const auto v = evaluate_oracles(w);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "exactly_once");
}

TEST(McOracles, CheckpointFiresOnSpeculativeDivergenceBelowStable) {
  // Zyzzyva, non-strict: the agreement oracle only compares the committed
  // (CommitCert) frontier, which is empty here — but a stable checkpoint
  // claims 2f+1 replicas executed the same state, so divergence in
  // *speculative* records below it must fire the checkpoint oracle.
  World w = make_initial_world(config(EngineKind::kZyzzyva));
  w.replicas[1].exec_log.push_back(
      record(1, digest_of("batch-A"), digest_of("acc-A"), true));
  w.replicas[2].exec_log.push_back(
      record(1, digest_of("batch-B"), digest_of("acc-B"), true));
  ASSERT_FALSE(evaluate_oracles(w).has_value()) << "no stable checkpoint yet";
  w.replicas[1].stable_seen = 2;
  const auto v = evaluate_oracles(w);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "checkpoint");
}

TEST(McOracles, ByzantineReplicaZeroIsExemptFromAgreement) {
  McConfig cfg = config(EngineKind::kPbft);
  cfg.byzantine = true;
  World w = make_initial_world(cfg);
  // The scripted Byzantine primary's own log may say anything.
  w.replicas[0].exec_log.push_back(
      record(1, digest_of("lie"), digest_of("acc-lie")));
  w.replicas[1].exec_log.push_back(
      record(1, digest_of("truth"), digest_of("acc")));
  w.replicas[2].exec_log.push_back(
      record(1, digest_of("truth"), digest_of("acc")));
  EXPECT_FALSE(evaluate_oracles(w).has_value());
}

// ---------------------------------------------------------------------------
// Model basics.
// ---------------------------------------------------------------------------

TEST(McModel, FingerprintIsStableAndSensitive) {
  const McConfig cfg = config(EngineKind::kPbft);
  World a = make_initial_world(cfg);
  World b = make_initial_world(cfg);
  EXPECT_EQ(canonical_fingerprint(a), canonical_fingerprint(b));
  const std::vector<Transition> en = enabled_transitions(a);
  ASSERT_FALSE(en.empty());
  ASSERT_TRUE(apply_transition(a, en[0]));
  EXPECT_FALSE(canonical_fingerprint(a) == canonical_fingerprint(b));
}

TEST(McModel, ApplyRejectsUnknownTransitionLeavingWorldUntouched) {
  World w = make_initial_world(config(EngineKind::kPbft));
  const Digest before = canonical_fingerprint(w);
  Transition bogus;
  bogus.kind = TKind::kDeliver;
  bogus.replica = 1;
  bogus.msg_id = digest_of("no such message");
  EXPECT_FALSE(apply_transition(w, bogus));
  Transition timer;
  timer.kind = TKind::kTimeout;
  timer.replica = 1;
  timer.timer_id = 42;
  EXPECT_FALSE(apply_transition(w, timer));
  EXPECT_EQ(canonical_fingerprint(w), before);
}

TEST(McModel, IndependentTransitionsCommute) {
  // The sleep-set soundness condition, checked on the real model: two
  // deliveries to different replicas must commute to the identical world.
  const World w0 = make_initial_world(config(EngineKind::kPbft));
  const std::vector<Transition> en = enabled_transitions(w0);
  bool checked = false;
  for (std::size_t i = 0; i < en.size() && !checked; ++i) {
    for (std::size_t j = i + 1; j < en.size(); ++j) {
      if (!transitions_independent(en[i], en[j])) continue;
      World ab = w0;
      ASSERT_TRUE(apply_transition(ab, en[i]));
      ASSERT_TRUE(apply_transition(ab, en[j]));
      World ba = w0;
      ASSERT_TRUE(apply_transition(ba, en[j]));
      ASSERT_TRUE(apply_transition(ba, en[i]));
      EXPECT_EQ(canonical_fingerprint(ab), canonical_fingerprint(ba));
      checked = true;
      break;
    }
  }
  EXPECT_TRUE(checked) << "no independent pair among initial transitions";
}

// ---------------------------------------------------------------------------
// Exploration.
// ---------------------------------------------------------------------------

TEST(McExplore, PoeSingleBatchExhaustsClean) {
  ExploreLimits limits;
  limits.max_depth = 20;
  limits.max_states = 40000;
  const ExploreResult res = explore_dfs(config(EngineKind::kPoe), limits);
  EXPECT_FALSE(res.violation.has_value());
  EXPECT_TRUE(res.stats.complete) << "frontier capped — raise limits";
  EXPECT_GT(res.stats.distinct_states, 100u);
  EXPECT_GT(res.stats.sleep_pruned, 0u);
}

TEST(McExplore, ZyzzyvaSingleBatchExhaustsClean) {
  ExploreLimits limits;
  limits.max_depth = 20;
  limits.max_states = 40000;
  const ExploreResult res = explore_dfs(config(EngineKind::kZyzzyva), limits);
  EXPECT_FALSE(res.violation.has_value());
  EXPECT_TRUE(res.stats.complete);
  EXPECT_GT(res.stats.distinct_states, 100u);
}

TEST(McExplore, PbftBoundedSweepClean) {
  ExploreLimits limits;
  limits.max_depth = 14;
  limits.max_states = 20000;
  const ExploreResult res = explore_dfs(config(EngineKind::kPbft), limits);
  EXPECT_FALSE(res.violation.has_value());
  EXPECT_GE(res.stats.distinct_states, limits.max_states);
}

TEST(McExplore, PbftEquivocatingPrimaryCannotSplitCommit) {
  McConfig cfg = config(EngineKind::kPbft);
  cfg.byzantine = true;
  ExploreLimits limits;
  limits.max_depth = 16;
  limits.max_states = 20000;
  const ExploreResult res = explore_dfs(cfg, limits);
  EXPECT_FALSE(res.violation.has_value())
      << res.violation->oracle << ": " << res.violation->detail;
}

TEST(McExplore, FaultBudgetsStayClean) {
  McConfig cfg = config(EngineKind::kPbft);
  cfg.max_drops = 1;
  cfg.max_dups = 1;
  cfg.max_timeouts = 1;
  cfg.crash_replica = 0;
  ExploreLimits limits;
  limits.max_depth = 12;
  limits.max_states = 15000;
  const ExploreResult res = explore_dfs(cfg, limits);
  EXPECT_FALSE(res.violation.has_value())
      << res.violation->oracle << ": " << res.violation->detail;
}

TEST(McExplore, RandomWalksAreSeedDeterministic) {
  McConfig cfg = config(EngineKind::kPoe, /*batches=*/2);
  cfg.max_dups = 2;
  ExploreLimits limits;
  limits.walks = 10;
  limits.walk_depth = 120;
  limits.seed = 77;
  const ExploreResult a = explore_random_walks(cfg, limits);
  const ExploreResult b = explore_random_walks(cfg, limits);
  EXPECT_FALSE(a.violation.has_value());
  EXPECT_EQ(a.stats.distinct_states, b.stats.distinct_states);
  EXPECT_EQ(a.stats.transitions_applied, b.stats.transitions_applied);
}

// ---------------------------------------------------------------------------
// The known violation: Zyzzyva speculative divergence under strict_spec.
// ---------------------------------------------------------------------------

TEST(McExplore, ZyzzyvaStrictSpecFindsAgreementViolationAndShrinks) {
  McConfig cfg = config(EngineKind::kZyzzyva);
  cfg.byzantine = true;
  cfg.strict_spec_agreement = true;
  ExploreLimits limits;
  limits.max_depth = 16;
  limits.max_states = 30000;
  const ExploreResult res = explore_dfs(cfg, limits);
  ASSERT_TRUE(res.violation.has_value());
  EXPECT_EQ(res.violation->oracle, "agreement");
  ASSERT_FALSE(res.counterexample.empty());

  Trace raw;
  raw.cfg = cfg;
  raw.steps = res.counterexample;
  const Trace shrunk = shrink_trace(raw);
  EXPECT_EQ(shrunk.expect, "agreement");
  EXPECT_LE(shrunk.steps.size(), raw.steps.size());
  // The minimal schedule is two deliveries of the two equivocated order
  // requests to replicas on opposite sides of the split.
  EXPECT_EQ(shrunk.steps.size(), 2u);
  const ReplayResult rr = replay_trace(shrunk);
  EXPECT_TRUE(rr.violation);
  EXPECT_EQ(rr.oracle, "agreement");
  EXPECT_EQ(rr.steps_skipped, 0u);
}

TEST(McExplore, ZyzzyvaDefaultOracleToleratesSpeculativeDivergence) {
  // Same scenario without strict_spec: divergence before any CommitCert is
  // Zyzzyva's documented behavior (resolved by the out-of-scope view
  // change), so the committed-frontier agreement oracle must stay quiet.
  McConfig cfg = config(EngineKind::kZyzzyva);
  cfg.byzantine = true;
  ExploreLimits limits;
  limits.max_depth = 14;
  limits.max_states = 20000;
  const ExploreResult res = explore_dfs(cfg, limits);
  EXPECT_FALSE(res.violation.has_value())
      << res.violation->oracle << ": " << res.violation->detail;
}

// ---------------------------------------------------------------------------
// Traces and replay.
// ---------------------------------------------------------------------------

TEST(McTrace, SerializeParseRoundTrip) {
  Trace t;
  t.cfg = config(EngineKind::kZyzzyva, /*batches=*/3);
  t.cfg.max_drops = 1;
  t.cfg.max_timeouts = 2;
  t.cfg.crash_replica = 2;
  t.cfg.byzantine = true;
  t.cfg.strict_spec_agreement = true;
  t.expect = "agreement";
  t.note = "round trip fixture";
  Transition deliver;
  deliver.kind = TKind::kDeliver;
  deliver.replica = 3;
  deliver.msg_id = digest_of("message");
  Transition dup = deliver;
  dup.kind = TKind::kDuplicate;
  Transition drop = deliver;
  drop.kind = TKind::kDrop;
  Transition timeout;
  timeout.kind = TKind::kTimeout;
  timeout.replica = 1;
  timeout.timer_id = 7;
  Transition crash;
  crash.kind = TKind::kCrash;
  crash.replica = 2;
  Transition cert;
  cert.kind = TKind::kClientCert;
  cert.seq = 2;
  cert.history = digest_of("history");
  t.steps = {deliver, dup, drop, timeout, crash, cert};

  const std::string text = serialize_trace(t);
  Trace back;
  std::string err;
  ASSERT_TRUE(parse_trace(text, &back, &err)) << err;
  EXPECT_EQ(back.cfg.engine, t.cfg.engine);
  EXPECT_EQ(back.cfg.batches, t.cfg.batches);
  EXPECT_EQ(back.cfg.max_drops, t.cfg.max_drops);
  EXPECT_EQ(back.cfg.max_timeouts, t.cfg.max_timeouts);
  EXPECT_EQ(back.cfg.crash_replica, t.cfg.crash_replica);
  EXPECT_EQ(back.cfg.byzantine, t.cfg.byzantine);
  EXPECT_EQ(back.cfg.strict_spec_agreement, t.cfg.strict_spec_agreement);
  EXPECT_EQ(back.expect, t.expect);
  ASSERT_EQ(back.steps.size(), t.steps.size());
  for (std::size_t i = 0; i < t.steps.size(); ++i)
    EXPECT_EQ(back.steps[i], t.steps[i]) << "step " << i;
  // Serialization is byte-stable (shrunk traces must diff clean) modulo the
  // note: '#' provenance comments are emitted but not parsed back.
  Trace noteless = t;
  noteless.note.clear();
  EXPECT_EQ(serialize_trace(back), serialize_trace(noteless));
}

TEST(McTrace, ParseRejectsGarbageWithLineNumber) {
  Trace out;
  std::string err;
  EXPECT_FALSE(parse_trace("not a trace\n", &out, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(
      parse_trace("rdb-mc-trace v1\nengine pbft\nbogus directive\n", &out,
                  &err));
  EXPECT_NE(err.find("3"), std::string::npos) << err;
}

TEST(McReplay, ReportIsByteIdenticalAcrossRuns) {
  McConfig cfg = config(EngineKind::kZyzzyva);
  cfg.byzantine = true;
  cfg.strict_spec_agreement = true;
  ExploreLimits limits;
  limits.max_depth = 16;
  limits.max_states = 30000;
  const ExploreResult res = explore_dfs(cfg, limits);
  ASSERT_TRUE(res.violation.has_value());
  Trace raw;
  raw.cfg = cfg;
  raw.steps = res.counterexample;
  const Trace shrunk = shrink_trace(raw);

  const ReplayResult r1 = replay_trace(shrunk);
  const ReplayResult r2 = replay_trace(shrunk);
  EXPECT_EQ(replay_report(shrunk, r1), replay_report(shrunk, r2));
  EXPECT_EQ(r1.final_fingerprint, r2.final_fingerprint);
  // Round-tripping the trace through text changes nothing either.
  Trace back;
  std::string err;
  ASSERT_TRUE(parse_trace(serialize_trace(shrunk), &back, &err)) << err;
  EXPECT_EQ(replay_report(back, replay_trace(back)), replay_report(shrunk, r1));
}

TEST(McReplay, LenientReplaySkipsInapplicableSteps) {
  Trace t;
  t.cfg = config(EngineKind::kPbft);
  Transition bogus;
  bogus.kind = TKind::kTimeout;
  bogus.replica = 1;
  bogus.timer_id = 424242;  // never armed
  t.steps = {bogus};
  const ReplayResult r = replay_trace(t);
  EXPECT_FALSE(r.violation);
  EXPECT_EQ(r.steps_applied, 0u);
  EXPECT_EQ(r.steps_skipped, 1u);
}

// ---------------------------------------------------------------------------
// Corpus regression: every checked-in trace replays to its expect line.
// ---------------------------------------------------------------------------

TEST(McCorpus, AllTracesReplayToTheirExpectedOutcome) {
  const std::filesystem::path dir = RDB_MC_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::vector<std::filesystem::path> traces;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".trace") traces.push_back(entry.path());
  std::sort(traces.begin(), traces.end());
  ASSERT_GE(traces.size(), 6u) << "corpus went missing?";
  for (const auto& path : traces) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    Trace trace;
    std::string err;
    ASSERT_TRUE(parse_trace(text.str(), &trace, &err)) << err;
    const ReplayResult result = replay_trace(trace);
    const std::string outcome = result.violation ? result.oracle : "clean";
    EXPECT_EQ(outcome, trace.expect);
    if (trace.expect == "clean") {
      // Known-good schedules must replay without dead steps: every recorded
      // transition still applies (content-addressed ids still match).
      EXPECT_EQ(result.steps_skipped, 0u);
      EXPECT_EQ(result.steps_applied, trace.steps.size());
    }
  }
}

}  // namespace
}  // namespace rdb::mc
