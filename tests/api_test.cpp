// Public API facade: the aliases and helpers a downstream user reaches
// first. Keeps the umbrella header honest (it must compile standalone and
// expose everything the README shows).
#include <gtest/gtest.h>

#include <cstdlib>

#include "api/resilientdb.h"

namespace {

TEST(Api, VersionString) {
  EXPECT_STREQ(resilientdb::version(), "1.0.0");
}

TEST(Api, AliasesAreUsable) {
  resilientdb::ClusterConfig cluster_cfg;
  EXPECT_EQ(cluster_cfg.replicas, 4u);

  resilientdb::FabricConfig fabric_cfg;
  EXPECT_EQ(fabric_cfg.replicas, 16u);
  EXPECT_EQ(fabric_cfg.batch_size, 100u);       // §5.1 standard batch
  EXPECT_EQ(fabric_cfg.clients, 80'000u);       // §5.1 standard load
  EXPECT_EQ(fabric_cfg.checkpoint_interval_txns, 10'000u);
  EXPECT_EQ(fabric_cfg.f(), 5u);
  EXPECT_EQ(fabric_cfg.checkpoint_interval_batches(), 100u);
}

TEST(Api, RunExperimentTiny) {
  resilientdb::FabricConfig cfg;
  cfg.replicas = 4;
  cfg.clients = 200;
  cfg.client_machines = 1;
  cfg.batch_size = 10;
  cfg.warmup_ns = 100'000'000;
  cfg.measure_ns = 200'000'000;
  auto result = rdb::simfab::run_experiment(cfg);
  EXPECT_GT(result.metrics.committed_txns, 0u);
}

TEST(Api, BenchQuickModeFollowsEnvironment) {
  ::unsetenv("RDB_BENCH_QUICK");
  EXPECT_FALSE(rdb::simfab::bench_quick_mode());
  ::setenv("RDB_BENCH_QUICK", "1", 1);
  EXPECT_TRUE(rdb::simfab::bench_quick_mode());
  ::setenv("RDB_BENCH_QUICK", "0", 1);
  EXPECT_FALSE(rdb::simfab::bench_quick_mode());
  ::unsetenv("RDB_BENCH_QUICK");

  resilientdb::FabricConfig cfg;
  rdb::TimeNs original = cfg.measure_ns;
  rdb::simfab::apply_bench_mode(cfg);
  EXPECT_EQ(cfg.measure_ns, original);  // quick mode off: untouched
  ::setenv("RDB_BENCH_QUICK", "1", 1);
  rdb::simfab::apply_bench_mode(cfg);
  EXPECT_LT(cfg.measure_ns, original);
  ::unsetenv("RDB_BENCH_QUICK");
}

TEST(Api, PrintersDoNotCrash) {
  rdb::simfab::print_figure_header("test header");
  rdb::simfab::ExperimentResult r;
  r.metrics.throughput_tps = 123456;
  r.primary_threads = {{"worker", 42.0}, {"batch-0", 99.0}};
  rdb::simfab::print_row("series", "x", r);
  rdb::simfab::print_saturation("label", r);
}

}  // namespace
