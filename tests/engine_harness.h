// Deterministic in-memory bus for driving protocol engines in tests.
//
// Engines are pure state machines; this harness plays the fabric role:
// it queues emitted messages, delivers them in a controllable order, tracks
// timers, and records ExecuteActions per replica so tests can assert
// agreement and total order. No threads, no clock — fully deterministic.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "protocol/actions.h"
#include "protocol/pbft.h"
#include "protocol/poe.h"
#include "protocol/zyzzyva.h"

namespace rdb::test {

struct Delivery {
  ReplicaId to{0};
  protocol::Message msg;
};

template <typename Engine>
class EngineHarness {
 public:
  explicit EngineHarness(std::uint32_t n, SeqNum cp_interval = 100)
      : checkpoint_interval(cp_interval), n_(n) {
    for (ReplicaId r = 0; r < n; ++r) {
      if constexpr (std::is_same_v<Engine, protocol::PbftEngine>) {
        protocol::PbftConfig cfg;
        cfg.n = n;
        cfg.self = r;
        cfg.checkpoint_interval = checkpoint_interval;
        engines_.push_back(std::make_unique<Engine>(cfg));
      } else if constexpr (std::is_same_v<Engine, protocol::PoeEngine>) {
        protocol::PoeConfig cfg;
        cfg.n = n;
        cfg.self = r;
        cfg.checkpoint_interval = checkpoint_interval;
        engines_.push_back(std::make_unique<Engine>(cfg));
      } else {
        protocol::ZyzzyvaConfig cfg;
        cfg.n = n;
        cfg.self = r;
        cfg.checkpoint_interval = checkpoint_interval;
        engines_.push_back(std::make_unique<Engine>(cfg));
      }
    }
    executed_.resize(n);
    client_msgs_.resize(n);
    timers_.resize(n);
    stable_.assign(n, 0);
  }

  Engine& engine(ReplicaId r) { return *engines_[r]; }
  std::uint32_t n() const { return n_; }

  /// Crash-fault a replica: it stops receiving and its output is dropped.
  void crash(ReplicaId r) { crashed_.insert(r); }
  bool is_crashed(ReplicaId r) const { return crashed_.contains(r); }

  /// Feed the actions a direct engine call returned (acting as replica r).
  void perform(ReplicaId r, protocol::Actions actions) {
    if (is_crashed(r)) return;
    for (auto& a : actions) handle_action(r, std::move(a));
  }

  /// Delivers one queued message (FIFO). Returns false when idle.
  bool step() {
    if (queue_.empty()) return false;
    Delivery d = std::move(queue_.front());
    queue_.pop_front();
    deliver(d);
    return true;
  }

  /// Delivers everything until quiescence.
  void run_all() {
    while (step()) {
    }
  }

  /// Random-order delivery: repeatedly pick a random queued message.
  void run_all_shuffled(Rng& rng) {
    while (!queue_.empty()) {
      std::size_t idx = rng.below(queue_.size());
      Delivery d = std::move(queue_[idx]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
      deliver(d);
    }
  }

  /// Fire a pending timer at replica r (PBFT only).
  void fire_timer(ReplicaId r, std::uint64_t id) {
    if constexpr (std::is_same_v<Engine, protocol::PbftEngine>) {
      perform(r, engines_[r]->on_timeout(id));
    }
  }

  const std::vector<protocol::ExecuteAction>& executed(ReplicaId r) const {
    return executed_[r];
  }
  const std::vector<protocol::Message>& client_msgs(ReplicaId r) const {
    return client_msgs_[r];
  }
  const std::map<std::uint64_t, TimeNs>& timers(ReplicaId r) const {
    return timers_[r];
  }
  SeqNum stable_checkpoint_seen(ReplicaId r) const { return stable_[r]; }
  std::size_t queued() const { return queue_.size(); }

  /// Drops every queued message matching the predicate (loss injection).
  void drop_if(std::function<bool(const Delivery&)> pred) {
    std::deque<Delivery> kept;
    for (auto& d : queue_)
      if (!pred(d)) kept.push_back(std::move(d));
    queue_.swap(kept);
  }

  /// Agreement: every pair of replicas executed identical (seq, digest)
  /// prefixes up to the shorter log.
  bool logs_consistent() const {
    for (ReplicaId a = 0; a < n_; ++a) {
      for (ReplicaId b = a + 1; b < n_; ++b) {
        std::size_t len = std::min(executed_[a].size(), executed_[b].size());
        for (std::size_t i = 0; i < len; ++i) {
          if (executed_[a][i].seq != executed_[b][i].seq ||
              executed_[a][i].batch_digest != executed_[b][i].batch_digest)
            return false;
        }
      }
    }
    return true;
  }

  SeqNum checkpoint_interval{100};

 private:
  void handle_action(ReplicaId from, protocol::Action action) {
    // visit_action: exhaustive by construction; actions the harness does not
    // model carry an explicit no-op handler (protocol/actions.h).
    protocol::visit_action(
        action,
        [&](protocol::BroadcastAction& bc) {
          for (ReplicaId to = 0; to < n_; ++to) {
            if (to == from && !bc.include_self) continue;
            queue_.push_back({to, bc.msg});
          }
        },
        [&](protocol::SendAction& s) {
          if (s.to.kind == Endpoint::Kind::kClient) {
            client_msgs_[from].push_back(std::move(s.msg));
          } else {
            queue_.push_back({s.to.id, std::move(s.msg)});
          }
        },
        [&](protocol::ExecuteAction& ex) {
          executed_[from].push_back(ex);
          // Report execution completion back (state digest = batch digest
          // here; all correct replicas compute the same value).
          perform(from, engines_[from]->on_executed(ex.seq, ex.batch_digest));
        },
        [&](protocol::SetTimerAction& t) { timers_[from][t.id] = t.delay_ns; },
        [&](protocol::CancelTimerAction& c) { timers_[from].erase(c.id); },
        [&](protocol::StableCheckpointAction& sc) {
          stable_[from] = std::max(stable_[from], sc.seq);
        },
        [&](protocol::ViewChangedAction&) {
          // Visible through engine(r).view().
        },
        [&](protocol::RequestSnapshotAction&) {
          // Snapshot transfer is a fabric concern; tests drive
          // install_snapshot directly.
        },
        [&](protocol::ExecDivergenceAction&) {
          // The harness reports identical digests everywhere, so the
          // tripwire cannot fire; divergence is injected in chaos_test.
        });
  }

  void deliver(Delivery& d) {
    if (is_crashed(d.to) || is_crashed(d.msg.from.id)) return;
    Engine& e = *engines_[d.to];
    protocol::Actions acts;
    using protocol::MsgType;
    if constexpr (std::is_same_v<Engine, protocol::PbftEngine>) {
      switch (d.msg.type()) {
        case MsgType::kPrePrepare:
          acts = e.on_preprepare(d.msg);
          break;
        case MsgType::kPrepare:
          acts = e.on_prepare(d.msg);
          break;
        case MsgType::kCommit:
          acts = e.on_commit(d.msg);
          break;
        case MsgType::kCheckpoint:
          acts = e.on_checkpoint(d.msg);
          break;
        case MsgType::kViewChange:
          acts = e.on_view_change(d.msg);
          break;
        case MsgType::kNewView:
          acts = e.on_new_view(d.msg);
          break;
        default:
          break;
      }
    } else if constexpr (std::is_same_v<Engine, protocol::PoeEngine>) {
      switch (d.msg.type()) {
        case MsgType::kPrePrepare:
          acts = e.on_propose(d.msg);
          break;
        case MsgType::kPrepare:
          acts = e.on_support(d.msg);
          break;
        case MsgType::kCheckpoint:
          acts = e.on_checkpoint(d.msg);
          break;
        default:
          break;
      }
    } else {
      switch (d.msg.type()) {
        case MsgType::kOrderRequest:
          acts = e.on_order_request(d.msg);
          break;
        case MsgType::kCommitCert:
          acts = e.on_commit_cert(d.msg);
          break;
        case MsgType::kCheckpoint:
          acts = e.on_checkpoint(d.msg);
          break;
        default:
          break;
      }
    }
    perform(d.to, std::move(acts));
  }

  std::uint32_t n_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::deque<Delivery> queue_;
  std::set<ReplicaId> crashed_;
  std::vector<std::vector<protocol::ExecuteAction>> executed_;
  std::vector<std::vector<protocol::Message>> client_msgs_;
  std::vector<std::map<std::uint64_t, TimeNs>> timers_;
  std::vector<SeqNum> stable_;
};

/// Builds a batch of `count` dummy transactions for client `c`.
inline std::vector<protocol::Transaction> make_batch(ClientId c,
                                                     RequestId base,
                                                     std::size_t count) {
  std::vector<protocol::Transaction> txns;
  for (std::size_t i = 0; i < count; ++i) {
    protocol::Transaction t;
    t.client = c;
    t.req_id = base + i;
    t.ops = 1;
    txns.push_back(std::move(t));
  }
  return txns;
}

}  // namespace rdb::test
