// SHA-512 against FIPS 180-4 vectors and Ed25519 against the RFC 8032
// test vectors, plus adversarial rejection cases.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/ed25519.h"
#include "crypto/sha512.h"

namespace rdb::crypto {
namespace {

std::string hex512(const Digest512& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(hex512(sha512("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(hex512(sha512("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(hex512(sha512(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, MillionAs) {
  Sha512 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex512(h.finish()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  std::string msg(517, 'q');
  Digest512 oneshot = sha512(msg);
  for (std::size_t split : {1u, 63u, 64u, 127u, 128u, 129u, 300u}) {
    Sha512 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), oneshot) << "split " << split;
  }
}

// ---------------------------------------------------------------------------
// RFC 8032 §7.1 test vectors.
// ---------------------------------------------------------------------------

Ed25519Seed seed_from_hex(const char* hex) {
  Bytes b = from_hex(hex);
  Ed25519Seed s{};
  std::copy(b.begin(), b.end(), s.begin());
  return s;
}

struct Rfc8032Vector {
  const char* seed;
  const char* public_key;
  const char* message;
  const char* signature;
};

const Rfc8032Vector kVectors[] = {
    // TEST 1: empty message.
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    // TEST 2: one byte.
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
     "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    // TEST 3: two bytes.
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
     "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
};

TEST(Ed25519, Rfc8032PublicKeys) {
  for (const auto& v : kVectors) {
    auto pub = ed25519_public_key(seed_from_hex(v.seed));
    EXPECT_EQ(to_hex(BytesView(pub.data(), pub.size())), v.public_key);
  }
}

TEST(Ed25519, Rfc8032Signatures) {
  for (const auto& v : kVectors) {
    auto seed = seed_from_hex(v.seed);
    auto pub = ed25519_public_key(seed);
    Bytes msg = from_hex(v.message);
    auto sig = ed25519_sign(BytesView(msg), seed, pub);
    EXPECT_EQ(to_hex(BytesView(sig.data(), sig.size())), v.signature);
  }
}

TEST(Ed25519, Rfc8032Verification) {
  for (const auto& v : kVectors) {
    auto pub = ed25519_public_key(seed_from_hex(v.seed));
    Bytes msg = from_hex(v.message);
    Bytes sig_bytes = from_hex(v.signature);
    Ed25519Signature sig{};
    std::copy(sig_bytes.begin(), sig_bytes.end(), sig.begin());
    EXPECT_TRUE(ed25519_verify(BytesView(msg), sig, pub));
  }
}

TEST(Ed25519, TamperedMessageRejected) {
  auto seed = seed_from_hex(kVectors[2].seed);
  auto pub = ed25519_public_key(seed);
  Bytes msg = from_hex(kVectors[2].message);
  auto sig = ed25519_sign(BytesView(msg), seed, pub);
  msg[0] ^= 0x01;
  EXPECT_FALSE(ed25519_verify(BytesView(msg), sig, pub));
}

TEST(Ed25519, TamperedSignatureRejected) {
  auto seed = seed_from_hex(kVectors[0].seed);
  auto pub = ed25519_public_key(seed);
  Bytes msg = to_bytes("hello world");
  auto sig = ed25519_sign(BytesView(msg), seed, pub);
  for (std::size_t i : {0u, 31u, 32u, 63u}) {
    auto bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(ed25519_verify(BytesView(msg), bad, pub)) << "byte " << i;
  }
}

TEST(Ed25519, WrongKeyRejected) {
  auto seed_a = seed_from_hex(kVectors[0].seed);
  auto pub_a = ed25519_public_key(seed_a);
  auto pub_b = ed25519_public_key(seed_from_hex(kVectors[1].seed));
  Bytes msg = to_bytes("addressed to A");
  auto sig = ed25519_sign(BytesView(msg), seed_a, pub_a);
  EXPECT_FALSE(ed25519_verify(BytesView(msg), sig, pub_b));
}

TEST(Ed25519, NonCanonicalScalarRejected) {
  auto seed = seed_from_hex(kVectors[0].seed);
  auto pub = ed25519_public_key(seed);
  Bytes msg = to_bytes("x");
  auto sig = ed25519_sign(BytesView(msg), seed, pub);
  // Force S >= L by setting its top bits.
  sig[63] |= 0xf0;
  EXPECT_FALSE(ed25519_verify(BytesView(msg), sig, pub));
}

TEST(Ed25519, InvalidPublicKeyRejected) {
  Ed25519PublicKey junk{};
  junk.fill(0xff);  // not a valid curve point encoding
  Ed25519Signature sig{};
  EXPECT_FALSE(ed25519_verify(BytesView(to_bytes("m")), sig, junk));
}

TEST(Ed25519, SignVerifyRoundTripVariousLengths) {
  auto seed = seed_from_hex(kVectors[1].seed);
  auto pub = ed25519_public_key(seed);
  for (std::size_t len : {0u, 1u, 31u, 32u, 63u, 64u, 100u, 1000u}) {
    Bytes msg(len, static_cast<std::uint8_t>(len * 7 + 1));
    auto sig = ed25519_sign(BytesView(msg), seed, pub);
    EXPECT_TRUE(ed25519_verify(BytesView(msg), sig, pub)) << "len " << len;
  }
}

// ---------------------------------------------------------------------------
// Key-validation negative tests: non-canonical encodings and small-order
// points must be rejected up front (cofactorless verification — see
// docs/crypto.md).
// ---------------------------------------------------------------------------

Ed25519PublicKey key_from_hex(const char* hex) {
  Bytes b = from_hex(hex);
  Ed25519PublicKey k{};
  std::copy(b.begin(), b.end(), k.begin());
  return k;
}

TEST(Ed25519, NonCanonicalPublicKeyRejected) {
  // The encoding of p itself (y coordinate == p, i.e. non-canonical zero)
  // and of p + 1 (non-canonical one). Both decode to valid small-order
  // points if canonicality is not enforced, so the canonicality check is
  // the only thing rejecting them.
  const char* non_canonical[] = {
      // p = 2^255 - 19
      "edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",
      // p + 1
      "eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",
      // p with the sign bit set
      "edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
  };
  Ed25519Signature sig{};
  for (const char* hex : non_canonical) {
    auto pk = key_from_hex(hex);
    EXPECT_EQ(ed25519_expand_key(pk), nullptr) << hex;
    EXPECT_FALSE(ed25519_verify(BytesView(to_bytes("m")), sig, pk)) << hex;
  }
}

TEST(Ed25519, SmallOrderPublicKeyRejected) {
  // Canonically-encoded small-order points: y=1 (identity, order 1),
  // y=-1 (order 2), y=0 (order 4), and the order-8 points with
  // y = +-sqrt(-1) - also with the sign bit variant for y=0.
  const char* small_order[] = {
      // identity: y = 1
      "0100000000000000000000000000000000000000000000000000000000000000",
      // y = p - 1 == -1: the order-2 point (0, -1)
      "ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",
      // y = 0: order-4 points (both x signs)
      "0000000000000000000000000000000000000000000000000000000000000000",
      "0000000000000000000000000000000000000000000000000000000000000080",
      // order-8 points (y such that x^2 = sqrt(-1) branch), both signs
      "c7176a703d4dd84fba3c0b760d10670f2a2053fa2c39ccc64ec7fd7792ac037a",
      "c7176a703d4dd84fba3c0b760d10670f2a2053fa2c39ccc64ec7fd7792ac03fa",
  };
  Ed25519Signature sig{};
  for (const char* hex : small_order) {
    auto pk = key_from_hex(hex);
    EXPECT_EQ(ed25519_expand_key(pk), nullptr) << hex;
    EXPECT_FALSE(ed25519_verify(BytesView(to_bytes("m")), sig, pk)) << hex;
  }
}

TEST(Ed25519, ExpandedKeyVerifyMatchesPlainVerify) {
  auto seed = seed_from_hex(kVectors[2].seed);
  auto pub = ed25519_public_key(seed);
  auto expanded = ed25519_expand_key(pub);
  ASSERT_NE(expanded, nullptr);
  Bytes msg = to_bytes("expanded-key path");
  auto sig = ed25519_sign(BytesView(msg), seed, pub);
  EXPECT_TRUE(ed25519_verify_expanded(BytesView(msg), sig, *expanded));
  EXPECT_TRUE(ed25519_verify(BytesView(msg), sig, pub));
  msg[0] ^= 1;
  EXPECT_FALSE(ed25519_verify_expanded(BytesView(msg), sig, *expanded));
}

// ---------------------------------------------------------------------------
// Fast-path vs reference cross-checks (satellite): the windowed fixed-base
// table, Barrett reduction, and double-scalar verification must agree with
// the retained binary double-and-add / shift-subtract implementations on
// random inputs.
// ---------------------------------------------------------------------------

std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void fill_random(std::uint8_t* out, std::size_t n, std::uint64_t& state) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(splitmix(state) & 0xff);
}

TEST(Ed25519CrossCheck, FixedBaseTableMatchesBinaryLadder1k) {
  std::uint64_t rng = 0x5eed;
  for (int i = 0; i < 1000; ++i) {
    std::uint8_t scalar[32];
    fill_random(scalar, sizeof scalar, rng);
    scalar[31] &= 0x1f;  // keep below L-ish range; both paths reduce alike
    std::uint8_t fast[32], ref[32];
    detail::scalarmult_base(fast, scalar);
    detail::scalarmult_base_ref(ref, scalar);
    ASSERT_EQ(std::memcmp(fast, ref, 32), 0) << "iteration " << i;
  }
}

TEST(Ed25519CrossCheck, BarrettReductionMatchesShiftSubtract1k) {
  std::uint64_t rng = 0xba77;
  for (int i = 0; i < 1000; ++i) {
    std::uint8_t wide[64];
    fill_random(wide, sizeof wide, rng);
    std::uint8_t fast[32], ref[32];
    detail::sc_reduce512(wide, fast);
    detail::sc_reduce512_ref(wide, ref);
    ASSERT_EQ(std::memcmp(fast, ref, 32), 0) << "iteration " << i;
  }
  // Edge cases: all-zero and all-ones.
  std::uint8_t wide[64], fast[32], ref[32];
  std::memset(wide, 0, sizeof wide);
  detail::sc_reduce512(wide, fast);
  detail::sc_reduce512_ref(wide, ref);
  EXPECT_EQ(std::memcmp(fast, ref, 32), 0);
  std::memset(wide, 0xff, sizeof wide);
  detail::sc_reduce512(wide, fast);
  detail::sc_reduce512_ref(wide, ref);
  EXPECT_EQ(std::memcmp(fast, ref, 32), 0);
}

TEST(Ed25519CrossCheck, FastSignMatchesReferenceSign) {
  std::uint64_t rng = 0x516e;
  for (int i = 0; i < 64; ++i) {
    Ed25519Seed seed{};
    fill_random(seed.data(), seed.size(), rng);
    auto pub = ed25519_public_key(seed);
    Bytes msg(static_cast<std::size_t>(i * 3), 0);
    fill_random(msg.data(), msg.size(), rng);
    auto fast = ed25519_sign(BytesView(msg), seed, pub);
    auto ref = detail::sign_ref(BytesView(msg), seed, pub);
    ASSERT_EQ(fast, ref) << "iteration " << i;
  }
}

TEST(Ed25519CrossCheck, FastVerifyAgreesWithReferenceVerify) {
  std::uint64_t rng = 0xacc0;
  for (int i = 0; i < 64; ++i) {
    Ed25519Seed seed{};
    fill_random(seed.data(), seed.size(), rng);
    auto pub = ed25519_public_key(seed);
    Bytes msg(48, 0);
    fill_random(msg.data(), msg.size(), rng);
    auto sig = ed25519_sign(BytesView(msg), seed, pub);
    ASSERT_TRUE(ed25519_verify(BytesView(msg), sig, pub));
    ASSERT_TRUE(detail::verify_ref(BytesView(msg), sig, pub));
    // Corrupt one bit: both must reject.
    auto bad = sig;
    bad[static_cast<std::size_t>(splitmix(rng) % 64)] ^= 0x04;
    bool fast_ok = ed25519_verify(BytesView(msg), bad, pub);
    bool ref_ok = detail::verify_ref(BytesView(msg), bad, pub);
    ASSERT_EQ(fast_ok, ref_ok) << "iteration " << i;
    ASSERT_FALSE(fast_ok);
  }
}

}  // namespace
}  // namespace rdb::crypto
