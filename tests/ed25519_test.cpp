// SHA-512 against FIPS 180-4 vectors and Ed25519 against the RFC 8032
// test vectors, plus adversarial rejection cases.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/ed25519.h"
#include "crypto/sha512.h"

namespace rdb::crypto {
namespace {

std::string hex512(const Digest512& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(hex512(sha512("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(hex512(sha512("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(hex512(sha512(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, MillionAs) {
  Sha512 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex512(h.finish()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  std::string msg(517, 'q');
  Digest512 oneshot = sha512(msg);
  for (std::size_t split : {1u, 63u, 64u, 127u, 128u, 129u, 300u}) {
    Sha512 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), oneshot) << "split " << split;
  }
}

// ---------------------------------------------------------------------------
// RFC 8032 §7.1 test vectors.
// ---------------------------------------------------------------------------

Ed25519Seed seed_from_hex(const char* hex) {
  Bytes b = from_hex(hex);
  Ed25519Seed s{};
  std::copy(b.begin(), b.end(), s.begin());
  return s;
}

struct Rfc8032Vector {
  const char* seed;
  const char* public_key;
  const char* message;
  const char* signature;
};

const Rfc8032Vector kVectors[] = {
    // TEST 1: empty message.
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    // TEST 2: one byte.
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
     "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    // TEST 3: two bytes.
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
     "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
};

TEST(Ed25519, Rfc8032PublicKeys) {
  for (const auto& v : kVectors) {
    auto pub = ed25519_public_key(seed_from_hex(v.seed));
    EXPECT_EQ(to_hex(BytesView(pub.data(), pub.size())), v.public_key);
  }
}

TEST(Ed25519, Rfc8032Signatures) {
  for (const auto& v : kVectors) {
    auto seed = seed_from_hex(v.seed);
    auto pub = ed25519_public_key(seed);
    Bytes msg = from_hex(v.message);
    auto sig = ed25519_sign(BytesView(msg), seed, pub);
    EXPECT_EQ(to_hex(BytesView(sig.data(), sig.size())), v.signature);
  }
}

TEST(Ed25519, Rfc8032Verification) {
  for (const auto& v : kVectors) {
    auto pub = ed25519_public_key(seed_from_hex(v.seed));
    Bytes msg = from_hex(v.message);
    Bytes sig_bytes = from_hex(v.signature);
    Ed25519Signature sig{};
    std::copy(sig_bytes.begin(), sig_bytes.end(), sig.begin());
    EXPECT_TRUE(ed25519_verify(BytesView(msg), sig, pub));
  }
}

TEST(Ed25519, TamperedMessageRejected) {
  auto seed = seed_from_hex(kVectors[2].seed);
  auto pub = ed25519_public_key(seed);
  Bytes msg = from_hex(kVectors[2].message);
  auto sig = ed25519_sign(BytesView(msg), seed, pub);
  msg[0] ^= 0x01;
  EXPECT_FALSE(ed25519_verify(BytesView(msg), sig, pub));
}

TEST(Ed25519, TamperedSignatureRejected) {
  auto seed = seed_from_hex(kVectors[0].seed);
  auto pub = ed25519_public_key(seed);
  Bytes msg = to_bytes("hello world");
  auto sig = ed25519_sign(BytesView(msg), seed, pub);
  for (std::size_t i : {0u, 31u, 32u, 63u}) {
    auto bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(ed25519_verify(BytesView(msg), bad, pub)) << "byte " << i;
  }
}

TEST(Ed25519, WrongKeyRejected) {
  auto seed_a = seed_from_hex(kVectors[0].seed);
  auto pub_a = ed25519_public_key(seed_a);
  auto pub_b = ed25519_public_key(seed_from_hex(kVectors[1].seed));
  Bytes msg = to_bytes("addressed to A");
  auto sig = ed25519_sign(BytesView(msg), seed_a, pub_a);
  EXPECT_FALSE(ed25519_verify(BytesView(msg), sig, pub_b));
}

TEST(Ed25519, NonCanonicalScalarRejected) {
  auto seed = seed_from_hex(kVectors[0].seed);
  auto pub = ed25519_public_key(seed);
  Bytes msg = to_bytes("x");
  auto sig = ed25519_sign(BytesView(msg), seed, pub);
  // Force S >= L by setting its top bits.
  sig[63] |= 0xf0;
  EXPECT_FALSE(ed25519_verify(BytesView(msg), sig, pub));
}

TEST(Ed25519, InvalidPublicKeyRejected) {
  Ed25519PublicKey junk{};
  junk.fill(0xff);  // not a valid curve point encoding
  Ed25519Signature sig{};
  EXPECT_FALSE(ed25519_verify(BytesView(to_bytes("m")), sig, junk));
}

TEST(Ed25519, SignVerifyRoundTripVariousLengths) {
  auto seed = seed_from_hex(kVectors[1].seed);
  auto pub = ed25519_public_key(seed);
  for (std::size_t len : {0u, 1u, 31u, 32u, 63u, 64u, 100u, 1000u}) {
    Bytes msg(len, static_cast<std::uint8_t>(len * 7 + 1));
    auto sig = ed25519_sign(BytesView(msg), seed, pub);
    EXPECT_TRUE(ed25519_verify(BytesView(msg), sig, pub)) << "len " << len;
  }
}

}  // namespace
}  // namespace rdb::crypto
