// Batch Ed25519 verification: the randomized-linear-combination MSM path
// must agree with serial verification item-for-item — including every
// malformed-input edge (non-canonical scalars/points, small-order R, keys
// missing from the registry) and under deliberate culprit injection, where
// the deterministic bisection has to isolate exactly the forged items.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/ed25519.h"
#include "crypto/key_registry.h"
#include "crypto/provider.h"

namespace rdb::crypto {
namespace {

Ed25519Seed seed_of_byte(std::uint8_t b) {
  Ed25519Seed s{};
  s.fill(b);
  return s;
}

/// A signed message plus everything batch verification needs.
struct Sample {
  Bytes msg;
  Ed25519Signature sig{};
  Ed25519PublicKey pub{};
  Ed25519ExpandedKeyPtr key;
};

Sample make_sample(std::uint8_t signer, const std::string& text) {
  Sample s;
  s.msg = Bytes(text.begin(), text.end());
  Ed25519Seed seed = seed_of_byte(static_cast<std::uint8_t>(signer + 1));
  s.pub = ed25519_public_key(seed);
  s.sig = ed25519_sign(BytesView(s.msg), seed, s.pub);
  s.key = ed25519_expand_key(s.pub);
  EXPECT_NE(s.key, nullptr);
  return s;
}

Ed25519BatchItem item_of(const Sample& s) {
  return Ed25519BatchItem{BytesView(s.msg), s.sig.data(), s.key.get()};
}

TEST(BatchVerify, EmptyBatch) {
  Ed25519BatchStats stats;
  EXPECT_EQ(ed25519_verify_batch(nullptr, 0, nullptr, &stats), 0u);
  EXPECT_EQ(stats.msm_checks, 0u);
  EXPECT_EQ(stats.bisections, 0u);
  EXPECT_EQ(stats.serial_fallbacks, 0u);
}

TEST(BatchVerify, BatchOfOne) {
  Sample good = make_sample(0, "lone message");
  Ed25519BatchItem item = item_of(good);
  bool verdict = false;
  EXPECT_EQ(ed25519_verify_batch(&item, 1, &verdict), 1u);
  EXPECT_TRUE(verdict);

  Sample bad = make_sample(1, "other message");
  bad.msg.push_back(0x5A);  // signature no longer covers the message
  item = item_of(bad);
  EXPECT_EQ(ed25519_verify_batch(&item, 1, &verdict), 0u);
  EXPECT_FALSE(verdict);
}

TEST(BatchVerify, AllValidWaveUsesOneMsm) {
  std::vector<Sample> samples;
  for (int i = 0; i < 64; ++i)
    samples.push_back(make_sample(static_cast<std::uint8_t>(i % 8),
                                  "wave message " + std::to_string(i)));
  std::vector<Ed25519BatchItem> items;
  for (const auto& s : samples) items.push_back(item_of(s));
  bool* verdicts = new bool[items.size()];
  Ed25519BatchStats stats;
  EXPECT_EQ(ed25519_verify_batch(items.data(), items.size(), verdicts, &stats),
            items.size());
  for (std::size_t i = 0; i < items.size(); ++i) EXPECT_TRUE(verdicts[i]);
  EXPECT_EQ(stats.msm_checks, 1u);
  EXPECT_EQ(stats.bisections, 0u);
  EXPECT_EQ(stats.serial_fallbacks, 0u);
  delete[] verdicts;
}

TEST(BatchVerify, BisectionFindsExactlyTheForgedCulprit) {
  std::vector<Sample> samples;
  for (int i = 0; i < 64; ++i)
    samples.push_back(make_sample(static_cast<std::uint8_t>(i % 8),
                                  "culprit hunt " + std::to_string(i)));
  constexpr std::size_t kCulprit = 37;
  samples[kCulprit].sig[40] ^= 0x01;  // corrupt one byte of S
  std::vector<Ed25519BatchItem> items;
  for (const auto& s : samples) items.push_back(item_of(s));
  std::vector<bool> expected;
  for (const auto& s : samples)
    expected.push_back(ed25519_verify(BytesView(s.msg), s.sig, s.pub));
  ASSERT_FALSE(expected[kCulprit]);

  bool* verdicts = new bool[items.size()];
  Ed25519BatchStats stats;
  EXPECT_EQ(ed25519_verify_batch(items.data(), items.size(), verdicts, &stats),
            items.size() - 1);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != kCulprit) << "item " << i;
    EXPECT_EQ(verdicts[i], expected[i]) << "item " << i;
  }
  // The top-level wave failed and the hunt descended: log2(64) = 6 levels,
  // each contributing at least one split on the path to the culprit.
  EXPECT_GE(stats.bisections, 5u);
  EXPECT_GT(stats.msm_checks, 1u);
  delete[] verdicts;
}

TEST(BatchVerify, DuplicateEntriesAllAccepted) {
  Sample base = make_sample(3, "duplicated message");
  std::vector<Ed25519BatchItem> items;
  for (int i = 0; i < 8; ++i) items.push_back(item_of(base));
  std::vector<Sample> extra;
  for (int i = 0; i < 8; ++i)
    extra.push_back(make_sample(static_cast<std::uint8_t>(i),
                                "distinct " + std::to_string(i)));
  for (const auto& s : extra) items.push_back(item_of(s));
  bool* verdicts = new bool[items.size()];
  EXPECT_EQ(ed25519_verify_batch(items.data(), items.size(), verdicts),
            items.size());
  for (std::size_t i = 0; i < items.size(); ++i) EXPECT_TRUE(verdicts[i]);
  delete[] verdicts;
}

TEST(BatchVerify, MalformedItemsMatchSerialWithoutPoisoningTheWave) {
  // A wave of 6 good signatures with hostile items spliced in. Every verdict
  // must equal the serial path's, and the good items must stay accepted.
  std::vector<Sample> good;
  for (int i = 0; i < 6; ++i)
    good.push_back(make_sample(static_cast<std::uint8_t>(i),
                               "good " + std::to_string(i)));

  // S >= L: the canonical-scalar reject. L's little-endian bytes:
  const std::uint8_t l_bytes[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12,
                                    0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9,
                                    0xde, 0x14, 0,    0,    0,    0,    0,
                                    0,    0,    0,    0,    0,    0,    0,
                                    0,    0,    0,    0x10};
  Sample big_s = make_sample(6, "non-canonical S");
  std::memcpy(big_s.sig.data() + 32, l_bytes, 32);

  // Non-canonical R encoding: y = p (= 2^255 - 19), sign bit clear.
  Sample nc_r = make_sample(7, "non-canonical R");
  std::memset(nc_r.sig.data(), 0xff, 32);
  nc_r.sig[0] = 0xed;
  nc_r.sig[31] = 0x7f;

  // Small-order R: the identity's encoding (y = 1).
  Sample so_r = make_sample(8, "small-order R");
  std::memset(so_r.sig.data(), 0, 32);
  so_r.sig[0] = 0x01;

  // R not on the curve (y = 2 has no matching x).
  Sample off_r = make_sample(9, "off-curve R");
  std::memset(off_r.sig.data(), 0, 32);
  off_r.sig[0] = 0x02;

  std::vector<Sample*> hostile{&big_s, &nc_r, &so_r, &off_r};
  std::vector<Ed25519BatchItem> items;
  std::vector<bool> expected;
  for (auto& s : good) {
    items.push_back(item_of(s));
    expected.push_back(true);
  }
  for (Sample* s : hostile) {
    items.push_back(item_of(*s));
    expected.push_back(ed25519_verify(BytesView(s->msg), s->sig, s->pub));
    EXPECT_FALSE(expected.back());
  }
  // Null key: rejected before any curve math.
  items.push_back(Ed25519BatchItem{BytesView(good[0].msg), good[0].sig.data(),
                                   nullptr});
  expected.push_back(false);

  bool* verdicts = new bool[items.size()];
  Ed25519BatchStats stats;
  ed25519_verify_batch(items.data(), items.size(), verdicts, &stats);
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(verdicts[i], expected[i]) << "item " << i;
  // The small-order R was settled serially, not smuggled into the MSM.
  EXPECT_GE(stats.serial_fallbacks, 1u);
  delete[] verdicts;
}

TEST(BatchVerify, CrossCheck1kAgainstSerial) {
  // 1000 randomized samples — valid, bit-flipped signatures, bit-flipped
  // messages, and key swaps — verified in waves of 61 (never aligned with
  // the corruption pattern). Batch accept/reject must equal serial exactly.
  Rng rng(0xBA7C4);
  std::vector<Sample> samples;
  samples.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    Sample s = make_sample(static_cast<std::uint8_t>(rng.next() % 16),
                           "crosscheck " + std::to_string(i));
    switch (rng.next() % 4) {
      case 0:  // valid
        break;
      case 1:  // corrupt a signature byte (R or S half)
        s.sig[rng.next() % 64] ^= static_cast<std::uint8_t>(
            1u << (rng.next() % 8));
        break;
      case 2:  // corrupt the message
        s.msg[rng.next() % s.msg.size()] ^= 0x80;
        break;
      default: {  // verify under a different signer's key
        Ed25519Seed other =
            seed_of_byte(static_cast<std::uint8_t>(rng.next() % 16 + 100));
        s.pub = ed25519_public_key(other);
        s.key = ed25519_expand_key(s.pub);
        break;
      }
    }
    samples.push_back(std::move(s));
  }

  std::vector<bool> expected;
  expected.reserve(samples.size());
  for (const auto& s : samples)
    expected.push_back(ed25519_verify(BytesView(s.msg), s.sig, s.pub));

  std::size_t serial_valid = 0;
  for (bool b : expected) serial_valid += b ? 1u : 0u;
  ASSERT_GT(serial_valid, 0u);
  ASSERT_LT(serial_valid, samples.size());

  constexpr std::size_t kWave = 61;
  bool* verdicts = new bool[kWave];
  for (std::size_t begin = 0; begin < samples.size(); begin += kWave) {
    const std::size_t count = std::min(kWave, samples.size() - begin);
    std::vector<Ed25519BatchItem> items;
    for (std::size_t i = 0; i < count; ++i)
      items.push_back(item_of(samples[begin + i]));
    ed25519_verify_batch(items.data(), count, verdicts);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(verdicts[i], expected[begin + i]) << "sample " << (begin + i);
  }
  delete[] verdicts;
}

TEST(BatchVerify, RegistryExpandManyMatchesSingleLookups) {
  KeyRegistry registry(42);
  std::vector<Endpoint> eps;
  for (std::uint32_t r = 0; r < 4; ++r) eps.push_back(Endpoint::replica(r));
  eps.push_back(Endpoint::replica(1));  // duplicate in the same wave
  eps.push_back(Endpoint::client(9));

  std::vector<Ed25519ExpandedKeyPtr> bulk(eps.size());
  registry.ed25519_expand_many(eps.data(), eps.size(), bulk.data());
  auto after_cold = registry.ed25519_cache_stats();
  EXPECT_EQ(after_cold.bulk_lookups, 1u);
  EXPECT_EQ(after_cold.bulk_keys, eps.size());
  // 5 unique endpoints missed; the duplicate resolved through its twin.
  EXPECT_EQ(after_cold.hits + after_cold.misses, eps.size());

  for (std::size_t i = 0; i < eps.size(); ++i) {
    ASSERT_NE(bulk[i], nullptr) << "endpoint " << i;
    EXPECT_EQ(bulk[i].get(), registry.ed25519_expanded(eps[i]).get())
        << "endpoint " << i;
  }

  // Warm wave: all hits, same pointers.
  std::vector<Ed25519ExpandedKeyPtr> warm(eps.size());
  registry.ed25519_expand_many(eps.data(), eps.size(), warm.data());
  auto after_warm = registry.ed25519_cache_stats();
  EXPECT_EQ(after_warm.bulk_lookups, 2u);
  EXPECT_EQ(after_warm.misses, after_cold.misses);
  for (std::size_t i = 0; i < eps.size(); ++i)
    EXPECT_EQ(warm[i].get(), bulk[i].get());
}

TEST(BatchVerify, ProviderVerifyBatchMatchesVerifyAcrossSchemes) {
  // Standard scheme split: replica<->replica CMAC, client<->replica Ed25519.
  // A mixed wave must dispatch each item to its scheme and agree with
  // verify() bit-for-bit; only the Ed25519 items ride the MSM.
  KeyRegistry registry(7);
  SchemeConfig schemes = SchemeConfig::standard();
  CryptoProvider self(Endpoint::replica(0), registry, schemes);
  CryptoProvider peer(Endpoint::replica(1), registry, schemes);
  CryptoProvider client(Endpoint::client(5), registry, schemes);

  std::vector<Bytes> msgs;
  std::vector<Bytes> sigs;
  std::vector<Endpoint> froms;
  for (int i = 0; i < 10; ++i) {
    Bytes m{static_cast<std::uint8_t>(i), 0xAB, 0xCD};
    if (i % 2 == 0) {
      // Client-signed (Ed25519 on the wire).
      froms.push_back(Endpoint::client(5));
      sigs.push_back(client.sign(Endpoint::replica(0), BytesView(m)));
    } else {
      // Replica-signed (CMAC tag under the pairwise key).
      froms.push_back(Endpoint::replica(1));
      sigs.push_back(peer.sign(Endpoint::replica(0), BytesView(m)));
    }
    msgs.push_back(std::move(m));
  }
  sigs[4][10] ^= 0x40;  // forge one Ed25519 signature
  sigs[3][5] ^= 0x40;   // forge one CMAC tag
  sigs[6] = Bytes{0x02};  // truncated Ed25519 frame -> serial reject

  std::vector<VerifyItem> items;
  for (std::size_t i = 0; i < msgs.size(); ++i)
    items.push_back(VerifyItem{froms[i], BytesView(msgs[i]),
                               BytesView(sigs[i])});
  bool* verdicts = new bool[items.size()];
  BatchVerifyStats stats;
  self.verify_batch(items.data(), items.size(), verdicts, &stats);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(verdicts[i],
              self.verify(froms[i], BytesView(msgs[i]), BytesView(sigs[i])))
        << "item " << i;
  }
  EXPECT_FALSE(verdicts[3]);
  EXPECT_FALSE(verdicts[4]);
  EXPECT_FALSE(verdicts[6]);
  // 4 well-formed Ed25519 items batched (one forged); CMAC + the truncated
  // frame settled serially.
  EXPECT_EQ(stats.ed25519_batched, 4u);
  EXPECT_EQ(stats.serial, 6u);
  delete[] verdicts;
}

}  // namespace
}  // namespace rdb::crypto
