// Chaos / recovery drills (the paper's Figure 17 territory): the threaded
// runtime driven through scripted fault scenarios via FaultyTransport —
// primary crash (view change + progress), partition-then-heal (state
// transfer), duplicate/reorder storms (exactly-once execution, no forks) —
// plus the seeded-determinism and clean-shutdown regression tests.
//
// Every scenario asserts the canonical outcome: all live replicas end with
// identical chain accumulators and exactly-once transaction execution.
#include <gtest/gtest.h>

#include <iostream>

#include <chrono>
#include <memory>
#include <thread>

#include "crypto/sha256.h"
#include "protocol/zyzzyva.h"
#include "runtime/cluster.h"
#include "runtime/faulty_transport.h"
#include "workload/ycsb.h"

namespace rdb::runtime {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<workload::YcsbWorkload> make_workload() {
  return std::make_shared<workload::YcsbWorkload>(
      workload::YcsbConfig{.record_count = 500, .ops_per_txn = 2});
}

ClusterConfig chaos_config(std::shared_ptr<workload::YcsbWorkload> wl,
                           std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.replicas = 4;
  cfg.batch_size = 5;
  cfg.enable_chaos = true;
  cfg.fault_plan.seed = seed;
  cfg.catchup_poll_ns = 100'000'000;        // 100 ms gap-detection poll
  cfg.request_timeout_ns = 600'000'000;     // 600 ms view-change watchdog
  cfg.client_timeout = 1'500ms;
  cfg.client_max_retries = 8;
  cfg.client_broadcast_after = 1;           // first retry goes to everyone
  cfg.execute = [wl](const protocol::Transaction& t, storage::KvStore& s) {
    return wl->execute(t, s);
  };
  return cfg;
}

std::vector<protocol::Transaction> make_burst(
    Client& client, workload::YcsbWorkload& wl, Rng& rng, int count) {
  std::vector<protocol::Transaction> burst;
  for (int i = 0; i < count; ++i) {
    auto t = wl.make_transaction(rng, client.id(), 0);
    burst.push_back(client.make_transaction(t.payload, t.ops));
  }
  return burst;
}

/// Waits until every replica in `ids` reports the same last_executed for a
/// few consecutive polls (cluster quiescence), or the deadline passes.
bool wait_converged(LocalCluster& cluster, const std::vector<ReplicaId>& ids,
                    std::chrono::seconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  int stable_polls = 0;
  SeqNum last = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    SeqNum lo = std::numeric_limits<SeqNum>::max(), hi = 0;
    for (ReplicaId r : ids) {
      SeqNum e = cluster.replica(r).last_executed();
      lo = std::min(lo, e);
      hi = std::max(hi, e);
    }
    if (lo == hi && lo > 0 && lo == last) {
      if (++stable_polls >= 3) return true;
    } else {
      stable_polls = 0;
      last = lo == hi ? lo : 0;
    }
    std::this_thread::sleep_for(50ms);
  }
  return false;
}

/// Asserts the execution fingerprints (exec_acc fold, recorded at each
/// checkpoint boundary and carried on Checkpoint votes) are byte-identical
/// across `ids` on every boundary two replicas both retain — and that at
/// least one boundary was shared, so the assertion is never vacuous. Chain
/// accumulators prove agreement on ORDER; this proves execution itself
/// (result codes + state deltas) did not fork.
void expect_exec_fingerprints_match(LocalCluster& cluster,
                                    const std::vector<ReplicaId>& ids) {
  const auto& base = cluster.replica(ids[0]).exec_fingerprints();
  bool any = false;
  for (ReplicaId r : ids) {
    if (r == ids[0]) continue;
    for (const auto& [seq, fp] : cluster.replica(r).exec_fingerprints()) {
      auto it = base.find(seq);
      if (it == base.end()) continue;
      any = true;
      EXPECT_EQ(it->second, fp)
          << "replica " << r << " execution forked at checkpoint seq " << seq;
    }
  }
  EXPECT_TRUE(any) << "no shared checkpoint boundary — fingerprint assertion "
                      "proved nothing (checkpoint_interval too large?)";
}

// ---------------------------------------------------------------------------
// Seeded determinism: same seed => identical fault trace. (Satellite.)
// ---------------------------------------------------------------------------

struct TraceResult {
  std::uint64_t hash{0};
  FaultyTransport::Counters counters;
};

TraceResult run_trace(std::uint64_t seed) {
  InprocTransport inner;
  FaultPlan plan;
  plan.seed = seed;
  plan.default_faults = {.drop = 0.2,
                         .duplicate = 0.2,
                         .reorder = 0.1,
                         .corrupt = 0.1,
                         .delay_ns = 0,
                         .jitter_ns = 0};
  FaultyTransport chaos(inner, plan);
  auto inbox = std::make_shared<Transport::Inbox>();
  chaos.register_endpoint(Endpoint::replica(1), inbox);

  protocol::Message m;
  m.from = Endpoint::replica(0);
  protocol::Prepare p;
  p.view = 0;
  m.signature = Bytes(32, 0xAB);
  for (SeqNum s = 1; s <= 400; ++s) {
    p.seq = s;
    m.payload = p;
    chaos.send(Endpoint::replica(1), m);
  }
  TraceResult out{chaos.trace_hash(), chaos.counters()};
  chaos.stop();
  return out;
}

TEST(Chaos, FaultyTransportSeededDeterminism) {
  TraceResult a = run_trace(1234);
  TraceResult b = run_trace(1234);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.counters.forwarded, b.counters.forwarded);
  EXPECT_EQ(a.counters.dropped, b.counters.dropped);
  EXPECT_EQ(a.counters.duplicated, b.counters.duplicated);
  EXPECT_EQ(a.counters.reordered, b.counters.reordered);
  EXPECT_EQ(a.counters.corrupted, b.counters.corrupted);
  // The plan actually injected faults of every kind.
  EXPECT_GT(a.counters.dropped, 0u);
  EXPECT_GT(a.counters.duplicated, 0u);
  EXPECT_GT(a.counters.reordered, 0u);
  EXPECT_GT(a.counters.corrupted, 0u);

  TraceResult c = run_trace(9999);
  EXPECT_NE(a.hash, c.hash);
}

TEST(Chaos, FaultyTransportStructuralFaults) {
  InprocTransport inner;
  FaultyTransport chaos(inner, FaultPlan{.seed = 7});
  auto inbox0 = std::make_shared<Transport::Inbox>();
  auto inbox1 = std::make_shared<Transport::Inbox>();
  chaos.register_endpoint(Endpoint::replica(0), inbox0);
  chaos.register_endpoint(Endpoint::replica(1), inbox1);

  protocol::Message m;
  m.from = Endpoint::replica(0);
  m.payload = protocol::Prepare{};

  chaos.send(Endpoint::replica(1), m);
  EXPECT_TRUE(inbox1->pop_for(2s).has_value());

  // Directed partition: 0 -> 1 cut, 1 -> 0 still flows.
  chaos.partition_one_way(Endpoint::replica(0), Endpoint::replica(1));
  chaos.send(Endpoint::replica(1), m);
  EXPECT_FALSE(inbox1->pop_for(100ms).has_value());
  protocol::Message back;
  back.from = Endpoint::replica(1);
  back.payload = protocol::Prepare{};
  chaos.send(Endpoint::replica(0), back);
  EXPECT_TRUE(inbox0->pop_for(2s).has_value());

  // heal() restores the link; crash() kills both directions.
  chaos.heal();
  chaos.send(Endpoint::replica(1), m);
  EXPECT_TRUE(inbox1->pop_for(2s).has_value());
  chaos.crash(Endpoint::replica(1));
  EXPECT_TRUE(chaos.is_crashed(Endpoint::replica(1)));
  chaos.send(Endpoint::replica(1), m);
  chaos.send(Endpoint::replica(0), back);
  EXPECT_FALSE(inbox1->pop_for(100ms).has_value());
  EXPECT_FALSE(inbox0->pop_for(100ms).has_value());
  chaos.restart(Endpoint::replica(1));
  chaos.send(Endpoint::replica(1), m);
  EXPECT_TRUE(inbox1->pop_for(2s).has_value());

  auto c = chaos.counters();
  EXPECT_EQ(c.partition_drops, 1u);
  EXPECT_EQ(c.crash_drops, 2u);
  chaos.stop();
}

// ---------------------------------------------------------------------------
// Drill 1: primary crash — the cluster must view-change and keep committing.
// ---------------------------------------------------------------------------

TEST(Chaos, PbftPrimaryCrashViewChangesAndCommits) {
  auto wl = make_workload();
  LocalCluster cluster(chaos_config(wl, 42));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(17);

  // Warm-up: one committed batch in view 0.
  ASSERT_TRUE(
      client->submit_and_wait(make_burst(*client, *wl, rng, 5)).has_value());
  ASSERT_TRUE(cluster.wait_for_execution(1, 10s));

  // Crash-stop the view-0 primary. The next request times out at the
  // client, is re-broadcast to the backups (PBFT liveness rule), their
  // relayed-request watchdogs fire, and views advance past replica 0.
  cluster.chaos()->crash(Endpoint::replica(0));
  auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
  ASSERT_TRUE(res.has_value()) << "no progress after primary crash";

  EXPECT_GE(client->retries(), 1u);
  EXPECT_GT(client->stats().broadcasts, 0u);
  for (ReplicaId r = 1; r < 4; ++r)
    EXPECT_GE(cluster.replica(r).view(), 1u) << "replica " << r;
  EXPECT_GT(cluster.chaos()->counters().crash_drops, 0u);

  // The three live replicas agree on one canonical history.
  ASSERT_TRUE(wait_converged(cluster, {1, 2, 3}, 20s));
  auto acc1 = cluster.replica(1).chain().accumulator();
  EXPECT_EQ(cluster.replica(2).chain().accumulator(), acc1);
  EXPECT_EQ(cluster.replica(3).chain().accumulator(), acc1);
  cluster.stop();
}

// ---------------------------------------------------------------------------
// Drill 2: straggler behind a healed partition catches up via state transfer.
// ---------------------------------------------------------------------------

TEST(Chaos, PartitionedReplicaCatchesUpAfterHeal) {
  auto wl = make_workload();
  LocalCluster cluster(chaos_config(wl, 43));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(19);

  // Cut replica 3 off from every other endpoint (pairwise partitions).
  cluster.chaos()->isolate(Endpoint::replica(3));

  for (int round = 0; round < 4; ++round)
    ASSERT_TRUE(client->submit_and_wait(make_burst(*client, *wl, rng, 5))
                    .has_value());
  ASSERT_TRUE(cluster.wait_for_execution(4, 15s, /*skip=*/{3}));
  EXPECT_EQ(cluster.replica(3).last_executed(), 0u);
  EXPECT_GT(cluster.chaos()->counters().partition_drops, 0u);

  // Heal. Fresh consensus traffic reveals the committed frontier; the
  // periodic catch-up poll fetches the missed batches (state transfer).
  cluster.chaos()->heal();
  ASSERT_TRUE(
      client->submit_and_wait(make_burst(*client, *wl, rng, 5)).has_value());

  ASSERT_TRUE(cluster.wait_for_execution(5, 30s));
  ASSERT_TRUE(wait_converged(cluster, {0, 1, 2, 3}, 20s));
  auto acc0 = cluster.replica(0).chain().accumulator();
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).chain().accumulator(), acc0)
        << "replica " << r << " forked";
    EXPECT_EQ(cluster.replica(r).store().size(),
              cluster.replica(0).store().size());
  }
  cluster.stop();
}

// ---------------------------------------------------------------------------
// Drill 3: duplicate/reorder storm — exactly-once execution, no forks.
// ---------------------------------------------------------------------------

TEST(Chaos, DuplicateReorderStormNoDoubleExecution) {
  auto wl = make_workload();
  auto cfg = chaos_config(wl, 44);
  // Cross a checkpoint boundary mid-storm so the exec-fingerprint fold is
  // sealed (and exchanged on Checkpoint votes) while duplicates/reordering
  // are in flight.
  cfg.checkpoint_interval = 4;
  cfg.fault_plan.default_faults = {.drop = 0,
                                   .duplicate = 0.25,
                                   .reorder = 0.25,
                                   .corrupt = 0,
                                   .delay_ns = 0,
                                   .jitter_ns = 2'000'000};
  LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(23);

  constexpr int kRounds = 6, kBurst = 5;
  for (int round = 0; round < kRounds; ++round)
    ASSERT_TRUE(client->submit_and_wait(make_burst(*client, *wl, rng, kBurst))
                    .has_value())
        << "round " << round;

  ASSERT_TRUE(wait_converged(cluster, {0, 1, 2, 3}, 30s));
  auto c = cluster.chaos()->counters();
  EXPECT_GT(c.duplicated, 0u);
  EXPECT_GT(c.reordered, 0u);

  auto acc0 = cluster.replica(0).chain().accumulator();
  for (ReplicaId r = 0; r < 4; ++r) {
    auto stats = cluster.replica(r).stats();
    // Exactly-once: every distinct transaction executed once; injected
    // duplicates were suppressed by the reply cache / engine vote sets.
    EXPECT_EQ(stats.txns_executed, static_cast<std::uint64_t>(kRounds * kBurst))
        << "replica " << r << " double-executed under the storm";
    EXPECT_EQ(cluster.replica(r).chain().accumulator(), acc0)
        << "replica " << r << " forked";
    // Honest replicas under a message-level storm must neither fork their
    // execution fingerprints nor trip the divergence fail-stop.
    EXPECT_FALSE(cluster.replica(r).diverged()) << "replica " << r;
    EXPECT_EQ(stats.exec_divergence, 0u) << "replica " << r;
  }
  expect_exec_fingerprints_match(cluster, {0, 1, 2, 3});
  cluster.stop();
}

TEST(Chaos, DuplicateReorderStormWithBatchVerifyStage) {
  // The same storm, but with the burst-draining batch-verify stage in front
  // of consensus: full digital-signature schemes, a 2-thread verify pool
  // draining Prepare/Commit bursts into single MSM batch-verifications.
  // Duplicates and reordering land inside the batches; convergence and
  // exactly-once execution must hold, and the batch path must actually
  // engage (nonzero batched signatures).
  auto wl = make_workload();
  auto cfg = chaos_config(wl, 47);
  cfg.checkpoint_interval = 4;
  cfg.schemes = crypto::SchemeConfig::all_ed25519();
  cfg.verify_threads = 2;
  cfg.verify_batch_size = 16;
  cfg.verify_batch_wait_ns = 500'000;
  cfg.fault_plan.default_faults = {.drop = 0,
                                   .duplicate = 0.25,
                                   .reorder = 0.25,
                                   .corrupt = 0,
                                   .delay_ns = 0,
                                   .jitter_ns = 2'000'000};
  LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(29);

  constexpr int kRounds = 6, kBurst = 5;
  for (int round = 0; round < kRounds; ++round)
    ASSERT_TRUE(client->submit_and_wait(make_burst(*client, *wl, rng, kBurst))
                    .has_value())
        << "round " << round;

  ASSERT_TRUE(wait_converged(cluster, {0, 1, 2, 3}, 30s));
  auto c = cluster.chaos()->counters();
  EXPECT_GT(c.duplicated, 0u);
  EXPECT_GT(c.reordered, 0u);

  auto acc0 = cluster.replica(0).chain().accumulator();
  std::uint64_t total_batched = 0;
  for (ReplicaId r = 0; r < 4; ++r) {
    auto stats = cluster.replica(r).stats();
    EXPECT_EQ(stats.txns_executed, static_cast<std::uint64_t>(kRounds * kBurst))
        << "replica " << r << " double-executed under the storm";
    EXPECT_EQ(cluster.replica(r).chain().accumulator(), acc0)
        << "replica " << r << " forked";
    // Duplicated votes are valid signatures: nothing lands in the invalid
    // counter, and no batch ever bisects (all signatures verify).
    EXPECT_EQ(stats.invalid_signatures, 0u) << "replica " << r;
    total_batched += stats.batched_sigs;
  }
  EXPECT_GT(total_batched, 0u) << "burst-draining stage never engaged";
  expect_exec_fingerprints_match(cluster, {0, 1, 2, 3});
  cluster.stop();
}

// ---------------------------------------------------------------------------
// Divergence tripwire: one replica executes each batch in REVERSED order
// (the test_perturb_exec hook) — same ordered input, same chain accumulator,
// but a forked execution fingerprint. f+1 honest Checkpoint votes carrying
// the real fingerprint must fail-stop the perturbed replica with the named
// exec-divergence action; the honest majority keeps committing.
// ---------------------------------------------------------------------------

TEST(Chaos, ExecDivergenceTripwireFailStopsPerturbedReplica) {
  auto wl = make_workload();
  auto cfg = chaos_config(wl, 48);
  cfg.checkpoint_interval = 2;
  cfg.perturb_exec_replicas = {3};
  LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(31);

  // Cross at least two checkpoint boundaries (seqs 2 and 4): the first
  // boundary seals and exchanges the forked fingerprint, the vote storm
  // after it trips the wire on replica 3.
  for (int round = 0; round < 4; ++round)
    ASSERT_TRUE(client->submit_and_wait(make_burst(*client, *wl, rng, 5))
                    .has_value())
        << "round " << round;

  // The perturbed replica must fail-stop: f+1 peers voted checkpoints whose
  // chain accumulator matched but whose execution fingerprint did not.
  auto deadline = std::chrono::steady_clock::now() + 20s;
  while (!cluster.replica(3).diverged() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(cluster.replica(3).diverged())
      << "perturbed replica never tripped the exec-divergence fail-stop";
  EXPECT_GE(cluster.replica(3).stats().exec_divergence, 1u);

  // The honest majority is untouched: no fail-stop, no divergence counts,
  // continued progress, and identical fingerprints among themselves.
  ASSERT_TRUE(
      client->submit_and_wait(make_burst(*client, *wl, rng, 5)).has_value())
      << "honest majority stopped committing after the fail-stop";
  ASSERT_TRUE(wait_converged(cluster, {0, 1, 2}, 20s));
  for (ReplicaId r = 0; r < 3; ++r) {
    EXPECT_FALSE(cluster.replica(r).diverged()) << "replica " << r;
    EXPECT_EQ(cluster.replica(r).stats().exec_divergence, 0u)
        << "replica " << r;
  }
  expect_exec_fingerprints_match(cluster, {0, 1, 2});

  // The fork was in EXECUTION, not ordering: before halting, the perturbed
  // replica agreed on the same canonical chain prefix it executed.
  auto honest_fp = cluster.replica(0).exec_fingerprints();
  const auto& perturbed_fp = cluster.replica(3).exec_fingerprints();
  bool forked_boundary = false;
  for (const auto& [seq, fp] : perturbed_fp) {
    auto it = honest_fp.find(seq);
    if (it == honest_fp.end()) continue;
    if (!(it->second == fp)) forked_boundary = true;
  }
  EXPECT_TRUE(forked_boundary)
      << "perturbed replica's fingerprints never actually forked — the "
         "tripwire fired on something else";
  cluster.stop();
}

// ---------------------------------------------------------------------------
// Drill 4: malformed-message storm — structural (byte-level byzantine)
// corruption spliced into live consensus traffic. Every mutant must be
// rejected at the parse+validate door with a NAMED reason (counted in
// ReplicaStats.rejected_messages), never crash a replica, and never cause
// state divergence. This is the end-to-end check that the Untrusted<T>
// taint discipline holds under fire, not just in unit tests.
// ---------------------------------------------------------------------------

TEST(Chaos, MalformedMessageStormRejectedAndCounted) {
  auto wl = make_workload();
  auto cfg = chaos_config(wl, 46);
  // 8% of every link's frames are serialized and then structurally mutated
  // (truncation, length lies, type/kind confusion, bit flips, junk) before
  // delivery via send_raw. The surviving 92% must still commit.
  cfg.fault_plan.default_faults = {.structural = 0.08};
  LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(31);

  constexpr int kRounds = 6, kBurst = 5;
  for (int round = 0; round < kRounds; ++round)
    ASSERT_TRUE(client->submit_and_wait(make_burst(*client, *wl, rng, kBurst))
                    .has_value())
        << "round " << round;

  // End the storm, then drive one clean burst: fresh consensus traffic
  // reveals the committed frontier to any replica whose final-batch votes
  // were eaten by the storm (same shape as the partition-heal drill — a
  // quiesced cluster has no retransmission to learn a gap from).
  cluster.chaos()->clear_faults();
  ASSERT_TRUE(client->submit_and_wait(make_burst(*client, *wl, rng, kBurst))
                  .has_value());

  bool converged = wait_converged(cluster, {0, 1, 2, 3}, 30s);
  if (!converged) {
    for (ReplicaId r = 0; r < 4; ++r) {
      auto st = cluster.replica(r).stats();
      std::cerr << "replica " << int(r)
                << " last_executed=" << cluster.replica(r).last_executed()
                << " view=" << cluster.replica(r).view()
                << " rejected_total=" << st.rejected_total
                << " invalid_sigs=" << st.invalid_signatures << "\n";
    }
  }
  ASSERT_TRUE(converged);
  auto c = cluster.chaos()->counters();
  EXPECT_GT(c.structural, 0u) << "the storm never fired";

  // Rejects are COUNTED under named reasons, not silently dropped. (Some
  // mutants keep a parseable envelope and only break the signature — those
  // are rejected later at verification — so we assert over the cluster-wide
  // sum rather than per replica.)
  std::uint64_t rejected_total = 0;
  for (ReplicaId r = 0; r < 4; ++r)
    rejected_total += cluster.replica(r).stats().rejected_total;
  EXPECT_GT(rejected_total, 0u)
      << "structural mutants were injected but no replica counted a reject";

  auto acc0 = cluster.replica(0).chain().accumulator();
  for (ReplicaId r = 0; r < 4; ++r) {
    auto stats = cluster.replica(r).stats();
    EXPECT_EQ(stats.txns_executed,
              static_cast<std::uint64_t>((kRounds + 1) * kBurst))
        << "replica " << r << " lost or double-executed under the storm";
    EXPECT_EQ(cluster.replica(r).chain().accumulator(), acc0)
        << "replica " << r << " forked under malformed input";
  }
  cluster.stop();
}

// ---------------------------------------------------------------------------
// Regression: stop() is clean while a partition is active. (Satellite.)
// ---------------------------------------------------------------------------

TEST(Chaos, ClusterStopCleanUnderActivePartition) {
  auto wl = make_workload();
  LocalCluster cluster(chaos_config(wl, 45));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(29);

  ASSERT_TRUE(
      client->submit_and_wait(make_burst(*client, *wl, rng, 5)).has_value());
  cluster.chaos()->isolate(Endpoint::replica(2));
  ASSERT_TRUE(
      client->submit_and_wait(make_burst(*client, *wl, rng, 5)).has_value());

  // Stop with the partition still active and catch-up traffic in flight.
  // Must terminate promptly with no hang and no use-after-free (TSan job).
  cluster.stop();
  SUCCEED();
}

}  // namespace
}  // namespace rdb::runtime

// ---------------------------------------------------------------------------
// Zyzzyva drill: a duplicated/reordered OrderRequest storm at the engine
// level — speculative histories must neither fork nor double-execute.
// ---------------------------------------------------------------------------

namespace rdb::protocol {
namespace {

Message order_msg_of(Actions& actions) {
  for (auto& a : actions)
    if (auto* bc = std::get_if<BroadcastAction>(&a)) return bc->msg;
  ADD_FAILURE() << "no broadcast in actions";
  return Message{};
}

TEST(Chaos, ZyzzyvaDuplicateReorderStormEngineDrill) {
  constexpr std::uint32_t kN = 4;
  std::vector<std::unique_ptr<ZyzzyvaEngine>> engines;
  for (ReplicaId r = 0; r < kN; ++r) {
    ZyzzyvaConfig cfg;
    cfg.n = kN;
    cfg.self = r;
    engines.push_back(std::make_unique<ZyzzyvaEngine>(cfg));
  }

  // Primary orders six batches; capture the OrderRequests.
  std::vector<Message> orders;
  for (SeqNum s = 1; s <= 6; ++s) {
    Transaction t;
    t.client = 1;
    t.req_id = s;
    t.ops = 1;
    auto acts = engines[0]->make_order_request(
        s, {t}, s, crypto::sha256("batch" + std::to_string(s)));
    orders.push_back(order_msg_of(acts));
  }

  // Deterministic storm per backup: a seeded shuffle with every message
  // delivered twice (duplicate) — holes buffer, duplicates are rejected.
  for (ReplicaId r = 1; r < kN; ++r) {
    Rng rng(1000 + r);
    std::vector<Message> storm;
    for (const auto& m : orders) {
      storm.push_back(m);
      storm.push_back(m);  // duplicate copy
    }
    for (std::size_t i = storm.size(); i > 1; --i)
      std::swap(storm[i - 1], storm[rng.below(i)]);
    std::uint64_t executions = 0;
    for (const auto& m : storm) {
      auto acts = engines[r]->on_order_request(m);
      for (const auto& a : acts)
        if (std::holds_alternative<ExecuteAction>(a)) ++executions;
    }
    EXPECT_EQ(executions, 6u) << "replica " << r
                              << " double- or under-executed";
    EXPECT_EQ(engines[r]->last_spec_executed(), 6u);
    EXPECT_EQ(engines[r]->metrics().spec_executions, 6u);
  }

  // No forks: every backup's speculative history chain matches the
  // primary's at every sequence number.
  for (SeqNum s = 1; s <= 6; ++s) {
    auto h1 = engines[1]->history_at(s);
    EXPECT_EQ(engines[2]->history_at(s), h1) << "seq " << s;
    EXPECT_EQ(engines[3]->history_at(s), h1) << "seq " << s;
  }
  EXPECT_EQ(engines[1]->history(), engines[2]->history());
  EXPECT_EQ(engines[2]->history(), engines[3]->history());
}

}  // namespace
}  // namespace rdb::protocol
