// Zyzzyva engine: speculative execution, hash-chained history, out-of-order
// buffering, the commit-certificate slow path, and checkpointing.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "tests/engine_harness.h"

namespace rdb::protocol {
namespace {

using test::EngineHarness;
using test::make_batch;

Digest digest_of(const std::string& tag) { return crypto::sha256(tag); }

void order(EngineHarness<ZyzzyvaEngine>& h, SeqNum seq,
           const std::string& tag = "") {
  std::string t = tag.empty() ? "batch-" + std::to_string(seq) : tag;
  h.perform(0, h.engine(0).make_order_request(seq, make_batch(1, seq * 10, 2),
                                              (seq - 1) * 2 + 1,
                                              digest_of(t)));
}

TEST(Zyzzyva, SpeculativeExecutionOnOrderRequest) {
  EngineHarness<ZyzzyvaEngine> h(4);
  order(h, 1);
  h.run_all();
  for (ReplicaId r = 0; r < 4; ++r) {
    ASSERT_EQ(h.executed(r).size(), 1u) << "replica " << r;
    EXPECT_TRUE(h.executed(r)[0].speculative);
    EXPECT_EQ(h.executed(r)[0].seq, 1u);
    // Each replica answered the client with a SpecResponse.
    ASSERT_EQ(h.client_msgs(r).size(), 1u);
    EXPECT_EQ(h.client_msgs(r)[0].type(), MsgType::kSpecResponse);
  }
  EXPECT_TRUE(h.logs_consistent());
}

TEST(Zyzzyva, HistoryChainsAcrossBatches) {
  EngineHarness<ZyzzyvaEngine> h(4);
  order(h, 1);
  order(h, 2);
  order(h, 3);
  h.run_all();
  // All replicas converge on the same final history digest.
  Digest hist = h.engine(0).history();
  for (ReplicaId r = 1; r < 4; ++r) EXPECT_EQ(h.engine(r).history(), hist);
  EXPECT_EQ(h.engine(0).last_spec_executed(), 3u);
  // History is chained: changing any batch changes the final digest.
  EngineHarness<ZyzzyvaEngine> h2(4);
  order(h2, 1);
  order(h2, 2, "different");
  order(h2, 3);
  h2.run_all();
  EXPECT_NE(h2.engine(1).history(), hist);
}

TEST(Zyzzyva, OutOfOrderOrderRequestsBuffered) {
  EngineHarness<ZyzzyvaEngine> h(4);
  // Build order requests 1..3 at the primary but deliver 3, 2, 1 to a
  // backup by hand.
  auto mk = [&](SeqNum seq) {
    auto acts = h.engine(0).make_order_request(
        seq, make_batch(1, seq * 10, 1), seq, digest_of("b" + std::to_string(seq)));
    for (auto& a : acts)
      if (auto* bc = std::get_if<BroadcastAction>(&a)) return bc->msg;
    return Message{};
  };
  Message m1 = mk(1), m2 = mk(2), m3 = mk(3);

  auto acts3 = h.engine(1).on_order_request(m3);
  EXPECT_TRUE(acts3.empty());  // buffered: hole at 1..2
  auto acts2 = h.engine(1).on_order_request(m2);
  EXPECT_TRUE(acts2.empty());
  auto acts1 = h.engine(1).on_order_request(m1);
  // Delivery of seq 1 releases the whole contiguous run.
  std::size_t exec_count = 0;
  for (auto& a : acts1)
    if (std::holds_alternative<ExecuteAction>(a)) ++exec_count;
  EXPECT_EQ(exec_count, 3u);
  EXPECT_EQ(h.engine(1).last_spec_executed(), 3u);
}

TEST(Zyzzyva, PrimaryMustOrderContiguously) {
  EngineHarness<ZyzzyvaEngine> h(4);
  auto acts = h.engine(0).make_order_request(5, make_batch(1, 0, 1), 1,
                                             digest_of("gap"));
  EXPECT_TRUE(acts.empty());  // seq 5 before 1..4: rejected
  EXPECT_GE(h.engine(0).metrics().rejected_msgs, 1u);
}

TEST(Zyzzyva, NonPrimaryCannotOrder) {
  EngineHarness<ZyzzyvaEngine> h(4);
  auto acts = h.engine(1).make_order_request(1, make_batch(1, 0, 1), 1,
                                             digest_of("x"));
  EXPECT_TRUE(acts.empty());
}

TEST(Zyzzyva, ForgedHistoryRejected) {
  EngineHarness<ZyzzyvaEngine> h(4);
  OrderRequest oreq;
  oreq.view = 0;
  oreq.seq = 1;
  oreq.batch_digest = digest_of("legit");
  oreq.history = digest_of("forged-history");  // inconsistent chain
  oreq.txns = make_batch(1, 0, 1);
  Message m;
  m.from = Endpoint::replica(0);
  m.payload = oreq;
  auto acts = h.engine(1).on_order_request(m);
  EXPECT_TRUE(acts.empty());
  EXPECT_GE(h.engine(1).metrics().rejected_msgs, 1u);
  EXPECT_EQ(h.engine(1).last_spec_executed(), 0u);
}

TEST(Zyzzyva, OrderRequestFromNonPrimaryRejected) {
  EngineHarness<ZyzzyvaEngine> h(4);
  OrderRequest oreq;
  oreq.view = 0;
  oreq.seq = 1;
  oreq.batch_digest = digest_of("x");
  Message m;
  m.from = Endpoint::replica(2);
  m.payload = oreq;
  EXPECT_TRUE(h.engine(1).on_order_request(m).empty());
}

TEST(Zyzzyva, CommitCertAcceptedWhenHistoryMatches) {
  EngineHarness<ZyzzyvaEngine> h(4);
  order(h, 1);
  h.run_all();

  CommitCert cc;
  cc.view = 0;
  cc.seq = 1;
  cc.history = h.engine(1).history_at(1);
  cc.signers = {0, 1, 2};  // 2f+1 for n=4
  Message m;
  m.from = Endpoint::client(1);
  m.payload = cc;
  auto acts = h.engine(1).on_commit_cert(m);
  ASSERT_EQ(acts.size(), 1u);
  auto* send = std::get_if<SendAction>(&acts[0]);
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->msg.type(), MsgType::kLocalCommit);
  EXPECT_EQ(h.engine(1).committed_seq(), 1u);
}

TEST(Zyzzyva, CommitCertWithWrongHistoryRejected) {
  EngineHarness<ZyzzyvaEngine> h(4);
  order(h, 1);
  h.run_all();
  CommitCert cc;
  cc.view = 0;
  cc.seq = 1;
  cc.history = digest_of("wrong");
  cc.signers = {0, 1, 2};
  Message m;
  m.from = Endpoint::client(1);
  m.payload = cc;
  EXPECT_TRUE(h.engine(1).on_commit_cert(m).empty());
  EXPECT_EQ(h.engine(1).committed_seq(), 0u);
}

TEST(Zyzzyva, CommitCertNeedsQuorumOfSigners) {
  EngineHarness<ZyzzyvaEngine> h(4);
  order(h, 1);
  h.run_all();
  CommitCert cc;
  cc.view = 0;
  cc.seq = 1;
  cc.history = h.engine(1).history_at(1);
  cc.signers = {0, 1};  // only 2 < 2f+1 = 3
  Message m;
  m.from = Endpoint::client(1);
  m.payload = cc;
  EXPECT_TRUE(h.engine(1).on_commit_cert(m).empty());
}

TEST(Zyzzyva, CheckpointStabilizesAndPrunesHistoryLog) {
  EngineHarness<ZyzzyvaEngine> h(4, /*cp_interval=*/5);
  for (SeqNum s = 1; s <= 10; ++s) order(h, s);
  h.run_all();
  for (ReplicaId r = 0; r < 4; ++r)
    EXPECT_EQ(h.stable_checkpoint_seen(r), 10u) << "replica " << r;
}

TEST(Zyzzyva, SpecResponsePerClientInBatch) {
  EngineHarness<ZyzzyvaEngine> h(4);
  // One batch with transactions from three distinct clients.
  std::vector<Transaction> txns;
  for (ClientId c = 1; c <= 3; ++c) {
    Transaction t;
    t.client = c;
    t.req_id = 1;
    txns.push_back(t);
  }
  h.perform(0, h.engine(0).make_order_request(1, std::move(txns), 1,
                                              digest_of("multi")));
  h.run_all();
  // Each replica answers each distinct client exactly once.
  for (ReplicaId r = 0; r < 4; ++r)
    EXPECT_EQ(h.client_msgs(r).size(), 3u) << "replica " << r;
}

TEST(Zyzzyva, DuplicateOrderRequestIgnored) {
  EngineHarness<ZyzzyvaEngine> h(4);
  auto acts = h.engine(0).make_order_request(1, make_batch(1, 0, 1), 1,
                                             digest_of("dup"));
  Message m;
  for (auto& a : acts)
    if (auto* bc = std::get_if<BroadcastAction>(&a)) m = bc->msg;
  auto first = h.engine(1).on_order_request(m);
  EXPECT_FALSE(first.empty());
  auto second = h.engine(1).on_order_request(m);
  EXPECT_TRUE(second.empty());
}

TEST(Zyzzyva, DuplicateAndStaleTimeoutsAreCountedNoOps) {
  // Zyzzyva's slow path is client-driven and the view change is out of
  // scope, so a replica-side timer expiry — duplicate, stale, or racing a
  // speculative execution — must never perturb the history chain. The
  // model checker (src/mc/) schedules expiries adversarially; this pins
  // the engine-level contract it relies on: state_digest() unchanged.
  EngineHarness<ZyzzyvaEngine> h(4);
  order(h, 1);
  h.run_all();
  const Digest before = h.engine(1).state_digest();
  const auto stale_before = h.engine(1).metrics().stale_timeouts;
  EXPECT_TRUE(h.engine(1).on_timeout(1).empty());
  EXPECT_TRUE(h.engine(1).on_timeout(1).empty());  // duplicate expiry
  EXPECT_TRUE(h.engine(1).on_timeout(999).empty());  // never-armed timer
  EXPECT_EQ(h.engine(1).metrics().stale_timeouts, stale_before + 3);
  EXPECT_EQ(h.engine(1).state_digest(), before);
  // Mid-protocol (order request issued but not yet delivered), same story.
  order(h, 2);
  const Digest mid = h.engine(0).state_digest();
  EXPECT_TRUE(h.engine(0).on_timeout(2).empty());
  EXPECT_EQ(h.engine(0).state_digest(), mid);
}

}  // namespace
}  // namespace rdb::protocol
