// Storage layer: in-memory store semantics and the PageDB embedded database
// (persistence, WAL recovery, page-cache eviction, bucket chaining).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "storage/env.h"
#include "storage/faulty_env.h"
#include "storage/mem_store.h"
#include "storage/page_db.h"
#include "storage/wal.h"

namespace rdb::storage {
namespace {

namespace fs = std::filesystem;

TEST(MemStore, PutGetUpdate) {
  MemStore s;
  EXPECT_FALSE(s.get("k").has_value());
  s.put("k", "v1");
  EXPECT_EQ(s.get("k").value(), "v1");
  s.put("k", "v2");
  EXPECT_EQ(s.get("k").value(), "v2");
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains("k"));
  EXPECT_FALSE(s.contains("other"));
}

TEST(MemStore, StatsTrackReadsWritesMisses) {
  MemStore s;
  s.put("a", "1");
  (void)s.get("a");
  (void)s.get("missing");
  auto st = s.stats();
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.reads, 2u);
  EXPECT_EQ(st.read_misses, 1u);
}

TEST(MemStore, ManyKeysAcrossStripes) {
  MemStore s;
  for (int i = 0; i < 1000; ++i)
    s.put("key" + std::to_string(i), "value" + std::to_string(i));
  EXPECT_EQ(s.size(), 1000u);
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(s.get("key" + std::to_string(i)).value(),
              "value" + std::to_string(i));
}

// for_each_sorted is the determinism barrier digest/snapshot code must use:
// raw for_each walks hash stripes in hash order, which is not a canonical
// order. The barrier must visit every pair exactly once, in strict
// ascending key order, regardless of insertion order or backend.
TEST(MemStore, ForEachSortedVisitsKeysInAscendingOrder) {
  MemStore s;
  // Insertion order deliberately scrambled relative to key order.
  for (int i = 999; i >= 0; i -= 3)
    s.put("key" + std::to_string(i), "v" + std::to_string(i));
  for (int i = 1; i < 1000; i += 3)
    s.put("key" + std::to_string(i), "v" + std::to_string(i));
  for (int i = 2; i < 1000; i += 3)
    s.put("key" + std::to_string(i), "v" + std::to_string(i));

  std::vector<std::string> keys;
  std::string prev;
  s.for_each_sorted([&](std::string_view k, std::string_view v) {
    EXPECT_LT(prev, std::string(k)) << "visit order not strictly ascending";
    prev = std::string(k);
    EXPECT_EQ(v, "v" + std::string(k.substr(3)));
    keys.emplace_back(k);
  });
  EXPECT_EQ(keys.size(), 1000u);
}

class PageDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pagedb_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "db.pages").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  PageDbConfig config(std::size_t cache_pages = 64,
                      std::uint32_t buckets = 64) {
    PageDbConfig c;
    c.path = path_;
    c.cache_pages = cache_pages;
    c.bucket_count = buckets;
    return c;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(PageDbTest, PutGetUpdateSameSize) {
  PageDb db(config());
  db.put("alpha", "11111");
  EXPECT_EQ(db.get("alpha").value(), "11111");
  db.put("alpha", "22222");  // same length: in-place overwrite
  EXPECT_EQ(db.get("alpha").value(), "22222");
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(PageDbTest, UpdateDifferentSizeAppendsNewVersion) {
  PageDb db(config());
  db.put("k", "short");
  db.put("k", "a much longer value than before");
  EXPECT_EQ(db.get("k").value(), "a much longer value than before");
  EXPECT_EQ(db.size(), 1u);
  db.put("k", "s");
  EXPECT_EQ(db.get("k").value(), "s");
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(PageDbTest, MissingKeyReturnsNullopt) {
  PageDb db(config());
  EXPECT_FALSE(db.get("nope").has_value());
  EXPECT_FALSE(db.contains("nope"));
}

TEST_F(PageDbTest, PersistsAcrossReopenAfterCheckpoint) {
  {
    PageDb db(config());
    for (int i = 0; i < 200; ++i)
      db.put("key" + std::to_string(i), "value" + std::to_string(i));
    db.checkpoint();
  }
  PageDb db2(config());
  EXPECT_EQ(db2.size(), 200u);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(db2.get("key" + std::to_string(i)).value(),
              "value" + std::to_string(i));
}

TEST_F(PageDbTest, WalRecoversUncheckpointedWrites) {
  {
    PageDb db(config());
    db.put("durable", "yes");
    db.checkpoint();
    db.put("in-wal-only", "recovered");
    // Destructor checkpoints, so simulate a crash instead: copy the WAL
    // aside is not possible here — we verify the WAL path by writing and
    // NOT calling checkpoint, then replaying on a fresh instance below.
  }
  // The destructor checkpointed; the data must be there either way.
  PageDb db2(config());
  EXPECT_EQ(db2.get("in-wal-only").value(), "recovered");
}

TEST_F(PageDbTest, WalReplayAfterSimulatedCrash) {
  // Build a database, checkpoint, then append writes and "crash" by copying
  // the files mid-flight (before checkpoint truncates the WAL).
  {
    PageDb db(config());
    db.put("base", "committed");
    db.checkpoint();
    db.put("tail1", "wal-1");
    db.put("tail2", "wal-2");
    db.commit_wave();  // group commit: the tail is in the WAL, fsynced
    // Snapshot the crash state: data file lacks tail writes (they live in
    // the cache + WAL), WAL holds them.
    fs::copy_file(path_, path_ + ".crash", fs::copy_options::overwrite_existing);
    fs::copy_file(path_ + ".wal", path_ + ".crash.wal",
                  fs::copy_options::overwrite_existing);
  }
  // Restore the crash snapshot over the cleanly-closed files.
  fs::copy_file(path_ + ".crash", path_, fs::copy_options::overwrite_existing);
  fs::copy_file(path_ + ".crash.wal", path_ + ".wal",
                fs::copy_options::overwrite_existing);

  PageDb db2(config());
  EXPECT_EQ(db2.get("base").value(), "committed");
  EXPECT_EQ(db2.get("tail1").value(), "wal-1");
  EXPECT_EQ(db2.get("tail2").value(), "wal-2");
  EXPECT_GE(db2.page_stats().wal_replayed, 2u);
}

TEST_F(PageDbTest, BucketChainsGrowBeyondOnePage) {
  // One bucket forces every record into a single chain; values sized so the
  // chain must span multiple pages.
  PageDb db(config(/*cache_pages=*/8, /*buckets=*/1));
  std::string big(500, 'x');
  for (int i = 0; i < 50; ++i) db.put("chain" + std::to_string(i), big);
  EXPECT_EQ(db.size(), 50u);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(db.get("chain" + std::to_string(i)).value(), big);
}

TEST_F(PageDbTest, TinyCacheForcesEviction) {
  PageDb db(config(/*cache_pages=*/2, /*buckets=*/32));
  for (int i = 0; i < 300; ++i)
    db.put("evict" + std::to_string(i), "v" + std::to_string(i));
  for (int i = 0; i < 300; ++i)
    ASSERT_EQ(db.get("evict" + std::to_string(i)).value(),
              "v" + std::to_string(i));
  EXPECT_GT(db.page_stats().cache_misses, 0u);
  EXPECT_GT(db.page_stats().pages_flushed, 0u);
}

// Same determinism-barrier contract as MemStore, on the durable backend,
// whose raw for_each order depends on bucket hashing AND write history
// (resized updates relocate records). Key order must come out canonical.
TEST_F(PageDbTest, ForEachSortedVisitsKeysInAscendingOrder) {
  PageDb db(config(/*cache_pages=*/4, /*buckets=*/8));
  for (int i = 99; i >= 0; --i)
    db.put("key" + std::to_string(i), "first");
  // Resize half the values so their records relocate within the pages.
  for (int i = 0; i < 100; i += 2)
    db.put("key" + std::to_string(i), "resized-value-" + std::to_string(i));

  std::string prev;
  std::size_t count = 0;
  db.for_each_sorted([&](std::string_view k, std::string_view) {
    EXPECT_LT(prev, std::string(k)) << "visit order not strictly ascending";
    prev = std::string(k);
    ++count;
  });
  EXPECT_EQ(count, 100u);
}

TEST_F(PageDbTest, RecordLargerThanPageThrows) {
  PageDb db(config());
  std::string huge(PageDb::kPageSize, 'x');
  EXPECT_THROW(db.put("huge", huge), std::runtime_error);
}

TEST_F(PageDbTest, StatsCountKvOperations) {
  PageDb db(config());
  db.put("a", "1");
  (void)db.get("a");
  (void)db.get("b");
  auto st = db.stats();
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.reads, 2u);
  EXPECT_EQ(st.read_misses, 1u);
}

TEST_F(PageDbTest, CorruptHeaderRejected) {
  {
    PageDb db(config());
    db.put("x", "y");
  }
  // Stomp the magic number.
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const char garbage[8] = {0};
  std::fwrite(garbage, 1, 8, f);
  std::fclose(f);
  EXPECT_THROW(PageDb db2(config()), std::runtime_error);
}

TEST_F(PageDbTest, EmptyValueSupported) {
  PageDb db(config());
  db.put("empty", "");
  auto v = db.get("empty");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

// ---------------------------------------------------------------------------
// Wal: checksummed group-commit log.
// ---------------------------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "test.wal").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  WalConfig config(Env* env = nullptr) {
    WalConfig c;
    c.path = path_;
    c.env = env;
    return c;
  }

  static Bytes payload(int i, std::size_t len = 16) {
    Bytes b(len);
    for (std::size_t j = 0; j < len; ++j)
      b[j] = static_cast<std::uint8_t>(i + static_cast<int>(j));
    return b;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(WalTest, AppendCommitReplayRoundTrip) {
  {
    Wal w(config());
    w.replay([](std::uint64_t, BytesView) { FAIL() << "fresh log"; });
    for (int i = 0; i < 5; ++i) EXPECT_EQ(w.append(BytesView(payload(i))),
                                          static_cast<std::uint64_t>(i + 1));
    w.commit();
  }
  Wal w2(config());
  std::vector<std::pair<std::uint64_t, Bytes>> seen;
  w2.replay([&](std::uint64_t lsn, BytesView p) {
    seen.emplace_back(lsn, Bytes(p.begin(), p.end()));
  });
  ASSERT_EQ(seen.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(seen[i].first, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(seen[i].second, payload(i));
  }
  EXPECT_EQ(w2.next_lsn(), 6u);
  EXPECT_FALSE(w2.stats().tail_truncated);
}

TEST_F(WalTest, UncommittedAppendsAreInvisibleAfterReopen) {
  {
    Wal w(config());
    w.replay([](std::uint64_t, BytesView) {});
    w.append(BytesView(payload(1)));
    w.commit();
    w.append(BytesView(payload(2)));  // buffered, never committed: "crash"
  }
  Wal w2(config());
  std::size_t n = 0;
  w2.replay([&](std::uint64_t, BytesView) { ++n; });
  EXPECT_EQ(n, 1u);  // only the committed record survived
}

TEST_F(WalTest, TornTailTruncatedAtFirstBadRecord) {
  {
    Wal w(config());
    w.replay([](std::uint64_t, BytesView) {});
    for (int i = 0; i < 4; ++i) w.append(BytesView(payload(i, 64)));
    w.commit();
  }
  // Flip one payload byte inside the THIRD record: records 1-2 must replay,
  // 3-4 must be cut (a CRC mismatch ends usable history).
  const std::uint64_t header = 20;  // magic + len + lsn + crc
  const std::uint64_t record = header + 64;
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(2 * record + header + 10), SEEK_SET);
    std::fputc(0xEE, f);
    std::fclose(f);
  }
  Wal w2(config());
  std::size_t n = 0;
  w2.replay([&](std::uint64_t, BytesView) { ++n; });
  EXPECT_EQ(n, 2u);
  EXPECT_TRUE(w2.stats().tail_truncated);
  EXPECT_EQ(w2.stats().truncated_bytes, 2 * record);
  // The log is usable again: appends resume with a contiguous LSN.
  EXPECT_EQ(w2.append(BytesView(payload(9))), 3u);
  w2.commit();
}

TEST_F(WalTest, GroupCommitIsOneWriteOneSyncPerWave) {
  FaultyEnv env(Env::real());
  Wal w(config(&env));
  w.replay([](std::uint64_t, BytesView) {});
  auto before = env.counters();
  for (int i = 0; i < 32; ++i) w.append(BytesView(payload(i)));
  auto mid = env.counters();
  EXPECT_EQ(mid.writes, before.writes);  // append() only buffers
  w.commit();
  auto after = env.counters();
  EXPECT_EQ(after.writes, before.writes + 1);  // the whole wave, one write
  EXPECT_EQ(after.syncs, before.syncs + 1);    // and one fsync
  w.commit();  // nothing pending: no-op
  EXPECT_EQ(env.counters().writes, after.writes);
  EXPECT_EQ(env.counters().syncs, after.syncs);
}

TEST_F(WalTest, FsyncFailureIsFailStop) {
  StorageFaultPlan plan;
  plan.fail_sync_number = 1;
  FaultyEnv env(Env::real(), plan);
  Wal w(config(&env));
  w.replay([](std::uint64_t, BytesView) {});
  w.append(BytesView(payload(0)));
  try {
    w.commit();
    FAIL() << "commit must surface the fsync error";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.code(), StorageErrc::kSyncFailed);
    EXPECT_STREQ(storage_errc_name(e.code()), "storage_sync_failed");
  }
  EXPECT_TRUE(w.failed());
  // Fail-stop: every further operation refuses (no silent fsync retry).
  try {
    w.append(BytesView(payload(1)));
    FAIL() << "fail-stop WAL must refuse appends";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.code(), StorageErrc::kFailStop);
  }
}

// ---------------------------------------------------------------------------
// Seeded crash-point matrix: kill the "machine" after every write boundary
// of a group-committed workload, reboot, and recover. Committed waves must
// be complete; anything visible must be bytes the workload actually wrote.
// ---------------------------------------------------------------------------

TEST_F(PageDbTest, CrashPointMatrixPreservesCommittedWaves) {
  constexpr int kWaves = 3;
  constexpr int kPutsPerWave = 5;
  auto key = [](int w, int i) {
    return "w" + std::to_string(w) + "k" + std::to_string(i);
  };
  auto value = [](int w, int i) {
    return "v" + std::to_string(w) + "-" + std::to_string(i);
  };

  std::uint64_t boundaries_hit = 0;
  for (std::uint64_t crash_at = 1;; ++crash_at) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    StorageFaultPlan plan;
    plan.crash_after_writes = crash_at;
    plan.torn_write_percent = 50;  // the dying write persists only half
    FaultyEnv env(Env::real(), plan);

    int committed = 0;
    try {
      PageDbConfig c = config();
      c.env = &env;
      PageDb db(c);
      for (int w = 0; w < kWaves; ++w) {
        for (int i = 0; i < kPutsPerWave; ++i) db.put(key(w, i), value(w, i));
        db.commit_wave();
        committed = w + 1;
      }
      db.checkpoint();
    } catch (const StorageError&) {
      // power died mid-workload; fall through to recovery below
    }
    if (!env.crashed()) break;  // past the last write: matrix complete
    ++boundaries_hit;

    env.revive();
    PageDbConfig c2 = config();
    c2.env = &env;
    try {
      PageDb db2(c2);
      for (int w = 0; w < committed; ++w)
        for (int i = 0; i < kPutsPerWave; ++i)
          ASSERT_EQ(db2.get(key(w, i)).value_or("<lost>"), value(w, i))
              << "committed wave " << w << " lost at crash point " << crash_at;
      // Uncommitted waves may be partially present (a torn commit persists a
      // valid prefix) but anything visible must be exactly what was written
      // — torn garbage must never replay.
      for (int w = committed; w < kWaves; ++w)
        for (int i = 0; i < kPutsPerWave; ++i) {
          auto v = db2.get(key(w, i));
          if (v.has_value())
            ASSERT_EQ(*v, value(w, i))
                << "garbage visible at crash point " << crash_at;
        }
    } catch (const std::exception& e) {
      // The only acceptable recovery failure is a crash so early the data
      // file was never fully initialized — before any wave committed.
      ASSERT_EQ(committed, 0)
          << "recovery failed after committed data existed (crash point "
          << crash_at << "): " << e.what();
    }
  }
  // The workload spans init + several wave commits + checkpoint flushes;
  // the matrix must have exercised a healthy number of boundaries.
  EXPECT_GE(boundaries_hit, 5u);
}

}  // namespace
}  // namespace rdb::storage
