// Storage layer: in-memory store semantics and the PageDB embedded database
// (persistence, WAL recovery, page-cache eviction, bucket chaining).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "storage/mem_store.h"
#include "storage/page_db.h"

namespace rdb::storage {
namespace {

namespace fs = std::filesystem;

TEST(MemStore, PutGetUpdate) {
  MemStore s;
  EXPECT_FALSE(s.get("k").has_value());
  s.put("k", "v1");
  EXPECT_EQ(s.get("k").value(), "v1");
  s.put("k", "v2");
  EXPECT_EQ(s.get("k").value(), "v2");
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains("k"));
  EXPECT_FALSE(s.contains("other"));
}

TEST(MemStore, StatsTrackReadsWritesMisses) {
  MemStore s;
  s.put("a", "1");
  (void)s.get("a");
  (void)s.get("missing");
  auto st = s.stats();
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.reads, 2u);
  EXPECT_EQ(st.read_misses, 1u);
}

TEST(MemStore, ManyKeysAcrossStripes) {
  MemStore s;
  for (int i = 0; i < 1000; ++i)
    s.put("key" + std::to_string(i), "value" + std::to_string(i));
  EXPECT_EQ(s.size(), 1000u);
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(s.get("key" + std::to_string(i)).value(),
              "value" + std::to_string(i));
}

class PageDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pagedb_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "db.pages").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  PageDbConfig config(std::size_t cache_pages = 64,
                      std::uint32_t buckets = 64) {
    PageDbConfig c;
    c.path = path_;
    c.cache_pages = cache_pages;
    c.bucket_count = buckets;
    return c;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(PageDbTest, PutGetUpdateSameSize) {
  PageDb db(config());
  db.put("alpha", "11111");
  EXPECT_EQ(db.get("alpha").value(), "11111");
  db.put("alpha", "22222");  // same length: in-place overwrite
  EXPECT_EQ(db.get("alpha").value(), "22222");
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(PageDbTest, UpdateDifferentSizeAppendsNewVersion) {
  PageDb db(config());
  db.put("k", "short");
  db.put("k", "a much longer value than before");
  EXPECT_EQ(db.get("k").value(), "a much longer value than before");
  EXPECT_EQ(db.size(), 1u);
  db.put("k", "s");
  EXPECT_EQ(db.get("k").value(), "s");
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(PageDbTest, MissingKeyReturnsNullopt) {
  PageDb db(config());
  EXPECT_FALSE(db.get("nope").has_value());
  EXPECT_FALSE(db.contains("nope"));
}

TEST_F(PageDbTest, PersistsAcrossReopenAfterCheckpoint) {
  {
    PageDb db(config());
    for (int i = 0; i < 200; ++i)
      db.put("key" + std::to_string(i), "value" + std::to_string(i));
    db.checkpoint();
  }
  PageDb db2(config());
  EXPECT_EQ(db2.size(), 200u);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(db2.get("key" + std::to_string(i)).value(),
              "value" + std::to_string(i));
}

TEST_F(PageDbTest, WalRecoversUncheckpointedWrites) {
  {
    PageDb db(config());
    db.put("durable", "yes");
    db.checkpoint();
    db.put("in-wal-only", "recovered");
    // Destructor checkpoints, so simulate a crash instead: copy the WAL
    // aside is not possible here — we verify the WAL path by writing and
    // NOT calling checkpoint, then replaying on a fresh instance below.
  }
  // The destructor checkpointed; the data must be there either way.
  PageDb db2(config());
  EXPECT_EQ(db2.get("in-wal-only").value(), "recovered");
}

TEST_F(PageDbTest, WalReplayAfterSimulatedCrash) {
  // Build a database, checkpoint, then append writes and "crash" by copying
  // the files mid-flight (before checkpoint truncates the WAL).
  {
    PageDb db(config());
    db.put("base", "committed");
    db.checkpoint();
    db.put("tail1", "wal-1");
    db.put("tail2", "wal-2");
    // Snapshot the crash state: data file lacks tail writes (they live in
    // the cache + WAL), WAL holds them.
    fs::copy_file(path_, path_ + ".crash", fs::copy_options::overwrite_existing);
    fs::copy_file(path_ + ".wal", path_ + ".crash.wal",
                  fs::copy_options::overwrite_existing);
  }
  // Restore the crash snapshot over the cleanly-closed files.
  fs::copy_file(path_ + ".crash", path_, fs::copy_options::overwrite_existing);
  fs::copy_file(path_ + ".crash.wal", path_ + ".wal",
                fs::copy_options::overwrite_existing);

  PageDb db2(config());
  EXPECT_EQ(db2.get("base").value(), "committed");
  EXPECT_EQ(db2.get("tail1").value(), "wal-1");
  EXPECT_EQ(db2.get("tail2").value(), "wal-2");
  EXPECT_GE(db2.page_stats().wal_replayed, 2u);
}

TEST_F(PageDbTest, BucketChainsGrowBeyondOnePage) {
  // One bucket forces every record into a single chain; values sized so the
  // chain must span multiple pages.
  PageDb db(config(/*cache_pages=*/8, /*buckets=*/1));
  std::string big(500, 'x');
  for (int i = 0; i < 50; ++i) db.put("chain" + std::to_string(i), big);
  EXPECT_EQ(db.size(), 50u);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(db.get("chain" + std::to_string(i)).value(), big);
}

TEST_F(PageDbTest, TinyCacheForcesEviction) {
  PageDb db(config(/*cache_pages=*/2, /*buckets=*/32));
  for (int i = 0; i < 300; ++i)
    db.put("evict" + std::to_string(i), "v" + std::to_string(i));
  for (int i = 0; i < 300; ++i)
    ASSERT_EQ(db.get("evict" + std::to_string(i)).value(),
              "v" + std::to_string(i));
  EXPECT_GT(db.page_stats().cache_misses, 0u);
  EXPECT_GT(db.page_stats().pages_flushed, 0u);
}

TEST_F(PageDbTest, RecordLargerThanPageThrows) {
  PageDb db(config());
  std::string huge(PageDb::kPageSize, 'x');
  EXPECT_THROW(db.put("huge", huge), std::runtime_error);
}

TEST_F(PageDbTest, StatsCountKvOperations) {
  PageDb db(config());
  db.put("a", "1");
  (void)db.get("a");
  (void)db.get("b");
  auto st = db.stats();
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.reads, 2u);
  EXPECT_EQ(st.read_misses, 1u);
}

TEST_F(PageDbTest, CorruptHeaderRejected) {
  {
    PageDb db(config());
    db.put("x", "y");
  }
  // Stomp the magic number.
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const char garbage[8] = {0};
  std::fwrite(garbage, 1, 8, f);
  std::fclose(f);
  EXPECT_THROW(PageDb db2(config()), std::runtime_error);
}

TEST_F(PageDbTest, EmptyValueSupported) {
  PageDb db(config());
  db.put("empty", "");
  auto v = db.get("empty");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

}  // namespace
}  // namespace rdb::storage
