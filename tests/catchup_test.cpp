// Catch-up (state transfer within the retention window): a replica that
// missed batches fetches them from peers — engine semantics and the
// end-to-end threaded-runtime path.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "runtime/cluster.h"
#include "tests/engine_harness.h"
#include "workload/ycsb.h"

namespace rdb::protocol {
namespace {

using test::EngineHarness;
using test::make_batch;

Digest digest_of(const std::string& tag) { return crypto::sha256(tag); }

Message from_replica(ReplicaId r, Payload p) {
  Message m;
  m.from = Endpoint::replica(r);
  m.payload = std::move(p);
  return m;
}

TEST(Catchup, NoGapNoRequest) {
  EngineHarness<PbftEngine> h(4);
  h.perform(0, h.engine(0).make_preprepare(1, make_batch(1, 0, 1), 1,
                                           digest_of("a")));
  h.run_all();
  for (ReplicaId r = 0; r < 4; ++r)
    EXPECT_TRUE(h.engine(r).maybe_request_catchup().empty()) << r;
}

TEST(Catchup, GapTriggersRequest) {
  // Replica 3 misses batch 1 entirely but observes batch 2 commit.
  EngineHarness<PbftEngine> h(4);
  h.crash(3);
  h.perform(0, h.engine(0).make_preprepare(1, make_batch(1, 0, 1), 1,
                                           digest_of("missed")));
  h.run_all();

  // Batch 2 is delivered to everyone (3 "recovers" its connectivity).
  EngineHarness<PbftEngine> h2(4);  // fresh harness: drive engine 3 by hand
  auto& lagging = h2.engine(3);
  // Feed commits for seq 2 from a quorum so the committed frontier moves.
  PrePrepare pp2;
  pp2.view = 0;
  pp2.seq = 2;
  pp2.batch_digest = digest_of("second");
  pp2.txns = make_batch(1, 10, 1);
  (void)lagging.on_preprepare(from_replica(0, pp2));
  Prepare pr2;
  pr2.view = 0;
  pr2.seq = 2;
  pr2.batch_digest = digest_of("second");
  (void)lagging.on_prepare(from_replica(1, pr2));
  (void)lagging.on_prepare(from_replica(2, pr2));
  Commit c2;
  c2.view = 0;
  c2.seq = 2;
  c2.batch_digest = digest_of("second");
  (void)lagging.on_commit(from_replica(0, c2));
  (void)lagging.on_commit(from_replica(1, c2));
  auto acts = lagging.on_commit(from_replica(2, c2));
  // Batch 2 committed but seq 1 is missing: nothing executes yet.
  EXPECT_TRUE(acts.empty());
  EXPECT_EQ(lagging.last_executed(), 0u);

  auto req_acts = lagging.maybe_request_catchup();
  ASSERT_FALSE(req_acts.empty());
  auto* bc = std::get_if<BroadcastAction>(&req_acts[0]);
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->msg.type(), MsgType::kBatchRequest);
  const auto& req = std::get<BatchRequest>(bc->msg.payload);
  EXPECT_EQ(req.begin, 1u);
  EXPECT_GE(req.end, 1u);
  EXPECT_EQ(lagging.metrics().catchup_requests, 1u);

  // Re-polling immediately must not spam a duplicate request.
  EXPECT_TRUE(lagging.maybe_request_catchup().empty());
}

TEST(Catchup, PeerServesExecutedBatches) {
  EngineHarness<PbftEngine> h(4);
  for (SeqNum s = 1; s <= 3; ++s)
    h.perform(0, h.engine(0).make_preprepare(
                     s, make_batch(1, s * 10, 2), (s - 1) * 2 + 1,
                     digest_of("b" + std::to_string(s))));
  h.run_all();

  BatchRequest req;
  req.begin = 1;
  req.end = 3;
  auto acts = h.engine(1).on_batch_request(from_replica(3, req));
  ASSERT_EQ(acts.size(), 1u);
  auto* send = std::get_if<SendAction>(&acts[0]);
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->to, Endpoint::replica(3));
  const auto& resp = std::get<BatchResponse>(send->msg.payload);
  ASSERT_EQ(resp.entries.size(), 3u);
  EXPECT_EQ(resp.entries[0].digest, digest_of("b1"));
  EXPECT_EQ(resp.entries[2].seq, 3u);
}

TEST(Catchup, HostileBatchRequestRejected) {
  EngineHarness<PbftEngine> h(4);
  BatchRequest req;
  req.begin = 1;
  req.end = 1'000'000;  // absurd range
  EXPECT_TRUE(h.engine(1).on_batch_request(from_replica(3, req)).empty());
  BatchRequest inverted;
  inverted.begin = 5;
  inverted.end = 2;
  EXPECT_TRUE(
      h.engine(1).on_batch_request(from_replica(3, inverted)).empty());
}

TEST(Catchup, AdoptionRequiresFPlusOneMatchingPeers) {
  EngineHarness<PbftEngine> h(4);  // f = 1: need 2 matching vouchers
  auto& lagging = h.engine(3);

  BatchResponse resp;
  BatchResponse::Entry e;
  e.seq = 1;
  e.view = 0;
  e.digest = digest_of("real");
  e.txn_begin = 1;
  e.txns = make_batch(1, 0, 1);
  resp.entries = {e};

  // One voucher: not adopted.
  EXPECT_TRUE(lagging.on_batch_response(from_replica(0, resp)).empty());
  EXPECT_EQ(lagging.last_executed(), 0u);

  // A SECOND peer vouching for a DIFFERENT digest must not help.
  BatchResponse forged = resp;
  forged.entries[0].digest = digest_of("forged");
  EXPECT_TRUE(lagging.on_batch_response(from_replica(1, forged)).empty());
  EXPECT_EQ(lagging.last_executed(), 0u);

  // Second matching voucher: adopted and executed.
  auto acts = lagging.on_batch_response(from_replica(2, resp));
  bool executed = false;
  for (auto& a : acts)
    if (auto* ex = std::get_if<ExecuteAction>(&a)) {
      executed = true;
      EXPECT_EQ(ex->seq, 1u);
      EXPECT_EQ(ex->batch_digest, digest_of("real"));
    }
  EXPECT_TRUE(executed);
  EXPECT_EQ(lagging.last_executed(), 1u);
  EXPECT_EQ(lagging.metrics().catchup_batches_adopted, 1u);
}

TEST(Catchup, DuplicateVouchersFromSamePeerCountOnce) {
  EngineHarness<PbftEngine> h(4);
  auto& lagging = h.engine(3);
  BatchResponse resp;
  BatchResponse::Entry e;
  e.seq = 1;
  e.digest = digest_of("x");
  e.txn_begin = 1;
  e.txns = make_batch(1, 0, 1);
  resp.entries = {e};
  EXPECT_TRUE(lagging.on_batch_response(from_replica(0, resp)).empty());
  EXPECT_TRUE(lagging.on_batch_response(from_replica(0, resp)).empty());
  EXPECT_EQ(lagging.last_executed(), 0u);
}

TEST(Catchup, AlreadyExecutedEntriesIgnored) {
  EngineHarness<PbftEngine> h(4);
  h.perform(0, h.engine(0).make_preprepare(1, make_batch(1, 0, 1), 1,
                                           digest_of("done")));
  h.run_all();
  ASSERT_EQ(h.engine(2).last_executed(), 1u);

  BatchResponse resp;
  BatchResponse::Entry e;
  e.seq = 1;
  e.digest = digest_of("conflicting");  // would conflict if adopted
  e.txns = make_batch(9, 0, 1);
  resp.entries = {e};
  EXPECT_TRUE(h.engine(2).on_batch_response(from_replica(0, resp)).empty());
  EXPECT_TRUE(h.engine(2).on_batch_response(from_replica(1, resp)).empty());
  EXPECT_EQ(h.executed(2).size(), 1u);
  EXPECT_EQ(h.executed(2)[0].batch_digest, digest_of("done"));
}

}  // namespace
}  // namespace rdb::protocol

// ---------------------------------------------------------------------------
// End-to-end: a partitioned replica heals and catches up through the
// threaded runtime's periodic poll.
// ---------------------------------------------------------------------------

namespace rdb::runtime {
namespace {

TEST(CatchupRuntime, HealedReplicaCatchesUp) {
  auto wl = std::make_shared<workload::YcsbWorkload>(
      workload::YcsbConfig{.record_count = 1'000, .ops_per_txn = 2});
  ClusterConfig cfg;
  cfg.replicas = 4;
  cfg.batch_size = 5;
  cfg.catchup_poll_ns = 100'000'000;  // poll every 100 ms
  cfg.execute = [wl](const protocol::Transaction& t, storage::KvStore& s) {
    return wl->execute(t, s);
  };
  LocalCluster cluster(cfg);
  cluster.start();

  // Partition backup 3 and commit several batches without it.
  cluster.transport().set_partitioned(Endpoint::replica(3), true);
  auto client = cluster.make_client(1);
  Rng rng(11);
  for (int round = 0; round < 4; ++round) {
    std::vector<protocol::Transaction> burst;
    for (int i = 0; i < 5; ++i) {
      auto t = wl->make_transaction(rng, 1, 0);
      burst.push_back(client->make_transaction(t.payload, t.ops));
    }
    ASSERT_TRUE(client->submit_and_wait(std::move(burst)).has_value());
  }
  ASSERT_TRUE(
      cluster.wait_for_execution(4, std::chrono::seconds(5), /*skip=*/{3}));
  EXPECT_EQ(cluster.replica(3).last_executed(), 0u);

  // Heal. The periodic poll detects the gap (new consensus traffic reveals
  // the committed frontier) and fetches the missed batches.
  cluster.transport().set_partitioned(Endpoint::replica(3), false);
  {
    std::vector<protocol::Transaction> burst;
    auto t = wl->make_transaction(rng, 1, 0);
    burst.push_back(client->make_transaction(t.payload, t.ops));
    ASSERT_TRUE(client->submit_and_wait(std::move(burst)).has_value());
  }

  bool caught_up = cluster.wait_for_execution(5, std::chrono::seconds(10));
  EXPECT_TRUE(caught_up);
  if (caught_up) {
    // Same chain commitment and store size everywhere, including replica 3.
    auto acc0 = cluster.replica(0).chain().accumulator();
    EXPECT_EQ(cluster.replica(3).chain().accumulator(), acc0);
    EXPECT_EQ(cluster.replica(3).store().size(),
              cluster.replica(0).store().size());
  }
  cluster.stop();
}

}  // namespace
}  // namespace rdb::runtime
