// YCSB workload: Zipfian generator statistics, transaction encode/decode,
// execution against a store.
#include <gtest/gtest.h>

#include <map>

#include "storage/mem_store.h"
#include "workload/ycsb.h"

namespace rdb::workload {
namespace {

TEST(Zipfian, UniformWhenThetaZero) {
  ZipfianGenerator gen(10, 0.0);
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10'000; ++i) ++counts[gen.next(rng)];
  for (const auto& [k, c] : counts) {
    EXPECT_LT(k, 10u);
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(Zipfian, SkewConcentratesOnHotKeys) {
  ZipfianGenerator gen(10'000, 0.9);
  Rng rng(2);
  int hot = 0;  // hits within the 100 hottest keys (1% of the space)
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i)
    if (gen.next(rng) < 100) ++hot;
  // With theta=0.9, far more than 1% of accesses land on the top 1%.
  EXPECT_GT(hot, kDraws / 10);
}

TEST(Zipfian, StaysInRange) {
  ZipfianGenerator gen(600'000, 0.9);
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(gen.next(rng), 600'000u);
}

TEST(Ycsb, KeyNamesAreStable) {
  EXPECT_EQ(YcsbWorkload::key_name(0), "user0000000000");
  EXPECT_EQ(YcsbWorkload::key_name(599'999), "user0000599999");
}

TEST(Ycsb, TransactionEncodeDecodeRoundTrip) {
  YcsbConfig cfg;
  cfg.record_count = 1000;
  cfg.ops_per_txn = 5;
  cfg.value_bytes = 16;
  YcsbWorkload wl(cfg);
  Rng rng(7);
  auto txn = wl.make_transaction(rng, /*client=*/3, /*req=*/42);
  EXPECT_EQ(txn.client, 3u);
  EXPECT_EQ(txn.req_id, 42u);
  EXPECT_EQ(txn.ops, 5u);
  auto ops = YcsbWorkload::decode(txn);
  ASSERT_EQ(ops.size(), 5u);
  for (const auto& op : ops) {
    EXPECT_LT(op.key_index, 1000u);
    EXPECT_EQ(op.value.size(), 16u);
  }
}

TEST(Ycsb, ExecuteAppliesAllWrites) {
  YcsbConfig cfg;
  cfg.record_count = 100;
  cfg.ops_per_txn = 10;
  cfg.value_bytes = 4;
  YcsbWorkload wl(cfg);
  storage::MemStore store;
  Rng rng(8);
  auto txn = wl.make_transaction(rng, 1, 1);
  EXPECT_EQ(wl.execute(txn, store), 10u);
  auto ops = YcsbWorkload::decode(txn);
  for (const auto& op : ops) {
    auto v = store.get(YcsbWorkload::key_name(op.key_index));
    ASSERT_TRUE(v.has_value());
  }
}

TEST(Ycsb, ExecuteIsDeterministic) {
  // Two replicas applying the same transaction end with the same state —
  // the property consensus-based replication depends on.
  YcsbConfig cfg;
  cfg.record_count = 50;
  cfg.ops_per_txn = 3;
  YcsbWorkload wl(cfg);
  storage::MemStore a, b;
  Rng rng(9);
  auto txn = wl.make_transaction(rng, 1, 1);
  wl.execute(txn, a);
  wl.execute(txn, b);
  auto ops = YcsbWorkload::decode(txn);
  for (const auto& op : ops) {
    EXPECT_EQ(a.get(YcsbWorkload::key_name(op.key_index)),
              b.get(YcsbWorkload::key_name(op.key_index)));
  }
}

TEST(Ycsb, PopulateLoadsActiveSet) {
  YcsbConfig cfg;
  cfg.record_count = 500;
  YcsbWorkload wl(cfg);
  storage::MemStore store;
  wl.populate(store);
  EXPECT_EQ(store.size(), 500u);
  EXPECT_TRUE(store.contains(YcsbWorkload::key_name(0)));
  EXPECT_TRUE(store.contains(YcsbWorkload::key_name(499)));
}

TEST(Ycsb, ReadWriteMixRoughlyMatchesFraction) {
  YcsbConfig cfg;
  cfg.record_count = 100;
  cfg.ops_per_txn = 10;
  cfg.read_fraction = 0.5;
  YcsbWorkload wl(cfg);
  Rng rng(12);
  int reads = 0, total = 0;
  for (int t = 0; t < 200; ++t) {
    auto txn = wl.make_transaction(rng, 1, t);
    for (const auto& op : YcsbWorkload::decode(txn)) {
      ++total;
      if (op.is_read) ++reads;
    }
  }
  double fraction = static_cast<double>(reads) / total;
  EXPECT_NEAR(fraction, 0.5, 0.08);
}

TEST(Ycsb, ReadResultsAreDeterministicAcrossReplicas) {
  // Two replicas with identical state must produce identical read
  // checksums — the property that lets f+1 matching responses certify reads.
  YcsbConfig cfg;
  cfg.record_count = 50;
  cfg.ops_per_txn = 6;
  cfg.read_fraction = 0.5;
  YcsbWorkload wl(cfg);
  storage::MemStore a, b;
  wl.populate(a);
  wl.populate(b);
  Rng rng(13);
  for (int t = 0; t < 20; ++t) {
    auto txn = wl.make_transaction(rng, 1, t);
    EXPECT_EQ(wl.execute(txn, a), wl.execute(txn, b)) << "txn " << t;
  }
}

TEST(Ycsb, ReadChecksumReflectsWrittenState) {
  YcsbConfig cfg;
  cfg.record_count = 10;
  cfg.ops_per_txn = 1;
  YcsbWorkload wl(cfg);
  storage::MemStore s1, s2;
  s1.put(YcsbWorkload::key_name(3), "AAAA");
  s2.put(YcsbWorkload::key_name(3), "BBBB");

  // Hand-build a read of key 3.
  protocol::Transaction txn;
  Writer w;
  w.u32(1);
  w.u64(3);
  w.u8(1);  // read
  w.bytes(BytesView());
  txn.payload = w.take();

  EXPECT_NE(wl.execute(txn, s1), wl.execute(txn, s2));
  EXPECT_EQ(wl.execute(txn, s1), wl.execute(txn, s1));  // stable
}

TEST(Ycsb, WriteOnlyResultIsOpsCount) {
  YcsbConfig cfg;
  cfg.record_count = 100;
  cfg.ops_per_txn = 7;
  YcsbWorkload wl(cfg);
  storage::MemStore store;
  Rng rng(14);
  auto txn = wl.make_transaction(rng, 1, 1);
  EXPECT_EQ(wl.execute(txn, store), 7u);
}

TEST(Ycsb, MalformedPayloadDecodesSafely) {
  protocol::Transaction txn;
  txn.payload = {0xFF, 0xFF, 0xFF, 0xFF};  // claims 4G operations
  auto ops = YcsbWorkload::decode(txn);
  EXPECT_TRUE(ops.empty());
}

}  // namespace
}  // namespace rdb::workload
