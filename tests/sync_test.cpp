// Tests for the annotated synchronization primitives (src/common/sync.h):
// Mutex/SharedMutex semantics, MutexLock relock, CondVar wakeups (plain,
// deadline, and stop_token flavours), and the lock-rank bookkeeping that
// feeds the debug deadlock detector. The VIOLATION path (abort on rank
// inversion) lives in sync_rank_death_test.cpp, a separate binary compiled
// with -DRDB_LOCK_RANK_FORCE so it also runs in release configurations.
#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace rdb {
namespace {

using namespace std::chrono_literals;

TEST(Mutex, ExcludesConcurrentCriticalSections) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Mutex, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    MutexLock lock(mu);
    locked.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  while (!locked.load()) std::this_thread::sleep_for(1ms);
  EXPECT_FALSE(mu.try_lock());
  release.store(true);
  holder.join();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Mutex, CarriesRankAndName) {
  Mutex mu(LockRank::kStorage, "test.storage");
  EXPECT_EQ(mu.rank(), LockRank::kStorage);
  EXPECT_STREQ(mu.name(), "test.storage");
  Mutex unranked;
  EXPECT_EQ(unranked.rank(), LockRank::kUnranked);
}

TEST(MutexLock, UnlockRelockRoundTrip) {
  Mutex mu;
  MutexLock lock(mu);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  // While dropped, another thread can take and release the mutex.
  std::thread other([&] { MutexLock inner(mu); });
  other.join();
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(MutexLock, DestructorReleasesOnlyWhenHeld) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.unlock();
  }  // dtor must not double-unlock
  {
    MutexLock lock(mu);
  }  // dtor releases
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SharedMutex, ManyReadersOneWriter) {
  SharedMutex mu(LockRank::kUnranked, "test.shared");
  int value = 0;
  std::atomic<int> readers_in{0};
  std::atomic<int> max_readers{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::sleep_for(1ms);
      for (int i = 0; i < 200; ++i) {
        ReaderLock lock(mu);
        int in = readers_in.fetch_add(1) + 1;
        int prev = max_readers.load();
        while (in > prev && !max_readers.compare_exchange_weak(prev, in)) {
        }
        EXPECT_GE(value, 0);
        readers_in.fetch_sub(1);
      }
    });
  }
  threads.emplace_back([&] {
    while (!go.load()) std::this_thread::sleep_for(1ms);
    for (int i = 0; i < 100; ++i) {
      WriterLock lock(mu);
      EXPECT_EQ(readers_in.load(), 0);  // writers exclude readers
      ++value;
    }
  });
  go.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(value, 100);
}

TEST(CondVar, NotifyWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.notify_all();
  });
  MutexLock lock(mu);
  while (!ready) cv.wait(mu);
  EXPECT_TRUE(ready);
  lock.unlock();
  producer.join();
}

TEST(CondVar, WaitUntilDeadlineExpires) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + 30ms;
  // Nobody notifies: the explicit loop runs until the deadline passes.
  bool woke_early = false;
  while (std::chrono::steady_clock::now() < deadline && !woke_early) {
    cv.wait_until(mu, deadline);
  }
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(CondVar, StopTokenWaitReturnsFalseOnStop) {
  Mutex mu;
  CondVar cv;
  std::stop_source source;
  std::atomic<bool> returned{false};
  std::atomic<bool> result{true};
  std::thread waiter([&] {
    MutexLock lock(mu);
    // No notify ever comes; only the stop request can end this wait.
    bool r = cv.wait(mu, source.get_token());
    result.store(r);
    returned.store(true);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(returned.load());
  source.request_stop();
  cv.notify_all();  // CondVar's stop waits also wake via the cv itself
  waiter.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(result.load());  // false == stop requested
}

TEST(CondVar, StopTokenWaitForTimesOutWithoutStop) {
  Mutex mu;
  CondVar cv;
  std::stop_source source;
  MutexLock lock(mu);
  bool r = cv.wait_for(mu, source.get_token(), 10ms);
  EXPECT_TRUE(r);  // true == no stop requested (plain timeout)
}

// --- lock-rank bookkeeping (detector internals, non-fatal paths) -----------

TEST(LockRank, HeldCountTracksAcquisitions) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "detector compiled out";
  EXPECT_EQ(sync_internal::held_lock_count(), 0);
  Mutex outer(LockRank::kReplicaEngine, "test.outer");
  Mutex inner(LockRank::kQueue, "test.inner");
  {
    MutexLock l1(outer);
    EXPECT_EQ(sync_internal::held_lock_count(), 1);
    {
      MutexLock l2(inner);  // 720 -> 200: strictly decreasing, legal
      EXPECT_EQ(sync_internal::held_lock_count(), 2);
    }
    EXPECT_EQ(sync_internal::held_lock_count(), 1);
  }
  EXPECT_EQ(sync_internal::held_lock_count(), 0);
}

TEST(LockRank, OutOfOrderReleaseIsTracked) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "detector compiled out";
  Mutex a(LockRank::kReplicaEngine, "test.a");
  Mutex b(LockRank::kQueue, "test.b");
  a.lock();
  b.lock();
  a.unlock();  // release the OUTER lock first
  EXPECT_EQ(sync_internal::held_lock_count(), 1);
  b.unlock();
  EXPECT_EQ(sync_internal::held_lock_count(), 0);
}

TEST(LockRank, UnrankedLocksAreExemptFromOrdering) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "detector compiled out";
  Mutex ranked(LockRank::kQueue, "test.ranked");
  Mutex unranked;  // kUnranked
  // Acquiring a ranked lock under an unranked one (and vice versa) is legal
  // in either order: kUnranked opts out of the ordering.
  {
    MutexLock l1(unranked);
    MutexLock l2(ranked);
  }
  {
    MutexLock l1(ranked);
    MutexLock l2(unranked);
  }
  EXPECT_EQ(sync_internal::held_lock_count(), 0);
}

TEST(LockRank, SharedHoldsParticipate) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "detector compiled out";
  SharedMutex outer(LockRank::kReplicaEngine, "test.shared_outer");
  Mutex inner(LockRank::kQueue, "test.inner");
  {
    ReaderLock r(outer);
    EXPECT_EQ(sync_internal::held_lock_count(), 1);
    MutexLock l(inner);
    EXPECT_EQ(sync_internal::held_lock_count(), 2);
  }
  EXPECT_EQ(sync_internal::held_lock_count(), 0);
}

TEST(LockRank, TryLockJoinsHeldStack) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "detector compiled out";
  Mutex mu(LockRank::kQueue, "test.try");
  ASSERT_TRUE(mu.try_lock());
  EXPECT_EQ(sync_internal::held_lock_count(), 1);
  mu.unlock();
  EXPECT_EQ(sync_internal::held_lock_count(), 0);
}

TEST(LockRank, DetectorCompiledOutInRelease) {
  // The tier-1 build is RelWithDebInfo (NDEBUG): checks must be OFF unless
  // forced. A Debug build (or RDB_LOCK_RANK_FORCE) flips this on.
#if defined(RDB_LOCK_RANK_FORCE) || !defined(NDEBUG)
  EXPECT_TRUE(lock_rank_checks_enabled());
#else
  EXPECT_FALSE(lock_rank_checks_enabled());
#endif
}

}  // namespace
}  // namespace rdb
