// TCP transport: framing, peer addressing, failure handling, and a full
// 4-replica PBFT cluster over real loopback sockets.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/client.h"
#include "runtime/replica.h"
#include "runtime/tcp_transport.h"
#include "storage/mem_store.h"
#include "workload/ycsb.h"

namespace rdb::runtime {
namespace {

protocol::Message prepare_msg(ReplicaId from, SeqNum seq) {
  protocol::Prepare p;
  p.view = 0;
  p.seq = seq;
  protocol::Message m;
  m.from = Endpoint::replica(from);
  m.payload = p;
  m.signature = {1, 2, 3};
  return m;
}

TEST(TcpTransport, DeliversFramesBetweenTwoEndpoints) {
  TcpTransport a(Endpoint::replica(0), 0);
  TcpTransport b(Endpoint::replica(1), 0);
  a.add_peer(Endpoint::replica(1), {"127.0.0.1", b.port()});
  b.add_peer(Endpoint::replica(0), {"127.0.0.1", a.port()});

  auto inbox_b = std::make_shared<Transport::Inbox>();
  b.register_endpoint(Endpoint::replica(1), inbox_b);

  a.send(Endpoint::replica(1), prepare_msg(0, 7));
  auto wire = inbox_b->pop_for(std::chrono::seconds(5));
  ASSERT_TRUE(wire.has_value());
  auto parsed = protocol::Message::parse(BytesView(*wire));
  ASSERT_TRUE(parsed.has_value());
  // Tests may open tainted payloads (check_taint allows tests/).
  const auto& got = parsed->unsafe_get();
  EXPECT_EQ(got.type(), protocol::MsgType::kPrepare);
  EXPECT_EQ(std::get<protocol::Prepare>(got.payload).seq, 7u);
  // The sender thread bumps the counter after the write completes; the
  // receiver can pop the frame first, so wait rather than assert instantly.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (a.messages_sent() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(a.messages_sent(), 1u);
}

TEST(TcpTransport, ManyMessagesArriveInOrderPerConnection) {
  TcpTransport a(Endpoint::replica(0), 0);
  TcpTransport b(Endpoint::replica(1), 0);
  a.add_peer(Endpoint::replica(1), {"127.0.0.1", b.port()});
  auto inbox = std::make_shared<Transport::Inbox>();
  b.register_endpoint(Endpoint::replica(1), inbox);

  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i)
    a.send(Endpoint::replica(1), prepare_msg(0, static_cast<SeqNum>(i + 1)));

  for (int i = 0; i < kCount; ++i) {
    auto wire = inbox->pop_for(std::chrono::seconds(5));
    ASSERT_TRUE(wire.has_value()) << "message " << i;
    auto parsed = protocol::Message::parse(BytesView(*wire));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(std::get<protocol::Prepare>(parsed->unsafe_get().payload).seq,
              static_cast<SeqNum>(i + 1));
  }
}

TEST(TcpTransport, UndeclaredPeerIsDroppedNotFatal) {
  TcpTransport a(Endpoint::replica(0), 0);
  a.send(Endpoint::replica(9), prepare_msg(0, 1));
  EXPECT_EQ(a.messages_sent(), 0u);
  EXPECT_EQ(a.send_failures(), 1u);
  EXPECT_EQ(a.undeclared_drops(), 1u);
}

TEST(TcpTransport, UnreachablePeerIsRetriedNotFatal) {
  TcpTransport a(Endpoint::replica(0), 0);
  // Port 1 on localhost: connection refused. The sender thread retries with
  // backoff, so the failure surfaces asynchronously.
  a.add_peer(Endpoint::replica(1), {"127.0.0.1", 1});
  a.send(Endpoint::replica(1), prepare_msg(0, 1));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (a.send_failures() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(a.send_failures(), 1u);
  EXPECT_EQ(a.messages_sent(), 0u);
}

TEST(TcpTransport, OversizeSendRejectedAtSource) {
  TcpTransportConfig cfg;
  cfg.max_frame = 64;  // tiny: any real message overflows
  TcpTransport a(Endpoint::replica(0), 0, cfg);
  TcpTransport b(Endpoint::replica(1), 0);
  a.add_peer(Endpoint::replica(1), {"127.0.0.1", b.port()});
  auto inbox = std::make_shared<Transport::Inbox>();
  b.register_endpoint(Endpoint::replica(1), inbox);

  auto msg = prepare_msg(0, 1);
  msg.signature.assign(256, 0xAB);  // inflate past max_frame
  a.send(Endpoint::replica(1), msg);
  EXPECT_EQ(a.oversize_rejected(), 1u);
  EXPECT_EQ(a.send_failures(), 1u);
  EXPECT_EQ(a.messages_sent(), 0u);
  // Nothing must reach the peer.
  EXPECT_FALSE(inbox->pop_for(std::chrono::milliseconds(100)).has_value());
}

TEST(TcpTransport, ReconnectsAndRedeliversAfterPeerRestart) {
  TcpTransport a(Endpoint::replica(0), 0);
  auto b = std::make_unique<TcpTransport>(Endpoint::replica(1), 0);
  std::uint16_t b_port = b->port();
  a.add_peer(Endpoint::replica(1), {"127.0.0.1", b_port});

  auto inbox1 = std::make_shared<Transport::Inbox>();
  b->register_endpoint(Endpoint::replica(1), inbox1);
  a.send(Endpoint::replica(1), prepare_msg(0, 1));
  ASSERT_TRUE(inbox1->pop_for(std::chrono::seconds(5)).has_value());

  // Kill the peer. Messages sent while it is down must be queued, not lost.
  b->stop();
  b.reset();
  a.send(Endpoint::replica(1), prepare_msg(0, 2));
  a.send(Endpoint::replica(1), prepare_msg(0, 3));

  // Give the sender a beat to observe the broken connection and start its
  // backoff loop, then restart the peer on the SAME port.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::unique_ptr<TcpTransport> b2;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    try {
      b2 = std::make_unique<TcpTransport>(Endpoint::replica(1), b_port);
      break;
    } catch (const std::runtime_error&) {
      if (std::chrono::steady_clock::now() > deadline) FAIL() << "rebind";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  auto inbox2 = std::make_shared<Transport::Inbox>();
  b2->register_endpoint(Endpoint::replica(1), inbox2);

  // Both queued frames arrive, in order, over the healed connection.
  for (SeqNum want : {SeqNum{2}, SeqNum{3}}) {
    auto wire = inbox2->pop_for(std::chrono::seconds(10));
    ASSERT_TRUE(wire.has_value()) << "seq " << want;
    auto parsed = protocol::Message::parse(BytesView(*wire));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(std::get<protocol::Prepare>(parsed->unsafe_get().payload).seq,
              want);
  }
  EXPECT_GE(a.reconnects(), 1u);
  b2->stop();
  a.stop();
}

TEST(TcpTransport, RegisterForeignEndpointRejected) {
  TcpTransport a(Endpoint::replica(0), 0);
  auto inbox = std::make_shared<Transport::Inbox>();
  EXPECT_THROW(a.register_endpoint(Endpoint::replica(1), inbox),
               std::runtime_error);
}

TEST(TcpTransport, FullPbftClusterOverLoopback) {
  // Four replicas + one client, each with its own TCP transport — a real
  // multi-process deployment topology collapsed into one test process.
  constexpr std::uint32_t kN = 4;
  auto wl = std::make_shared<workload::YcsbWorkload>(
      workload::YcsbConfig{.record_count = 500, .ops_per_txn = 2});
  crypto::KeyRegistry registry(99);

  std::vector<std::unique_ptr<TcpTransport>> transports;
  for (ReplicaId r = 0; r < kN; ++r)
    transports.push_back(std::make_unique<TcpTransport>(Endpoint::replica(r),
                                                        0));
  auto client_transport =
      std::make_unique<TcpTransport>(Endpoint::client(1), 0);

  // Full mesh peer declarations.
  for (ReplicaId r = 0; r < kN; ++r) {
    for (ReplicaId p = 0; p < kN; ++p)
      if (p != r)
        transports[r]->add_peer(Endpoint::replica(p),
                                {"127.0.0.1", transports[p]->port()});
    transports[r]->add_peer(Endpoint::client(1),
                            {"127.0.0.1", client_transport->port()});
    client_transport->add_peer(Endpoint::replica(r),
                               {"127.0.0.1", transports[r]->port()});
  }

  std::vector<std::unique_ptr<Replica>> replicas;
  for (ReplicaId r = 0; r < kN; ++r) {
    ReplicaConfig rc;
    rc.n = kN;
    rc.id = r;
    rc.batch_size = 5;
    replicas.push_back(std::make_unique<Replica>(
        rc, *transports[r], registry, std::make_unique<storage::MemStore>(),
        [wl](const protocol::Transaction& t, storage::KvStore& s) {
          return wl->execute(t, s);
        }));
  }
  for (auto& r : replicas) r->start();

  ClientConfig cc;
  cc.id = 1;
  cc.n = kN;
  Client client(cc, *client_transport, registry);

  Rng rng(5);
  std::vector<protocol::Transaction> burst;
  for (int i = 0; i < 5; ++i) {
    auto t = wl->make_transaction(rng, 1, 0);
    burst.push_back(client.make_transaction(t.payload, t.ops));
  }
  auto results = client.submit_and_wait(std::move(burst));
  ASSERT_TRUE(results.has_value());
  EXPECT_EQ(results->size(), 5u);

  // All replicas converge over real sockets.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool all = false;
  while (!all && std::chrono::steady_clock::now() < deadline) {
    all = true;
    for (auto& r : replicas)
      if (r->last_executed() < 1) all = false;
    if (!all) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(all);
  auto acc0 = replicas[0]->chain().accumulator();
  for (ReplicaId r = 1; r < kN; ++r)
    EXPECT_EQ(replicas[r]->chain().accumulator(), acc0) << "replica " << r;

  for (auto& r : replicas) r->stop();
  for (auto& t : transports) t->stop();
  client_transport->stop();
}

}  // namespace
}  // namespace rdb::runtime
