// Simulated fabric: end-to-end consensus runs in virtual time, replica
// consistency, failure behaviour, and directional sanity of the effects the
// paper measures (batching, storage, crypto, cores).
//
// These runs use small client counts and short windows so the whole file
// executes in a few seconds of host time.
#include <gtest/gtest.h>

#include "simfab/fabric.h"

namespace rdb::simfab {
namespace {

FabricConfig small_config() {
  FabricConfig cfg;
  cfg.replicas = 4;
  cfg.clients = 400;
  cfg.client_machines = 2;
  cfg.batch_size = 20;
  cfg.warmup_ns = 200'000'000;
  cfg.measure_ns = 400'000'000;
  return cfg;
}

TEST(SimFabric, PbftCommitsTransactions) {
  Fabric fab(small_config());
  auto res = fab.run();
  EXPECT_GT(res.metrics.committed_txns, 1000u);
  EXPECT_GT(res.metrics.throughput_tps, 0.0);
  EXPECT_GT(res.metrics.latency_avg_ms, 0.0);
  EXPECT_EQ(res.view_changes, 0u);
  EXPECT_GT(res.blocks_committed, 10u);
}

TEST(SimFabric, AllReplicasHoldIdenticalChains) {
  FabricConfig cfg = small_config();
  Fabric fab(cfg);
  (void)fab.run();
  const auto& chain0 = fab.replica(0).chain();
  for (ReplicaId r = 1; r < cfg.replicas; ++r) {
    const auto& chain = fab.replica(r).chain();
    // Replicas may be a block or two apart at the cutoff; compare the
    // common prefix commitment by replaying get() on the shorter chain.
    SeqNum common = std::min(chain0.last_seq(), chain.last_seq());
    ASSERT_GT(common, 0u);
    auto a = chain0.get(common);
    auto b = chain.get(common);
    if (a && b) {
      EXPECT_EQ(a->batch_digest, b->batch_digest) << "replica " << r;
      EXPECT_EQ(a->txn_begin, b->txn_begin);
    }
  }
}

TEST(SimFabric, ZyzzyvaFaultFreeUsesFastPath) {
  FabricConfig cfg = small_config();
  cfg.protocol = Protocol::kZyzzyva;
  Fabric fab(cfg);
  auto res = fab.run();
  EXPECT_GT(res.metrics.committed_txns, 1000u);
  EXPECT_GT(res.zyz_fast_path, 0u);
  EXPECT_EQ(res.zyz_slow_path, 0u);
}

TEST(SimFabric, ZyzzyvaBackupFailureForcesSlowPath) {
  FabricConfig cfg = small_config();
  cfg.protocol = Protocol::kZyzzyva;
  cfg.failed_replicas = {3};
  cfg.zyz_client_timeout_ns = 100'000'000;  // 100 ms for test speed
  cfg.warmup_ns = 500'000'000;
  cfg.measure_ns = 1'000'000'000;
  Fabric fab(cfg);
  auto res = fab.run();
  EXPECT_GT(res.metrics.committed_txns, 0u);
  EXPECT_EQ(res.zyz_fast_path, 0u);  // fast path needs all 3f+1 responses
  EXPECT_GT(res.zyz_slow_path, 0u);
}

TEST(SimFabric, PbftToleratesBackupFailure) {
  FabricConfig cfg = small_config();
  cfg.failed_replicas = {3};  // f = 1 of n = 4
  Fabric fab(cfg);
  auto res = fab.run();
  EXPECT_GT(res.metrics.committed_txns, 1000u);
  EXPECT_EQ(res.view_changes, 0u);
}

TEST(SimFabric, PbftPrimaryFailureTriggersViewChange) {
  FabricConfig cfg = small_config();
  cfg.failed_replicas = {0};  // the primary of view 0
  cfg.request_timeout_ns = 50'000'000;     // fast view-change trigger
  cfg.zyz_client_timeout_ns = 100'000'000; // client retransmit timer
  cfg.warmup_ns = 1'000'000'000;
  cfg.measure_ns = 1'500'000'000;
  Fabric fab(cfg);
  auto res = fab.run();
  // The cluster moves past view 0... but with the primary dead from the
  // start, no pre-prepare ever arms a backup timer; clients retransmit to
  // the ring and the system only recovers once a backup is targeted.
  // What we require here: no safety violation and eventual progress.
  EXPECT_GT(res.metrics.committed_txns + res.view_changes, 0u);
}

TEST(SimFabric, UpperBoundModesAreFasterThanConsensus) {
  FabricConfig consensus = small_config();
  auto r_consensus = Fabric(consensus).run();

  FabricConfig ub = small_config();
  ub.mode = RunMode::kUpperBoundNoExec;
  auto r_noexec = Fabric(ub).run();

  ub.mode = RunMode::kUpperBoundExec;
  auto r_exec = Fabric(ub).run();

  EXPECT_GT(r_noexec.metrics.throughput_tps,
            r_consensus.metrics.throughput_tps);
  EXPECT_GE(r_noexec.metrics.throughput_tps, r_exec.metrics.throughput_tps);
  EXPECT_LT(r_noexec.metrics.latency_avg_ms,
            r_consensus.metrics.latency_avg_ms);
}

TEST(SimFabric, BatchingImprovesThroughput) {
  FabricConfig tiny = small_config();
  tiny.batch_size = 1;
  auto r_tiny = Fabric(tiny).run();

  FabricConfig batched = small_config();
  batched.batch_size = 50;
  auto r_batched = Fabric(batched).run();

  EXPECT_GT(r_batched.metrics.throughput_tps,
            2.0 * r_tiny.metrics.throughput_tps);
}

TEST(SimFabric, OffMemoryStorageSlashesThroughput) {
  FabricConfig mem = small_config();
  auto r_mem = Fabric(mem).run();

  FabricConfig disk = small_config();
  disk.storage = StorageModel::kPageDb;
  auto r_disk = Fabric(disk).run();

  EXPECT_GT(r_mem.metrics.throughput_tps,
            3.0 * r_disk.metrics.throughput_tps);
}

TEST(SimFabric, NoCryptoBeatsRsa) {
  FabricConfig none = small_config();
  none.schemes = crypto::SchemeConfig::none();
  auto r_none = Fabric(none).run();

  FabricConfig rsa = small_config();
  rsa.schemes = crypto::SchemeConfig::all_rsa();
  auto r_rsa = Fabric(rsa).run();

  EXPECT_GT(r_none.metrics.throughput_tps,
            5.0 * r_rsa.metrics.throughput_tps);
}

TEST(SimFabric, FewerCoresLowerThroughput) {
  FabricConfig cores8 = small_config();
  cores8.clients = 2000;  // enough load to saturate
  auto r8 = Fabric(cores8).run();

  FabricConfig cores1 = cores8;
  cores1.cores = 1;
  auto r1 = Fabric(cores1).run();

  EXPECT_GT(r8.metrics.throughput_tps, 1.5 * r1.metrics.throughput_tps);
}

TEST(SimFabric, SaturationsReportedPerThread) {
  Fabric fab(small_config());
  auto res = fab.run();
  ASSERT_FALSE(res.primary_threads.empty());
  ASSERT_FALSE(res.backup_threads.empty());
  bool found_worker = false;
  for (const auto& t : res.primary_threads) {
    EXPECT_GE(t.percent, 0.0);
    EXPECT_LE(t.percent, 105.0);  // rounding slack
    if (t.thread == "worker") found_worker = true;
  }
  EXPECT_TRUE(found_worker);
}

TEST(SimFabric, DeterministicAcrossRuns) {
  auto a = Fabric(small_config()).run();
  auto b = Fabric(small_config()).run();
  EXPECT_EQ(a.metrics.committed_txns, b.metrics.committed_txns);
  EXPECT_DOUBLE_EQ(a.metrics.throughput_tps, b.metrics.throughput_tps);
}

TEST(SimFabric, CheckpointsPruneTheChain) {
  FabricConfig cfg = small_config();
  cfg.checkpoint_interval_txns = 200;  // every 10 batches
  Fabric fab(cfg);
  auto res = fab.run();
  ASSERT_GT(res.blocks_committed, 50u);
  // Retention is bounded by the checkpoint interval, not total history.
  EXPECT_LT(fab.replica(1).chain().retained(),
            fab.replica(1).chain().total_blocks());
}

TEST(SimFabric, MoreBatchThreadsHelpMultiOpTransactions) {
  FabricConfig b2 = small_config();
  b2.clients = 2000;
  b2.ops_per_txn = 20;
  auto r2 = Fabric(b2).run();

  FabricConfig b5 = b2;
  b5.batch_threads = 5;
  auto r5 = Fabric(b5).run();

  EXPECT_GE(r5.metrics.throughput_tps, r2.metrics.throughput_tps);
}

}  // namespace
}  // namespace rdb::simfab
