// Hot-path resource discipline, runtime half: AllocScope semantics, the
// OwnedFrame/FrameView ownership type-state, serialize-once broadcast, and
// the per-stage allocation tripwire gate (tripwire builds only).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/rtzone.h"
#include "queues/frame.h"
#include "runtime/cluster.h"
#include "workload/ycsb.h"

namespace rdb {
namespace {

// ---------------------------------------------------------------------------
// AllocScope: the thread-local counter the operator new hooks feed.
// note_alloc() works in EVERY build (the hooks only exist under
// -DRDB_ALLOC_TRIPWIRE=ON), so scope semantics are testable everywhere.

TEST(Rtzone, NoteAllocWithoutScopeIsNoop) {
  // No scope armed: must not crash, must not count anywhere.
  rtzone::note_alloc();
  std::uint64_t count = 0;
  {
    rtzone::AllocScope scope(count);
    rtzone::note_alloc();
  }
  rtzone::note_alloc();  // scope ended: back to the noop path
  EXPECT_EQ(count, 1u);
}

TEST(Rtzone, AllocScopeCountsIntoArmedCounter) {
  std::uint64_t count = 0;
  rtzone::AllocScope scope(count);
  for (int i = 0; i < 5; ++i) rtzone::note_alloc();
  EXPECT_EQ(count, 5u);
}

TEST(Rtzone, AllocScopeNestsInnermostWins) {
  std::uint64_t outer = 0;
  std::uint64_t inner = 0;
  {
    rtzone::AllocScope outer_scope(outer);
    rtzone::note_alloc();
    {
      rtzone::AllocScope inner_scope(inner);
      rtzone::note_alloc();
      rtzone::note_alloc();
    }
    rtzone::note_alloc();  // inner ended: attribution returns to outer
  }
  EXPECT_EQ(outer, 2u);
  EXPECT_EQ(inner, 2u);
}

TEST(Rtzone, AllocScopePerThreadIsolation) {
  // The thread is created BEFORE main arms its scope: in tripwire builds
  // std::thread's constructor allocates for real, and that traffic belongs
  // to no one. While the scopes are armed both threads only spin on the
  // atomic and call note_alloc() — no genuine heap traffic to blur counts.
  std::atomic<int> phase{0};
  std::uint64_t main_count = 0;
  std::uint64_t peer_count = 0;
  std::thread peer([&] {
    rtzone::note_alloc();  // no scope armed on this thread: noop
    while (phase.load() < 1) {
    }
    {
      rtzone::AllocScope s(peer_count);
      rtzone::note_alloc();
    }
    phase.store(2);
  });
  {
    rtzone::AllocScope scope(main_count);
    rtzone::note_alloc();
    phase.store(1);
    while (phase.load() < 2) {
    }
    rtzone::note_alloc();
  }
  peer.join();
  EXPECT_EQ(main_count, 2u);  // never sees the peer's traffic
  EXPECT_EQ(peer_count, 1u);
}

TEST(Rtzone, TripwireHooksFeedRealHeapTraffic) {
  if (!rtzone::tripwire_enabled())
    GTEST_SKIP() << "operator new hooks require -DRDB_ALLOC_TRIPWIRE=ON";
  std::uint64_t count = 0;
  {
    rtzone::AllocScope scope(count);
    // Direct operator-new call: a new-EXPRESSION paired with its delete may
    // legally be elided by the optimizer, but a direct call may not.
    void* p = ::operator new(16);
    ::operator delete(p);
  }
  EXPECT_GE(count, 1u);
}

TEST(Rtzone, StageNamesCoverEveryStage) {
  for (std::size_t s = 0; s < rtzone::kStageCount; ++s) {
    const char* name = rtzone::stage_name(static_cast<rtzone::Stage>(s));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// OwnedFrame / FrameView: move-only owner, counted read-only borrows.

TEST(Frame, AdoptOwnsBytesWithoutCopy) {
  Bytes payload{1, 2, 3, 4};
  const std::uint8_t* data = payload.data();
  OwnedFrame frame = OwnedFrame::adopt(std::move(payload));
  ASSERT_TRUE(static_cast<bool>(frame));
  EXPECT_EQ(frame.size(), 4u);
  EXPECT_EQ(frame.data(), data);  // adopted, not copied
  EXPECT_FALSE(frame.pooled());
}

TEST(Frame, ViewBorrowCountingAndExplicitCopy) {
  OwnedFrame frame = OwnedFrame::adopt(Bytes{9, 8, 7});
  EXPECT_EQ(frame.outstanding_views(), 0u);
  {
    FrameView v1 = frame.view();
    EXPECT_EQ(frame.outstanding_views(), 1u);
    FrameView v2 = v1;  // copyable borrow
    EXPECT_EQ(frame.outstanding_views(), 2u);
    EXPECT_EQ(v2.size(), 3u);
    EXPECT_EQ(v2.data(), frame.data());  // borrow, not copy

    Bytes copy = v2.to_bytes();  // the ONE explicit way bytes escape
    EXPECT_EQ(copy, (Bytes{9, 8, 7}));
    EXPECT_NE(copy.data(), frame.data());

    FrameView v3 = std::move(v2);  // move transfers the borrow
    EXPECT_EQ(frame.outstanding_views(), 2u);
    EXPECT_FALSE(static_cast<bool>(v2));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(v3));
  }
  EXPECT_EQ(frame.outstanding_views(), 0u);  // all borrows returned
}

TEST(Frame, MoveTransfersOwnership) {
  OwnedFrame a = OwnedFrame::adopt(Bytes{5, 5});
  OwnedFrame b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b.size(), 2u);
  OwnedFrame c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(c.size(), 2u);
}

TEST(Frame, PoolSteadyStateReusesSlabs) {
  FramePool pool(1, 64);  // single slab: reuse is deterministic (FIFO list)
  EXPECT_EQ(pool.population(), 1u);
  const std::uint8_t* first_slab = nullptr;
  {
    OwnedFrame f = pool.acquire(16);
    ASSERT_TRUE(f.pooled());
    first_slab = f.data();
  }  // released back to the free list
  {
    // Steady state: the same preallocated slab comes back, zero heap.
    OwnedFrame f = pool.acquire(32);
    EXPECT_TRUE(f.pooled());
    EXPECT_EQ(f.data(), first_slab);
  }
  EXPECT_EQ(pool.pooled_acquires(), 2u);
  EXPECT_EQ(pool.heap_fallbacks(), 0u);
}

TEST(Frame, PoolCountsHeapFallbacks) {
  FramePool pool(1, 64);
  OwnedFrame oversize = pool.acquire(65);  // exceeds slab_bytes
  EXPECT_FALSE(oversize.pooled());
  OwnedFrame pooled = pool.acquire(8);
  EXPECT_TRUE(pooled.pooled());
  OwnedFrame drained = pool.acquire(8);  // population exhausted
  EXPECT_FALSE(drained.pooled());
  EXPECT_EQ(pool.pooled_acquires(), 1u);
  EXPECT_EQ(pool.heap_fallbacks(), 2u);
}

TEST(Frame, AcquireCopyMaterializesTheBytes) {
  FramePool pool(1, 64);
  Bytes src{3, 1, 4, 1, 5};
  OwnedFrame f = pool.acquire_copy(BytesView(src));
  ASSERT_EQ(f.size(), 5u);
  EXPECT_EQ(Bytes(f.data(), f.data() + f.size()), src);
  EXPECT_NE(f.data(), src.data());
}

using FrameDeathTest = ::testing::Test;

TEST(FrameDeathTest, OwnerResetWithLiveViewFailStops) {
  // A view outliving its owner is a use-after-free in the making; the
  // type-state turns it into a deterministic abort instead.
  EXPECT_DEATH(
      {
        OwnedFrame frame = OwnedFrame::adopt(Bytes{1});
        FrameView leaked = frame.view();
        frame.reset();  // live borrow: must fail-stop, not dangle
        (void)leaked;
      },
      "outstanding FrameView");
}

// ---------------------------------------------------------------------------
// Cluster-level: serialize-once broadcast and the per-stage allocation gate.

std::shared_ptr<workload::YcsbWorkload> small_workload() {
  workload::YcsbConfig cfg;
  cfg.record_count = 1000;
  cfg.ops_per_txn = 2;
  cfg.value_bytes = 8;
  return std::make_shared<workload::YcsbWorkload>(cfg);
}

runtime::ClusterConfig base_config(
    std::shared_ptr<workload::YcsbWorkload> wl) {
  runtime::ClusterConfig cfg;
  cfg.replicas = 4;
  cfg.batch_size = 5;
  cfg.execute = [wl](const protocol::Transaction& t, storage::KvStore& s) {
    return wl->execute(t, s);
  };
  return cfg;
}

std::vector<protocol::Transaction> make_burst(runtime::Client& client,
                                              workload::YcsbWorkload& wl,
                                              Rng& rng, int count) {
  std::vector<protocol::Transaction> txns;
  for (int i = 0; i < count; ++i) {
    auto t = wl.make_transaction(rng, client.id(), 0);
    txns.push_back(client.make_transaction(t.payload, t.ops));
  }
  return txns;
}

TEST(Runtime, SerializeOnceBroadcastSendsNFramesFromOneSerialization) {
  // Digital-signature replica links (Ed25519 is addressee-independent):
  // every protocol broadcast signs and serializes ONCE, then fans out n-1
  // FrameViews over the same buffer. The counters prove the shape.
  auto wl = small_workload();
  auto cfg = base_config(wl);
  cfg.schemes = crypto::SchemeConfig::all_ed25519();
  runtime::LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(17);

  auto results = client->submit_and_wait(make_burst(*client, *wl, rng, 10));
  ASSERT_TRUE(results.has_value());
  ASSERT_TRUE(cluster.wait_for_execution(2, std::chrono::seconds(10)));
  cluster.stop();

  for (ReplicaId r = 0; r < cluster.size(); ++r) {
    auto stats = cluster.replica(r).stats();
    EXPECT_GT(stats.broadcasts_serialized, 0u) << "replica " << r;
    // Exactly n-1 frame sends per serialized broadcast — the serialize-once
    // invariant, counter-for-counter.
    EXPECT_EQ(stats.broadcast_frame_sends,
              stats.broadcasts_serialized * (cluster.size() - 1))
        << "replica " << r;
  }
}

TEST(Runtime, CmacLinksKeepPerPeerSerialization) {
  // CMAC replica links are addressee-DEPENDENT (pairwise keys): the
  // serialize-once path is illegal and must stay disabled. Default config
  // uses CMAC, so this also pins the legacy behavior.
  auto wl = small_workload();
  runtime::LocalCluster cluster(base_config(wl));
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(18);

  auto results = client->submit_and_wait(make_burst(*client, *wl, rng, 5));
  ASSERT_TRUE(results.has_value());
  ASSERT_TRUE(cluster.wait_for_execution(1, std::chrono::seconds(5)));
  cluster.stop();

  for (ReplicaId r = 0; r < cluster.size(); ++r) {
    auto stats = cluster.replica(r).stats();
    EXPECT_EQ(stats.broadcasts_serialized, 0u) << "replica " << r;
    EXPECT_EQ(stats.broadcast_frame_sends, 0u) << "replica " << r;
  }
}

// Per-stage allocation budgets, in heap allocations PER STAGE ITERATION
// after warmup (an iteration = one armed StageScope: one popped message,
// batch, wave, or outbound send). These are the NAMED budgets the tripwire
// holds the pipeline to. They are deliberately not zero: a stage iteration
// legitimately materializes its outputs (a serialized frame is a Bytes, a
// Block holds its transactions) — the discipline bans UNBOUNDED per-message
// allocation (rates that grow with load), which would show up here as
// hundreds of allocations per iteration.
struct StageBudget {
  rtzone::Stage stage;
  std::uint64_t allocs_per_iteration;
};
constexpr StageBudget kStageBudgets[] = {
    // input: routes one popped message (request copies land in the batch
    // queue; vote/proposal messages move through untouched).
    {rtzone::Stage::kInput, 40},
    // batch: builds one Batch message from up to batch_size requests (each
    // request copy carries its payload Bytes and per-op storage).
    {rtzone::Stage::kBatch, 160},
    // verify: canonical signing bytes per burst entry (pool scratch is
    // hoisted; the Bytes themselves are per-message output).
    {rtzone::Stage::kVerify, 40},
    // worker: engine handlers emit Actions (messages to send own storage).
    {rtzone::Stage::kWorker, 80},
    // execute: applies a batch against the store and builds the Block.
    {rtzone::Stage::kExecute, 120},
    // checkpoint: digest chain bookkeeping, occasional stable-checkpoint
    // broadcast; compaction sits behind its own barrier.
    {rtzone::Stage::kCheckpoint, 60},
    // output: sign + serialize one outbound message (the serialized frame
    // is the product; serialize-once broadcast amortizes it across peers).
    {rtzone::Stage::kOutput, 40},
};

TEST(Runtime, HotPathSteadyStateZeroAlloc) {
  if (!rtzone::tripwire_enabled())
    GTEST_SKIP() << "allocation tripwire requires -DRDB_ALLOC_TRIPWIRE=ON";

  auto wl = small_workload();
  auto cfg = base_config(wl);
  runtime::LocalCluster cluster(cfg);
  cluster.start();
  auto client = cluster.make_client(1);
  Rng rng(19);

  // Warmup: first waves pay one-time costs (CMAC key schedules, verdict
  // scratch, pool refills) that the barriers amortize away.
  for (int round = 0; round < 4; ++round) {
    auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 10));
    ASSERT_TRUE(res.has_value()) << "warmup round " << round;
  }
  SeqNum warm = cluster.replica(0).last_executed();
  ASSERT_TRUE(cluster.wait_for_execution(warm, std::chrono::seconds(10)));

  std::array<runtime::ReplicaStats, 4> before;
  for (ReplicaId r = 0; r < cluster.size(); ++r)
    before[r] = cluster.replica(r).stats();

  // Measured window: steady state.
  for (int round = 0; round < 6; ++round) {
    auto res = client->submit_and_wait(make_burst(*client, *wl, rng, 10));
    ASSERT_TRUE(res.has_value()) << "measured round " << round;
  }
  SeqNum done = cluster.replica(0).last_executed();
  ASSERT_TRUE(cluster.wait_for_execution(done, std::chrono::seconds(10)));
  cluster.stop();

  for (ReplicaId r = 0; r < cluster.size(); ++r) {
    auto after = cluster.replica(r).stats();
    for (const auto& budget : kStageBudgets) {
      auto s = static_cast<std::size_t>(budget.stage);
      std::uint64_t allocs =
          after.hot_path_allocs[s] - before[r].hot_path_allocs[s];
      std::uint64_t items =
          after.hot_path_items[s] - before[r].hot_path_items[s];
      if (items == 0) continue;  // stage saw no traffic in the window
      EXPECT_LE(allocs, budget.allocs_per_iteration * items)
          << "replica " << r << " stage " << rtzone::stage_name(budget.stage)
          << ": " << allocs << " allocations over " << items
          << " iterations (" << (allocs / items) << "/iter, budget "
          << budget.allocs_per_iteration << "/iter) — a hot-path "
          << "allocation regression slipped past the static lint";
    }
  }
}

}  // namespace
}  // namespace rdb
