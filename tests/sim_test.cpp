// Discrete-event substrate: scheduler ordering/cancellation, CPU-thread
// serial execution and core contention, network latency/bandwidth/failure.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace rdb::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(300, [&] { order.push_back(3); });
  s.schedule(100, [&] { order.push_back(1); });
  s.schedule(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300u);
}

TEST(Scheduler, SimultaneousEventsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) s.schedule(100, [&, i] { order.push_back(i); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelSuppressesEvent) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule(100, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler s;
  int count = 0;
  s.schedule(100, [&] { ++count; });
  s.schedule(500, [&] { ++count; });
  s.run_until(200);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 200u);  // clock advances to the deadline
  s.run_until(600);
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, EventsScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule(10, recurse);
  };
  s.schedule(10, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 50u);
}

TEST(SimThread, SerialExecutionAccumulatesBusyTime) {
  Scheduler s;
  NodeCpu cpu(s, 8);
  SimThread& t = cpu.add_thread("worker");
  std::vector<int> order;
  t.post(100, [&] { order.push_back(1); });
  t.post(50, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(t.busy_ns(), 150u);
  EXPECT_EQ(t.items_processed(), 2u);
  // Items ran back to back: finished at 150, not 100+50 in parallel.
  EXPECT_EQ(s.now(), 150u);
}

TEST(SimThread, PostFromItemEffectQueuesBehind) {
  Scheduler s;
  NodeCpu cpu(s, 8);
  SimThread& t = cpu.add_thread("w");
  std::vector<int> order;
  t.post(10, [&] {
    order.push_back(1);
    t.post(10, [&] { order.push_back(3); });
  });
  t.post(10, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(t.busy_ns(), 30u);
}

TEST(SimThread, ThreadsRunInParallelWhenCoresSuffice) {
  Scheduler s;
  NodeCpu cpu(s, 2);
  SimThread& a = cpu.add_thread("a");
  SimThread& b = cpu.add_thread("b");
  a.post(100, nullptr);
  b.post(100, nullptr);
  s.run();
  EXPECT_EQ(s.now(), 100u);  // parallel, not 200
}

TEST(SimThread, CoreContentionStretchesService) {
  // 2 threads on 1 core: concurrent work is stretched ~2x.
  Scheduler s;
  NodeCpu cpu(s, 1);
  SimThread& a = cpu.add_thread("a");
  SimThread& b = cpu.add_thread("b");
  a.post(100, nullptr);
  b.post(100, nullptr);
  s.run();
  EXPECT_GE(s.now(), 200u);
}

TEST(SimThread, SaturationPercent) {
  Scheduler s;
  NodeCpu cpu(s, 8);
  SimThread& t = cpu.add_thread("w");
  t.post(250, nullptr);
  s.run_until(1000);
  EXPECT_DOUBLE_EQ(t.saturation_percent(1000), 25.0);
  t.reset_stats();
  EXPECT_DOUBLE_EQ(t.saturation_percent(1000), 0.0);
}

TEST(Network, DeliversAfterLatencyAndTransmission) {
  Scheduler s;
  NetworkConfig cfg;
  cfg.latency_ns = 1000;
  cfg.bandwidth_gbps = 8.0;  // 1 byte per ns
  Network net(s, cfg, 2);
  TimeNs delivered_at = 0;
  net.send(0, 1, 500, [&] { delivered_at = s.now(); });
  s.run();
  // 500 B at 1 B/ns egress + 1000 ns latency + 500 ns ingress.
  EXPECT_EQ(delivered_at, 2000u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
  EXPECT_EQ(net.stats().bytes_sent, 500u);
}

TEST(Network, EgressSerializesBackToBackSends) {
  Scheduler s;
  NetworkConfig cfg;
  cfg.latency_ns = 0;
  cfg.bandwidth_gbps = 8.0;
  Network net(s, cfg, 3);
  TimeNs first = 0, second = 0;
  net.send(0, 1, 1000, [&] { first = s.now(); });
  net.send(0, 2, 1000, [&] { second = s.now(); });
  s.run();
  EXPECT_EQ(first, 2000u);   // 1000 egress + 1000 ingress at dst 1
  EXPECT_EQ(second, 3000u);  // queued behind the first on the egress link
}

TEST(Network, IngressSerializesConcurrentArrivals) {
  Scheduler s;
  NetworkConfig cfg;
  cfg.latency_ns = 0;
  cfg.bandwidth_gbps = 8.0;
  Network net(s, cfg, 3);
  std::vector<TimeNs> arrivals;
  net.send(0, 2, 1000, [&] { arrivals.push_back(s.now()); });
  net.send(1, 2, 1000, [&] { arrivals.push_back(s.now()); });
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Both serialize through node 2's single ingress link.
  EXPECT_EQ(arrivals[1], arrivals[0] + 1000);
}

TEST(Network, FailedNodeDropsTraffic) {
  Scheduler s;
  Network net(s, NetworkConfig{}, 3);
  net.set_failed(1, true);
  int delivered = 0;
  net.send(0, 1, 100, [&] { ++delivered; });
  net.send(1, 2, 100, [&] { ++delivered; });
  net.send(0, 2, 100, [&] { ++delivered; });
  s.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.stats().messages_dropped, 2u);
}

TEST(Network, RandomLossDropsApproximately) {
  Scheduler s;
  NetworkConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.latency_ns = 1;
  Network net(s, cfg, 2);
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) net.send(0, 1, 10, [&] { ++delivered; });
  s.run();
  EXPECT_GT(delivered, 350);
  EXPECT_LT(delivered, 650);
}

TEST(Network, EgressUtilizationTracksBusyFraction) {
  Scheduler s;
  NetworkConfig cfg;
  cfg.latency_ns = 0;
  cfg.bandwidth_gbps = 8.0;
  Network net(s, cfg, 2);
  net.send(0, 1, 500, [] {});
  s.run_until(1000);
  EXPECT_NEAR(net.egress_utilization(0), 0.5, 0.01);
}

}  // namespace
}  // namespace rdb::sim
