// PoE engine: speculative execution at the 2f+1 support quorum, in-order
// release, failure robustness (the property Zyzzyva lacks), equivocation
// defense, checkpointing — plus simulated-fabric runs comparing the three
// protocols.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "simfab/fabric.h"
#include "tests/engine_harness.h"

namespace rdb::protocol {
namespace {

using test::EngineHarness;
using test::make_batch;

Digest digest_of(const std::string& tag) { return crypto::sha256(tag); }

void propose(EngineHarness<PoeEngine>& h, SeqNum seq,
             const std::string& tag = "") {
  std::string t = tag.empty() ? "batch-" + std::to_string(seq) : tag;
  h.perform(0, h.engine(0).make_propose(seq, make_batch(1, seq * 10, 2),
                                        (seq - 1) * 2 + 1, digest_of(t)));
}

TEST(Poe, SpeculativeExecutionAtSupportQuorum) {
  EngineHarness<PoeEngine> h(4);
  propose(h, 1);
  h.run_all();
  for (ReplicaId r = 0; r < 4; ++r) {
    ASSERT_EQ(h.executed(r).size(), 1u) << "replica " << r;
    EXPECT_TRUE(h.executed(r)[0].speculative);
    EXPECT_EQ(h.executed(r)[0].batch_digest, digest_of("batch-1"));
  }
  EXPECT_TRUE(h.logs_consistent());
  EXPECT_EQ(h.engine(0).metrics().proposes_sent, 1u);
  EXPECT_EQ(h.engine(1).metrics().supports_sent, 1u);
}

TEST(Poe, ExecutesInOrderUnderRandomSchedules) {
  for (std::uint64_t seed = 50; seed < 60; ++seed) {
    EngineHarness<PoeEngine> h(4);
    for (SeqNum s = 1; s <= 6; ++s) propose(h, s);
    Rng rng(seed);
    h.run_all_shuffled(rng);
    for (ReplicaId r = 0; r < 4; ++r) {
      ASSERT_EQ(h.executed(r).size(), 6u) << "seed " << seed;
      for (SeqNum s = 1; s <= 6; ++s)
        EXPECT_EQ(h.executed(r)[s - 1].seq, s);
    }
    EXPECT_TRUE(h.logs_consistent());
  }
}

TEST(Poe, SurvivesFBackupFailures) {
  // THE PoE selling point versus Zyzzyva: consensus (and the client's 2f+1
  // response quorum) still completes with f crashed backups.
  EngineHarness<PoeEngine> h(4);
  h.crash(3);
  for (SeqNum s = 1; s <= 5; ++s) propose(h, s);
  h.run_all();
  for (ReplicaId r = 0; r < 3; ++r)
    ASSERT_EQ(h.executed(r).size(), 5u) << "replica " << r;
  EXPECT_TRUE(h.logs_consistent());
}

TEST(Poe, EquivocationOnlyFirstProposalCounts) {
  EngineHarness<PoeEngine> h(4);
  PrePrepare a;
  a.view = 0;
  a.seq = 1;
  a.batch_digest = digest_of("A");
  a.txns = make_batch(1, 0, 1);
  PrePrepare b = a;
  b.batch_digest = digest_of("B");
  Message ma;
  ma.from = Endpoint::replica(0);
  ma.payload = a;
  Message mb;
  mb.from = Endpoint::replica(0);
  mb.payload = b;

  (void)h.engine(1).on_propose(ma);
  auto acts = h.engine(1).on_propose(mb);
  EXPECT_TRUE(acts.empty());
  EXPECT_GE(h.engine(1).metrics().rejected_msgs, 1u);
  // Conflicting supports are rejected against the accepted digest.
  Prepare sup;
  sup.view = 0;
  sup.seq = 1;
  sup.batch_digest = digest_of("B");
  Message ms;
  ms.from = Endpoint::replica(2);
  ms.payload = sup;
  EXPECT_TRUE(h.engine(1).on_support(ms).empty());
}

TEST(Poe, NoExecutionWithoutOwnAgreement) {
  // A replica holding 2f+1 supports but no propose must not execute (it has
  // no batch payload).
  EngineHarness<PoeEngine> h(4);
  Prepare sup;
  sup.view = 0;
  sup.seq = 1;
  sup.batch_digest = digest_of("x");
  for (ReplicaId r = 1; r < 4; ++r) {
    Message m;
    m.from = Endpoint::replica(r);
    m.payload = sup;
    h.perform(3, h.engine(3).on_support(m));
  }
  EXPECT_TRUE(h.executed(3).empty());
}

TEST(Poe, NonPrimaryCannotPropose) {
  EngineHarness<PoeEngine> h(4);
  EXPECT_TRUE(h.engine(2)
                  .make_propose(1, make_batch(1, 0, 1), 1, digest_of("x"))
                  .empty());
}

TEST(Poe, OutOfOrderProposalsAllowed) {
  // Unlike Zyzzyva, PoE has no history chain: the primary may emit seq 2
  // before seq 1 (e.g. batch threads finishing out of order, §4.5).
  EngineHarness<PoeEngine> h(4);
  h.perform(0, h.engine(0).make_propose(2, make_batch(1, 20, 1), 2,
                                        digest_of("two")));
  h.perform(0, h.engine(0).make_propose(1, make_batch(1, 10, 1), 1,
                                        digest_of("one")));
  h.run_all();
  for (ReplicaId r = 0; r < 4; ++r) {
    ASSERT_EQ(h.executed(r).size(), 2u);
    EXPECT_EQ(h.executed(r)[0].batch_digest, digest_of("one"));
    EXPECT_EQ(h.executed(r)[1].batch_digest, digest_of("two"));
  }
}

TEST(Poe, CheckpointsStabilizeAndPrune) {
  EngineHarness<PoeEngine> h(4, /*cp_interval=*/4);
  for (SeqNum s = 1; s <= 8; ++s) propose(h, s);
  h.run_all();
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(h.engine(r).stable_checkpoint(), 8u) << "replica " << r;
    EXPECT_EQ(h.engine(r).live_slots(), 0u);
  }
}

TEST(Poe, DuplicateAndStaleTimeoutsAreCountedNoOps) {
  // PoE has no view change, so EVERY timer expiry — duplicate, stale, or
  // mid-protocol — must be absorbed without touching state. The model
  // checker (src/mc/) schedules expiries adversarially; this pins the
  // engine-level contract it relies on: state_digest() unchanged.
  EngineHarness<PoeEngine> h(4);
  propose(h, 1);
  h.run_all();
  const Digest before = h.engine(1).state_digest();
  const auto stale_before = h.engine(1).metrics().stale_timeouts;
  EXPECT_TRUE(h.engine(1).on_timeout(1).empty());
  EXPECT_TRUE(h.engine(1).on_timeout(1).empty());  // duplicate expiry
  EXPECT_TRUE(h.engine(1).on_timeout(999).empty());  // never-armed timer
  EXPECT_EQ(h.engine(1).metrics().stale_timeouts, stale_before + 3);
  EXPECT_EQ(h.engine(1).state_digest(), before);
  // Mid-protocol (support quorum pending), same contract.
  propose(h, 2);
  const Digest mid = h.engine(2).state_digest();
  EXPECT_TRUE(h.engine(2).on_timeout(2).empty());
  EXPECT_EQ(h.engine(2).state_digest(), mid);
}

}  // namespace
}  // namespace rdb::protocol

// ---------------------------------------------------------------------------
// Fabric-level: the three protocols side by side.
// ---------------------------------------------------------------------------

namespace rdb::simfab {
namespace {

FabricConfig small(Protocol proto) {
  FabricConfig cfg;
  cfg.protocol = proto;
  cfg.replicas = 4;
  cfg.clients = 600;
  cfg.client_machines = 2;
  cfg.batch_size = 20;
  cfg.warmup_ns = 300'000'000;
  cfg.measure_ns = 500'000'000;
  return cfg;
}

TEST(PoeFabric, CommitsTransactions) {
  auto r = Fabric(small(Protocol::kPoe)).run();
  EXPECT_GT(r.metrics.committed_txns, 1000u);
  EXPECT_GT(r.blocks_committed, 10u);
}

TEST(PoeFabric, FasterThanPbftFaultFree) {
  // One quadratic phase instead of two, no commit wait: PoE's fault-free
  // latency sits below PBFT's at equal load.
  auto pbft = Fabric(small(Protocol::kPbft)).run();
  auto poe = Fabric(small(Protocol::kPoe)).run();
  EXPECT_LE(poe.metrics.latency_avg_ms, pbft.metrics.latency_avg_ms * 1.05);
  EXPECT_GE(poe.metrics.throughput_tps, pbft.metrics.throughput_tps * 0.9);
}

TEST(PoeFabric, KeepsThroughputUnderBackupFailure) {
  // The head-to-head that motivates PoE: one crashed backup barely dents
  // PoE, while Zyzzyva collapses onto its client-timeout slow path.
  auto cfg_ok = small(Protocol::kPoe);
  auto ok = Fabric(cfg_ok).run();

  auto cfg_fail = small(Protocol::kPoe);
  cfg_fail.failed_replicas = {3};
  auto fail = Fabric(cfg_fail).run();

  EXPECT_GT(fail.metrics.throughput_tps, 0.7 * ok.metrics.throughput_tps);

  auto zcfg = small(Protocol::kZyzzyva);
  zcfg.failed_replicas = {3};
  zcfg.zyz_client_timeout_ns = 200'000'000;
  zcfg.warmup_ns = 600'000'000;
  zcfg.measure_ns = 1'000'000'000;
  auto zfail = Fabric(zcfg).run();
  EXPECT_GT(fail.metrics.throughput_tps, 2.0 * zfail.metrics.throughput_tps);
}

}  // namespace
}  // namespace rdb::simfab
