// Topology-file parser used by the rdb_replica / rdb_client tools.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "tools/cluster_config.h"

namespace rdb::tools {
namespace {

namespace fs = std::filesystem;

class TopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "rdb_topo_test";
    fs::create_directories(dir_);
    path_ = (dir_ / "cluster.topo").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(TopologyTest, ParsesValidFileWithComments) {
  write(
      "# a 4-replica cluster\n"
      "replica 0 127.0.0.1 19000\n"
      "replica 1 127.0.0.1 19001  # inline comment\n"
      "replica 2 10.0.0.5 19002\n"
      "replica 3 10.0.0.6 19003\n"
      "\n"
      "client 1 127.0.0.1 19100\n");
  auto topo = load_topology(path_);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->replica_count(), 4u);
  EXPECT_EQ(topo->replicas.at(2).host, "10.0.0.5");
  EXPECT_EQ(topo->replicas.at(2).port, 19002);
  EXPECT_EQ(topo->clients.at(1).port, 19100);
}

TEST_F(TopologyTest, RejectsMissingFile) {
  EXPECT_FALSE(load_topology((dir_ / "nope.topo").string()).has_value());
}

TEST_F(TopologyTest, RejectsMalformedLine) {
  write("replica 0 127.0.0.1\n");  // missing port
  EXPECT_FALSE(load_topology(path_).has_value());
}

TEST_F(TopologyTest, RejectsUnknownKind) {
  write(
      "replica 0 h 1\nreplica 1 h 2\nreplica 2 h 3\nreplica 3 h 4\n"
      "observer 9 h 5\n");
  EXPECT_FALSE(load_topology(path_).has_value());
}

TEST_F(TopologyTest, RejectsTooFewReplicas) {
  write("replica 0 h 1\nreplica 1 h 2\nreplica 2 h 3\n");
  EXPECT_FALSE(load_topology(path_).has_value());
}

TEST_F(TopologyTest, RejectsNonContiguousReplicaIds) {
  write("replica 0 h 1\nreplica 1 h 2\nreplica 2 h 3\nreplica 5 h 4\n");
  EXPECT_FALSE(load_topology(path_).has_value());
}

TEST_F(TopologyTest, RejectsOutOfRangePort) {
  write(
      "replica 0 h 1\nreplica 1 h 2\nreplica 2 h 3\nreplica 3 h 99999\n");
  EXPECT_FALSE(load_topology(path_).has_value());
}

TEST_F(TopologyTest, WireDeclaresAllPeersExceptSelf) {
  write(
      "replica 0 127.0.0.1 0\nreplica 1 127.0.0.1 0\n"
      "replica 2 127.0.0.1 0\nreplica 3 127.0.0.1 0\n"
      "client 7 127.0.0.1 0\n");
  auto topo = load_topology(path_);
  ASSERT_TRUE(topo.has_value());
  runtime::TcpTransport transport(Endpoint::replica(0), 0);
  topo->wire(transport);  // must not declare replica 0 as its own peer
  protocol::Message m;
  m.from = Endpoint::replica(0);
  m.payload = protocol::Prepare{};
  transport.send(Endpoint::replica(0), m);  // undeclared self: dropped
  EXPECT_EQ(transport.send_failures(), 1u);
  transport.stop();
}

}  // namespace
}  // namespace rdb::tools
