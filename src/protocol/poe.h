// PoE — Proof-of-Execution (Gupta, Hellings, Rahnama, Sadoghi 2019),
// the speculative two-phase protocol the paper cites (§2.1) as fixing
// Zyzzyva's fragility: "PoE tries to eliminate the limitations of Zyzzyva
// by providing a two-phase, speculative consensus protocol but requires one
// phase of quadratic communication among all the replicas."
//
// Simplified engine implemented here:
//   phase 1 (linear)     primary sends a Propose for (view, seq, batch)
//   phase 2 (quadratic)  every backup broadcasts a Support for the digest
//   speculative execute  once a replica holds 2f+1 supports (the primary's
//                        Propose counts as its support) it executes the
//                        batch speculatively, in sequence order, and
//                        answers the client
// The *client* accepts a result at 2f+1 matching responses — reachable with
// f crashed replicas, which is exactly why PoE keeps its throughput under
// failures where Zyzzyva collapses (see bench/ext_protocols.cpp).
//
// On the wire PoE reuses the PrePrepare message as its Propose and the
// Prepare message as its Support (identical shapes). View changes /
// speculative rollback are out of scope here, as with the Zyzzyva engine.
#pragma once

#include <map>
#include <set>

#include "common/det.h"
#include "common/rtzone.h"
#include "protocol/actions.h"
#include "protocol/messages.h"

namespace rdb::protocol {

struct PoeConfig {
  std::uint32_t n{4};
  ReplicaId self{0};
  SeqNum checkpoint_interval{100};
  SeqNum window{20000};
};

struct PoeMetrics {
  std::uint64_t proposes_sent{0};
  std::uint64_t supports_sent{0};
  std::uint64_t batches_executed{0};
  std::uint64_t rejected_msgs{0};
  /// Timer expirations absorbed as no-ops (PoE has no view change here, so
  /// EVERY timeout is absorbed — but it must be absorbed without a state
  /// change, which the model checker and regression tests pin down).
  std::uint64_t stale_timeouts{0};
};

class PoeEngine {
 public:
  explicit PoeEngine(PoeConfig config);

  ViewId view() const { return view_; }
  ReplicaId primary() const { return view_ % config_.n; }
  bool is_primary() const { return primary() == config_.self; }
  std::uint32_t f() const { return max_faulty(config_.n); }

  /// Primary: propose a batch. Unlike Zyzzyva there is no history chain, so
  /// proposals may be emitted out of order (§4.5 applies to PoE too).
  Actions make_propose(SeqNum seq, std::vector<Transaction> txns,
                       std::uint64_t txn_begin, const Digest& batch_digest);

  /// Backup: record the propose, broadcast a Support.
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_propose(const Message& msg);
  /// Any replica: count supports; 2f+1 releases speculative execution.
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_support(const Message& msg);

  /// `exec_digest` rides on the checkpoint vote (zero = fabric computes no
  /// execution fingerprints; see protocol/messages.h).
  RDB_DETERMINISTIC
  Actions on_executed(SeqNum seq, const Digest& state_digest,
                      const Digest& exec_digest = Digest{});
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_checkpoint(const Message& msg);

  /// Timeout-as-event handling: view changes / speculative rollback are out
  /// of scope for this engine (see the header comment), so a timer expiry —
  /// including a stale or duplicated one replayed by the fabric — is
  /// absorbed as a counted no-op. It must NEVER mutate protocol state; the
  /// model checker's fingerprint dedup and the regression tests in
  /// tests/poe_test.cpp rely on that.
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_timeout(std::uint64_t timer_id);

  /// Canonical fingerprint of the full protocol state (model-checker state
  /// dedup; metrics excluded). See PbftEngine::state_digest.
  RDB_DETERMINISTIC Digest state_digest() const;

  const PoeMetrics& metrics() const { return metrics_; }
  SeqNum last_executed() const { return last_executed_; }
  SeqNum stable_checkpoint() const { return stable_seq_; }
  std::size_t live_slots() const { return slots_.size(); }

 private:
  struct Slot {
    ViewId view{0};
    bool have_propose{false};
    Digest digest{};
    std::vector<Transaction> txns;
    std::uint64_t txn_begin{0};
    // Keyed by the digest the support endorses: supports can arrive before
    // the propose, and a digest-blind pool would let an equivocating
    // primary cross-count them (same fix as PbftEngine::Slot::prepares).
    std::map<Digest, std::set<ReplicaId>> supports;
    bool sent_support{false};
    bool supported{false};  // reached the 2f+1 quorum
    bool executed{false};
  };

  Slot& slot(SeqNum seq);
  bool in_window(SeqNum seq) const;
  Actions maybe_supported(SeqNum seq, Slot& s);
  void drain_executable(Actions& out);
  Message own(Payload payload) const;

  PoeConfig config_;
  ViewId view_{0};
  std::map<SeqNum, Slot> slots_;
  SeqNum last_executed_{0};
  SeqNum stable_seq_{0};
  std::map<SeqNum, std::map<Digest, std::set<ReplicaId>>> checkpoint_votes_;
  PoeMetrics metrics_;
};

}  // namespace rdb::protocol
