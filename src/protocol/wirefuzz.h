// Structure-aware malformed-wire fuzzer (ISSUE 5 tentpole, dynamic half).
//
// The static taint gate proves nobody READS unvalidated fields; this fuzzer
// proves the parse+validate door itself cannot be crashed or bypassed. It
// generates canonical samples of every message type through the real
// Writer/serialize path (structure-aware: the mutator knows where the type
// byte, endpoint kind, and length prefixes live), applies byzantine
// mutations — truncation, bit flips, length lies, type/kind confusion,
// trailing-garbage extension — and feeds each mutant through
// validate_wire(), checking three oracles:
//
//   1. liveness    unmutated samples are ACCEPTED (the validators never
//                  reject legitimate traffic);
//   2. safety      nothing crashes / trips ASan-UBSan (run the CLI under
//                  RDB_SANITIZE=address,undefined — the CI smoke job does);
//   3. canonicity  every ACCEPTED input re-serializes byte-identical to
//                  what came in — an accepted-but-different frame would mean
//                  a parser ambiguity an attacker could split votes with
//                  (two replicas reading different messages from one frame).
//
// Every rejection lands in a named RejectReason bucket, so a mutation class
// that suddenly stops being rejected shows up as a counter shift, not
// silence. The library is deterministic per seed: tools/rdb_wirefuzz wraps
// it in a CLI, the corpus regression test replays tests/corpus/wire/.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "protocol/validate.h"

namespace rdb::protocol::wirefuzz {

/// Mutation classes the fuzzer applies. kNone feeds the canonical sample
/// straight through (liveness oracle).
enum class Mutation : std::uint8_t {
  kNone = 0,        // canonical sample, must be accepted
  kTruncate,        // cut the frame at a random point
  kBitFlip,         // flip 1..8 random bits
  kLengthLie,       // overwrite a 32-bit field with a huge/absurd count
  kTypeConfusion,   // rewrite the type byte to another (or unknown) type
  kKindConfusion,   // rewrite the endpoint-kind byte
  kExtend,          // append trailing garbage (must be rejected: canonicity)
  kRandomJunk,      // fully random bytes, no structure at all
  kCount,
};

const char* mutation_name(Mutation m);

struct FuzzConfig {
  std::uint64_t seed{1};
  std::uint64_t iters{100000};
  /// Validation context the mutants are judged against (defaults match a
  /// 4-replica cluster at view 0 / seq 0 with all types accepted).
  ValidationContext ctx{};
  /// Collect one exemplar input per (mutation, reject-reason) pair plus
  /// every accepted mutant into `corpus` on the result.
  bool collect_corpus{false};
};

struct FuzzResult {
  std::uint64_t iterations{0};
  std::uint64_t accepted{0};           // verdict.ok() (incl. benign mutants)
  std::uint64_t rejected{0};           // total rejects
  std::array<std::uint64_t, static_cast<std::size_t>(RejectReason::kCount)>
      rejected_by_reason{};            // named buckets (never silent)
  std::array<std::uint64_t, static_cast<std::size_t>(Mutation::kCount)>
      by_mutation{};                   // inputs tried per mutation class
  /// Oracle violations — MUST stay zero; the CLI exits non-zero otherwise.
  std::uint64_t liveness_failures{0};  // canonical sample rejected
  std::uint64_t canonicity_failures{0};  // accepted but re-serialized differently
  /// First few violation descriptions, for the report.
  std::vector<std::string> failure_notes;
  /// Exemplar inputs (when collect_corpus): seeds for tests/corpus/wire/.
  std::vector<Bytes> corpus;

  bool ok() const {
    return liveness_failures == 0 && canonicity_failures == 0;
  }
};

/// Deterministically builds a well-formed sample Message of the given type
/// (correct sender kind, in-window views/seqs, quorum-sized distinct signer
/// sets) and returns its canonical wire bytes.
Bytes sample_wire(Rng& rng, MsgType type);

/// Applies one mutation class to `wire` in place (deterministic given rng).
void mutate(Bytes& wire, Rng& rng, Mutation m);

/// Runs the full fuzz loop: sample -> mutate -> parse+validate -> oracles.
FuzzResult run(const FuzzConfig& config);

/// Replays externally supplied inputs (the checked-in corpus) through
/// parse+validate, applying the same safety/canonicity oracles. Liveness is
/// not checked (corpus entries are mostly malformed by design).
FuzzResult replay(const std::vector<Bytes>& inputs,
                  const ValidationContext& ctx);

}  // namespace rdb::protocol::wirefuzz
