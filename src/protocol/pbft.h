// PBFT consensus engine (Castro & Liskov '99) as used by ResilientDB (§2.1,
// §4.3–§4.7): three phases (Pre-prepare, Prepare, Commit), two of them with
// quadratic communication, plus checkpointing and view changes.
//
// The engine is a deterministic state machine — no threads, no clock, no I/O.
// The fabric invokes:
//   make_preprepare()    batch-thread work at the primary
//   on_preprepare() ...  worker-thread processing of phase messages
//   on_executed()        execute-thread notification (may emit Checkpoint)
//   on_timeout()         request timer expiry (starts a view change)
// and performs the returned Actions. Signature verification of incoming
// messages is the fabric's job (it happens on the receiving thread); the
// engine enforces all protocol-semantic checks (view, sequence windows,
// digest matching, quorum counting, duplicate suppression).
//
// Out-of-order consensus (§4.5) is inherent: each sequence number has an
// independent slot, so consensus rounds overlap freely. Execution order is
// restored by emitting ExecuteActions only for the contiguous prefix (§4.6).
#pragma once

#include <algorithm>
#include <map>
#include <set>

#include "common/det.h"
#include "common/rtzone.h"
#include "protocol/actions.h"
#include "protocol/messages.h"

namespace rdb::protocol {

struct PbftConfig {
  std::uint32_t n{4};              // replica count (n >= 3f+1)
  ReplicaId self{0};
  SeqNum checkpoint_interval{100};  // Δ batches between checkpoints (§4.7)
  SeqNum window{20000};             // max in-flight seq distance
  TimeNs request_timeout_ns{3'000'000'000};  // view-change trigger
};

struct PbftMetrics {
  std::uint64_t preprepares_sent{0};
  std::uint64_t prepares_sent{0};
  std::uint64_t commits_sent{0};
  std::uint64_t batches_committed{0};
  std::uint64_t view_changes{0};
  std::uint64_t stable_checkpoints{0};
  std::uint64_t rejected_msgs{0};
  std::uint64_t catchup_requests{0};
  std::uint64_t catchup_batches_adopted{0};
  std::uint64_t snapshot_requests{0};
  std::uint64_t snapshots_installed{0};
  /// Execution-fingerprint tripwires fired (see ExecDivergenceAction).
  std::uint64_t exec_divergences{0};
  /// Timer expirations absorbed without effect: the slot was gone, already
  /// committed, or a view change was in flight. Duplicate and stale timer
  /// events are normal fabric behavior and must never corrupt state.
  std::uint64_t stale_timeouts{0};
};

class PbftEngine {
 public:
  explicit PbftEngine(PbftConfig config);

  // --- identity & view ---
  ViewId view() const { return view_; }
  ReplicaId primary() const { return primary_of(view_); }
  bool is_primary() const { return primary() == config_.self; }
  ReplicaId primary_of(ViewId v) const { return v % config_.n; }
  std::uint32_t f() const { return max_faulty(config_.n); }

  // --- primary-side batching (called from a batch thread) ---
  /// Wraps a batch of client transactions into a Pre-prepare for `seq`
  /// (sequence numbers are assigned upstream by the input thread). Returns
  /// the broadcast plus a self-delivery so the primary's own worker thread
  /// records the proposal.
  RDB_DETERMINISTIC RDB_HOT_PATH
  Actions make_preprepare(SeqNum seq, std::vector<Transaction> txns,
                          std::uint64_t txn_begin, const Digest& batch_digest,
                          Bytes payload_padding = {});

  // --- worker-thread message processing ---
  // Det-zone roots: everything between "message in" and "Actions out" must
  // replay identically on every replica (scripts/check_determinism.py).
  // RT-zone roots too: the handlers run once per consensus message on the
  // single-owner worker thread, so they may not heap-allocate beyond
  // container growth, block, or copy-amplify (scripts/check_hotpath.py).
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_preprepare(const Message& msg);
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_prepare(const Message& msg);
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_commit(const Message& msg);
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_view_change(const Message& msg);
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_new_view(const Message& msg);

  // --- checkpoint-thread processing ---
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_checkpoint(const Message& msg);

  /// The fabric reports the signature it attached to this replica's own
  /// Commit for `seq`, completing the 2f+1-signature block certificate.
  void note_own_commit_signature(SeqNum seq, Bytes signature);

  // --- execute-thread notification ---
  /// Called after the fabric finished executing batch `seq`;
  /// `state_digest` is the chain accumulator after appending its block and
  /// `exec_digest` the execution fingerprint of the interval ending at `seq`
  /// (zero when the fabric does not compute fingerprints — the divergence
  /// tripwire disarms itself then, so simulator fabrics need no changes).
  RDB_DETERMINISTIC
  Actions on_executed(SeqNum seq, const Digest& state_digest,
                      const Digest& exec_digest = Digest{});

  // --- timers ---
  /// Timer ids are sequence numbers of pending batches. Timeouts are
  /// ordinary events in the det zone: a stale or duplicate expiry (slot
  /// committed, slot erased by a view change, view change already running)
  /// is absorbed and counted, never a state change.
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_timeout(std::uint64_t timer_id);

  /// A backup forwarded a client request to the primary and the primary made
  /// no progress before the timer fired: demand a view change. (The PBFT
  /// liveness rule for a dead/silent primary that never sends Pre-prepares,
  /// so no per-sequence timer exists.)
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_client_request_timeout();

  // --- catch-up (state transfer within the retention window) ---
  /// Periodic poll by the fabric: if this replica can prove the cluster
  /// committed sequences it cannot execute (a committed slot or stable
  /// checkpoint above a gap), ask peers for the missing batches.
  RDB_DETERMINISTIC RDB_HOT_PATH Actions maybe_request_catchup();
  /// Peer side: answer with the executed batches still retained.
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_batch_request(const Message& msg);
  /// Lagging side: adopt a batch if its digest matches our own commit-quorum
  /// evidence, or once f+1 distinct peers vouch for the same (seq, digest).
  /// The fabric MUST have validated digest(txns) == entry.digest first.
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_batch_response(const Message& msg);

  // --- snapshot state transfer (rejoin below the retention window) ---
  /// Crash recovery: seed the engine from durable state BEFORE any message
  /// is delivered (the fabric calls this once, at construction time).
  void restore(ViewId view, SeqNum last_executed, SeqNum stable);
  /// The fabric verified and applied a snapshot image at `seq` (f+1 peers
  /// vouched, digests matched): fast-forward past it. Returns ExecuteActions
  /// for any committed tail already buffered above the image. No-op when the
  /// gap closed naturally (seq <= last_executed()).
  Actions install_snapshot(SeqNum seq);
  /// Highest sequence with f+1 checkpoint votes: at least one honest replica
  /// executed it, so the CLUSTER's stable checkpoint is at least here even
  /// though this replica may lack the 2f+1 for local stability.
  SeqNum cluster_stable_hint() const { return cluster_stable_hint_; }

  // --- introspection (tests, metrics, model checking) ---
  /// Canonical fingerprint of the full protocol state: every field that can
  /// influence a future transition, serialized in a fixed order and hashed.
  /// Two engine instances with equal digests behave identically on every
  /// future input — the property the model checker's state dedup relies on.
  /// Metrics are excluded (they never feed back into transitions).
  RDB_DETERMINISTIC Digest state_digest() const;

  const PbftMetrics& metrics() const { return metrics_; }
  SeqNum last_executed() const { return last_executed_; }
  /// Next sequence number a (new) primary should assign.
  SeqNum suggest_next_seq() const {
    SeqNum hi = last_executed_;
    if (!slots_.empty()) hi = std::max(hi, slots_.rbegin()->first);
    return hi + 1;
  }
  SeqNum stable_checkpoint() const { return stable_seq_; }
  bool in_view_change() const { return in_view_change_; }
  std::size_t live_slots() const { return slots_.size(); }

 private:
  struct Slot {
    ViewId view{0};
    bool have_preprepare{false};
    Digest digest{};
    std::vector<Transaction> txns;
    std::uint64_t txn_begin{0};
    // Votes are keyed by the digest they endorse. Prepares/commits can
    // arrive BEFORE the pre-prepare; pooling them in one digest-blind set
    // would let an equivocating primary count votes for digest B toward
    // digest A's quorum (found by the model checker — see
    // tests/corpus/mc/). Only the bucket matching the accepted pre-prepare
    // digest is consulted by the quorum checks.
    std::map<Digest, std::set<ReplicaId>> prepares;
    std::map<Digest, std::set<ReplicaId>> commits;
    std::map<Digest, std::map<ReplicaId, Bytes>> commit_sigs;
    bool sent_prepare{false};
    bool sent_commit{false};
    bool committed{false};
    bool executed{false};
  };

  Slot& slot(SeqNum seq);
  bool in_window(SeqNum seq) const;
  Actions maybe_prepared(SeqNum seq, Slot& s);
  Actions maybe_committed(SeqNum seq, Slot& s);
  void drain_executable(Actions& out);
  Message own(Payload payload) const;
  Actions start_view_change(ViewId target);
  Actions enter_view(ViewId v, std::vector<PreparedProof> reproposals,
                     SeqNum stable_seq);

  PbftConfig config_;
  ViewId view_{0};
  bool in_view_change_{false};
  ViewId pending_view_{0};

  std::map<SeqNum, Slot> slots_;
  SeqNum last_executed_{0};
  SeqNum stable_seq_{0};

  // checkpoint voting: seq -> digest -> voters
  std::map<SeqNum, std::map<Digest, std::set<ReplicaId>>> checkpoint_votes_;

  // Execution-fingerprint tripwire (stability itself stays keyed on the
  // state digest: a byzantine minority must not be able to block stability
  // by lying about fingerprints).
  // Our own (state digest, exec fingerprint) per checkpoint boundary...
  std::map<SeqNum, std::pair<Digest, Digest>> own_exec_;
  // ...and, per boundary, the peers that matched our state digest but voted
  // a DIFFERENT fingerprint, grouped by the fingerprint they voted.
  std::map<SeqNum, std::map<Digest, std::set<ReplicaId>>> exec_mismatch_;
  std::set<SeqNum> exec_divergence_fired_;

  // view-change voting: new_view -> sender -> message
  std::map<ViewId, std::map<ReplicaId, ViewChange>> view_change_votes_;

  // catch-up: seq -> digest -> peers vouching for it
  std::map<SeqNum, std::map<Digest, std::set<ReplicaId>>> catchup_votes_;
  SeqNum catchup_requested_upto_{0};
  /// Consecutive catch-up polls spent waiting on an in-flight request;
  /// after a few the request dedup re-arms (the response may be lost).
  int catchup_idle_polls_{0};

  /// Snapshot rejoin: f+1 checkpoint-vote evidence of cluster stability,
  /// and how many consecutive catch-up polls the snapshot-only gap has
  /// persisted (debounces the slowest-healthy-replica false positive).
  SeqNum cluster_stable_hint_{0};
  int snapshot_stall_polls_{0};

  PbftMetrics metrics_;
};

}  // namespace rdb::protocol
