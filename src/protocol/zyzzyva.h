// Zyzzyva speculative BFT engine (Kotla et al., SOSP'07) — the paper's
// comparator protocol (§2.1 "Speculative Execution", §5.2, §5.10).
//
// Single linear phase: the primary orders a batch with an OrderRequest;
// every replica speculatively executes it in sequence order and answers the
// client directly with a SpecResponse carrying a hash-chained history digest.
// The *client* completes a request when it holds 3f+1 matching responses
// (fast path). With as few as 2f+1 matching responses it must, after a
// timeout, broadcast a CommitCert and gather f+1 LocalCommit acks — which is
// exactly why one crashed backup collapses Zyzzyva's throughput (Figure 17):
// every request then rides the timeout.
//
// The client-side completion logic lives in the fabric's client model; this
// engine implements the replica side.
#pragma once

#include <map>
#include <set>

#include "common/det.h"
#include "common/rtzone.h"
#include "protocol/actions.h"
#include "protocol/messages.h"

namespace rdb::protocol {

struct ZyzzyvaConfig {
  std::uint32_t n{4};
  ReplicaId self{0};
  SeqNum checkpoint_interval{100};
  SeqNum window{20000};
};

struct ZyzzyvaMetrics {
  std::uint64_t order_requests_sent{0};
  std::uint64_t spec_executions{0};
  std::uint64_t commit_certs_accepted{0};
  std::uint64_t rejected_msgs{0};
  /// Timer expirations absorbed as no-ops (this engine's view change is out
  /// of scope, so every timeout is absorbed — without a state change).
  std::uint64_t stale_timeouts{0};
};

class ZyzzyvaEngine {
 public:
  explicit ZyzzyvaEngine(ZyzzyvaConfig config);

  ViewId view() const { return view_; }
  ReplicaId primary() const { return view_ % config_.n; }
  bool is_primary() const { return primary() == config_.self; }
  std::uint32_t f() const { return max_faulty(config_.n); }

  /// Primary: order a batch. Chains the history digest and broadcasts an
  /// OrderRequest (self-delivery included, as with PBFT pre-prepares).
  /// MUST be called with strictly consecutive sequence numbers: Zyzzyva's
  /// history digest is a hash chain, so ordering — unlike PBFT pre-prepares
  /// (§4.5) — cannot be emitted out of order. Calls with a gap are rejected.
  Actions make_order_request(SeqNum seq, std::vector<Transaction> txns,
                             std::uint64_t txn_begin,
                             const Digest& batch_digest);

  /// Replica: speculative execution path. Accepts only the contiguous next
  /// sequence number; later ones are buffered until the hole fills.
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_order_request(const Message& msg);

  /// Replica: client sent a 2f+1 commit certificate (slow path).
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_commit_cert(const Message& msg);

  /// Execute-thread notification (checkpoint emission, as in PBFT).
  /// `exec_digest` rides on the checkpoint vote (zero = no fingerprints).
  RDB_DETERMINISTIC
  Actions on_executed(SeqNum seq, const Digest& state_digest,
                      const Digest& exec_digest = Digest{});
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_checkpoint(const Message& msg);

  /// Timeout-as-event handling: the client drives Zyzzyva's slow path and
  /// the view change is out of scope here, so a replica-side timer expiry —
  /// stale, duplicated, or replayed mid-stream — is absorbed as a counted
  /// no-op. It must NEVER mutate protocol state; the model checker's
  /// fingerprint dedup and tests/zyzzyva_test.cpp pin that down.
  RDB_DETERMINISTIC RDB_HOT_PATH Actions on_timeout(std::uint64_t timer_id);

  /// Canonical fingerprint of the full protocol state (model-checker state
  /// dedup; metrics excluded). See PbftEngine::state_digest.
  RDB_DETERMINISTIC Digest state_digest() const;

  const ZyzzyvaMetrics& metrics() const { return metrics_; }
  SeqNum last_spec_executed() const { return last_spec_; }
  SeqNum committed_seq() const { return committed_seq_; }
  const Digest& history() const { return history_; }
  Digest history_at(SeqNum seq) const;

 private:
  Actions accept_order(const OrderRequest& oreq);

  ZyzzyvaConfig config_;
  ViewId view_{0};
  SeqNum primary_next_{1};     // next seq the primary may order
  Digest primary_history_{};   // primary-side history chain
  SeqNum last_spec_{0};
  SeqNum committed_seq_{0};
  Digest history_{};                       // chained digest after last_spec_
  std::map<SeqNum, Digest> history_log_;   // seq -> history digest
  std::map<SeqNum, OrderRequest> pending_; // out-of-order buffer
  std::map<SeqNum, std::map<Digest, std::set<ReplicaId>>> checkpoint_votes_;
  SeqNum stable_seq_{0};
  ZyzzyvaMetrics metrics_;
};

}  // namespace rdb::protocol
