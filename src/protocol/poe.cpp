#include "protocol/poe.h"

#include "crypto/sha256.h"

namespace rdb::protocol {

PoeEngine::PoeEngine(PoeConfig config) : config_(config) {}

Message PoeEngine::own(Payload payload) const {
  Message m;
  m.from = Endpoint::replica(config_.self);
  m.payload = std::move(payload);
  return m;
}

PoeEngine::Slot& PoeEngine::slot(SeqNum seq) {
  auto it = slots_.find(seq);
  if (it == slots_.end()) {
    it = slots_.emplace(seq, Slot{}).first;
    it->second.view = view_;
  }
  return it->second;
}

bool PoeEngine::in_window(SeqNum seq) const {
  return seq > last_executed_ && seq <= stable_seq_ + config_.window;
}

Actions PoeEngine::make_propose(SeqNum seq, std::vector<Transaction> txns,
                                std::uint64_t txn_begin,
                                const Digest& batch_digest) {
  Actions out;
  if (!is_primary() || !in_window(seq)) {
    ++metrics_.rejected_msgs;
    return out;
  }
  PrePrepare propose;  // PoE's Propose rides the PrePrepare wire shape
  propose.view = view_;
  propose.seq = seq;
  propose.batch_digest = batch_digest;
  propose.txns = std::move(txns);
  propose.txn_begin = txn_begin;
  ++metrics_.proposes_sent;
  out.push_back(BroadcastAction{own(std::move(propose)),
                                /*include_self=*/true});
  return out;
}

Actions PoeEngine::on_propose(const Message& msg) {
  Actions out;
  // get_if, not get: a mis-routed payload is a counted reject, not a throw
  // (defense in depth under the wire-taint discipline — validate.h).
  const auto* pptr = std::get_if<PrePrepare>(&msg.payload);
  if (!pptr) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& p = *pptr;
  if (msg.from.kind != Endpoint::Kind::kReplica ||
      msg.from.id != (p.view % config_.n) || p.view != view_ ||
      !in_window(p.seq)) {
    ++metrics_.rejected_msgs;
    return out;
  }
  Slot& s = slot(p.seq);
  if (s.have_propose) {
    if (s.digest != p.batch_digest) ++metrics_.rejected_msgs;
    return out;  // duplicate or equivocation: only the first counts
  }
  s.have_propose = true;
  s.view = p.view;
  s.digest = p.batch_digest;
  s.txns = p.txns;
  s.txn_begin = p.txn_begin;
  // The primary's propose carries its support.
  s.supports[p.batch_digest].insert(msg.from.id);

  if (!is_primary()) {
    Prepare support;  // PoE's Support rides the Prepare wire shape
    support.view = p.view;
    support.seq = p.seq;
    support.batch_digest = p.batch_digest;
    s.supports[p.batch_digest].insert(config_.self);
    s.sent_support = true;
    ++metrics_.supports_sent;
    out.push_back(BroadcastAction{own(support)});
  }
  auto more = maybe_supported(p.seq, s);
  out.insert(out.end(), more.begin(), more.end());
  return out;
}

Actions PoeEngine::on_support(const Message& msg) {
  Actions out;
  const auto* supp = std::get_if<Prepare>(&msg.payload);
  if (!supp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& sup = *supp;
  if (msg.from.kind != Endpoint::Kind::kReplica || sup.view != view_ ||
      !in_window(sup.seq) || msg.from.id == (sup.view % config_.n)) {
    ++metrics_.rejected_msgs;
    return out;
  }
  Slot& s = slot(sup.seq);
  if (s.have_propose && s.digest != sup.batch_digest) {
    ++metrics_.rejected_msgs;
    return out;
  }
  // Key the vote by the digest it endorses (see Slot::supports).
  s.supports[sup.batch_digest].insert(msg.from.id);
  return maybe_supported(sup.seq, s);
}

Actions PoeEngine::maybe_supported(SeqNum seq, Slot& s) {
  (void)seq;
  Actions out;
  // 2f+1 supports (propose counts as the primary's) guarantee that every
  // quorum intersects this one in a non-faulty replica: the order is safe
  // to execute speculatively. Only votes matching the propose digest count.
  if (s.supported || !s.have_propose) return out;
  auto votes = s.supports.find(s.digest);
  if (votes == s.supports.end() ||
      votes->second.size() < commit_quorum(config_.n))
    return out;
  // A backup that never agreed itself (no propose processed) cannot execute.
  if (!s.sent_support && !is_primary()) return out;
  s.supported = true;
  drain_executable(out);
  return out;
}

void PoeEngine::drain_executable(Actions& out) {
  for (;;) {
    auto it = slots_.find(last_executed_ + 1);
    if (it == slots_.end() || !it->second.supported || it->second.executed)
      break;
    Slot& s = it->second;
    s.executed = true;
    ++last_executed_;
    ++metrics_.batches_executed;

    ExecuteAction ex;
    ex.seq = last_executed_;
    ex.view = s.view;
    ex.batch_digest = s.digest;
    ex.txns = s.txns;
    ex.txn_begin = s.txn_begin;
    ex.speculative = true;  // PoE executes before global commitment
    out.push_back(std::move(ex));
  }
}

Actions PoeEngine::on_executed(SeqNum seq, const Digest& state_digest,
                               const Digest& exec_digest) {
  Actions out;
  if (config_.checkpoint_interval == 0 ||
      seq % config_.checkpoint_interval != 0)
    return out;
  Checkpoint cp;
  cp.seq = seq;
  cp.state_digest = state_digest;
  cp.exec_digest = exec_digest;
  checkpoint_votes_[seq][state_digest].insert(config_.self);
  out.push_back(BroadcastAction{own(cp)});
  return out;
}

Actions PoeEngine::on_checkpoint(const Message& msg) {
  Actions out;
  const auto* cpp = std::get_if<Checkpoint>(&msg.payload);
  if (!cpp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& cp = *cpp;
  if (msg.from.kind != Endpoint::Kind::kReplica || cp.seq <= stable_seq_)
    return out;
  auto& voters = checkpoint_votes_[cp.seq][cp.state_digest];
  voters.insert(msg.from.id);
  if (voters.size() < commit_quorum(config_.n)) return out;
  stable_seq_ = cp.seq;
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.upper_bound(cp.seq));
  for (auto it = slots_.begin();
       it != slots_.end() && it->first <= stable_seq_;) {
    if (it->second.executed) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
  out.push_back(StableCheckpointAction{cp.seq});
  return out;
}

Actions PoeEngine::on_timeout(std::uint64_t timer_id) {
  // No view change in this engine (header comment): every timer expiry —
  // including duplicates and expiries for long-gone slots — is absorbed
  // without touching protocol state. state_digest() before == after.
  (void)timer_id;
  ++metrics_.stale_timeouts;
  return {};
}

Digest PoeEngine::state_digest() const {
  Writer w;
  w.u32(config_.n);
  w.u32(config_.self);
  w.u64(config_.checkpoint_interval);
  w.u64(config_.window);
  w.u64(view_);
  w.u64(last_executed_);
  w.u64(stable_seq_);

  auto put_voters = [&w](const std::map<Digest, std::set<ReplicaId>>& votes) {
    w.u32(static_cast<std::uint32_t>(votes.size()));
    for (const auto& [digest, voters] : votes) {
      w.digest(digest);
      w.u32(static_cast<std::uint32_t>(voters.size()));
      for (ReplicaId r : voters) w.u32(r);
    }
  };

  w.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const auto& [seq, s] : slots_) {
    w.u64(seq);
    w.u64(s.view);
    w.u8(s.have_propose ? 1 : 0);
    w.digest(s.digest);
    w.u32(static_cast<std::uint32_t>(s.txns.size()));
    for (const auto& t : s.txns) t.serialize(w);
    w.u64(s.txn_begin);
    put_voters(s.supports);
    w.u8(s.sent_support ? 1 : 0);
    w.u8(s.supported ? 1 : 0);
    w.u8(s.executed ? 1 : 0);
  }

  w.u32(static_cast<std::uint32_t>(checkpoint_votes_.size()));
  for (const auto& [seq, votes] : checkpoint_votes_) {
    w.u64(seq);
    put_voters(votes);
  }
  return crypto::sha256(BytesView(w.data()));
}

}  // namespace rdb::protocol
