// The single door between the wire and the protocol engines.
//
// Every frame a transport delivers is attacker-controlled (§2.2: a malicious
// primary or client chooses every byte). Message::parse therefore returns
// Untrusted<Message> — fields sealed — and THIS module is the only code
// allowed to open it (scripts/check_static.sh, check_taint stage). The
// validators below apply the per-type structural + semantic catalog
// (docs/static_analysis.md, "Input taint discipline") and mint
// Validated<Message> on success, or a RejectReason that callers must count
// (ReplicaStats::rejected_messages) — rejects are observable, never silent.
//
// Scope: validators check everything knowable WITHOUT keys or engine state
// beyond a coarse (view, committed-seq) window — structure, sender-kind
// rules, size bounds, quorum arithmetic, signer distinctness. Signature
// verification stays in the replica's verify/worker threads (it needs the
// crypto provider and is the expensive step the paper parallelizes, §4.4);
// the engines keep their exact-window/equivocation checks, which need full
// protocol state.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/untrusted.h"
#include "protocol/messages.h"

namespace rdb::protocol {

/// Why a frame was rejected. One counter per reason
/// (ReplicaStats::rejected_messages) so chaos drills can assert rejects are
/// counted, not silently dropped.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  // Structural (from Message::parse).
  kMalformed,       // truncated, length lie, or unknown type byte
  kTrailingBytes,   // parsed fine but bytes remain: not canonical
  // Envelope.
  kBadEndpoint,          // from.kind byte names no known endpoint kind
  kSenderKindMismatch,   // e.g. a "client request" claiming a replica sender
  kReplicaIdOutOfRange,  // replica sender id >= n
  kBadSignatureLength,   // signature absurdly long (> limits.max_sig_bytes)
  // Size bounds.
  kBatchTooLarge,    // more txns than limits.max_batch_txns
  kPayloadTooLarge,  // a txn payload / padding / checkpoint blob over bounds
  kEmptyRequest,     // ClientRequest with zero transactions
  kBadOpsCount,      // txn claims 0 or absurdly many operations
  // Window sanity (coarse; engines do the exact checks).
  kViewOutOfWindow,  // view beyond current_view + limits.view_slack
  kSeqOutOfWindow,   // seq beyond committed_seq + limits.seq_window
  // Certificates.
  kQuorumTooSmall,    // CommitCert with fewer than 2f+1 signers
  kDuplicateSigner,   // CommitCert lists the same replica twice
  kTooManyProofs,     // ViewChange/NewView proof list over bounds
  kDuplicateProofSeq, // two prepared proofs for the same sequence number
  // Catch-up.
  kBadCatchupRange,  // begin > end, or span over limits.max_catchup_span
  // Routing.
  kUnexpectedType,  // type not in the caller's accept mask
  kCount,           // number of reasons (array sizing) — not a reason
};

/// Stable short name for a reason, for stats lines and logs.
const char* reject_reason_name(RejectReason r);

/// Bit for `type` in ValidationContext::accept_mask.
constexpr std::uint32_t accept_bit(MsgType t) {
  return 1u << static_cast<std::uint32_t>(t);
}

/// Size/shape bounds. Defaults are deliberately generous — an order of
/// magnitude above anything the engines generate — so legitimate traffic is
/// never rejected; they exist to stop resource-exhaustion frames, not to
/// tune the protocol.
struct ValidationLimits {
  std::uint32_t max_batch_txns{65536};
  std::uint64_t max_txn_payload{1u << 20};        // 1 MiB per txn
  std::uint64_t max_payload_padding{16u << 20};   // 16 MiB (Figure 12 sweeps)
  std::uint32_t max_txn_ops{65536};
  std::uint32_t max_sig_bytes{256};               // Ed25519 is 64
  std::uint32_t max_proofs{4096};                 // per ViewChange/NewView
  std::uint64_t max_catchup_span{65536};          // BatchRequest end - begin
  std::uint64_t seq_window{1'000'000};            // beyond committed frontier
  std::uint64_t view_slack{1'000'000};            // beyond current view
  std::uint64_t max_checkpoint_block_bytes{1u << 30};
  std::uint64_t max_snapshot_bytes{64u << 20};    // snapshot blob AND raw size
};

/// What the validator knows about the receiving node. `n` sizes the quorum
/// and replica-id checks; (current_view, committed_seq) anchor the coarse
/// windows; accept_mask (0 = accept every type) lets a caller that only
/// expects certain messages (e.g. a client waiting for responses) reject
/// everything else with kUnexpectedType.
struct ValidationContext {
  std::uint32_t n{4};
  ViewId current_view{0};
  SeqNum committed_seq{0};
  std::uint32_t accept_mask{0};  // 0 = all types accepted
  const ValidationLimits* limits{nullptr};  // nullptr = defaults
};

/// Outcome: exactly one of `msg` (engaged, reason == kNone) or a reason.
struct ValidationResult {
  std::optional<Validated<Message>> msg;
  RejectReason reason{RejectReason::kNone};

  bool ok() const { return msg.has_value(); }
};

/// Parse + validate in one step. This is the ONLY sanctioned caller of
/// Message::parse — see the check_taint gate; everything reading frames off a
/// transport goes through here.
ValidationResult validate_wire(BytesView wire, const ValidationContext& ctx);

/// Validate an already-parsed (still tainted) message. Split out so the
/// fuzzer can exercise parse and validation independently.
ValidationResult validate_message(Untrusted<Message> um,
                                  const ValidationContext& ctx);

}  // namespace rdb::protocol
