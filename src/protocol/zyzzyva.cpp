#include "protocol/zyzzyva.h"

#include "crypto/sha256.h"

namespace rdb::protocol {

namespace {
Digest chain_history(const Digest& prev, const Digest& batch_digest) {
  crypto::Sha256 h;
  h.update(BytesView(prev.data));
  h.update(BytesView(batch_digest.data));
  return h.finish();
}
}  // namespace

ZyzzyvaEngine::ZyzzyvaEngine(ZyzzyvaConfig config) : config_(config) {
  history_log_[0] = history_;
}

Actions ZyzzyvaEngine::make_order_request(SeqNum seq,
                                          std::vector<Transaction> txns,
                                          std::uint64_t txn_begin,
                                          const Digest& batch_digest) {
  Actions out;
  if (!is_primary() || seq != primary_next_ ||
      seq > stable_seq_ + config_.window) {
    ++metrics_.rejected_msgs;
    return out;
  }
  ++primary_next_;
  primary_history_ = chain_history(primary_history_, batch_digest);
  OrderRequest oreq;
  oreq.view = view_;
  oreq.seq = seq;
  oreq.batch_digest = batch_digest;
  oreq.history = primary_history_;
  oreq.txns = std::move(txns);
  oreq.txn_begin = txn_begin;
  ++metrics_.order_requests_sent;

  Message m;
  m.from = Endpoint::replica(config_.self);
  m.payload = std::move(oreq);
  out.push_back(BroadcastAction{std::move(m), /*include_self=*/true});
  return out;
}

Digest ZyzzyvaEngine::history_at(SeqNum seq) const {
  auto it = history_log_.find(seq);
  return it != history_log_.end() ? it->second : Digest{};
}

Actions ZyzzyvaEngine::on_order_request(const Message& msg) {
  Actions out;
  // get_if, not get: a mis-routed payload is a counted reject, not a throw
  // (defense in depth under the wire-taint discipline — validate.h).
  const auto* oreqp = std::get_if<OrderRequest>(&msg.payload);
  if (!oreqp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& oreq = *oreqp;
  if (msg.from.kind != Endpoint::Kind::kReplica ||
      msg.from.id != primary() || oreq.view != view_ ||
      oreq.seq <= last_spec_) {
    ++metrics_.rejected_msgs;
    return out;
  }
  if (oreq.seq != last_spec_ + 1) {
    // Hole: buffer until the preceding order requests arrive.
    pending_.emplace(oreq.seq, oreq);
    return out;
  }
  out = accept_order(oreq);
  // Drain any buffered successors that are now contiguous.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == last_spec_ + 1;) {
    auto more = accept_order(it->second);
    out.insert(out.end(), more.begin(), more.end());
    it = pending_.erase(it);
  }
  return out;
}

Actions ZyzzyvaEngine::accept_order(const OrderRequest& oreq) {
  Actions out;
  Digest expected = chain_history(history_, oreq.batch_digest);
  if (expected != oreq.history) {
    // Primary equivocated about the history; a full implementation would
    // trigger a view change here.
    ++metrics_.rejected_msgs;
    return out;
  }
  history_ = expected;
  last_spec_ = oreq.seq;
  history_log_[oreq.seq] = history_;
  ++metrics_.spec_executions;

  // Speculative execution (§2.1): execute immediately, before any agreement.
  ExecuteAction ex;
  ex.seq = oreq.seq;
  ex.view = oreq.view;
  ex.batch_digest = oreq.batch_digest;
  ex.txns = oreq.txns;
  ex.txn_begin = oreq.txn_begin;
  ex.speculative = true;
  out.push_back(std::move(ex));

  // Respond to every client in the batch with the chained history digest.
  std::set<ClientId> seen;
  for (const auto& txn : oreq.txns) {
    if (!seen.insert(txn.client).second) continue;
    SpecResponse sr;
    sr.view = oreq.view;
    sr.seq = oreq.seq;
    sr.history = history_;
    sr.client = txn.client;
    sr.req_id = txn.req_id;
    sr.replica = config_.self;
    Message m;
    m.from = Endpoint::replica(config_.self);
    m.payload = sr;
    out.push_back(SendAction{Endpoint::client(txn.client), std::move(m)});
  }
  return out;
}

Actions ZyzzyvaEngine::on_commit_cert(const Message& msg) {
  Actions out;
  const auto* ccp = std::get_if<CommitCert>(&msg.payload);
  if (!ccp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& cc = *ccp;
  // A certificate is 2f+1 DISTINCT in-range replicas: duplicate or phantom
  // signer ids would fake a quorum from fewer than 2f+1 real replicas.
  std::set<ReplicaId> distinct(cc.signers.begin(), cc.signers.end());
  bool signers_ok = distinct.size() == cc.signers.size() &&
                    (distinct.empty() || *distinct.rbegin() < config_.n);
  if (msg.from.kind != Endpoint::Kind::kClient || !signers_ok ||
      cc.signers.size() < commit_quorum(config_.n) || cc.seq > last_spec_ ||
      history_at(cc.seq) != cc.history) {
    ++metrics_.rejected_msgs;
    return out;
  }
  if (cc.seq > committed_seq_) committed_seq_ = cc.seq;
  ++metrics_.commit_certs_accepted;

  LocalCommit lc;
  lc.view = cc.view;
  lc.seq = cc.seq;
  lc.replica = config_.self;
  lc.client = msg.from.id;
  Message m;
  m.from = Endpoint::replica(config_.self);
  m.payload = lc;
  out.push_back(SendAction{Endpoint::client(msg.from.id), std::move(m)});
  return out;
}

Actions ZyzzyvaEngine::on_executed(SeqNum seq, const Digest& state_digest,
                                   const Digest& exec_digest) {
  Actions out;
  if (config_.checkpoint_interval == 0 ||
      seq % config_.checkpoint_interval != 0)
    return out;
  Checkpoint cp;
  cp.seq = seq;
  cp.state_digest = state_digest;
  cp.exec_digest = exec_digest;
  checkpoint_votes_[seq][state_digest].insert(config_.self);
  Message m;
  m.from = Endpoint::replica(config_.self);
  m.payload = cp;
  out.push_back(BroadcastAction{std::move(m)});
  return out;
}

Actions ZyzzyvaEngine::on_timeout(std::uint64_t timer_id) {
  // The slow path is client-driven (CommitCert) and the view change is out
  // of scope: absorb every replica-side expiry without touching state.
  (void)timer_id;
  ++metrics_.stale_timeouts;
  return {};
}

Digest ZyzzyvaEngine::state_digest() const {
  Writer w;
  w.u32(config_.n);
  w.u32(config_.self);
  w.u64(config_.checkpoint_interval);
  w.u64(config_.window);
  w.u64(view_);
  w.u64(primary_next_);
  w.digest(primary_history_);
  w.u64(last_spec_);
  w.u64(committed_seq_);
  w.digest(history_);
  w.u64(stable_seq_);
  w.u32(static_cast<std::uint32_t>(history_log_.size()));
  for (const auto& [seq, digest] : history_log_) {
    w.u64(seq);
    w.digest(digest);
  }
  w.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [seq, oreq] : pending_) {
    w.u64(seq);
    oreq.serialize(w);
  }
  w.u32(static_cast<std::uint32_t>(checkpoint_votes_.size()));
  for (const auto& [seq, votes] : checkpoint_votes_) {
    w.u64(seq);
    w.u32(static_cast<std::uint32_t>(votes.size()));
    for (const auto& [digest, voters] : votes) {
      w.digest(digest);
      w.u32(static_cast<std::uint32_t>(voters.size()));
      for (ReplicaId r : voters) w.u32(r);
    }
  }
  return crypto::sha256(BytesView(w.data()));
}

Actions ZyzzyvaEngine::on_checkpoint(const Message& msg) {
  Actions out;
  const auto* cpp = std::get_if<Checkpoint>(&msg.payload);
  if (!cpp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& cp = *cpp;
  if (msg.from.kind != Endpoint::Kind::kReplica || cp.seq <= stable_seq_)
    return out;
  auto& voters = checkpoint_votes_[cp.seq][cp.state_digest];
  voters.insert(msg.from.id);
  if (voters.size() < commit_quorum(config_.n)) return out;
  stable_seq_ = cp.seq;
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.upper_bound(cp.seq));
  history_log_.erase(history_log_.begin(),
                     history_log_.lower_bound(cp.seq));
  out.push_back(StableCheckpointAction{cp.seq});
  return out;
}

}  // namespace rdb::protocol
