// Validators for wire messages (see validate.h for the contract).
//
// THIS is the one translation unit allowed to open Untrusted<T> — every
// `.unsafe_get()` / `.unsafe_release()` below is inside the taint boundary
// that scripts/check_static.sh (check_taint) encloses. Keep the pattern
// uniform: read tainted fields, check, and only mint Validated<Message> after
// the last check passed.

#include "protocol/validate.h"

#include <algorithm>
#include <vector>

#include "common/types.h"

namespace rdb::protocol {

namespace {

const ValidationLimits kDefaultLimits{};

/// Per-call helper bundling the context and the running verdict.
struct Checker {
  const ValidationContext& ctx;
  const ValidationLimits& lim;

  // -- primitive checks; each returns the reason or kNone ----------------

  RejectReason view_in_window(ViewId v) const {
    // Views only matter going forward: a stale view is the engine's business
    // (it drops or buffers), but a view absurdly far in the future is an
    // attacker trying to wedge the view-change machinery.
    if (v > ctx.current_view + lim.view_slack)
      return RejectReason::kViewOutOfWindow;
    return RejectReason::kNone;
  }

  RejectReason seq_in_window(SeqNum s) const {
    // No lower bound: late messages for executed sequences are normal and
    // the engines ignore them. The upper bound stops frames that would make
    // a replica reserve state for sequences it can never reach.
    if (s > ctx.committed_seq + lim.seq_window)
      return RejectReason::kSeqOutOfWindow;
    return RejectReason::kNone;
  }

  RejectReason check_txn(const Transaction& t) const {
    if (t.ops == 0 || t.ops > lim.max_txn_ops)
      return RejectReason::kBadOpsCount;
    if (t.payload.size() > lim.max_txn_payload)
      return RejectReason::kPayloadTooLarge;
    if (t.client_sig.size() > lim.max_sig_bytes)
      return RejectReason::kBadSignatureLength;
    return RejectReason::kNone;
  }

  RejectReason check_txns(const std::vector<Transaction>& txns,
                          bool allow_empty) const {
    if (!allow_empty && txns.empty()) return RejectReason::kEmptyRequest;
    if (txns.size() > lim.max_batch_txns) return RejectReason::kBatchTooLarge;
    for (const auto& t : txns) {
      RejectReason r = check_txn(t);
      if (r != RejectReason::kNone) return r;
    }
    return RejectReason::kNone;
  }

  RejectReason check_proofs(const std::vector<PreparedProof>& proofs) const {
    if (proofs.size() > lim.max_proofs) return RejectReason::kTooManyProofs;
    std::vector<SeqNum> seqs;
    seqs.reserve(proofs.size());
    for (const auto& p : proofs) {
      RejectReason r = view_in_window(p.view);
      if (r != RejectReason::kNone) return r;
      r = seq_in_window(p.seq);
      if (r != RejectReason::kNone) return r;
      // Re-proposed batches may legitimately be empty (a null batch filling
      // a hole), so allow_empty here.
      r = check_txns(p.txns, /*allow_empty=*/true);
      if (r != RejectReason::kNone) return r;
      seqs.push_back(p.seq);
    }
    std::sort(seqs.begin(), seqs.end());
    if (std::adjacent_find(seqs.begin(), seqs.end()) != seqs.end())
      return RejectReason::kDuplicateProofSeq;
    return RejectReason::kNone;
  }

  // -- per-type semantic validators --------------------------------------

  RejectReason check(const ClientRequest& m) const {
    return check_txns(m.txns, /*allow_empty=*/false);
  }

  RejectReason check(const PrePrepare& m) const {
    RejectReason r = view_in_window(m.view);
    if (r != RejectReason::kNone) return r;
    r = seq_in_window(m.seq);
    if (r != RejectReason::kNone) return r;
    if (m.payload_padding.size() > lim.max_payload_padding)
      return RejectReason::kPayloadTooLarge;
    // A zero-txn batch is legitimate: the batch threads excise transactions
    // whose client signature fails, and a null batch can fill a hole.
    return check_txns(m.txns, /*allow_empty=*/true);
  }

  RejectReason check(const Prepare& m) const {
    RejectReason r = view_in_window(m.view);
    if (r != RejectReason::kNone) return r;
    return seq_in_window(m.seq);
  }

  RejectReason check(const Commit& m) const {
    RejectReason r = view_in_window(m.view);
    if (r != RejectReason::kNone) return r;
    return seq_in_window(m.seq);
  }

  RejectReason check(const ClientResponse& m) const {
    return view_in_window(m.view);
  }

  RejectReason check(const Checkpoint& m) const {
    if (m.block_bytes > lim.max_checkpoint_block_bytes)
      return RejectReason::kPayloadTooLarge;
    return seq_in_window(m.seq);
  }

  RejectReason check(const ViewChange& m) const {
    RejectReason r = view_in_window(m.new_view);
    if (r != RejectReason::kNone) return r;
    r = seq_in_window(m.stable_seq);
    if (r != RejectReason::kNone) return r;
    return check_proofs(m.prepared);
  }

  RejectReason check(const NewView& m) const {
    RejectReason r = view_in_window(m.view);
    if (r != RejectReason::kNone) return r;
    r = seq_in_window(m.stable_seq);
    if (r != RejectReason::kNone) return r;
    return check_proofs(m.reproposals);
  }

  RejectReason check(const OrderRequest& m) const {
    RejectReason r = view_in_window(m.view);
    if (r != RejectReason::kNone) return r;
    r = seq_in_window(m.seq);
    if (r != RejectReason::kNone) return r;
    return check_txns(m.txns, /*allow_empty=*/true);
  }

  RejectReason check(const SpecResponse& m) const {
    RejectReason r = view_in_window(m.view);
    if (r != RejectReason::kNone) return r;
    r = seq_in_window(m.seq);
    if (r != RejectReason::kNone) return r;
    if (m.replica >= ctx.n) return RejectReason::kReplicaIdOutOfRange;
    return RejectReason::kNone;
  }

  RejectReason check(const CommitCert& m) const {
    RejectReason r = view_in_window(m.view);
    if (r != RejectReason::kNone) return r;
    r = seq_in_window(m.seq);
    if (r != RejectReason::kNone) return r;
    // A commit certificate is 2f+1 *distinct* replicas vouching for the same
    // history. Fewer signers, repeated signers, or phantom replica ids all
    // void the quorum-intersection argument.
    if (m.signers.size() < commit_quorum(ctx.n))
      return RejectReason::kQuorumTooSmall;
    if (m.signers.size() > ctx.n) return RejectReason::kDuplicateSigner;
    std::vector<ReplicaId> s(m.signers);
    std::sort(s.begin(), s.end());
    if (std::adjacent_find(s.begin(), s.end()) != s.end())
      return RejectReason::kDuplicateSigner;
    if (!s.empty() && s.back() >= ctx.n)
      return RejectReason::kReplicaIdOutOfRange;
    return RejectReason::kNone;
  }

  RejectReason check(const LocalCommit& m) const {
    RejectReason r = view_in_window(m.view);
    if (r != RejectReason::kNone) return r;
    r = seq_in_window(m.seq);
    if (r != RejectReason::kNone) return r;
    if (m.replica >= ctx.n) return RejectReason::kReplicaIdOutOfRange;
    return RejectReason::kNone;
  }

  RejectReason check(const BatchRequest& m) const {
    if (m.begin > m.end || m.end - m.begin > lim.max_catchup_span)
      return RejectReason::kBadCatchupRange;
    return seq_in_window(m.end);
  }

  RejectReason check(const BatchResponse& m) const {
    if (m.entries.size() > lim.max_catchup_span)
      return RejectReason::kBadCatchupRange;
    for (const auto& e : m.entries) {
      RejectReason r = view_in_window(e.view);
      if (r != RejectReason::kNone) return r;
      r = seq_in_window(e.seq);
      if (r != RejectReason::kNone) return r;
      r = check_txns(e.txns, /*allow_empty=*/true);
      if (r != RejectReason::kNone) return r;
    }
    return RejectReason::kNone;
  }

  RejectReason check(const SnapshotRequest& m) const {
    return seq_in_window(m.have);
  }

  RejectReason check(const SnapshotResponse& m) const {
    RejectReason r = seq_in_window(m.seq);
    if (r != RejectReason::kNone) return r;
    // Bound both the shipped blob and the CLAIMED decompressed size —
    // raw_bytes is the allocation the receiver makes before decompressing,
    // so an attacker must not get to pick it freely.
    if (m.blob.size() > lim.max_snapshot_bytes ||
        m.raw_bytes > lim.max_snapshot_bytes)
      return RejectReason::kPayloadTooLarge;
    return RejectReason::kNone;
  }
};

/// Which endpoint kind may originate each message type. Anything claiming
/// the wrong kind is lying about its role and gets kSenderKindMismatch
/// before any field is looked at.
Endpoint::Kind expected_sender(MsgType t) {
  switch (t) {
    case MsgType::kClientRequest:
    case MsgType::kCommitCert:  // Zyzzyva: the CLIENT assembles and forwards
      return Endpoint::Kind::kClient;
    default:
      return Endpoint::Kind::kReplica;
  }
}

}  // namespace

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kMalformed: return "malformed";
    case RejectReason::kTrailingBytes: return "trailing_bytes";
    case RejectReason::kBadEndpoint: return "bad_endpoint";
    case RejectReason::kSenderKindMismatch: return "sender_kind_mismatch";
    case RejectReason::kReplicaIdOutOfRange: return "replica_id_out_of_range";
    case RejectReason::kBadSignatureLength: return "bad_signature_length";
    case RejectReason::kBatchTooLarge: return "batch_too_large";
    case RejectReason::kPayloadTooLarge: return "payload_too_large";
    case RejectReason::kEmptyRequest: return "empty_request";
    case RejectReason::kBadOpsCount: return "bad_ops_count";
    case RejectReason::kViewOutOfWindow: return "view_out_of_window";
    case RejectReason::kSeqOutOfWindow: return "seq_out_of_window";
    case RejectReason::kQuorumTooSmall: return "quorum_too_small";
    case RejectReason::kDuplicateSigner: return "duplicate_signer";
    case RejectReason::kTooManyProofs: return "too_many_proofs";
    case RejectReason::kDuplicateProofSeq: return "duplicate_proof_seq";
    case RejectReason::kBadCatchupRange: return "bad_catchup_range";
    case RejectReason::kUnexpectedType: return "unexpected_type";
    case RejectReason::kCount: break;
  }
  return "unknown";
}

ValidationResult validate_message(Untrusted<Message> um,
                                  const ValidationContext& ctx) {
  const ValidationLimits& lim = ctx.limits ? *ctx.limits : kDefaultLimits;
  auto reject = [](RejectReason r) {
    return ValidationResult{std::nullopt, r};
  };

  // All reads below are of TAINTED data — this module is the sanctioned
  // opening point (see the check_taint gate).
  const Message& m = um.unsafe_get();

  // Envelope first: who claims to be talking, and is the claim even shaped
  // like an endpoint.
  if (m.from.kind != Endpoint::Kind::kReplica &&
      m.from.kind != Endpoint::Kind::kClient)
    return reject(RejectReason::kBadEndpoint);

  MsgType t = m.type();
  if (ctx.accept_mask != 0 && (ctx.accept_mask & accept_bit(t)) == 0)
    return reject(RejectReason::kUnexpectedType);
  if (m.from.kind != expected_sender(t))
    return reject(RejectReason::kSenderKindMismatch);
  if (m.from.kind == Endpoint::Kind::kReplica && m.from.id >= ctx.n)
    return reject(RejectReason::kReplicaIdOutOfRange);
  if (m.signature.size() > lim.max_sig_bytes)
    return reject(RejectReason::kBadSignatureLength);

  Checker c{ctx, lim};
  RejectReason r =
      std::visit([&](const auto& payload) { return c.check(payload); },
                 m.payload);
  if (r != RejectReason::kNone) return reject(r);

  // Every check passed: lift the taint. The move is the only place a wire
  // message crosses from Untrusted to Validated.
  return ValidationResult{
      Validated<Message>::trusted(std::move(um).unsafe_release()),
      RejectReason::kNone};
}

ValidationResult validate_wire(BytesView wire, const ValidationContext& ctx) {
  ParseError perr = ParseError::kNone;
  auto parsed = Message::parse(wire, &perr);
  if (!parsed) {
    RejectReason r = perr == ParseError::kTrailingBytes
                         ? RejectReason::kTrailingBytes
                         : RejectReason::kMalformed;
    return ValidationResult{std::nullopt, r};
  }
  return validate_message(*std::move(parsed), ctx);
}

}  // namespace rdb::protocol
