#include "protocol/messages.h"

#include <optional>

namespace rdb::protocol {

namespace {

void serialize_txns(Writer& w, const std::vector<Transaction>& txns) {
  w.u32(static_cast<std::uint32_t>(txns.size()));
  for (const auto& t : txns) t.serialize(w);
}

std::vector<Transaction> deserialize_txns(Reader& r) {
  std::uint32_t n = r.u32();
  std::vector<Transaction> txns;
  // Each transaction occupies >= 24 bytes on the wire; a count that cannot
  // fit in the remaining bytes is a length lie. Mark the stream FAILED —
  // returning an empty vector with ok() still true would let a truncated or
  // hostile frame parse as a valid message with zero transactions
  // (accept-on-truncation).
  if (!r.ok() || static_cast<std::uint64_t>(n) * 20 > r.remaining() + 20) {
    r.fail();
    return txns;
  }
  txns.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i)
    txns.push_back(Transaction::deserialize(r));
  return txns;
}

std::size_t txns_wire_size(const std::vector<Transaction>& txns) {
  std::size_t total = 4;
  for (const auto& t : txns) total += t.wire_size();
  return total;
}

}  // namespace

void Transaction::serialize(Writer& w) const {
  w.u32(client);
  w.u64(req_id);
  w.u32(ops);
  w.bytes(BytesView(payload));
  w.bytes(BytesView(client_sig));
}

Transaction Transaction::deserialize(Reader& r) {
  Transaction t;
  t.client = r.u32();
  t.req_id = r.u64();
  t.ops = r.u32();
  t.payload = r.bytes();
  t.client_sig = r.bytes();
  return t;
}

Bytes Transaction::signing_bytes() const {
  Writer w;
  w.u32(client);
  w.u64(req_id);
  w.u32(ops);
  w.bytes(BytesView(payload));
  return w.take();
}

void ClientRequest::serialize(Writer& w) const {
  serialize_txns(w, txns);
  w.u64(sent_at);
}

ClientRequest ClientRequest::deserialize(Reader& r) {
  ClientRequest c;
  c.txns = deserialize_txns(r);
  c.sent_at = r.u64();
  return c;
}

std::size_t ClientRequest::wire_size() const {
  return txns_wire_size(txns) + 8;
}

void PrePrepare::serialize(Writer& w) const {
  w.u64(view);
  w.u64(seq);
  w.digest(batch_digest);
  serialize_txns(w, txns);
  w.u64(txn_begin);
  w.bytes(BytesView(payload_padding));
}

PrePrepare PrePrepare::deserialize(Reader& r) {
  PrePrepare p;
  p.view = r.u64();
  p.seq = r.u64();
  p.batch_digest = r.digest();
  p.txns = deserialize_txns(r);
  p.txn_begin = r.u64();
  p.payload_padding = r.bytes();
  return p;
}

std::size_t PrePrepare::wire_size() const {
  return 56 + txns_wire_size(txns) + payload_padding.size();
}

void Prepare::serialize(Writer& w) const {
  w.u64(view);
  w.u64(seq);
  w.digest(batch_digest);
}

Prepare Prepare::deserialize(Reader& r) {
  Prepare p;
  p.view = r.u64();
  p.seq = r.u64();
  p.batch_digest = r.digest();
  return p;
}

void Commit::serialize(Writer& w) const {
  w.u64(view);
  w.u64(seq);
  w.digest(batch_digest);
}

Commit Commit::deserialize(Reader& r) {
  Commit c;
  c.view = r.u64();
  c.seq = r.u64();
  c.batch_digest = r.digest();
  return c;
}

void ClientResponse::serialize(Writer& w) const {
  w.u32(client);
  w.u64(req_id);
  w.u64(view);
  w.u64(result);
}

ClientResponse ClientResponse::deserialize(Reader& r) {
  ClientResponse c;
  c.client = r.u32();
  c.req_id = r.u64();
  c.view = r.u64();
  c.result = r.u64();
  return c;
}

void Checkpoint::serialize(Writer& w) const {
  w.u64(seq);
  w.digest(state_digest);
  w.digest(exec_digest);
  w.u64(block_bytes);
}

Checkpoint Checkpoint::deserialize(Reader& r) {
  Checkpoint c;
  c.seq = r.u64();
  c.state_digest = r.digest();
  c.exec_digest = r.digest();
  c.block_bytes = r.u64();
  return c;
}

void PreparedProof::serialize(Writer& w) const {
  w.u64(view);
  w.u64(seq);
  w.digest(batch_digest);
  serialize_txns(w, txns);
  w.u64(txn_begin);
}

PreparedProof PreparedProof::deserialize(Reader& r) {
  PreparedProof p;
  p.view = r.u64();
  p.seq = r.u64();
  p.batch_digest = r.digest();
  p.txns = deserialize_txns(r);
  p.txn_begin = r.u64();
  return p;
}

void ViewChange::serialize(Writer& w) const {
  w.u64(new_view);
  w.u64(stable_seq);
  w.u32(static_cast<std::uint32_t>(prepared.size()));
  for (const auto& p : prepared) p.serialize(w);
}

ViewChange ViewChange::deserialize(Reader& r) {
  ViewChange v;
  v.new_view = r.u64();
  v.stable_seq = r.u64();
  std::uint32_t n = r.u32();
  if (!r.ok() || static_cast<std::uint64_t>(n) * 60 > r.remaining() + 60) {
    r.fail();  // count lie: reject, do not accept a truncated view change
    return v;
  }
  v.prepared.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i)
    v.prepared.push_back(PreparedProof::deserialize(r));
  return v;
}

std::size_t ViewChange::wire_size() const {
  std::size_t total = 20;
  for (const auto& p : prepared) total += 60 + txns_wire_size(p.txns);
  return total;
}

void NewView::serialize(Writer& w) const {
  w.u64(view);
  w.u64(stable_seq);
  w.u32(static_cast<std::uint32_t>(reproposals.size()));
  for (const auto& p : reproposals) p.serialize(w);
}

NewView NewView::deserialize(Reader& r) {
  NewView v;
  v.view = r.u64();
  v.stable_seq = r.u64();
  std::uint32_t n = r.u32();
  if (!r.ok() || static_cast<std::uint64_t>(n) * 60 > r.remaining() + 60) {
    r.fail();  // count lie: reject, do not accept a truncated new view
    return v;
  }
  v.reproposals.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i)
    v.reproposals.push_back(PreparedProof::deserialize(r));
  return v;
}

std::size_t NewView::wire_size() const {
  std::size_t total = 20;
  for (const auto& p : reproposals) total += 60 + txns_wire_size(p.txns);
  return total;
}

void OrderRequest::serialize(Writer& w) const {
  w.u64(view);
  w.u64(seq);
  w.digest(batch_digest);
  w.digest(history);
  serialize_txns(w, txns);
  w.u64(txn_begin);
}

OrderRequest OrderRequest::deserialize(Reader& r) {
  OrderRequest o;
  o.view = r.u64();
  o.seq = r.u64();
  o.batch_digest = r.digest();
  o.history = r.digest();
  o.txns = deserialize_txns(r);
  o.txn_begin = r.u64();
  return o;
}

std::size_t OrderRequest::wire_size() const {
  return 88 + txns_wire_size(txns);
}

void SpecResponse::serialize(Writer& w) const {
  w.u64(view);
  w.u64(seq);
  w.digest(history);
  w.u32(client);
  w.u64(req_id);
  w.u32(replica);
}

SpecResponse SpecResponse::deserialize(Reader& r) {
  SpecResponse s;
  s.view = r.u64();
  s.seq = r.u64();
  s.history = r.digest();
  s.client = r.u32();
  s.req_id = r.u64();
  s.replica = r.u32();
  return s;
}

void CommitCert::serialize(Writer& w) const {
  w.u64(view);
  w.u64(seq);
  w.digest(history);
  w.u32(static_cast<std::uint32_t>(signers.size()));
  for (auto s : signers) w.u32(s);
}

CommitCert CommitCert::deserialize(Reader& r) {
  CommitCert c;
  c.view = r.u64();
  c.seq = r.u64();
  c.history = r.digest();
  std::uint32_t n = r.u32();
  if (!r.ok() || static_cast<std::uint64_t>(n) * 4 > r.remaining() + 4) {
    r.fail();  // count lie: a certificate with missing signers is no proof
    return c;
  }
  c.signers.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) c.signers.push_back(r.u32());
  return c;
}

void LocalCommit::serialize(Writer& w) const {
  w.u64(view);
  w.u64(seq);
  w.u32(replica);
  w.u32(client);
}

LocalCommit LocalCommit::deserialize(Reader& r) {
  LocalCommit l;
  l.view = r.u64();
  l.seq = r.u64();
  l.replica = r.u32();
  l.client = r.u32();
  return l;
}

void BatchRequest::serialize(Writer& w) const {
  w.u64(begin);
  w.u64(end);
}

BatchRequest BatchRequest::deserialize(Reader& r) {
  BatchRequest b;
  b.begin = r.u64();
  b.end = r.u64();
  return b;
}

void BatchResponse::serialize(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.u64(e.seq);
    w.u64(e.view);
    w.digest(e.digest);
    w.u64(e.txn_begin);
    serialize_txns(w, e.txns);
  }
}

BatchResponse BatchResponse::deserialize(Reader& r) {
  BatchResponse b;
  std::uint32_t n = r.u32();
  if (!r.ok() || static_cast<std::uint64_t>(n) * 60 > r.remaining() + 60) {
    r.fail();  // count lie: reject, do not accept a truncated batch response
    return b;
  }
  b.entries.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    Entry e;
    e.seq = r.u64();
    e.view = r.u64();
    e.digest = r.digest();
    e.txn_begin = r.u64();
    e.txns = deserialize_txns(r);
    b.entries.push_back(std::move(e));
  }
  return b;
}

std::size_t BatchResponse::wire_size() const {
  std::size_t total = 4;
  for (const auto& e : entries) total += 56 + txns_wire_size(e.txns);
  return total;
}

void SnapshotRequest::serialize(Writer& w) const { w.u64(have); }

SnapshotRequest SnapshotRequest::deserialize(Reader& r) {
  SnapshotRequest s;
  s.have = r.u64();
  return s;
}

void SnapshotResponse::serialize(Writer& w) const {
  w.u64(seq);
  w.digest(chain_acc);
  w.digest(kv_digest);
  w.u64(raw_bytes);
  w.bytes(BytesView(blob));
}

SnapshotResponse SnapshotResponse::deserialize(Reader& r) {
  SnapshotResponse s;
  s.seq = r.u64();
  s.chain_acc = r.digest();
  s.kv_digest = r.digest();
  s.raw_bytes = r.u64();
  s.blob = r.bytes();
  return s;
}

MsgType Message::type() const {
  struct Visitor {
    MsgType operator()(const ClientRequest&) { return MsgType::kClientRequest; }
    MsgType operator()(const PrePrepare&) { return MsgType::kPrePrepare; }
    MsgType operator()(const Prepare&) { return MsgType::kPrepare; }
    MsgType operator()(const Commit&) { return MsgType::kCommit; }
    MsgType operator()(const ClientResponse&) {
      return MsgType::kClientResponse;
    }
    MsgType operator()(const Checkpoint&) { return MsgType::kCheckpoint; }
    MsgType operator()(const ViewChange&) { return MsgType::kViewChange; }
    MsgType operator()(const NewView&) { return MsgType::kNewView; }
    MsgType operator()(const OrderRequest&) { return MsgType::kOrderRequest; }
    MsgType operator()(const SpecResponse&) { return MsgType::kSpecResponse; }
    MsgType operator()(const CommitCert&) { return MsgType::kCommitCert; }
    MsgType operator()(const LocalCommit&) { return MsgType::kLocalCommit; }
    MsgType operator()(const BatchRequest&) { return MsgType::kBatchRequest; }
    MsgType operator()(const BatchResponse&) {
      return MsgType::kBatchResponse;
    }
    MsgType operator()(const SnapshotRequest&) {
      return MsgType::kSnapshotRequest;
    }
    MsgType operator()(const SnapshotResponse&) {
      return MsgType::kSnapshotResponse;
    }
  };
  return std::visit(Visitor{}, payload);
}

std::size_t Message::wire_size() const {
  std::size_t payload_size = std::visit(
      [](const auto& p) -> std::size_t { return p.wire_size(); }, payload);
  // envelope: type byte + from (5) + signature length prefix.
  return 1 + 5 + 4 + signature.size() + payload_size;
}

Bytes Message::signing_bytes() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type()));
  w.u8(static_cast<std::uint8_t>(from.kind));
  w.u32(from.id);
  std::visit([&](const auto& p) { p.serialize(w); }, payload);
  return w.take();
}

Bytes Message::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type()));
  w.u8(static_cast<std::uint8_t>(from.kind));
  w.u32(from.id);
  std::visit([&](const auto& p) { p.serialize(w); }, payload);
  w.bytes(BytesView(signature));
  return w.take();
}

std::optional<Untrusted<Message>> Message::parse(BytesView wire,
                                                ParseError* err) {
  auto reject = [&](ParseError e) {
    if (err) *err = e;
    return std::nullopt;
  };
  if (err) *err = ParseError::kNone;
  Reader r(wire);
  auto type = static_cast<MsgType>(r.u8());
  Message m;
  m.from.kind = static_cast<Endpoint::Kind>(r.u8());
  m.from.id = r.u32();
  if (!r.ok()) return reject(ParseError::kTruncated);
  switch (type) {
    case MsgType::kClientRequest:
      m.payload = ClientRequest::deserialize(r);
      break;
    case MsgType::kPrePrepare:
      m.payload = PrePrepare::deserialize(r);
      break;
    case MsgType::kPrepare:
      m.payload = Prepare::deserialize(r);
      break;
    case MsgType::kCommit:
      m.payload = Commit::deserialize(r);
      break;
    case MsgType::kClientResponse:
      m.payload = ClientResponse::deserialize(r);
      break;
    case MsgType::kCheckpoint:
      m.payload = Checkpoint::deserialize(r);
      break;
    case MsgType::kViewChange:
      m.payload = ViewChange::deserialize(r);
      break;
    case MsgType::kNewView:
      m.payload = NewView::deserialize(r);
      break;
    case MsgType::kOrderRequest:
      m.payload = OrderRequest::deserialize(r);
      break;
    case MsgType::kSpecResponse:
      m.payload = SpecResponse::deserialize(r);
      break;
    case MsgType::kCommitCert:
      m.payload = CommitCert::deserialize(r);
      break;
    case MsgType::kLocalCommit:
      m.payload = LocalCommit::deserialize(r);
      break;
    case MsgType::kBatchRequest:
      m.payload = BatchRequest::deserialize(r);
      break;
    case MsgType::kBatchResponse:
      m.payload = BatchResponse::deserialize(r);
      break;
    case MsgType::kSnapshotRequest:
      m.payload = SnapshotRequest::deserialize(r);
      break;
    case MsgType::kSnapshotResponse:
      m.payload = SnapshotResponse::deserialize(r);
      break;
    default:
      return reject(ParseError::kUnknownType);
  }
  m.signature = r.bytes();
  if (!r.ok()) return reject(ParseError::kTruncated);
  // Canonicality: every byte of the frame must have been consumed. Trailing
  // bytes mean the frame is not serialize(parse(frame)) — appended garbage
  // or a length lie — and a Byzantine sender gets no benefit of the doubt.
  if (!r.done()) return reject(ParseError::kTrailingBytes);
  return Untrusted<Message>(std::move(m));
}

}  // namespace rdb::protocol
