#include "protocol/pbft.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace rdb::protocol {

PbftEngine::PbftEngine(PbftConfig config) : config_(config) {}

Message PbftEngine::own(Payload payload) const {
  Message m;
  m.from = Endpoint::replica(config_.self);
  m.payload = std::move(payload);
  return m;
}

PbftEngine::Slot& PbftEngine::slot(SeqNum seq) {
  auto it = slots_.find(seq);
  if (it == slots_.end()) {
    it = slots_.emplace(seq, Slot{}).first;
    it->second.view = view_;
  }
  return it->second;
}

bool PbftEngine::in_window(SeqNum seq) const {
  // Lower watermark: everything this replica already executed. Classical
  // PBFT uses the stable checkpoint and relies on state transfer for
  // laggards; accepting messages down to last_executed_ lets a replica that
  // missed the checkpoint quorum finish its in-flight slots instead (the
  // slots survive garbage collection until executed).
  return seq > last_executed_ && seq <= stable_seq_ + config_.window;
}

Actions PbftEngine::make_preprepare(SeqNum seq, std::vector<Transaction> txns,
                                    std::uint64_t txn_begin,
                                    const Digest& batch_digest,
                                    Bytes payload_padding) {
  Actions out;
  if (!is_primary() || in_view_change_ || !in_window(seq)) {
    ++metrics_.rejected_msgs;
    return out;
  }
  PrePrepare pp;
  pp.view = view_;
  pp.seq = seq;
  pp.batch_digest = batch_digest;
  pp.txns = std::move(txns);
  pp.txn_begin = txn_begin;
  pp.payload_padding = std::move(payload_padding);
  ++metrics_.preprepares_sent;
  out.push_back(BroadcastAction{own(std::move(pp)), /*include_self=*/true});
  return out;
}

Actions PbftEngine::on_preprepare(const Message& msg) {
  Actions out;
  // get_if, not get: a mis-routed payload is a counted reject, not a throw
  // (defense in depth under the wire-taint discipline — validate.h).
  const auto* ppp = std::get_if<PrePrepare>(&msg.payload);
  if (!ppp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& pp = *ppp;
  if (msg.from.kind != Endpoint::Kind::kReplica ||
      msg.from.id != primary_of(pp.view) || pp.view != view_ ||
      in_view_change_ || !in_window(pp.seq)) {
    ++metrics_.rejected_msgs;
    return out;
  }
  Slot& s = slot(pp.seq);
  if (s.have_preprepare) {
    // Either a duplicate or primary equivocation; a correct replica accepts
    // only the first pre-prepare per (view, seq).
    if (s.digest != pp.batch_digest) ++metrics_.rejected_msgs;
    return out;
  }
  s.have_preprepare = true;
  s.view = pp.view;
  s.digest = pp.batch_digest;
  s.txns = pp.txns;
  s.txn_begin = pp.txn_begin;

  if (!is_primary()) {
    // Backup: agree to the order by broadcasting a Prepare (§4.4), and arm
    // the request timer that triggers a view change if consensus stalls.
    Prepare p;
    p.view = pp.view;
    p.seq = pp.seq;
    p.batch_digest = pp.batch_digest;
    s.prepares[pp.batch_digest].insert(config_.self);
    s.sent_prepare = true;
    ++metrics_.prepares_sent;
    out.push_back(BroadcastAction{own(p)});
    out.push_back(SetTimerAction{pp.seq, config_.request_timeout_ns});
  }

  auto more = maybe_prepared(pp.seq, s);
  out.insert(out.end(), more.begin(), more.end());
  return out;
}

Actions PbftEngine::on_prepare(const Message& msg) {
  Actions out;
  const auto* pptr = std::get_if<Prepare>(&msg.payload);
  if (!pptr) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& p = *pptr;
  if (msg.from.kind != Endpoint::Kind::kReplica || p.view != view_ ||
      in_view_change_ || !in_window(p.seq) ||
      msg.from.id == primary_of(p.view)) {
    ++metrics_.rejected_msgs;
    return out;
  }
  Slot& s = slot(p.seq);
  if (s.have_preprepare && s.digest != p.batch_digest) {
    ++metrics_.rejected_msgs;
    return out;
  }
  // Key the vote by the digest it endorses: a prepare buffered before the
  // pre-prepare must only ever count toward ITS digest's quorum.
  s.prepares[p.batch_digest].insert(msg.from.id);
  return maybe_prepared(p.seq, s);
}

Actions PbftEngine::maybe_prepared(SeqNum seq, Slot& s) {
  Actions out;
  // Prepared: pre-prepare plus 2f Prepare messages from distinct replicas
  // (a majority of non-faulty replicas know the proposed order). Only votes
  // for the accepted pre-prepare digest count.
  if (!s.have_preprepare || s.sent_commit) return out;
  auto votes = s.prepares.find(s.digest);
  if (votes == s.prepares.end() ||
      votes->second.size() < prepare_quorum(config_.n))
    return out;
  Commit c;
  c.view = s.view;
  c.seq = seq;
  c.batch_digest = s.digest;
  s.sent_commit = true;
  s.commits[s.digest].insert(config_.self);
  ++metrics_.commits_sent;
  out.push_back(BroadcastAction{own(c)});
  auto more = maybe_committed(seq, s);
  out.insert(out.end(), more.begin(), more.end());
  return out;
}

Actions PbftEngine::on_commit(const Message& msg) {
  Actions out;
  const auto* cptr = std::get_if<Commit>(&msg.payload);
  if (!cptr) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& c = *cptr;
  if (msg.from.kind != Endpoint::Kind::kReplica || c.view != view_ ||
      in_view_change_ || !in_window(c.seq)) {
    ++metrics_.rejected_msgs;
    return out;
  }
  Slot& s = slot(c.seq);
  if (s.have_preprepare && s.digest != c.batch_digest) {
    ++metrics_.rejected_msgs;
    return out;
  }
  s.commits[c.batch_digest].insert(msg.from.id);
  s.commit_sigs[c.batch_digest].emplace(msg.from.id, msg.signature);
  return maybe_committed(c.seq, s);
}

void PbftEngine::note_own_commit_signature(SeqNum seq, Bytes signature) {
  auto it = slots_.find(seq);
  if (it == slots_.end() || !it->second.have_preprepare) return;
  it->second.commit_sigs[it->second.digest].emplace(config_.self,
                                                    std::move(signature));
}

Actions PbftEngine::maybe_committed(SeqNum seq, Slot& s) {
  (void)seq;  // identified via last_executed_ in drain_executable
  Actions out;
  // Committed: 2f+1 Commit messages — a majority of non-faulty replicas also
  // prepared, so the order is final.
  // A replica finalizes only batches it prepared itself (sent_commit): it
  // must hold the request payload and have checked the order before it can
  // execute. Replicas that missed the pre-prepare recover via checkpoints.
  if (s.committed || !s.have_preprepare || !s.sent_commit) return out;
  auto votes = s.commits.find(s.digest);
  if (votes == s.commits.end() ||
      votes->second.size() < commit_quorum(config_.n))
    return out;
  s.committed = true;
  ++metrics_.batches_committed;
  // The request timer guards the ORDERING of this sequence number; commit
  // settles the order, so disarm here. (Execution may still lag behind a
  // gap — that is catch-up's job, not the view change's.)
  out.push_back(CancelTimerAction{seq});
  drain_executable(out);
  return out;
}

void PbftEngine::drain_executable(Actions& out) {
  // §4.6: consensus completes out of order, execution is released strictly
  // in sequence order.
  for (;;) {
    auto it = slots_.find(last_executed_ + 1);
    if (it == slots_.end() || !it->second.committed || it->second.executed)
      break;
    Slot& s = it->second;
    s.executed = true;
    ++last_executed_;

    ExecuteAction ex;
    ex.seq = last_executed_;
    ex.view = s.view;
    ex.batch_digest = s.digest;
    ex.txns = s.txns;
    ex.txn_begin = s.txn_begin;
    // The certificate always carries this replica's own vote; the fabric
    // fills in the signature via note_own_commit_signature when it signs.
    auto& sigs = s.commit_sigs[s.digest];
    sigs.try_emplace(config_.self);
    ex.certificate.reserve(sigs.size());
    for (const auto& [replica, sig] : sigs)
      ex.certificate.push_back(ledger::CommitVote{replica, sig});
    out.push_back(std::move(ex));
  }
}

Actions PbftEngine::on_executed(SeqNum seq, const Digest& state_digest,
                                const Digest& exec_digest) {
  Actions out;
  if (config_.checkpoint_interval == 0 ||
      seq % config_.checkpoint_interval != 0)
    return out;
  // §4.7: after executing every Δ-th batch, exchange checkpoints.
  Checkpoint cp;
  cp.seq = seq;
  cp.state_digest = state_digest;
  cp.exec_digest = exec_digest;
  checkpoint_votes_[seq][state_digest].insert(config_.self);
  own_exec_[seq] = {state_digest, exec_digest};
  out.push_back(BroadcastAction{own(cp)});
  return out;
}

Actions PbftEngine::on_checkpoint(const Message& msg) {
  Actions out;
  const auto* cpp = std::get_if<Checkpoint>(&msg.payload);
  if (!cpp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& cp = *cpp;
  if (msg.from.kind != Endpoint::Kind::kReplica || cp.seq <= stable_seq_) {
    return out;  // stale, not an error
  }

  // Execution-fingerprint tripwire: a vote whose chain accumulator MATCHES
  // ours but whose fingerprint does not is evidence that the same ordered
  // input produced different execution effects somewhere. One such vote can
  // be a byzantine lie; f+1 distinct replicas agreeing on a fingerprint
  // different from ours include at least one honest replica — then WE are
  // the diverged one and must fail-stop. Zero digests disarm the check
  // (fabrics that don't compute fingerprints, e.g. the simulator).
  if (auto own = own_exec_.find(cp.seq);
      own != own_exec_.end() && !own->second.second.is_zero() &&
      !cp.exec_digest.is_zero() && cp.state_digest == own->second.first &&
      !(cp.exec_digest == own->second.second)) {
    auto& mism = exec_mismatch_[cp.seq][cp.exec_digest];
    mism.insert(msg.from.id);
    if (mism.size() >= f() + 1 && !exec_divergence_fired_.count(cp.seq)) {
      exec_divergence_fired_.insert(cp.seq);
      ++metrics_.exec_divergences;
      out.push_back(ExecDivergenceAction{
          cp.seq, own->second.second, cp.exec_digest,
          static_cast<std::uint32_t>(mism.size())});
    }
  }

  auto& voters = checkpoint_votes_[cp.seq][cp.state_digest];
  voters.insert(msg.from.id);
  // f+1 votes: at least one honest replica executed cp.seq, so the cluster's
  // stable frontier is at least here — the signal that a gap below it can
  // only be repaired by snapshot transfer (peers prune batches at stability).
  if (voters.size() >= f() + 1)
    cluster_stable_hint_ = std::max(cluster_stable_hint_, cp.seq);
  if (voters.size() < commit_quorum(config_.n)) return out;

  // 2f+1 identical checkpoints: mark stable, clear everything older (§4.7).
  stable_seq_ = cp.seq;
  ++metrics_.stable_checkpoints;
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.upper_bound(cp.seq));
  own_exec_.erase(own_exec_.begin(), own_exec_.upper_bound(cp.seq));
  exec_mismatch_.erase(exec_mismatch_.begin(),
                       exec_mismatch_.upper_bound(cp.seq));
  exec_divergence_fired_.erase(exec_divergence_fired_.begin(),
                               exec_divergence_fired_.upper_bound(cp.seq));
  for (auto it = slots_.begin();
       it != slots_.end() && it->first <= stable_seq_;) {
    if (it->second.executed) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
  out.push_back(StableCheckpointAction{cp.seq});
  return out;
}

Actions PbftEngine::on_timeout(std::uint64_t timer_id) {
  Actions out;
  auto it = slots_.find(timer_id);
  if (it == slots_.end() || it->second.committed || in_view_change_) {
    // Stale or duplicate expiry — the fabric may race a cancel against a
    // fire, and a view change erases slots while their timers are armed.
    ++metrics_.stale_timeouts;
    return out;
  }
  return start_view_change(view_ + 1);
}

Actions PbftEngine::on_client_request_timeout() {
  if (in_view_change_ || is_primary()) return {};
  return start_view_change(view_ + 1);
}

Actions PbftEngine::maybe_request_catchup() {
  Actions out;
  if (in_view_change_) return out;

  // If the FIRST missing batch sits at or below the cluster's stable
  // checkpoint, peers have pruned it (slots <= stable are erased on
  // stability) and BatchRequest can never answer — only a checkpoint-
  // anchored snapshot can. The hint needs no local quorum: f+1 checkpoint
  // votes already prove an honest replica got there. The slowest HEALTHY
  // replica also trips this briefly after every checkpoint (it sees f+1
  // votes before executing the interval's tail), so require the gap to
  // persist across polls before asking, then re-ask on a backoff in case
  // the responses were lost.
  if (cluster_stable_hint_ > last_executed_) {
    ++snapshot_stall_polls_;
    if (snapshot_stall_polls_ == 3 || snapshot_stall_polls_ % 13 == 0) {
      ++metrics_.snapshot_requests;
      out.push_back(RequestSnapshotAction{last_executed_});
    }
    return out;
  }
  snapshot_stall_polls_ = 0;

  // Committed frontier this replica can prove: the highest committed slot,
  // or the stable checkpoint other replicas certified.
  SeqNum frontier = stable_seq_;
  for (const auto& [seq, s] : slots_)
    if (s.committed) frontier = std::max(frontier, seq);
  if (frontier <= last_executed_) return out;

  // Only a *gap* warrants fetching: if the next batch in execution order is
  // merely still in flight, normal consensus will deliver it. But a slot
  // whose pre-prepare is present while a LATER slot already committed is
  // stalled, not in flight — its prepare/commit votes were lost on the wire
  // (e.g. to chaos-layer corruption) and nobody retransmits votes. Fetch it.
  auto next = slots_.find(last_executed_ + 1);
  if (next != slots_.end() && next->second.have_preprepare &&
      (next->second.committed || frontier <= last_executed_ + 1))
    return out;

  SeqNum begin = last_executed_ + 1;
  SeqNum end = std::min<SeqNum>(frontier, begin + 49);  // bounded chunks
  if (end <= catchup_requested_upto_ && begin <= catchup_requested_upto_) {
    // A request for this range is already in flight. The response may itself
    // have been lost (the chaos layer corrupts catch-up traffic too), so the
    // dedup must not stall us forever: re-arm after a few idle polls.
    if (++catchup_idle_polls_ >= 5) {
      catchup_idle_polls_ = 0;
      catchup_requested_upto_ = 0;
    }
    return out;
  }
  catchup_idle_polls_ = 0;
  catchup_requested_upto_ = end;
  ++metrics_.catchup_requests;

  BatchRequest req;
  req.begin = begin;
  req.end = end;
  out.push_back(BroadcastAction{own(req)});
  return out;
}

Actions PbftEngine::on_batch_request(const Message& msg) {
  Actions out;
  const auto* reqp = std::get_if<BatchRequest>(&msg.payload);
  if (!reqp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& req = *reqp;
  if (msg.from.kind != Endpoint::Kind::kReplica || req.end < req.begin ||
      req.end - req.begin > 1000) {
    ++metrics_.rejected_msgs;
    return out;
  }
  BatchResponse resp;
  for (SeqNum seq = req.begin; seq <= req.end; ++seq) {
    auto it = slots_.find(seq);
    if (it == slots_.end() || !it->second.executed ||
        !it->second.have_preprepare)
      continue;
    BatchResponse::Entry e;
    e.seq = seq;
    e.view = it->second.view;
    e.digest = it->second.digest;
    e.txn_begin = it->second.txn_begin;
    e.txns = it->second.txns;
    resp.entries.push_back(std::move(e));
  }
  if (resp.entries.empty()) return out;
  out.push_back(SendAction{msg.from, own(resp)});
  return out;
}

Actions PbftEngine::on_batch_response(const Message& msg) {
  Actions out;
  const auto* respp = std::get_if<BatchResponse>(&msg.payload);
  if (!respp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& resp = *respp;
  if (msg.from.kind != Endpoint::Kind::kReplica) {
    ++metrics_.rejected_msgs;
    return out;
  }
  for (const auto& e : resp.entries) {
    if (e.seq <= last_executed_) continue;
    Slot& s = slot(e.seq);
    // Skip only slots that already committed locally. A slot can hold a
    // pre-prepare yet be permanently stalled (its prepare/commit votes were
    // lost on the wire and votes are not retransmitted) — catch-up is the
    // only way such a slot ever completes, so it must remain repairable.
    if (s.committed) continue;

    // Require f+1 distinct peers to vouch for the same (seq, digest): at
    // least one of them is honest and executed the batch, so the batch is
    // committed. (The fabric already checked digest(txns) == e.digest, so a
    // vouching peer cannot pair a good digest with garbage transactions.)
    auto& votes = catchup_votes_[e.seq][e.digest];
    votes.insert(msg.from.id);
    if (votes.size() < f() + 1) continue;

    s.have_preprepare = true;
    s.view = e.view;
    s.digest = e.digest;
    s.txns = e.txns;
    s.txn_begin = e.txn_begin;
    s.committed = true;
    ++metrics_.catchup_batches_adopted;
    catchup_votes_.erase(e.seq);
  }
  drain_executable(out);
  if (!out.empty()) catchup_requested_upto_ = 0;  // progress: re-arm
  return out;
}

void PbftEngine::restore(ViewId view, SeqNum last_executed, SeqNum stable) {
  view_ = view;
  last_executed_ = last_executed;
  stable_seq_ = stable;
  cluster_stable_hint_ = std::max(cluster_stable_hint_, stable);
}

Actions PbftEngine::install_snapshot(SeqNum seq) {
  Actions out;
  if (seq <= last_executed_) return out;  // the gap closed naturally
  last_executed_ = seq;
  stable_seq_ = std::max(stable_seq_, seq);
  cluster_stable_hint_ = std::max(cluster_stable_hint_, seq);
  // Everything at or below the image is superseded, committed or not.
  slots_.erase(slots_.begin(), slots_.upper_bound(seq));
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.upper_bound(seq));
  own_exec_.erase(own_exec_.begin(), own_exec_.upper_bound(seq));
  exec_mismatch_.erase(exec_mismatch_.begin(),
                       exec_mismatch_.upper_bound(seq));
  exec_divergence_fired_.erase(exec_divergence_fired_.begin(),
                               exec_divergence_fired_.upper_bound(seq));
  catchup_votes_.erase(catchup_votes_.begin(),
                       catchup_votes_.upper_bound(seq));
  catchup_requested_upto_ = 0;
  catchup_idle_polls_ = 0;
  snapshot_stall_polls_ = 0;
  ++metrics_.snapshots_installed;
  // A committed tail buffered above the image executes immediately.
  drain_executable(out);
  return out;
}

Digest PbftEngine::state_digest() const {
  // Canonical serialization of every transition-relevant field. std::map /
  // std::set iterate in key order, so the byte stream is unique per state.
  Writer w;
  w.u32(config_.n);
  w.u32(config_.self);
  w.u64(config_.checkpoint_interval);
  w.u64(config_.window);
  w.u64(view_);
  w.u8(in_view_change_ ? 1 : 0);
  w.u64(pending_view_);
  w.u64(last_executed_);
  w.u64(stable_seq_);

  auto put_voters = [&w](const std::map<Digest, std::set<ReplicaId>>& votes) {
    w.u32(static_cast<std::uint32_t>(votes.size()));
    for (const auto& [digest, voters] : votes) {
      w.digest(digest);
      w.u32(static_cast<std::uint32_t>(voters.size()));
      for (ReplicaId r : voters) w.u32(r);
    }
  };

  w.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const auto& [seq, s] : slots_) {
    w.u64(seq);
    w.u64(s.view);
    w.u8(s.have_preprepare ? 1 : 0);
    w.digest(s.digest);
    w.u32(static_cast<std::uint32_t>(s.txns.size()));
    for (const auto& t : s.txns) t.serialize(w);
    w.u64(s.txn_begin);
    put_voters(s.prepares);
    put_voters(s.commits);
    w.u32(static_cast<std::uint32_t>(s.commit_sigs.size()));
    for (const auto& [digest, sigs] : s.commit_sigs) {
      w.digest(digest);
      w.u32(static_cast<std::uint32_t>(sigs.size()));
      for (const auto& [replica, sig] : sigs) {
        w.u32(replica);
        w.bytes(BytesView(sig));
      }
    }
    w.u8(s.sent_prepare ? 1 : 0);
    w.u8(s.sent_commit ? 1 : 0);
    w.u8(s.committed ? 1 : 0);
    w.u8(s.executed ? 1 : 0);
  }

  w.u32(static_cast<std::uint32_t>(checkpoint_votes_.size()));
  for (const auto& [seq, votes] : checkpoint_votes_) {
    w.u64(seq);
    put_voters(votes);
  }
  w.u32(static_cast<std::uint32_t>(own_exec_.size()));
  for (const auto& [seq, digests] : own_exec_) {
    w.u64(seq);
    w.digest(digests.first);
    w.digest(digests.second);
  }
  w.u32(static_cast<std::uint32_t>(exec_mismatch_.size()));
  for (const auto& [seq, votes] : exec_mismatch_) {
    w.u64(seq);
    put_voters(votes);
  }
  w.u32(static_cast<std::uint32_t>(exec_divergence_fired_.size()));
  for (SeqNum seq : exec_divergence_fired_) w.u64(seq);

  w.u32(static_cast<std::uint32_t>(view_change_votes_.size()));
  for (const auto& [target, votes] : view_change_votes_) {
    w.u64(target);
    w.u32(static_cast<std::uint32_t>(votes.size()));
    for (const auto& [replica, vc] : votes) {
      w.u32(replica);
      vc.serialize(w);
    }
  }

  w.u32(static_cast<std::uint32_t>(catchup_votes_.size()));
  for (const auto& [seq, votes] : catchup_votes_) {
    w.u64(seq);
    put_voters(votes);
  }
  w.u64(catchup_requested_upto_);
  w.u32(static_cast<std::uint32_t>(catchup_idle_polls_));
  w.u64(cluster_stable_hint_);
  w.u32(static_cast<std::uint32_t>(snapshot_stall_polls_));
  return crypto::sha256(BytesView(w.data()));
}

Actions PbftEngine::start_view_change(ViewId target) {
  Actions out;
  in_view_change_ = true;
  pending_view_ = target;
  ++metrics_.view_changes;

  ViewChange vc;
  vc.new_view = target;
  vc.stable_seq = stable_seq_;
  for (const auto& [seq, s] : slots_) {
    if (s.executed || !s.have_preprepare) continue;
    auto votes = s.prepares.find(s.digest);
    if (votes == s.prepares.end() ||
        votes->second.size() < prepare_quorum(config_.n))
      continue;
    PreparedProof proof;
    proof.view = s.view;
    proof.seq = seq;
    proof.batch_digest = s.digest;
    proof.txns = s.txns;
    proof.txn_begin = s.txn_begin;
    vc.prepared.push_back(std::move(proof));
  }
  view_change_votes_[target][config_.self] = vc;
  out.push_back(BroadcastAction{own(vc)});

  // Our own vote may complete the quorum (e.g. n = 4 with two earlier votes).
  Message self_msg = own(view_change_votes_[target][config_.self]);
  auto more = on_view_change(self_msg);
  out.insert(out.end(), more.begin(), more.end());
  return out;
}

Actions PbftEngine::on_view_change(const Message& msg) {
  Actions out;
  const auto* vcp = std::get_if<ViewChange>(&msg.payload);
  if (!vcp) {
    ++metrics_.rejected_msgs;
    return out;
  }
  const auto& vc = *vcp;
  if (msg.from.kind != Endpoint::Kind::kReplica || vc.new_view <= view_) {
    ++metrics_.rejected_msgs;
    return out;
  }
  auto& votes = view_change_votes_[vc.new_view];
  votes.emplace(msg.from.id, vc);

  // Join the view change once f+1 replicas demand it (at least one of them
  // is non-faulty, so the timeout evidence is genuine).
  if (!in_view_change_ && votes.size() >= f() + 1) {
    auto joined = start_view_change(vc.new_view);
    out.insert(out.end(), joined.begin(), joined.end());
    return out;
  }

  if (primary_of(vc.new_view) != config_.self) return out;
  if (votes.size() < commit_quorum(config_.n)) return out;
  if (!in_view_change_ || pending_view_ != vc.new_view) return out;

  // We are the new primary with a 2f+1 quorum: assemble NewView.
  SeqNum stable = stable_seq_;
  for (const auto& [replica, vote] : votes)
    stable = std::max(stable, vote.stable_seq);

  // Highest-view prepared proof per sequence number wins.
  std::map<SeqNum, PreparedProof> chosen;
  for (const auto& [replica, vote] : votes) {
    for (const auto& proof : vote.prepared) {
      if (proof.seq <= stable) continue;
      auto it = chosen.find(proof.seq);
      if (it == chosen.end() || proof.view > it->second.view)
        chosen[proof.seq] = proof;
    }
  }

  NewView nv;
  nv.view = vc.new_view;
  nv.stable_seq = stable;
  SeqNum max_seq = stable;
  for (const auto& [seq, proof] : chosen) max_seq = std::max(max_seq, seq);
  // Fill gaps with no-op batches so the sequence space stays contiguous.
  for (SeqNum seq = stable + 1; seq <= max_seq; ++seq) {
    auto it = chosen.find(seq);
    if (it != chosen.end()) {
      PreparedProof p = it->second;
      p.view = vc.new_view;
      nv.reproposals.push_back(std::move(p));
    } else {
      PreparedProof noop;
      noop.view = vc.new_view;
      noop.seq = seq;
      noop.batch_digest = Digest{};  // canonical no-op digest
      nv.reproposals.push_back(std::move(noop));
    }
  }

  out.push_back(BroadcastAction{own(nv)});
  auto entered = enter_view(vc.new_view, nv.reproposals, stable);
  out.insert(out.end(), entered.begin(), entered.end());
  return out;
}

Actions PbftEngine::on_new_view(const Message& msg) {
  const auto* nvp = std::get_if<NewView>(&msg.payload);
  if (!nvp) {
    ++metrics_.rejected_msgs;
    return {};
  }
  const auto& nv = *nvp;
  if (msg.from.kind != Endpoint::Kind::kReplica ||
      msg.from.id != primary_of(nv.view) || nv.view <= view_) {
    ++metrics_.rejected_msgs;
    return {};
  }
  return enter_view(nv.view, nv.reproposals, nv.stable_seq);
}

Actions PbftEngine::enter_view(ViewId v, std::vector<PreparedProof> reproposals,
                               SeqNum stable_seq) {
  Actions out;
  view_ = v;
  in_view_change_ = false;
  pending_view_ = 0;
  view_change_votes_.erase(view_change_votes_.begin(),
                           view_change_votes_.upper_bound(v));
  stable_seq_ = std::max(stable_seq_, stable_seq);

  // Pre-prepares from the old view that did not reach the NewView (no 2f
  // prepared certificate anywhere in the quorum) are void: discard their
  // slots so the new view's sequencing is not blocked by abandoned numbers,
  // and cancel their request timers.
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (!it->second.executed) {
      out.push_back(CancelTimerAction{it->first});
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }

  out.push_back(ViewChangedAction{v});

  // Re-run consensus in the new view for every reproposed batch we have not
  // executed yet. Quorum intersection guarantees a reproposal can never
  // contradict an executed batch.
  for (auto& proof : reproposals) {
    if (proof.seq <= last_executed_) continue;
    Slot fresh;
    fresh.view = v;
    fresh.have_preprepare = true;
    fresh.digest = proof.batch_digest;
    fresh.txns = std::move(proof.txns);
    fresh.txn_begin = proof.txn_begin;
    slots_[proof.seq] = std::move(fresh);
    Slot& s = slots_[proof.seq];

    if (primary_of(v) != config_.self) {
      Prepare p;
      p.view = v;
      p.seq = proof.seq;
      p.batch_digest = proof.batch_digest;
      s.prepares[s.digest].insert(config_.self);
      s.sent_prepare = true;
      ++metrics_.prepares_sent;
      out.push_back(BroadcastAction{own(p)});
      out.push_back(SetTimerAction{proof.seq, config_.request_timeout_ns});
    }
  }
  return out;
}

}  // namespace rdb::protocol
