#include "protocol/wirefuzz.h"

#include <cstdio>

namespace rdb::protocol::wirefuzz {

namespace {

constexpr std::size_t kEnvelopeBytes = 6;  // type u8 + kind u8 + id u32

Digest random_digest(Rng& rng) {
  Digest d;
  for (auto& b : d.data) b = static_cast<std::uint8_t>(rng.next());
  return d;
}

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes b(rng.below(max_len + 1));
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
  return b;
}

Transaction sample_txn(Rng& rng) {
  Transaction t;
  t.client = static_cast<ClientId>(rng.below(8));
  t.req_id = rng.below(1000);
  t.ops = static_cast<std::uint32_t>(1 + rng.below(4));
  t.payload = random_bytes(rng, 32);
  t.client_sig = random_bytes(rng, 64);
  return t;
}

std::vector<Transaction> sample_txns(Rng& rng, std::size_t min_count) {
  std::vector<Transaction> txns;
  std::size_t n = min_count + rng.below(3);
  txns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) txns.push_back(sample_txn(rng));
  return txns;
}

PreparedProof sample_proof(Rng& rng, SeqNum seq) {
  PreparedProof p;
  p.view = rng.below(3);
  p.seq = seq;
  p.batch_digest = random_digest(rng);
  p.txns = sample_txns(rng, 0);
  p.txn_begin = rng.below(1000);
  return p;
}

}  // namespace

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kTruncate: return "truncate";
    case Mutation::kBitFlip: return "bit_flip";
    case Mutation::kLengthLie: return "length_lie";
    case Mutation::kTypeConfusion: return "type_confusion";
    case Mutation::kKindConfusion: return "kind_confusion";
    case Mutation::kExtend: return "extend";
    case Mutation::kRandomJunk: return "random_junk";
    case Mutation::kCount: break;
  }
  return "unknown";
}

Bytes sample_wire(Rng& rng, MsgType type) {
  // Every sample is LEGITIMATE for a 4-replica cluster at view/seq near 0:
  // correct sender kind for the type, in-window views and sequence numbers,
  // quorum-sized distinct signer sets. The liveness oracle depends on this.
  Message m;
  m.from = Endpoint::replica(static_cast<ReplicaId>(rng.below(4)));
  m.signature = random_bytes(rng, 64);
  ViewId view = rng.below(3);
  SeqNum seq = 1 + rng.below(64);

  switch (type) {
    case MsgType::kClientRequest: {
      m.from = Endpoint::client(static_cast<ClientId>(rng.below(8)));
      ClientRequest req;
      req.txns = sample_txns(rng, 1);  // >= 1: empty requests are rejected
      req.sent_at = rng.below(1u << 30);
      m.payload = std::move(req);
      break;
    }
    case MsgType::kPrePrepare: {
      PrePrepare pp;
      pp.view = view;
      pp.seq = seq;
      pp.batch_digest = random_digest(rng);
      pp.txns = sample_txns(rng, 0);
      pp.txn_begin = rng.below(1000);
      pp.payload_padding = random_bytes(rng, 64);
      m.payload = std::move(pp);
      break;
    }
    case MsgType::kPrepare: {
      Prepare p;
      p.view = view;
      p.seq = seq;
      p.batch_digest = random_digest(rng);
      m.payload = p;
      break;
    }
    case MsgType::kCommit: {
      Commit c;
      c.view = view;
      c.seq = seq;
      c.batch_digest = random_digest(rng);
      m.payload = c;
      break;
    }
    case MsgType::kClientResponse: {
      ClientResponse r;
      r.client = static_cast<ClientId>(rng.below(8));
      r.req_id = rng.below(1000);
      r.view = view;
      r.result = rng.next();
      m.payload = r;
      break;
    }
    case MsgType::kCheckpoint: {
      Checkpoint cp;
      cp.seq = seq;
      cp.state_digest = random_digest(rng);
      cp.exec_digest = random_digest(rng);
      cp.block_bytes = rng.below(1u << 20);
      m.payload = cp;
      break;
    }
    case MsgType::kViewChange: {
      ViewChange vc;
      vc.new_view = view + 1;
      vc.stable_seq = seq;
      // Distinct proof seqs (duplicates are rejected).
      std::size_t n = rng.below(3);
      for (std::size_t i = 0; i < n; ++i)
        vc.prepared.push_back(sample_proof(rng, seq + 1 + i));
      m.payload = std::move(vc);
      break;
    }
    case MsgType::kNewView: {
      NewView nv;
      nv.view = view + 1;
      nv.stable_seq = seq;
      std::size_t n = rng.below(3);
      for (std::size_t i = 0; i < n; ++i)
        nv.reproposals.push_back(sample_proof(rng, seq + 1 + i));
      m.payload = std::move(nv);
      break;
    }
    case MsgType::kOrderRequest: {
      OrderRequest oreq;
      oreq.view = view;
      oreq.seq = seq;
      oreq.batch_digest = random_digest(rng);
      oreq.history = random_digest(rng);
      oreq.txns = sample_txns(rng, 0);
      oreq.txn_begin = rng.below(1000);
      m.payload = std::move(oreq);
      break;
    }
    case MsgType::kSpecResponse: {
      SpecResponse sr;
      sr.view = view;
      sr.seq = seq;
      sr.history = random_digest(rng);
      sr.client = static_cast<ClientId>(rng.below(8));
      sr.req_id = rng.below(1000);
      sr.replica = static_cast<ReplicaId>(rng.below(4));
      m.payload = sr;
      break;
    }
    case MsgType::kCommitCert: {
      m.from = Endpoint::client(static_cast<ClientId>(rng.below(8)));
      CommitCert cc;
      cc.view = view;
      cc.seq = seq;
      cc.history = random_digest(rng);
      cc.signers = {0, 1, 2};  // 2f+1 distinct in-range replicas for n=4
      if (rng.chance(0.5)) cc.signers.push_back(3);
      m.payload = std::move(cc);
      break;
    }
    case MsgType::kLocalCommit: {
      LocalCommit lc;
      lc.view = view;
      lc.seq = seq;
      lc.replica = static_cast<ReplicaId>(rng.below(4));
      lc.client = static_cast<ClientId>(rng.below(8));
      m.payload = lc;
      break;
    }
    case MsgType::kBatchRequest: {
      BatchRequest br;
      br.begin = seq;
      br.end = seq + rng.below(16);
      m.payload = br;
      break;
    }
    case MsgType::kBatchResponse: {
      BatchResponse resp;
      std::size_t n = rng.below(3);
      for (std::size_t i = 0; i < n; ++i) {
        BatchResponse::Entry e;
        e.seq = seq + i;
        e.view = view;
        e.digest = random_digest(rng);
        e.txn_begin = rng.below(1000);
        e.txns = sample_txns(rng, 0);
        resp.entries.push_back(std::move(e));
      }
      m.payload = std::move(resp);
      break;
    }
    case MsgType::kSnapshotRequest: {
      SnapshotRequest sr;
      sr.have = seq;
      m.payload = sr;
      break;
    }
    case MsgType::kSnapshotResponse: {
      SnapshotResponse sr;
      sr.seq = seq;
      sr.chain_acc = random_digest(rng);
      sr.kv_digest = random_digest(rng);
      sr.blob = random_bytes(rng, 1 + rng.below(128));
      sr.raw_bytes = sr.blob.size() + rng.below(1024);
      m.payload = std::move(sr);
      break;
    }
  }
  return m.serialize();
}

void mutate(Bytes& wire, Rng& rng, Mutation m) {
  switch (m) {
    case Mutation::kNone:
      return;
    case Mutation::kTruncate:
      if (!wire.empty()) wire.resize(rng.below(wire.size()));
      return;
    case Mutation::kBitFlip: {
      if (wire.empty()) return;
      std::size_t flips = 1 + rng.below(8);
      for (std::size_t i = 0; i < flips; ++i) {
        std::size_t bit = rng.below(wire.size() * 8);
        wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      return;
    }
    case Mutation::kLengthLie: {
      // Structure-aware: overwrite a 32-bit little-endian word in the
      // payload region (where every length/count prefix lives) with an
      // absurd value — the classic "claims 4 billion transactions" frame.
      if (wire.size() < kEnvelopeBytes + 4) return;
      std::size_t off =
          kEnvelopeBytes + rng.below(wire.size() - kEnvelopeBytes - 3);
      static constexpr std::uint32_t kLies[] = {0xFFFFFFFFu, 0x7FFFFFFFu,
                                                0x00FFFFFFu, 0x80000000u};
      std::uint32_t lie = kLies[rng.below(4)];
      for (int i = 0; i < 4; ++i)
        wire[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(lie >> (8 * i));
      return;
    }
    case Mutation::kTypeConfusion:
      // Valid-but-different types model a mis-routed frame; values above 16
      // model an unknown type byte. Both must be handled (the former by the
      // sender-kind / accept-mask checks, the latter by parse).
      if (!wire.empty())
        wire[0] = static_cast<std::uint8_t>(rng.below(22));
      return;
    case Mutation::kKindConfusion:
      if (wire.size() > 1)
        wire[1] = static_cast<std::uint8_t>(rng.below(4));
      return;
    case Mutation::kExtend: {
      std::size_t extra = 1 + rng.below(16);
      for (std::size_t i = 0; i < extra; ++i)
        wire.push_back(static_cast<std::uint8_t>(rng.next()));
      return;
    }
    case Mutation::kRandomJunk: {
      wire.assign(rng.below(200), 0);
      for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next());
      return;
    }
    case Mutation::kCount:
      return;
  }
}

namespace {

/// Judges one input: parse+validate, then the canonicity oracle on accepts.
/// Returns the verdict so callers can layer their own oracles on top.
ValidationResult judge(const Bytes& input, const ValidationContext& ctx,
                       FuzzResult& result) {
  ValidationResult verdict = validate_wire(BytesView(input), ctx);
  if (verdict.ok()) {
    ++result.accepted;
    // Canonicity: an accepted frame must BE the serialization of the message
    // the validator handed out. Anything else is a parser ambiguity — two
    // replicas could read different messages from the same bytes.
    Bytes round = verdict.msg->get().serialize();
    if (round != input) {
      ++result.canonicity_failures;
      if (result.failure_notes.size() < 8) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "canonicity: accepted %zu-byte frame re-serialized to "
                      "%zu bytes (type %u)",
                      input.size(), round.size(),
                      static_cast<unsigned>(input.empty() ? 0 : input[0]));
        result.failure_notes.emplace_back(buf);
      }
    }
  } else {
    ++result.rejected;
    ++result.rejected_by_reason[static_cast<std::size_t>(verdict.reason)];
  }
  return verdict;
}

}  // namespace

FuzzResult run(const FuzzConfig& config) {
  FuzzResult result;
  Rng rng(config.seed);
  // One exemplar per (mutation, reason) pair for the corpus.
  bool seen[static_cast<std::size_t>(Mutation::kCount)]
           [static_cast<std::size_t>(RejectReason::kCount)] = {};
  std::uint64_t accepted_mutants_collected = 0;

  for (std::uint64_t i = 0; i < config.iters; ++i) {
    auto type = static_cast<MsgType>(1 + rng.below(16));
    auto mut = static_cast<Mutation>(
        rng.below(static_cast<std::uint64_t>(Mutation::kCount)));
    ++result.by_mutation[static_cast<std::size_t>(mut)];

    Bytes wire = sample_wire(rng, type);
    mutate(wire, rng, mut);

    ValidationResult verdict = judge(wire, config.ctx, result);
    ++result.iterations;

    if (mut == Mutation::kNone && !verdict.ok()) {
      // Liveness: the canonical serialization of a legitimate message was
      // rejected — the validators would starve a healthy cluster.
      ++result.liveness_failures;
      if (result.failure_notes.size() < 8) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "liveness: canonical type-%u frame rejected (%s)",
                      static_cast<unsigned>(type),
                      reject_reason_name(verdict.reason));
        result.failure_notes.emplace_back(buf);
      }
    }

    if (config.collect_corpus) {
      auto mi = static_cast<std::size_t>(mut);
      auto ri = static_cast<std::size_t>(verdict.reason);
      if (!verdict.ok() && !seen[mi][ri]) {
        seen[mi][ri] = true;
        result.corpus.push_back(wire);
      } else if (verdict.ok() && mut != Mutation::kNone &&
                 accepted_mutants_collected < 16) {
        // Mutants that survive validation are the most interesting corpus
        // entries: they walk the accept path with adversarial bytes.
        ++accepted_mutants_collected;
        result.corpus.push_back(wire);
      }
    }
  }
  return result;
}

FuzzResult replay(const std::vector<Bytes>& inputs,
                  const ValidationContext& ctx) {
  FuzzResult result;
  for (const auto& input : inputs) {
    judge(input, ctx, result);
    ++result.iterations;
  }
  return result;
}

}  // namespace rdb::protocol::wirefuzz
