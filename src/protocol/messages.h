// Wire messages for the BFT protocols (PBFT §2.1 and Zyzzyva §2.1/§5.10),
// plus client requests/responses and checkpointing (§4.7).
//
// Messages are plain structs with explicit little-endian serialization
// (common/serde.h). The typed in-memory representation mirrors §4.8: one base
// shape (Message) whose payload is a variant over the concrete types, so the
// fabric manipulates typed properties while transports see a flat buffer.
#pragma once

#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/det.h"
#include "common/rtzone.h"
#include "common/serde.h"
#include "common/types.h"
#include "common/untrusted.h"
#include "ledger/block.h"

namespace rdb::protocol {

enum class MsgType : std::uint8_t {
  kClientRequest = 1,
  kPrePrepare = 2,
  kPrepare = 3,
  kCommit = 4,
  kClientResponse = 5,
  kCheckpoint = 6,
  kViewChange = 7,
  kNewView = 8,
  // Zyzzyva-specific.
  kOrderRequest = 9,    // primary -> backups (speculative pre-prepare)
  kSpecResponse = 10,   // replica -> client (speculative execution result)
  kCommitCert = 11,     // client -> replicas (2f+1 matching spec responses)
  kLocalCommit = 12,    // replica -> client (ack of a commit certificate)
  // Catch-up (state transfer within the checkpoint retention window).
  kBatchRequest = 13,   // lagging replica -> peers: send me these batches
  kBatchResponse = 14,  // peer -> lagging replica: executed batches
  // Snapshot state transfer (rejoin from BELOW the retention window: peers
  // have pruned the batches, only a checkpoint-anchored image can help).
  kSnapshotRequest = 15,   // rebuilding replica -> peers: full state please
  kSnapshotResponse = 16,  // peer -> rebuilding replica: compressed KV image
};

/// One client transaction: `ops` write operations against the YCSB table.
/// A client may pack several transactions into one request message
/// (client-side batching, §4.2).
struct Transaction {
  ClientId client{0};
  RequestId req_id{0};
  std::uint32_t ops{1};
  Bytes payload;     // serialized operations (workload-defined)
  Bytes client_sig;  // client's signature over signing_bytes()

  friend bool operator==(const Transaction&, const Transaction&) = default;

  void serialize(Writer& w) const;
  static Transaction deserialize(Reader& r);
  /// Canonical bytes the client signs (everything except the signature).
  Bytes signing_bytes() const;
  std::size_t wire_size() const {
    return 24 + payload.size() + client_sig.size();
  }
};

struct ClientRequest {
  std::vector<Transaction> txns;  // client-side burst (usually 1)
  TimeNs sent_at{0};

  void serialize(Writer& w) const;
  static ClientRequest deserialize(Reader& r);
  std::size_t wire_size() const;
};

/// A batch of client transactions the primary proposes for one consensus
/// round. The digest covers the single string representation of the whole
/// batch (one hash per batch, not per request — §4.3).
struct PrePrepare {
  ViewId view{0};
  SeqNum seq{0};
  Digest batch_digest{};
  std::vector<Transaction> txns;
  std::uint64_t txn_begin{0};  // global id of first txn in the batch
  Bytes payload_padding;       // models large request payloads (Figure 12)

  void serialize(Writer& w) const;
  static PrePrepare deserialize(Reader& r);
  std::size_t wire_size() const;
};

struct Prepare {
  ViewId view{0};
  SeqNum seq{0};
  Digest batch_digest{};

  void serialize(Writer& w) const;
  static Prepare deserialize(Reader& r);
  std::size_t wire_size() const { return 48; }
};

struct Commit {
  ViewId view{0};
  SeqNum seq{0};
  Digest batch_digest{};

  void serialize(Writer& w) const;
  static Commit deserialize(Reader& r);
  std::size_t wire_size() const { return 48; }
};

struct ClientResponse {
  ClientId client{0};
  RequestId req_id{0};
  ViewId view{0};
  std::uint64_t result{0};  // application-level result code

  void serialize(Writer& w) const;
  static ClientResponse deserialize(Reader& r);
  std::size_t wire_size() const { return 28; }
};

/// Checkpoint message (§4.7): sent after executing every Δ-th batch; carries
/// the chain accumulator at that sequence so 2f+1 identical checkpoints
/// certify a common prefix. (The paper sends the blocks themselves; the
/// accumulator commits to exactly the same data at constant size — block
/// transfer for lagging replicas is a state-transfer concern.)
///
/// `exec_digest` is the execution fingerprint of the interval ending at
/// `seq`: the fold of every executed batch's (seq, batch digest, txn result
/// codes, state-delta digest) since the previous checkpoint boundary. Two
/// replicas can agree on the chain accumulator (it commits to the ORDERED
/// INPUT) while silently diverging in what execution DID to the state —
/// e.g. an unordered-iteration bug that reorders applies. The fingerprint is
/// the cross-replica tripwire for exactly that class of bug; a zero digest
/// means the fabric does not compute fingerprints (the tripwire is off).
struct Checkpoint {
  SeqNum seq{0};
  Digest state_digest{};
  Digest exec_digest{};
  std::uint64_t block_bytes{0};  // modelled size of shipped blocks

  void serialize(Writer& w) const;
  static Checkpoint deserialize(Reader& r);
  std::size_t wire_size() const { return 80 + block_bytes; }
};

/// A prepared certificate: proof that a batch prepared in some view. Carried
/// by ViewChange messages so the new primary re-proposes it.
struct PreparedProof {
  ViewId view{0};
  SeqNum seq{0};
  Digest batch_digest{};
  std::vector<Transaction> txns;
  std::uint64_t txn_begin{0};

  void serialize(Writer& w) const;
  static PreparedProof deserialize(Reader& r);
};

struct ViewChange {
  ViewId new_view{0};
  SeqNum stable_seq{0};  // last stable checkpoint
  std::vector<PreparedProof> prepared;

  void serialize(Writer& w) const;
  static ViewChange deserialize(Reader& r);
  std::size_t wire_size() const;
};

struct NewView {
  ViewId view{0};
  SeqNum stable_seq{0};
  std::vector<PreparedProof> reproposals;

  void serialize(Writer& w) const;
  static NewView deserialize(Reader& r);
  std::size_t wire_size() const;
};

// ---- Zyzzyva ----

struct OrderRequest {
  ViewId view{0};
  SeqNum seq{0};
  Digest batch_digest{};
  Digest history{};  // hash-chained history digest up to seq
  std::vector<Transaction> txns;
  std::uint64_t txn_begin{0};

  void serialize(Writer& w) const;
  static OrderRequest deserialize(Reader& r);
  std::size_t wire_size() const;
};

struct SpecResponse {
  ViewId view{0};
  SeqNum seq{0};
  Digest history{};
  ClientId client{0};
  RequestId req_id{0};
  ReplicaId replica{0};

  void serialize(Writer& w) const;
  static SpecResponse deserialize(Reader& r);
  std::size_t wire_size() const { return 64; }
};

struct CommitCert {
  ViewId view{0};
  SeqNum seq{0};
  Digest history{};
  std::vector<ReplicaId> signers;  // the 2f+1 replicas whose responses match

  void serialize(Writer& w) const;
  static CommitCert deserialize(Reader& r);
  std::size_t wire_size() const { return 56 + signers.size() * 4; }
};

struct LocalCommit {
  ViewId view{0};
  SeqNum seq{0};
  ReplicaId replica{0};
  ClientId client{0};

  void serialize(Writer& w) const;
  static LocalCommit deserialize(Reader& r);
  std::size_t wire_size() const { return 24; }
};

/// Catch-up: a replica that detects a gap below the cluster's committed
/// frontier asks peers for the batches it missed (DESIGN.md: state transfer
/// within the retention window; full checkpoint snapshots are future work).
struct BatchRequest {
  SeqNum begin{0};
  SeqNum end{0};  // inclusive

  void serialize(Writer& w) const;
  static BatchRequest deserialize(Reader& r);
  std::size_t wire_size() const { return 16; }
};

struct BatchResponse {
  struct Entry {
    SeqNum seq{0};
    ViewId view{0};
    Digest digest{};
    std::uint64_t txn_begin{0};
    std::vector<Transaction> txns;
  };
  std::vector<Entry> entries;

  void serialize(Writer& w) const;
  static BatchResponse deserialize(Reader& r);
  std::size_t wire_size() const;
};

/// Snapshot state transfer (§4.7's checkpoint shipping, realized): a replica
/// whose gap starts below the cluster's stable checkpoint cannot be repaired
/// by BatchRequest (peers pruned those batches), so it asks for a full image.
struct SnapshotRequest {
  SeqNum have{0};  // requester's last executed sequence

  void serialize(Writer& w) const;
  static SnapshotRequest deserialize(Reader& r);
  std::size_t wire_size() const { return 8; }
};

/// A checkpoint-anchored state image. The blob is an lz-compressed dump of
/// the KV store at `seq`; `kv_digest` is the SHA-256 of the UNCOMPRESSED
/// image, so the receiver verifies content after decompressing, and
/// `chain_acc` anchors the ledger accumulator at the same sequence. The
/// receiver installs only after f+1 distinct peers vouch for the same
/// (seq, chain_acc, kv_digest) — a single Byzantine peer cannot feed it a
/// forged state.
struct SnapshotResponse {
  SeqNum seq{0};               // checkpoint the image was captured at
  Digest chain_acc{};          // chain accumulator at seq
  Digest kv_digest{};          // SHA-256 of the uncompressed KV image
  std::uint64_t raw_bytes{0};  // uncompressed size (decompression bound)
  Bytes blob;                  // lz-compressed KV image

  void serialize(Writer& w) const;
  static SnapshotResponse deserialize(Reader& r);
  std::size_t wire_size() const { return 84 + blob.size(); }
};

using Payload =
    std::variant<ClientRequest, PrePrepare, Prepare, Commit, ClientResponse,
                 Checkpoint, ViewChange, NewView, OrderRequest, SpecResponse,
                 CommitCert, LocalCommit, BatchRequest, BatchResponse,
                 SnapshotRequest, SnapshotResponse>;

/// Why Message::parse rejected a frame. Coarser than protocol::RejectReason
/// (validate.h): parse only knows about wire structure, not semantics.
enum class ParseError : std::uint8_t {
  kNone = 0,
  kTruncated,      // ran out of bytes mid-field, or a length lie
  kUnknownType,    // type byte names no known message
  kTrailingBytes,  // parsed fine but bytes remain: not canonical, rejected
};

/// Envelope: source endpoint, payload, and the signature the source attached.
/// §4.8's base-class message representation, realized as a variant.
struct Message {
  Endpoint from{};
  Payload payload;
  Bytes signature;

  MsgType type() const;
  /// Bytes this message occupies on the wire (payload + envelope + sig).
  std::size_t wire_size() const;

  /// Canonical byte string that is signed/verified (excludes the signature).
  /// Det-zone root: every replica must derive the identical byte string for
  /// the same message, or signatures/digests fork across the cluster.
  /// RT-zone root too: serde runs once per message on the pipeline's
  /// critical path, so it may not hide heap round-trips beyond the output
  /// buffer itself or block (scripts/check_hotpath.py).
  RDB_DETERMINISTIC RDB_HOT_PATH Bytes signing_bytes() const;

  RDB_DETERMINISTIC RDB_HOT_PATH Bytes serialize() const;
  /// Parses an envelope off the wire. The result is TAINTED: wire bytes are
  /// attacker-controlled, so the payload comes back sealed inside
  /// Untrusted<Message> and is only usable after passing a validator
  /// (protocol::validate_wire / validate_message in protocol/validate.h).
  /// Rejects frames with trailing bytes (Reader::done()). `err`, when
  /// non-null, reports why a nullopt came back. The check_taint gate
  /// (scripts/check_static.sh) confines callers to the validation module
  /// and tests.
  static std::optional<Untrusted<Message>> parse(BytesView wire,
                                                 ParseError* err = nullptr);
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace rdb::protocol
