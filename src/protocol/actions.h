// Actions emitted by protocol engines.
//
// Engines (protocol/pbft.h, protocol/zyzzyva.h) are pure state machines: a
// method call (deliver message / timeout / execution-complete) returns a list
// of Actions, and the surrounding fabric — the threaded runtime or the
// discrete-event simulator — performs them. Signing happens in the fabric on
// the thread that emitted the action, so CPU cost lands where the paper's
// architecture puts it (batch threads sign Pre-prepares, the worker signs
// Prepares/Commits).
#pragma once

#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "ledger/block.h"
#include "protocol/messages.h"

namespace rdb::protocol {

/// Send one message to a single endpoint (unsigned; fabric signs).
struct SendAction {
  Endpoint to;
  Message msg;
};

/// Send to every replica except self (unsigned; fabric signs per link).
struct BroadcastAction {
  Message msg;
  bool include_self{false};
};

/// A batch became committed and is next in execution order: execute it,
/// append the block, and respond to clients. Emitted in strict seq order.
struct ExecuteAction {
  SeqNum seq{0};
  ViewId view{0};
  Digest batch_digest{};
  std::vector<Transaction> txns;
  std::uint64_t txn_begin{0};
  std::vector<ledger::CommitVote> certificate;  // 2f+1 commit signatures
  bool speculative{false};  // Zyzzyva: executed before commitment
};

/// Arm a timer: fires on_timeout(id) after `delay_ns` unless cancelled.
struct SetTimerAction {
  std::uint64_t id{0};
  TimeNs delay_ns{0};
};

struct CancelTimerAction {
  std::uint64_t id{0};
};

/// A checkpoint became stable at `seq`: garbage-collect below it.
struct StableCheckpointAction {
  SeqNum seq{0};
};

/// The replica moved to a new view (diagnostic for tests/metrics).
struct ViewChangedAction {
  ViewId view{0};
};

/// The replica's gap starts BELOW the cluster's stable checkpoint: peers
/// pruned those batches, so batch catch-up can never fill it. The fabric
/// should broadcast a SnapshotRequest carrying our last executed sequence.
struct RequestSnapshotAction {
  SeqNum have{0};
};

/// Cross-replica execution-divergence tripwire: f+1 distinct replicas voted
/// a checkpoint whose chain accumulator MATCHES ours but whose execution
/// fingerprint does not — at least one honest replica executed the same
/// ordered input and got different effects, so OUR execution is presumed
/// nondeterministic (or corrupted). The fabric must treat this as a named
/// fail-stop: dump forensics and halt execution rather than let a silently
/// forked state machine keep voting.
struct ExecDivergenceAction {
  SeqNum seq{0};
  Digest local_exec{};   // our fingerprint for the interval ending at seq
  Digest quorum_exec{};  // the fingerprint f+1 peers agree on instead
  std::uint32_t voters{0};
};

using Action =
    std::variant<SendAction, BroadcastAction, ExecuteAction, SetTimerAction,
                 CancelTimerAction, StableCheckpointAction, ViewChangedAction,
                 RequestSnapshotAction, ExecDivergenceAction>;

using Actions = std::vector<Action>;

namespace detail {
/// Never an Action alternative. Handlers invocable on it are generic
/// catch-alls ([](auto&) / templated operator()), which would silently
/// swallow any Action added later — exactly the fall-through visit_action
/// exists to make impossible.
struct NotAnAction {};

template <class... Handlers>
struct ActionOverloads : Handlers... {
  using Handlers::operator()...;
};
template <class... Handlers>
ActionOverloads(Handlers...) -> ActionOverloads<Handlers...>;
}  // namespace detail

/// Sanctioned single-alternative peek — NOT dispatch. Tests and tools often
/// want "the broadcast inside this action list" without handling all nine
/// alternatives; this names that intent. Multi-branch dispatch must use
/// visit_action (the check_static.sh gate bans raw get_if-on-Action outside
/// this header, so an if/else dispatch chain cannot silently fall through).
template <class T>
const T* action_as(const Action& action) {
  return std::get_if<T>(&action);
}
template <class T>
T* action_as(Action& action) {
  return std::get_if<T>(&action);
}

/// The one sanctioned way to dispatch over an Action.
///
/// `visit_action(action, handlers...)` requires, at compile time, one
/// handler per Action alternative and rejects generic catch-alls:
///   - a MISSING alternative fails to compile (std::visit demands an
///     exhaustive overload set), so adding an Action for the multi-primary
///     refactor breaks every dispatcher loudly instead of falling through;
///   - a `default:`-equivalent ([](auto&) {}) fails the static_assert, so
///     exhaustiveness cannot be faked away.
/// The probes in cmake/CheckActionVisit.cmake prove both rejections stay
/// live, and check_static.sh bans get_if-on-Action dispatch outside this
/// header.
template <class ActionRef, class... Handlers>
decltype(auto) visit_action(ActionRef&& action, Handlers&&... handlers) {
  static_assert(
      std::is_same_v<std::remove_cvref_t<ActionRef>, Action>,
      "visit_action dispatches over protocol::Action only");
  static_assert(
      (!std::is_invocable_v<Handlers&, detail::NotAnAction&> && ...),
      "visit_action handlers must name concrete Action alternatives; a "
      "generic (auto&) catch-all is a silent default: and is banned");
  return std::visit(
      detail::ActionOverloads<std::remove_cvref_t<Handlers>...>{
          std::forward<Handlers>(handlers)...},
      std::forward<ActionRef>(action));
}

}  // namespace rdb::protocol
