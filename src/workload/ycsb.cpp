#include "workload/ycsb.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rdb::workload {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = zeta(n, theta);
  double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
  // Exact for small n; for the large active sets used here the truncated sum
  // converges well before the cutoff.
  constexpr std::uint64_t kExactLimit = 10'000'000;
  double sum = 0;
  std::uint64_t limit = n < kExactLimit ? n : kExactLimit;
  for (std::uint64_t i = 1; i <= limit; ++i)
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  if (n > limit) {
    // Integral tail approximation.
    sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
            std::pow(static_cast<double>(limit), 1.0 - theta)) /
           (1.0 - theta);
  }
  return sum;
}

std::uint64_t ZipfianGenerator::next(Rng& rng) {
  if (theta_ <= 1e-9) return rng.below(n_);
  double u = rng.uniform();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto idx = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

YcsbWorkload::YcsbWorkload(YcsbConfig config)
    : config_(config), zipf_(config.record_count, config.zipf_theta) {}

std::string YcsbWorkload::key_name(std::uint64_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%010llu",
                static_cast<unsigned long long>(index));
  return buf;
}

void YcsbWorkload::populate(storage::KvStore& store) const {
  std::string value(config_.value_bytes, 'x');
  for (std::uint64_t i = 0; i < config_.record_count; ++i)
    store.put(key_name(i), value);
}

protocol::Transaction YcsbWorkload::make_transaction(Rng& rng,
                                                     ClientId client,
                                                     RequestId req_id) const {
  protocol::Transaction txn;
  txn.client = client;
  txn.req_id = req_id;
  txn.ops = config_.ops_per_txn;

  Writer w(config_.ops_per_txn * (13 + config_.value_bytes));
  w.u32(config_.ops_per_txn);
  for (std::uint32_t i = 0; i < config_.ops_per_txn; ++i) {
    w.u64(zipf_.next(rng));
    bool is_read =
        config_.read_fraction > 0.0 && rng.chance(config_.read_fraction);
    w.u8(is_read ? 1 : 0);
    if (is_read) {
      w.bytes(BytesView());
    } else {
      Bytes value(config_.value_bytes);
      for (auto& b : value) b = static_cast<std::uint8_t>(rng.next());
      w.bytes(BytesView(value));
    }
  }
  txn.payload = w.take();
  return txn;
}

std::vector<Operation> YcsbWorkload::decode(const protocol::Transaction& txn) {
  Reader r(BytesView(txn.payload));
  std::uint32_t n = r.u32();
  std::vector<Operation> ops;
  if (!r.ok()) return ops;
  // Bound the reservation against a hostile count: each operation occupies
  // at least 12 bytes on the wire.
  ops.reserve(std::min<std::uint64_t>(n, r.remaining() / 12 + 1));
  for (std::uint32_t i = 0; i < n; ++i) {
    Operation op;
    op.key_index = r.u64();
    op.is_read = r.u8() != 0;
    op.value = r.bytes();
    if (!r.ok()) break;  // truncated/hostile payload: drop the partial op
    ops.push_back(std::move(op));
  }
  return ops;
}

std::uint64_t YcsbWorkload::execute(const protocol::Transaction& txn,
                                    storage::KvStore& store) const {
  auto ops = decode(txn);
  bool any_reads = false;
  std::uint64_t checksum = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto fold = [&checksum](std::string_view bytes) {
    for (char c : bytes) {
      checksum ^= static_cast<std::uint8_t>(c);
      checksum *= 0x100000001b3ULL;
    }
  };
  for (const auto& op : ops) {
    if (op.is_read) {
      any_reads = true;
      auto value = store.get(key_name(op.key_index));
      if (value) fold(*value);
    } else {
      store.put(
          key_name(op.key_index),
          std::string_view(reinterpret_cast<const char*>(op.value.data()),
                           op.value.size()));
    }
  }
  if (!any_reads) return ops.size();
  checksum ^= ops.size();
  return checksum;
}

}  // namespace rdb::workload
