// YCSB-style workload (§5.1): a table of 600K records, write-only
// transactions over keys drawn from a Zipfian distribution, configurable
// operations per transaction (Figure 11) and payload size per operation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/serde.h"
#include "protocol/messages.h"
#include "storage/kv_store.h"

namespace rdb::workload {

/// Zipfian key generator (Gray et al.'s incremental method, as used by the
/// YCSB core package). theta = 0 degenerates to uniform.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  std::uint64_t next(Rng& rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

struct YcsbConfig {
  std::uint64_t record_count{600'000};  // active set (§5.1)
  double zipf_theta{0.9};               // YCSB default skew
  std::uint32_t ops_per_txn{1};
  std::uint32_t value_bytes{8};         // bytes written per operation
  // Fraction of read operations. The paper's evaluation is write-only
  // (0.0, §5.1); 0.5 ≈ YCSB-A, 0.95 ≈ YCSB-B.
  double read_fraction{0.0};
};

struct Operation {
  std::uint64_t key_index{0};
  bool is_read{false};
  Bytes value;  // empty for reads
};

class YcsbWorkload {
 public:
  explicit YcsbWorkload(YcsbConfig config);

  /// Loads the initial table: every record present with a default value.
  void populate(storage::KvStore& store) const;

  /// Builds one write-only client transaction.
  protocol::Transaction make_transaction(Rng& rng, ClientId client,
                                         RequestId req_id) const;

  /// Applies a transaction's operations to the store. The returned result
  /// code (placed in the ClientResponse) is deterministic across replicas:
  /// for write-only transactions it is the number of operations executed;
  /// when the transaction contains reads it is an FNV-1a checksum folding
  /// the ops count with every value read, so f+1 matching responses prove
  /// the reads observed the same replicated state. Det-zone root: this IS
  /// the KvStore apply path the execution fingerprint folds over.
  RDB_DETERMINISTIC
  std::uint64_t execute(const protocol::Transaction& txn,
                        storage::KvStore& store) const;

  /// Decodes the operations baked into a transaction payload.
  static std::vector<Operation> decode(const protocol::Transaction& txn);

  static std::string key_name(std::uint64_t index);

  const YcsbConfig& config() const { return config_; }

 private:
  YcsbConfig config_;
  mutable ZipfianGenerator zipf_;
};

}  // namespace rdb::workload
