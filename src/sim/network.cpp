#include "sim/network.h"

#include <algorithm>
#include <memory>

#include "common/rng.h"

namespace rdb::sim {

Network::Network(Scheduler& sched, NetworkConfig config,
                 std::uint32_t node_count)
    : sched_(sched),
      config_(config),
      egress_free_(node_count, 0),
      ingress_free_(node_count, 0),
      egress_busy_(node_count, 0),
      failed_(node_count, false),
      rng_state_(config.loss_seed) {}

TimeNs Network::transmit_ns(std::uint64_t bytes) const {
  // bits / (Gbit/s) = ns per bit * bits.
  double ns = static_cast<double>(bytes) * 8.0 / config_.bandwidth_gbps;
  return static_cast<TimeNs>(ns);
}

void Network::send(NodeId src, NodeId dst, std::uint64_t bytes,
                   DeliverFn on_delivery) {
  ++stats_.messages_sent;
  if (failed_[src] || failed_[dst]) {
    ++stats_.messages_dropped;
    return;
  }
  if (config_.loss_probability > 0.0) {
    double u = static_cast<double>(splitmix64(rng_state_) >> 11) * 0x1.0p-53;
    if (u < config_.loss_probability) {
      ++stats_.messages_dropped;
      return;
    }
  }
  stats_.bytes_sent += bytes;

  TimeNs now = sched_.now();
  TimeNs tx = transmit_ns(bytes);

  // Serialize on the sender's egress link.
  TimeNs egress_start = std::max(now, egress_free_[src]);
  TimeNs egress_done = egress_start + tx;
  egress_free_[src] = egress_done;
  egress_busy_[src] += tx;

  // Propagate, then serialize through the receiver's ingress link.
  TimeNs arrive = egress_done + config_.latency_ns;
  TimeNs ingress_start = std::max(arrive, ingress_free_[dst]);
  TimeNs ingress_done = ingress_start + tx;
  ingress_free_[dst] = ingress_done;

  auto fn = std::make_shared<DeliverFn>(std::move(on_delivery));
  sched_.schedule(ingress_done - now, [this, dst, fn] {
    if (failed_[dst]) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    (*fn)();
  });
}

void Network::set_failed(NodeId node, bool failed) { failed_[node] = failed; }

double Network::egress_utilization(NodeId node) const {
  TimeNs now = sched_.now();
  if (now == 0) return 0.0;
  return static_cast<double>(egress_busy_[node]) / static_cast<double>(now);
}

}  // namespace rdb::sim
