#include "sim/scheduler.h"

namespace rdb::sim {

EventId Scheduler::schedule(TimeNs delay, std::function<void()> fn) {
  EventId id = next_id_++;
  queue_.push(Event{now_ + delay, id, std::move(fn)});
  return id;
}

void Scheduler::cancel(EventId id) { cancelled_.insert(id); }

std::uint64_t Scheduler::run_until(TimeNs deadline) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  // Virtual time passes to the deadline even when the next event lies
  // beyond it (or none exists).
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::uint64_t Scheduler::run() {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  return executed;
}

}  // namespace rdb::sim
