#include "sim/cpu.h"

#include <cmath>

namespace rdb::sim {

SimThread::SimThread(Scheduler& sched, NodeCpu& cpu, std::string name)
    : sched_(sched), cpu_(cpu), name_(std::move(name)) {}

void SimThread::post(TimeNs cost_ns, std::function<void()> fn) {
  queue_.push_back(Item{cost_ns, std::move(fn)});
  if (!running_) start_next();
}

void SimThread::start_next() {
  if (queue_.empty()) return;
  running_ = true;
  cpu_.thread_became_busy();
  Item item = std::move(queue_.front());
  queue_.pop_front();
  auto charged = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(item.cost_ns) * cpu_.stretch()));
  auto fn = std::make_shared<std::function<void()>>(std::move(item.fn));
  sched_.schedule(charged, [this, charged, fn] {
    finish(charged, std::move(*fn));
  });
}

void SimThread::finish(std::uint64_t charged_ns, std::function<void()> fn) {
  busy_ns_ += charged_ns;
  ++items_;
  cpu_.thread_became_idle();
  // Run the item's effect while still marked running: if the effect posts
  // back onto this thread, post() must queue rather than double-start.
  if (fn) fn();
  running_ = false;
  start_next();
}

}  // namespace rdb::sim
