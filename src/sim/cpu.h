// Simulated multi-core CPU and pipeline threads.
//
// A NodeCpu models one replica machine with `cores` hardware cores. Each
// pipeline thread (input, batch, worker, execute, checkpoint, output — §4.1)
// is a SimThread: a serial FIFO of work items, each carrying a CPU cost in
// virtual nanoseconds. A thread processes one item at a time, so a saturated
// stage shows up exactly as in the paper's Figure 9.
//
// Core contention (Figure 16): when more threads are busy than there are
// cores, every in-flight work item is stretched by the ratio
// busy_threads / cores, sampled when the item starts. This processor-sharing
// approximation matches the two regimes that matter — no contention when
// threads <= cores, and aggregate-capacity-bound throughput when a 9-thread
// pipeline lands on 1 core.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/scheduler.h"

namespace rdb::sim {

class NodeCpu;

class SimThread {
 public:
  SimThread(Scheduler& sched, NodeCpu& cpu, std::string name);

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  /// Enqueue a work item: occupy this thread for `cost_ns` (stretched under
  /// core contention), then run `fn`.
  void post(TimeNs cost_ns, std::function<void()> fn);

  const std::string& name() const { return name_; }
  std::uint64_t busy_ns() const { return busy_ns_; }
  std::uint64_t items_processed() const { return items_; }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Saturation over a window, as plotted in Figure 9 (100 = fully busy).
  double saturation_percent(TimeNs window_ns) const {
    return window_ns == 0
               ? 0.0
               : 100.0 * static_cast<double>(busy_ns_) /
                     static_cast<double>(window_ns);
  }

  void reset_stats() {
    busy_ns_ = 0;
    items_ = 0;
  }

 private:
  void start_next();
  void finish(std::uint64_t charged_ns, std::function<void()> fn);

  struct Item {
    TimeNs cost_ns;
    std::function<void()> fn;
  };

  Scheduler& sched_;
  NodeCpu& cpu_;
  std::string name_;
  std::deque<Item> queue_;
  bool running_{false};
  std::uint64_t busy_ns_{0};
  std::uint64_t items_{0};
};

class NodeCpu {
 public:
  NodeCpu(Scheduler& sched, std::uint32_t cores)
      : sched_(sched), cores_(cores) {}

  SimThread& add_thread(std::string name) {
    threads_.push_back(
        std::make_unique<SimThread>(sched_, *this, std::move(name)));
    return *threads_.back();
  }

  std::uint32_t cores() const { return cores_; }
  const std::vector<std::unique_ptr<SimThread>>& threads() const {
    return threads_;
  }

  /// Contention stretch factor sampled when a work item starts.
  double stretch() const {
    if (busy_threads_ <= cores_) return 1.0;
    return static_cast<double>(busy_threads_) / static_cast<double>(cores_);
  }

  void thread_became_busy() { ++busy_threads_; }
  void thread_became_idle() { --busy_threads_; }

 private:
  Scheduler& sched_;
  std::uint32_t cores_;
  std::uint32_t busy_threads_{0};
  std::vector<std::unique_ptr<SimThread>> threads_;
};

}  // namespace rdb::sim
