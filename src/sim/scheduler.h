// Discrete-event scheduler: a virtual clock and an ordered event queue.
//
// This is the foundation of the evaluation substrate (DESIGN.md §2): the
// paper's 32-replica / 80K-client Google-Cloud deployment is reproduced by
// running the real protocol engines over simulated CPU cores and network
// links in virtual time. Events with equal timestamps fire in insertion
// order, so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace rdb::sim {

using EventId = std::uint64_t;

class Scheduler {
 public:
  TimeNs now() const { return now_; }

  /// Schedules `fn` to run at now() + delay. Returns an id for cancel().
  EventId schedule(TimeNs delay, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  /// Runs events until the queue drains or the clock passes `deadline`.
  /// Returns the number of events executed.
  std::uint64_t run_until(TimeNs deadline);

  /// Runs until the queue is completely drained.
  std::uint64_t run();

  bool empty() const { return queue_.size() == cancelled_.size(); }
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    TimeNs time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  TimeNs now_{0};
  EventId next_id_{1};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace rdb::sim
