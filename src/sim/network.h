// Simulated network: full-duplex NICs with finite bandwidth plus propagation
// latency.
//
// Every node owns an egress link and an ingress link; a message of b bytes
// serializes onto the sender's egress (b / bandwidth, queued behind earlier
// sends), propagates for `latency`, then serializes through the receiver's
// ingress. This makes the two effects the paper measures emerge naturally:
// the quadratic phases of PBFT load every NIC, and large Pre-prepare
// messages (Figure 12) push the system into the network-bound regime where
// "all the threads are idle".
//
// Failed nodes (Figure 17) silently drop traffic in both directions — the
// crash model the paper applies to backups.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.h"

namespace rdb::sim {

struct NetworkConfig {
  TimeNs latency_ns{500'000};           // one-way propagation: 0.5 ms
  double bandwidth_gbps{10.0};          // per-NIC, each direction
  double loss_probability{0.0};         // uniform random loss (0 = reliable)
  std::uint64_t loss_seed{1};
};

struct NetworkStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t messages_dropped{0};
  std::uint64_t bytes_sent{0};
};

class Network {
 public:
  using NodeId = std::uint32_t;
  using DeliverFn = std::function<void()>;

  Network(Scheduler& sched, NetworkConfig config, std::uint32_t node_count);

  /// Sends `bytes` from src to dst; `on_delivery` runs at the receiver once
  /// the last byte clears the receiver's ingress link.
  void send(NodeId src, NodeId dst, std::uint64_t bytes,
            DeliverFn on_delivery);

  /// Crash-fault a node: all of its traffic (both directions) is dropped.
  void set_failed(NodeId node, bool failed);
  bool is_failed(NodeId node) const { return failed_[node]; }

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  /// Utilization of a node's egress link over [0, now].
  double egress_utilization(NodeId node) const;

  /// Cumulative egress busy time for a node (for windowed utilization).
  TimeNs egress_busy_ns(NodeId node) const { return egress_busy_[node]; }

 private:
  TimeNs transmit_ns(std::uint64_t bytes) const;

  Scheduler& sched_;
  NetworkConfig config_;
  std::vector<TimeNs> egress_free_;   // next instant the egress NIC is free
  std::vector<TimeNs> ingress_free_;
  std::vector<TimeNs> egress_busy_;   // cumulative busy ns (for utilization)
  std::vector<bool> failed_;
  std::uint64_t rng_state_;
  NetworkStats stats_;
};

}  // namespace rdb::sim
