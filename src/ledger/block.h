// Block structure (§2.2, §4.6).
//
// The paper's key chain-management insight: a block does NOT embed the hash
// of the previous block. Hashing the previous block on the execution path is
// a bottleneck, and the 2f+1 signed Commit messages the replica already
// collected are a stronger proof of order — so the block carries that commit
// certificate instead. Immutability still holds: the certificate binds
// (view, seq, batch digest) under a quorum of signatures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/types.h"

namespace rdb::ledger {

/// One replica's signed Commit vote, as recorded in a block's certificate.
struct CommitVote {
  ReplicaId replica{0};
  Bytes signature;

  friend bool operator==(const CommitVote&, const CommitVote&) = default;
};

struct Block {
  SeqNum seq{0};           // consensus sequence number of the batch
  ViewId view{0};          // view (primary) that ordered it
  Digest batch_digest{};   // digest of the batch of client requests
  std::uint64_t txn_begin{0};  // first transaction id in the batch
  std::uint64_t txn_end{0};    // one past the last transaction id
  std::vector<CommitVote> certificate;  // 2f+1 commit signatures

  friend bool operator==(const Block&, const Block&) = default;

  void serialize(Writer& w) const;
  static Block deserialize(Reader& r);

  /// Canonical bytes: the block header WITHOUT the certificate. The commit
  /// certificate is per-replica evidence (each replica keeps whichever 2f+1
  /// signed Commits it happened to collect), so the chain commitment — which
  /// 2f+1 replicas must agree on byte-for-byte at checkpoints (§4.7) — binds
  /// only the canonical ordered history.
  Bytes canonical_bytes() const;

  /// The genesis block (§2.2): seq 0, dummy digest derived from the identity
  /// of the first primary, empty certificate.
  static Block genesis();
};

}  // namespace rdb::ledger
