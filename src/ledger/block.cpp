#include "ledger/block.h"

#include "crypto/sha256.h"

namespace rdb::ledger {

void Block::serialize(Writer& w) const {
  w.u64(seq);
  w.u64(view);
  w.digest(batch_digest);
  w.u64(txn_begin);
  w.u64(txn_end);
  w.u32(static_cast<std::uint32_t>(certificate.size()));
  for (const auto& vote : certificate) {
    w.u32(vote.replica);
    w.bytes(BytesView(vote.signature));
  }
}

Block Block::deserialize(Reader& r) {
  Block b;
  b.seq = r.u64();
  b.view = r.u64();
  b.batch_digest = r.digest();
  b.txn_begin = r.u64();
  b.txn_end = r.u64();
  std::uint32_t n = r.u32();
  // Bound certificate size against a hostile length prefix: each vote takes
  // at least 8 bytes on the wire.
  if (!r.ok() || static_cast<std::uint64_t>(n) * 8 > r.remaining() + 8) {
    return b;
  }
  b.certificate.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    CommitVote vote;
    vote.replica = r.u32();
    vote.signature = r.bytes();
    b.certificate.push_back(std::move(vote));
  }
  return b;
}

Bytes Block::canonical_bytes() const {
  Writer w;
  w.u64(seq);
  w.u64(view);
  w.digest(batch_digest);
  w.u64(txn_begin);
  w.u64(txn_end);
  return w.take();
}

Block Block::genesis() {
  Block g;
  g.seq = 0;
  g.view = 0;
  // The genesis block carries dummy data: the hash of the identity of the
  // first primary, H(P) with P = replica 0 of view 0.
  g.batch_digest = crypto::sha256("genesis:primary=0");
  g.txn_begin = 0;
  g.txn_end = 0;
  return g;
}

}  // namespace rdb::ledger
