// Per-replica blockchain (immutable ledger) with checkpoint-based pruning.
//
// Blocks are appended by the execute thread strictly in sequence order
// (§4.6 guarantees in-order execution), so the chain index is simply the
// block's sequence number. Checkpoints (§4.7) let the chain discard blocks
// older than the last stable checkpoint while retaining a running
// accumulator digest so the full history stays commitment-bound.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "common/bytes.h"
#include "common/det.h"
#include "ledger/block.h"

namespace rdb::ledger {

/// Validates the structural integrity of a block before appending. The
/// certificate's signatures are protocol-level evidence; their verification
/// is injected so the ledger does not depend on the crypto provider.
using CertificateVerifier = std::function<bool(const Block&)>;

class Blockchain {
 public:
  /// Starts the chain with the genesis block.
  Blockchain();

  /// Appends `block`; rejects (returns false) if block.seq is not exactly
  /// last_seq + 1 or the verifier (when set) rejects the certificate.
  /// Det-zone root: the accumulator it extends must be byte-identical on
  /// every replica that executed the same prefix.
  RDB_DETERMINISTIC bool append(Block block);

  void set_verifier(CertificateVerifier verifier) {
    verifier_ = std::move(verifier);
  }

  SeqNum last_seq() const { return last_seq_; }
  std::uint64_t total_blocks() const { return total_blocks_; }

  /// Blocks currently retained (post-pruning), including genesis if retained.
  std::size_t retained() const { return blocks_.size(); }

  /// Returns the block at `seq` if it has not been pruned.
  std::optional<Block> get(SeqNum seq) const;

  /// Discards all blocks with seq < stable_seq (they are covered by a stable
  /// checkpoint). The accumulator digest keeps binding the pruned prefix.
  void prune_before(SeqNum stable_seq);

  /// Running commitment over all appended blocks:
  /// acc_i = SHA256(acc_{i-1} || serialize(B_i)). Two replicas with equal
  /// accumulators and equal last_seq hold identical histories.
  const Digest& accumulator() const { return accumulator_; }

  /// Rebases the chain onto an externally-verified anchor (seq, acc): crash
  /// recovery replays the durable log from its anchor, and snapshot install
  /// adopts a checkpoint that f+1 peers vouched for. All retained blocks are
  /// discarded; appends continue from seq + 1. The anchor's accumulator
  /// commits to the (absent) prefix exactly as pruning would.
  void reset_to(SeqNum seq, const Digest& acc);

 private:
  std::deque<Block> blocks_;   // blocks_[0].seq == first_retained_
  SeqNum first_retained_{0};
  SeqNum last_seq_{0};
  std::uint64_t total_blocks_{0};
  Digest accumulator_{};
  CertificateVerifier verifier_;
};

}  // namespace rdb::ledger
