#include "ledger/blockchain.h"

#include "crypto/sha256.h"

namespace rdb::ledger {

Blockchain::Blockchain() {
  Block g = Block::genesis();
  Bytes canon = g.canonical_bytes();
  crypto::Sha256 h;
  h.update(BytesView(accumulator_.data));
  h.update(BytesView(canon));
  accumulator_ = h.finish();
  last_seq_ = 0;
  first_retained_ = 0;
  total_blocks_ = 1;
  blocks_.push_back(std::move(g));
}

bool Blockchain::append(Block block) {
  if (block.seq != last_seq_ + 1) return false;
  if (verifier_ && !verifier_(block)) return false;

  Bytes canon = block.canonical_bytes();
  crypto::Sha256 h;
  h.update(BytesView(accumulator_.data));
  h.update(BytesView(canon));
  accumulator_ = h.finish();

  last_seq_ = block.seq;
  ++total_blocks_;
  blocks_.push_back(std::move(block));
  return true;
}

std::optional<Block> Blockchain::get(SeqNum seq) const {
  if (seq < first_retained_ || seq > last_seq_) return std::nullopt;
  return blocks_[seq - first_retained_];
}

void Blockchain::reset_to(SeqNum seq, const Digest& acc) {
  blocks_.clear();
  first_retained_ = seq + 1;
  last_seq_ = seq;
  accumulator_ = acc;
  total_blocks_ = seq + 1;  // genesis + blocks 1..seq, all pruned
}

void Blockchain::prune_before(SeqNum stable_seq) {
  while (!blocks_.empty() && blocks_.front().seq < stable_seq) {
    blocks_.pop_front();
    ++first_retained_;
  }
  if (blocks_.empty()) first_retained_ = last_seq_ + 1;
}

}  // namespace rdb::ledger
