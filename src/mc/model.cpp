#include "mc/model.h"

#include <algorithm>

#include "common/serde.h"
#include "crypto/sha256.h"

namespace rdb::mc {

namespace {

using protocol::Actions;
using protocol::Message;
using protocol::Payload;
using protocol::Transaction;

/// acc' = sha256(acc || seq || batch_digest) — same fold the ledger uses
/// conceptually: equal accumulators at equal seq imply identical prefixes.
RDB_DETERMINISTIC
Digest fold_chain_acc(const Digest& acc, SeqNum seq, const Digest& bd) {
  Writer w;
  w.digest(acc);
  w.u64(seq);
  w.digest(bd);
  return crypto::sha256(BytesView(w.data()));
}

/// Zyzzyva's history chain (mirrors chain_history in protocol/zyzzyva.cpp,
/// which is file-local there). The scripted equivocating primary must build
/// per-branch histories that each recipient's accept_order check accepts.
RDB_DETERMINISTIC
Digest fold_history(const Digest& prev, const Digest& bd) {
  crypto::Sha256 h;
  h.update(BytesView(prev.data));
  h.update(BytesView(bd.data));
  return h.finish();
}

RDB_DETERMINISTIC
Digest net_entry_id(ReplicaId to, const Message& msg) {
  Writer w;
  w.u32(to);
  w.raw(BytesView(msg.serialize()));
  return crypto::sha256(BytesView(w.data()));
}

/// Insert one copy of `msg` addressed to `to` into the sorted multiset.
/// Crashed recipients absorb nothing (their mail is purged at crash time,
/// so never materializing it keeps the state canonical).
RDB_DETERMINISTIC
void enqueue_message(World& w, ReplicaId to, const Message& msg) {
  if (to >= w.replicas.size() || w.replicas[to].crashed) return;
  Digest id = net_entry_id(to, msg);
  auto it = std::lower_bound(
      w.net.begin(), w.net.end(), id,
      [](const NetEntry& e, const Digest& key) { return e.id < key; });
  if (it != w.net.end() && it->id == id) {
    ++it->copies;
    return;
  }
  NetEntry e;
  e.to = to;
  e.msg = msg;
  e.id = id;
  w.net.insert(it, std::move(e));
}

/// The scripted Byzantine replica's vote equivocation: Prepare/Commit (and
/// thus PoE Support, which rides the Prepare shape) broadcasts reach the
/// upper half of the cluster with a mutated digest. With digest-keyed vote
/// buckets these land harmlessly in their own bucket; a digest-blind pool
/// would cross-count them — the bug this checker originally flagged.
Message equivocate_vote(Message m) {
  if (auto* p = std::get_if<protocol::Prepare>(&m.payload)) {
    p->batch_digest.data[0] ^= 0x80;
  } else if (auto* c = std::get_if<protocol::Commit>(&m.payload)) {
    c->batch_digest.data[0] ^= 0x80;
  }
  return m;
}

bool is_vote_payload(const Payload& p) {
  return std::holds_alternative<protocol::Prepare>(p) ||
         std::holds_alternative<protocol::Commit>(p);
}

RDB_DETERMINISTIC
void perform_model_actions(World& w, ReplicaId from, Actions actions) {
  if (from >= w.replicas.size() || w.replicas[from].crashed) return;
  ReplicaModel& rep = w.replicas[from];
  const bool byz_sender = w.cfg.byzantine && from == 0;
  for (auto& action : actions) {
    protocol::visit_action(
        action,
        [&](protocol::BroadcastAction& bc) {
          const bool equivocate = byz_sender && is_vote_payload(bc.msg.payload);
          for (ReplicaId to = 0; to < w.cfg.n; ++to) {
            if (to == from && !bc.include_self) continue;
            if (equivocate && to >= w.cfg.n / 2) {
              enqueue_message(w, to, equivocate_vote(bc.msg));
            } else {
              enqueue_message(w, to, bc.msg);
            }
          }
        },
        [&](protocol::SendAction& s) {
          if (s.to.kind == Endpoint::Kind::kReplica) {
            enqueue_message(w, s.to.id, s.msg);
            return;
          }
          // Client-bound: the model client only tracks Zyzzyva
          // SpecResponses (they feed the commit-certificate transition);
          // ClientResponse / LocalCommit leave the modelled system.
          if (const auto* sr =
                  std::get_if<protocol::SpecResponse>(&s.msg.payload)) {
            w.spec_responses[sr->seq][sr->history].insert(sr->replica);
          }
        },
        [&](protocol::ExecuteAction& ex) {
          rep.chain_acc = fold_chain_acc(rep.chain_acc, ex.seq,
                                         ex.batch_digest);
          rep.exec_log.push_back({ex.seq, ex.view, ex.batch_digest,
                                  ex.speculative, rep.chain_acc});
          perform_model_actions(
              w, from, engine_executed(rep.engine, ex.seq, rep.chain_acc));
        },
        [&](protocol::SetTimerAction& t) { rep.timers.insert(t.id); },
        [&](protocol::CancelTimerAction& c) { rep.timers.erase(c.id); },
        [&](protocol::StableCheckpointAction& sc) {
          rep.stable_seen = std::max(rep.stable_seen, sc.seq);
        },
        [&](protocol::ViewChangedAction&) {
          // Visible through engine_view(); no fabric-side state.
        },
        [&](protocol::RequestSnapshotAction&) {
          // The model has no snapshot transfer; a replica that falls below
          // the retention window simply stays behind (safety-neutral).
        },
        [&](protocol::ExecDivergenceAction&) {
          // Unreachable: the model reports zero exec fingerprints, which
          // disarms the engines' divergence tripwire.
        });
  }
}

/// Hand-built proposal messages for the scripted equivocating primary: the
/// lower half of the cluster (including the primary's own engine) receives
/// batch variant A, the upper half variant B. For Zyzzyva the two branches
/// carry independently-chained histories so each recipient's
/// accept_order check passes on its own branch.
RDB_DETERMINISTIC
void inject_equivocating_proposals(World& w) {
  Digest hist_a{};
  Digest hist_b{};
  for (std::uint32_t b = 1; b <= w.cfg.batches; ++b) {
    std::vector<Transaction> tx_a = model_batch(b, false);
    std::vector<Transaction> tx_b = model_batch(b, true);
    const Digest d_a = batch_digest_of(tx_a);
    const Digest d_b = batch_digest_of(tx_b);
    hist_a = fold_history(hist_a, d_a);
    hist_b = fold_history(hist_b, d_b);
    for (ReplicaId to = 0; to < w.cfg.n; ++to) {
      const bool upper = to >= w.cfg.n / 2;
      Message m;
      m.from = Endpoint::replica(0);
      if (w.cfg.engine == EngineKind::kZyzzyva) {
        protocol::OrderRequest oreq;
        oreq.view = 0;
        oreq.seq = b;
        oreq.batch_digest = upper ? d_b : d_a;
        oreq.history = upper ? hist_b : hist_a;
        oreq.txns = upper ? tx_b : tx_a;
        oreq.txn_begin = b - 1;
        m.payload = std::move(oreq);
      } else {
        protocol::PrePrepare pp;  // PoE's Propose rides the same shape
        pp.view = 0;
        pp.seq = b;
        pp.batch_digest = upper ? d_b : d_a;
        pp.txns = upper ? tx_b : tx_a;
        pp.txn_begin = b - 1;
        m.payload = std::move(pp);
      }
      enqueue_message(w, to, m);
    }
  }
}

std::vector<NetEntry>::iterator find_entry(World& w, const Digest& id) {
  auto it = std::lower_bound(
      w.net.begin(), w.net.end(), id,
      [](const NetEntry& e, const Digest& key) { return e.id < key; });
  if (it == w.net.end() || !(it->id == id)) return w.net.end();
  return it;
}

}  // namespace

std::vector<Transaction> model_batch(std::uint32_t index, bool variant) {
  Transaction t;
  t.client = 1;
  t.req_id = variant ? index + 1000 : index;
  t.ops = 1;
  return {std::move(t)};
}

Digest batch_digest_of(const std::vector<Transaction>& txns) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(txns.size()));
  for (const auto& t : txns) t.serialize(w);
  return crypto::sha256(BytesView(w.data()));
}

World make_initial_world(const McConfig& cfg) {
  World w;
  w.cfg = cfg;
  w.replicas.reserve(cfg.n);
  for (ReplicaId r = 0; r < cfg.n; ++r) {
    w.replicas.push_back(ReplicaModel{
        make_engine_model(cfg.engine, cfg.n, r, cfg.checkpoint_interval),
        /*crashed=*/false, /*exec_log=*/{}, /*chain_acc=*/{}, /*timers=*/{},
        /*stable_seen=*/0});
  }
  if (cfg.byzantine) {
    inject_equivocating_proposals(w);
    return w;
  }
  // Honest primary (replica 0, view 0) proposes every batch up-front; the
  // broadcasts land in the network and the explorer owns all ordering.
  for (std::uint32_t b = 1; b <= cfg.batches; ++b) {
    std::vector<Transaction> txns = model_batch(b, false);
    const Digest d = batch_digest_of(txns);
    EngineModel& engine = w.replicas[0].engine;
    Actions acts;
    if (auto* pbft = std::get_if<protocol::PbftEngine>(&engine)) {
      acts = pbft->make_preprepare(b, std::move(txns), b - 1, d);
    } else if (auto* poe = std::get_if<protocol::PoeEngine>(&engine)) {
      acts = poe->make_propose(b, std::move(txns), b - 1, d);
    } else {
      acts = std::get<protocol::ZyzzyvaEngine>(engine).make_order_request(
          b, std::move(txns), b - 1, d);
    }
    perform_model_actions(w, 0, std::move(acts));
  }
  return w;
}

std::vector<Transition> enabled_transitions(const World& w) {
  std::vector<Transition> out;
  // 1. Deliveries, in canonical net order.
  for (const auto& e : w.net) {
    if (w.replicas[e.to].crashed) continue;
    Transition t;
    t.kind = TKind::kDeliver;
    t.replica = e.to;
    t.msg_id = e.id;
    out.push_back(t);
  }
  // 2. Duplications.
  if (w.dups_used < w.cfg.max_dups) {
    for (const auto& e : w.net) {
      if (w.replicas[e.to].crashed) continue;
      Transition t;
      t.kind = TKind::kDuplicate;
      t.replica = e.to;
      t.msg_id = e.id;
      out.push_back(t);
    }
  }
  // 3. Drops.
  if (w.drops_used < w.cfg.max_drops) {
    for (const auto& e : w.net) {
      if (w.replicas[e.to].crashed) continue;
      Transition t;
      t.kind = TKind::kDrop;
      t.replica = e.to;
      t.msg_id = e.id;
      out.push_back(t);
    }
  }
  // 4. Timer firings (logical clock: any armed timer may fire now).
  if (w.timeouts_used < w.cfg.max_timeouts) {
    for (ReplicaId r = 0; r < w.cfg.n; ++r) {
      if (w.replicas[r].crashed) continue;
      for (std::uint64_t id : w.replicas[r].timers) {
        Transition t;
        t.kind = TKind::kTimeout;
        t.replica = r;
        t.timer_id = id;
        out.push_back(t);
      }
    }
  }
  // 5. Crash-stop of the designated victim.
  if (w.cfg.crash_replica >= 0 && !w.crash_used &&
      static_cast<std::uint32_t>(w.cfg.crash_replica) < w.cfg.n &&
      !w.replicas[static_cast<ReplicaId>(w.cfg.crash_replica)].crashed) {
    Transition t;
    t.kind = TKind::kCrash;
    t.replica = static_cast<ReplicaId>(w.cfg.crash_replica);
    out.push_back(t);
  }
  // 6. Zyzzyva model client: a 2f+1-matching SpecResponse set entitles the
  // client to broadcast a CommitCert (one per sequence).
  if (w.cfg.engine == EngineKind::kZyzzyva) {
    for (const auto& [seq, by_history] : w.spec_responses) {
      if (w.certs_issued.contains(seq)) continue;
      for (const auto& [history, responders] : by_history) {
        if (responders.size() < commit_quorum(w.cfg.n)) continue;
        Transition t;
        t.kind = TKind::kClientCert;
        t.seq = seq;
        t.history = history;
        out.push_back(t);
      }
    }
  }
  return out;
}

bool apply_transition(World& w, const Transition& t) {
  if (t.kind == TKind::kDeliver) {
    auto it = find_entry(w, t.msg_id);
    if (it == w.net.end() || it->to != t.replica ||
        w.replicas[it->to].crashed)
      return false;
    const ReplicaId to = it->to;
    Message msg = it->msg;  // copy: delivery may enqueue the same id
    if (--it->copies == 0) w.net.erase(it);
    perform_model_actions(w, to,
                          engine_deliver(w.replicas[to].engine, msg));
    return true;
  }
  if (t.kind == TKind::kDuplicate) {
    if (w.dups_used >= w.cfg.max_dups) return false;
    auto it = find_entry(w, t.msg_id);
    if (it == w.net.end() || it->to != t.replica ||
        w.replicas[it->to].crashed)
      return false;
    ++it->copies;
    ++w.dups_used;
    return true;
  }
  if (t.kind == TKind::kDrop) {
    if (w.drops_used >= w.cfg.max_drops) return false;
    auto it = find_entry(w, t.msg_id);
    if (it == w.net.end() || it->to != t.replica) return false;
    if (--it->copies == 0) w.net.erase(it);
    ++w.drops_used;
    return true;
  }
  if (t.kind == TKind::kTimeout) {
    if (w.timeouts_used >= w.cfg.max_timeouts) return false;
    if (t.replica >= w.cfg.n) return false;
    ReplicaModel& rep = w.replicas[t.replica];
    if (rep.crashed || rep.timers.erase(t.timer_id) == 0) return false;
    ++w.timeouts_used;
    perform_model_actions(w, t.replica,
                          engine_timeout(rep.engine, t.timer_id));
    return true;
  }
  if (t.kind == TKind::kCrash) {
    if (w.crash_used || w.cfg.crash_replica < 0 ||
        static_cast<ReplicaId>(w.cfg.crash_replica) != t.replica ||
        t.replica >= w.cfg.n || w.replicas[t.replica].crashed)
      return false;
    w.replicas[t.replica].crashed = true;
    w.crash_used = true;
    w.replicas[t.replica].timers.clear();
    std::erase_if(w.net, [&](const NetEntry& e) { return e.to == t.replica; });
    return true;
  }
  // kClientCert
  if (w.cfg.engine != EngineKind::kZyzzyva) return false;
  if (w.certs_issued.contains(t.seq)) return false;
  auto seq_it = w.spec_responses.find(t.seq);
  if (seq_it == w.spec_responses.end()) return false;
  auto hist_it = seq_it->second.find(t.history);
  if (hist_it == seq_it->second.end() ||
      hist_it->second.size() < commit_quorum(w.cfg.n))
    return false;
  w.certs_issued.insert(t.seq);
  protocol::CommitCert cc;
  cc.view = 0;
  cc.seq = t.seq;
  cc.history = t.history;
  for (ReplicaId r : hist_it->second) {
    if (cc.signers.size() == commit_quorum(w.cfg.n)) break;
    cc.signers.push_back(r);
  }
  Message m;
  m.from = Endpoint::client(1);
  m.payload = std::move(cc);
  for (ReplicaId r = 0; r < w.cfg.n; ++r) enqueue_message(w, r, m);
  return true;
}

Digest canonical_fingerprint(const World& w) {
  Writer out;
  out.u8(static_cast<std::uint8_t>(w.cfg.engine));
  out.u32(w.cfg.n);
  out.u64(w.cfg.checkpoint_interval);
  out.u32(w.cfg.batches);
  out.u32(w.cfg.max_drops);
  out.u32(w.cfg.max_dups);
  out.u32(w.cfg.max_timeouts);
  out.u32(static_cast<std::uint32_t>(w.cfg.crash_replica));
  out.u8(w.cfg.byzantine ? 1 : 0);
  out.u8(w.cfg.strict_spec_agreement ? 1 : 0);
  for (const auto& rep : w.replicas) {
    out.digest(engine_state_digest(rep.engine));
    out.u8(rep.crashed ? 1 : 0);
    out.u64(rep.stable_seen);
    out.digest(rep.chain_acc);
    out.u32(static_cast<std::uint32_t>(rep.exec_log.size()));
    for (const auto& rec : rep.exec_log) {
      out.u64(rec.seq);
      out.u64(rec.view);
      out.digest(rec.batch_digest);
      out.u8(rec.speculative ? 1 : 0);
      out.digest(rec.acc_after);
    }
    out.u32(static_cast<std::uint32_t>(rep.timers.size()));
    for (std::uint64_t id : rep.timers) out.u64(id);
  }
  out.u32(static_cast<std::uint32_t>(w.net.size()));
  for (const auto& e : w.net) {  // sorted by id: canonical
    out.digest(e.id);
    out.u32(e.copies);
  }
  out.u32(w.drops_used);
  out.u32(w.dups_used);
  out.u32(w.timeouts_used);
  out.u8(w.crash_used ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(w.certs_issued.size()));
  for (SeqNum s : w.certs_issued) out.u64(s);
  out.u32(static_cast<std::uint32_t>(w.spec_responses.size()));
  for (const auto& [seq, by_history] : w.spec_responses) {
    out.u64(seq);
    out.u32(static_cast<std::uint32_t>(by_history.size()));
    for (const auto& [history, responders] : by_history) {
      out.digest(history);
      out.u32(static_cast<std::uint32_t>(responders.size()));
      for (ReplicaId r : responders) out.u32(r);
    }
  }
  return crypto::sha256(BytesView(out.data()));
}

bool transitions_independent(const Transition& a, const Transition& b) {
  auto is_netop = [](TKind k) {
    return k == TKind::kDrop || k == TKind::kDuplicate;
  };
  // Crash silences a replica and purges its mail; client certificates read
  // globally-accumulated responses. Both are dependent on everything.
  if (a.kind == TKind::kCrash || b.kind == TKind::kCrash) return false;
  if (a.kind == TKind::kClientCert || b.kind == TKind::kClientCert)
    return false;
  // Same-budget pairs: with one token left, the second is disabled after
  // the first, so they do not commute as *enabled* transitions.
  if (a.kind == b.kind &&
      (is_netop(a.kind) || a.kind == TKind::kTimeout))
    return false;
  // Two deliveries commute iff they touch different replicas (each consumes
  // its own entry and mutates only its recipient; freshly-emitted messages
  // merge into the same canonical multiset either way).
  if (a.kind == TKind::kDeliver && b.kind == TKind::kDeliver)
    return a.replica != b.replica;
  // Timer firing vs delivery: commute iff different replicas.
  if ((a.kind == TKind::kTimeout && b.kind == TKind::kDeliver) ||
      (b.kind == TKind::kTimeout && a.kind == TKind::kDeliver))
    return a.replica != b.replica;
  // Drop/duplicate vs delivery, and drop vs duplicate: commute iff they
  // touch different network entries (a drop can erase the entry the other
  // transition needs).
  if ((is_netop(a.kind) && b.kind == TKind::kDeliver) ||
      (is_netop(b.kind) && a.kind == TKind::kDeliver) ||
      (is_netop(a.kind) && is_netop(b.kind)))
    return !(a.msg_id == b.msg_id);
  // Timer firing vs drop/duplicate: disjoint state (replica vs network),
  // disjoint budgets.
  if ((a.kind == TKind::kTimeout && is_netop(b.kind)) ||
      (b.kind == TKind::kTimeout && is_netop(a.kind)))
    return true;
  return false;
}

std::string transition_brief(const Transition& t) {
  auto short_hex = [](const Digest& d) { return to_hex(d).substr(0, 12); };
  if (t.kind == TKind::kDeliver)
    return "deliver r" + std::to_string(t.replica) + " m=" +
           short_hex(t.msg_id);
  if (t.kind == TKind::kDuplicate)
    return "dup r" + std::to_string(t.replica) + " m=" + short_hex(t.msg_id);
  if (t.kind == TKind::kDrop)
    return "drop r" + std::to_string(t.replica) + " m=" + short_hex(t.msg_id);
  if (t.kind == TKind::kTimeout)
    return "timeout r" + std::to_string(t.replica) + " t=" +
           std::to_string(t.timer_id);
  if (t.kind == TKind::kCrash) return "crash r" + std::to_string(t.replica);
  return "cert seq=" + std::to_string(t.seq) + " h=" + short_hex(t.history);
}

const char* engine_kind_name(EngineKind kind) {
  if (kind == EngineKind::kPoe) return "poe";
  if (kind == EngineKind::kZyzzyva) return "zyzzyva";
  return "pbft";
}

std::optional<EngineKind> engine_kind_from_name(const std::string& name) {
  if (name == "pbft") return EngineKind::kPbft;
  if (name == "poe") return EngineKind::kPoe;
  if (name == "zyzzyva") return EngineKind::kZyzzyva;
  return std::nullopt;
}

}  // namespace rdb::mc
