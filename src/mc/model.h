// The model checker's world: N consensus engines plus a model network.
//
// A World is a closed, finite-state system — engines (deterministic value
// types), a pending-message multiset, armed logical timers, fault budgets —
// and a Transition is one atomic scheduler choice: deliver a message, drop
// it, duplicate it, fire a timer, crash-stop a replica, or (Zyzzyva) let the
// model client inject a commit certificate. apply_transition() is the
// checker's entire semantics; the explorer (src/mc/explorer.h) walks the
// schedule space it induces and tools/rdb_mc replays recorded schedules.
//
// Determinism is load-bearing three times over:
//   - canonical_fingerprint() dedups states, so the transition function must
//     be bit-stable (same World + same Transition -> same World);
//   - replayed traces (tests/corpus/mc/) must reproduce violations
//     byte-for-byte across runs, builds, and sanitizers;
//   - the sleep-set pruning is only sound because independent transitions
//     commute to the *identical* world.
// Hence this file is in the det zone: scripts/check_static.sh stage 4 keeps
// unordered containers / clocks / RNG out, and check_determinism.py walks
// the RDB_DETERMINISTIC roots declared here.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/det.h"
#include "common/types.h"
#include "mc/engine_model.h"
#include "protocol/messages.h"

namespace rdb::mc {

/// One checking scenario: engine, cluster size, client load, fault budgets.
/// Budgets bound the schedule space — every drop/duplicate/timeout/crash is
/// an explicit transition that consumes from its budget, so the reachable
/// state graph is finite and the DFS frontier is exhaustible.
struct McConfig {
  EngineKind engine{EngineKind::kPbft};
  std::uint32_t n{4};
  SeqNum checkpoint_interval{2};
  /// Client batches injected up-front (batch b is proposed at seq b).
  std::uint32_t batches{2};
  std::uint32_t max_drops{0};
  std::uint32_t max_dups{0};
  std::uint32_t max_timeouts{0};
  /// Replica eligible to crash-stop mid-schedule (-1 = none). Crashing the
  /// initial primary (replica 0) is the classic liveness stressor: it forces
  /// the PBFT view change through every message interleaving.
  std::int32_t crash_replica{-1};
  /// Scripted Byzantine replica 0 (the initial primary): proposals are
  /// equivocated — the lower half of the cluster receives batch variant A,
  /// the upper half variant B with a different digest (per-protocol
  /// consistency preserved, e.g. Zyzzyva history chains) — and its
  /// Prepare/Commit/Support votes reach the upper half with a mutated
  /// digest. Checkpoint votes stay truthful, so checkpoint stability still
  /// implies 2f+1 replicas really executed that accumulator and the oracles
  /// remain sound (see oracles.h).
  bool byzantine{false};
  /// Zyzzyva: also require agreement over the *speculative* suffix, not just
  /// the committed prefix. Under an equivocating primary speculative
  /// divergence is expected (resolved by the view change this engine scopes
  /// out), so this is off by default; on, it demonstrably fires the
  /// agreement oracle (tests/corpus/mc/zyzzyva_spec_divergence.trace).
  bool strict_spec_agreement{false};

  std::uint32_t f() const { return max_faulty(n); }
};

/// One executed batch as observed by the model fabric.
struct ExecRecord {
  SeqNum seq{0};
  ViewId view{0};
  Digest batch_digest{};
  bool speculative{false};
  /// Chain accumulator after appending this record:
  /// acc' = sha256(acc || seq || batch_digest). Equal accumulators at equal
  /// seq imply identical executed prefixes.
  Digest acc_after{};

  friend bool operator==(const ExecRecord&, const ExecRecord&) = default;
};

struct ReplicaModel {
  EngineModel engine;
  bool crashed{false};
  std::vector<ExecRecord> exec_log;
  Digest chain_acc{};
  /// Armed logical timers (ids are engine-defined; PBFT uses seq numbers).
  std::set<std::uint64_t> timers;
  /// Highest StableCheckpointAction seen from this replica's engine.
  SeqNum stable_seen{0};
};

/// Pending-message multiset entry. Identity is content-addressed:
/// id = sha256(recipient || canonical wire bytes), so byte-identical
/// messages to the same replica merge into one entry with a copy count and
/// the network state has a canonical form independent of arrival order.
struct NetEntry {
  ReplicaId to{0};
  protocol::Message msg;
  Digest id{};
  std::uint32_t copies{1};
};

enum class TKind : std::uint8_t {
  kDeliver = 0,
  kDuplicate = 1,
  kDrop = 2,
  kTimeout = 3,
  kCrash = 4,
  kClientCert = 5,  // Zyzzyva model client injects a 2f+1 CommitCert
};

struct Transition {
  TKind kind{TKind::kDeliver};
  ReplicaId replica{0};     // deliver/dup/drop: recipient; timeout/crash: self
  Digest msg_id{};          // deliver/dup/drop: NetEntry id
  std::uint64_t timer_id{0};  // timeout
  SeqNum seq{0};            // client_cert
  Digest history{};         // client_cert: the agreed Zyzzyva history digest

  friend bool operator==(const Transition&, const Transition&) = default;
};

struct World {
  McConfig cfg;
  std::vector<ReplicaModel> replicas;
  std::vector<NetEntry> net;  // sorted by id, ids unique
  std::uint32_t drops_used{0};
  std::uint32_t dups_used{0};
  std::uint32_t timeouts_used{0};
  bool crash_used{false};
  /// Zyzzyva model client: sequences a certificate was already injected for,
  /// and the SpecResponses gathered so far (seq -> history -> responders).
  std::set<SeqNum> certs_issued;
  std::map<SeqNum, std::map<Digest, std::set<ReplicaId>>> spec_responses;
};

/// Builds the start state: engines constructed, all client batches proposed
/// by the view-0 primary (or, when cfg.byzantine, equivocated by the model's
/// scripted primary), resulting broadcasts pending in the network.
RDB_DETERMINISTIC World make_initial_world(const McConfig& cfg);

/// All transitions schedulable from `w`, in canonical order (delivers by
/// entry id, then duplicates, drops, timeouts, crash, client certificates).
/// The canonical order is part of the model: explorers and replays must see
/// the same list for the same world.
RDB_DETERMINISTIC std::vector<Transition> enabled_transitions(const World& w);

/// Applies one transition in place. Returns false — leaving `w` untouched —
/// when the transition is not enabled (unknown message id, unarmed timer,
/// exhausted budget...). Lenient failure is what trace shrinking leans on:
/// removing a step must not wedge the replay of the remainder.
RDB_DETERMINISTIC bool apply_transition(World& w, const Transition& t);

/// Canonical state fingerprint: engines (via state_digest), exec logs, chain
/// accumulators, timers, the network multiset, budgets, client state — every
/// field that can influence a future transition — serialized in fixed order
/// and hashed. The explorer's visited set keys on this.
RDB_DETERMINISTIC Digest canonical_fingerprint(const World& w);

/// Conservative independence for sleep-set pruning: true only when the two
/// transitions provably commute to the identical world AND each stays
/// enabled after the other. Budget-sharing pairs (two drops, two dups, two
/// timeouts) are declared dependent — with one budget token left, the second
/// is disabled after the first. Crash and client-cert transitions are
/// dependent on everything.
bool transitions_independent(const Transition& a, const Transition& b);

/// Canonical digest of a batch: sha256 over the serialized transaction
/// vector (what a real fabric hashes before proposing).
RDB_DETERMINISTIC
Digest batch_digest_of(const std::vector<protocol::Transaction>& txns);

/// The model workload: batch `index` (1-based) is one transaction from
/// client 1. `variant` selects the Byzantine primary's alternative payload
/// (different req_id, hence a different digest).
std::vector<protocol::Transaction> model_batch(std::uint32_t index,
                                               bool variant);

/// One-line human description ("deliver r2 3fa9c1..", "timeout r1 #5") for
/// reports and logs. Deterministic: replay reports embed it.
std::string transition_brief(const Transition& t);

const char* engine_kind_name(EngineKind kind);
std::optional<EngineKind> engine_kind_from_name(const std::string& name);

}  // namespace rdb::mc
