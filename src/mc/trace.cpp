#include "mc/trace.h"

#include <sstream>

namespace rdb::mc {

namespace {

const char* step_word(TKind k) {
  if (k == TKind::kDeliver) return "deliver";
  if (k == TKind::kDuplicate) return "dup";
  if (k == TKind::kDrop) return "drop";
  if (k == TKind::kTimeout) return "timeout";
  if (k == TKind::kCrash) return "crash";
  return "cert";
}

bool parse_digest(const std::string& hex, Digest* out) {
  if (hex.size() != 64) return false;
  Bytes raw = from_hex(hex);
  if (raw.size() != out->data.size()) return false;
  std::copy(raw.begin(), raw.end(), out->data.begin());
  return true;
}

bool parse_u64(const std::string& tok, std::uint64_t* out) {
  if (tok.empty()) return false;
  std::uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::string serialize_trace(const Trace& trace) {
  std::string out;
  out += "rdb-mc-trace v1\n";
  if (!trace.note.empty()) {
    std::istringstream lines(trace.note);
    std::string line;
    while (std::getline(lines, line)) out += "# " + line + "\n";
  }
  const McConfig& c = trace.cfg;
  out += "engine " + std::string(engine_kind_name(c.engine)) + "\n";
  out += "n " + std::to_string(c.n) + "\n";
  out += "checkpoint_interval " + std::to_string(c.checkpoint_interval) + "\n";
  out += "batches " + std::to_string(c.batches) + "\n";
  out += "max_drops " + std::to_string(c.max_drops) + "\n";
  out += "max_dups " + std::to_string(c.max_dups) + "\n";
  out += "max_timeouts " + std::to_string(c.max_timeouts) + "\n";
  out += "crash_replica " + std::to_string(c.crash_replica) + "\n";
  out += "byzantine " + std::string(c.byzantine ? "1" : "0") + "\n";
  out += "strict_spec " + std::string(c.strict_spec_agreement ? "1" : "0") +
         "\n";
  out += "expect " +
         (trace.expect == "clean" ? std::string("clean")
                                  : "violation " + trace.expect) +
         "\n";
  for (const Transition& t : trace.steps) {
    out += "step ";
    out += step_word(t.kind);
    if (t.kind == TKind::kDeliver || t.kind == TKind::kDuplicate ||
        t.kind == TKind::kDrop) {
      out += " " + std::to_string(t.replica) + " " + to_hex(t.msg_id);
    } else if (t.kind == TKind::kTimeout) {
      out += " " + std::to_string(t.replica) + " " +
             std::to_string(t.timer_id);
    } else if (t.kind == TKind::kCrash) {
      out += " " + std::to_string(t.replica);
    } else {
      out += " " + std::to_string(t.seq) + " " + to_hex(t.history);
    }
    out += "\n";
  }
  out += "end\n";
  return out;
}

bool parse_trace(const std::string& text, Trace* out, std::string* err) {
  auto fail = [&](std::size_t line_no, const std::string& why) {
    if (err) *err = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };
  Trace trace;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_magic = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream toks(line);
    std::vector<std::string> tok;
    std::string t;
    while (toks >> t) tok.push_back(t);
    if (tok.empty()) continue;
    if (!saw_magic) {
      if (tok.size() != 2 || tok[0] != "rdb-mc-trace" || tok[1] != "v1")
        return fail(line_no, "expected header 'rdb-mc-trace v1'");
      saw_magic = true;
      continue;
    }
    if (saw_end) return fail(line_no, "content after 'end'");
    const std::string& key = tok[0];
    if (key == "end") {
      saw_end = true;
      continue;
    }
    if (key == "engine") {
      if (tok.size() != 2) return fail(line_no, "engine needs one value");
      auto kind = engine_kind_from_name(tok[1]);
      if (!kind) return fail(line_no, "unknown engine '" + tok[1] + "'");
      trace.cfg.engine = *kind;
      continue;
    }
    if (key == "expect") {
      if (tok.size() == 2 && tok[1] == "clean") {
        trace.expect = "clean";
        continue;
      }
      if (tok.size() == 3 && tok[1] == "violation") {
        trace.expect = tok[2];
        continue;
      }
      return fail(line_no, "expect takes 'clean' or 'violation <oracle>'");
    }
    if (key == "step") {
      if (tok.size() < 2) return fail(line_no, "step needs a kind");
      Transition tr;
      std::uint64_t v = 0;
      const std::string& kind = tok[1];
      if (kind == "deliver" || kind == "dup" || kind == "drop") {
        if (tok.size() != 4 || !parse_u64(tok[2], &v))
          return fail(line_no, kind + " needs <replica> <id-hex>");
        tr.kind = kind == "deliver"
                      ? TKind::kDeliver
                      : (kind == "dup" ? TKind::kDuplicate : TKind::kDrop);
        tr.replica = static_cast<ReplicaId>(v);
        if (!parse_digest(tok[3], &tr.msg_id))
          return fail(line_no, "bad 64-hex message id");
      } else if (kind == "timeout") {
        if (tok.size() != 4 || !parse_u64(tok[2], &v))
          return fail(line_no, "timeout needs <replica> <timer-id>");
        tr.kind = TKind::kTimeout;
        tr.replica = static_cast<ReplicaId>(v);
        if (!parse_u64(tok[3], &tr.timer_id))
          return fail(line_no, "bad timer id");
      } else if (kind == "crash") {
        if (tok.size() != 3 || !parse_u64(tok[2], &v))
          return fail(line_no, "crash needs <replica>");
        tr.kind = TKind::kCrash;
        tr.replica = static_cast<ReplicaId>(v);
      } else if (kind == "cert") {
        if (tok.size() != 4 || !parse_u64(tok[2], &v))
          return fail(line_no, "cert needs <seq> <history-hex>");
        tr.kind = TKind::kClientCert;
        tr.seq = v;
        if (!parse_digest(tok[3], &tr.history))
          return fail(line_no, "bad 64-hex history digest");
      } else {
        return fail(line_no, "unknown step kind '" + kind + "'");
      }
      trace.steps.push_back(tr);
      continue;
    }
    // Scalar config keys.
    if (tok.size() != 2) return fail(line_no, key + " needs one value");
    std::uint64_t v = 0;
    bool negative = false;
    std::string num = tok[1];
    if (!num.empty() && num[0] == '-') {
      negative = true;
      num.erase(0, 1);
    }
    if (!parse_u64(num, &v))
      return fail(line_no, "bad integer '" + tok[1] + "'");
    if (negative && key != "crash_replica")
      return fail(line_no, key + " cannot be negative");
    if (key == "n") {
      trace.cfg.n = static_cast<std::uint32_t>(v);
    } else if (key == "checkpoint_interval") {
      trace.cfg.checkpoint_interval = v;
    } else if (key == "batches") {
      trace.cfg.batches = static_cast<std::uint32_t>(v);
    } else if (key == "max_drops") {
      trace.cfg.max_drops = static_cast<std::uint32_t>(v);
    } else if (key == "max_dups") {
      trace.cfg.max_dups = static_cast<std::uint32_t>(v);
    } else if (key == "max_timeouts") {
      trace.cfg.max_timeouts = static_cast<std::uint32_t>(v);
    } else if (key == "crash_replica") {
      trace.cfg.crash_replica =
          negative ? -static_cast<std::int32_t>(v)
                   : static_cast<std::int32_t>(v);
    } else if (key == "byzantine") {
      trace.cfg.byzantine = v != 0;
    } else if (key == "strict_spec") {
      trace.cfg.strict_spec_agreement = v != 0;
    } else {
      return fail(line_no, "unknown directive '" + key + "'");
    }
  }
  if (!saw_magic) return fail(0, "missing 'rdb-mc-trace v1' header");
  if (!saw_end) return fail(line_no, "missing 'end'");
  *out = std::move(trace);
  return true;
}

}  // namespace rdb::mc
