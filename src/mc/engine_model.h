// EngineModel — the one seam between the model checker and the three
// consensus engines (PBFT, PoE, Zyzzyva).
//
// The engines are value-copyable deterministic state machines (std::map /
// std::set / scalars only — no handles, no threads), which is exactly what
// explicit-state model checking needs: a World snapshot is a plain copy, and
// two engine copies with equal state_digest() behave identically on every
// future input. This header wraps the three concrete types in a variant and
// gives the checker a uniform surface: deliver a message, fire a timer,
// report execution, fingerprint the state.
//
// Everything here is det-zone: the checker's transition function must replay
// identically (scripts/check_determinism.py walks these roots; the stage-4
// grep in scripts/check_static.sh keeps unordered containers, clocks, and
// RNG out of this file). Dispatch uses if-chains, not switch: the stage-3
// gate bans `default:` labels throughout src/mc, and enumerating all 16
// MsgTypes per engine would bury the three that matter.
#pragma once

#include <variant>

#include "common/det.h"
#include "protocol/actions.h"
#include "protocol/messages.h"
#include "protocol/pbft.h"
#include "protocol/poe.h"
#include "protocol/zyzzyva.h"

namespace rdb::mc {

enum class EngineKind : std::uint8_t {
  kPbft = 0,
  kPoe = 1,
  kZyzzyva = 2,
};

using EngineModel = std::variant<protocol::PbftEngine, protocol::PoeEngine,
                                 protocol::ZyzzyvaEngine>;

// Named distinctly from SimReplica::make_engine: the determinism lint's
// textual fallback keys its call graph by bare name, and this one is
// reachable from the RDB_DETERMINISTIC roots below.
inline EngineModel make_engine_model(EngineKind kind, std::uint32_t n,
                                     ReplicaId self,
                                     SeqNum checkpoint_interval) {
  if (kind == EngineKind::kPoe) {
    protocol::PoeConfig cfg;
    cfg.n = n;
    cfg.self = self;
    cfg.checkpoint_interval = checkpoint_interval;
    return protocol::PoeEngine(cfg);
  }
  if (kind == EngineKind::kZyzzyva) {
    protocol::ZyzzyvaConfig cfg;
    cfg.n = n;
    cfg.self = self;
    cfg.checkpoint_interval = checkpoint_interval;
    return protocol::ZyzzyvaEngine(cfg);
  }
  protocol::PbftConfig cfg;
  cfg.n = n;
  cfg.self = self;
  cfg.checkpoint_interval = checkpoint_interval;
  return protocol::PbftEngine(cfg);
}

/// Routes a message to the engine handler its type selects, mirroring the
/// fabric dispatch in tests/engine_harness.h. Message types an engine does
/// not consume are absorbed (the real fabric never routes them either).
RDB_DETERMINISTIC
inline protocol::Actions engine_deliver(EngineModel& engine,
                                        const protocol::Message& msg) {
  using protocol::MsgType;
  const MsgType t = msg.type();
  if (auto* pbft = std::get_if<protocol::PbftEngine>(&engine)) {
    if (t == MsgType::kPrePrepare) return pbft->on_preprepare(msg);
    if (t == MsgType::kPrepare) return pbft->on_prepare(msg);
    if (t == MsgType::kCommit) return pbft->on_commit(msg);
    if (t == MsgType::kCheckpoint) return pbft->on_checkpoint(msg);
    if (t == MsgType::kViewChange) return pbft->on_view_change(msg);
    if (t == MsgType::kNewView) return pbft->on_new_view(msg);
    return {};
  }
  if (auto* poe = std::get_if<protocol::PoeEngine>(&engine)) {
    // PoE's Propose/Support ride the PrePrepare/Prepare wire shapes.
    if (t == MsgType::kPrePrepare) return poe->on_propose(msg);
    if (t == MsgType::kPrepare) return poe->on_support(msg);
    if (t == MsgType::kCheckpoint) return poe->on_checkpoint(msg);
    return {};
  }
  auto& zyz = std::get<protocol::ZyzzyvaEngine>(engine);
  if (t == MsgType::kOrderRequest) return zyz.on_order_request(msg);
  if (t == MsgType::kCommitCert) return zyz.on_commit_cert(msg);
  if (t == MsgType::kCheckpoint) return zyz.on_checkpoint(msg);
  return {};
}

RDB_DETERMINISTIC
inline protocol::Actions engine_timeout(EngineModel& engine,
                                        std::uint64_t timer_id) {
  return std::visit([&](auto& e) { return e.on_timeout(timer_id); }, engine);
}

RDB_DETERMINISTIC
inline protocol::Actions engine_executed(EngineModel& engine, SeqNum seq,
                                         const Digest& state_digest) {
  return std::visit(
      [&](auto& e) { return e.on_executed(seq, state_digest); }, engine);
}

RDB_DETERMINISTIC
inline Digest engine_state_digest(const EngineModel& engine) {
  return std::visit([](const auto& e) { return e.state_digest(); }, engine);
}

inline ViewId engine_view(const EngineModel& engine) {
  return std::visit([](const auto& e) { return e.view(); }, engine);
}

/// The sequence frontier below which this replica's executions are
/// irrevocable. PBFT and PoE only ever emit ExecuteActions for committed
/// (resp. 2f+1-supported) batches; Zyzzyva executes speculatively and only
/// a client CommitCert makes the prefix final.
inline SeqNum engine_committed_seq(const EngineModel& engine) {
  if (auto* pbft = std::get_if<protocol::PbftEngine>(&engine))
    return pbft->last_executed();
  if (auto* poe = std::get_if<protocol::PoeEngine>(&engine))
    return poe->last_executed();
  return std::get<protocol::ZyzzyvaEngine>(engine).committed_seq();
}

}  // namespace rdb::mc
