// Trace replay and counterexample shrinking.
//
// replay_trace() rebuilds the initial world from the trace's McConfig and
// applies the schedule step by step, running all four safety oracles after
// every step (and once on the initial world — a violating start state is
// step 0). Replay is LENIENT: a step that is not applicable (message id no
// longer pending, timer not armed, budget spent) is counted as skipped and
// the remainder continues. Lenience is what greedy shrinking leans on —
// deleting one step must not wedge the rest of the schedule.
//
// replay_report() renders the result as a canonical text block. The
// acceptance bar for the whole subsystem is that this block is
// byte-identical across runs, optimization levels, and sanitizer builds:
// it contains only replayed state (no clocks, no paths, no pointers).
//
// Deterministic (det-zone, stage-4 grep + determinism lint).
#pragma once

#include <string>

#include "common/det.h"
#include "mc/oracles.h"
#include "mc/trace.h"

namespace rdb::mc {

struct ReplayResult {
  bool violation{false};
  std::string oracle;
  std::string detail;
  std::size_t steps_applied{0};
  std::size_t steps_skipped{0};
  /// 1-based index of the trace step after which the violation first held
  /// (0 = the initial world already violated).
  std::size_t violation_step{0};
  /// canonical_fingerprint of the final world (at the violation, or after
  /// the last step when clean).
  Digest final_fingerprint{};
};

/// Replays the schedule. With stop_at_violation (the default) the replay
/// halts at the first violating step; otherwise it runs the whole schedule
/// and reports the first violation encountered along the way.
RDB_DETERMINISTIC
ReplayResult replay_trace(const Trace& trace, bool stop_at_violation = true);

/// Canonical report block for a replay outcome.
RDB_DETERMINISTIC
std::string replay_report(const Trace& trace, const ReplayResult& result);

/// Greedy counterexample minimization: truncate at the first violating
/// step, then repeatedly try deleting single steps (last to first, to
/// convergence), keeping each deletion that preserves a violation of the
/// SAME oracle. Returns the input unchanged if it does not violate.
/// The returned trace carries `expect violation <oracle>`.
RDB_DETERMINISTIC Trace shrink_trace(const Trace& trace);

}  // namespace rdb::mc
