#include "mc/replay.h"

namespace rdb::mc {

ReplayResult replay_trace(const Trace& trace, bool stop_at_violation) {
  ReplayResult res;
  World w = make_initial_world(trace.cfg);
  if (auto v = evaluate_oracles(w)) {
    res.violation = true;
    res.oracle = v->oracle;
    res.detail = v->detail;
    res.violation_step = 0;
    res.final_fingerprint = canonical_fingerprint(w);
    if (stop_at_violation) return res;
  }
  for (std::size_t i = 0; i < trace.steps.size(); ++i) {
    if (!apply_transition(w, trace.steps[i])) {
      ++res.steps_skipped;
      continue;
    }
    ++res.steps_applied;
    if (res.violation) continue;  // already found; just finish the schedule
    if (auto v = evaluate_oracles(w)) {
      res.violation = true;
      res.oracle = v->oracle;
      res.detail = v->detail;
      res.violation_step = i + 1;
      res.final_fingerprint = canonical_fingerprint(w);
      if (stop_at_violation) return res;
    }
  }
  if (!res.violation) res.final_fingerprint = canonical_fingerprint(w);
  return res;
}

std::string replay_report(const Trace& trace, const ReplayResult& result) {
  std::string out;
  out += "rdb-mc replay report v1\n";
  out += "engine " + std::string(engine_kind_name(trace.cfg.engine)) + "\n";
  out += "n " + std::to_string(trace.cfg.n) + "\n";
  out += "steps " + std::to_string(trace.steps.size()) + "\n";
  out += "applied " + std::to_string(result.steps_applied) + "\n";
  out += "skipped " + std::to_string(result.steps_skipped) + "\n";
  if (result.violation) {
    out += "result violation\n";
    out += "oracle " + result.oracle + "\n";
    out += "violation_step " + std::to_string(result.violation_step) + "\n";
    if (result.violation_step > 0) {
      out += "violating_transition " +
             transition_brief(trace.steps[result.violation_step - 1]) + "\n";
    }
    out += "detail " + result.detail + "\n";
  } else {
    out += "result clean\n";
  }
  out += "fingerprint " + to_hex(result.final_fingerprint) + "\n";
  return out;
}

Trace shrink_trace(const Trace& trace) {
  ReplayResult full = replay_trace(trace);
  if (!full.violation) return trace;
  const std::string oracle = full.oracle;

  Trace best = trace;
  best.expect = oracle;
  // Everything after the first violating step is noise.
  best.steps.resize(full.violation_step);

  auto still_violates = [&](const Trace& candidate) {
    ReplayResult r = replay_trace(candidate);
    return r.violation && r.oracle == oracle;
  };

  // Greedy single-step deletion to a fixed point. Lenient replay means a
  // deletion can only make later steps inapplicable (skipped), never wedge
  // the run, so each candidate is a straight replay.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = best.steps.size(); i-- > 0;) {
      Trace candidate = best;
      candidate.steps.erase(candidate.steps.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (still_violates(candidate)) {
        best = std::move(candidate);
        changed = true;
      }
    }
  }
  return best;
}

}  // namespace rdb::mc
