#include "mc/oracles.h"

#include <algorithm>

namespace rdb::mc {

namespace {

bool is_honest(const World& w, ReplicaId r) {
  return !(w.cfg.byzantine && r == 0);
}

/// Number of leading exec-log records that are irrevocable for replica `r`.
std::size_t committed_frontier(const World& w, ReplicaId r) {
  const ReplicaModel& rep = w.replicas[r];
  if (w.cfg.engine != EngineKind::kZyzzyva || w.cfg.strict_spec_agreement)
    return rep.exec_log.size();
  // Zyzzyva executes speculatively; only the CommitCert frontier is final.
  const SeqNum committed = engine_committed_seq(rep.engine);
  std::size_t n = 0;
  while (n < rep.exec_log.size() && rep.exec_log[n].seq <= committed) ++n;
  return n;
}

std::string where(ReplicaId a, ReplicaId b, SeqNum seq) {
  return "replica " + std::to_string(a) + " vs replica " + std::to_string(b) +
         " at seq " + std::to_string(seq);
}

std::optional<Violation> check_agreement(const World& w) {
  for (ReplicaId a = 0; a < w.cfg.n; ++a) {
    if (!is_honest(w, a)) continue;
    for (ReplicaId b = a + 1; b < w.cfg.n; ++b) {
      if (!is_honest(w, b)) continue;
      const std::size_t len =
          std::min(committed_frontier(w, a), committed_frontier(w, b));
      for (std::size_t i = 0; i < len; ++i) {
        const ExecRecord& ra = w.replicas[a].exec_log[i];
        const ExecRecord& rb = w.replicas[b].exec_log[i];
        if (ra.seq != rb.seq || !(ra.batch_digest == rb.batch_digest)) {
          return Violation{
              "agreement",
              where(a, b, ra.seq) + ": executed " + to_hex(ra.batch_digest) +
                  " vs " + to_hex(rb.batch_digest)};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_chain(const World& w) {
  for (ReplicaId a = 0; a < w.cfg.n; ++a) {
    if (!is_honest(w, a)) continue;
    for (ReplicaId b = a + 1; b < w.cfg.n; ++b) {
      if (!is_honest(w, b)) continue;
      const std::size_t len =
          std::min(committed_frontier(w, a), committed_frontier(w, b));
      for (std::size_t i = 0; i < len; ++i) {
        const ExecRecord& ra = w.replicas[a].exec_log[i];
        const ExecRecord& rb = w.replicas[b].exec_log[i];
        if (!(ra.acc_after == rb.acc_after)) {
          return Violation{
              "chain", where(a, b, ra.seq) + ": chain accumulator " +
                           to_hex(ra.acc_after) + " vs " +
                           to_hex(rb.acc_after)};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_exactly_once(const World& w) {
  for (ReplicaId r = 0; r < w.cfg.n; ++r) {
    if (!is_honest(w, r)) continue;
    const auto& log = w.replicas[r].exec_log;
    for (std::size_t i = 0; i < log.size(); ++i) {
      if (log[i].seq != i + 1) {
        return Violation{
            "exactly_once",
            "replica " + std::to_string(r) + " executed seq " +
                std::to_string(log[i].seq) + " at log position " +
                std::to_string(i) + " (expected contiguous seq " +
                std::to_string(i + 1) + ")"};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_checkpoint(const World& w) {
  SeqNum stable = 0;
  for (ReplicaId r = 0; r < w.cfg.n; ++r) {
    if (!is_honest(w, r)) continue;
    stable = std::max(stable, w.replicas[r].stable_seen);
  }
  if (stable == 0) return std::nullopt;
  for (ReplicaId a = 0; a < w.cfg.n; ++a) {
    if (!is_honest(w, a)) continue;
    for (ReplicaId b = a + 1; b < w.cfg.n; ++b) {
      if (!is_honest(w, b)) continue;
      const std::size_t len = std::min(w.replicas[a].exec_log.size(),
                                       w.replicas[b].exec_log.size());
      for (std::size_t i = 0; i < len; ++i) {
        const ExecRecord& ra = w.replicas[a].exec_log[i];
        const ExecRecord& rb = w.replicas[b].exec_log[i];
        if (ra.seq > stable || rb.seq > stable) break;
        if (ra.seq != rb.seq || !(ra.batch_digest == rb.batch_digest) ||
            !(ra.acc_after == rb.acc_after)) {
          return Violation{
              "checkpoint",
              where(a, b, ra.seq) + " below stable checkpoint " +
                  std::to_string(stable) + ": " + to_hex(ra.acc_after) +
                  " vs " + to_hex(rb.acc_after)};
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Violation> evaluate_oracles(const World& w) {
  if (auto v = check_agreement(w)) return v;
  if (auto v = check_chain(w)) return v;
  if (auto v = check_exactly_once(w)) return v;
  if (auto v = check_checkpoint(w)) return v;
  return std::nullopt;
}

}  // namespace rdb::mc
