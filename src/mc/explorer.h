// Schedule-space exploration: bounded-exhaustive DFS and seeded random
// walks over the World/Transition semantics in mc/model.h.
//
// This is the one src/mc layer OUTSIDE the det zone: the visited set is an
// unordered map (keyed on canonical fingerprints — iteration order never
// influences results) and random walks draw from the repo's seeded Rng.
// Everything it records — counterexample schedules, violation details —
// round-trips through the deterministic trace/replay layer, so exploration
// order can vary while reproduction stays exact.
//
// Pruning:
//   - canonical-fingerprint dedup: commuting schedules collapse into one
//     state; a revisited state is re-expanded only when the arriving sleep
//     set permits transitions the previous visit suppressed (the classic
//     sleep-set/state-caching soundness condition);
//   - sleep sets: after exploring transition t_i from a state, any t_j
//     (j < i) independent of t_i is banned in t_i's subtree — sound because
//     transitions_independent() only declares pairs that commute to the
//     IDENTICAL world, so the pruned interleaving reaches a state the
//     search sees anyway.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mc/model.h"
#include "mc/oracles.h"

namespace rdb::mc {

struct ExploreLimits {
  /// DFS: maximum schedule length (edges from the initial world).
  std::uint32_t max_depth{24};
  /// DFS: stop expanding new states beyond this many distinct fingerprints.
  std::uint64_t max_states{250000};
  /// Random walks: seed, walk count, per-walk step bound.
  std::uint64_t seed{1};
  std::uint32_t walks{64};
  std::uint32_t walk_depth{400};
};

struct ExploreStats {
  std::uint64_t distinct_states{0};
  std::uint64_t transitions_applied{0};
  std::uint64_t dedup_hits{0};
  std::uint64_t sleep_pruned{0};
  std::uint64_t depth_capped{0};  // expansions refused at max_depth
  std::uint64_t state_capped{0};  // expansions refused at max_states
  std::uint32_t max_depth_reached{0};
  /// DFS only: the stack drained with no expansion ever refused — the
  /// bounded system (budgets + horizon) was searched exhaustively.
  bool complete{false};
};

struct ExploreResult {
  std::optional<Violation> violation;
  /// Schedule from the initial world to the violating state (un-shrunk;
  /// feed through shrink_trace for the minimal artifact).
  std::vector<Transition> counterexample;
  ExploreStats stats;
};

/// Bounded-exhaustive DFS with fingerprint dedup and sleep-set pruning.
/// Stops at the first oracle violation.
ExploreResult explore_dfs(const McConfig& cfg, const ExploreLimits& limits);

/// Seeded random walks past the exhaustive frontier: `limits.walks`
/// independent schedules of up to `limits.walk_depth` uniformly-chosen
/// transitions each. Deterministic for a fixed seed.
ExploreResult explore_random_walks(const McConfig& cfg,
                                   const ExploreLimits& limits);

}  // namespace rdb::mc
