// Replayable schedule traces — the model checker's counterexample artifact.
//
// A trace is a text file: the full McConfig (so the initial world is
// reconstructible), an `expect` line naming the outcome the trace
// demonstrates, and the transition schedule. Shrunk counterexamples and
// known-good deep schedules are committed under tests/corpus/mc/ and
// replayed by the mc_test corpus runner and `rdb_mc --replay` — the same
// pattern as the wire-fuzz corpus (tests/corpus/wire).
//
// Format (one directive per line, '#' comments ignored):
//
//   rdb-mc-trace v1
//   engine pbft
//   n 4
//   checkpoint_interval 2
//   batches 2
//   max_drops 1
//   max_dups 0
//   max_timeouts 3
//   crash_replica -1
//   byzantine 0
//   strict_spec 0
//   expect clean                  # or: expect violation <oracle>
//   step deliver <replica> <64-hex net-entry id>
//   step timeout <replica> <timer id>
//   step crash <replica>
//   step cert <seq> <64-hex history digest>
//   end
//
// Deterministic (det-zone): serialization is byte-stable so a re-shrunk
// trace diffs clean against the committed one.
#pragma once

#include <string>
#include <vector>

#include "common/det.h"
#include "mc/model.h"

namespace rdb::mc {

struct Trace {
  McConfig cfg;
  /// "clean", or the oracle name the schedule is expected to violate
  /// ("agreement", "chain", "exactly_once", "checkpoint").
  std::string expect{"clean"};
  std::vector<Transition> steps;
  /// Free-form provenance, emitted as leading '#' comments.
  std::string note;
};

RDB_DETERMINISTIC std::string serialize_trace(const Trace& trace);

/// Parses `text`; on failure returns false and (if non-null) sets `err` to
/// a line-numbered explanation.
bool parse_trace(const std::string& text, Trace* out, std::string* err);

}  // namespace rdb::mc
