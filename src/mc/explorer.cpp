#include "mc/explorer.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"

namespace rdb::mc {

namespace {

/// 64-bit canonical key for a transition (FNV-1a over its fields). Used
/// only to compare sleep sets in the visited cache; a collision could at
/// worst skip a redundant re-expansion or trigger a spurious one.
std::uint64_t transition_key(const Transition& t) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(t.kind));
  mix(t.replica);
  std::uint64_t id_prefix = 0;
  std::memcpy(&id_prefix, t.msg_id.data.data(), sizeof(id_prefix));
  mix(id_prefix);
  mix(t.timer_id);
  mix(t.seq);
  std::uint64_t hist_prefix = 0;
  std::memcpy(&hist_prefix, t.history.data.data(), sizeof(hist_prefix));
  mix(hist_prefix);
  return h;
}

std::vector<std::uint64_t> sleep_signature(
    const std::vector<Transition>& sleep) {
  std::vector<std::uint64_t> keys;
  keys.reserve(sleep.size());
  for (const Transition& t : sleep) keys.push_back(transition_key(t));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

struct Frame {
  World world;
  std::vector<Transition> enabled;
  std::vector<Transition> sleep;
  std::size_t next{0};
  Transition incoming{};  // transition that produced this frame (root: unset)
};

}  // namespace

ExploreResult explore_dfs(const McConfig& cfg, const ExploreLimits& limits) {
  ExploreResult res;
  // fingerprint -> signature of the smallest sleep set the state was
  // expanded with. A revisit may be skipped only when its sleep set is a
  // superset (it would explore a subset of what was already explored);
  // otherwise the state is re-expanded with the intersection.
  std::unordered_map<Digest, std::vector<std::uint64_t>, DigestHash> visited;

  World root = make_initial_world(cfg);
  if (auto v = evaluate_oracles(root)) {
    res.violation = v;
    res.stats.distinct_states = 1;
    return res;
  }
  visited.emplace(canonical_fingerprint(root), std::vector<std::uint64_t>{});

  std::vector<Frame> stack;
  {
    Frame f;
    f.enabled = enabled_transitions(root);
    f.world = std::move(root);
    stack.push_back(std::move(f));
  }

  bool refused = false;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next >= f.enabled.size()) {
      stack.pop_back();
      continue;
    }
    const std::size_t i = f.next++;
    const Transition t = f.enabled[i];
    if (std::find(f.sleep.begin(), f.sleep.end(), t) != f.sleep.end()) {
      ++res.stats.sleep_pruned;
      continue;
    }
    const auto child_depth = static_cast<std::uint32_t>(stack.size());
    if (child_depth > limits.max_depth) {
      ++res.stats.depth_capped;
      refused = true;
      continue;
    }
    World child = f.world;
    if (!apply_transition(child, t)) continue;  // enabled() lied — skip
    ++res.stats.transitions_applied;
    res.stats.max_depth_reached =
        std::max(res.stats.max_depth_reached, child_depth);
    if (auto v = evaluate_oracles(child)) {
      res.violation = v;
      for (std::size_t k = 1; k < stack.size(); ++k)
        res.counterexample.push_back(stack[k].incoming);
      res.counterexample.push_back(t);
      res.stats.distinct_states = visited.size();
      return res;
    }

    std::vector<Transition> child_sleep;
    for (const Transition& s : f.sleep)
      if (transitions_independent(s, t)) child_sleep.push_back(s);
    for (std::size_t j = 0; j < i; ++j)
      if (transitions_independent(f.enabled[j], t))
        child_sleep.push_back(f.enabled[j]);

    const Digest fp = canonical_fingerprint(child);
    std::vector<std::uint64_t> sig = sleep_signature(child_sleep);
    auto it = visited.find(fp);
    if (it != visited.end()) {
      if (std::includes(sig.begin(), sig.end(), it->second.begin(),
                        it->second.end())) {
        ++res.stats.dedup_hits;
        continue;
      }
      std::vector<std::uint64_t> inter;
      std::set_intersection(sig.begin(), sig.end(), it->second.begin(),
                            it->second.end(), std::back_inserter(inter));
      it->second = inter;
      std::vector<Transition> restricted;
      for (const Transition& s : child_sleep)
        if (std::binary_search(inter.begin(), inter.end(),
                               transition_key(s)))
          restricted.push_back(s);
      child_sleep = std::move(restricted);
    } else {
      if (visited.size() >= limits.max_states) {
        ++res.stats.state_capped;
        refused = true;
        continue;
      }
      visited.emplace(fp, std::move(sig));
    }

    Frame nf;
    nf.enabled = enabled_transitions(child);
    nf.world = std::move(child);
    nf.sleep = std::move(child_sleep);
    nf.incoming = t;
    stack.push_back(std::move(nf));  // invalidates f — loop re-derefs
  }
  res.stats.distinct_states = visited.size();
  res.stats.complete = !refused;
  return res;
}

ExploreResult explore_random_walks(const McConfig& cfg,
                                   const ExploreLimits& limits) {
  ExploreResult res;
  std::unordered_set<Digest, DigestHash> visited;
  for (std::uint32_t walk = 0; walk < limits.walks; ++walk) {
    // Per-walk deterministic seed: walks are independent, the whole sweep
    // reproduces from (seed, walks, walk_depth).
    std::uint64_t sm = limits.seed + walk;
    Rng rng(splitmix64(sm));
    World w = make_initial_world(cfg);
    visited.insert(canonical_fingerprint(w));
    if (auto v = evaluate_oracles(w)) {
      res.violation = v;
      res.stats.distinct_states = visited.size();
      return res;
    }
    std::vector<Transition> path;
    for (std::uint32_t d = 0; d < limits.walk_depth; ++d) {
      const std::vector<Transition> en = enabled_transitions(w);
      if (en.empty()) break;  // quiescent: nothing left to schedule
      const Transition t = en[rng.below(en.size())];
      if (!apply_transition(w, t)) continue;
      ++res.stats.transitions_applied;
      path.push_back(t);
      res.stats.max_depth_reached =
          std::max(res.stats.max_depth_reached, d + 1);
      if (!visited.insert(canonical_fingerprint(w)).second)
        ++res.stats.dedup_hits;
      if (auto v = evaluate_oracles(w)) {
        res.violation = v;
        res.counterexample = std::move(path);
        res.stats.distinct_states = visited.size();
        return res;
      }
    }
  }
  res.stats.distinct_states = visited.size();
  return res;
}

}  // namespace rdb::mc
