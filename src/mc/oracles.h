// Safety oracles, evaluated on every explored state.
//
// Four invariants, each a direct transcription of what the protocols
// guarantee to *honest* replicas (the scripted Byzantine replica, when
// configured, is excluded — a faulty replica's local state carries no
// safety obligation):
//
//   agreement     no two honest replicas execute different batches at the
//                 same sequence number within the irrevocable prefix
//                 (Zyzzyva: the CommitCert frontier, or the whole
//                 speculative log under strict_spec_agreement);
//   chain         hash-chain prefix consistency — equal sequence implies
//                 equal chain accumulator, so agreement cannot be faked by
//                 logs that match pointwise but diverged earlier;
//   exactly_once  each honest replica executes the contiguous sequence
//                 1,2,3,... with no duplicate and no gap (a duplicate or
//                 stale delivery must never re-execute a batch);
//   checkpoint    once a checkpoint is stable anywhere (2f+1 matching
//                 votes; the Byzantine script never lies on checkpoint
//                 votes, so stability implies 2f+1 real executions), every
//                 honest replica's records at or below it must agree —
//                 including Zyzzyva's speculative ones.
//
// Deterministic (det-zone): the violation detail string is embedded in
// replay reports that must reproduce byte-for-byte.
#pragma once

#include <optional>
#include <string>

#include "common/det.h"
#include "mc/model.h"

namespace rdb::mc {

struct Violation {
  std::string oracle;  // "agreement" | "chain" | "exactly_once" | "checkpoint"
  std::string detail;
};

/// Runs all four oracles against `w`; returns the first violation in the
/// fixed order above, or nullopt when every invariant holds.
RDB_DETERMINISTIC std::optional<Violation> evaluate_oracles(const World& w);

}  // namespace rdb::mc
