// Calibrated virtual CPU costs for every pipeline task (DESIGN.md §4).
//
// These constants set the *scale* of the simulation; the *shapes* of all
// reproduced figures come from the architecture (which thread does what,
// quorum sizes, link loads). They are calibrated so the paper's standard
// configuration — 16 replicas, batch 100, ED25519 clients + CMAC replicas,
// 1 worker / 2 batch / 1 execute thread — lands in the paper's reported
// 100-175K txns/s range, and so single-thread (0B 0E) setups land near its
// ~90-100K numbers.
//
// Signature costs are NOT defined here: the simulator charges
// crypto::scheme_cost() (crypto/scheme.h). Those Ed25519 constants were
// re-calibrated when the real implementation gained the windowed fixed-base
// table and interleaved double-scalar verification (docs/crypto.md); to
// re-derive them on new hardware, run `bench_crypto --out BENCH_crypto.json`
// and `micro_primitives --benchmark_filter=Ed25519` and scale the measured
// sign/verify latencies to the 3.8GHz reference core.
#pragma once

#include <cstdint>

#include "crypto/scheme.h"

namespace rdb::simfab {

struct CostModel {
  // --- input threads ---
  std::uint64_t input_client_msg_ns{1'000};   // receive+deserialize a request
  std::uint64_t input_replica_msg_ns{1'200};  // receive+deserialize a phase msg
  std::uint64_t seq_assign_ns{200};           // assign seq + enqueue (§4.3)

  // --- batch threads (§4.3) ---
  std::uint64_t batch_per_txn_ns{1'000};      // copy txn into batch, pool ops
  std::uint64_t batch_per_op_ns{300};         // per-operation resource alloc
  std::uint64_t batch_fixed_ns{2'000};        // allocate + finalize the batch

  // --- worker thread (§4.3/§4.4) ---
  // Per phase-message cost at the worker: dequeue, buffer handling, quorum
  // bookkeeping. This is what makes PBFT's quadratic phases bite as the
  // cluster grows (the declining curves of Figures 1/8).
  std::uint64_t worker_msg_overhead_ns{10'000};
  std::uint64_t worker_batch_check_ns{3'000};   // pre-prepare structural checks

  // --- execute thread (§4.6) ---
  std::uint64_t exec_mem_op_ns{250};        // in-memory key-value write
  std::uint64_t exec_pagedb_op_ns{150'000}; // off-memory store API call (§5.7)
  std::uint64_t exec_response_ns{300};      // build one client response
  std::uint64_t exec_block_ns{2'000};       // assemble block + certificate

  // --- checkpoint thread (§4.7) ---
  std::uint64_t checkpoint_msg_ns{3'000};

  // --- output threads ---
  std::uint64_t output_send_ns{1'500};      // syscall + serialize one send

  // --- hashing (charged wherever a digest is computed) ---
  std::uint64_t hash_fixed_ns{150};
  std::uint64_t hash_per_byte_x100{40};     // 0.40 ns/byte ≈ 2.5 GB/s

  std::uint64_t hash_ns(std::uint64_t bytes) const {
    return hash_fixed_ns + bytes * hash_per_byte_x100 / 100;
  }

  // Approximate wire size of one YCSB transaction inside a batch (key ids +
  // values + headers); §5.1's transactions carry small write payloads.
  std::uint64_t txn_wire_bytes(std::uint32_t ops, std::uint32_t value_bytes,
                               std::uint32_t padding) const {
    return 20 + static_cast<std::uint64_t>(ops) * (12 + value_bytes) + padding;
  }
};

}  // namespace rdb::simfab
