#include "simfab/fabric.h"

#include <algorithm>
#include <cassert>

#include "common/serde.h"
#include "crypto/sha256.h"

namespace rdb::simfab {

using protocol::Actions;
using protocol::Message;
using protocol::MessagePtr;
using protocol::MsgType;
using protocol::Transaction;

namespace {

/// Batch digest: real SHA-256 over the batch's canonical header (seq plus
/// the transaction identifiers). The simulation charges the virtual cost of
/// hashing the *full* batch bytes separately; hashing only the header keeps
/// host CPU low while giving the engines a collision-resistant identifier.
Digest batch_digest_of(SeqNum seq, std::uint64_t txn_begin,
                       std::size_t count) {
  Writer w;
  w.u64(seq);
  w.u64(txn_begin);
  w.u64(count);
  return crypto::sha256(BytesView(w.data()));
}

}  // namespace

// ---------------------------------------------------------------------------
// SimReplica
// ---------------------------------------------------------------------------

SimReplica::EngineVariant SimReplica::make_engine(const FabricConfig& cfg,
                                                  ReplicaId id) {
  switch (cfg.protocol) {
    case Protocol::kZyzzyva:
      return EngineVariant(
          std::in_place_type<protocol::ZyzzyvaEngine>,
          protocol::ZyzzyvaConfig{cfg.replicas, id,
                                  cfg.checkpoint_interval_batches(),
                                  /*window=*/100'000});
    case Protocol::kPoe:
      return EngineVariant(
          std::in_place_type<protocol::PoeEngine>,
          protocol::PoeConfig{cfg.replicas, id,
                              cfg.checkpoint_interval_batches(),
                              /*window=*/200'000});
    case Protocol::kPbft:
    default:
      return EngineVariant(
          std::in_place_type<protocol::PbftEngine>,
          protocol::PbftConfig{cfg.replicas, id,
                               cfg.checkpoint_interval_batches(),
                               /*window=*/200'000, cfg.request_timeout_ns});
  }
}

SimReplica::SimReplica(Fabric& fabric, ReplicaId id)
    : fab_(fabric),
      id_(id),
      engine_(make_engine(fabric.config(), id)) {
  const auto& cfg = fab_.config();
  cpu_ = std::make_unique<sim::NodeCpu>(fab_.sched(), cfg.cores);

  for (std::uint32_t i = 0; i < cfg.client_input_threads; ++i)
    client_inputs_.push_back(&cpu_->add_thread("input-client-" +
                                               std::to_string(i)));
  for (std::uint32_t i = 0; i < cfg.replica_input_threads; ++i)
    replica_inputs_.push_back(&cpu_->add_thread("input-replica-" +
                                                std::to_string(i)));
  worker_ = &cpu_->add_thread("worker");
  for (std::uint32_t i = 0; i < cfg.batch_threads; ++i)
    batchers_.push_back(&cpu_->add_thread("batch-" + std::to_string(i)));
  for (std::uint32_t i = 0; i < cfg.execute_threads; ++i)
    executors_.push_back(&cpu_->add_thread("execute-" + std::to_string(i)));
  if (cfg.checkpoint_thread)
    checkpointer_ = &cpu_->add_thread("checkpoint");
  for (std::uint32_t i = 0; i < cfg.output_threads; ++i)
    outputs_.push_back(&cpu_->add_thread("output-" + std::to_string(i)));
}

bool SimReplica::is_primary() const { return fab_.primary_id() == id_; }

std::vector<ThreadSaturation> SimReplica::saturations(TimeNs window) const {
  std::vector<ThreadSaturation> out;
  for (const auto& t : cpu_->threads())
    out.push_back({t->name(), t->saturation_percent(window)});
  return out;
}

void SimReplica::reset_thread_stats() {
  for (const auto& t : cpu_->threads())
    const_cast<sim::SimThread&>(*t).reset_stats();
}

sim::SimThread& SimReplica::output_thread() {
  sim::SimThread& t = *outputs_[rr_output_ % outputs_.size()];
  ++rr_output_;
  return t;
}

sim::SimThread& SimReplica::batch_thread_for_dispatch() {
  // §4.3: a common lock-free queue means any idle batch thread consumes the
  // next request; the simulation equivalent is shortest-queue dispatch.
  if (batchers_.empty()) return *worker_;
  sim::SimThread* best = batchers_[0];
  for (auto* b : batchers_)
    if (b->queue_depth() < best->queue_depth()) best = b;
  return *best;
}

std::uint64_t SimReplica::sign_cost(bool replica_link,
                                    std::size_t copies) const {
  auto scheme = replica_link ? fab_.config().schemes.replica_scheme
                             : fab_.config().schemes.client_scheme;
  auto cost = crypto::scheme_cost(scheme);
  bool symmetric = scheme == crypto::SignatureScheme::kCmacAes;
  // MACs are pairwise: one tag per recipient. Digital signatures are signed
  // once regardless of fan-out.
  return symmetric ? cost.sign_ns * copies : cost.sign_ns;
}

std::uint64_t SimReplica::verify_cost(bool replica_link) const {
  auto scheme = replica_link ? fab_.config().schemes.replica_scheme
                             : fab_.config().schemes.client_scheme;
  return crypto::scheme_cost(scheme).verify_ns;
}

std::uint64_t SimReplica::batch_bytes(std::size_t txn_count) const {
  const auto& cfg = fab_.config();
  return 56 + txn_count * cfg.costs.txn_wire_bytes(cfg.ops_per_txn,
                                                   cfg.value_bytes,
                                                   cfg.payload_padding);
}

void SimReplica::deliver(MessagePtr msg) { route(std::move(msg)); }

void SimReplica::route(MessagePtr msg) {
  const auto& costs = fab_.config().costs;
  switch (msg->type()) {
    case MsgType::kPrePrepare:
    case MsgType::kOrderRequest:
    case MsgType::kPrepare:
    case MsgType::kCommit:
    case MsgType::kViewChange:
    case MsgType::kNewView:
    case MsgType::kBatchRequest:
    case MsgType::kBatchResponse: {
      sim::SimThread& in = *replica_inputs_[rr_input_ %
                                            replica_inputs_.size()];
      ++rr_input_;
      in.post(costs.input_replica_msg_ns,
              [this, msg] { process_on_worker(msg); });
      break;
    }
    case MsgType::kCheckpoint: {
      sim::SimThread& t = checkpointer_ ? *checkpointer_ : *worker_;
      std::uint64_t cost =
          costs.checkpoint_msg_ns + verify_cost(/*replica_link=*/true);
      t.post(cost, [this, msg, &t] {
        Actions acts = std::visit(
            [&](auto& eng) { return eng.on_checkpoint(*msg); }, engine_);
        perform(std::move(acts), t);
      });
      break;
    }
    case MsgType::kCommitCert: {
      // Zyzzyva slow path: verify the 2f+1 embedded responses.
      std::uint64_t cost =
          costs.worker_msg_overhead_ns +
          verify_cost(/*replica_link=*/true) * (2 * fab_.config().f() + 1);
      worker_->post(cost, [this, msg] {
        if (auto* z = std::get_if<protocol::ZyzzyvaEngine>(&engine_)) {
          perform(z->on_commit_cert(*msg), *worker_);
        }
      });
      break;
    }
    default:
      break;  // responses never arrive at replicas
  }
}

void SimReplica::process_on_worker(MessagePtr msg) {
  const auto& costs = fab_.config().costs;
  std::uint64_t cost = costs.worker_msg_overhead_ns;
  bool self_msg = msg->from == Endpoint::replica(id_);
  if (!self_msg) cost += verify_cost(/*replica_link=*/true);
  if (msg->type() == MsgType::kPrePrepare ||
      msg->type() == MsgType::kOrderRequest) {
    // Backups recompute the batch digest over the full batch string and run
    // structural checks before agreeing to the order (§4.4).
    std::size_t count =
        msg->type() == MsgType::kPrePrepare
            ? std::get<protocol::PrePrepare>(msg->payload).txns.size()
            : std::get<protocol::OrderRequest>(msg->payload).txns.size();
    if (!self_msg)
      cost += costs.hash_ns(batch_bytes(count)) + costs.worker_batch_check_ns;
  }

  worker_->post(cost, [this, msg] {
    Actions acts;
    std::visit(
        [&](auto& eng) {
          using E = std::decay_t<decltype(eng)>;
          if constexpr (std::is_same_v<E, protocol::PbftEngine>) {
            switch (msg->type()) {
              case MsgType::kPrePrepare:
                acts = eng.on_preprepare(*msg);
                break;
              case MsgType::kPrepare:
                acts = eng.on_prepare(*msg);
                break;
              case MsgType::kCommit:
                acts = eng.on_commit(*msg);
                break;
              case MsgType::kViewChange:
                acts = eng.on_view_change(*msg);
                break;
              case MsgType::kNewView:
                acts = eng.on_new_view(*msg);
                break;
              case MsgType::kBatchRequest:
                acts = eng.on_batch_request(*msg);
                break;
              case MsgType::kBatchResponse: {
                // Validate digest(txns) == digest per entry; the sim digest
                // covers (seq, txn_begin, count).
                Message checked = *msg;
                auto& resp = std::get<protocol::BatchResponse>(checked.payload);
                std::erase_if(resp.entries, [](const auto& e) {
                  return batch_digest_of(e.seq, e.txn_begin,
                                         e.txns.size()) != e.digest;
                });
                acts = eng.on_batch_response(checked);
                break;
              }
              default:
                break;
            }
          } else if constexpr (std::is_same_v<E, protocol::ZyzzyvaEngine>) {
            if (msg->type() == MsgType::kOrderRequest)
              acts = eng.on_order_request(*msg);
          } else {  // PoE: Propose/Support ride PrePrepare/Prepare shapes
            if (msg->type() == MsgType::kPrePrepare)
              acts = eng.on_propose(*msg);
            else if (msg->type() == MsgType::kPrepare)
              acts = eng.on_support(*msg);
          }
        },
        engine_);
    perform(std::move(acts), *worker_);
  });
}

void SimReplica::deliver_client_bundle(std::vector<Transaction> txns) {
  const auto& costs = fab_.config().costs;
  std::uint64_t count = txns.size();
  sim::SimThread& in = *client_inputs_[0];
  auto shared = std::make_shared<std::vector<Transaction>>(std::move(txns));
  in.post(count * (costs.input_client_msg_ns + costs.seq_assign_ns),
          [this, shared] {
            if (!is_primary()) {
              // PBFT liveness: relay to the primary and arm a watchdog; if
              // the primary makes no progress, demand a view change.
              ReplicaId p = fab_.primary_id();
              std::uint64_t bytes = 10 + shared->size() * 64;
              output_thread().post(
                  fab_.config().costs.output_send_ns,
                  [this, p, bytes, shared] {
                    fab_.net().send(id_, p, bytes, [this, p, shared] {
                      fab_.replica(p).deliver_client_bundle(*shared);
                    });
                  });
              if (!client_watchdog_armed_) {
                client_watchdog_armed_ = true;
                SeqNum seen = chain_.last_seq();
                fab_.sched().schedule(
                    fab_.config().request_timeout_ns, [this, seen] {
                      client_watchdog_armed_ = false;
                      if (chain_.last_seq() != seen) return;  // progress
                      worker_->post(1'000, [this] {
                        if (auto* pb =
                                std::get_if<protocol::PbftEngine>(&engine_))
                          perform(pb->on_client_request_timeout(), *worker_);
                      });
                    });
              }
              return;
            }
            pending_txns_.insert(pending_txns_.end(), shared->begin(),
                                 shared->end());
            form_batches(false);
            if (!pending_txns_.empty() && !flush_timer_armed_) {
              flush_timer_armed_ = true;
              fab_.sched().schedule(fab_.config().batch_flush_timeout_ns,
                                    [this] {
                                      flush_timer_armed_ = false;
                                      form_batches(true);
                                    });
            }
          });
}

void SimReplica::form_batches(bool flush_partial) {
  const std::uint32_t bsz = fab_.config().batch_size;
  while (pending_txns_.size() >= bsz) {
    std::vector<Transaction> batch(pending_txns_.begin(),
                                   pending_txns_.begin() + bsz);
    pending_txns_.erase(pending_txns_.begin(), pending_txns_.begin() + bsz);
    SeqNum seq = ++next_seq_;
    std::uint64_t begin = next_txn_id_;
    next_txn_id_ += batch.size();
    dispatch_batch(seq, std::move(batch), begin);
  }
  if (flush_partial && !pending_txns_.empty()) {
    std::vector<Transaction> batch;
    batch.swap(pending_txns_);
    SeqNum seq = ++next_seq_;
    std::uint64_t begin = next_txn_id_;
    next_txn_id_ += batch.size();
    dispatch_batch(seq, std::move(batch), begin);
  }
}

void SimReplica::dispatch_batch(SeqNum seq, std::vector<Transaction> txns,
                                std::uint64_t txn_begin) {
  // Strict-ordering ablation (§6): cap concurrent consensus rounds.
  std::uint32_t cap = fab_.config().max_inflight_batches;
  if (cap != 0 && inflight_batches_ >= cap) {
    held_batches_.push_back(HeldBatch{seq, std::move(txns), txn_begin});
    return;
  }
  ++inflight_batches_;
  dispatch_batch_now(seq, std::move(txns), txn_begin);
}

void SimReplica::dispatch_batch_now(SeqNum seq, std::vector<Transaction> txns,
                                    std::uint64_t txn_begin) {
  const auto& costs = fab_.config().costs;
  std::size_t count = txns.size();
  // Batch-thread work (§4.3): verify each client signature, assemble the
  // batch (per-transaction copy plus per-operation resource allocation —
  // the saturation driver of Figure 11), hash the single string
  // representation of the whole batch once.
  std::uint64_t cost =
      count * (verify_cost(/*replica_link=*/false) + costs.batch_per_txn_ns +
               static_cast<std::uint64_t>(fab_.config().ops_per_txn) *
                   costs.batch_per_op_ns) +
      costs.batch_fixed_ns + costs.hash_ns(batch_bytes(count));

  sim::SimThread& bt = batch_thread_for_dispatch();
  auto shared = std::make_shared<std::vector<Transaction>>(std::move(txns));
  bt.post(cost, [this, seq, shared, txn_begin, &bt] {
    Digest d = batch_digest_of(seq, txn_begin, shared->size());
    if (auto* p = std::get_if<protocol::PbftEngine>(&engine_)) {
      perform(p->make_preprepare(seq, std::move(*shared), txn_begin, d), bt);
    } else if (auto* poe = std::get_if<protocol::PoeEngine>(&engine_)) {
      perform(poe->make_propose(seq, std::move(*shared), txn_begin, d), bt);
    } else {
      // Zyzzyva's hash-chained history forces in-order emission: stage
      // completed batches and release the contiguous prefix.
      auto& z = std::get<protocol::ZyzzyvaEngine>(engine_);
      zyz_ready_.emplace(seq, PendingBatch{std::move(*shared), txn_begin});
      for (auto it = zyz_ready_.begin();
           it != zyz_ready_.end() && it->first == zyz_next_;) {
        Digest dd =
            batch_digest_of(it->first, it->second.txn_begin,
                            it->second.txns.size());
        perform(z.make_order_request(it->first, std::move(it->second.txns),
                                     it->second.txn_begin, dd),
                bt);
        ++zyz_next_;
        it = zyz_ready_.erase(it);
      }
    }
  });
}

void SimReplica::perform(Actions actions, sim::SimThread& origin) {
  const auto& cfg = fab_.config();
  const auto& costs = cfg.costs;

  // visit_action: exhaustive by construction (protocol/actions.h). Actions
  // the simulator deliberately does not model get an explicit, commented
  // no-op handler instead of a silent fall-through.
  for (auto& action : actions) {
    protocol::visit_action(
        action,
        [&](protocol::BroadcastAction& bc) {
          std::size_t copies = cfg.replicas - 1;
          std::uint64_t cost = sign_cost(/*replica_link=*/true, copies);
          // The engine cannot know its own commit signature; report a
          // placeholder of the right size for the block certificate (§4.6).
          if (bc.msg.type() == MsgType::kCommit) {
            if (auto* p = std::get_if<protocol::PbftEngine>(&engine_)) {
              auto seq = std::get<protocol::Commit>(bc.msg.payload).seq;
              std::size_t sig_bytes =
                  crypto::scheme_cost(cfg.schemes.replica_scheme).sig_bytes;
              p->note_own_commit_signature(seq, Bytes(sig_bytes, 0));
            }
          }
          auto msg = std::make_shared<Message>(std::move(bc.msg));
          bool include_self = bc.include_self;
          origin.post(cost, [this, msg, include_self] {
            broadcast_message(*msg, include_self);
          });
        },
        [&](protocol::SendAction& send) {
          if (send.msg.type() == MsgType::kSpecResponse) {
            // Spec responses are generated (aggregated per client machine)
            // by the execute stage; drop the engine's per-client sends.
            return;
          }
          if (send.msg.type() == MsgType::kLocalCommit &&
              send.to.kind == Endpoint::Kind::kClient) {
            ClientId client = send.to.id;
            std::uint64_t cost = sign_cost(/*replica_link=*/true, 1);
            origin.post(cost, [this, client] {
              std::uint32_t machine = fab_.machine_of_client(client);
              std::uint64_t bytes = 24 + 17 + 10;
              output_thread().post(fab_.config().costs.output_send_ns,
                                   [this, machine, bytes, client] {
                fab_.net().send(id_, fab_.machine_node(machine), bytes,
                                [this, client] {
                                  fab_.deliver_local_commit(id_, client);
                                });
              });
            });
          }
        },
        [&](protocol::ExecuteAction& ex) {
          std::uint64_t op_ns = cfg.storage == StorageModel::kMemory
                                    ? costs.exec_mem_op_ns
                                    : costs.exec_pagedb_op_ns;
          std::uint64_t per_txn = op_ns * cfg.ops_per_txn +
                                  costs.exec_response_ns +
                                  sign_cost(/*replica_link=*/true, 1);
          std::uint64_t cost = ex.txns.size() * per_txn + costs.exec_block_ns;
          sim::SimThread& et =
              executors_.empty() ? *worker_
                                 : *executors_[ex.seq % executors_.size()];
          auto shared =
              std::make_shared<protocol::ExecuteAction>(std::move(ex));
          et.post(cost, [this, shared] { do_execute(*shared); });
        },
        [&](protocol::SetTimerAction& st) {
          std::uint64_t id = st.id;
          timers_[id] = fab_.sched().schedule(st.delay_ns, [this, id] {
            timers_.erase(id);
            worker_->post(1'000, [this, id] {
              if (auto* p = std::get_if<protocol::PbftEngine>(&engine_))
                perform(p->on_timeout(id), *worker_);
            });
          });
        },
        [&](protocol::CancelTimerAction& ct) {
          auto it = timers_.find(ct.id);
          if (it != timers_.end()) {
            fab_.sched().cancel(it->second);
            timers_.erase(it);
          }
        },
        [&](protocol::StableCheckpointAction& sc) {
          chain_.prune_before(sc.seq);
        },
        [&](protocol::ViewChangedAction& vc) {
          ++view_changes_;
          fab_.note_primary(static_cast<ReplicaId>(vc.view % cfg.replicas));
        },
        [&](protocol::RequestSnapshotAction&) {
          // Snapshot state transfer is not modeled by the simulator (the
          // threaded runtime owns it); dropping the request only delays a
          // lagging replica, never breaks safety.
        },
        [&](protocol::ExecDivergenceAction&) {
          // The simulator executes nothing for real, so fingerprints never
          // diverge; reaching this would mean the engine itself is broken,
          // which chaos_test covers against the threaded fabric.
        });
  }
}

void SimReplica::do_execute(const protocol::ExecuteAction& ex) {
  const auto& cfg = fab_.config();
  const auto& costs = cfg.costs;

  // Block generation (§4.6): the commit certificate stands in for the
  // previous-block hash.
  ledger::Block block;
  block.seq = ex.seq;
  block.view = ex.view;
  block.batch_digest = ex.batch_digest;
  block.txn_begin = ex.txn_begin;
  block.txn_end = ex.txn_begin + ex.txns.size();
  block.certificate = ex.certificate;
  bool ok = chain_.append(std::move(block));
  assert(ok);
  (void)ok;

  if (id_ == fab_.primary_id()) {
    fab_.count_consensus_round();
    fab_.count_block();
    fab_.count_ops(ex.txns.size() * cfg.ops_per_txn);
    // Release the next held batch under the strict-ordering ablation.
    if (cfg.max_inflight_batches != 0 && inflight_batches_ > 0) {
      --inflight_batches_;
      if (!held_batches_.empty() &&
          inflight_batches_ < cfg.max_inflight_batches) {
        HeldBatch next = std::move(held_batches_.front());
        held_batches_.pop_front();
        ++inflight_batches_;
        dispatch_batch_now(next.seq, std::move(next.txns), next.txn_begin);
      }
    }
  }

  // Aggregate responses per client machine (one network message instead of
  // one per client; see DESIGN.md on event aggregation).
  std::vector<std::vector<std::pair<ClientId, RequestId>>> per_machine(
      cfg.client_machines);
  for (const auto& txn : ex.txns)
    per_machine[fab_.machine_of_client(txn.client)].push_back(
        {txn.client, txn.req_id});

  std::size_t sig_bytes =
      crypto::scheme_cost(cfg.schemes.replica_scheme).sig_bytes + 1;
  for (std::uint32_t m = 0; m < cfg.client_machines; ++m) {
    if (per_machine[m].empty()) continue;
    std::uint64_t bytes = per_machine[m].size() * (28 + sig_bytes) + 10;
    auto acks = std::make_shared<std::vector<std::pair<ClientId, RequestId>>>(
        std::move(per_machine[m]));
    bool speculative = ex.speculative;
    output_thread().post(costs.output_send_ns, [this, m, bytes, acks,
                                                speculative] {
      fab_.net().send(id_, fab_.machine_node(m), bytes,
                      [this, m, acks, speculative] {
                        fab_.deliver_responses(id_, m, *acks, speculative);
                      });
    });
  }

  // Notify the engine; this is where periodic checkpoints originate (§4.7).
  sim::SimThread& et = executors_.empty() ? *worker_ : *executors_[0];
  Actions acts = std::visit(
      [&](auto& eng) { return eng.on_executed(ex.seq, chain_.accumulator()); },
      engine_);
  perform(std::move(acts), et);
}

void SimReplica::start_catchup_poll(TimeNs interval_ns) {
  fab_.sched().schedule(interval_ns, [this, interval_ns] {
    worker_->post(1'000, [this] {
      if (auto* p = std::get_if<protocol::PbftEngine>(&engine_))
        perform(p->maybe_request_catchup(), *worker_);
    });
    start_catchup_poll(interval_ns);
  });
}

void SimReplica::broadcast_message(const Message& msg, bool include_self) {
  const auto& cfg = fab_.config();
  const auto& costs = cfg.costs;
  std::size_t sig_bytes =
      crypto::scheme_cost(cfg.schemes.replica_scheme).sig_bytes + 1;
  std::uint64_t bytes = msg.wire_size() + sig_bytes;
  if (msg.type() == MsgType::kPrePrepare) {
    bytes = batch_bytes(std::get<protocol::PrePrepare>(msg.payload).txns.size()) +
            sig_bytes + 16;
  } else if (msg.type() == MsgType::kOrderRequest) {
    bytes =
        batch_bytes(std::get<protocol::OrderRequest>(msg.payload).txns.size()) +
        sig_bytes + 48;
  }

  auto shared = std::make_shared<const Message>(msg);
  for (ReplicaId peer = 0; peer < cfg.replicas; ++peer) {
    if (peer == id_) continue;
    output_thread().post(costs.output_send_ns, [this, peer, bytes, shared] {
      fab_.net().send(id_, peer, bytes,
                      [this, peer, shared] {
                        fab_.replica(peer).deliver(shared);
                      });
    });
  }
  if (include_self) {
    // Local self-delivery: straight into the worker queue, no network.
    process_on_worker(shared);
  }
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

struct Fabric::ClientState {
  RequestId current_req{0};
  bool outstanding{false};
  bool slow_path{false};
  TimeNs sent_at{0};
  std::uint16_t responses{0};
  std::uint16_t local_commits{0};
  std::uint16_t attempts{0};  // retransmissions for the current request
  sim::EventId timer{0};
  bool timer_armed{false};
};

struct Fabric::Machine {
  std::vector<Transaction> pending;
  bool flush_armed{false};
};

Fabric::Fabric(FabricConfig config)
    : cfg_(config),
      net_(sched_, config.net, config.replicas + config.client_machines),
      rng_(config.seed) {
  std::uint32_t replica_count =
      cfg_.mode == RunMode::kConsensus ? cfg_.replicas : 1;
  if (cfg_.mode != RunMode::kConsensus) cfg_.replicas = 1;

  replicas_.reserve(replica_count);
  for (ReplicaId r = 0; r < replica_count; ++r)
    replicas_.push_back(std::make_unique<SimReplica>(*this, r));

  if (cfg_.mode != RunMode::kConsensus) {
    // Figure 7: two threads at the primary work independently, no ordering.
    ub_threads_.push_back(&replicas_[0]->cpu().add_thread("ub-0"));
    ub_threads_.push_back(&replicas_[0]->cpu().add_thread("ub-1"));
  }

  for (ReplicaId r : cfg_.failed_replicas) net_.set_failed(r, true);

  clients_.resize(cfg_.clients);
  machines_.resize(cfg_.client_machines);
}

Fabric::~Fabric() = default;

std::uint32_t Fabric::machine_of_client(ClientId c) const {
  std::uint64_t per =
      (cfg_.clients + cfg_.client_machines - 1) / cfg_.client_machines;
  auto m = static_cast<std::uint32_t>(c / per);
  return std::min(m, cfg_.client_machines - 1);
}

bool Fabric::in_measure_window() const { return measuring_; }

void Fabric::count_committed_txn(TimeNs latency_ns) {
  if (!measuring_) return;
  ++committed_;
  latency_.record(latency_ns);
}

void Fabric::start_clients() {
  for (ClientId c = 0; c < cfg_.clients; ++c) {
    TimeNs start = rng_.below(std::max<TimeNs>(1, cfg_.warmup_ns / 2));
    sched_.schedule(start, [this, c] { client_send_next(c); });
  }
}

void Fabric::client_send_next(ClientId c) {
  ClientState& cs = clients_[c];
  ++cs.current_req;
  cs.outstanding = true;
  cs.slow_path = false;
  cs.sent_at = sched_.now();
  cs.responses = 0;
  cs.local_commits = 0;
  cs.attempts = 0;

  Transaction txn;
  txn.client = c;
  txn.req_id = cs.current_req;
  txn.ops = cfg_.ops_per_txn;

  std::uint32_t m = machine_of_client(c);
  machines_[m].pending.push_back(std::move(txn));
  if (!machines_[m].flush_armed) {
    machines_[m].flush_armed = true;
    sched_.schedule(cfg_.client_agg_window_ns, [this, m] { flush_machine(m); });
  }

  // Zyzzyva's client must detect a missing response; with crash-faulted
  // backups the fast path (all n responses) can never complete, so arm the
  // timeout that triggers the commit-certificate slow path (§5.10). PBFT
  // clients arm it for retransmission under primary failure. PoE needs
  // neither: 2f+1 responses remain reachable with f crashes.
  bool needs_timer =
      !cfg_.failed_replicas.empty() && cfg_.protocol != Protocol::kPoe;
  if (needs_timer) {
    RequestId req = cs.current_req;
    cs.timer_armed = true;
    cs.timer = sched_.schedule(cfg_.zyz_client_timeout_ns,
                               [this, c, req] { zyz_timeout(c, req); });
  }
}

void Fabric::flush_machine(std::uint32_t m) {
  Machine& machine = machines_[m];
  machine.flush_armed = false;
  if (machine.pending.empty()) return;
  std::vector<Transaction> bundle;
  bundle.swap(machine.pending);

  std::size_t client_sig =
      crypto::scheme_cost(cfg_.schemes.client_scheme).sig_bytes + 1;
  std::uint64_t bytes = 10;
  for (const auto& t : bundle)
    bytes += cfg_.costs.txn_wire_bytes(t.ops, cfg_.value_bytes,
                                       cfg_.payload_padding) +
             client_sig;

  auto shared = std::make_shared<std::vector<Transaction>>(std::move(bundle));
  if (cfg_.mode == RunMode::kConsensus) {
    ReplicaId p = primary_;
    net_.send(machine_node(m), p, bytes, [this, p, shared] {
      replica(p).deliver_client_bundle(*shared);
    });
  } else {
    net_.send(machine_node(m), 0, bytes, [this, m, shared] {
      upper_bound_deliver(m, *shared);
    });
  }
}

void Fabric::upper_bound_deliver(std::uint32_t machine,
                                 std::vector<Transaction> txns) {
  // Figure 7: the primary simply answers each request (optionally executing
  // it first); no consensus, no ordering, two independent threads.
  const auto& costs = cfg_.costs;
  bool execute = cfg_.mode == RunMode::kUpperBoundExec;
  std::uint64_t per_txn = costs.input_client_msg_ns +
                          costs.exec_response_ns +
                          crypto::scheme_cost(cfg_.schemes.replica_scheme)
                              .sign_ns +
                          costs.output_send_ns;
  if (execute) per_txn += costs.exec_mem_op_ns * cfg_.ops_per_txn;

  sim::SimThread& t = *ub_threads_[rr_ub_ % ub_threads_.size()];
  ++rr_ub_;
  auto shared = std::make_shared<std::vector<Transaction>>(std::move(txns));
  std::uint64_t total = per_txn * shared->size();
  t.post(total, [this, machine, shared] {
    std::vector<std::pair<ClientId, RequestId>> acks;
    acks.reserve(shared->size());
    std::uint64_t ops = 0;
    for (const auto& txn : *shared) {
      acks.push_back({txn.client, txn.req_id});
      ops += txn.ops;
    }
    count_ops(ops);
    std::uint64_t bytes = acks.size() * 45 + 10;
    auto acks_ptr =
        std::make_shared<std::vector<std::pair<ClientId, RequestId>>>(
            std::move(acks));
    net_.send(0, machine_node(machine), bytes, [this, machine, acks_ptr] {
      deliver_responses(0, machine, *acks_ptr, false);
    });
  });
}

void Fabric::deliver_responses(
    ReplicaId from, std::uint32_t machine,
    std::vector<std::pair<ClientId, RequestId>> acks, bool speculative) {
  (void)machine;
  for (const auto& [client, req] : acks)
    on_response(client, req, from, speculative);
}

void Fabric::deliver_local_commit(ReplicaId from, ClientId client) {
  on_local_commit(client, from);
}

void Fabric::on_response(ClientId c, RequestId req, ReplicaId from,
                         bool speculative) {
  (void)from;
  (void)speculative;  // mode-specific quorum rules below subsume the flag
  ClientState& cs = clients_[c];
  if (!cs.outstanding || cs.current_req != req) return;
  ++cs.responses;

  if (cfg_.mode != RunMode::kConsensus) {
    complete_request(cs, c);
    return;
  }

  switch (cfg_.protocol) {
    case Protocol::kPbft:
      // PBFT client: f+1 matching responses prove a committed result.
      if (cs.responses >= cfg_.f() + 1) complete_request(cs, c);
      return;
    case Protocol::kPoe:
      // PoE client: 2f+1 matching speculative responses — reachable with f
      // crashed replicas, unlike Zyzzyva's fast path.
      if (cs.responses >= 2 * cfg_.f() + 1) complete_request(cs, c);
      return;
    case Protocol::kZyzzyva:
      // Fast path: ALL 3f+1 replicas must answer with matching history.
      if (!cs.slow_path && cs.responses >= cfg_.replicas) {
        if (measuring_) ++zyz_fast_;
        complete_request(cs, c);
      }
      return;
  }
}

void Fabric::zyz_timeout(ClientId c, RequestId req) {
  ClientState& cs = clients_[c];
  cs.timer_armed = false;
  if (!cs.outstanding || cs.current_req != req) return;

  if (cfg_.protocol == Protocol::kPbft) {
    // PBFT client retransmission: rotate through replicas so the request
    // reaches a live backup, which relays it and (if the primary stays
    // silent) triggers a view change.
    ++cs.attempts;
    ReplicaId target = static_cast<ReplicaId>(
        (primary_ + cs.attempts) % cfg_.replicas);
    std::uint32_t m = machine_of_client(c);
    auto bundle = std::make_shared<std::vector<Transaction>>();
    Transaction txn;
    txn.client = c;
    txn.req_id = cs.current_req;
    txn.ops = cfg_.ops_per_txn;
    bundle->push_back(std::move(txn));
    net_.send(machine_node(m), target, 80, [this, target, bundle] {
      replica(target).deliver_client_bundle(*bundle);
    });
    cs.timer_armed = true;
    cs.timer = sched_.schedule(cfg_.zyz_client_timeout_ns,
                               [this, c, req] { zyz_timeout(c, req); });
    return;
  }

  if (cs.responses >= 2 * cfg_.f() + 1 && !cs.slow_path) {
    // Slow path: broadcast the commit certificate, await f+1 local commits.
    cs.slow_path = true;
    if (measuring_) ++zyz_slow_;
    std::uint32_t m = machine_of_client(c);
    for (ReplicaId r = 0; r < cfg_.replicas; ++r) {
      protocol::CommitCert cc;
      cc.view = 0;
      cc.seq = 0;  // the fabric matches on (client, req), not seq
      auto msg = std::make_shared<Message>();
      msg->from = Endpoint::client(c);
      msg->payload = cc;
      std::uint64_t bytes = 56 + (2 * cfg_.f() + 1) * 68;
      net_.send(machine_node(m), r, bytes, [this, r, msg, c] {
        // Replica-side verification cost is charged in route(); the reply
        // is modelled directly since history always matches in crash runs.
        replica(r).worker_->post(
            cfg_.costs.worker_msg_overhead_ns +
                crypto::scheme_cost(cfg_.schemes.replica_scheme).verify_ns *
                    (2 * cfg_.f() + 1),
            [this, r, c] {
              std::uint64_t bytes2 = 24 + 17 + 10;
              std::uint32_t mm = machine_of_client(c);
              replica(r).output_thread().post(
                  cfg_.costs.output_send_ns, [this, r, mm, bytes2, c] {
                    net_.send(r, machine_node(mm), bytes2,
                              [this, r, c] { deliver_local_commit(r, c); });
                  });
            });
      });
    }
  } else if (!cs.slow_path) {
    // Not enough matching responses yet: keep waiting.
    cs.timer_armed = true;
    cs.timer = sched_.schedule(cfg_.zyz_client_timeout_ns,
                               [this, c, req] { zyz_timeout(c, req); });
  }
}

void Fabric::on_local_commit(ClientId c, ReplicaId from) {
  (void)from;
  ClientState& cs = clients_[c];
  if (!cs.outstanding || !cs.slow_path) return;
  ++cs.local_commits;
  if (cs.local_commits >= cfg_.f() + 1) complete_request(cs, c);
}

void Fabric::complete_request(ClientState& cs, ClientId c) {
  cs.outstanding = false;
  if (cs.timer_armed) {
    sched_.cancel(cs.timer);
    cs.timer_armed = false;
  }
  // Every completion inside the window counts; latency covers the full
  // queueing delay even for requests submitted during warmup (those are
  // exactly the long-latency tail under overload).
  if (measuring_) count_committed_txn(sched_.now() - cs.sent_at);
  client_send_next(c);
}

ExperimentResult Fabric::run() {
  if (cfg_.mode == RunMode::kConsensus && cfg_.catchup_poll_ns > 0 &&
      cfg_.protocol == Protocol::kPbft) {
    for (auto& r : replicas_)
      if (!net_.is_failed(r->id())) r->start_catchup_poll(cfg_.catchup_poll_ns);
  }
  start_clients();
  sched_.run_until(cfg_.warmup_ns);

  // Reset windowed statistics at the start of the measurement period.
  for (auto& r : replicas_) r->reset_thread_stats();
  net_.reset_stats();
  std::vector<TimeNs> egress_base(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i)
    egress_base[i] = net_.egress_busy_ns(static_cast<std::uint32_t>(i));
  latency_.reset();
  committed_ = rounds_ = blocks_ = ops_ = 0;
  zyz_fast_ = zyz_slow_ = 0;
  measuring_ = true;
  measure_start_ = sched_.now();

  sched_.run_until(cfg_.warmup_ns + cfg_.measure_ns);
  measuring_ = false;

  TimeNs window = sched_.now() - measure_start_;
  double seconds = static_cast<double>(window) / 1e9;

  ExperimentResult res;
  res.metrics.committed_txns = committed_;
  res.metrics.throughput_tps = static_cast<double>(committed_) / seconds;
  res.metrics.ops_per_sec = static_cast<double>(ops_) / seconds;
  res.metrics.consensus_rounds = rounds_;
  res.metrics.latency_avg_ms = latency_.mean_ns() / 1e6;
  res.metrics.latency_p50_ms = latency_.percentile_ns(50) / 1e6;
  res.metrics.latency_p99_ms = latency_.percentile_ns(99) / 1e6;
  res.blocks_committed = blocks_;
  res.zyz_fast_path = zyz_fast_;
  res.zyz_slow_path = zyz_slow_;

  res.primary_threads = replicas_[primary_]->saturations(window);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    auto r = static_cast<ReplicaId>(i);
    if (r != primary_ && !net_.is_failed(r)) {
      res.backup_threads = replicas_[i]->saturations(window);
      break;
    }
  }
  res.net = net_.stats();
  res.primary_egress_utilization =
      static_cast<double>(net_.egress_busy_ns(primary_) -
                          egress_base[primary_]) /
      static_cast<double>(window);
  for (auto& r : replicas_) res.view_changes += r->view_changes();
  return res;
}

}  // namespace rdb::simfab
