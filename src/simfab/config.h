// Experiment configuration for the simulated ResilientDB fabric.
//
// One FabricConfig describes one run: protocol, cluster size, pipeline
// shape (how many batch/execute threads — Figures 8/9), workload knobs
// (batch size, ops per transaction, payload bytes), crypto schemes, storage
// model, client population, failures, and the virtual measurement window.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "crypto/scheme.h"
#include "sim/network.h"
#include "simfab/costs.h"

namespace rdb::simfab {

enum class Protocol : std::uint8_t { kPbft, kZyzzyva, kPoe };

enum class RunMode : std::uint8_t {
  kConsensus,        // full protocol among `replicas`
  kUpperBoundNoExec, // Figure 7: primary echoes requests, no consensus
  kUpperBoundExec,   // Figure 7: primary executes then responds
};

enum class StorageModel : std::uint8_t { kMemory, kPageDb };

struct FabricConfig {
  Protocol protocol{Protocol::kPbft};
  RunMode mode{RunMode::kConsensus};

  std::uint32_t replicas{16};
  std::uint32_t cores{8};  // per replica (Figure 16)

  // Pipeline shape (§4.1). 0 batch threads folds batching into the worker
  // ("0B"); 0 execute threads folds execution into the worker ("0E").
  std::uint32_t batch_threads{2};
  std::uint32_t execute_threads{1};
  std::uint32_t client_input_threads{1};
  std::uint32_t replica_input_threads{2};
  std::uint32_t output_threads{2};
  bool checkpoint_thread{true};

  // Workload (§5.1).
  std::uint32_t batch_size{100};
  std::uint32_t ops_per_txn{1};
  std::uint32_t value_bytes{8};
  std::uint32_t payload_padding{0};  // extra bytes per txn (Figure 12)
  std::uint64_t clients{80'000};
  std::uint32_t client_machines{4};

  crypto::SchemeConfig schemes{};
  StorageModel storage{StorageModel::kMemory};

  // Checkpoint every `checkpoint_interval_txns` transactions (§5.1: 10K).
  std::uint64_t checkpoint_interval_txns{10'000};

  // Ablation knob (§4.5 / §6 "Strict Ordering"): maximum consensus rounds
  // the primary allows in flight. 0 = unbounded (ResilientDB's out-of-order
  // processing); 1 = strictly serial consensus, the design the paper argues
  // against.
  std::uint32_t max_inflight_batches{0};

  sim::NetworkConfig net{};
  CostModel costs{};

  // Crash-faulted backups (Figure 17). Never includes the primary in the
  // benched experiments; primary failure is exercised by view-change tests.
  std::vector<ReplicaId> failed_replicas{};

  // Client behaviour.
  TimeNs client_agg_window_ns{50'000};        // request bundling at a machine
  TimeNs zyz_client_timeout_ns{10'000'000'000};  // "wait a little" (§5.10)
  TimeNs batch_flush_timeout_ns{5'000'000};   // flush partial batches

  // PBFT request timer (view-change trigger). Benchmarks keep this above
  // the run horizon — replica failures in the paper's experiments are
  // backup failures, which must not trigger view changes; protocol tests
  // lower it to exercise the view-change path.
  TimeNs request_timeout_ns{120'000'000'000};

  // Catch-up gap-detection poll (0 disables). A lagging replica fetches the
  // batches it missed from peers (PBFT only).
  TimeNs catchup_poll_ns{500'000'000};

  // Run control (virtual time).
  TimeNs warmup_ns{1'000'000'000};
  TimeNs measure_ns{3'000'000'000};

  std::uint64_t seed{42};

  std::uint32_t f() const { return max_faulty(replicas); }
  std::uint64_t checkpoint_interval_batches() const {
    std::uint64_t b = checkpoint_interval_txns / std::max(1u, batch_size);
    return b == 0 ? 1 : b;
  }
};

}  // namespace rdb::simfab
