// The simulated ResilientDB fabric: replicas with the paper's pipelined
// thread architecture (Figures 6a/6b) plus a closed-loop client population,
// all running on the discrete-event substrate (sim/). The real protocol
// engines (protocol/pbft.h, protocol/zyzzyva.h) drive the consensus logic;
// the fabric charges virtual CPU for every pipeline task and virtual network
// for every message.
//
// Signing and verification inside the simulation charge the calibrated cost
// model but use placeholder bytes — the threaded runtime (runtime/) is where
// real signatures flow end to end. Batch digests are real SHA-256 over the
// batch's canonical header so the engines' equality checks are meaningful.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "ledger/blockchain.h"
#include "protocol/pbft.h"
#include "protocol/poe.h"
#include "protocol/zyzzyva.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "simfab/config.h"

namespace rdb::simfab {

struct ThreadSaturation {
  std::string thread;
  double percent{0};  // busy time / window, as in Figure 9
};

struct ExperimentResult {
  RunMetrics metrics;
  std::vector<ThreadSaturation> primary_threads;
  std::vector<ThreadSaturation> backup_threads;  // replica 1, when present
  sim::NetworkStats net;
  double primary_egress_utilization{0};
  std::uint64_t blocks_committed{0};
  std::uint64_t view_changes{0};
  std::uint64_t zyz_fast_path{0};
  std::uint64_t zyz_slow_path{0};
};

class Fabric;

/// One replica machine: a NodeCpu with the §4.1 thread pipeline and a
/// protocol engine. Thread counts of zero fold that stage into the worker.
class SimReplica {
 public:
  SimReplica(Fabric& fabric, ReplicaId id);

  void deliver(protocol::MessagePtr msg);
  /// Primary: client transactions arriving from a client machine bundle.
  void deliver_client_bundle(std::vector<protocol::Transaction> txns);
  /// Arms the recurring catch-up gap-detection poll (PBFT).
  void start_catchup_poll(TimeNs interval_ns);

  ReplicaId id() const { return id_; }
  bool is_primary() const;
  sim::NodeCpu& cpu() { return *cpu_; }
  const ledger::Blockchain& chain() const { return chain_; }
  std::uint64_t view_changes() const { return view_changes_; }

  std::vector<ThreadSaturation> saturations(TimeNs window) const;
  void reset_thread_stats();

 private:
  friend class Fabric;

  void route(protocol::MessagePtr msg);
  void process_on_worker(protocol::MessagePtr msg);
  void form_batches(bool flush_partial);
  void dispatch_batch(SeqNum seq, std::vector<protocol::Transaction> txns,
                      std::uint64_t txn_begin);
  void dispatch_batch_now(SeqNum seq, std::vector<protocol::Transaction> txns,
                          std::uint64_t txn_begin);
  void perform(protocol::Actions actions, sim::SimThread& origin);
  void do_execute(const protocol::ExecuteAction& ex);
  void broadcast_message(const protocol::Message& msg, bool include_self);

  sim::SimThread& batch_thread_for_dispatch();
  sim::SimThread& output_thread();
  std::uint64_t sign_cost(bool replica_link, std::size_t copies) const;
  std::uint64_t verify_cost(bool replica_link) const;
  std::uint64_t batch_bytes(std::size_t txn_count) const;

  Fabric& fab_;
  ReplicaId id_;
  std::unique_ptr<sim::NodeCpu> cpu_;

  // Pipeline threads (§4.1). Pointers into cpu_->threads().
  std::vector<sim::SimThread*> client_inputs_;
  std::vector<sim::SimThread*> replica_inputs_;
  std::vector<sim::SimThread*> batchers_;
  sim::SimThread* worker_{nullptr};
  std::vector<sim::SimThread*> executors_;
  sim::SimThread* checkpointer_{nullptr};
  std::vector<sim::SimThread*> outputs_;

  using EngineVariant = std::variant<protocol::PbftEngine,
                                     protocol::ZyzzyvaEngine,
                                     protocol::PoeEngine>;
  static EngineVariant make_engine(const FabricConfig& cfg, ReplicaId id);

  EngineVariant engine_;
  ledger::Blockchain chain_;

  // Primary-side batching state (§4.3).
  std::vector<protocol::Transaction> pending_txns_;
  SeqNum next_seq_{0};
  std::uint64_t next_txn_id_{1};
  bool flush_timer_armed_{false};

  // Zyzzyva reorder buffer: order requests must be emitted in seq order
  // because the history digest is a hash chain (unlike PBFT, §4.5).
  struct PendingBatch {
    std::vector<protocol::Transaction> txns;
    std::uint64_t txn_begin{0};
  };
  std::map<SeqNum, PendingBatch> zyz_ready_;
  SeqNum zyz_next_{1};

  // Strict-ordering ablation state (config.max_inflight_batches > 0).
  struct HeldBatch {
    SeqNum seq{0};
    std::vector<protocol::Transaction> txns;
    std::uint64_t txn_begin{0};
  };
  std::deque<HeldBatch> held_batches_;
  std::uint64_t inflight_batches_{0};

  std::map<std::uint64_t, sim::EventId> timers_;  // engine timer id -> event
  std::size_t rr_output_{0};
  std::size_t rr_input_{0};
  std::uint64_t view_changes_{0};
  bool client_watchdog_armed_{false};  // relayed-request liveness watchdog
};

/// The whole experiment: replicas + client machines + network + clock.
class Fabric {
 public:
  explicit Fabric(FabricConfig config);
  ~Fabric();

  ExperimentResult run();

  // --- internals used by SimReplica / client pool ---
  const FabricConfig& config() const { return cfg_; }
  sim::Scheduler& sched() { return sched_; }
  sim::Network& net() { return net_; }
  SimReplica& replica(ReplicaId id) { return *replicas_[id]; }
  ReplicaId primary_id() const { return primary_; }
  void note_primary(ReplicaId p) { primary_ = p; }

  std::uint32_t machine_of_client(ClientId c) const;
  std::uint32_t machine_node(std::uint32_t machine) const {
    return cfg_.replicas + machine;
  }

  /// Replica -> client machine: a batch's responses for that machine.
  void deliver_responses(ReplicaId from, std::uint32_t machine,
                         std::vector<std::pair<ClientId, RequestId>> acks,
                         bool speculative);
  void deliver_local_commit(ReplicaId from, ClientId client);

  bool in_measure_window() const;
  void count_committed_txn(TimeNs latency_ns);
  void count_consensus_round() { if (in_measure_window()) ++rounds_; }
  void count_block() { if (in_measure_window()) ++blocks_; }
  void count_ops(std::uint64_t ops) { if (in_measure_window()) ops_ += ops; }

 private:
  friend class SimReplica;
  struct ClientState;
  struct Machine;

  void start_clients();
  void client_send_next(ClientId c);
  void flush_machine(std::uint32_t m);
  void on_response(ClientId c, RequestId req, ReplicaId from,
                   bool speculative);
  void on_local_commit(ClientId c, ReplicaId from);
  void complete_request(ClientState& cs, ClientId c);
  void zyz_timeout(ClientId c, RequestId req);
  void upper_bound_deliver(std::uint32_t machine,
                           std::vector<protocol::Transaction> txns);

  FabricConfig cfg_;
  sim::Scheduler sched_;
  sim::Network net_;
  std::vector<std::unique_ptr<SimReplica>> replicas_;
  ReplicaId primary_{0};

  std::vector<ClientState> clients_;
  std::vector<Machine> machines_;

  // Upper-bound mode (Figure 7): two independent threads on the primary.
  std::vector<sim::SimThread*> ub_threads_;
  std::size_t rr_ub_{0};

  TimeNs measure_start_{0};
  bool measuring_{false};
  std::uint64_t committed_{0};
  std::uint64_t rounds_{0};
  std::uint64_t blocks_{0};
  std::uint64_t ops_{0};
  std::uint64_t zyz_fast_{0};
  std::uint64_t zyz_slow_{0};
  LatencyHistogram latency_;
  Rng rng_;
};

}  // namespace rdb::simfab
