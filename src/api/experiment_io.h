// Row/series printers shared by the figure-reproduction benches: every bench
// prints the same kind of series the paper plots, in a uniform format that
// EXPERIMENTS.md records.
#pragma once

#include <string>

#include "simfab/fabric.h"

namespace rdb::simfab {

/// Prints "figure" and "series" headers, e.g.
///   == Figure 10: throughput & latency vs batch size (16 replicas) ==
void print_figure_header(const std::string& title);

/// One x-point of a series: label, throughput, latency, extras.
void print_row(const std::string& series, const std::string& x,
               const ExperimentResult& r);

/// Thread-saturation rows (Figure 9 style) for one run.
void print_saturation(const std::string& label, const ExperimentResult& r);

/// Convenience: run one config and return the result (wraps Fabric).
ExperimentResult run_experiment(const FabricConfig& config);

/// True when RDB_BENCH_QUICK is set: benches shrink their virtual windows.
bool bench_quick_mode();

/// Applies quick-mode window shrinking to a config.
void apply_bench_mode(FabricConfig& config);

}  // namespace rdb::simfab
