// Public umbrella header for the ResilientDB reproduction library.
//
// Two ways to use the system:
//
//  1. `rdb::runtime::LocalCluster` — a real multi-threaded permissioned
//     blockchain deployment in one process: n replicas with the paper's
//     deep pipeline (input / batch / worker / execute / checkpoint / output
//     threads), real SHA-256 / CMAC / signature flow, pluggable storage,
//     and PBFT consensus with checkpointing and view changes.
//
//  2. `rdb::simfab::Fabric` — the evaluation substrate: the same protocol
//     engines running over a discrete-event simulation of CPUs and network
//     links, which scales to the paper's 32-replica / 80K-client
//     experiments on a laptop. Every figure in the paper's evaluation is
//     regenerated through this (see bench/).
//
// See README.md for a tour and examples/ for runnable programs.
#pragma once

#include "api/experiment_io.h"       // IWYU pragma: export
#include "crypto/provider.h"         // IWYU pragma: export
#include "ledger/blockchain.h"       // IWYU pragma: export
#include "protocol/pbft.h"           // IWYU pragma: export
#include "protocol/poe.h"            // IWYU pragma: export
#include "protocol/zyzzyva.h"        // IWYU pragma: export
#include "runtime/cluster.h"         // IWYU pragma: export
#include "simfab/fabric.h"           // IWYU pragma: export
#include "storage/mem_store.h"       // IWYU pragma: export
#include "storage/page_db.h"         // IWYU pragma: export
#include "workload/ycsb.h"           // IWYU pragma: export

namespace resilientdb {

// Friendly aliases for downstream users.
using Cluster = rdb::runtime::LocalCluster;
using ClusterConfig = rdb::runtime::ClusterConfig;
using Client = rdb::runtime::Client;
using Fabric = rdb::simfab::Fabric;
using FabricConfig = rdb::simfab::FabricConfig;
using ExperimentResult = rdb::simfab::ExperimentResult;
using YcsbWorkload = rdb::workload::YcsbWorkload;

inline const char* version() { return "1.0.0"; }

}  // namespace resilientdb
