#include "api/experiment_io.h"

#include <cstdio>
#include <cstdlib>

namespace rdb::simfab {

void print_figure_header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-28s %-12s %12s %12s %12s %10s\n", "series", "x",
              "tput(txn/s)", "ops/s", "lat-avg(ms)", "lat-p99");
}

void print_row(const std::string& series, const std::string& x,
               const ExperimentResult& r) {
  std::printf("%-28s %-12s %12.0f %12.0f %12.1f %10.1f\n", series.c_str(),
              x.c_str(), r.metrics.throughput_tps, r.metrics.ops_per_sec,
              r.metrics.latency_avg_ms, r.metrics.latency_p99_ms);
  std::fflush(stdout);
}

void print_saturation(const std::string& label, const ExperimentResult& r) {
  auto dump = [&](const char* role,
                  const std::vector<ThreadSaturation>& threads) {
    double cumulative = 0;
    for (const auto& t : threads) cumulative += t.percent;
    std::printf("  %-8s %-10s cumulative=%5.0f%% |", label.c_str(), role,
                cumulative);
    for (const auto& t : threads) {
      if (t.percent >= 0.5)
        std::printf(" %s=%.0f%%", t.thread.c_str(), t.percent);
    }
    std::printf("\n");
  };
  dump("primary", r.primary_threads);
  if (!r.backup_threads.empty()) dump("backup", r.backup_threads);
  std::fflush(stdout);
}

ExperimentResult run_experiment(const FabricConfig& config) {
  Fabric fabric(config);
  return fabric.run();
}

bool bench_quick_mode() {
  const char* v = std::getenv("RDB_BENCH_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void apply_bench_mode(FabricConfig& config) {
  if (bench_quick_mode()) {
    config.warmup_ns = 400'000'000;
    config.measure_ns = 600'000'000;
  }
}

}  // namespace rdb::simfab
