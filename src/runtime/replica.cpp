#include "runtime/replica.h"

#include <algorithm>
#include <chrono>

#include "common/compress.h"
#include "common/logging.h"
#include "crypto/sha256.h"
#include "storage/env.h"

namespace rdb::runtime {

using protocol::Actions;
using protocol::Message;
using protocol::MsgType;
using protocol::Transaction;

namespace {

/// The batch digest covers the single string representation of the whole
/// batch (§4.3): serialize every transaction into one buffer, hash once.
Digest digest_batch(const std::vector<Transaction>& txns) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(txns.size()));
  for (const auto& t : txns) t.serialize(w);
  return crypto::sha256(BytesView(w.data()));
}

std::uint32_t type_bit(MsgType t) { return 1u << static_cast<int>(t); }

/// HOT BARRIER: fires only when try_pop found the lock-free queue EMPTY —
/// the stage has no work the nap could stall; 50 us bounds the idle spin
/// without burning the CPU the producing stage needs.
RDB_HOT_BARRIER
void idle_nap() { std::this_thread::sleep_for(std::chrono::microseconds(50)); }

/// HOT BARRIER: one verdict-array allocation at stage startup (or on a
/// certificate larger than any seen before — at most log2(n) regrows),
/// reused for every subsequent verification wave. verify_batch wants a raw
/// bool*, which rules out the allocation-free container idioms.
RDB_HOT_BARRIER
std::unique_ptr<bool[]> make_verdict_scratch(std::size_t n) {
  return std::unique_ptr<bool[]>(new bool[n]);
}

/// KvStore decorator that streams every put into a SHA-256 — the
/// state-delta digest of one batch's execution. The execute thread is the
/// store's sole writer, so wrapping it for the duration of a batch observes
/// exactly that batch's effects, in apply order. Identical ordered input +
/// deterministic execution => identical delta stream on every replica;
/// anything else (unordered iteration leaking into apply order, a stray
/// clock/RNG read changing a value) forks the digest and trips the
/// cross-replica fingerprint check at the next checkpoint.
class DeltaRecordingStore final : public storage::KvStore {
 public:
  DeltaRecordingStore(storage::KvStore& inner, crypto::Sha256& hasher)
      : inner_(inner), hasher_(hasher) {}

  void put(std::string_view key, std::string_view value) override {
    std::uint8_t len[8];
    auto put_u32 = [&len](std::size_t off, std::uint64_t v) {
      for (int i = 0; i < 4; ++i)
        len[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
    };
    put_u32(0, key.size());
    put_u32(4, value.size());
    hasher_.update(BytesView(len, 8));
    const Bytes key_bytes = to_bytes(key);
    const Bytes value_bytes = to_bytes(value);
    hasher_.update(as_view(key_bytes));
    hasher_.update(as_view(value_bytes));
    inner_.put(key, value);
  }
  std::optional<std::string> get(std::string_view key) override {
    return inner_.get(key);
  }
  bool contains(std::string_view key) override { return inner_.contains(key); }
  std::uint64_t size() const override { return inner_.size(); }
  storage::StoreStats stats() const override { return inner_.stats(); }
  std::string name() const override { return inner_.name(); }
  void for_each(const VisitFn& fn) override { inner_.for_each(fn); }
  void clear() override { inner_.clear(); }
  bool durable() const override { return inner_.durable(); }
  void commit_wave() override { inner_.commit_wave(); }
  void checkpoint() override { inner_.checkpoint(); }

 private:
  storage::KvStore& inner_;
  crypto::Sha256& hasher_;
};

/// One step of the execution-fingerprint fold (see Replica::exec_acc_):
/// acc' = SHA256(acc || seq || batch digest || result codes || delta).
Digest fold_exec_acc(const Digest& acc, SeqNum seq, const Digest& batch_digest,
                     const std::vector<std::uint64_t>& results,
                     const Digest& delta_digest) {
  crypto::Sha256 h;
  h.update(BytesView(acc.data));
  std::uint8_t le[8];
  auto put_u64 = [&le, &h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      le[i] = static_cast<std::uint8_t>(v >> (8 * i));
    h.update(BytesView(le, 8));
  };
  put_u64(seq);
  h.update(BytesView(batch_digest.data));
  put_u64(results.size());
  for (std::uint64_t r : results) put_u64(r);
  h.update(BytesView(delta_digest.data));
  return h.finish();
}

}  // namespace

Replica::Replica(ReplicaConfig config, Transport& transport,
                 const crypto::KeyRegistry& registry,
                 std::unique_ptr<storage::KvStore> store, ExecuteFn execute)
    : config_(config),
      transport_(transport),
      crypto_(Endpoint::replica(config.id), registry, config.schemes),
      store_(std::move(store)),
      execute_fn_(std::move(execute)),
      engine_(protocol::PbftConfig{config.n, config.id,
                                   config.checkpoint_interval,
                                   /*window=*/100'000,
                                   config.request_timeout_ns}),
      inbox_(std::make_shared<Transport::Inbox>()),
      execute_slots_(config.execute_queue_slots) {
  for (std::uint32_t i = 0; i < config_.output_threads; ++i)
    output_queues_.push_back(std::make_unique<BlockingQueue<OutboundMsg>>());
  transport_.register_endpoint(Endpoint::replica(config_.id), inbox_);
  // Serialize-once broadcast is legal exactly when the replica-link scheme
  // is addressee-independent: DS signatures (and the unauthenticated mode)
  // produce the same bytes for every peer, pairwise MACs do not (§4.2).
  ds_replica_links_ =
      config_.schemes.replica_scheme != crypto::SignatureScheme::kCmacAes;
  next_seq_ = 0;
  if (config_.durability.enabled) recover_from_log();
  // Pre-warm the registry's expanded-key cache for every peer replica so
  // the first Prepare/Commit of a run doesn't pay the decompression + table
  // build inline on a consensus thread.
  if (config_.schemes.replica_scheme == crypto::SignatureScheme::kEd25519) {
    for (std::uint32_t peer = 0; peer < config_.n; ++peer) {
      if (peer == config_.id) continue;
      registry.ed25519_expanded(Endpoint::replica(peer));
    }
  }
}

Replica::~Replica() { stop(); }

// ---------------------------------------------------------------------------
// Durable crash recovery (constructor-time, single-threaded).
// ---------------------------------------------------------------------------

void Replica::recover_from_log() {
  storage::Env& env =
      config_.durability.env ? *config_.durability.env : storage::Env::real();
  env.make_dirs(config_.durability.dir);
  ReplicaLogConfig lc;
  lc.path = config_.durability.dir + "/consensus.log";
  lc.env = config_.durability.env;
  lc.sync = config_.durability.sync;
  rlog_ = std::make_unique<ReplicaLog>(lc);
  RecoveredLog rec = rlog_->recover();

  ViewId view = rec.anchor_view;
  SeqNum last = 0;
  if (rec.has_anchor) {
    chain_.reset_to(rec.anchor_seq, rec.anchor_acc);
    last = rec.anchor_seq;
    checkpoint_meta_[rec.anchor_seq] = {rec.anchor_view, rec.anchor_acc};
  }
  for (auto& b : rec.batches) {
    // Re-execute against the recovered KV store. The store's own WAL can run
    // ahead of the consensus log (see page_db.h), so some effects may
    // already be present; put-style re-execution is idempotent and replaying
    // the whole tail converges both. The execution fingerprint is folded
    // exactly as the live execute path folds it: the log's anchor is a
    // checkpoint boundary (where exec_acc_ resets to zero), so replaying the
    // tail reproduces the same interval-scoped fold a never-crashed peer
    // carries. (Caveat: a retransmission whose original landed BELOW the
    // anchor re-executes here — the reply cache starts empty — which a peer
    // skipped; state converges by idempotence but the fingerprint would
    // fork. Monotonic per-client request ids make this a non-issue in
    // practice, and the tripwire firing on it is the conservative outcome.)
    crypto::Sha256 delta_hasher;
    DeltaRecordingStore dstore(*store_, delta_hasher);
    std::vector<std::uint64_t> results;
    for (const auto& txn : b.txns) {
      auto& cache = reply_cache_[txn.client];
      if (cache.first != 0 && txn.req_id <= cache.first) continue;
      std::uint64_t result = execute_fn_ ? execute_fn_(txn, dstore) : 0;
      cache = {txn.req_id, result};
      results.push_back(result);
    }
    exec_acc_ =
        fold_exec_acc(exec_acc_, b.seq, b.digest, results,
                      delta_hasher.finish());
    ledger::Block block;
    block.seq = b.seq;
    block.view = b.view;
    block.batch_digest = b.digest;
    block.txn_begin = b.txn_begin;
    block.txn_end = b.txn_begin + b.txns.size();
    block.certificate = b.certificate;
    chain_.append(std::move(block));
    last = b.seq;
    view = std::max(view, b.view);
    if (config_.checkpoint_interval > 0 &&
        b.seq % config_.checkpoint_interval == 0) {
      checkpoint_meta_[b.seq] = {b.view, chain_.accumulator()};
      // Interval boundary: record and reset, mirroring the live path.
      exec_fingerprints_[b.seq] = exec_acc_;
      exec_acc_ = Digest{};
    }
    log_tail_.push_back(std::move(b));
  }
  recovered_batches_ = rec.batches.size();
  if (last > 0 || view > 0) {
    engine_.restore(view, last, rec.anchor_seq);
    view_.store(view, std::memory_order_release);
    next_exec_seq_.store(last + 1, std::memory_order_relaxed);
    last_executed_pub_.store(last, std::memory_order_release);
    // Primary sequencing resumes after the durable prefix. Batches this
    // replica proposed but never committed before the crash are lost; the
    // view-change/catch-up machinery fills any holes.
    next_seq_ = last;
  }
}

Replica::BusyCounter& Replica::add_counter(const std::string& name) {
  busy_counters_.push_back(std::make_unique<BusyCounter>());
  busy_counters_.back()->name = name;
  return *busy_counters_.back();
}

std::vector<Replica::ThreadSaturation> Replica::thread_saturations() const {
  std::vector<ThreadSaturation> out;
  auto window = std::chrono::steady_clock::now() - started_at_;
  auto window_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(window).count());
  if (window_ns <= 0) window_ns = 1;
  for (const auto& c : busy_counters_) {
    out.push_back(
        {c->name,
         100.0 * static_cast<double>(
                     c->busy_ns.load(std::memory_order_relaxed)) /
             window_ns});
  }
  return out;
}

void Replica::start() {
  if (running_.exchange(true)) return;
  started_at_ = std::chrono::steady_clock::now();
  if (config_.catchup_poll_ns > 0) {
    MutexLock lock(timer_mu_);
    timers_[kCatchupTimer] = std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(config_.catchup_poll_ns);
  }
  threads_.emplace_back([this, &c = add_counter("input")](
                            std::stop_token st) { input_loop(st, c); });
  for (std::uint32_t i = 0; i < config_.batch_threads; ++i)
    threads_.emplace_back(
        [this, &c = add_counter("batch-" + std::to_string(i))](
            std::stop_token st) { batch_loop(st, c); });
  for (std::uint32_t i = 0; i < config_.verify_threads; ++i)
    threads_.emplace_back(
        [this, &c = add_counter("verify-" + std::to_string(i))](
            std::stop_token st) { verify_loop(st, c); });
  threads_.emplace_back([this, &c = add_counter("worker")](
                            std::stop_token st) { worker_loop(st, c); });
  threads_.emplace_back([this, &c = add_counter("execute")](
                            std::stop_token st) { execute_loop(st, c); });
  threads_.emplace_back([this, &c = add_counter("checkpoint")](
                            std::stop_token st) { checkpoint_loop(st, c); });
  for (std::uint32_t i = 0; i < config_.output_threads; ++i)
    threads_.emplace_back(
        [this, i, &c = add_counter("output-" + std::to_string(i))](
            std::stop_token st) { output_loop(st, i, c); });
  threads_.emplace_back([this](std::stop_token st) { timer_loop(st); });
}

void Replica::stop() {
  if (!running_.exchange(false)) return;
  for (auto& t : threads_) t.request_stop();
  inbox_->shutdown();
  worker_queue_.shutdown();
  verify_queue_.shutdown();
  checkpoint_queue_.shutdown();
  for (auto& q : output_queues_) q->shutdown();
  timer_cv_.notify_all();
  for (auto& slot : execute_slots_) slot.cv.notify_all();
  threads_.clear();  // jthread joins on destruction
}

void Replica::drop_messages(protocol::MsgType type, bool drop) {
  std::uint32_t bit = type_bit(type);
  if (drop)
    drop_mask_.fetch_or(bit, std::memory_order_relaxed);
  else
    drop_mask_.fetch_and(~bit, std::memory_order_relaxed);
}

ReplicaStats Replica::stats() const {
  MutexLock lock(stats_mu_);
  ReplicaStats s = stats_;
  s.pool_hits = batch_pool_.hits();
  s.pool_misses = batch_pool_.misses();
  s.batch_queue_saturated = batch_saturated_.load(std::memory_order_relaxed);
  s.batched_sigs = batched_sigs_.load(std::memory_order_relaxed);
  s.batch_flushes = batch_flushes_.load(std::memory_order_relaxed);
  s.batch_fallback_bisections =
      batch_bisections_.load(std::memory_order_relaxed);
  s.batch_mean_size = s.batch_flushes > 0
                          ? static_cast<double>(s.batched_sigs) /
                                static_cast<double>(s.batch_flushes)
                          : 0.0;
  s.cert_vote_failures = cert_vote_failures_.load(std::memory_order_relaxed);
  s.recovered_batches = recovered_batches_;
  s.log_commits = log_commits_.load(std::memory_order_relaxed);
  s.log_compactions = log_compactions_.load(std::memory_order_relaxed);
  s.snapshots_served = snapshots_served_.load(std::memory_order_relaxed);
  s.snapshots_installed = snapshots_installed_.load(std::memory_order_relaxed);
  s.exec_divergence = exec_divergence_count_.load(std::memory_order_relaxed);
  s.rejected_total = 0;
  for (std::size_t i = 0; i < reject_counts_.size(); ++i) {
    s.rejected_messages[i] = reject_counts_[i].load(std::memory_order_relaxed);
    s.rejected_total += s.rejected_messages[i];
  }
  for (std::size_t i = 0; i < rtzone::kStageCount; ++i) {
    s.hot_path_allocs[i] = stage_allocs_[i].load(std::memory_order_relaxed);
    s.hot_path_items[i] = stage_items_[i].load(std::memory_order_relaxed);
  }
  s.broadcasts_serialized =
      broadcasts_serialized_.load(std::memory_order_relaxed);
  s.broadcast_frame_sends =
      broadcast_frame_sends_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Input thread: receive, route, sequence client requests (§4.3).
// ---------------------------------------------------------------------------

void Replica::input_loop(std::stop_token st, BusyCounter& busy) {
  using namespace std::chrono_literals;
  while (!st.stop_requested()) {
    auto wire = inbox_->pop_for(10ms);
    if (!wire) {
      // Flush a lingering partial batch so low client counts make progress.
      if (is_primary() && !pending_txns_.empty()) {
        ScopedBusy sb(busy);
        StageScope alloc_scope(*this, rtzone::Stage::kInput);
        auto handle = batch_pool_.acquire();
        handle.ptr->seq = ++next_seq_;
        handle.ptr->txn_begin = next_txn_id_;
        next_txn_id_ += pending_txns_.size();
        handle.ptr->txns.swap(pending_txns_);
        // Ownership passes through the lock-free queue to a batch thread.
        push_batch(handle);
      }
      continue;
    }
    ScopedBusy sb(busy);
    StageScope alloc_scope(*this, rtzone::Stage::kInput);
    // The taint boundary: every frame off the wire is Byzantine until it
    // passes validate_wire (structure + semantics; signatures are verified
    // downstream by the verify/worker/checkpoint threads). The accept mask
    // lists exactly the types a PBFT replica processes; anything else is a
    // counted reject, not a silent drop.
    protocol::ValidationContext vctx;
    vctx.n = config_.n;
    vctx.current_view = view();
    vctx.committed_seq = last_executed();
    vctx.accept_mask = protocol::accept_bit(MsgType::kClientRequest) |
                       protocol::accept_bit(MsgType::kPrePrepare) |
                       protocol::accept_bit(MsgType::kPrepare) |
                       protocol::accept_bit(MsgType::kCommit) |
                       protocol::accept_bit(MsgType::kCheckpoint) |
                       protocol::accept_bit(MsgType::kViewChange) |
                       protocol::accept_bit(MsgType::kNewView) |
                       protocol::accept_bit(MsgType::kBatchRequest) |
                       protocol::accept_bit(MsgType::kBatchResponse);
    if (config_.enable_snapshots) {
      vctx.accept_mask |= protocol::accept_bit(MsgType::kSnapshotRequest) |
                          protocol::accept_bit(MsgType::kSnapshotResponse);
    }
    auto verdict = protocol::validate_wire(BytesView(*wire), vctx);
    if (!verdict.ok()) {
      count_reject(verdict.reason);
      continue;
    }
    Message msg = std::move(*verdict.msg).release();
    if (drop_mask_.load(std::memory_order_relaxed) & type_bit(msg.type()))
      continue;

    switch (msg.type()) {
      case MsgType::kClientRequest:
        handle_client_request(std::move(msg));
        break;
      case MsgType::kPrepare:
      case MsgType::kCommit:
        // The quorum-vote flood is the bulk of signature work; with a
        // verify pool, those checks run off the consensus worker.
        if (config_.verify_threads > 0 &&
            msg.from != Endpoint::replica(config_.id)) {
          verify_queue_.push(std::move(msg));
        } else {
          worker_queue_.push(WorkerItem{std::move(msg), false});
        }
        break;
      case MsgType::kPrePrepare:
      case MsgType::kViewChange:
      case MsgType::kNewView:
      case MsgType::kBatchRequest:
      case MsgType::kBatchResponse:
      case MsgType::kSnapshotRequest:
      case MsgType::kSnapshotResponse:
        worker_queue_.push(WorkerItem{std::move(msg), false});
        break;
      case MsgType::kCheckpoint:
        checkpoint_queue_.push(std::move(msg));
        break;
      default:
        // Unreachable: the accept mask already rejected other types.
        break;
    }
  }
}

void Replica::handle_client_request(Message msg) {
  if (!is_primary()) {
    // PBFT liveness: a backup relays the request to the primary and starts
    // a timer; if the primary makes no progress, demand a view change.
    ReplicaId primary = static_cast<ReplicaId>(view() % config_.n);
    enqueue_output(Endpoint::replica(primary), msg);
    {
      MutexLock lock(timer_mu_);
      if (!timers_.contains(kClientRequestTimer)) {
        timers_[kClientRequestTimer] =
            std::chrono::steady_clock::now() +
            std::chrono::nanoseconds(config_.request_timeout_ns);
      }
    }
    timer_cv_.notify_all();
    return;
  }
  // Envelope authenticity is checked per transaction by the batch threads;
  // the input thread only sequences (§4.3).
  auto& req = std::get<protocol::ClientRequest>(msg.payload);

  // Adopt a fresh sequencing base after this replica becomes primary.
  SeqNum base = seq_base_.exchange(0, std::memory_order_acq_rel);
  if (base != 0) next_seq_ = base - 1;

  for (auto& txn : req.txns) pending_txns_.push_back(std::move(txn));
  while (pending_txns_.size() >= config_.batch_size) {
    auto handle = batch_pool_.acquire();
    handle.ptr->seq = ++next_seq_;
    handle.ptr->txn_begin = next_txn_id_;
    handle.ptr->txns.assign(
        pending_txns_.begin(),
        pending_txns_.begin() + config_.batch_size);
    pending_txns_.erase(pending_txns_.begin(),
                        pending_txns_.begin() + config_.batch_size);
    next_txn_id_ += config_.batch_size;
    push_batch(handle);
  }
}

void Replica::push_batch(BufferPool<PendingBatch>::Handle& handle) {
  if (batch_queue_.try_push(handle)) return;
  // Queue full: the batch stage is saturated (it cannot keep up with the
  // arrival rate). Back off with bounded exponential sleeps instead of the
  // seed's unbounded yield spin — a hot yield loop steals the very CPU the
  // batch threads need to drain the queue.
  batch_saturated_.fetch_add(1, std::memory_order_relaxed);
  std::uint32_t spins = 0;
  std::chrono::microseconds delay{1};
  constexpr std::chrono::microseconds kMaxDelay{1000};
  while (!batch_queue_.try_push(handle)) {
    if (++spins <= 4) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(delay);
      delay = std::min(delay * 2, kMaxDelay);
    }
  }
}

// ---------------------------------------------------------------------------
// Batch threads: verify client signatures, build + sign Pre-prepare (§4.3).
// ---------------------------------------------------------------------------

void Replica::batch_loop(std::stop_token st, BusyCounter& busy) {
  while (!st.stop_requested()) {
    BufferPool<PendingBatch>::Handle handle;
    if (!batch_queue_.try_pop(handle)) {
      idle_nap();
      continue;
    }
    ScopedBusy sb(busy);
    StageScope alloc_scope(*this, rtzone::Stage::kBatch);
    PendingBatch& batch = *handle.ptr;

    // Excise transactions whose client signature fails. The batch must
    // still be proposed — its sequence number is already assigned, and an
    // abandoned sequence would stall in-order execution forever. A batch
    // whose every transaction was forged proposes as a no-op.
    std::size_t invalid = 0;
    std::erase_if(batch.txns, [&](const Transaction& txn) {
      Bytes canon = txn.signing_bytes();
      bool ok = crypto_.verify(Endpoint::client(txn.client), BytesView(canon),
                               BytesView(txn.client_sig));
      if (!ok) ++invalid;
      return !ok;
    });
    if (invalid > 0) {
      MutexLock lock(stats_mu_);
      stats_.invalid_signatures += invalid;
    }

    Digest d = digest_batch(batch.txns);
    Actions actions;
    {
      MutexLock lock(engine_mu_);
      actions = engine_.make_preprepare(batch.seq, std::move(batch.txns),
                                        batch.txn_begin, d);
    }
    batch_pool_.release(handle);
    perform(std::move(actions));
  }
}

// ---------------------------------------------------------------------------
// Verify pool: authenticate Prepare/Commit off the consensus worker.
// ---------------------------------------------------------------------------

void Replica::verify_loop(std::stop_token st, BusyCounter& busy) {
  const std::size_t max_batch =
      std::max<std::size_t>(config_.verify_batch_size, 1);
  std::vector<Message> burst;
  burst.reserve(max_batch);
  // Per-wave scratch, sized once to the wave cap and reused every
  // iteration: verify_batch wants contiguous C arrays, and allocating them
  // per wave put a heap round-trip on the signature hot path.
  std::vector<Bytes> canon(max_batch);
  std::vector<crypto::VerifyItem> items(max_batch);
  std::unique_ptr<bool[]> verdicts = make_verdict_scratch(max_batch);
  while (!st.stop_requested()) {
    burst.clear();
    auto first = verify_queue_.pop();
    if (!first) return;  // shutdown
    burst.push_back(std::move(*first));
    if (max_batch > 1) {
      // Burst draining: the whole point of the batch path is amortizing one
      // doubling ladder over every queued Prepare/Commit, so keep pulling
      // until the wave is full or the flush cutoff expires. Under light
      // load the cutoff bounds added latency to verify_batch_wait_ns; under
      // heavy load try_pop_n fills the wave without ever sleeping.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::nanoseconds(config_.verify_batch_wait_ns);
      while (burst.size() < max_batch && !st.stop_requested()) {
        if (verify_queue_.try_pop_n(burst, max_batch - burst.size()) > 0)
          continue;
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        auto next = verify_queue_.pop_for(deadline - now);
        if (!next) break;  // cutoff expired or shutdown: flush what we have
        burst.push_back(std::move(*next));
      }
    }
    ScopedBusy sb(busy);
    StageScope alloc_scope(*this, rtzone::Stage::kVerify);
    // One verify_batch call settles the wave: the canonical byte buffers
    // must outlive the call, so they are materialized side-by-side in the
    // reusable scratch (burst.size() <= max_batch by construction).
    for (std::size_t i = 0; i < burst.size(); ++i) {
      canon[i] = burst[i].signing_bytes();
      items[i] = crypto::VerifyItem{burst[i].from, BytesView(canon[i]),
                                    BytesView(burst[i].signature)};
    }
    crypto::BatchVerifyStats bs;
    crypto_.verify_batch(items.data(), burst.size(), verdicts.get(), &bs);
    batched_sigs_.fetch_add(burst.size(), std::memory_order_relaxed);
    batch_flushes_.fetch_add(1, std::memory_order_relaxed);
    batch_bisections_.fetch_add(bs.bisections, std::memory_order_relaxed);
    std::uint64_t invalid = 0;
    for (std::size_t i = 0; i < burst.size(); ++i) {
      if (!verdicts[i]) {
        ++invalid;
        continue;
      }
      // Verified: hand to the single consensus owner. Reordering across
      // pool threads is harmless (votes are counted per sequence number).
      worker_queue_.push(WorkerItem{std::move(burst[i]), true});
    }
    if (invalid > 0) {
      MutexLock lock(stats_mu_);
      stats_.invalid_signatures += invalid;
    }
  }
}

// ---------------------------------------------------------------------------
// Worker thread: all Prepare/Commit (and view-change) processing (§4.3/4.4).
// ---------------------------------------------------------------------------

void Replica::worker_loop(std::stop_token st, BusyCounter& busy) {
  while (!st.stop_requested()) {
    auto item = worker_queue_.pop();
    if (!item) return;  // shutdown
    ScopedBusy sb(busy);
    StageScope alloc_scope(*this, rtzone::Stage::kWorker);
    auto msg = std::optional<Message>(std::move(item->msg));

    bool self = msg->from == Endpoint::replica(config_.id);
    if (!self && !item->verified) {
      Bytes canon = msg->signing_bytes();
      if (!crypto_.verify(msg->from, BytesView(canon),
                          BytesView(msg->signature))) {
        MutexLock lock(stats_mu_);
        ++stats_.invalid_signatures;
        continue;
      }
    }

    // Snapshot state transfer bypasses the engine: serving reads the
    // captured image, and an incoming image is tallied/verified here and
    // installed by the execute thread (the sole owner of store + chain).
    if (msg->type() == MsgType::kSnapshotRequest) {
      handle_snapshot_request(*msg);
      continue;
    }
    if (msg->type() == MsgType::kSnapshotResponse) {
      handle_snapshot_response(std::move(*msg));
      continue;
    }

    // A backup validates that the primary's digest really covers the batch
    // (defends against a byzantine primary pairing a good digest with a
    // garbage batch).
    if (msg->type() == MsgType::kPrePrepare && !self) {
      const auto& pp = std::get<protocol::PrePrepare>(msg->payload);
      if (digest_batch(pp.txns) != pp.batch_digest) {
        MutexLock lock(stats_mu_);
        ++stats_.invalid_signatures;
        continue;
      }
    }
    // A catch-up response must pair each digest with its real batch; drop
    // any entry where they disagree before the engine counts votes.
    if (msg->type() == MsgType::kBatchResponse) {
      auto& resp = std::get<protocol::BatchResponse>(msg->payload);
      std::erase_if(resp.entries, [](const protocol::BatchResponse::Entry& e) {
        return digest_batch(e.txns) != e.digest;
      });
    }

    Actions actions;
    {
      MutexLock lock(engine_mu_);
      switch (msg->type()) {
        case MsgType::kPrePrepare:
          actions = engine_.on_preprepare(*msg);
          break;
        case MsgType::kPrepare:
          actions = engine_.on_prepare(*msg);
          break;
        case MsgType::kCommit:
          actions = engine_.on_commit(*msg);
          break;
        case MsgType::kViewChange:
          actions = engine_.on_view_change(*msg);
          break;
        case MsgType::kNewView:
          actions = engine_.on_new_view(*msg);
          break;
        case MsgType::kBatchRequest:
          actions = engine_.on_batch_request(*msg);
          break;
        case MsgType::kBatchResponse:
          actions = engine_.on_batch_response(*msg);
          break;
        default:
          break;
      }
    }
    perform(std::move(actions));
  }
}

// ---------------------------------------------------------------------------
// Execute thread: strictly in-order execution via the QC slot scheme (§4.6).
// ---------------------------------------------------------------------------

void Replica::deliver_execute(protocol::ExecuteAction ex) {
  ExecuteSlot& slot = execute_slots_[ex.seq % execute_slots_.size()];
  MutexLock lock(slot.mu);
  // QC is sized so a wrap-around collision means the pipeline is more than
  // `execute_queue_slots` batches ahead of execution; block until the
  // executor drains the slot (or stop() flips running_ and notifies).
  while (slot.item.has_value() &&
         running_.load(std::memory_order_relaxed)) {
    slot.cv.wait(slot.mu);
  }
  if (!running_.load(std::memory_order_relaxed)) return;
  slot.item = std::move(ex);
  slot.cv.notify_all();
}

void Replica::execute_loop(std::stop_token st, BusyCounter& busy) {
  // Group commit (durable mode): executed batches accumulate into a wave;
  // ONE fsync of the consensus log (plus the KV store's wave barrier) makes
  // the whole wave durable, and only then do the wave's client responses and
  // engine actions (checkpoint votes) leave the replica — a response never
  // acknowledges state a crash could lose. Non-durable mode degenerates to
  // waves of one batch with nothing withheld.
  const bool durable = rlog_ != nullptr;
  const std::uint32_t max_wave =
      durable ? std::max<std::uint32_t>(config_.durability.max_wave, 1) : 1;
  std::uint32_t wave = 0;
  std::vector<std::pair<Endpoint, Message>> held_msgs;
  Actions held_actions;
  // Certificate re-check scratch (verify_certificates): verdict array sized
  // to the largest certificate seen, reused across batches so the re-check
  // never heap-allocates per block on the execute hot path.
  std::unique_ptr<bool[]> cert_ok;
  std::size_t cert_ok_cap = 0;

  auto flush_wave = [&]() {
    if (durable && wave > 0) {
      rlog_->commit();  // fail-stop on fsync error (propagates)
      store_->commit_wave();
      log_commits_.fetch_add(1, std::memory_order_relaxed);
    }
    wave = 0;
    for (auto& [to, m] : held_msgs) enqueue_output(to, std::move(m));
    held_msgs.clear();
    if (!held_actions.empty()) {
      perform(std::move(held_actions));
      held_actions.clear();
    }
    maybe_compact_log();
  };

  while (!st.stop_requested()) {
    if (diverged_.load(std::memory_order_acquire)) {
      // Exec-divergence fail-stop: our execution provably forked from the
      // cluster's. Nothing this replica executes, answers, or votes from
      // here on can be trusted, so the execute stage halts outright —
      // withheld wave output included. The process stays up for forensics.
      held_msgs.clear();
      held_actions.clear();
      return;
    }
    SeqNum seq = next_exec_seq_.load(std::memory_order_relaxed);
    ExecuteSlot& slot = execute_slots_[seq % execute_slots_.size()];
    protocol::ExecuteAction ex;
    bool have = false;
    {
      MutexLock lock(slot.mu);
      if (wave > 0) {
        // Mid-wave: never sleep on a slot while committed batches sit
        // unfsynced — take the next batch only if it is already there.
        have = slot.item.has_value() && slot.item->seq == seq;
      } else {
        // Bounded wait so the stop token is re-checked every 50 ms even
        // when no batch ever lands in this slot.
        auto deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
        while (!(slot.item.has_value() && slot.item->seq == seq) &&
               std::chrono::steady_clock::now() < deadline) {
          slot.cv.wait_until(slot.mu, deadline);
        }
        have = slot.item.has_value() && slot.item->seq == seq;
      }
      if (have) {
        ex = std::move(*slot.item);
        slot.item.reset();
        slot.cv.notify_all();
      }
    }
    if (!have) {
      if (wave > 0) {
        ScopedBusy sb(busy);
        flush_wave();  // the pipeline went empty: settle the wave now
        continue;
      }
      // Idle with nothing pending: the stalled-replica window where a
      // verified snapshot gets installed, and a safe point to compact.
      maybe_install_snapshot();
      maybe_compact_log();
      continue;  // timeout: re-check stop token
    }
    ScopedBusy sb(busy);
    StageScope alloc_scope(*this, rtzone::Stage::kExecute);

    // Execute every transaction of the batch, in order (§4.6), suppressing
    // retransmitted requests via the reply cache (a request executes exactly
    // once; duplicates get the cached reply). Every put streams through the
    // delta recorder, and each newly-executed result code is folded — batch
    // by batch — into the interval's execution fingerprint (exec_acc_).
    crypto::Sha256 delta_hasher;
    DeltaRecordingStore dstore(*store_, delta_hasher);
    std::vector<std::uint64_t> exec_results;
    std::vector<std::pair<ClientId, protocol::ClientResponse>> responses;
    responses.reserve(ex.txns.size());
    std::uint64_t duplicates = 0;
    for (std::size_t idx = 0; idx < ex.txns.size(); ++idx) {
      // test_perturb_exec models the nondeterminism bug class the
      // fingerprint exists to catch: same ordered input, different apply
      // order. The chain accumulator cannot see it; exec_acc_ does.
      const Transaction& txn =
          config_.test_perturb_exec ? ex.txns[ex.txns.size() - 1 - idx]
                                    : ex.txns[idx];
      auto& cache = reply_cache_[txn.client];
      std::uint64_t result;
      if (txn.req_id == cache.first && cache.first != 0) {
        result = cache.second;  // duplicate of the last executed request
        ++duplicates;
      } else if (txn.req_id < cache.first) {
        ++duplicates;
        continue;  // older than the reply cache: the client moved on
      } else {
        result = execute_fn_ ? execute_fn_(txn, dstore) : 0;
        cache = {txn.req_id, result};
        exec_results.push_back(result);
      }
      protocol::ClientResponse resp;
      resp.client = txn.client;
      resp.req_id = txn.req_id;
      resp.view = ex.view;
      resp.result = result;
      responses.push_back({txn.client, resp});
    }
    exec_acc_ = fold_exec_acc(exec_acc_, ex.seq, ex.batch_digest,
                              exec_results, delta_hasher.finish());

    // Optional defense in depth: re-check the 2f+1 commit certificate
    // through the SAME batch path the verify pool uses — each vote is the
    // signer's signature over its Commit message's canonical bytes. Every
    // vote was already verified on arrival, so a failure here means the
    // certificate was corrupted between quorum and execution; it is counted
    // (and the votes batch through one multi-scalar multiplication, so the
    // re-check costs a fraction of 2f+1 serial verifies). Our own vote may
    // carry an empty placeholder signature — skip those.
    if (config_.verify_certificates && !ex.certificate.empty()) {
      protocol::Commit cm;
      cm.view = ex.view;
      cm.seq = ex.seq;
      cm.batch_digest = ex.batch_digest;
      std::vector<Bytes> vote_canon;
      std::vector<crypto::VerifyItem> vote_items;
      vote_canon.reserve(ex.certificate.size());
      vote_items.reserve(ex.certificate.size());
      for (const auto& vote : ex.certificate) {
        if (vote.signature.empty()) continue;
        Message vm;
        vm.from = Endpoint::replica(vote.replica);
        vm.payload = cm;
        vote_canon.push_back(vm.signing_bytes());
        vote_items.push_back(crypto::VerifyItem{vm.from,
                                                BytesView(vote_canon.back()),
                                                BytesView(vote.signature)});
      }
      if (!vote_items.empty()) {
        if (vote_items.size() > cert_ok_cap) {
          cert_ok_cap = std::max<std::size_t>(vote_items.size(), config_.n);
          cert_ok = make_verdict_scratch(cert_ok_cap);
        }
        crypto::BatchVerifyStats bs;
        const std::size_t valid = crypto_.verify_batch(
            vote_items.data(), vote_items.size(), cert_ok.get(), &bs);
        batched_sigs_.fetch_add(vote_items.size(),
                                std::memory_order_relaxed);
        batch_flushes_.fetch_add(1, std::memory_order_relaxed);
        batch_bisections_.fetch_add(bs.bisections,
                                    std::memory_order_relaxed);
        if (valid < vote_items.size()) {
          cert_vote_failures_.fetch_add(vote_items.size() - valid,
                                        std::memory_order_relaxed);
        }
      }
    }

    // Block generation (§4.6): the 2f+1 commit signatures stand in for the
    // previous-block hash.
    ledger::Block block;
    block.seq = ex.seq;
    block.view = ex.view;
    block.batch_digest = ex.batch_digest;
    block.txn_begin = ex.txn_begin;
    block.txn_end = ex.txn_begin + ex.txns.size();
    block.certificate = ex.certificate;
    Digest acc;
    {
      MutexLock lock(chain_mu_);
      chain_.append(std::move(block));
      acc = chain_.accumulator();
    }

    // Durable mode: log the executed batch (buffered; durable at the wave's
    // group commit) and remember it for the next compaction's tail.
    const bool boundary = config_.checkpoint_interval > 0 &&
                          ex.seq % config_.checkpoint_interval == 0;
    if (durable) {
      LoggedBatch lb;
      lb.seq = ex.seq;
      lb.view = ex.view;
      lb.digest = ex.batch_digest;
      lb.txn_begin = ex.txn_begin;
      lb.txns = ex.txns;
      lb.certificate = ex.certificate;
      rlog_->append_batch(lb);
      log_tail_.push_back(std::move(lb));
      if (boundary) checkpoint_meta_[ex.seq] = {ex.view, acc};
    }
    if (boundary && config_.enable_snapshots)
      capture_snapshot(ex.seq, ex.view, acc);

    // Checkpoint boundary: seal the interval's execution fingerprint. It
    // rides on our Checkpoint vote (engine_.on_executed below) so peers can
    // cross-check execution, not just ordering; the fold restarts at zero
    // for the next interval.
    Digest exec_digest{};
    if (boundary) {
      exec_digest = exec_acc_;
      exec_fingerprints_[ex.seq] = exec_acc_;
      exec_acc_ = Digest{};
      while (exec_fingerprints_.size() > kExecFingerprintKeep)
        exec_fingerprints_.erase(exec_fingerprints_.begin());
    }

    Actions actions;
    {
      MutexLock lock(engine_mu_);
      actions = engine_.on_executed(ex.seq, acc, exec_digest);
    }

    for (auto& [client, resp] : responses) {
      Message m;
      m.from = Endpoint::replica(config_.id);
      m.payload = resp;
      if (durable)
        held_msgs.emplace_back(Endpoint::client(client), std::move(m));
      else
        enqueue_output(Endpoint::client(client), std::move(m));
    }

    {
      MutexLock lock(stats_mu_);
      ++stats_.batches_executed;
      stats_.txns_executed += ex.txns.size() - duplicates;
      stats_.duplicate_txns += duplicates;
      stats_.responses_sent += responses.size();
    }

    next_exec_seq_.store(seq + 1, std::memory_order_relaxed);
    last_executed_pub_.store(seq, std::memory_order_release);
    // Execution progress proves the primary is alive: disarm the relayed-
    // request watchdog.
    {
      MutexLock lock(timer_mu_);
      timers_.erase(kClientRequestTimer);
    }
    if (durable) {
      // Checkpoint votes and other engine follow-ups are withheld with the
      // responses: a vote must not claim execution a crash could lose.
      for (auto& a : actions) held_actions.push_back(std::move(a));
    } else {
      perform(std::move(actions));
    }
    ++wave;
    if (wave >= max_wave) flush_wave();
  }
  // Graceful stop: settle whatever the last wave executed. A real crash
  // (the drill's kill path) never reaches this line — that is the point.
  try {
    flush_wave();
  } catch (...) {
  }
}

// ---------------------------------------------------------------------------
// Snapshot state transfer + log compaction (execute/worker threads).
// ---------------------------------------------------------------------------

void Replica::capture_snapshot(SeqNum seq, ViewId view, const Digest& acc) {
  // Canonical KV image: key-sorted [count][key][value]... — every replica
  // that executed the same prefix serializes byte-identical images, so the
  // image digest can be vouched for by f+1 peers. for_each_sorted is the
  // determinism barrier over the store's unordered iteration.
  std::vector<std::pair<std::string, std::string>> kvs;
  store_->for_each_sorted([&kvs](std::string_view k, std::string_view v) {
    kvs.emplace_back(std::string(k), std::string(v));
  });
  Writer w;
  w.u64(kvs.size());
  for (const auto& [k, v] : kvs) {
    w.str(k);
    w.str(v);
  }
  Bytes image = w.take();
  SnapshotImage img;
  img.seq = seq;
  img.view = view;
  img.chain_acc = acc;
  img.kv_digest = crypto::sha256(BytesView(image));
  img.raw_bytes = image.size();
  img.blob = lz_compress(BytesView(image));
  MutexLock lock(snap_mu_);
  snap_image_ = std::move(img);
}

void Replica::handle_snapshot_request(const Message& msg) {
  const auto& req = std::get<protocol::SnapshotRequest>(msg.payload);
  std::optional<SnapshotImage> img;
  {
    MutexLock lock(snap_mu_);
    if (snap_image_ && snap_image_->seq > req.have) img = *snap_image_;
  }
  if (!img) return;  // nothing captured yet, or the requester is ahead
  protocol::SnapshotResponse resp;
  resp.seq = img->seq;
  resp.chain_acc = img->chain_acc;
  resp.kv_digest = img->kv_digest;
  resp.raw_bytes = img->raw_bytes;
  resp.blob = std::move(img->blob);
  Message m;
  m.from = Endpoint::replica(config_.id);
  m.payload = std::move(resp);
  enqueue_output(msg.from, std::move(m));
  snapshots_served_.fetch_add(1, std::memory_order_relaxed);
}

void Replica::handle_snapshot_response(Message msg) {
  auto& resp = std::get<protocol::SnapshotResponse>(msg.payload);
  if (resp.seq <= last_executed()) return;  // the gap closed naturally
  snap_offers_[msg.from.id] = std::move(resp);

  // f+1 distinct peers vouching for the same (seq, chain digest, kv digest)
  // means at least one honest replica executed exactly that state. The blob
  // itself still has to be proven against the vouched digest — a byzantine
  // voucher can pair honest digests with a garbage blob, so try every
  // matching offer until one decompresses to the right bytes.
  const std::uint32_t need = max_faulty(config_.n) + 1;
  for (const auto& [id, cand] : snap_offers_) {
    auto matches = [&cand](const protocol::SnapshotResponse& o) {
      return o.seq == cand.seq && o.chain_acc == cand.chain_acc &&
             o.kv_digest == cand.kv_digest;
    };
    std::uint32_t votes = 0;
    for (const auto& [id2, o] : snap_offers_)
      if (matches(o)) ++votes;
    if (votes < need) continue;
    for (auto& [id2, o] : snap_offers_) {
      if (!matches(o)) continue;
      auto raw = lz_decompress(BytesView(o.blob), o.raw_bytes);
      if (!raw || raw->size() != o.raw_bytes) continue;
      if (!(crypto::sha256(BytesView(*raw)) == o.kv_digest)) continue;
      {
        MutexLock lock(snap_mu_);
        pending_install_ =
            PendingInstall{o.seq, o.chain_acc, std::move(*raw)};
      }
      snap_offers_.clear();
      return;
    }
  }
}

void Replica::maybe_install_snapshot() {
  std::optional<PendingInstall> p;
  {
    MutexLock lock(snap_mu_);
    if (pending_install_) {
      if (pending_install_->seq >
          last_executed_pub_.load(std::memory_order_relaxed)) {
        p.emplace(std::move(*pending_install_));
      }
      pending_install_.reset();  // taken, or stale because the gap closed
    }
  }
  if (!p) return;
  const SeqNum seq = p->seq;

  // Replace the KV image wholesale and persist it BEFORE the consensus log
  // stops covering the gap (the compact below anchors the log at `seq`).
  store_->clear();
  Reader r(BytesView(p->image));
  std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string k = r.str();
    std::string v = r.str();
    if (!r.ok()) break;  // cannot happen: the image digest was verified
    store_->put(k, v);
  }
  store_->checkpoint();

  {
    MutexLock lock(chain_mu_);
    chain_.reset_to(seq, p->chain_acc);
  }
  if (rlog_) {
    log_tail_.clear();
    checkpoint_meta_.clear();
    ViewId v = view();
    checkpoint_meta_[seq] = {v, p->chain_acc};
    rlog_->compact(seq, v, p->chain_acc, {});
    log_compactions_.fetch_add(1, std::memory_order_relaxed);
  }
  Actions actions;
  {
    MutexLock lock(engine_mu_);
    actions = engine_.install_snapshot(seq);
  }
  next_exec_seq_.store(seq + 1, std::memory_order_relaxed);
  last_executed_pub_.store(seq, std::memory_order_release);
  // Snapshots are captured at checkpoint boundaries, where the fingerprint
  // fold restarts — start the next interval from zero like every peer.
  exec_acc_ = Digest{};
  snapshots_installed_.fetch_add(1, std::memory_order_relaxed);
  // Any committed tail the engine had buffered above the image executes
  // through the normal slot path.
  perform(std::move(actions));
}

void Replica::maybe_compact_log() {
  if (!rlog_) return;
  // Only a durable store may absorb history: compacting the log against an
  // in-memory store would discard the only persistent copy.
  if (!store_->durable()) return;
  SeqNum want = compact_request_.load(std::memory_order_acquire);
  if (want == 0) return;
  auto it = checkpoint_meta_.find(want);
  if (it == checkpoint_meta_.end()) return;  // boundary not executed yet
  compact_request_.compare_exchange_strong(want, 0,
                                           std::memory_order_acq_rel);
  // KV durability up to (at least) the anchor FIRST, then rewrite the log
  // without the records the anchor replaces.
  store_->checkpoint();
  while (!log_tail_.empty() && log_tail_.front().seq <= want)
    log_tail_.pop_front();
  std::vector<LoggedBatch> tail(log_tail_.begin(), log_tail_.end());
  rlog_->compact(want, it->second.first, it->second.second, tail);
  log_compactions_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_meta_.erase(checkpoint_meta_.begin(),
                         checkpoint_meta_.upper_bound(want));
}

// ---------------------------------------------------------------------------
// Checkpoint thread (§4.7).
// ---------------------------------------------------------------------------

void Replica::checkpoint_loop(std::stop_token st, BusyCounter& busy) {
  while (!st.stop_requested()) {
    auto msg = checkpoint_queue_.pop();
    if (!msg) return;
    ScopedBusy sb(busy);
    StageScope alloc_scope(*this, rtzone::Stage::kCheckpoint);
    bool self = msg->from == Endpoint::replica(config_.id);
    if (!self) {
      Bytes canon = msg->signing_bytes();
      if (!crypto_.verify(msg->from, BytesView(canon),
                          BytesView(msg->signature))) {
        MutexLock lock(stats_mu_);
        ++stats_.invalid_signatures;
        continue;
      }
    }
    Actions actions;
    {
      MutexLock lock(engine_mu_);
      actions = engine_.on_checkpoint(*msg);
    }
    perform(std::move(actions));
  }
}

// ---------------------------------------------------------------------------
// Output threads: sign per link and hand to the transport.
// ---------------------------------------------------------------------------

void Replica::enqueue_output(Endpoint to, Message msg) {
  std::size_t idx = to.id % output_queues_.size();
  output_queues_[idx]->push(OutboundMsg{to, std::move(msg)});
}

void Replica::broadcast(Message msg) {
  if (ds_replica_links_ && config_.n > 1) {
    // Serialize-once fan-out: one output thread signs and serializes a
    // single wire frame, then sends a borrowed FrameView to every peer
    // (n-1 sends, ONE serialization, ONE signature). Round-robin so the
    // broadcast load spreads across output threads; atomic because
    // broadcast() runs on worker, batch and checkpoint threads alike.
    std::size_t idx = rr_bcast_.fetch_add(1, std::memory_order_relaxed) %
                      output_queues_.size();
    output_queues_[idx]->push(OutboundMsg{Endpoint::replica(config_.id),
                                          std::move(msg), /*broadcast=*/true});
    return;
  }
  // Pairwise-MAC links (CMAC): each peer needs its own tag, so the frame
  // legitimately differs per destination — sign + serialize per link.
  for (ReplicaId peer = 0; peer < config_.n; ++peer) {
    if (peer == config_.id) continue;
    enqueue_output(Endpoint::replica(peer), msg);
  }
}

void Replica::output_loop(std::stop_token st, std::size_t idx,
                          BusyCounter& busy) {
  while (!st.stop_requested()) {
    auto out = output_queues_[idx]->pop();
    if (!out) return;
    ScopedBusy sb(busy);
    StageScope alloc_scope(*this, rtzone::Stage::kOutput);
    if (out->broadcast) {
      // Addressee-independent signature: any replica endpoint selects the
      // same scheme and the same signing key, so sign against the first
      // non-self peer and reuse the frame for all of them.
      Bytes canon = out->msg.signing_bytes();
      out->msg.signature = crypto_.sign(
          Endpoint::replica((config_.id + 1) % config_.n), BytesView(canon));
      OwnedFrame frame = OwnedFrame::adopt(out->msg.serialize());
      broadcasts_serialized_.fetch_add(1, std::memory_order_relaxed);
      for (ReplicaId peer = 0; peer < config_.n; ++peer) {
        if (peer == config_.id) continue;
        transport_.send_frame(Endpoint::replica(config_.id),
                              Endpoint::replica(peer), frame.view());
        broadcast_frame_sends_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    Bytes canon = out->msg.signing_bytes();
    out->msg.signature = crypto_.sign(out->to, BytesView(canon));
    transport_.send(out->to, out->msg);
  }
}

// ---------------------------------------------------------------------------
// Timers (view-change triggers).
// ---------------------------------------------------------------------------

void Replica::timer_loop(std::stop_token st) {
  MutexLock lock(timer_mu_);
  while (!st.stop_requested()) {
    if (timers_.empty()) {
      // Wakes on arm/cancel, stop, or the 50 ms poll tick; loop re-tests.
      timer_cv_.wait_for(timer_mu_, st, std::chrono::milliseconds(50));
      continue;
    }
    auto next = std::min_element(
        timers_.begin(), timers_.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    auto deadline = next->second;
    if (std::chrono::steady_clock::now() < deadline) {
      // Sleep toward the earliest deadline; an arm/cancel notify wakes us
      // early so a NEWLY armed earlier timer is honoured on the next pass.
      timer_cv_.wait_until(timer_mu_, st, deadline);
      continue;
    }
    std::uint64_t id = next->first;
    timers_.erase(next);
    if (id == kCatchupTimer) {
      // Self re-arming periodic poll.
      timers_[kCatchupTimer] =
          std::chrono::steady_clock::now() +
          std::chrono::nanoseconds(config_.catchup_poll_ns);
    }
    lock.unlock();
    Actions actions;
    {
      MutexLock elock(engine_mu_);
      actions = id == kClientRequestTimer ? engine_.on_client_request_timeout()
                : id == kCatchupTimer     ? engine_.maybe_request_catchup()
                                          : engine_.on_timeout(id);
    }
    perform(std::move(actions));
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Action dispatch.
// ---------------------------------------------------------------------------

void Replica::perform(Actions actions) {
  // visit_action: one handler per alternative, checked at compile time.
  // Adding an Action without extending this dispatcher is a build error,
  // not a silent fall-through (protocol/actions.h).
  for (auto& action : actions) {
    protocol::visit_action(
        action,
        [&](protocol::BroadcastAction& bc) {
          if (bc.msg.type() == MsgType::kCommit) {
            // Record this replica's own vote for the block certificate: the
            // self-link MAC/signature over the commit's canonical bytes.
            auto seq = std::get<protocol::Commit>(bc.msg.payload).seq;
            Bytes canon = bc.msg.signing_bytes();
            Bytes sig =
                crypto_.sign(Endpoint::replica(config_.id), BytesView(canon));
            MutexLock lock(engine_mu_);
            engine_.note_own_commit_signature(seq, std::move(sig));
          }
          bool include_self = bc.include_self;
          Message msg = std::move(bc.msg);
          // Own messages need no signature check (verified = true).
          if (include_self) worker_queue_.push(WorkerItem{msg, true});
          broadcast(std::move(msg));
        },
        [&](protocol::SendAction& send) {
          enqueue_output(send.to, std::move(send.msg));
        },
        [&](protocol::ExecuteAction& ex) { deliver_execute(std::move(ex)); },
        [&](protocol::SetTimerAction& t) {
          MutexLock lock(timer_mu_);
          timers_[t.id] = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(t.delay_ns);
          timer_cv_.notify_all();
        },
        [&](protocol::CancelTimerAction& c) {
          MutexLock lock(timer_mu_);
          timers_.erase(c.id);
          timer_cv_.notify_all();
        },
        [&](protocol::StableCheckpointAction& sc) {
          {
            MutexLock lock(chain_mu_);
            chain_.prune_before(sc.seq);
          }
          if (rlog_) {
            // Ask the execute thread (the log's owner) to compact to the new
            // stable anchor at its next wave boundary; keep only the max.
            SeqNum cur = compact_request_.load(std::memory_order_relaxed);
            while (cur < sc.seq &&
                   !compact_request_.compare_exchange_weak(
                       cur, sc.seq, std::memory_order_acq_rel)) {
            }
          }
        },
        [&](protocol::RequestSnapshotAction& rs) {
          if (config_.enable_snapshots) {
            protocol::SnapshotRequest req;
            req.have = rs.have;
            Message m;
            m.from = Endpoint::replica(config_.id);
            m.payload = req;
            broadcast(std::move(m));
          }
        },
        [&](protocol::ExecDivergenceAction& dv) {
          // Named fail-stop: f+1 peers executed the same ordered input and
          // got a different execution fingerprint — at least one of them is
          // honest, so OUR execution is the nondeterministic (or corrupted)
          // one. Dump forensics, count it, and flip the diverged flag; the
          // execute thread halts at its next iteration and never un-halts.
          Digest chain_acc;
          {
            MutexLock lock(chain_mu_);
            chain_acc = chain_.accumulator();
          }
          log_error(
              "EXEC DIVERGENCE (fail-stop): replica=" +
              std::to_string(config_.id) + " seq=" + std::to_string(dv.seq) +
              " local_exec=" + to_hex(dv.local_exec) +
              " quorum_exec=" + to_hex(dv.quorum_exec) +
              " voters=" + std::to_string(dv.voters) +
              " last_executed=" + std::to_string(last_executed()) +
              " chain_acc=" + to_hex(chain_acc) +
              " — chain accumulators MATCH, so ordering agreed and execution " +
              "itself forked; halting the execute stage");
          exec_divergence_count_.fetch_add(1, std::memory_order_relaxed);
          diverged_.store(true, std::memory_order_release);
        },
        [&](protocol::ViewChangedAction& vc) {
          view_.store(vc.view, std::memory_order_release);
          if (vc.view % config_.n == config_.id) {
            SeqNum base;
            {
              MutexLock lock(engine_mu_);
              base = engine_.suggest_next_seq();
            }
            seq_base_.store(base, std::memory_order_release);
          }
        });
  }
}

}  // namespace rdb::runtime
