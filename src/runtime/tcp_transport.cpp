#include "runtime/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/logging.h"

namespace rdb::runtime {

namespace {

bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    ssize_t w = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
    if (w <= 0) return false;
    put += static_cast<std::size_t>(w);
  }
  return true;
}

constexpr std::uint32_t kMaxFrame = 64 * 1024 * 1024;  // 64 MiB sanity cap

}  // namespace

TcpTransport::TcpTransport(Endpoint self, std::uint16_t listen_port)
    : self_(self) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(listen_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bind failed on port " +
                             std::to_string(listen_port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: listen failed");
  }

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  acceptor_ = std::jthread([this](std::stop_token st) { accept_loop(st); });
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::stop() {
  if (stopping_.exchange(true)) return;
  acceptor_.request_stop();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::jthread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [k, conn] : conns_) {
      ::shutdown(conn.fd, SHUT_RDWR);
      ::close(conn.fd);
    }
    conns_.clear();
    for (int fd : accepted_fds_) ::shutdown(fd, SHUT_RDWR);
    readers.swap(readers_);
  }
  for (auto& r : readers) r.request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  readers.clear();  // join reader threads
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : accepted_fds_) ::close(fd);
  accepted_fds_.clear();
}

void TcpTransport::add_peer(Endpoint ep, TcpPeer peer) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_[key(ep)] = std::move(peer);
}

void TcpTransport::register_endpoint(Endpoint ep,
                                     std::shared_ptr<Inbox> inbox) {
  if (!(ep == self_))
    throw std::runtime_error(
        "TcpTransport hosts exactly one endpoint (its own)");
  std::lock_guard<std::mutex> lock(mu_);
  inbox_ = std::move(inbox);
}

void TcpTransport::accept_loop(std::stop_token st) {
  while (!st.stop_requested()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load()) {
        ::close(fd);
        return;
      }
      accepted_fds_.push_back(fd);
      readers_.emplace_back(
          [this, fd](std::stop_token rst) { reader_loop(rst, fd); });
    }
  }
}

void TcpTransport::reader_loop(std::stop_token st, int fd) {
  while (!st.stop_requested()) {
    std::uint8_t len_buf[4];
    if (!read_exact(fd, len_buf, 4)) return;
    std::uint32_t len;
    std::memcpy(&len, len_buf, 4);
    if (len == 0 || len > kMaxFrame) return;  // corrupt/hostile stream
    Bytes wire(len);
    if (!read_exact(fd, wire.data(), len)) return;

    std::shared_ptr<Inbox> inbox;
    {
      std::lock_guard<std::mutex> lock(mu_);
      inbox = inbox_;
    }
    if (inbox) inbox->push(std::move(wire));
  }
}

int TcpTransport::connect_to(const TcpPeer& peer) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool TcpTransport::write_frame(int fd, const Bytes& wire) {
  std::uint8_t len_buf[4];
  auto len = static_cast<std::uint32_t>(wire.size());
  std::memcpy(len_buf, &len, 4);
  if (!write_exact(fd, len_buf, 4)) return false;
  return write_exact(fd, wire.data(), wire.size());
}

void TcpTransport::send(Endpoint to, const protocol::Message& msg) {
  if (stopping_.load()) return;
  std::uint64_t k = key(to);

  int fd = -1;
  std::mutex* write_mu = nullptr;
  TcpPeer peer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto pit = peers_.find(k);
    if (pit == peers_.end()) {
      ++failures_;
      return;  // undeclared peer
    }
    peer = pit->second;
    auto cit = conns_.find(k);
    if (cit != conns_.end()) {
      fd = cit->second.fd;
      write_mu = cit->second.write_mu.get();
    }
  }

  if (fd < 0) {
    int fresh = connect_to(peer);
    if (fresh < 0) {
      ++failures_;
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        conns_.try_emplace(k, Conn{fresh, std::make_unique<std::mutex>()});
    if (!inserted) {
      // Lost a connect race; use the established one.
      ::close(fresh);
    }
    fd = it->second.fd;
    write_mu = it->second.write_mu.get();
  }

  Bytes wire = msg.serialize();
  bool ok;
  {
    std::lock_guard<std::mutex> wlock(*write_mu);
    ok = write_frame(fd, wire);
  }
  if (!ok) {
    ++failures_;
    std::lock_guard<std::mutex> lock(mu_);
    auto cit = conns_.find(k);
    if (cit != conns_.end() && cit->second.fd == fd) {
      ::close(cit->second.fd);
      conns_.erase(cit);
    }
    return;
  }
  ++sent_;
}

}  // namespace rdb::runtime
