#include "runtime/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/logging.h"

namespace rdb::runtime {

namespace {

bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    ssize_t w = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
    if (w <= 0) return false;
    put += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(Endpoint self, std::uint16_t listen_port,
                           TcpTransportConfig config)
    : self_(self),
      config_(config),
      frame_pool_(config.frame_pool_slabs, config.frame_slab_bytes) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(listen_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bind failed on port " +
                             std::to_string(listen_port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: listen failed");
  }

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  acceptor_ = std::jthread([this](std::stop_token st) { accept_loop(st); });
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::stop() {
  if (stopping_.exchange(true)) return;
  // The drain deadline is written before any request_stop() below; sender
  // threads only read it after observing the stop request, and the stop
  // state's release/acquire ordering makes the write visible.
  drain_deadline_ = std::chrono::steady_clock::now() + config_.drain_timeout;

  // Ask every sender to drain-and-exit; they close their own sockets.
  {
    MutexLock lock(mu_);
    for (auto& [k, peer] : peers_) {
      peer->sender.request_stop();
      peer->cv.notify_all();
    }
  }
  join_senders();

  acceptor_.request_stop();
  // shutdown() wakes a blocked accept(); the fd is closed only AFTER the
  // acceptor joins, so the acceptor never races a close/reset of listen_fd_
  // (and can never accept() on a recycled descriptor number).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::vector<std::jthread> readers;
  {
    MutexLock lock(mu_);
    for (int fd : accepted_fds_) ::shutdown(fd, SHUT_RDWR);
    readers.swap(readers_);
  }
  for (auto& r : readers) r.request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  readers.clear();  // join reader threads
  MutexLock lock(mu_);
  for (int fd : accepted_fds_) ::close(fd);
  accepted_fds_.clear();
}

void TcpTransport::join_senders() {
  // peers_ is no longer mutated (add_peer refuses while stopping_), so the
  // map can be walked without mu_ while joining — holding mu_ across joins
  // could deadlock against a sender that briefly needs it.
  for (auto& [k, peer] : peers_) {
    if (peer->sender.joinable()) peer->sender.join();
  }
}

void TcpTransport::add_peer(Endpoint ep, TcpPeer peer) {
  if (stopping_.load(std::memory_order_relaxed)) return;
  MutexLock lock(mu_);
  std::uint64_t k = key(ep);
  auto it = peers_.find(k);
  if (it != peers_.end()) {
    // Re-declaration: update the address; the sender reconnects on the next
    // failure (an address change usually accompanies a peer restart).
    // Nested acquisition mu_ (560) -> peer->mu (540): ranks decrease.
    PeerState* existing = it->second.get();
    MutexLock plock(existing->mu);
    existing->addr = std::move(peer);
    return;
  }
  std::uint64_t seed = config_.backoff_seed ^ (k * 0x9E3779B97F4A7C15ULL);
  auto state = std::make_unique<PeerState>(std::move(peer), splitmix64(seed));
  PeerState* raw = state.get();
  peers_[k] = std::move(state);
  raw->sender = std::jthread(
      [this, raw](std::stop_token st) { sender_loop(st, raw); });
}

void TcpTransport::register_endpoint(Endpoint ep,
                                     std::shared_ptr<Inbox> inbox) {
  if (!(ep == self_))
    throw std::runtime_error(
        "TcpTransport hosts exactly one endpoint (its own)");
  MutexLock lock(mu_);
  inbox_ = std::move(inbox);
}

TcpTransportStats TcpTransport::stats() const {
  TcpTransportStats s;
  s.messages_sent = sent_.load(std::memory_order_relaxed);
  s.send_failures = failures_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.queue_overflows = overflows_.load(std::memory_order_relaxed);
  s.messages_requeued = requeued_.load(std::memory_order_relaxed);
  s.undeclared_drops = undeclared_.load(std::memory_order_relaxed);
  s.oversize_rejected = oversize_.load(std::memory_order_relaxed);
  s.frames_pooled = frame_pool_.pooled_acquires();
  s.frames_heap_fallback = frame_pool_.heap_fallbacks();
  return s;
}

void TcpTransport::accept_loop(std::stop_token st) {
  while (!st.stop_requested()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      MutexLock lock(mu_);
      if (stopping_.load()) {
        ::close(fd);
        return;
      }
      accepted_fds_.push_back(fd);
      readers_.emplace_back(
          [this, fd](std::stop_token rst) { reader_loop(rst, fd); });
    }
  }
}

void TcpTransport::reader_loop(std::stop_token st, int fd) {
  while (!st.stop_requested()) {
    std::uint8_t len_buf[4];
    if (!read_exact(fd, len_buf, 4)) return;
    std::uint32_t len;
    std::memcpy(&len, len_buf, 4);
    if (len == 0 || len > config_.max_frame)
      return;  // corrupt/hostile stream: cut the connection
    Bytes wire(len);
    if (!read_exact(fd, wire.data(), len)) return;

    std::shared_ptr<Inbox> inbox;
    {
      MutexLock lock(mu_);
      inbox = inbox_;
    }
    if (inbox) inbox->push(std::move(wire));
  }
}

int TcpTransport::connect_to(const TcpPeer& peer) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool TcpTransport::write_frame(int fd, BytesView wire) {
  std::uint8_t len_buf[4];
  auto len = static_cast<std::uint32_t>(wire.size());
  std::memcpy(len_buf, &len, 4);
  if (!write_exact(fd, len_buf, 4)) return false;
  return write_exact(fd, wire.data(), wire.size());
}

void TcpTransport::send(Endpoint to, const protocol::Message& msg) {
  send_raw(to, msg.serialize());
}

void TcpTransport::send_raw(Endpoint to, Bytes wire) {
  if (stopping_.load(std::memory_order_relaxed)) return;
  if (wire.size() > config_.max_frame) {
    // A frame the receiver would cut the connection over must never be put
    // on the wire: reject at the source, visibly.
    oversize_.fetch_add(1, std::memory_order_relaxed);
    failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  enqueue_frame(to, frame_pool_.acquire_copy(BytesView(wire)));
}

void TcpTransport::send_frame(Endpoint from, Endpoint to, FrameView frame) {
  (void)from;  // link identity matters to decorators; the mesh routes by `to`
  if (stopping_.load(std::memory_order_relaxed)) return;
  if (frame.size() > config_.max_frame) {
    oversize_.fetch_add(1, std::memory_order_relaxed);
    failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The borrow ends when this call returns, so the bytes are copied into a
  // pooled slab the sender thread owns (one memcpy, no heap on a pool hit).
  enqueue_frame(to, frame_pool_.acquire_copy(frame.bytes()));
}

void TcpTransport::enqueue_frame(Endpoint to, OwnedFrame frame) {
  PeerState* peer = nullptr;
  {
    MutexLock lock(mu_);
    auto it = peers_.find(key(to));
    if (it == peers_.end()) {
      undeclared_.fetch_add(1, std::memory_order_relaxed);
      failures_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    peer = it->second.get();
  }
  {
    MutexLock lock(peer->mu);
    if (peer->queue.size() >= config_.max_peer_queue) {
      // Bounded queue: a dead peer must not exhaust memory. Drop the OLDEST
      // frame — stale consensus votes are the most superseded — returning
      // its slab to the pool for the frame being admitted.
      peer->queue.pop_front();
      overflows_.fetch_add(1, std::memory_order_relaxed);
    }
    peer->queue.push_back(std::move(frame));
  }
  peer->cv.notify_all();
}

void TcpTransport::sender_loop(std::stop_token st, PeerState* peer) {
  auto backoff = config_.backoff_base;
  MutexLock lock(peer->mu);
  for (;;) {
    if (!st.stop_requested() && peer->queue.empty()) {
      // Wakes on push, stop, or spuriously; the loop re-tests everything.
      peer->cv.wait(peer->mu, st);
      continue;  // re-evaluate stop/queue state
    }
    if (st.stop_requested()) {
      // Drain phase: flush what an ESTABLISHED connection can take within
      // the deadline; never dial during shutdown.
      if (peer->queue.empty() || peer->fd < 0 ||
          std::chrono::steady_clock::now() > drain_deadline_)
        break;
    }

    if (peer->fd < 0) {
      TcpPeer addr = peer->addr;
      lock.unlock();
      int fd = connect_to(addr);
      lock.lock();
      if (fd < 0) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        // Bounded exponential backoff + deterministic jitter before the
        // next dial; a stop request interrupts the wait. Sleep the FULL
        // backoff (notifications from send() must not shorten it, or a
        // busy sender would hammer a dead peer), so loop to the deadline.
        auto jitter = std::chrono::milliseconds(peer->jitter.below(
            static_cast<std::uint64_t>(config_.backoff_base.count()) + 1));
        auto deadline = std::chrono::steady_clock::now() + backoff + jitter;
        while (!st.stop_requested() &&
               std::chrono::steady_clock::now() < deadline) {
          peer->cv.wait_until(peer->mu, st, deadline);
        }
        backoff = std::min(backoff * 2, config_.backoff_max);
        if (st.stop_requested() && peer->fd < 0) break;
        continue;
      }
      if (peer->ever_connected)
        reconnects_.fetch_add(1, std::memory_order_relaxed);
      peer->ever_connected = true;
      peer->fd = fd;
      backoff = config_.backoff_base;
    }
    if (peer->queue.empty()) continue;

    OwnedFrame frame = std::move(peer->queue.front());
    peer->queue.pop_front();
    int fd = peer->fd;
    lock.unlock();
    bool ok = write_frame(fd, frame.bytes());
    lock.lock();
    if (ok) {
      sent_.fetch_add(1, std::memory_order_relaxed);
      continue;  // frame destructor recycles the slab
    }
    // Write failure: the connection is gone. Requeue the frame at the front
    // (per-peer FIFO preserved) and reconnect on the next iteration.
    failures_.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
    if (peer->fd == fd) peer->fd = -1;
    peer->queue.push_front(std::move(frame));
    requeued_.fetch_add(1, std::memory_order_relaxed);
    if (st.stop_requested()) break;  // no reconnects during shutdown
  }
  if (peer->fd >= 0) {
    ::shutdown(peer->fd, SHUT_RDWR);
    ::close(peer->fd);
    peer->fd = -1;
  }
}

}  // namespace rdb::runtime
