// Runtime client: signs transactions with the client scheme (digital
// signatures — the one place the paper says DS is mandatory, §6), sends them
// to the primary, and completes a request once f+1 matching responses from
// distinct replicas arrive (the PBFT client rule).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "crypto/provider.h"
#include "runtime/transport.h"

namespace rdb::runtime {

struct ClientConfig {
  ClientId id{0};
  std::uint32_t n{4};  // replica count, for f+1 response quorums
  crypto::SchemeConfig schemes{};
  std::chrono::milliseconds request_timeout{2'000};
  std::uint32_t max_retries{3};
  /// PBFT liveness rule: from this retry onward the request is broadcast to
  /// ALL replicas (backups relay to the primary and arm view-change timers),
  /// so a crashed primary cannot blackhole a client forever. Earlier retries
  /// rotate through the replica ring one at a time.
  std::uint32_t broadcast_after{2};
};

struct ClientStats {
  std::uint64_t requests{0};    // submit_and_wait calls
  std::uint64_t retries{0};     // re-sends after a timeout
  std::uint64_t broadcasts{0};  // retries that went to every replica
  std::uint64_t timeouts{0};    // submit_and_wait calls that gave up
  std::uint64_t rejected{0};    // frames validate_wire refused (any reason)
};

class Client {
 public:
  Client(ClientConfig config, Transport& transport,
         const crypto::KeyRegistry& registry);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Builds a signed transaction carrying `payload`.
  protocol::Transaction make_transaction(Bytes payload, std::uint32_t ops = 1);

  /// Sends a burst of transactions as one request message (client-side
  /// batching, §4.2) to the believed primary and blocks until every
  /// transaction in the burst has f+1 matching responses. Returns the result
  /// codes in submission order, or nullopt on timeout after retries.
  /// Retries rotate through the whole replica ring and, from
  /// config.broadcast_after onward, go to every replica at once — the PBFT
  /// liveness path that survives a crashed primary.
  std::optional<std::vector<std::uint64_t>> submit_and_wait(
      std::vector<protocol::Transaction> txns);

  ClientId id() const { return config_.id; }
  ViewId believed_view() const {
    return view_.load(std::memory_order_relaxed);
  }
  ClientStats stats() const;
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingRequest {
    // replica -> result, per request id; completes at f+1 matching results.
    std::map<RequestId, std::map<ReplicaId, std::uint64_t>> votes;
    std::map<RequestId, std::uint64_t> decided;
  };

  void pump_loop(std::stop_token st);
  void send_signed(ReplicaId target, protocol::Message& msg);
  std::uint32_t f() const { return max_faulty(config_.n); }
  /// True once every id in `ids` has a decided result.
  bool all_decided(const std::vector<RequestId>& ids) const
      RDB_REQUIRES(mu_);

  ClientConfig config_;
  Transport& transport_;
  crypto::CryptoProvider crypto_;
  std::shared_ptr<Transport::Inbox> inbox_;

  mutable Mutex mu_{LockRank::kClient, "Client"};
  CondVar cv_;
  PendingRequest pending_ RDB_GUARDED_BY(mu_);
  std::atomic<ViewId> view_{0};
  RequestId next_req_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> broadcasts_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::jthread pump_;
};

}  // namespace rdb::runtime
