#include "runtime/transport.h"

namespace rdb::runtime {

void InprocTransport::register_endpoint(Endpoint ep,
                                        std::shared_ptr<Inbox> inbox) {
  MutexLock lock(mu_);
  inboxes_[key(ep)] = std::move(inbox);
}

void InprocTransport::send(Endpoint to, const protocol::Message& msg) {
  {
    MutexLock lock(mu_);
    if (auto p = partitioned_.find(key(msg.from));
        p != partitioned_.end() && p->second)
      return;
  }
  send_raw(to, msg.serialize());
}

void InprocTransport::send_raw(Endpoint to, Bytes wire) {
  std::shared_ptr<Inbox> inbox;
  {
    MutexLock lock(mu_);
    if (auto p = partitioned_.find(key(to));
        p != partitioned_.end() && p->second)
      return;
    auto it = inboxes_.find(key(to));
    if (it == inboxes_.end()) return;
    inbox = it->second;
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(wire.size(), std::memory_order_relaxed);
  inbox->push(std::move(wire));
}

void InprocTransport::send_frame(Endpoint from, Endpoint to, FrameView frame) {
  {
    MutexLock lock(mu_);
    if (auto p = partitioned_.find(key(from));
        p != partitioned_.end() && p->second)
      return;
  }
  send_raw(to, frame.to_bytes());
}

void InprocTransport::set_partitioned(Endpoint ep, bool partitioned) {
  MutexLock lock(mu_);
  partitioned_[key(ep)] = partitioned;
}

}  // namespace rdb::runtime
