// The threaded ResilientDB replica (§4.1–§4.8, Figures 6a/6b) — real
// std::jthread pipeline, real cryptography, real storage, real execution.
//
// Thread layout (primary):
//   input         receives from the transport, assigns sequence numbers to
//                 client requests, feeds the lock-free common batch queue
//   batch x B     verify client signatures, build + hash + sign Pre-prepares
//   verify x V    (optional, verify_threads > 0) authenticate Prepare/Commit
//                 signatures in parallel, then enqueue the verified message
//                 for the worker — signature checking leaves the consensus
//                 critical path without giving up the single-owner invariant
//   worker        all Prepare/Commit processing (single-threaded by design:
//                 one owner for consensus state means no locks on the
//                 quorum-counting hot path)
//   execute       strictly in-order execution via the QC logical-queue
//                 scheme (§4.6), block creation, client responses
//   checkpoint    Checkpoint message processing and garbage collection
//   output x O    signing fan-out and transport sends
//
// Backups run the same layout minus the batch stage. The engine state is
// owned by the worker thread; batch threads construct Pre-prepares through a
// short-lived engine lock (the sequence number was already assigned by the
// input thread, so out-of-order batch completion is fine — §4.5).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/det.h"
#include "common/rtzone.h"
#include "common/stats.h"
#include "common/sync.h"
#include "crypto/provider.h"
#include "ledger/blockchain.h"
#include "protocol/pbft.h"
#include "protocol/validate.h"
#include "queues/blocking_queue.h"
#include "queues/buffer_pool.h"
#include "queues/mpmc_queue.h"
#include "runtime/replica_log.h"
#include "runtime/transport.h"
#include "storage/kv_store.h"

namespace rdb::runtime {

/// Durable crash-recovery mode. When enabled the replica writes every
/// executed batch to a checksummed consensus WAL under `dir`, group-commits
/// it once per execution wave (one fsync no matter how many batches the wave
/// held — client responses and checkpoint votes are withheld until the wave
/// is on disk), and at construction recovers chain/engine/KV state from disk
/// instead of starting empty.
struct ReplicaDurability {
  bool enabled{false};
  std::string dir;  // per-replica data dir; holds consensus.log
  bool sync{true};  // fsync per group commit (off only for unit tests)
  /// Max executed batches per group commit. Under load the wave grows until
  /// the next slot is empty or this cap is hit; an idle replica commits
  /// every batch individually (wave of 1).
  std::uint32_t max_wave{128};
  storage::Env* env{nullptr};  // nullptr = the real POSIX env
};

struct ReplicaConfig {
  std::uint32_t n{4};
  ReplicaId id{0};
  std::uint32_t batch_threads{2};
  std::uint32_t output_threads{2};
  /// Signature-verification pool for Prepare/Commit traffic. 0 keeps the
  /// seed behaviour (the consensus worker verifies inline). With V > 0, V
  /// pool threads verify-then-enqueue: signatures are checked in parallel,
  /// but quorum counting still happens only on the single worker thread
  /// (§4.3/4.4 single-owner invariant). PBFT is insensitive to Prepare/
  /// Commit reordering — votes are counted per sequence number — so the
  /// pool may legally reorder messages.
  std::uint32_t verify_threads{0};
  /// Burst draining for the verify pool: a pool thread blocks for the first
  /// Prepare/Commit, then keeps draining the queue until it holds
  /// verify_batch_size signatures or verify_batch_wait_ns has passed —
  /// whichever comes first — and settles the whole burst with ONE batch
  /// verification (randomized linear combination, single multi-scalar
  /// multiplication). <= 1 verifies per message as before.
  std::uint32_t verify_batch_size{64};
  TimeNs verify_batch_wait_ns{200'000};  // 200 us flush cutoff
  /// Re-check each executed block's 2f+1 commit certificate through the
  /// batch-verify path before it is appended (defense in depth: every vote
  /// was already verified on arrival, so a failure here means certificate
  /// corruption — counted in cert_vote_failures, and the block still
  /// appends). Off by default to keep the execute stage lean.
  bool verify_certificates{false};
  std::uint32_t batch_size{10};
  SeqNum checkpoint_interval{16};
  TimeNs request_timeout_ns{2'000'000'000};
  TimeNs batch_flush_timeout_ns{10'000'000};
  TimeNs catchup_poll_ns{500'000'000};  // gap-detection poll (0 disables)
  std::size_t execute_queue_slots{4096};  // QC (§4.6)
  crypto::SchemeConfig schemes{};
  ReplicaDurability durability{};
  /// Snapshot state transfer: capture a compressed KV image at every
  /// checkpoint boundary, serve it to replicas that fell below the batch
  /// retention window, and install f+1-vouched images received while
  /// stalled. Off by default — capture walks the whole store on the execute
  /// thread, which throughput benchmarks must not pay for.
  bool enable_snapshots{false};
  /// TEST-ONLY fault injection: apply each batch's transactions in REVERSED
  /// order. The chain accumulator is unaffected (it commits to the ordered
  /// input, not to execution effects), so consensus proceeds normally while
  /// the execution fingerprint silently forks — exactly the failure shape
  /// the exec-divergence tripwire exists to catch. Never set in production.
  bool test_perturb_exec{false};
};

/// Application hook: executes one transaction against the store, returns a
/// result code placed in the client response.
using ExecuteFn = std::function<std::uint64_t(const protocol::Transaction&,
                                              storage::KvStore&)>;

struct ReplicaStats {
  std::uint64_t batches_executed{0};
  std::uint64_t txns_executed{0};
  std::uint64_t responses_sent{0};
  std::uint64_t invalid_signatures{0};
  std::uint64_t duplicate_txns{0};  // retransmissions suppressed at execute
  std::uint64_t pool_hits{0};
  std::uint64_t pool_misses{0};
  /// Number of push attempts that found the input->batch queue full and had
  /// to back off (one count per saturation episode, not per retry).
  std::uint64_t batch_queue_saturated{0};
  /// Wire frames the input thread rejected, per RejectReason (indexed by the
  /// enum value; names via protocol::reject_reason_name). Rejects are
  /// COUNTED, never silently dropped — chaos drills assert on these.
  std::array<std::uint64_t,
             static_cast<std::size_t>(protocol::RejectReason::kCount)>
      rejected_messages{};
  /// Sum of rejected_messages[*] (convenience for assertions/printing).
  std::uint64_t rejected_total{0};
  /// Batch verification (the burst-draining verify stage + certificate
  /// re-checks): signatures settled through CryptoProvider::verify_batch,
  /// number of flushed waves, bisection hunts after a failed wave, and the
  /// mean wave size (batched_sigs / batch_flushes).
  std::uint64_t batched_sigs{0};
  std::uint64_t batch_flushes{0};
  std::uint64_t batch_fallback_bisections{0};
  double batch_mean_size{0};
  /// Commit-certificate votes that failed the verify_certificates re-check.
  std::uint64_t cert_vote_failures{0};
  /// Durable mode: batches re-executed from the consensus log at startup,
  /// group commits + compactions of that log, and snapshot traffic.
  std::uint64_t recovered_batches{0};
  std::uint64_t log_commits{0};
  std::uint64_t log_compactions{0};
  std::uint64_t snapshots_served{0};
  std::uint64_t snapshots_installed{0};
  /// Exec-divergence tripwires fired: f+1 peers proved our execution of a
  /// checkpoint interval differed from theirs despite identical ordered
  /// input. Firing once fail-stops the execute stage (see diverged()).
  std::uint64_t exec_divergence{0};
  /// Per-pipeline-stage heap allocations observed by the RT-zone tripwire
  /// (operator-new hook; counts only move in RDB_ALLOC_TRIPWIRE builds)
  /// and the number of loop iterations each stage ran. The steady-state
  /// gate divides one by the other: after warmup, annotated stages must
  /// show zero (or an explicitly budgeted number of) allocations per item.
  std::array<std::uint64_t, rtzone::kStageCount> hot_path_allocs{};
  std::array<std::uint64_t, rtzone::kStageCount> hot_path_items{};
  /// Serialize-once broadcast (DS replica links only): wire frames built
  /// once, and the borrowed-view sends fanned out from them. With N peers,
  /// broadcast_frame_sends ≈ (n-1) × broadcasts_serialized.
  std::uint64_t broadcasts_serialized{0};
  std::uint64_t broadcast_frame_sends{0};
};

class Replica {
 public:
  /// Timer id reserved for the relayed-client-request watchdog (all other
  /// timer ids are batch sequence numbers).
  static constexpr std::uint64_t kClientRequestTimer =
      std::numeric_limits<std::uint64_t>::max();
  /// Timer id for the periodic catch-up poll (self re-arming).
  static constexpr std::uint64_t kCatchupTimer =
      std::numeric_limits<std::uint64_t>::max() - 1;

  Replica(ReplicaConfig config, Transport& transport,
          const crypto::KeyRegistry& registry,
          std::unique_ptr<storage::KvStore> store, ExecuteFn execute);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  void start();
  void stop();

  ReplicaId id() const { return config_.id; }
  ViewId view() const { return view_.load(std::memory_order_acquire); }
  bool is_primary() const {
    return view() % config_.n == config_.id;
  }
  SeqNum last_executed() const {
    return last_executed_pub_.load(std::memory_order_acquire);
  }

  /// Test/benchmark accessor: callers read the chain after stop() (or from
  /// the execute thread's own appends having quiesced), so no lock is taken.
  /// NO_TSA because the body returns a chain_mu_-guarded field by reference.
  const ledger::Blockchain& chain() const RDB_NO_THREAD_SAFETY_ANALYSIS {
    return chain_;
  }
  storage::KvStore& store() { return *store_; }
  ReplicaStats stats() const;

  /// True once the exec-divergence tripwire fail-stopped this replica: f+1
  /// peers voted checkpoints whose chain accumulator matched ours but whose
  /// execution fingerprint did not. The execute stage halts (no further
  /// execution, responses, or checkpoint votes); the process stays up for
  /// forensics. There is deliberately no way to un-diverge a live replica.
  bool diverged() const { return diverged_.load(std::memory_order_acquire); }

  /// Test/drill accessor: execution fingerprint recorded at each checkpoint
  /// boundary (the exec_acc fold carried on our Checkpoint votes). Chaos
  /// drills assert these are byte-identical across replicas. Like chain():
  /// read after stop(), so no lock is taken.
  const std::map<SeqNum, Digest>& exec_fingerprints() const {
    return exec_fingerprints_;
  }

  /// Per-pipeline-thread busy fraction since start() — the live-runtime
  /// counterpart of the paper's Figure 9 saturation plot.
  struct ThreadSaturation {
    std::string thread;
    double percent{0};
  };
  std::vector<ThreadSaturation> thread_saturations() const;

  /// Test hook: drop every message of the given type before processing
  /// (models a byzantine-silent replica for specific phases).
  void drop_messages(protocol::MsgType type, bool drop);

 private:
  struct PendingBatch {
    SeqNum seq{0};
    std::uint64_t txn_begin{0};
    std::vector<protocol::Transaction> txns;
  };

  struct ExecuteSlot {
    Mutex mu{LockRank::kExecuteSlot, "Replica.execute_slot"};
    CondVar cv;
    std::optional<protocol::ExecuteAction> item RDB_GUARDED_BY(mu);
  };

  struct OutboundMsg {
    Endpoint to;
    protocol::Message msg;  // unsigned; the output thread signs per link
    /// Serialize-once fan-out: when set, `to` is ignored and the output
    /// thread signs + serializes ONE wire frame, then sends a borrowed
    /// FrameView to every peer. Only legal on addressee-independent replica
    /// links (DS schemes / kNone) — pairwise MACs need a per-peer tag.
    bool broadcast{false};
  };

  /// A message on its way to the consensus worker. `verified` is true when
  /// a verify-pool thread (or the sender being ourselves) already
  /// authenticated it; the worker verifies inline otherwise.
  struct WorkerItem {
    protocol::Message msg;
    bool verified{false};
  };

  // Busy-time accounting per pipeline thread (Figure 9).
  struct BusyCounter {
    std::string name;
    std::atomic<std::uint64_t> busy_ns{0};
  };
  class ScopedBusy {
   public:
    explicit ScopedBusy(BusyCounter& c)
        : counter_(c), start_(std::chrono::steady_clock::now()) {}
    ~ScopedBusy() {
      auto dt = std::chrono::steady_clock::now() - start_;
      counter_.busy_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                  .count()),
          std::memory_order_relaxed);
    }

   private:
    BusyCounter& counter_;
    std::chrono::steady_clock::time_point start_;
  };
  BusyCounter& add_counter(const std::string& name);

  // Per-stage arm of the RT-zone allocation tripwire (common/rtzone.h).
  // Each pipeline loop iteration constructs one StageScope next to its
  // ScopedBusy: the scope routes the operator-new hook's thread-local
  // counter at a local tally and flushes tally + item count into the
  // replica-wide atomics on destruction. Always compiled in; the tally
  // only moves in RDB_ALLOC_TRIPWIRE builds (rtzone::tripwire_enabled()).
  class StageScope {
   public:
    StageScope(Replica& r, rtzone::Stage stage)
        : r_(r), stage_(stage), scope_(local_) {}
    ~StageScope() {
      auto s = static_cast<std::size_t>(stage_);
      if (local_ > 0)
        r_.stage_allocs_[s].fetch_add(local_, std::memory_order_relaxed);
      r_.stage_items_[s].fetch_add(1, std::memory_order_relaxed);
    }
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

   private:
    Replica& r_;
    rtzone::Stage stage_;
    std::uint64_t local_{0};  // must precede scope_: AllocScope targets it
    rtzone::AllocScope scope_;
  };

  // Thread bodies. The loop bodies (everything after the blocking pop) are
  // consensus hot path: scripts/check_hotpath.py transitively rejects heap
  // allocation, naked blocking and copy amplification below these roots.
  RDB_HOT_PATH
  void input_loop(std::stop_token st, BusyCounter& busy);
  RDB_HOT_PATH
  void batch_loop(std::stop_token st, BusyCounter& busy);
  RDB_HOT_PATH
  void verify_loop(std::stop_token st, BusyCounter& busy);
  RDB_HOT_PATH
  void worker_loop(std::stop_token st, BusyCounter& busy);
  RDB_HOT_PATH
  void execute_loop(std::stop_token st, BusyCounter& busy);
  RDB_HOT_PATH
  void checkpoint_loop(std::stop_token st, BusyCounter& busy);
  RDB_HOT_PATH
  void output_loop(std::stop_token st, std::size_t idx, BusyCounter& busy);
  void timer_loop(std::stop_token st);

  void handle_client_request(protocol::Message msg);
  // --- durable crash recovery + snapshot rejoin ---
  /// Constructor-time recovery from the consensus log: rebuilds chain,
  /// reply cache, engine counters and KV state (idempotent re-puts). Runs
  /// before any thread starts, so no locks are taken.
  void recover_from_log() RDB_NO_THREAD_SAFETY_ANALYSIS;
  /// Execute thread, at a checkpoint boundary: capture the compressed KV
  /// image + chain accumulator that snapshot requests will be served from.
  /// Det-zone root: the image (and its digest, vouched to peers) must be
  /// byte-identical on every replica that executed the same prefix.
  /// HOT BARRIER: runs once per CHECKPOINT BOUNDARY (every
  /// checkpoint_interval batches), and only when enable_snapshots is on —
  /// the config comment prices exactly this walk against throughput.
  RDB_DETERMINISTIC RDB_HOT_BARRIER
  void capture_snapshot(SeqNum seq, ViewId view, const Digest& acc);
  /// Worker thread: serve a peer's SnapshotRequest from the captured image.
  void handle_snapshot_request(const protocol::Message& msg);
  /// Worker thread: tally SnapshotResponses; after f+1 distinct peers vouch
  /// for the same (seq, chain digest, kv digest), verify the blob against
  /// the vouched digest and stash it for the execute thread to install.
  /// HOT BARRIER: snapshot state transfer is the REJOIN path — it runs only
  /// while this replica has already fallen off the live protocol, at most
  /// once per offered image, never per consensus message.
  RDB_HOT_BARRIER
  void handle_snapshot_response(protocol::Message msg);
  /// Execute thread, while stalled: install a verified pending snapshot.
  /// HOT BARRIER: runs only in the idle window where execution is STALLED
  /// waiting for state it cannot obtain from the log — the pipeline has no
  /// queued work this could delay.
  RDB_HOT_BARRIER
  void maybe_install_snapshot();
  /// Execute thread, at a wave boundary: checkpoint the KV store and rewrite
  /// the consensus log above the stable anchor requested by perform().
  /// HOT BARRIER: compaction runs once per STABLE CHECKPOINT (every
  /// checkpoint_interval batches, and only after a group-commit boundary or
  /// an idle window), not per message; its I/O is the retention contract.
  RDB_HOT_BARRIER
  void maybe_compact_log();
  /// Bumps the per-reason reject counter (lock-free; input thread hot path).
  void count_reject(protocol::RejectReason reason) {
    reject_counts_[static_cast<std::size_t>(reason)].fetch_add(
        1, std::memory_order_relaxed);
  }
  /// Pushes a pooled batch into the lock-free input->batch queue, backing
  /// off with bounded exponential sleeps when the queue is full (satellite
  /// replacing the seed's unbounded yield spin). Counts one saturation
  /// episode in ReplicaStats when any backoff was needed.
  /// HOT BARRIER: the backoff is bounded (exponential, 1 ms cap) and fires
  /// only when the batch stage is already saturated — the sleep sheds the
  /// CPU the drain needs, it does not add latency to an unloaded pipeline.
  RDB_HOT_BARRIER
  void push_batch(BufferPool<PendingBatch>::Handle& handle);
  RDB_HOT_PATH
  void perform(protocol::Actions actions);
  RDB_HOT_PATH
  void enqueue_output(Endpoint to, protocol::Message msg);
  RDB_HOT_PATH
  void broadcast(protocol::Message msg);
  /// HOT BARRIER: QC backpressure (§4.6) — the cv wait fires only when the
  /// execute stage is more than execute_queue_slots behind, i.e. the system
  /// is already saturated; blocking the worker here is the flow control.
  RDB_HOT_BARRIER
  void deliver_execute(protocol::ExecuteAction ex);

  ReplicaConfig config_;
  Transport& transport_;
  crypto::CryptoProvider crypto_;
  std::unique_ptr<storage::KvStore> store_;
  ExecuteFn execute_fn_;

  // Engine + chain. Engine state is worker-owned; batch threads take
  // engine_mu_ briefly to emit Pre-prepares. engine_mu_ is the OUTERMOST
  // rank: nothing else may be held when acquiring it.
  Mutex engine_mu_{LockRank::kReplicaEngine, "Replica.engine"};
  protocol::PbftEngine engine_ RDB_GUARDED_BY(engine_mu_);
  Mutex chain_mu_{LockRank::kLedgerChain, "Replica.chain"};
  ledger::Blockchain chain_ RDB_GUARDED_BY(chain_mu_);
  std::atomic<ViewId> view_{0};
  std::atomic<SeqNum> last_executed_pub_{0};
  std::atomic<SeqNum> seq_base_{0};  // sequencing base after a view change

  // Queues between stages. Batches travel as pool handles through the
  // lock-free common queue (§4.3 + §4.8).
  std::shared_ptr<Transport::Inbox> inbox_;
  MpmcQueue<BufferPool<PendingBatch>::Handle> batch_queue_{1024};
  BufferPool<PendingBatch> batch_pool_{256};
  BlockingQueue<WorkerItem> worker_queue_;
  BlockingQueue<protocol::Message> verify_queue_;  // verify-pool inbox
  BlockingQueue<protocol::Message> checkpoint_queue_;
  std::vector<std::unique_ptr<BlockingQueue<OutboundMsg>>> output_queues_;
  std::vector<ExecuteSlot> execute_slots_;
  std::atomic<SeqNum> next_exec_seq_{1};
  // PBFT reply cache (execute-thread-owned): last executed request id and
  // its result per client. A retransmitted request that was already
  // executed must NOT re-execute — it gets the cached reply instead.
  // (unordered is fine here: the cache is keyed lookup only, never
  // range-iterated into anything digest-bound.)
  std::unordered_map<ClientId, std::pair<RequestId, std::uint64_t>>
      reply_cache_;

  // --- execution fingerprint (the runtime half of the determinism
  // discipline; execute-thread-owned) ---
  // Rolling fold over the CURRENT checkpoint interval: per executed batch,
  // SHA256(prev acc || seq || batch digest || executed txn result codes ||
  // state-delta digest). Reset to zero at each boundary after the value is
  // recorded and carried on the Checkpoint vote — interval scoping means a
  // replica that recovered from its log or installed a snapshot at a
  // boundary folds forward exactly like a peer that never restarted.
  Digest exec_acc_{};
  /// Fingerprint at each executed checkpoint boundary (bounded; pruned to
  /// the most recent kExecFingerprintKeep boundaries).
  std::map<SeqNum, Digest> exec_fingerprints_;
  static constexpr std::size_t kExecFingerprintKeep = 64;
  std::atomic<bool> diverged_{false};
  std::atomic<std::uint64_t> exec_divergence_count_{0};

  // --- durable mode (config_.durability.enabled) ---
  // The consensus log and its retention bookkeeping are execute-thread-owned
  // after the (single-threaded) constructor recovery.
  std::unique_ptr<ReplicaLog> rlog_;
  /// Logged batches above the last compaction anchor, oldest first: the tail
  /// the next compaction rewrites after the anchor record.
  std::deque<LoggedBatch> log_tail_;
  /// (view, chain accumulator) at each executed checkpoint boundary — the
  /// anchor candidates compaction and snapshot capture draw from.
  std::map<SeqNum, std::pair<ViewId, Digest>> checkpoint_meta_;
  /// Highest stable checkpoint perform() has asked the execute thread to
  /// compact the log to (0 = none pending). Left set until the boundary has
  /// actually been executed here (stability can outpace local execution).
  std::atomic<SeqNum> compact_request_{0};

  // --- snapshot state transfer (config_.enable_snapshots) ---
  struct SnapshotImage {
    SeqNum seq{0};
    ViewId view{0};
    Digest chain_acc{};
    Digest kv_digest{};  // sha256 of the UNCOMPRESSED canonical image
    std::uint64_t raw_bytes{0};
    Bytes blob;  // LZ-compressed canonical KV image
  };
  /// A verified image awaiting installation, decompressed so the execute
  /// thread doesn't redo that work.
  struct PendingInstall {
    SeqNum seq{0};
    Digest chain_acc{};
    Bytes image;
  };
  mutable Mutex snap_mu_{LockRank::kReplicaSnapshot, "Replica.snapshot"};
  std::optional<SnapshotImage> snap_image_ RDB_GUARDED_BY(snap_mu_);
  std::optional<PendingInstall> pending_install_ RDB_GUARDED_BY(snap_mu_);
  /// Latest SnapshotResponse per sender (worker-thread-owned; bounded by n).
  std::map<ReplicaId, protocol::SnapshotResponse> snap_offers_;

  // Primary-side sequencing (input thread only).
  SeqNum next_seq_{0};
  std::uint64_t next_txn_id_{1};
  std::vector<protocol::Transaction> pending_txns_;

  // Timers (worker-armed, timer-thread fired).
  Mutex timer_mu_{LockRank::kReplicaTimer, "Replica.timer"};
  CondVar timer_cv_;
  std::map<std::uint64_t, std::chrono::steady_clock::time_point> timers_
      RDB_GUARDED_BY(timer_mu_);

  // Message-type drop set (tests).
  std::atomic<std::uint32_t> drop_mask_{0};

  mutable Mutex stats_mu_{LockRank::kReplicaStats, "Replica.stats"};
  ReplicaStats stats_ RDB_GUARDED_BY(stats_mu_);
  std::atomic<std::uint64_t> batch_saturated_{0};
  std::atomic<std::uint64_t> batched_sigs_{0};
  std::atomic<std::uint64_t> batch_flushes_{0};
  std::atomic<std::uint64_t> batch_bisections_{0};
  std::atomic<std::uint64_t> cert_vote_failures_{0};
  std::uint64_t recovered_batches_{0};  // set once during construction
  std::atomic<std::uint64_t> log_commits_{0};
  std::atomic<std::uint64_t> log_compactions_{0};
  std::atomic<std::uint64_t> snapshots_served_{0};
  std::atomic<std::uint64_t> snapshots_installed_{0};
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(protocol::RejectReason::kCount)>
      reject_counts_{};
  // RT-zone tripwire tallies (flushed by StageScope) and serialize-once
  // broadcast accounting.
  std::array<std::atomic<std::uint64_t>, rtzone::kStageCount> stage_allocs_{};
  std::array<std::atomic<std::uint64_t>, rtzone::kStageCount> stage_items_{};
  std::atomic<std::uint64_t> broadcasts_serialized_{0};
  std::atomic<std::uint64_t> broadcast_frame_sends_{0};
  /// True when replica-to-replica links use an addressee-independent scheme
  /// (DS or kNone), making serialize-once broadcast legal. Computed once in
  /// the constructor from config_.schemes.replica_scheme.
  bool ds_replica_links_{false};
  /// Round-robin output-queue pick for broadcast frames. broadcast() runs on
  /// worker AND batch threads, so unlike rr_output_ this must be atomic.
  std::atomic<std::size_t> rr_bcast_{0};

  std::vector<std::unique_ptr<BusyCounter>> busy_counters_;
  std::chrono::steady_clock::time_point started_at_;

  std::vector<std::jthread> threads_;
  std::atomic<bool> running_{false};
  std::size_t rr_output_{0};
};

}  // namespace rdb::runtime
