#include "runtime/client.h"

#include "protocol/validate.h"

namespace rdb::runtime {

using protocol::Message;
using protocol::MsgType;
using protocol::Transaction;

Client::Client(ClientConfig config, Transport& transport,
               const crypto::KeyRegistry& registry)
    : config_(config),
      transport_(transport),
      crypto_(Endpoint::client(config.id), registry, config.schemes),
      inbox_(std::make_shared<Transport::Inbox>()) {
  transport_.register_endpoint(Endpoint::client(config_.id), inbox_);
  // Pre-warm the registry's expanded-key cache for every replica we will
  // verify responses from (decompression + table build once, up front).
  if (config_.schemes.client_scheme == crypto::SignatureScheme::kEd25519) {
    for (std::uint32_t r = 0; r < config_.n; ++r)
      registry.ed25519_expanded(Endpoint::replica(r));
  }
  pump_ = std::jthread([this](std::stop_token st) { pump_loop(st); });
}

Client::~Client() {
  inbox_->shutdown();
  pump_.request_stop();
}

Transaction Client::make_transaction(Bytes payload, std::uint32_t ops) {
  Transaction txn;
  txn.client = config_.id;
  txn.req_id = ++next_req_;
  txn.ops = ops;
  txn.payload = std::move(payload);
  Bytes canon = txn.signing_bytes();
  // Clients must digitally sign their requests: the primary forwards them
  // inside Pre-prepares, so non-repudiation is required (§6).
  txn.client_sig = crypto_.sign(Endpoint::replica(0), BytesView(canon));
  return txn;
}

void Client::pump_loop(std::stop_token st) {
  // A client only ever expects ClientResponse frames; the accept mask turns
  // everything else — including well-formed protocol traffic aimed at
  // replicas — into a counted reject before any field is read.
  protocol::ValidationContext vctx;
  vctx.n = config_.n;
  vctx.accept_mask = protocol::accept_bit(MsgType::kClientResponse);
  while (!st.stop_requested()) {
    auto wire = inbox_->pop();
    if (!wire) return;
    vctx.current_view = view_.load(std::memory_order_relaxed);
    auto verdict = protocol::validate_wire(BytesView(*wire), vctx);
    if (!verdict.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Message msg = std::move(*verdict.msg).release();

    // Responses are MAC'd on the replica->client link; verify before use.
    Bytes canon = msg.signing_bytes();
    if (!crypto_.verify(msg.from, BytesView(canon), BytesView(msg.signature)))
      continue;

    const auto& resp = std::get<protocol::ClientResponse>(msg.payload);
    if (resp.client != config_.id) continue;
    view_.store(resp.view, std::memory_order_relaxed);

    MutexLock lock(mu_);
    auto& votes = pending_.votes[resp.req_id];
    votes[msg.from.id] = resp.result;
    // f+1 matching results from distinct replicas decide the request.
    std::map<std::uint64_t, std::uint32_t> tally;
    for (const auto& [replica, result] : votes) ++tally[result];
    for (const auto& [result, count] : tally) {
      if (count >= f() + 1) {
        pending_.decided[resp.req_id] = result;
        cv_.notify_all();
        break;
      }
    }
  }
}

ClientStats Client::stats() const {
  ClientStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.broadcasts = broadcasts_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

bool Client::all_decided(const std::vector<RequestId>& ids) const {
  for (RequestId id : ids)
    if (!pending_.decided.contains(id)) return false;
  return true;
}

void Client::send_signed(ReplicaId target, Message& msg) {
  // Requests are MAC'd per client->replica link on top of the per-
  // transaction digital signatures.
  Bytes canon = msg.signing_bytes();
  msg.signature = crypto_.sign(Endpoint::replica(target), BytesView(canon));
  transport_.send(Endpoint::replica(target), msg);
}

std::optional<std::vector<std::uint64_t>> Client::submit_and_wait(
    std::vector<Transaction> txns) {
  protocol::ClientRequest req;
  req.txns = txns;
  Message msg;
  msg.from = Endpoint::client(config_.id);
  msg.payload = std::move(req);
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::vector<RequestId> ids;
  ids.reserve(txns.size());
  for (const auto& t : txns) ids.push_back(t.req_id);

  for (std::uint32_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    ViewId believed = view_.load(std::memory_order_relaxed);
    if (attempt >= config_.broadcast_after) {
      // PBFT liveness: after repeated timeouts, send to EVERY replica.
      // Backups relay to the primary and arm view-change timers, so even a
      // crashed/byzantine-silent primary cannot stall the request forever.
      broadcasts_.fetch_add(1, std::memory_order_relaxed);
      for (ReplicaId r = 0; r < config_.n; ++r) send_signed(r, msg);
    } else {
      // First try the primary of the view we last heard about; early
      // retries rotate through the full replica ring (not just successor
      // views) so a stale view estimate still reaches a live replica.
      ReplicaId target =
          static_cast<ReplicaId>((believed + attempt) % config_.n);
      send_signed(target, msg);
    }

    MutexLock lock(mu_);
    // Explicit deadline loop (no predicate lambda: the predicate touches
    // guarded state, which would defeat the thread-safety analysis).
    auto deadline = std::chrono::steady_clock::now() + config_.request_timeout;
    while (!all_decided(ids) && std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(mu_, deadline);
    }
    if (all_decided(ids)) {
      std::vector<std::uint64_t> results;
      results.reserve(ids.size());
      for (RequestId id : ids) {
        results.push_back(pending_.decided[id]);
        pending_.decided.erase(id);
        pending_.votes.erase(id);
      }
      return results;
    }
  }
  timeouts_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

}  // namespace rdb::runtime
