// Durable consensus log for the threaded replica.
//
// Built on the checksummed group-commit WAL (storage/wal.h). Two record
// kinds, both serialized with common/serde.h:
//
//   anchor  {seq, view, chain accumulator}
//       "history up to `seq` is summarized by this accumulator" — written
//       as the FIRST record of every compacted log. Batches below the
//       anchor were absorbed into the KV store's own durable checkpoint.
//   batch   {seq, view, digest, txn_begin, txns, commit certificate}
//       one executed batch; contiguous from anchor.seq + 1.
//
// The execute thread owns the log end to end: it appends a batch record per
// executed batch, group-commits once per execution wave (ONE fsync no matter
// how many batches the wave held), and compacts at stable checkpoints by
// writing <path>.tmp and atomically renaming over the live log — a crash
// mid-compaction leaves the old log intact.
//
// recover() replays the WAL (torn tail truncated by the Wal layer) and
// returns the anchor plus the contiguous batch tail; the replica re-executes
// the tail against its recovered KV store (idempotent re-puts) and seeds the
// consensus engine from the result.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rtzone.h"
#include "ledger/block.h"
#include "protocol/messages.h"
#include "storage/wal.h"

namespace rdb::runtime {

struct ReplicaLogConfig {
  std::string path;
  storage::Env* env{nullptr};  // nullptr = Env::real()
  bool sync{true};             // fsync per group commit
};

/// One executed batch as logged (and as needed to rebuild the block).
struct LoggedBatch {
  SeqNum seq{0};
  ViewId view{0};
  Digest digest{};
  std::uint64_t txn_begin{0};
  std::vector<protocol::Transaction> txns;
  std::vector<ledger::CommitVote> certificate;
};

struct RecoveredLog {
  bool has_anchor{false};
  SeqNum anchor_seq{0};
  ViewId anchor_view{0};
  Digest anchor_acc{};
  /// Contiguous from anchor_seq + 1 (gaps mark the end of usable history).
  std::vector<LoggedBatch> batches;
  bool tail_truncated{false};
  std::uint64_t dropped_records{0};  // malformed/non-contiguous, not adopted
};

struct ReplicaLogStats {
  std::uint64_t batches_appended{0};
  std::uint64_t commits{0};
  std::uint64_t compactions{0};
};

class ReplicaLog {
 public:
  explicit ReplicaLog(ReplicaLogConfig config);

  ReplicaLog(const ReplicaLog&) = delete;
  ReplicaLog& operator=(const ReplicaLog&) = delete;

  /// Replays the on-disk log. Call exactly once, before the first append.
  RecoveredLog recover();

  /// Buffers one executed batch. Durable only after commit().
  void append_batch(const LoggedBatch& batch);

  /// Group commit: one write + one fsync for every buffered batch.
  /// Fail-stop (StorageError) if the write or fsync fails.
  ///
  /// HOT BARRIER: the one fsync per execution WAVE is the durability design
  /// itself — client responses are withheld until the wave is durable, and
  /// group commit amortizes the sync over every batch in the wave.
  RDB_HOT_BARRIER
  void commit();

  /// Rewrites the log as [anchor][tail...] via <path>.tmp + atomic rename.
  /// The caller guarantees the KV store's durable checkpoint already covers
  /// everything at or below the anchor.
  void compact(SeqNum anchor_seq, ViewId anchor_view, const Digest& anchor_acc,
               const std::vector<LoggedBatch>& tail);

  bool failed() const { return wal_ && wal_->failed(); }
  const ReplicaLogStats& stats() const { return stats_; }

 private:
  storage::Env& env();

  ReplicaLogConfig config_;
  std::unique_ptr<storage::Wal> wal_;
  ReplicaLogStats stats_{};
};

}  // namespace rdb::runtime
