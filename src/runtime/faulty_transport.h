// FaultyTransport: a seeded, deterministic fault-injecting decorator around
// any Transport (in-process or TCP). The chaos layer for recovery drills.
//
// Every message that passes through send() is subjected to a per-link
// FaultPlan: drop / duplicate / reorder (selective holdback) / corruption of
// the authentication tag / fixed+jittered delay, plus structural faults —
// directed partitions and crash-stop of whole endpoints. All probabilistic
// decisions are drawn from a per-link PRNG seeded from (plan seed, src, dst),
// so the *decision trace* for a given per-link send sequence is a pure
// function of the seed: same seed => identical fault trace (see
// trace_hash()). Delivery of delayed/reordered messages rides a background
// timer thread, so wall-clock interleaving across links is not deterministic
// — but which messages were dropped/duplicated/corrupted is.
//
// Corruption note: the decorator operates above serialization, so in-flight
// bit flips are modelled by flipping a bit of the message's signature/MAC.
// For any authenticated message this is observably equivalent to corrupting
// the wire bytes: the receiver parses the frame and rejects it at
// verification (counted in the replica's invalid_signatures stat).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "common/sync.h"
#include "runtime/transport_iface.h"

namespace rdb::runtime {

/// Per-link fault probabilities and delays. All probabilities in [0, 1].
struct LinkFaults {
  double drop{0};       // lose the message entirely
  double duplicate{0};  // deliver twice (second copy slightly later)
  double reorder{0};    // hold the message back so later sends overtake it
  double corrupt{0};    // flip a signature bit (rejected at verification)
  /// Structural corruption: serialize the frame and splice a wirefuzz
  /// mutation into the BYTES — truncation, length lie, type/kind confusion,
  /// bit flips, trailing garbage — then deliver via Transport::send_raw.
  /// Unlike `corrupt` (which only taints the signature and is caught at
  /// verification), a structural mutant attacks the parse+validate door
  /// itself; receivers must reject it with a named RejectReason. Chaos
  /// drills assert the cluster survives a storm of these with zero state
  /// divergence (tests/chaos_test.cpp).
  double structural{0};
  TimeNs delay_ns{0};        // fixed delivery delay
  TimeNs jitter_ns{0};       // uniform extra delay in [0, jitter_ns)
};

/// A chaos scenario: the seed plus default faults applied to every link.
/// Individual links can be overridden at runtime via set_link_faults().
struct FaultPlan {
  std::uint64_t seed{42};
  LinkFaults default_faults{};
  /// Holdback applied to reordered messages (later sends overtake them).
  TimeNs reorder_holdback_ns{10'000'000};  // 10 ms
  /// Extra delay for the second copy of a duplicated message.
  TimeNs duplicate_lag_ns{5'000'000};  // 5 ms
};

class FaultyTransport final : public Transport {
 public:
  /// Wraps `inner`; `inner` must outlive this decorator.
  FaultyTransport(Transport& inner, FaultPlan plan);
  ~FaultyTransport() override;

  FaultyTransport(const FaultyTransport&) = delete;
  FaultyTransport& operator=(const FaultyTransport&) = delete;

  // --- Transport interface (decorated) ---
  void register_endpoint(Endpoint ep, std::shared_ptr<Inbox> inbox) override;
  void send(Endpoint to, const protocol::Message& msg) override;
  /// Raw frames pass straight to the inner transport (still honouring
  /// crash/partition state); the decorator's own structural mode is the
  /// intended producer of raw frames, so no second mutation is applied.
  void send_raw(Endpoint to, Bytes wire) override;
  /// Borrowed frames get the FULL per-link fault machinery (drop/duplicate/
  /// reorder/delay/corrupt/structural), applied at the byte level: the frame
  /// is not re-parsed, so `corrupt` flips a bit of the LAST byte — wire
  /// frames end with the signature/MAC, making this observably the same as
  /// send()'s signature flip — and `structural` splices a wirefuzz mutation
  /// into a copy. The clean no-fault path forwards the borrow zero-copy.
  void send_frame(Endpoint from, Endpoint to, FrameView frame) override;

  // --- scripted structural faults ---
  /// Cuts the (a, b) link in BOTH directions until heal()/heal(a, b).
  void partition(Endpoint a, Endpoint b);
  /// Cuts only a -> b (directed partition; b -> a still flows).
  void partition_one_way(Endpoint from, Endpoint to);
  /// Heals one pair (both directions).
  void heal(Endpoint a, Endpoint b);
  /// Heals every partition.
  void heal();
  /// Partitions `ep` from every other endpoint (both directions).
  void isolate(Endpoint ep);
  /// Crash-stop: all traffic to and from `ep` is dropped until restart().
  void crash(Endpoint ep);
  void restart(Endpoint ep);
  bool is_crashed(Endpoint ep) const;

  // --- dynamic fault plan ---
  void set_default_faults(LinkFaults faults);
  /// Directed per-link override (from -> to).
  void set_link_faults(Endpoint from, Endpoint to, LinkFaults faults);
  /// Drops all per-link overrides and zeroes the default faults (structural
  /// partitions/crashes are NOT affected — use heal()/restart()).
  void clear_faults();

  // --- observability ---
  struct Counters {
    std::uint64_t forwarded{0};     // handed to the inner transport
    std::uint64_t dropped{0};       // lost to the drop probability
    std::uint64_t duplicated{0};    // extra copies injected
    std::uint64_t reordered{0};     // held back so later sends overtake
    std::uint64_t corrupted{0};     // signature-bit flips injected
    std::uint64_t structural{0};    // wirefuzz byte-level mutations injected
    std::uint64_t delayed{0};       // deliveries routed via the timer thread
    std::uint64_t partition_drops{0};
    std::uint64_t crash_drops{0};
  };
  Counters counters() const;
  /// FNV-1a hash over the ordered (src, dst, decision) fault trace. Two runs
  /// with the same seed and the same per-link send sequences produce the
  /// same hash; a different seed (almost surely) produces a different one.
  std::uint64_t trace_hash() const;
  /// Messages currently sitting in the delay/holdback queue.
  std::size_t pending_delayed() const;

  /// Stops the timer thread; pending delayed messages are discarded. Called
  /// by the destructor; safe to call repeatedly. After stop() every send is
  /// dropped.
  void stop();

  Transport& inner() { return inner_; }

 private:
  struct LinkState {
    Rng rng;
    bool has_override{false};
    LinkFaults faults{};
    explicit LinkState(std::uint64_t seed) : rng(seed) {}
  };
  struct Delayed {
    std::chrono::steady_clock::time_point at;
    std::uint64_t order;  // tiebreak: FIFO among equal deadlines
    Endpoint to;
    Endpoint from;  // for structural-fault delivery-time checks
    protocol::Message msg;
    /// Engaged for structurally corrupted frames: delivered via send_raw
    /// (mutated bytes cannot round-trip through a typed Message).
    std::optional<Bytes> raw;
    bool operator>(const Delayed& o) const {
      return at != o.at ? at > o.at : order > o.order;
    }
  };

  static std::uint64_t key(Endpoint ep) {
    return (static_cast<std::uint64_t>(ep.kind == Endpoint::Kind::kClient)
            << 32) |
           ep.id;
  }
  static std::uint64_t link_key_seed(std::uint64_t seed, Endpoint from,
                                     Endpoint to);

  LinkState& link(Endpoint from, Endpoint to) RDB_REQUIRES(mu_);
  // Decision words are 16-bit: the original eight decision bits plus
  // kStructural (1u << 8).
  void note(Endpoint from, Endpoint to, std::uint16_t decision)
      RDB_REQUIRES(mu_);
  void enqueue_delayed(std::chrono::steady_clock::time_point at, Endpoint to,
                       Endpoint from, protocol::Message msg,
                       std::optional<Bytes> raw) RDB_EXCLUDES(delay_mu_);
  void timer_loop(std::stop_token st);

  Transport& inner_;

  // Fault-plan lock. Never held while calling into inner_ (decisions are
  // drawn under mu_, deliveries happen after release). The timer thread
  // takes it only AFTER dropping delay_mu_, so the two never nest.
  mutable Mutex mu_{LockRank::kChaos, "FaultyTransport"};
  FaultPlan plan_ RDB_GUARDED_BY(mu_);
  std::map<std::pair<std::uint64_t, std::uint64_t>, LinkState> links_
      RDB_GUARDED_BY(mu_);
  std::set<std::pair<std::uint64_t, std::uint64_t>> partitioned_
      RDB_GUARDED_BY(mu_);
  std::set<std::uint64_t> crashed_ RDB_GUARDED_BY(mu_);
  std::set<std::uint64_t> known_ RDB_GUARDED_BY(mu_);  // for isolate()
  Counters counters_ RDB_GUARDED_BY(mu_);
  std::uint64_t trace_hash_ RDB_GUARDED_BY(mu_) =
      1469598103934665603ULL;  // FNV-1a offset basis

  mutable Mutex delay_mu_{LockRank::kChaosDelay, "FaultyTransport.delay"};
  CondVar delay_cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>> delayed_
      RDB_GUARDED_BY(delay_mu_);
  std::uint64_t delay_order_ RDB_GUARDED_BY(delay_mu_) = 0;

  std::atomic<bool> stopped_{false};
  std::jthread timer_;
};

}  // namespace rdb::runtime
