#include "runtime/cluster.h"

#include <thread>

#include "storage/mem_store.h"

namespace rdb::runtime {

LocalCluster::LocalCluster(ClusterConfig config)
    : config_(std::move(config)), registry_(config_.key_seed) {
  if (config_.enable_chaos)
    chaos_ = std::make_unique<FaultyTransport>(transport_, config_.fault_plan);
  for (ReplicaId r = 0; r < config_.replicas; ++r) {
    ReplicaConfig rc;
    rc.n = config_.replicas;
    rc.id = r;
    rc.batch_threads = config_.batch_threads;
    rc.output_threads = config_.output_threads;
    rc.verify_threads = config_.verify_threads;
    rc.verify_batch_size = config_.verify_batch_size;
    rc.verify_batch_wait_ns = config_.verify_batch_wait_ns;
    rc.verify_certificates = config_.verify_certificates;
    rc.batch_size = config_.batch_size;
    rc.checkpoint_interval = config_.checkpoint_interval;
    rc.request_timeout_ns = config_.request_timeout_ns;
    rc.catchup_poll_ns = config_.catchup_poll_ns;
    rc.schemes = config_.schemes;

    auto store = config_.make_store
                     ? config_.make_store(r)
                     : std::make_unique<storage::MemStore>();
    ExecuteFn exec = config_.execute;
    if (!exec) {
      exec = [](const protocol::Transaction&, storage::KvStore&) {
        return std::uint64_t{0};
      };
    }
    replicas_.push_back(std::make_unique<Replica>(
        rc, wire(), registry_, std::move(store), std::move(exec)));
  }
}

LocalCluster::~LocalCluster() { stop(); }

void LocalCluster::start() {
  for (auto& r : replicas_) r->start();
}

void LocalCluster::stop() {
  for (auto& r : replicas_) r->stop();
  // Stop the chaos timer thread after the replicas: a delayed message must
  // never be delivered into a destroyed inbox, and replicas share inboxes
  // with the transport via shared_ptr, so ordering here is about quiescence,
  // not lifetime. Stopping chaos last also drains scripted faults cleanly
  // even when stop() races an active partition (see chaos_test).
  if (chaos_) chaos_->stop();
}

std::unique_ptr<Client> LocalCluster::make_client(ClientId id) {
  ClientConfig cc;
  cc.id = id;
  cc.n = config_.replicas;
  cc.schemes = config_.schemes;
  cc.request_timeout = config_.client_timeout;
  cc.max_retries = config_.client_max_retries;
  cc.broadcast_after = config_.client_broadcast_after;
  return std::make_unique<Client>(cc, wire(), registry_);
}

bool LocalCluster::wait_for_execution(SeqNum seq,
                                      std::chrono::milliseconds timeout,
                                      const std::vector<ReplicaId>& skip) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all = true;
    for (ReplicaId r = 0; r < config_.replicas; ++r) {
      if (std::find(skip.begin(), skip.end(), r) != skip.end()) continue;
      if (replicas_[r]->last_executed() < seq) {
        all = false;
        break;
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace rdb::runtime
