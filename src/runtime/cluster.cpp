#include "runtime/cluster.h"

#include <thread>

#include "storage/env.h"
#include "storage/mem_store.h"
#include "storage/page_db.h"

namespace rdb::runtime {

LocalCluster::LocalCluster(ClusterConfig config)
    : config_(std::move(config)), registry_(config_.key_seed) {
  if (config_.enable_chaos)
    chaos_ = std::make_unique<FaultyTransport>(transport_, config_.fault_plan);
  for (ReplicaId r = 0; r < config_.replicas; ++r)
    replicas_.push_back(make_replica(r));
}

std::unique_ptr<Replica> LocalCluster::make_replica(ReplicaId r) {
  ReplicaConfig rc;
  rc.n = config_.replicas;
  rc.id = r;
  rc.batch_threads = config_.batch_threads;
  rc.output_threads = config_.output_threads;
  rc.verify_threads = config_.verify_threads;
  rc.verify_batch_size = config_.verify_batch_size;
  rc.verify_batch_wait_ns = config_.verify_batch_wait_ns;
  rc.verify_certificates = config_.verify_certificates;
  rc.batch_size = config_.batch_size;
  rc.checkpoint_interval = config_.checkpoint_interval;
  rc.request_timeout_ns = config_.request_timeout_ns;
  rc.catchup_poll_ns = config_.catchup_poll_ns;
  rc.schemes = config_.schemes;
  rc.enable_snapshots = config_.enable_snapshots;
  for (ReplicaId p : config_.perturb_exec_replicas)
    if (p == r) rc.test_perturb_exec = true;

  std::string dir;
  if (config_.durable) {
    dir = config_.data_dir + "/r" + std::to_string(r);
    rc.durability.enabled = true;
    rc.durability.dir = dir;
    rc.durability.sync = config_.durable_sync;
    rc.durability.env = config_.storage_env;
  }

  std::unique_ptr<storage::KvStore> store;
  if (config_.make_store) {
    store = config_.make_store(r);
  } else if (config_.durable) {
    storage::Env& env = config_.storage_env ? *config_.storage_env
                                            : storage::Env::real();
    env.make_dirs(dir);
    storage::PageDbConfig pc;
    pc.path = dir + "/kv.pagedb";
    pc.env = config_.storage_env;
    // The replica's group commit calls commit_wave(); per-put sync would
    // fsync twice per wave for nothing.
    pc.sync_wal = false;
    store = std::make_unique<storage::PageDb>(pc);
  } else {
    store = std::make_unique<storage::MemStore>();
  }
  ExecuteFn exec = config_.execute;
  if (!exec) {
    exec = [](const protocol::Transaction&, storage::KvStore&) {
      return std::uint64_t{0};
    };
  }
  return std::make_unique<Replica>(rc, wire(), registry_, std::move(store),
                                   std::move(exec));
}

LocalCluster::~LocalCluster() { stop(); }

void LocalCluster::start() {
  for (auto& r : replicas_)
    if (r) r->start();
}

void LocalCluster::kill_replica(ReplicaId id) {
  if (!replicas_[id]) return;
  replicas_[id]->stop();
  replicas_[id].reset();  // all in-memory state dies here
}

void LocalCluster::restart_replica(ReplicaId id) {
  if (replicas_[id]) return;
  replicas_[id] = make_replica(id);
  replicas_[id]->start();
}

void LocalCluster::stop() {
  for (auto& r : replicas_)
    if (r) r->stop();
  // Stop the chaos timer thread after the replicas: a delayed message must
  // never be delivered into a destroyed inbox, and replicas share inboxes
  // with the transport via shared_ptr, so ordering here is about quiescence,
  // not lifetime. Stopping chaos last also drains scripted faults cleanly
  // even when stop() races an active partition (see chaos_test).
  if (chaos_) chaos_->stop();
}

std::unique_ptr<Client> LocalCluster::make_client(ClientId id) {
  ClientConfig cc;
  cc.id = id;
  cc.n = config_.replicas;
  cc.schemes = config_.schemes;
  cc.request_timeout = config_.client_timeout;
  cc.max_retries = config_.client_max_retries;
  cc.broadcast_after = config_.client_broadcast_after;
  return std::make_unique<Client>(cc, wire(), registry_);
}

bool LocalCluster::wait_for_execution(SeqNum seq,
                                      std::chrono::milliseconds timeout,
                                      const std::vector<ReplicaId>& skip) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all = true;
    for (ReplicaId r = 0; r < config_.replicas; ++r) {
      if (std::find(skip.begin(), skip.end(), r) != skip.end()) continue;
      if (!replicas_[r]) continue;  // killed: not expected to make progress
      if (replicas_[r]->last_executed() < seq) {
        all = false;
        break;
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace rdb::runtime
