#include "runtime/faulty_transport.h"

#include <chrono>

#include "protocol/wirefuzz.h"

namespace rdb::runtime {

namespace {

// Decision bits folded into the fault trace. One word per send (plus one
// per injected duplicate), hashed in send order per link.
constexpr std::uint16_t kForward = 1u << 0;
constexpr std::uint16_t kDrop = 1u << 1;
constexpr std::uint16_t kCorrupt = 1u << 2;
constexpr std::uint16_t kDuplicate = 1u << 3;
constexpr std::uint16_t kReorder = 1u << 4;
constexpr std::uint16_t kDelay = 1u << 5;
constexpr std::uint16_t kPartitionDrop = 1u << 6;
constexpr std::uint16_t kCrashDrop = 1u << 7;
constexpr std::uint16_t kStructural = 1u << 8;

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

}  // namespace

FaultyTransport::FaultyTransport(Transport& inner, FaultPlan plan)
    : inner_(inner), plan_(plan) {
  timer_ = std::jthread([this](std::stop_token st) { timer_loop(st); });
}

FaultyTransport::~FaultyTransport() { stop(); }

void FaultyTransport::stop() {
  if (stopped_.exchange(true)) return;
  timer_.request_stop();
  delay_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  MutexLock lock(delay_mu_);
  while (!delayed_.empty()) delayed_.pop();
}

void FaultyTransport::register_endpoint(Endpoint ep,
                                        std::shared_ptr<Inbox> inbox) {
  {
    MutexLock lock(mu_);
    known_.insert(key(ep));
  }
  inner_.register_endpoint(ep, std::move(inbox));
}

void FaultyTransport::send_raw(Endpoint to, Bytes wire) {
  if (stopped_.load(std::memory_order_relaxed)) return;
  {
    MutexLock lock(mu_);
    if (crashed_.contains(key(to))) {
      ++counters_.crash_drops;
      return;
    }
  }
  inner_.send_raw(to, std::move(wire));
}

std::uint64_t FaultyTransport::link_key_seed(std::uint64_t seed, Endpoint from,
                                             Endpoint to) {
  // Mix (seed, from, to) through SplitMix so adjacent links decorrelate.
  std::uint64_t s = seed;
  s ^= splitmix64(s) ^ (key(from) * 0x9E3779B97F4A7C15ULL);
  s ^= splitmix64(s) ^ (key(to) * 0xBF58476D1CE4E5B9ULL);
  return splitmix64(s);
}

FaultyTransport::LinkState& FaultyTransport::link(Endpoint from, Endpoint to) {
  auto k = std::make_pair(key(from), key(to));
  auto it = links_.find(k);
  if (it == links_.end()) {
    it = links_
             .emplace(k, LinkState(link_key_seed(plan_.seed, from, to)))
             .first;
  }
  return it->second;
}

void FaultyTransport::note(Endpoint from, Endpoint to,
                           std::uint16_t decision) {
  auto mix = [&](std::uint64_t v) {
    trace_hash_ = (trace_hash_ ^ v) * kFnvPrime;
  };
  mix(key(from));
  mix(key(to));
  mix(decision);
}

// --- structural faults -----------------------------------------------------

void FaultyTransport::partition(Endpoint a, Endpoint b) {
  MutexLock lock(mu_);
  partitioned_.insert({key(a), key(b)});
  partitioned_.insert({key(b), key(a)});
}

void FaultyTransport::partition_one_way(Endpoint from, Endpoint to) {
  MutexLock lock(mu_);
  partitioned_.insert({key(from), key(to)});
}

void FaultyTransport::heal(Endpoint a, Endpoint b) {
  MutexLock lock(mu_);
  partitioned_.erase({key(a), key(b)});
  partitioned_.erase({key(b), key(a)});
}

void FaultyTransport::heal() {
  MutexLock lock(mu_);
  partitioned_.clear();
}

void FaultyTransport::isolate(Endpoint ep) {
  MutexLock lock(mu_);
  std::uint64_t k = key(ep);
  known_.insert(k);
  for (std::uint64_t other : known_) {
    if (other == k) continue;
    partitioned_.insert({k, other});
    partitioned_.insert({other, k});
  }
}

void FaultyTransport::crash(Endpoint ep) {
  MutexLock lock(mu_);
  crashed_.insert(key(ep));
}

void FaultyTransport::restart(Endpoint ep) {
  MutexLock lock(mu_);
  crashed_.erase(key(ep));
}

bool FaultyTransport::is_crashed(Endpoint ep) const {
  MutexLock lock(mu_);
  return crashed_.contains(key(ep));
}

// --- dynamic plan ----------------------------------------------------------

void FaultyTransport::set_default_faults(LinkFaults faults) {
  MutexLock lock(mu_);
  plan_.default_faults = faults;
}

void FaultyTransport::set_link_faults(Endpoint from, Endpoint to,
                                      LinkFaults faults) {
  MutexLock lock(mu_);
  LinkState& st = link(from, to);
  st.has_override = true;
  st.faults = faults;
}

void FaultyTransport::clear_faults() {
  MutexLock lock(mu_);
  plan_.default_faults = LinkFaults{};
  for (auto& [k, st] : links_) {
    st.has_override = false;
    st.faults = LinkFaults{};
  }
}

// --- observability ---------------------------------------------------------

FaultyTransport::Counters FaultyTransport::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

std::uint64_t FaultyTransport::trace_hash() const {
  MutexLock lock(mu_);
  return trace_hash_;
}

std::size_t FaultyTransport::pending_delayed() const {
  MutexLock lock(delay_mu_);
  return delayed_.size();
}

// --- the decorated send ----------------------------------------------------

void FaultyTransport::send(Endpoint to, const protocol::Message& msg) {
  if (stopped_.load(std::memory_order_relaxed)) return;
  const Endpoint from = msg.from;

  // Decisions are drawn under mu_ from the per-link PRNG; the actual inner
  // sends happen after the lock is released.
  bool deliver = false;
  bool duplicate = false;
  std::optional<protocol::Message> mutated;  // corrupted copy, if any
  std::optional<Bytes> raw;                  // structurally mutated bytes
  TimeNs primary_delay = 0;                  // 0 = deliver inline
  TimeNs duplicate_delay = 0;
  {
    MutexLock lock(mu_);
    known_.insert(key(from));
    known_.insert(key(to));

    if (crashed_.contains(key(from)) || crashed_.contains(key(to))) {
      ++counters_.crash_drops;
      note(from, to, kCrashDrop);
      return;
    }
    if (partitioned_.contains({key(from), key(to)})) {
      ++counters_.partition_drops;
      note(from, to, kPartitionDrop);
      return;
    }

    LinkState& st = link(from, to);
    const LinkFaults& f =
        st.has_override ? st.faults : plan_.default_faults;

    std::uint16_t decision = 0;
    if (f.drop > 0 && st.rng.chance(f.drop)) {
      ++counters_.dropped;
      note(from, to, kDrop);
      return;
    }
    deliver = true;
    decision |= kForward;

    if (f.corrupt > 0 && st.rng.chance(f.corrupt)) {
      decision |= kCorrupt;
      ++counters_.corrupted;
      mutated = msg;
      if (mutated->signature.empty()) {
        mutated->signature.push_back(0xFF);
      } else {
        std::uint64_t bit =
            st.rng.below(mutated->signature.size() * 8);
        mutated->signature[bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
    if (f.structural > 0 && st.rng.chance(f.structural)) {
      // Byte-level byzantine corruption: serialize (the possibly signature-
      // corrupted copy) and splice a structure-aware wirefuzz mutation into
      // the frame. The receiver's validate_wire door must reject it with a
      // named reason — exactly what the malformed-storm chaos drill asserts.
      decision |= kStructural;
      ++counters_.structural;
      raw = (mutated ? *mutated : msg).serialize();
      // Skip kNone (0); draw from the real mutation classes.
      auto mut = static_cast<protocol::wirefuzz::Mutation>(
          1 + st.rng.below(
                  static_cast<std::uint64_t>(
                      protocol::wirefuzz::Mutation::kCount) -
                  1));
      protocol::wirefuzz::mutate(*raw, st.rng, mut);
    }
    if (f.duplicate > 0 && st.rng.chance(f.duplicate)) {
      decision |= kDuplicate;
      ++counters_.duplicated;
      duplicate = true;
    }

    TimeNs base_delay = f.delay_ns;
    if (f.jitter_ns > 0) base_delay += st.rng.below(f.jitter_ns);
    if (f.reorder > 0 && st.rng.chance(f.reorder)) {
      decision |= kReorder;
      ++counters_.reordered;
      base_delay += plan_.reorder_holdback_ns;
    }
    primary_delay = base_delay;
    if (primary_delay > 0) {
      decision |= kDelay;
      ++counters_.delayed;
    }
    duplicate_delay = base_delay + plan_.duplicate_lag_ns;

    ++counters_.forwarded;
    if (duplicate) ++counters_.forwarded;
    note(from, to, decision);
  }

  if (!deliver) return;
  const protocol::Message& out = mutated ? *mutated : msg;
  auto now = std::chrono::steady_clock::now();
  // Enqueue the (later) duplicate first so the primary copy may move `raw`.
  if (duplicate) {
    enqueue_delayed(now + std::chrono::nanoseconds(duplicate_delay), to, from,
                    out, raw);
  }
  if (primary_delay > 0) {
    enqueue_delayed(now + std::chrono::nanoseconds(primary_delay), to, from,
                    out, std::move(raw));
  } else if (raw) {
    inner_.send_raw(to, std::move(*raw));
  } else {
    inner_.send(to, out);
  }
}

void FaultyTransport::send_frame(Endpoint from, Endpoint to, FrameView frame) {
  if (stopped_.load(std::memory_order_relaxed)) return;

  // Mirrors send(): decisions under mu_ in the same draw order (so the
  // fault trace stays a pure function of the seed and per-link sequence),
  // delivery after release. Faulted copies ride the raw-bytes path; the
  // clean inline case forwards the borrow without copying.
  bool deliver = false;
  bool duplicate = false;
  std::optional<Bytes> mutated;  // corrupted / structurally mutated copy
  TimeNs primary_delay = 0;
  TimeNs duplicate_delay = 0;
  {
    MutexLock lock(mu_);
    known_.insert(key(from));
    known_.insert(key(to));

    if (crashed_.contains(key(from)) || crashed_.contains(key(to))) {
      ++counters_.crash_drops;
      note(from, to, kCrashDrop);
      return;
    }
    if (partitioned_.contains({key(from), key(to)})) {
      ++counters_.partition_drops;
      note(from, to, kPartitionDrop);
      return;
    }

    LinkState& st = link(from, to);
    const LinkFaults& f = st.has_override ? st.faults : plan_.default_faults;

    std::uint16_t decision = 0;
    if (f.drop > 0 && st.rng.chance(f.drop)) {
      ++counters_.dropped;
      note(from, to, kDrop);
      return;
    }
    deliver = true;
    decision |= kForward;

    if (f.corrupt > 0 && st.rng.chance(f.corrupt)) {
      decision |= kCorrupt;
      ++counters_.corrupted;
      mutated = frame.to_bytes();
      if (mutated->empty()) {
        mutated->push_back(0xFF);
      } else {
        // Serialized messages end with the signature/MAC bytes, so a flip
        // in the last byte lands in the tag: rejected at verification, the
        // same observable as send()'s signature-bit flip.
        mutated->back() ^= static_cast<std::uint8_t>(1u << st.rng.below(8));
      }
    }
    if (f.structural > 0 && st.rng.chance(f.structural)) {
      decision |= kStructural;
      ++counters_.structural;
      if (!mutated) mutated = frame.to_bytes();
      auto mut = static_cast<protocol::wirefuzz::Mutation>(
          1 + st.rng.below(
                  static_cast<std::uint64_t>(
                      protocol::wirefuzz::Mutation::kCount) -
                  1));
      protocol::wirefuzz::mutate(*mutated, st.rng, mut);
    }
    if (f.duplicate > 0 && st.rng.chance(f.duplicate)) {
      decision |= kDuplicate;
      ++counters_.duplicated;
      duplicate = true;
    }

    TimeNs base_delay = f.delay_ns;
    if (f.jitter_ns > 0) base_delay += st.rng.below(f.jitter_ns);
    if (f.reorder > 0 && st.rng.chance(f.reorder)) {
      decision |= kReorder;
      ++counters_.reordered;
      base_delay += plan_.reorder_holdback_ns;
    }
    primary_delay = base_delay;
    if (primary_delay > 0) {
      decision |= kDelay;
      ++counters_.delayed;
    }
    duplicate_delay = base_delay + plan_.duplicate_lag_ns;

    ++counters_.forwarded;
    if (duplicate) ++counters_.forwarded;
    note(from, to, decision);
  }

  if (!deliver) return;
  auto now = std::chrono::steady_clock::now();
  if (duplicate) {
    Bytes copy = mutated ? *mutated : frame.to_bytes();
    enqueue_delayed(now + std::chrono::nanoseconds(duplicate_delay), to, from,
                    protocol::Message{}, std::move(copy));
  }
  if (primary_delay > 0) {
    Bytes copy = mutated ? std::move(*mutated) : frame.to_bytes();
    enqueue_delayed(now + std::chrono::nanoseconds(primary_delay), to, from,
                    protocol::Message{}, std::move(copy));
  } else if (mutated) {
    inner_.send_raw(to, std::move(*mutated));
  } else {
    inner_.send_frame(from, to, frame);
  }
}

void FaultyTransport::enqueue_delayed(
    std::chrono::steady_clock::time_point at, Endpoint to, Endpoint from,
    protocol::Message msg, std::optional<Bytes> raw) {
  {
    MutexLock lock(delay_mu_);
    delayed_.push(
        Delayed{at, delay_order_++, to, from, std::move(msg), std::move(raw)});
  }
  delay_cv_.notify_all();
}

void FaultyTransport::timer_loop(std::stop_token st) {
  MutexLock lock(delay_mu_);
  while (!st.stop_requested()) {
    if (delayed_.empty()) {
      // Wakes on enqueue, stop, or the 50 ms poll tick; the loop re-tests.
      delay_cv_.wait_for(delay_mu_, st, std::chrono::milliseconds(50));
      continue;
    }
    auto at = delayed_.top().at;
    auto now = std::chrono::steady_clock::now();
    if (now < at) {
      // Sleep toward the head's deadline; an enqueue notify wakes us early
      // in case a new message with an EARLIER deadline arrived.
      delay_cv_.wait_until(delay_mu_, st, at);
      continue;
    }
    Delayed d = delayed_.top();
    delayed_.pop();
    lock.unlock();
    // Re-check structural faults at delivery time: a message delayed across
    // a crash/partition onset must not leak through. (d.from mirrors
    // d.msg.from for typed messages and is authoritative for raw frames,
    // whose mutated bytes may no longer carry a parseable sender.)
    bool blocked;
    {
      MutexLock mlock(mu_);
      blocked = crashed_.contains(key(d.from)) ||
                crashed_.contains(key(d.to)) ||
                partitioned_.contains({key(d.from), key(d.to)});
    }
    if (!blocked) {
      if (d.raw)
        inner_.send_raw(d.to, std::move(*d.raw));
      else
        inner_.send(d.to, d.msg);
    }
    lock.lock();
  }
}

}  // namespace rdb::runtime
