// Transport abstraction: replicas and clients exchange serialized Messages
// through any implementation — in-process queues (transport.h) for tests and
// single-process deployments, TCP sockets (tcp_transport.h) for multi-
// process clusters, and the fault-injecting decorator (faulty_transport.h)
// that wraps either for chaos/recovery drills.
#pragma once

#include <memory>

#include "common/bytes.h"
#include "common/types.h"
#include "protocol/messages.h"
#include "queues/blocking_queue.h"

namespace rdb::runtime {

class Transport {
 public:
  using Inbox = BlockingQueue<Bytes>;

  virtual ~Transport() = default;

  /// Registers the inbox that receives traffic addressed to `ep`.
  virtual void register_endpoint(Endpoint ep, std::shared_ptr<Inbox> inbox) = 0;

  /// Serializes and delivers `msg` to `to`. Best-effort but self-healing
  /// where the medium allows: implementations may queue and retransmit
  /// (TcpTransport reconnects with backoff), yet are free to drop under
  /// sustained failure — BFT protocols tolerate loss by design.
  virtual void send(Endpoint to, const protocol::Message& msg) = 0;

  /// Delivers pre-serialized — possibly MALFORMED — frame bytes to `to`,
  /// bypassing Message serialization. Exists for the chaos layer: the
  /// FaultyTransport kStructural corruption mode splices wirefuzz-style
  /// mutations (truncations, length lies, type confusion) into live traffic,
  /// which by definition cannot round-trip through a typed Message. The
  /// receiver's parse+validate path (protocol/validate.h) must reject such
  /// frames and count the reject; that is exactly what chaos drills assert.
  virtual void send_raw(Endpoint to, Bytes wire) = 0;
};

}  // namespace rdb::runtime
