// Transport abstraction: replicas and clients exchange serialized Messages
// through any implementation — in-process queues (transport.h) for tests and
// single-process deployments, TCP sockets (tcp_transport.h) for multi-
// process clusters, and the fault-injecting decorator (faulty_transport.h)
// that wraps either for chaos/recovery drills.
#pragma once

#include <memory>

#include "common/bytes.h"
#include "common/rtzone.h"
#include "common/types.h"
#include "protocol/messages.h"
#include "queues/blocking_queue.h"
#include "queues/frame.h"

namespace rdb::runtime {

class Transport {
 public:
  using Inbox = BlockingQueue<Bytes>;

  virtual ~Transport() = default;

  /// Registers the inbox that receives traffic addressed to `ep`.
  virtual void register_endpoint(Endpoint ep, std::shared_ptr<Inbox> inbox) = 0;

  /// Serializes and delivers `msg` to `to`. Best-effort but self-healing
  /// where the medium allows: implementations may queue and retransmit
  /// (TcpTransport reconnects with backoff), yet are free to drop under
  /// sustained failure — BFT protocols tolerate loss by design.
  ///
  /// RT-zone root (all three send entry points): the output threads call
  /// these once per outbound message, so implementations must enqueue
  /// without naked blocking and without per-send heap allocation beyond the
  /// counted pool fallbacks (scripts/check_hotpath.py).
  RDB_HOT_PATH
  virtual void send(Endpoint to, const protocol::Message& msg) = 0;

  /// Delivers pre-serialized — possibly MALFORMED — frame bytes to `to`,
  /// bypassing Message serialization. Exists for the chaos layer: the
  /// FaultyTransport kStructural corruption mode splices wirefuzz-style
  /// mutations (truncations, length lies, type confusion) into live traffic,
  /// which by definition cannot round-trip through a typed Message. The
  /// receiver's parse+validate path (protocol/validate.h) must reject such
  /// frames and count the reject; that is exactly what chaos drills assert.
  RDB_HOT_PATH
  virtual void send_raw(Endpoint to, Bytes wire) = 0;

  /// Delivers a BORROWED pre-serialized frame — the serialize-once broadcast
  /// path: the caller builds one OwnedFrame and passes the same view to many
  /// destinations, so a fanout of N costs one serialization (and, for
  /// addressee-independent signature schemes, one signature). `from` names
  /// the sender: a borrowed frame is not re-parsed, so the link identity the
  /// chaos decorator keys its per-link fault PRNGs on must travel alongside.
  ///
  /// Borrow contract: the view is only valid for the duration of the call.
  /// Implementations that need the bytes later (outbound queues) must copy —
  /// TcpTransport copies into its own pooled OwnedFrame; the default
  /// implementation copies into an owned Bytes via send_raw.
  RDB_HOT_PATH
  virtual void send_frame(Endpoint from, Endpoint to, FrameView frame) {
    (void)from;
    send_raw(to, frame.to_bytes());
  }
};

}  // namespace rdb::runtime
