#include "runtime/replica_log.h"

#include <utility>

#include "common/serde.h"
#include "storage/env.h"

namespace rdb::runtime {

namespace {

constexpr std::uint8_t kAnchorRecord = 1;
constexpr std::uint8_t kBatchRecord = 2;

// Guards against count lies in a corrupted-but-CRC-valid record (CRC protects
// against torn writes, not against bugs that logged garbage). A batch record
// never legitimately holds more elements than bytes.
constexpr std::uint32_t kMaxInlineCount = 1u << 20;

Bytes encode_anchor(SeqNum seq, ViewId view, const Digest& acc) {
  Writer w(1 + 8 + 8 + 32);
  w.u8(kAnchorRecord);
  w.u64(seq);
  w.u64(view);
  w.digest(acc);
  return w.take();
}

Bytes encode_batch(const LoggedBatch& b) {
  Writer w;
  w.u8(kBatchRecord);
  w.u64(b.seq);
  w.u64(b.view);
  w.digest(b.digest);
  w.u64(b.txn_begin);
  w.u32(static_cast<std::uint32_t>(b.txns.size()));
  for (const auto& t : b.txns) t.serialize(w);
  w.u32(static_cast<std::uint32_t>(b.certificate.size()));
  for (const auto& v : b.certificate) {
    w.u32(v.replica);
    w.bytes(BytesView(v.signature));
  }
  return w.take();
}

bool decode_batch(Reader& r, LoggedBatch& out) {
  out.seq = r.u64();
  out.view = r.u64();
  out.digest = r.digest();
  out.txn_begin = r.u64();
  std::uint32_t ntxns = r.u32();
  if (!r.ok() || ntxns > kMaxInlineCount || ntxns > r.remaining()) return false;
  out.txns.reserve(ntxns);
  for (std::uint32_t i = 0; i < ntxns; ++i) {
    out.txns.push_back(protocol::Transaction::deserialize(r));
    if (!r.ok()) return false;
  }
  std::uint32_t nvotes = r.u32();
  if (!r.ok() || nvotes > kMaxInlineCount || nvotes > r.remaining()) return false;
  out.certificate.reserve(nvotes);
  for (std::uint32_t i = 0; i < nvotes; ++i) {
    ledger::CommitVote v;
    v.replica = r.u32();
    v.signature = r.bytes();
    if (!r.ok()) return false;
    out.certificate.push_back(std::move(v));
  }
  return r.done();
}

}  // namespace

ReplicaLog::ReplicaLog(ReplicaLogConfig config) : config_(std::move(config)) {
  storage::WalConfig wc;
  wc.path = config_.path;
  wc.env = config_.env;
  wc.sync_on_commit = config_.sync;
  wal_ = std::make_unique<storage::Wal>(wc);
}

storage::Env& ReplicaLog::env() {
  return config_.env ? *config_.env : storage::Env::real();
}

RecoveredLog ReplicaLog::recover() {
  RecoveredLog rec;
  // Records after the first malformed/non-contiguous one are not adopted:
  // without an unbroken chain back to the anchor their place in history is
  // unknown, even if their CRCs check out.
  bool broken = false;
  wal_->replay([&](std::uint64_t /*lsn*/, BytesView payload) {
    if (broken || payload.empty()) {
      ++rec.dropped_records;
      return;
    }
    Reader r(payload);
    std::uint8_t kind = r.u8();
    if (kind == kAnchorRecord) {
      SeqNum seq = r.u64();
      ViewId view = r.u64();
      Digest acc = r.digest();
      // A log holds one anchor (written first, by compaction). Anything
      // already adopted before a second anchor would be a compaction bug;
      // adopt the later anchor only if it extends cleanly.
      if (!r.done() || (rec.has_anchor && seq < rec.anchor_seq) ||
          !rec.batches.empty()) {
        broken = true;
        ++rec.dropped_records;
        return;
      }
      rec.has_anchor = true;
      rec.anchor_seq = seq;
      rec.anchor_view = view;
      rec.anchor_acc = acc;
      return;
    }
    if (kind == kBatchRecord) {
      LoggedBatch b;
      if (!decode_batch(r, b)) {
        broken = true;
        ++rec.dropped_records;
        return;
      }
      SeqNum expect = rec.batches.empty() ? rec.anchor_seq + 1
                                          : rec.batches.back().seq + 1;
      if (b.seq != expect) {
        broken = true;
        ++rec.dropped_records;
        return;
      }
      rec.batches.push_back(std::move(b));
      return;
    }
    broken = true;
    ++rec.dropped_records;
  });
  rec.tail_truncated = wal_->stats().tail_truncated;
  return rec;
}

void ReplicaLog::append_batch(const LoggedBatch& batch) {
  wal_->append(BytesView(encode_batch(batch)));
  ++stats_.batches_appended;
}

void ReplicaLog::commit() {
  wal_->commit();
  ++stats_.commits;
}

void ReplicaLog::compact(SeqNum anchor_seq, ViewId anchor_view,
                         const Digest& anchor_acc,
                         const std::vector<LoggedBatch>& tail) {
  // Build the replacement log in a scratch file, fsync it, then atomically
  // rename over the live log. A crash at any point leaves either the old or
  // the new log fully intact — never a mix.
  const std::string tmp = config_.path + ".tmp";
  {
    if (env().exists(tmp)) env().remove(tmp);
    storage::WalConfig wc;
    wc.path = tmp;
    wc.env = config_.env;
    wc.sync_on_commit = true;  // the rename must never land before the data
    storage::Wal fresh(wc);
    fresh.replay([](std::uint64_t, BytesView) {});
    fresh.append(BytesView(encode_anchor(anchor_seq, anchor_view, anchor_acc)));
    for (const auto& b : tail) fresh.append(BytesView(encode_batch(b)));
    fresh.commit();
  }
  env().rename(tmp, config_.path);
  // Reopen the live WAL; replaying the (small) compacted log re-seeds the
  // next LSN and file offset.
  storage::WalConfig wc;
  wc.path = config_.path;
  wc.env = config_.env;
  wc.sync_on_commit = config_.sync;
  wal_ = std::make_unique<storage::Wal>(wc);
  wal_->replay([](std::uint64_t, BytesView) {});
  ++stats_.compactions;
}

}  // namespace rdb::runtime
