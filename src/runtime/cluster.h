// LocalCluster: assembles a full in-process deployment — key registry,
// transport, n threaded replicas with their storage backends, and client
// factories. The entry point the examples and integration tests build on.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "crypto/key_registry.h"
#include "runtime/client.h"
#include "runtime/replica.h"

namespace rdb::runtime {

struct ClusterConfig {
  std::uint32_t replicas{4};
  std::uint32_t batch_threads{2};
  std::uint32_t output_threads{2};
  std::uint32_t verify_threads{0};  // Prepare/Commit verify pool (0 = inline)
  std::uint32_t batch_size{10};
  SeqNum checkpoint_interval{16};
  TimeNs request_timeout_ns{2'000'000'000};
  TimeNs catchup_poll_ns{500'000'000};
  crypto::SchemeConfig schemes{};
  std::uint64_t key_seed{7};

  /// Storage factory, called once per replica. Defaults to MemStore.
  std::function<std::unique_ptr<storage::KvStore>(ReplicaId)> make_store;
  /// Transaction executor shared by all replicas (must be deterministic).
  ExecuteFn execute;
};

class LocalCluster {
 public:
  explicit LocalCluster(ClusterConfig config);
  ~LocalCluster();

  void start();
  void stop();

  Replica& replica(ReplicaId id) { return *replicas_[id]; }
  std::uint32_t size() const { return config_.replicas; }
  InprocTransport& transport() { return transport_; }
  const crypto::KeyRegistry& registry() const { return registry_; }

  /// Creates a client wired to this cluster.
  std::unique_ptr<Client> make_client(ClientId id);

  /// Blocks until every live replica has executed at least `seq`, or the
  /// timeout expires. Returns true on success.
  bool wait_for_execution(SeqNum seq, std::chrono::milliseconds timeout,
                          const std::vector<ReplicaId>& skip = {});

 private:
  ClusterConfig config_;
  crypto::KeyRegistry registry_;
  InprocTransport transport_;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace rdb::runtime
