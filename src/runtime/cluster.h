// LocalCluster: assembles a full in-process deployment — key registry,
// transport, n threaded replicas with their storage backends, and client
// factories. The entry point the examples and integration tests build on.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "crypto/key_registry.h"
#include "runtime/client.h"
#include "runtime/faulty_transport.h"
#include "runtime/replica.h"

namespace rdb::runtime {

struct ClusterConfig {
  std::uint32_t replicas{4};
  std::uint32_t batch_threads{2};
  std::uint32_t output_threads{2};
  std::uint32_t verify_threads{0};  // Prepare/Commit verify pool (0 = inline)
  std::uint32_t verify_batch_size{64};   // burst size for batch verification
  TimeNs verify_batch_wait_ns{200'000};  // burst flush cutoff (200 us)
  bool verify_certificates{false};  // re-check block certs via batch path
  std::uint32_t batch_size{10};
  SeqNum checkpoint_interval{16};
  TimeNs request_timeout_ns{2'000'000'000};
  TimeNs catchup_poll_ns{500'000'000};
  crypto::SchemeConfig schemes{};
  std::uint64_t key_seed{7};

  /// Chaos layer: when set, every replica and client is wired through a
  /// FaultyTransport decorating the in-process transport; drive it via
  /// LocalCluster::chaos() (partitions, crashes, per-link fault plans).
  bool enable_chaos{false};
  FaultPlan fault_plan{};

  /// Client knobs forwarded by make_client() (chaos drills want short
  /// timeouts and early broadcast).
  std::chrono::milliseconds client_timeout{2'000};
  std::uint32_t client_max_retries{3};
  std::uint32_t client_broadcast_after{2};

  /// Storage factory, called once per replica (again on restart). Defaults
  /// to MemStore, or to a per-replica PageDb under data_dir when durable.
  std::function<std::unique_ptr<storage::KvStore>(ReplicaId)> make_store;
  /// Transaction executor shared by all replicas (must be deterministic).
  ExecuteFn execute;

  /// Durable crash-recovery mode: every replica keeps a group-committed
  /// consensus log (and, by default, a PageDb KV store) under
  /// data_dir/r<id>/, and recovers from it on restart_replica().
  bool durable{false};
  std::string data_dir;
  bool durable_sync{true};  // fsync per group commit
  storage::Env* storage_env{nullptr};  // fault injection; nullptr = real
  /// Forwarded to every replica: capture/serve/install checkpoint images so
  /// a replica that fell below the batch retention window can rejoin.
  bool enable_snapshots{false};
  /// TEST-ONLY: replicas whose execution is perturbed (reversed apply order
  /// per batch — see ReplicaConfig::test_perturb_exec). Drives the
  /// exec-divergence tripwire drills.
  std::vector<ReplicaId> perturb_exec_replicas;
};

class LocalCluster {
 public:
  explicit LocalCluster(ClusterConfig config);
  ~LocalCluster();

  void start();
  void stop();

  Replica& replica(ReplicaId id) { return *replicas_[id]; }
  std::uint32_t size() const { return config_.replicas; }
  InprocTransport& transport() { return transport_; }
  /// The chaos layer (nullptr unless config.enable_chaos).
  FaultyTransport* chaos() { return chaos_.get(); }
  /// The transport replicas/clients are actually wired through: the chaos
  /// decorator when enabled, the raw in-process transport otherwise.
  Transport& wire() { return chaos_ ? static_cast<Transport&>(*chaos_)
                                    : static_cast<Transport&>(transport_); }
  const crypto::KeyRegistry& registry() const { return registry_; }

  /// Creates a client wired to this cluster.
  std::unique_ptr<Client> make_client(ClientId id);

  /// Hard-kills a replica: stops its threads and DESTROYS the object — every
  /// byte of in-memory state (engine slots, chain, KV cache, reply cache,
  /// queues) is gone, exactly like a process crash. On-disk state survives.
  void kill_replica(ReplicaId id);
  /// Rebuilds a killed replica from scratch. In durable mode it recovers
  /// chain/engine/KV state from its data dir before rejoining the cluster.
  void restart_replica(ReplicaId id);
  /// False after kill_replica(id) until restart_replica(id).
  bool is_alive(ReplicaId id) const { return replicas_[id] != nullptr; }

  /// Blocks until every live replica has executed at least `seq`, or the
  /// timeout expires. Returns true on success.
  bool wait_for_execution(SeqNum seq, std::chrono::milliseconds timeout,
                          const std::vector<ReplicaId>& skip = {});

 private:
  std::unique_ptr<Replica> make_replica(ReplicaId id);

  ClusterConfig config_;
  crypto::KeyRegistry registry_;
  InprocTransport transport_;
  std::unique_ptr<FaultyTransport> chaos_;  // set when config.enable_chaos
  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace rdb::runtime
