// TCP transport: one local endpoint per instance (the natural shape for a
// multi-process deployment — one process hosts one replica or one client).
//
// Wire format per connection: a stream of frames, each a u32 little-endian
// length followed by a serialized protocol::Message. Frames are bounded by
// `max_frame` on BOTH sides: oversized receives cut the connection (hostile
// stream), oversized sends are rejected with a counted stat.
//
// Self-healing send path: every declared peer gets a bounded outbound queue
// drained by a dedicated sender thread. The sender dials lazily, and on any
// connect/write failure requeues the in-flight frame and reconnects with
// bounded exponential backoff plus deterministic jitter — messages queued
// while a peer is down are redelivered once it comes back. The queue is
// bounded (oldest frame dropped on overflow, counted) so a dead peer cannot
// exhaust memory; BFT tolerates the loss. stop() drains established
// connections for up to `drain_timeout` before closing.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "queues/frame.h"
#include "runtime/transport_iface.h"

namespace rdb::runtime {

struct TcpPeer {
  std::string host;
  std::uint16_t port{0};
};

struct TcpTransportConfig {
  /// Max serialized frame size enforced on send AND receive.
  std::uint32_t max_frame{64 * 1024 * 1024};
  /// Bound on each peer's outbound queue; overflow drops the OLDEST frame
  /// (freshest consensus traffic wins) and counts a queue_overflow.
  std::size_t max_peer_queue{4096};
  /// Reconnect backoff: base doubles per failure up to max, plus uniform
  /// jitter in [0, backoff_base) drawn from a seeded per-peer PRNG.
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_max{1'000};
  std::uint64_t backoff_seed{0x5EED};
  /// stop() drains established connections for at most this long.
  std::chrono::milliseconds drain_timeout{500};
  /// Outbound frame pool: queued frames live in preallocated slabs, so the
  /// steady-state send path performs no heap allocation and drop-oldest
  /// recycles the slab instead of freeing it. Frames larger than
  /// frame_slab_bytes (or acquired while the pool is drained) fall back to
  /// the heap, counted in frames_heap_fallback — correctness never depends
  /// on pool sizing (§4.8).
  std::size_t frame_pool_slabs{1024};
  std::size_t frame_slab_bytes{16 * 1024};
};

/// Connection-state statistics (all monotonically increasing).
struct TcpTransportStats {
  std::uint64_t messages_sent{0};      // frames actually written
  std::uint64_t send_failures{0};      // failed connects/writes + rejects
  std::uint64_t reconnects{0};         // successful re-establishments
  std::uint64_t queue_overflows{0};    // frames dropped: peer queue full
  std::uint64_t messages_requeued{0};  // frames put back after a failure
  std::uint64_t undeclared_drops{0};   // sends to endpoints never declared
  std::uint64_t oversize_rejected{0};  // sends exceeding max_frame
  std::uint64_t frames_pooled{0};      // queue entries backed by a pool slab
  std::uint64_t frames_heap_fallback{0};  // oversize or pool-drained entries
};

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on `listen_port` (0 = pick an ephemeral port, query
  /// it with port()). Throws std::runtime_error on bind failure.
  TcpTransport(Endpoint self, std::uint16_t listen_port,
               TcpTransportConfig config = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  std::uint16_t port() const { return port_; }
  Endpoint self() const { return self_; }

  /// Declares where a peer endpoint listens and spawns its sender thread.
  /// Messages to undeclared peers are rejected (undeclared_drops stat).
  void add_peer(Endpoint ep, TcpPeer peer);

  /// Must be the transport's own endpoint.
  void register_endpoint(Endpoint ep, std::shared_ptr<Inbox> inbox) override;

  /// Enqueues on the peer's outbound queue; never blocks. The frame is
  /// written by the peer's sender thread, surviving peer restarts.
  void send(Endpoint to, const protocol::Message& msg) override;

  /// Enqueues pre-serialized frame bytes (chaos structural-corruption path);
  /// the same max_frame / bounded-queue rules apply.
  void send_raw(Endpoint to, Bytes wire) override;

  /// Borrowed-frame enqueue: copies the view into a pooled OwnedFrame (one
  /// memcpy, zero heap allocation on a pool hit) — the broadcast fan-out
  /// path never outlives the borrow.
  void send_frame(Endpoint from, Endpoint to, FrameView frame) override;

  /// Graceful shutdown: drains established peer connections (bounded by
  /// drain_timeout), then closes everything. Idempotent.
  void stop();

  TcpTransportStats stats() const;
  std::uint64_t messages_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t send_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  std::uint64_t queue_overflows() const {
    return overflows_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_requeued() const {
    return requeued_.load(std::memory_order_relaxed);
  }
  std::uint64_t undeclared_drops() const {
    return undeclared_.load(std::memory_order_relaxed);
  }
  std::uint64_t oversize_rejected() const {
    return oversize_.load(std::memory_order_relaxed);
  }

 private:
  struct PeerState {
    // Ranked BELOW the transport registry lock (mu_): add_peer() nests
    // peer->mu inside mu_; the sender thread only ever holds peer->mu.
    Mutex mu{LockRank::kTransportPeer, "TcpTransport.peer"};
    CondVar cv;
    TcpPeer addr RDB_GUARDED_BY(mu);
    /// Frames awaiting the sender, in pooled slabs: drop-oldest and
    /// successful writes return the slab to the pool instead of freeing it.
    std::deque<OwnedFrame> queue RDB_GUARDED_BY(mu);
    int fd RDB_GUARDED_BY(mu) = -1;  // sender-owned once the thread runs
    bool ever_connected RDB_GUARDED_BY(mu) = false;
    Rng jitter RDB_GUARDED_BY(mu);
    std::jthread sender;
    explicit PeerState(TcpPeer a, std::uint64_t seed)
        : addr(std::move(a)), jitter(seed) {}
  };

  static std::uint64_t key(Endpoint ep) {
    return (static_cast<std::uint64_t>(ep.kind == Endpoint::Kind::kClient)
            << 32) |
           ep.id;
  }

  void accept_loop(std::stop_token st);
  void reader_loop(std::stop_token st, int fd);
  void sender_loop(std::stop_token st, PeerState* peer);
  int connect_to(const TcpPeer& peer);
  bool write_frame(int fd, BytesView wire);
  /// Shared enqueue tail for send_raw/send_frame: bounded-queue admission,
  /// drop-oldest recycling, sender wakeup.
  void enqueue_frame(Endpoint to, OwnedFrame frame);
  /// Joins every sender thread. Deliberately walks peers_ WITHOUT mu_:
  /// by this point stopping_ is set, so add_peer() refuses to mutate the
  /// map, and holding mu_ across the joins could deadlock against a sender
  /// briefly taking it. The analysis cannot model that protocol, hence the
  /// suppression (see docs/static_analysis.md).
  void join_senders() RDB_NO_THREAD_SAFETY_ANALYSIS;

  Endpoint self_;
  TcpTransportConfig config_;
  FramePool frame_pool_;
  int listen_fd_{-1};
  std::uint16_t port_{0};

  mutable Mutex mu_{LockRank::kTransport, "TcpTransport"};
  std::shared_ptr<Inbox> inbox_ RDB_GUARDED_BY(mu_);
  std::map<std::uint64_t, std::unique_ptr<PeerState>> peers_
      RDB_GUARDED_BY(mu_);
  std::vector<int> accepted_fds_ RDB_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> requeued_{0};
  std::atomic<std::uint64_t> undeclared_{0};
  std::atomic<std::uint64_t> oversize_{0};
  std::atomic<bool> stopping_{false};
  std::chrono::steady_clock::time_point drain_deadline_{};
  std::jthread acceptor_;
  std::vector<std::jthread> readers_ RDB_GUARDED_BY(mu_);
};

}  // namespace rdb::runtime
