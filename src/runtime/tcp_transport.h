// TCP transport: one local endpoint per instance (the natural shape for a
// multi-process deployment — one process hosts one replica or one client).
//
// Wire format per connection: a stream of frames, each a u32 little-endian
// length followed by a serialized protocol::Message. Outbound connections
// are dialed lazily per peer and cached; a failed send closes the cached
// connection and drops the message (BFT tolerates loss — retransmission is
// the protocol's job, not the transport's).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/transport_iface.h"

namespace rdb::runtime {

struct TcpPeer {
  std::string host;
  std::uint16_t port{0};
};

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on `listen_port` (0 = pick an ephemeral port, query
  /// it with port()). Throws std::runtime_error on bind failure.
  TcpTransport(Endpoint self, std::uint16_t listen_port);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  std::uint16_t port() const { return port_; }
  Endpoint self() const { return self_; }

  /// Declares where a peer endpoint listens. Messages to undeclared peers
  /// are dropped.
  void add_peer(Endpoint ep, TcpPeer peer);

  /// Must be the transport's own endpoint.
  void register_endpoint(Endpoint ep, std::shared_ptr<Inbox> inbox) override;

  void send(Endpoint to, const protocol::Message& msg) override;

  void stop();

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t send_failures() const { return failures_; }

 private:
  static std::uint64_t key(Endpoint ep) {
    return (static_cast<std::uint64_t>(ep.kind == Endpoint::Kind::kClient)
            << 32) |
           ep.id;
  }

  void accept_loop(std::stop_token st);
  void reader_loop(std::stop_token st, int fd);
  int connect_to(const TcpPeer& peer);
  bool write_frame(int fd, const Bytes& wire);

  Endpoint self_;
  int listen_fd_{-1};
  std::uint16_t port_{0};

  std::mutex mu_;
  std::shared_ptr<Inbox> inbox_;
  std::map<std::uint64_t, TcpPeer> peers_;
  struct Conn {
    int fd{-1};
    std::unique_ptr<std::mutex> write_mu;
  };
  std::map<std::uint64_t, Conn> conns_;
  std::vector<int> accepted_fds_;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<bool> stopping_{false};
  std::jthread acceptor_;
  std::vector<std::jthread> readers_;  // guarded by mu_ for insertion
};

}  // namespace rdb::runtime
