// In-process transport: every endpoint (replica or client) registers an
// inbox; send() serializes the message and enqueues it at the destination.
//
// This stands in for the TCP mesh of the paper's deployment (DESIGN.md §2) —
// messages really are flattened to wire bytes and re-parsed at the receiver,
// so serialization bugs and byzantine-input handling are exercised for real.
// Delivery is FIFO per sender-receiver pair, like a TCP connection.
#pragma once

#include <atomic>
#include <memory>
#include <unordered_map>

#include "common/sync.h"
#include "runtime/transport_iface.h"

namespace rdb::runtime {

class InprocTransport final : public Transport {
 public:
  /// Registers (or replaces) the inbox for an endpoint.
  void register_endpoint(Endpoint ep, std::shared_ptr<Inbox> inbox) override;

  /// Serializes and delivers; silently drops if the destination is not
  /// registered or is partitioned (test hook).
  void send(Endpoint to, const protocol::Message& msg) override;

  /// Delivers raw frame bytes (chaos layer / structural-corruption path).
  void send_raw(Endpoint to, Bytes wire) override;

  /// Borrowed-frame delivery. In-process inboxes consume owned Bytes, so
  /// each destination pays exactly one copy — the serialize-once win here is
  /// the N-1 avoided serializations (and signatures), not zero-copy.
  void send_frame(Endpoint from, Endpoint to, FrameView frame) override;

  /// Test hook: a partitioned endpoint loses all traffic in both directions.
  void set_partitioned(Endpoint ep, bool partitioned);

  std::uint64_t messages_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  static std::uint64_t key(Endpoint ep) {
    return (static_cast<std::uint64_t>(ep.kind == Endpoint::Kind::kClient)
            << 32) |
           ep.id;
  }

  mutable Mutex mu_{LockRank::kTransport, "InprocTransport"};
  std::unordered_map<std::uint64_t, std::shared_ptr<Inbox>> inboxes_
      RDB_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, bool> partitioned_ RDB_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace rdb::runtime
