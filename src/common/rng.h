// Deterministic, fast PRNGs. Everything in the repo that needs randomness
// (workload keys, simulated jitter, property tests) takes an explicit seeded
// Rng so runs are reproducible.
#pragma once

#include <cstdint>

namespace rdb {

/// SplitMix64: used to seed Xoshiro and for cheap one-shot mixing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace rdb
