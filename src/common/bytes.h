// Byte-buffer helpers: hex encoding, constant-time compare, small digest type.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rdb {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Fixed 32-byte digest (SHA-256 output) with value semantics.
struct Digest {
  std::array<std::uint8_t, 32> data{};

  friend bool operator==(const Digest&, const Digest&) = default;
  friend auto operator<=>(const Digest&, const Digest&) = default;

  bool is_zero() const {
    for (auto b : data)
      if (b != 0) return false;
    return true;
  }
};

struct DigestHash {
  std::size_t operator()(const Digest& d) const {
    std::size_t h;
    std::memcpy(&h, d.data.data(), sizeof(h));
    return h;
  }
};

/// Lowercase hex of an arbitrary byte range.
std::string to_hex(BytesView bytes);
std::string to_hex(const Digest& d);

/// Parses lowercase/uppercase hex; returns empty on malformed input.
Bytes from_hex(std::string_view hex);

/// Constant-time equality, for MAC/signature comparison.
bool ct_equal(BytesView a, BytesView b);

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline BytesView as_view(const Bytes& b) { return BytesView(b); }

}  // namespace rdb
