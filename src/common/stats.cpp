#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rdb {

namespace {
constexpr double kGrowth = 1.08;
constexpr double kFirstBound = 100.0;  // 100 ns
constexpr std::size_t kMaxBuckets = 400;
}  // namespace

LatencyHistogram::LatencyHistogram() {
  upper_bounds_.reserve(kMaxBuckets);
  double bound = kFirstBound;
  for (std::size_t i = 0; i < kMaxBuckets; ++i) {
    upper_bounds_.push_back(bound);
    bound *= kGrowth;
  }
  buckets_.assign(kMaxBuckets, 0);
}

std::size_t LatencyHistogram::bucket_for(std::uint64_t ns) const {
  // Geometric index: log(ns / first) / log(growth).
  if (ns <= static_cast<std::uint64_t>(kFirstBound)) return 0;
  double idx = std::log(static_cast<double>(ns) / kFirstBound) /
               std::log(kGrowth);
  auto i = static_cast<std::size_t>(idx) + 1;
  return std::min(i, buckets_.size() - 1);
}

void LatencyHistogram::record(std::uint64_t ns) {
  if (count_ == 0) {
    min_ = max_ = ns;
  } else {
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
  }
  ++count_;
  sum_ += static_cast<double>(ns);
  ++buckets_[bucket_for(ns)];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
}

double LatencyHistogram::mean_ns() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::percentile_ns(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  target = std::max<std::uint64_t>(target, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return upper_bounds_[i];
  }
  return upper_bounds_.back();
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = max_ = 0;
}

std::string format_tps(double tps) {
  char buf[64];
  if (tps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", tps / 1e6);
  } else if (tps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", tps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", tps);
  }
  return buf;
}

}  // namespace rdb
