#include "common/compress.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace rdb {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 255;  // extra byte is 0..255
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Bytes lz_compress(BytesView in) {
  Bytes out;
  out.reserve(in.size() / 2 + 16);
  // Last position seen for each 4-byte-prefix hash (depth-1 chain: one
  // candidate per hash — cheap and good enough for repetitive KV images).
  std::vector<std::size_t> table(kHashSize, SIZE_MAX);

  std::size_t pos = 0;
  std::size_t ctrl_at = 0;   // index of the current control byte in `out`
  int ctrl_used = 8;         // items consumed in the current control byte

  auto begin_item = [&]() {
    if (ctrl_used == 8) {
      ctrl_at = out.size();
      out.push_back(0);
      ctrl_used = 0;
    }
  };

  while (pos < in.size()) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (pos + kMinMatch <= in.size()) {
      std::uint32_t h = hash4(in.data() + pos);
      std::size_t cand = table[h];
      table[h] = pos;
      if (cand != SIZE_MAX && pos - cand <= kMaxOffset) {
        std::size_t limit = in.size() - pos;
        if (limit > kMaxMatch) limit = kMaxMatch;
        std::size_t len = 0;
        while (len < limit && in[cand + len] == in[pos + len]) ++len;
        if (len >= kMinMatch) {
          best_len = len;
          best_off = pos - cand;
        }
      }
    }

    begin_item();
    if (best_len >= kMinMatch) {
      // Match token: control bit stays 0.
      out.push_back(static_cast<std::uint8_t>(best_off & 0xFF));
      out.push_back(static_cast<std::uint8_t>(best_off >> 8));
      out.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      pos += best_len;
    } else {
      out[ctrl_at] |= static_cast<std::uint8_t>(1u << ctrl_used);
      out.push_back(in[pos]);
      ++pos;
    }
    ++ctrl_used;
  }
  return out;
}

std::optional<Bytes> lz_decompress(BytesView in, std::size_t max_out) {
  Bytes out;
  std::size_t pos = 0;
  while (pos < in.size()) {
    std::uint8_t ctrl = in[pos++];
    for (int bit = 0; bit < 8 && pos < in.size(); ++bit) {
      if (ctrl & (1u << bit)) {
        if (out.size() + 1 > max_out) return std::nullopt;
        out.push_back(in[pos++]);
      } else {
        if (in.size() - pos < 3) return std::nullopt;  // truncated match
        std::size_t off = static_cast<std::size_t>(in[pos]) |
                          (static_cast<std::size_t>(in[pos + 1]) << 8);
        std::size_t len = kMinMatch + in[pos + 2];
        pos += 3;
        if (off == 0 || off > out.size()) return std::nullopt;
        if (out.size() + len > max_out) return std::nullopt;
        // Byte-by-byte on purpose: matches may overlap their own output
        // (off < len is the RLE case).
        std::size_t src = out.size() - off;
        for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
      }
    }
  }
  return out;
}

}  // namespace rdb
