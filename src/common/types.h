// Core identifier and scalar types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace rdb {

/// Identifier of a replica (server). Replicas are numbered 0..n-1; the primary
/// of view v is replica (v mod n).
using ReplicaId = std::uint32_t;

/// Identifier of a client. Client ids live in a separate namespace from
/// replica ids; transports address them via Endpoint.
using ClientId = std::uint32_t;

/// Monotonically increasing sequence number the primary assigns to a batch.
using SeqNum = std::uint64_t;

/// View number. The primary of view v is replica (v mod n).
using ViewId = std::uint64_t;

/// Client-local request number, used to pair responses with requests.
using RequestId = std::uint64_t;

/// Virtual or real time in nanoseconds.
using TimeNs = std::uint64_t;

inline constexpr SeqNum kInvalidSeq = std::numeric_limits<SeqNum>::max();
inline constexpr ReplicaId kInvalidReplica =
    std::numeric_limits<ReplicaId>::max();

/// An endpoint is either a replica or a client; transports route on this.
struct Endpoint {
  enum class Kind : std::uint8_t { kReplica, kClient };
  Kind kind{Kind::kReplica};
  std::uint32_t id{0};

  static constexpr Endpoint replica(ReplicaId r) {
    return Endpoint{Kind::kReplica, r};
  }
  static constexpr Endpoint client(ClientId c) {
    return Endpoint{Kind::kClient, c};
  }
  friend constexpr bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// f = max byzantine replicas tolerated by n replicas (n >= 3f + 1).
constexpr std::uint32_t max_faulty(std::uint32_t n) { return (n - 1) / 3; }

/// Quorum sizes used by PBFT: 2f prepares (plus own pre-prepare) and
/// 2f + 1 commits.
constexpr std::uint32_t prepare_quorum(std::uint32_t n) {
  return 2 * max_faulty(n);
}
constexpr std::uint32_t commit_quorum(std::uint32_t n) {
  return 2 * max_faulty(n) + 1;
}

}  // namespace rdb
