#include "common/rtzone.h"

#include <cstdlib>
#include <new>

namespace rdb::rtzone {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kInput:
      return "input";
    case Stage::kBatch:
      return "batch";
    case Stage::kVerify:
      return "verify";
    case Stage::kWorker:
      return "worker";
    case Stage::kExecute:
      return "execute";
    case Stage::kCheckpoint:
      return "checkpoint";
    case Stage::kOutput:
      return "output";
    case Stage::kCount:
      break;
  }
  return "?";
}

bool tripwire_enabled() {
#if defined(RDB_ALLOC_TRIPWIRE)
  return true;
#else
  return false;
#endif
}

namespace detail {

namespace {
// One slot per thread. A plain thread_local pointer: reading it in the
// operator new hot path is a single TLS load, and a thread with no armed
// scope (every non-pipeline thread) pays only that load.
thread_local std::uint64_t* t_counter = nullptr;
}  // namespace

std::uint64_t* exchange_counter(std::uint64_t* next) {
  std::uint64_t* prev = t_counter;
  t_counter = next;
  return prev;
}

std::uint64_t* current_counter() { return t_counter; }

}  // namespace detail
}  // namespace rdb::rtzone

#if defined(RDB_ALLOC_TRIPWIRE)

// Global allocation hooks (CI/debug builds only): every heap allocation in
// the process reports to the calling thread's armed AllocScope, making
// per-pipeline-stage allocation counts observable. Deliberately simple —
// malloc under the hood, one TLS read of overhead — because the tripwire
// build is a measurement build, not a production build.
//
// Only new is counted (delete is a release, not a resource acquisition the
// hot-path discipline bans; freeing pooled fallbacks on the hot path is
// already covered by counting their acquisition).

namespace {

void* counted_alloc(std::size_t size) {
  rdb::rtzone::note_alloc();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  rdb::rtzone::note_alloc();
  std::size_t a = static_cast<std::size_t>(align);
  if (a < sizeof(void*)) a = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, a, size == 0 ? a : size) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  rdb::rtzone::note_alloc();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  rdb::rtzone::note_alloc();
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // RDB_ALLOC_TRIPWIRE
