// Annotated synchronization primitives: the project's single source of
// mutual exclusion.
//
// Three layers live here:
//
//  1. Portable Clang Thread Safety Analysis macros (RDB_CAPABILITY,
//     RDB_GUARDED_BY, RDB_REQUIRES, ...). Under clang they expand to the
//     attributes that make `-Wthread-safety` prove at COMPILE TIME that
//     every access to a guarded field happens under its mutex; under GCC /
//     MSVC they expand to nothing. See docs/static_analysis.md.
//
//  2. rdb::Mutex / rdb::SharedMutex / rdb::CondVar and the RAII guards
//     rdb::MutexLock / rdb::ReaderLock. Thin wrappers over the std
//     primitives that carry the annotations. No naked std::mutex is
//     allowed anywhere else in src/ (scripts/check_static.sh greps).
//
//  3. A debug-build lock-rank deadlock detector. Every Mutex carries a
//     LockRank (a strict subsystem ordering, highest acquired first); a
//     thread-local held-lock stack verifies on each acquisition that ranks
//     strictly DECREASE. A violation — the static shape of every lock-order
//     deadlock — aborts with the full held stack. Compiled out under NDEBUG
//     (force on with -DRDB_LOCK_RANK_FORCE for the death test).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <stop_token>

// ---------------------------------------------------------------------------
// Thread Safety Analysis attribute macros (no-ops outside clang).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define RDB_TSA_HAS(x) __has_attribute(x)
#else
#define RDB_TSA_HAS(x) 0
#endif

#if RDB_TSA_HAS(capability)
#define RDB_TSA(x) __attribute__((x))
#else
#define RDB_TSA(x)  // no-op on GCC / MSVC
#endif

/// Marks a class as a capability (lockable) type.
#define RDB_CAPABILITY(name) RDB_TSA(capability(name))
/// Marks a RAII class whose lifetime acquires/releases a capability.
#define RDB_SCOPED_CAPABILITY RDB_TSA(scoped_lockable)
/// Field may only be accessed while holding the given capability.
#define RDB_GUARDED_BY(x) RDB_TSA(guarded_by(x))
/// Pointer field whose POINTEE may only be accessed holding the capability.
#define RDB_PT_GUARDED_BY(x) RDB_TSA(pt_guarded_by(x))
/// Function requires the capability to be held (exclusively) on entry.
#define RDB_REQUIRES(...) RDB_TSA(requires_capability(__VA_ARGS__))
/// Function requires the capability held at least shared on entry.
#define RDB_REQUIRES_SHARED(...) RDB_TSA(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (exclusively); it must not be held.
#define RDB_ACQUIRE(...) RDB_TSA(acquire_capability(__VA_ARGS__))
/// Function acquires the capability in shared mode.
#define RDB_ACQUIRE_SHARED(...) RDB_TSA(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (exclusive or, on scoped types, generic).
#define RDB_RELEASE(...) RDB_TSA(release_capability(__VA_ARGS__))
/// Function releases a shared hold of the capability.
#define RDB_RELEASE_SHARED(...) RDB_TSA(release_shared_capability(__VA_ARGS__))
/// Function attempts the capability; first arg is the success return value.
#define RDB_TRY_ACQUIRE(...) RDB_TSA(try_acquire_capability(__VA_ARGS__))
/// Function must be called WITHOUT the capability held (self-deadlock guard).
#define RDB_EXCLUDES(...) RDB_TSA(locks_excluded(__VA_ARGS__))
/// Documents/returns-by-reference the capability protecting a value.
#define RDB_RETURN_CAPABILITY(x) RDB_TSA(lock_returned(x))
/// Escape hatch: disables analysis of the annotated function's BODY only.
/// Callers are still checked against the function's contract. Use rarely,
/// with a comment saying why (see docs/static_analysis.md).
#define RDB_NO_THREAD_SAFETY_ANALYSIS RDB_TSA(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Lock-rank deadlock detector (debug builds; zero code in release).
// ---------------------------------------------------------------------------

#if defined(RDB_LOCK_RANK_FORCE)
#define RDB_LOCK_RANK_CHECKS 1
#elif !defined(NDEBUG)
#define RDB_LOCK_RANK_CHECKS 1
#else
#define RDB_LOCK_RANK_CHECKS 0
#endif

namespace rdb {

/// The project-wide lock order, one rank per subsystem (see the table in
/// docs/static_analysis.md). A thread may only acquire a mutex whose rank is
/// STRICTLY LOWER than every mutex it already holds — i.e. locks are taken
/// from the top of the stack (consensus engine) down towards the leaves
/// (logging). Any two mutexes acquired nested MUST have distinct ranks.
enum class LockRank : std::uint16_t {
  kUnranked = 0,  ///< Opted out of rank checking (tests, ad-hoc tooling).

  kLogging = 100,        ///< Logger::mu_ — leaf; safe under anything.
  kQueue = 200,          ///< BlockingQueue internals (pipeline edges).
  kCryptoModule = 280,   ///< ed25519.cpp module-level expanded-key cache.
  kCryptoRegistry = 290, ///< KeyRegistry expanded-key cache.
  kCryptoProvider = 300, ///< CryptoProvider per-peer CMAC context cache.
  kStorageStats = 390,   ///< MemStore aggregate StoreStats.
  kStorage = 400,        ///< PageDb page cache + WAL (single big lock).
  kStorageStripe = 410,  ///< MemStore per-stripe map locks.
  kTransportPeer = 540,  ///< TcpTransport per-peer outbound queue.
  kTransport = 560,      ///< TcpTransport / InprocTransport registry lock.
  kChaosDelay = 570,     ///< FaultyTransport delayed-delivery queue.
  kChaos = 580,          ///< FaultyTransport fault plan / link state.
  kClient = 600,         ///< runtime::Client pending-request state.
  kReplicaStats = 640,   ///< Replica stats_mu_.
  kReplicaSnapshot = 650,  ///< Replica snapshot image + pending install.
  kExecuteSlot = 660,    ///< Replica QC execute slots (§4.6).
  kReplicaTimer = 680,   ///< Replica timer wheel.
  kLedgerChain = 700,    ///< Replica chain_mu_ (Blockchain append/prune).
  kReplicaEngine = 720,  ///< Replica engine_mu_ — outermost; PBFT state.
};

/// True when the lock-rank detector is compiled into this translation unit.
constexpr bool lock_rank_checks_enabled() { return RDB_LOCK_RANK_CHECKS != 0; }

namespace sync_internal {

#if RDB_LOCK_RANK_CHECKS

/// Per-thread stack of held (possibly try-acquired) ranked locks.
struct HeldStack {
  static constexpr int kMax = 64;
  struct Entry {
    const void* mu;
    std::uint16_t rank;
    bool shared;
    const char* name;
  };
  Entry entries[kMax];
  int depth{0};
};

inline thread_local HeldStack tls_held_stack;

[[noreturn]] inline void rank_abort(const HeldStack& held, std::uint16_t rank,
                                    const char* name, const char* why) {
  std::fprintf(stderr,
               "[rdb::sync] LOCK RANK VIOLATION: %s while acquiring \"%s\" "
               "(rank %u)\nheld locks (outermost first):\n",
               why, name, static_cast<unsigned>(rank));
  for (int i = 0; i < held.depth; ++i) {
    const auto& e = held.entries[i];
    std::fprintf(stderr, "  #%d \"%s\" (rank %u%s) @ %p\n", i, e.name,
                 static_cast<unsigned>(e.rank), e.shared ? ", shared" : "",
                 e.mu);
  }
  std::fprintf(stderr,
               "rule: ranks must STRICTLY DECREASE along any acquisition "
               "chain (see docs/static_analysis.md)\n");
  std::fflush(stderr);
  std::abort();
}

/// Validates a blocking acquisition BEFORE it blocks, so a would-be
/// deadlock reports the cycle instead of hanging.
inline void check_acquire(const void* mu, LockRank rank, const char* name) {
  const auto r = static_cast<std::uint16_t>(rank);
  HeldStack& held = tls_held_stack;
  for (int i = 0; i < held.depth; ++i) {
    const auto& e = held.entries[i];
    if (e.mu == mu)
      rank_abort(held, r, name, "recursive acquisition of the same mutex");
    if (e.rank == static_cast<std::uint16_t>(LockRank::kUnranked)) continue;
    if (rank == LockRank::kUnranked) continue;
    if (e.rank <= r)
      rank_abort(held, r, name, "rank inversion (would form a lock cycle)");
  }
}

/// Records a successful acquisition (blocking or try_lock).
inline void note_acquired(const void* mu, LockRank rank, const char* name,
                          bool shared) {
  HeldStack& held = tls_held_stack;
  if (held.depth >= HeldStack::kMax)
    rank_abort(held, static_cast<std::uint16_t>(rank), name,
               "held-lock stack overflow (>64 locks on one thread)");
  held.entries[held.depth++] = {mu, static_cast<std::uint16_t>(rank), shared,
                                name};
}

/// Removes a released lock (out-of-order release permitted: search from top).
inline void note_released(const void* mu) {
  HeldStack& held = tls_held_stack;
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.entries[i].mu != mu) continue;
    for (int j = i; j + 1 < held.depth; ++j)
      held.entries[j] = held.entries[j + 1];
    --held.depth;
    return;
  }
  // Unlocking a mutex this thread never noted: only possible by misusing the
  // raw primitives; ignore rather than abort (unlock paths run in dtors).
}

/// Test hook: how many ranked locks the calling thread currently holds.
inline int held_lock_count() { return tls_held_stack.depth; }

#else  // !RDB_LOCK_RANK_CHECKS

inline int held_lock_count() { return 0; }

#endif  // RDB_LOCK_RANK_CHECKS

}  // namespace sync_internal

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// std::mutex with Thread Safety Analysis annotations and (debug) lock-rank
/// participation. The rank/name members exist in every build so the type's
/// layout never depends on NDEBUG; the checking CODE compiles out in release
/// (lock() collapses to std::mutex::lock()).
class RDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() noexcept : Mutex(LockRank::kUnranked, "unranked") {}
  explicit Mutex(LockRank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RDB_ACQUIRE() {
#if RDB_LOCK_RANK_CHECKS
    sync_internal::check_acquire(this, rank_, name_);
#endif
    mu_.lock();
#if RDB_LOCK_RANK_CHECKS
    sync_internal::note_acquired(this, rank_, name_, /*shared=*/false);
#endif
  }

  bool try_lock() RDB_TRY_ACQUIRE(true) {
    // No rank check: a non-blocking attempt cannot complete a deadlock
    // cycle. On success the lock still joins the held stack, so later
    // BLOCKING acquisitions are checked against it.
    if (!mu_.try_lock()) return false;
#if RDB_LOCK_RANK_CHECKS
    sync_internal::note_acquired(this, rank_, name_, /*shared=*/false);
#endif
    return true;
  }

  void unlock() RDB_RELEASE() {
#if RDB_LOCK_RANK_CHECKS
    sync_internal::note_released(this);
#endif
    mu_.unlock();
  }

  LockRank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::mutex mu_;
  LockRank rank_;
  const char* name_;
};

// ---------------------------------------------------------------------------
// SharedMutex
// ---------------------------------------------------------------------------

/// std::shared_mutex wrapper; shared (reader) holds participate in rank
/// checking exactly like exclusive holds (reader-vs-writer inversions
/// deadlock just as well).
class RDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() noexcept : SharedMutex(LockRank::kUnranked, "unranked") {}
  explicit SharedMutex(LockRank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() RDB_ACQUIRE() {
#if RDB_LOCK_RANK_CHECKS
    sync_internal::check_acquire(this, rank_, name_);
#endif
    mu_.lock();
#if RDB_LOCK_RANK_CHECKS
    sync_internal::note_acquired(this, rank_, name_, /*shared=*/false);
#endif
  }

  void unlock() RDB_RELEASE() {
#if RDB_LOCK_RANK_CHECKS
    sync_internal::note_released(this);
#endif
    mu_.unlock();
  }

  void lock_shared() RDB_ACQUIRE_SHARED() {
#if RDB_LOCK_RANK_CHECKS
    sync_internal::check_acquire(this, rank_, name_);
#endif
    mu_.lock_shared();
#if RDB_LOCK_RANK_CHECKS
    sync_internal::note_acquired(this, rank_, name_, /*shared=*/true);
#endif
  }

  void unlock_shared() RDB_RELEASE_SHARED() {
#if RDB_LOCK_RANK_CHECKS
    sync_internal::note_released(this);
#endif
    mu_.unlock_shared();
  }

  LockRank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex mu_;
  LockRank rank_;
  const char* name_;
};

// ---------------------------------------------------------------------------
// RAII guards
// ---------------------------------------------------------------------------

/// Scoped exclusive lock with explicit unlock()/lock() for the handful of
/// drop-the-lock-around-a-slow-call patterns (timer dispatch, socket I/O).
///
/// The method bodies are RDB_NO_THREAD_SAFETY_ANALYSIS: the analysis treats
/// a scoped capability's state symbolically through the ACQUIRE/RELEASE
/// contracts below, and analyzing the trivial bodies (which consult the
/// locked_ flag the analysis cannot model) would only produce noise.
/// CALLERS are fully checked against the contracts.
class RDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RDB_ACQUIRE(mu) : mu_(&mu), locked_(true) {
    mu_->lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drops the lock (e.g. around blocking I/O).
  void unlock() RDB_RELEASE() RDB_NO_THREAD_SAFETY_ANALYSIS {
    mu_->unlock();
    locked_ = false;
  }

  /// Reacquires after unlock().
  void lock() RDB_ACQUIRE() RDB_NO_THREAD_SAFETY_ANALYSIS {
    mu_->lock();
    locked_ = true;
  }

  bool owns_lock() const noexcept { return locked_; }

  ~MutexLock() RDB_RELEASE() RDB_NO_THREAD_SAFETY_ANALYSIS {
    if (locked_) mu_->unlock();
  }

 private:
  Mutex* mu_;
  bool locked_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class RDB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) RDB_ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->lock_shared();
  }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  ~ReaderLock() RDB_RELEASE() RDB_NO_THREAD_SAFETY_ANALYSIS {
    mu_->unlock_shared();
  }

 private:
  SharedMutex* mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class RDB_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) RDB_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  ~WriterLock() RDB_RELEASE() RDB_NO_THREAD_SAFETY_ANALYSIS {
    mu_->unlock();
  }

 private:
  SharedMutex* mu_;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// Condition variable bound to rdb::Mutex.
///
/// Deliberately exposes NO predicate overloads: clang's analysis treats a
/// lambda's body as a separate unannotated function, so a predicate that
/// touches RDB_GUARDED_BY fields would defeat -Wthread-safety. Callers
/// write explicit `while (!cond) cv.wait(mu);` loops instead — every wait
/// may wake spuriously, and every stop_token overload returns on
/// notify/timeout/stop with the condition unchecked; re-test it in the loop.
///
/// Implementation: std::condition_variable_any waiting on the Mutex itself
/// (it is BasicLockable), so the unlock/relock inside a wait flows through
/// the lock-rank bookkeeping, and the libstdc++ stop_token machinery —
/// which re-checks the stop state under the cv's internal mutex to close
/// the missed-wakeup window — is reused rather than re-derived.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified (or spuriously woken).
  void wait(Mutex& mu) RDB_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until notified or `st` requests stop. Returns false iff stop
  /// was requested (the caller's loop should exit).
  bool wait(Mutex& mu, std::stop_token st) RDB_REQUIRES(mu) {
    int wakes = 0;
    // The one-shot predicate converts the std "wait until pred" loop into
    // "wait for one notification": false before the first sleep, true after
    // any wakeup. It touches no guarded state, keeping the analysis clean.
    cv_.wait(mu, st, [&wakes] { return wakes++ > 0; });
    return !st.stop_requested();
  }

  template <typename Clock, typename Duration>
  void wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline)
      RDB_REQUIRES(mu) {
    cv_.wait_until(mu, deadline);
  }

  /// Wakes on notify, deadline, or stop. Returns false iff stop requested.
  template <typename Clock, typename Duration>
  bool wait_until(Mutex& mu, std::stop_token st,
                  const std::chrono::time_point<Clock, Duration>& deadline)
      RDB_REQUIRES(mu) {
    int wakes = 0;
    cv_.wait_until(mu, st, deadline, [&wakes] { return wakes++ > 0; });
    return !st.stop_requested();
  }

  template <typename Rep, typename Period>
  void wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      RDB_REQUIRES(mu) {
    cv_.wait_for(mu, timeout);
  }

  /// Wakes on notify, timeout, or stop. Returns false iff stop requested.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu, std::stop_token st,
                const std::chrono::duration<Rep, Period>& timeout)
      RDB_REQUIRES(mu) {
    int wakes = 0;
    cv_.wait_for(mu, st, timeout, [&wakes] { return wakes++ > 0; });
    return !st.stop_requested();
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rdb
