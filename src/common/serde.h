// Minimal binary serialization: little-endian fixed-width writer/reader.
//
// Every wire message in the system serializes through these. The reader is
// bounds-checked and reports truncation through ok(); it never reads past the
// end of its view, so untrusted (byzantine) input cannot cause out-of-bounds
// access.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace rdb {

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }

  /// Length-prefixed (u32) byte string.
  void bytes(BytesView v) {
    u32(static_cast<std::uint32_t>(v.size()));
    raw(v);
  }
  void str(std::string_view s) {
    bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  void digest(const Digest& d) { raw(BytesView(d.data)); }

  /// Unprefixed raw bytes (caller knows the length from context).
  void raw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView view) : view_(view) {}

  std::uint8_t u8() { return get_le<std::uint8_t>(); }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }

  Bytes bytes() {
    std::uint32_t n = u32();
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    Bytes out(view_.begin() + static_cast<std::ptrdiff_t>(pos_),
              view_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }

  Digest digest() {
    Digest d;
    if (remaining() < d.data.size()) {
      ok_ = false;
      return d;
    }
    std::memcpy(d.data.data(), view_.data() + pos_, d.data.size());
    pos_ += d.data.size();
    return d;
  }

  /// True iff no read so far has run past the end of the buffer.
  bool ok() const { return ok_; }
  /// True iff ok() and every byte was consumed. Parsers of untrusted input
  /// MUST finish with done(): trailing bytes mean the frame is not the
  /// canonical serialization of what was parsed (appended garbage, a length
  /// lie, or a smuggled second message) and must be rejected.
  bool done() const { return ok_ && pos_ == view_.size(); }
  /// Marks the stream failed. Deserializers call this when a semantic bound
  /// is violated (e.g. an element count that cannot fit in the remaining
  /// bytes) so the failure is sticky and the caller's ok()/done() checks
  /// reject the input instead of accepting a partially-parsed value.
  void fail() { ok_ = false; }
  std::size_t remaining() const { return view_.size() - pos_; }

 private:
  template <typename T>
  T get_le() {
    if (remaining() < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(view_[pos_ + i]) << (8 * i)));
    pos_ += sizeof(T);
    return v;
  }

  BytesView view_;
  std::size_t pos_{0};
  bool ok_{true};
};

}  // namespace rdb
