#include "common/bytes.h"

namespace rdb {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0F]);
  }
  return out;
}

std::string to_hex(const Digest& d) { return to_hex(BytesView(d.data)); }

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace rdb
