// Compile-time input-taint discipline (docs/static_analysis.md, "Input taint
// discipline").
//
// Everything deserialized from the wire is Byzantine until proven otherwise:
// a malicious primary or client controls every byte of the frame, and the
// paper's §2.2 arguments (malicious-primary equivocation, dark periods) are
// only sound if replicas never act on unvalidated fields. The same playbook
// as src/common/sync.h applied to input validation: make the unsafe state a
// distinct TYPE so the compiler — plus the check_taint grep gate in
// scripts/check_static.sh — forces every byte through a validator before any
// field is reachable.
//
// Type-states:
//
//   Untrusted<T>   what deserialization produces. The payload is reachable
//                  ONLY through the unsafe_*() escape hatches, which the
//                  check_taint gate bans outside the validation module
//                  (src/protocol/validate.cpp) and tests/.
//   Validated<T>   what a validator returns. Read access is free; the value
//                  provably passed the structural + semantic checks for its
//                  type. `Validated<T>::trusted()` wraps values that never
//                  touched the wire (locally constructed messages) — policy:
//                  it must NEVER be applied to deserialized data, which is
//                  enforced transitively because deserialized data is only
//                  reachable via the gated unsafe_*() hatches.
//
// The flow, end to end:
//
//   wire bytes --parse--> Untrusted<Message> --validate(ctx)--> Validated<Message>
//                                |                    |
//                         (fields sealed)      (or a RejectReason,
//                                               counted in stats)
#pragma once

#include <utility>

namespace rdb {

template <typename T>
class Validated;

/// A value of T produced by deserializing attacker-controlled bytes. The
/// payload is sealed: the only accessors carry the `unsafe_` prefix, which
/// scripts/check_static.sh (check_taint stage) bans outside the validation
/// module and tests. Pass it to a validator (src/protocol/validate.h) to get
/// a usable Validated<T> back.
template <typename T>
class Untrusted {
 public:
  Untrusted() = default;
  /// Wrapping is always allowed — adding taint is safe, removing it is not.
  explicit Untrusted(T value) : value_(std::move(value)) {}

  Untrusted(Untrusted&&) noexcept = default;
  Untrusted& operator=(Untrusted&&) noexcept = default;
  Untrusted(const Untrusted&) = default;
  Untrusted& operator=(const Untrusted&) = default;

  /// ESCAPE HATCH — read the tainted payload without validation. Allowed
  /// only inside src/protocol/validate.cpp (which is what validators are)
  /// and tests/ (negative-path tests need to inspect rejected inputs).
  /// Everywhere else the check_taint grep gate fails the build.
  const T& unsafe_get() const& { return value_; }

  /// ESCAPE HATCH — move the tainted payload out. Same policy as
  /// unsafe_get(); validators use it to avoid copying accepted messages.
  T unsafe_release() && { return std::move(value_); }

 private:
  T value_;
};

/// A value of T that passed its validator: every structural and semantic
/// invariant for the type holds (see the validator catalog in
/// docs/static_analysis.md). Constructible only via a validator or — for
/// values that never crossed the wire — via trusted().
template <typename T>
class Validated {
 public:
  /// Wraps a LOCALLY CONSTRUCTED value (own protocol messages, test
  /// fixtures, simulator-internal traffic). Policy: never apply this to
  /// deserialized data — deserialized data lives inside Untrusted<T>, whose
  /// escape hatches are grep-gated, so a trusted() laundering of wire bytes
  /// cannot be written without tripping the gate first.
  static Validated trusted(T value) { return Validated(std::move(value)); }

  Validated(Validated&&) noexcept = default;
  Validated& operator=(Validated&&) noexcept = default;
  Validated(const Validated&) = default;
  Validated& operator=(const Validated&) = default;

  const T& get() const& { return value_; }
  const T& operator*() const& { return value_; }
  const T* operator->() const { return &value_; }

  /// Unwraps. Sound by construction: the payload already passed validation,
  /// so handing out a mutable T grants nothing an attacker controls.
  T release() && { return std::move(value_); }

 private:
  template <typename U>
  friend class Untrusted;
  // Validators live in src/protocol/validate.cpp; they mint Validated<T>
  // through trusted() after every check passed (the value they wrap came
  // out of an Untrusted<T> via the gated hatch, inside the one module
  // allowed to use it).
  explicit Validated(T value) : value_(std::move(value)) {}

  T value_;
};

}  // namespace rdb
