// Measurement helpers: streaming counters, latency histogram with percentile
// queries, and a tiny fixed-point saturation gauge used to reproduce the
// thread-saturation plots (Figure 9 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rdb {

/// Log-bucketed latency histogram over nanoseconds. Buckets grow
/// geometrically (~8% per bucket), covering 100ns .. ~1000s with < 400
/// buckets; percentile error is bounded by bucket width.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(std::uint64_t ns);
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  double mean_ns() const;
  /// p in [0, 100]; returns an upper bound of the bucket containing the
  /// p-th percentile sample.
  double percentile_ns(double p) const;
  double min_ns() const { return count_ ? static_cast<double>(min_) : 0.0; }
  double max_ns() const { return count_ ? static_cast<double>(max_) : 0.0; }

  void reset();

 private:
  std::size_t bucket_for(std::uint64_t ns) const;

  std::vector<std::uint64_t> buckets_;
  std::vector<double> upper_bounds_;
  std::uint64_t count_{0};
  double sum_{0};
  std::uint64_t min_{0};
  std::uint64_t max_{0};
};

/// Busy-time accumulator for one pipeline thread. Saturation over a window is
/// busy_time / window — the quantity Figure 9 plots per thread.
class SaturationGauge {
 public:
  void add_busy(std::uint64_t ns) { busy_ns_ += ns; }
  std::uint64_t busy_ns() const { return busy_ns_; }

  /// Percent of the window this thread spent busy (0..100).
  double percent(std::uint64_t window_ns) const {
    if (window_ns == 0) return 0.0;
    return 100.0 * static_cast<double>(busy_ns_) /
           static_cast<double>(window_ns);
  }
  void reset() { busy_ns_ = 0; }

 private:
  std::uint64_t busy_ns_{0};
};

/// Summary of one experiment run; every bench prints rows of these.
struct RunMetrics {
  double throughput_tps{0};      // client transactions committed per second
  double ops_per_sec{0};         // individual operations executed per second
  double latency_avg_ms{0};      // client-observed request latency
  double latency_p50_ms{0};
  double latency_p99_ms{0};
  std::uint64_t committed_txns{0};
  std::uint64_t consensus_rounds{0};
};

std::string format_tps(double tps);

}  // namespace rdb
