#include "common/logging.h"

namespace rdb {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel lvl, const std::string& msg) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  MutexLock lock(mu_);
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(lvl)],
               msg.c_str());
}

void log_debug(const std::string& msg) {
  Logger::instance().log(LogLevel::kDebug, msg);
}
void log_info(const std::string& msg) {
  Logger::instance().log(LogLevel::kInfo, msg);
}
void log_warn(const std::string& msg) {
  Logger::instance().log(LogLevel::kWarn, msg);
}
void log_error(const std::string& msg) {
  Logger::instance().log(LogLevel::kError, msg);
}

}  // namespace rdb
