// Deterministic-execution annotations (the repo's third compile-time
// discipline, after TSA locks in sync.h and wire taint in taint.h).
//
// Replicas are state machines: safety rests on every honest replica deriving
// BIT-IDENTICAL state from the same ordered input. Hidden nondeterminism —
// unordered-container iteration order, clock reads, ambient RNG, locale —
// silently forks histories in ways no protocol-level test catches until two
// replicas disagree about a digest in production.
//
// RDB_DETERMINISTIC marks a function as a *det-zone root*: everything
// transitively reachable from it must avoid the banned catalog
// (scripts/check_determinism.py walks the call graph and enforces this):
//
//   - wall/steady/hi-res clocks (`std::chrono::*_clock`, clock_gettime,
//     gettimeofday, time())
//   - `rand`/`srand`, `std::random_device`, any nondeterministically-seeded
//     RNG
//   - `getenv`, `setlocale`, `std::locale`
//   - range-iteration of `std::unordered_map` / `std::unordered_set`
//     (bucket order depends on hash seeding and allocation history)
//   - pointer-keyed ordered containers (`std::map<T*, ...>`,
//     `std::set<T*>` — address order varies run to run)
//   - float formatting (`%f`/`%g`/`%e`, `std::setprecision` — locale- and
//     libc-dependent digit strings)
//
// RDB_DET_BARRIER marks a function that *neutralizes* a nondeterministic
// source before any caller can observe it (e.g. KvStore::for_each_sorted
// collects unordered iteration into a vector and sorts it). The lint stops
// walking at barriers; every barrier must also be listed — with an in-file
// justification — in scripts/determinism_allowlist.txt.
//
// The annotated roots (the det-zone map, see docs/static_analysis.md §7):
//   - engine handlers in protocol/{pbft,poe,zyzzyva}.h — everything between
//     "message in" and "Actions out" must replay identically
//   - message serialization / signing bytes (protocol/messages.h) and the
//     serde primitives they use
//   - ledger append + accumulator (ledger/blockchain.h)
//   - snapshot capture (runtime/replica.h) and the canonical KV image
//   - the KvStore apply path (workload execute functions)
//   - the model checker's transition function and oracles (mc/model.h,
//     mc/oracles.h, mc/trace.h, mc/replay.h) — state fingerprints dedup the
//     explored graph and replayed traces must reproduce violations
//     byte-for-byte, so apply_transition and everything under it replay
//     identically; only the exploration layer (mc/explorer.h) may use
//     unordered containers and seeded RNG
//
// Like the TSA macros, the attribute is carried by clang's `annotate` and
// compiles to nothing elsewhere, so GCC builds are unaffected; the textual
// engine of check_determinism.py still sees the token and enforces the walk
// on every toolchain.
#pragma once

#if defined(__clang__)
#define RDB_DET_ATTRIBUTE(x) [[clang::annotate(x)]]
#else
#define RDB_DET_ATTRIBUTE(x)  // no-op off clang
#endif

/// Det-zone root: this function and everything it transitively calls must be
/// free of the banned nondeterminism catalog above.
#define RDB_DETERMINISTIC RDB_DET_ATTRIBUTE("rdb::deterministic")

/// Determinism barrier: this function internally touches a nondeterministic
/// source but provably neutralizes it (sorting, counting, reduction with a
/// commutative monoid) before returning. Must appear in
/// scripts/determinism_allowlist.txt with a justification.
#define RDB_DET_BARRIER RDB_DET_ATTRIBUTE("rdb::det_barrier")
