// Hot-path resource discipline (the repo's fifth compile-time discipline,
// after TSA locks in sync.h, wire taint in taint.h, the det-zone in det.h,
// and the action-dispatch gate).
//
// The paper's central lesson is architectural: throughput comes from keeping
// the ordering path free of redundant work — copies, allocations, blocking —
// not from protocol cleverness. Every per-message malloc or hidden sleep on
// the consensus critical path multiplies under RCC-style multi-primary
// operation (ROADMAP item 1) and caps the event-driven transport rework
// (item 3) before it starts. This header makes those resources statically
// visible and mechanically banned.
//
// RDB_HOT_PATH marks a function as a *hot-zone root*: everything transitively
// reachable from it must avoid the banned catalog
// (scripts/check_hotpath.py walks the call graph and enforces this):
//
//   - naked heap allocation (`new`, `make_unique`, `make_shared`,
//     malloc/calloc/realloc/strdup)
//   - `std::function` construction (type-erased callables allocate)
//   - naked blocking: sleeps (`sleep_for`, `sleep_until`, usleep/nanosleep)
//     and unbounded condition waits (`cv.wait(...)` with no deadline)
//   - synchronous file I/O (fopen/fsync/fwrite/fread, std::{o,i,f}stream,
//     pread/pwrite)
//
// The annotated roots (the hot-zone map, see docs/static_analysis.md §8):
//   - engine handlers in protocol/{pbft,poe,zyzzyva}.h — message-in to
//     Actions-out is the ordering path itself
//   - Message::serialize / signing_bytes and the serde primitives
//   - the Replica pipeline stage loops (input, batch, verify, worker,
//     execute, checkpoint, output) and the broadcast/enqueue helpers
//   - transport send paths (InprocTransport/TcpTransport/send_raw/
//     send_frame) up to the per-peer queue handoff
//
// RDB_HOT_BARRIER marks a function that touches a banned resource but is
// *proven bounded*: it must carry an in-file proof comment saying why the
// cost is amortized or bounded (BufferPool::acquire's heap fallback is
// counted and pool-sizable; the group-commit fsync runs once per execution
// wave; a stage's ingress pop blocks only when the stage is idle). The lint
// stops walking at barriers; every barrier must also be listed in
// scripts/hotpath_allowlist.txt.
//
// Runtime half — the allocation tripwire: with -DRDB_ALLOC_TRIPWIRE=ON the
// global operator new/delete (rtzone.cpp) report every heap allocation to a
// thread-local counter armed by rtzone::AllocScope. The Replica pipeline
// arms one scope per stage iteration and surfaces the totals as
// ReplicaStats::hot_path_allocs[stage]; Runtime.HotPathSteadyStateZeroAlloc
// asserts that after warmup the annotated stages allocate within their
// budgets (zero for the steady-state stages; any nonzero budget is named in
// scripts/hotpath_allowlist.txt).
//
// Like the TSA/det macros, the attribute rides clang's `annotate` and
// compiles to nothing elsewhere; the textual engine of check_hotpath.py
// still sees the token and enforces the walk on every toolchain.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__clang__)
#define RDB_RT_ATTRIBUTE(x) [[clang::annotate(x)]]
#else
#define RDB_RT_ATTRIBUTE(x)  // no-op off clang
#endif

/// Hot-zone root: this function and everything it transitively calls must be
/// free of the banned resource catalog above.
#define RDB_HOT_PATH RDB_RT_ATTRIBUTE("rdb::hot_path")

/// Hot-zone barrier: this function internally touches a banned resource but
/// provably bounds it (counted fallback, once-per-wave amortization,
/// idle-only blocking). Must appear in scripts/hotpath_allowlist.txt with a
/// justification, and carry an in-file proof comment.
#define RDB_HOT_BARRIER RDB_RT_ATTRIBUTE("rdb::hot_barrier")

namespace rdb::rtzone {

/// The Replica pipeline stages the allocation tripwire distinguishes
/// (mirrors the thread layout in runtime/replica.h).
enum class Stage : std::uint8_t {
  kInput = 0,
  kBatch,
  kVerify,
  kWorker,
  kExecute,
  kCheckpoint,
  kOutput,
  kCount,
};
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount);

const char* stage_name(Stage s);

/// True when the build carries the operator new/delete hooks
/// (-DRDB_ALLOC_TRIPWIRE=ON); AllocScope still counts note_alloc() calls in
/// every build, but only hooked builds feed it real heap traffic.
bool tripwire_enabled();

namespace detail {
/// The armed counter for this thread, or nullptr when no scope is active.
/// Defined in rtzone.cpp so the hooks and the scopes agree on one TLS slot.
std::uint64_t* exchange_counter(std::uint64_t* next);
std::uint64_t* current_counter();
}  // namespace detail

/// Reports one heap allocation to the armed scope (if any). The operator new
/// hooks call this; tests may call it directly to exercise scope semantics
/// in builds without the hooks.
inline void note_alloc() {
  if (std::uint64_t* c = detail::current_counter()) ++*c;
}

/// Arms `counter` as this thread's allocation sink for the scope's lifetime.
/// Nests: an inner scope counts into its own counter, the outer resumes when
/// it ends (allocations are attributed to the innermost scope only). Each
/// thread has its own slot — scopes never observe another thread's traffic.
class AllocScope {
 public:
  explicit AllocScope(std::uint64_t& counter)
      : prev_(detail::exchange_counter(&counter)) {}
  ~AllocScope() { detail::exchange_counter(prev_); }

  AllocScope(const AllocScope&) = delete;
  AllocScope& operator=(const AllocScope&) = delete;

 private:
  std::uint64_t* prev_;
};

}  // namespace rdb::rtzone
