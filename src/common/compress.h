// Small self-contained LZ codec for snapshot blobs.
//
// Snapshot state transfer (protocol::SnapshotResponse) ships an entire KV
// image over the wire; YCSB-style images are highly repetitive (shared key
// prefixes, zero-padded values), so even a simple LZSS-family codec shrinks
// them several-fold without adding a dependency.
//
// Format: a sequence of groups, each led by one control byte covering the
// next 8 items, LSB first. Control bit 1 = a literal byte; bit 0 = a match
// [offset u16 LE][extra u8] copying (extra + kMinMatch) bytes from `offset`
// bytes back (1-based, may overlap the output tail — the RLE case).
//
// lz_decompress is written for UNTRUSTED input: every offset and length is
// bounds-checked and the output is capped at max_out, so a hostile blob can
// neither read out of bounds nor balloon the allocation. It returns nullopt
// on any malformed token; the caller (the snapshot install path) then
// discards the response — the kv_digest check would have failed anyway.
#pragma once

#include <optional>

#include "common/bytes.h"

namespace rdb {

/// Compresses `in`. Never fails; incompressible input grows by at most
/// 1 control byte per 8 literals (~12.5%).
Bytes lz_compress(BytesView in);

/// Decompresses `in`, refusing to produce more than `max_out` bytes.
/// Returns nullopt on malformed input (bad offset, truncated token, or
/// output over the cap).
std::optional<Bytes> lz_decompress(BytesView in, std::size_t max_out);

}  // namespace rdb
