// Minimal leveled logger. Off by default in benches; tests flip levels per
// fixture. Thread-safe via a single mutex — logging is for diagnosis, not the
// hot path.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace rdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) { level_ = lvl; }
  LogLevel level() const { return level_; }

  void log(LogLevel lvl, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_{LogLevel::kWarn};
  std::mutex mu_;
};

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace rdb
