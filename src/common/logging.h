// Minimal leveled logger. Off by default in benches; tests flip levels per
// fixture. Thread-safe via a single mutex — logging is for diagnosis, not the
// hot path.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>

#include "common/sync.h"

namespace rdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) {
    level_.store(lvl, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  void log(LogLevel lvl, const std::string& msg) RDB_EXCLUDES(mu_);

 private:
  Logger() = default;
  // Atomic: tests flip the level while worker threads log concurrently.
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Mutex mu_{LockRank::kLogging, "Logger"};
};

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace rdb
