// Bounded lock-free multi-producer multi-consumer queue (Dmitry Vyukov's
// sequence-number design). This is the "common queue" of §4.3: the input
// thread enqueues client requests and any idle batch-thread consumes them,
// with no contention on a lock.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace rdb {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to the next power of two.
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Returns false if the queue is full.
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      auto diff = static_cast<std::ptrdiff_t>(seq) -
                  static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Returns false if the queue is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      auto diff = static_cast<std::ptrdiff_t>(seq) -
                  static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate size; exact only when quiescent.
  std::size_t size_approx() const {
    auto e = enqueue_pos_.load(std::memory_order_relaxed);
    auto d = dequeue_pos_.load(std::memory_order_relaxed);
    return e >= d ? e - d : 0;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> sequence;
    T value;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace rdb
