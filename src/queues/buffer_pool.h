// Object buffer pool (§4.8): a fixed population of reusable objects created
// at initialization so the steady state performs no malloc/free. acquire()
// hands out a pooled object (falling back to heap allocation if the pool is
// drained, so correctness never depends on pool sizing); release() returns it.
//
// PooledPtr is a unique_ptr-style RAII handle that releases back to its pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/rtzone.h"
#include "queues/mpmc_queue.h"

namespace rdb {

template <typename T>
class BufferPool {
 public:
  explicit BufferPool(std::size_t population)
      : free_list_(population + 1), storage_(population) {
    for (auto& obj : storage_) free_list_.try_push(&obj);
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  struct Handle {
    T* ptr{nullptr};
    bool heap{false};  // true if allocated outside the pool population
  };

  /// HOT BARRIER: steady state serves from the lock-free free list with
  /// zero allocation; the `new` below is the COUNTED pool-drained fallback
  /// (misses stat) that keeps correctness independent of pool sizing.
  RDB_HOT_BARRIER
  Handle acquire() {
    T* obj = nullptr;
    if (free_list_.try_pop(obj)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return {obj, false};
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return {new T(), true};
  }

  void release(Handle h) {
    if (h.ptr == nullptr) return;
    if (h.heap) {
      delete h.ptr;
      return;
    }
    *h.ptr = T{};  // scrub state before the object re-enters circulation
    free_list_.try_push(h.ptr);
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t population() const { return storage_.size(); }

 private:
  MpmcQueue<T*> free_list_;
  std::vector<T> storage_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// RAII wrapper: returns the object to its pool on destruction.
template <typename T>
class PooledPtr {
 public:
  PooledPtr() = default;
  PooledPtr(BufferPool<T>* pool, typename BufferPool<T>::Handle h)
      : pool_(pool), handle_(h) {}

  PooledPtr(PooledPtr&& other) noexcept
      : pool_(other.pool_), handle_(other.handle_) {
    other.pool_ = nullptr;
    other.handle_ = {};
  }
  PooledPtr& operator=(PooledPtr&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      handle_ = other.handle_;
      other.pool_ = nullptr;
      other.handle_ = {};
    }
    return *this;
  }
  PooledPtr(const PooledPtr&) = delete;
  PooledPtr& operator=(const PooledPtr&) = delete;

  ~PooledPtr() { reset(); }

  void reset() {
    if (pool_ != nullptr) pool_->release(handle_);
    pool_ = nullptr;
    handle_ = {};
  }

  T* get() const { return handle_.ptr; }
  T* operator->() const { return handle_.ptr; }
  T& operator*() const { return *handle_.ptr; }
  explicit operator bool() const { return handle_.ptr != nullptr; }

 private:
  BufferPool<T>* pool_{nullptr};
  typename BufferPool<T>::Handle handle_{};
};

template <typename T>
PooledPtr<T> acquire_pooled(BufferPool<T>& pool) {
  return PooledPtr<T>(&pool, pool.acquire());
}

}  // namespace rdb
