// Frame ownership type-state for wire buffers (the buffer-ownership model
// ROADMAP items 1 and 3 build on).
//
// A serialized wire frame has exactly one OWNER and any number of BORROWS:
//
//   OwnedFrame  — move-only owner of the bytes. Destroying it returns the
//                 slab to its FramePool (or frees the heap fallback). The
//                 only type that can release storage.
//   FrameView   — copyable, read-only borrow. Statically cannot free or
//                 mutate (no such member exists) and cannot outlive the
//                 owner: every live view holds a borrow count the owner's
//                 destructor checks — destroying an OwnedFrame with
//                 outstanding views is a fail-stop, not a use-after-free.
//
// Serialize-once broadcast is the motivating shape: build ONE OwnedFrame,
// hand N FrameViews to the transport (Transport::send_frame), destroy the
// owner after the last send returns. The pool makes the steady state
// malloc-free: FramePool preallocates `population` slabs of `slab_bytes`
// each; acquire() falls back to a heap slab when the pool is drained or the
// frame is oversize (counted, so sizing is observable — correctness never
// depends on it, mirroring BufferPool §4.8).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/rtzone.h"
#include "queues/mpmc_queue.h"

namespace rdb {

class FramePool;
class FrameView;

namespace detail {
/// Storage + borrow bookkeeping for one frame. Pooled slabs live in their
/// FramePool's storage (stable addresses); heap fallbacks and adopted
/// buffers own a standalone slab deleted on release.
struct FrameSlab {
  Bytes buf;             // pooled: capacity slab_bytes, never reallocated
  std::size_t len{0};    // live bytes of the current frame
  FramePool* pool{nullptr};  // nullptr = heap-owned slab
  std::atomic<std::uint32_t> borrows{0};
};
}  // namespace detail

/// Move-only owner of one wire frame's bytes. Obtained from
/// FramePool::acquire()/acquire_copy() or OwnedFrame::adopt().
class OwnedFrame {
 public:
  OwnedFrame() = default;

  /// Wraps an already-materialized buffer without copying (heap-owned slab;
  /// the serialize-once broadcast path adopts the Writer's output directly).
  ///
  /// HOT BARRIER: allocates one small control block per adopted frame —
  /// i.e. once per broadcast WAVE, amortized over the n-1 fan-out sends
  /// that share the frame — and takes the payload buffer itself zero-copy.
  RDB_HOT_BARRIER
  static OwnedFrame adopt(Bytes bytes);

  OwnedFrame(OwnedFrame&& other) noexcept
      : slab_(std::exchange(other.slab_, nullptr)) {}
  OwnedFrame& operator=(OwnedFrame&& other) noexcept {
    if (this != &other) {
      reset();
      slab_ = std::exchange(other.slab_, nullptr);
    }
    return *this;
  }
  OwnedFrame(const OwnedFrame&) = delete;
  OwnedFrame& operator=(const OwnedFrame&) = delete;

  ~OwnedFrame() { reset(); }

  /// Releases the storage. Fail-stops if any FrameView is still live — a
  /// view outliving its owner is a use-after-free in the making, and the
  /// type-state exists to make that impossible to ship.
  void reset();

  std::uint8_t* data() { return slab_ ? slab_->buf.data() : nullptr; }
  const std::uint8_t* data() const {
    return slab_ ? slab_->buf.data() : nullptr;
  }
  std::size_t size() const { return slab_ ? slab_->len : 0; }
  bool empty() const { return size() == 0; }
  BytesView bytes() const { return BytesView(data(), size()); }
  explicit operator bool() const { return slab_ != nullptr; }

  /// True when the bytes live in a preallocated pool slab (steady-state
  /// path); false for heap fallbacks and adopted buffers.
  bool pooled() const { return slab_ != nullptr && slab_->pool != nullptr; }

  /// Borrows a read-only view. The view must be destroyed before this owner.
  FrameView view() const;

  /// Live borrow count (observability for tests).
  std::uint32_t outstanding_views() const {
    return slab_ ? slab_->borrows.load(std::memory_order_acquire) : 0;
  }

 private:
  friend class FramePool;
  explicit OwnedFrame(detail::FrameSlab* slab) : slab_(slab) {}
  detail::FrameSlab* slab_{nullptr};
};

/// Read-only borrow of an OwnedFrame's bytes. Copyable; offers no mutation
/// and no release — the owner alone frees. to_bytes() is the one explicit
/// copy, for sinks that must own their input (in-process inboxes).
class FrameView {
 public:
  FrameView() = default;
  FrameView(const FrameView& other) : slab_(other.slab_) { borrow(); }
  FrameView& operator=(const FrameView& other) {
    if (this != &other) {
      unborrow();
      slab_ = other.slab_;
      borrow();
    }
    return *this;
  }
  FrameView(FrameView&& other) noexcept
      : slab_(std::exchange(other.slab_, nullptr)) {}
  FrameView& operator=(FrameView&& other) noexcept {
    if (this != &other) {
      unborrow();
      slab_ = std::exchange(other.slab_, nullptr);
    }
    return *this;
  }
  ~FrameView() { unborrow(); }

  const std::uint8_t* data() const {
    return slab_ ? slab_->buf.data() : nullptr;
  }
  std::size_t size() const { return slab_ ? slab_->len : 0; }
  bool empty() const { return size() == 0; }
  BytesView bytes() const { return BytesView(data(), size()); }
  explicit operator bool() const { return slab_ != nullptr; }

  /// Explicit owning copy (the only way bytes leave the borrow).
  Bytes to_bytes() const { return Bytes(data(), data() + size()); }

 private:
  friend class OwnedFrame;
  explicit FrameView(detail::FrameSlab* slab) : slab_(slab) { borrow(); }
  void borrow() {
    if (slab_) slab_->borrows.fetch_add(1, std::memory_order_acq_rel);
  }
  void unborrow() {
    if (slab_) slab_->borrows.fetch_sub(1, std::memory_order_acq_rel);
    slab_ = nullptr;
  }
  detail::FrameSlab* slab_{nullptr};
};

inline FrameView OwnedFrame::view() const { return FrameView(slab_); }

/// Fixed population of frame slabs; steady state acquires perform no heap
/// allocation. Thread-safe (lock-free free list).
class FramePool {
 public:
  FramePool(std::size_t population, std::size_t slab_bytes)
      : slab_bytes_(slab_bytes), free_(population + 1), storage_(population) {
    for (auto& slab : storage_) {
      slab.buf.reserve(slab_bytes_);
      slab.pool = this;
      free_.try_push(&slab);
    }
  }

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// A frame with room for `n` bytes (uninitialized). Pool slab when `n`
  /// fits and the pool isn't drained; heap fallback otherwise (counted).
  ///
  /// HOT BARRIER: steady state pops a preallocated slab and resizes within
  /// reserved capacity — zero allocation; the `new` below is the COUNTED
  /// oversize/pool-drained fallback (heap_fallbacks stat), so correctness
  /// never depends on pool sizing.
  RDB_HOT_BARRIER
  OwnedFrame acquire(std::size_t n) {
    if (n <= slab_bytes_) {
      detail::FrameSlab* slab = nullptr;
      if (free_.try_pop(slab)) {
        slab->buf.resize(n);  // within reserved capacity: no allocation
        slab->len = n;
        pooled_.fetch_add(1, std::memory_order_relaxed);
        return OwnedFrame(slab);
      }
    }
    heap_fallback_.fetch_add(1, std::memory_order_relaxed);
    auto* slab = new detail::FrameSlab();
    slab->buf.resize(n);
    slab->len = n;
    return OwnedFrame(slab);
  }

  /// Acquire + copy in one step (the transport enqueue path).
  OwnedFrame acquire_copy(BytesView src) {
    OwnedFrame f = acquire(src.size());
    if (!src.empty()) std::copy(src.begin(), src.end(), f.data());
    return f;
  }

  std::uint64_t pooled_acquires() const {
    return pooled_.load(std::memory_order_relaxed);
  }
  std::uint64_t heap_fallbacks() const {
    return heap_fallback_.load(std::memory_order_relaxed);
  }
  std::size_t population() const { return storage_.size(); }
  std::size_t slab_bytes() const { return slab_bytes_; }

 private:
  friend class OwnedFrame;
  void release(detail::FrameSlab* slab) {
    slab->len = 0;
    free_.try_push(slab);  // capacity == population: never fails
  }

  std::size_t slab_bytes_;
  MpmcQueue<detail::FrameSlab*> free_;
  std::deque<detail::FrameSlab> storage_;  // stable addresses
  std::atomic<std::uint64_t> pooled_{0};
  std::atomic<std::uint64_t> heap_fallback_{0};
};

inline OwnedFrame OwnedFrame::adopt(Bytes bytes) {
  auto* slab = new detail::FrameSlab();
  slab->len = bytes.size();
  slab->buf = std::move(bytes);
  return OwnedFrame(slab);
}

inline void OwnedFrame::reset() {
  if (slab_ == nullptr) return;
  if (std::uint32_t live = slab_->borrows.load(std::memory_order_acquire);
      live != 0) {
    // A live FrameView would dangle the instant this storage is recycled.
    log_error("OwnedFrame destroyed with " + std::to_string(live) +
              " outstanding FrameView borrow(s) — use-after-free averted by "
              "fail-stop");
    std::abort();
  }
  if (slab_->pool != nullptr) {
    slab_->pool->release(slab_);
  } else {
    delete slab_;
  }
  slab_ = nullptr;
}

}  // namespace rdb
