// Unbounded blocking queue with shutdown, for pipeline edges where the
// consumer should sleep when idle (output threads, checkpoint thread). Not
// the hot path — consensus-critical edges use the lock-free queues.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/rtzone.h"
#include "common/sync.h"

namespace rdb {

template <typename T>
class BlockingQueue {
 public:
  void push(T value) {
    {
      MutexLock lock(mu_);
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocks until an item arrives or the queue is shut down; nullopt on
  /// shutdown with an empty queue.
  ///
  /// HOT BARRIER: the wait is IDLE-ONLY — it blocks exactly when the queue
  /// is empty (the consuming stage has no work to stall) and every push
  /// notifies, so a queued message never sits behind the sleep. Unbounded
  /// by design: shutdown() wakes all sleepers for teardown.
  RDB_HOT_BARRIER
  std::optional<T> pop() {
    MutexLock lock(mu_);
    while (items_.empty() && !shutdown_) cv_.wait(mu_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Like pop(), but gives up after `timeout`; nullopt on timeout/shutdown.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (items_.empty() && !shutdown_ &&
           std::chrono::steady_clock::now() < deadline)
      cv_.wait_until(mu_, deadline);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  std::optional<T> try_pop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Drains up to `max` items into `out` (appending) under ONE lock hold —
  /// the burst-collection primitive for batch consumers. Never blocks;
  /// returns the number of items taken (0 when the queue is empty).
  std::size_t try_pop_n(std::vector<T>& out, std::size_t max) {
    MutexLock lock(mu_);
    std::size_t taken = 0;
    while (taken < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    return taken;
  }

  void shutdown() {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_{LockRank::kQueue, "BlockingQueue"};
  CondVar cv_;
  std::deque<T> items_ RDB_GUARDED_BY(mu_);
  bool shutdown_ RDB_GUARDED_BY(mu_) = false;
};

}  // namespace rdb
