// Unbounded blocking queue with shutdown, for pipeline edges where the
// consumer should sleep when idle (output threads, checkpoint thread). Not
// the hot path — consensus-critical edges use the lock-free queues.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rdb {

template <typename T>
class BlockingQueue {
 public:
  void push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocks until an item arrives or the queue is shut down; nullopt on
  /// shutdown with an empty queue.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || shutdown_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Like pop(), but gives up after `timeout`; nullopt on timeout/shutdown.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return !items_.empty() || shutdown_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool shutdown_{false};
};

}  // namespace rdb
