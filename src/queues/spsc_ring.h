// Bounded wait-free single-producer single-consumer ring buffer. Used on the
// worker-thread -> execute-thread edge, where exactly one thread sits at each
// end of the pipe.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

namespace rdb {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  bool try_push(T value) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;  // full
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) {
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;  // empty
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

 private:
  std::unique_ptr<T[]> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace rdb
