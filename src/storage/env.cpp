#include "storage/env.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace rdb::storage {

const char* storage_errc_name(StorageErrc c) {
  switch (c) {
    case StorageErrc::kOpenFailed: return "storage_open_failed";
    case StorageErrc::kReadFailed: return "storage_read_failed";
    case StorageErrc::kWriteFailed: return "storage_write_failed";
    case StorageErrc::kSyncFailed: return "storage_sync_failed";
    case StorageErrc::kTruncateFailed: return "storage_truncate_failed";
    case StorageErrc::kRemoveFailed: return "storage_remove_failed";
    case StorageErrc::kRenameFailed: return "storage_rename_failed";
    case StorageErrc::kCrashPoint: return "storage_crash_point";
    case StorageErrc::kFailStop: return "storage_fail_stop";
  }
  return "storage_unknown";
}

namespace {

[[noreturn]] void throw_errno(StorageErrc code, const std::string& what) {
  throw StorageError(code, what + " (" + std::strerror(errno) + ")");
}

class PosixFile final : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::size_t read(std::uint64_t offset, void* out, std::size_t n) override {
    std::size_t done = 0;
    auto* p = static_cast<std::uint8_t*>(out);
    while (done < n) {
      ssize_t r = ::pread(fd_, p + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        throw_errno(StorageErrc::kReadFailed, path_);
      }
      if (r == 0) break;  // EOF
      done += static_cast<std::size_t>(r);
    }
    return done;
  }

  void write(std::uint64_t offset, const void* data, std::size_t n) override {
    std::size_t done = 0;
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (done < n) {
      ssize_t r = ::pwrite(fd_, p + done, n - done,
                           static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        throw_errno(StorageErrc::kWriteFailed, path_);
      }
      done += static_cast<std::size_t>(r);
    }
  }

  void sync() override {
    if (::fsync(fd_) != 0) throw_errno(StorageErrc::kSyncFailed, path_);
  }

  std::uint64_t size() override {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) throw_errno(StorageErrc::kReadFailed, path_);
    return static_cast<std::uint64_t>(st.st_size);
  }

  void truncate(std::uint64_t len) override {
    if (::ftruncate(fd_, static_cast<off_t>(len)) != 0)
      throw_errno(StorageErrc::kTruncateFailed, path_);
  }

 private:
  int fd_;
  std::string path_;
};

class RealEnv final : public Env {
 public:
  std::unique_ptr<File> open(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) throw_errno(StorageErrc::kOpenFailed, path);
    return std::make_unique<PosixFile>(fd, path);
  }

  bool exists(const std::string& path) override {
    return std::filesystem::exists(path);
  }

  void remove(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) throw StorageError(StorageErrc::kRemoveFailed,
                               path + " (" + ec.message() + ")");
  }

  void rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0)
      throw_errno(StorageErrc::kRenameFailed, from + " -> " + to);
  }

  void make_dirs(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) throw StorageError(StorageErrc::kOpenFailed,
                               path + " (" + ec.message() + ")");
  }
};

}  // namespace

Env& Env::real() {
  static RealEnv env;
  return env;
}

}  // namespace rdb::storage
