#include "storage/page_db.h"

#include <cstring>
#include <filesystem>
#ifdef __unix__
#include <unistd.h>
#endif
#include <functional>
#include <stdexcept>
#include <vector>

namespace rdb::storage {

namespace {

constexpr std::uint64_t kMagic = 0x5244425047444231ULL;  // "RDBPGDB1"
constexpr std::size_t kPageHeaderSize = 10;  // next (u64) + used (u16)
constexpr std::size_t kRecordHeaderSize = 7; // klen u16 + vlen u32 + flags u8
constexpr std::uint8_t kFlagDead = 0x01;

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void store_u64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}
std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void store_u32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof(v));
}
std::uint16_t load_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void store_u16(std::uint8_t* p, std::uint16_t v) {
  std::memcpy(p, &v, sizeof(v));
}

std::size_t record_size(std::size_t klen, std::size_t vlen) {
  return kRecordHeaderSize + klen + vlen;
}

}  // namespace

PageDb::PageDb(PageDbConfig config) : config_(std::move(config)) {
  bool fresh = !std::filesystem::exists(config_.path);
  file_ = std::fopen(config_.path.c_str(), fresh ? "w+b" : "r+b");
  if (file_ == nullptr)
    throw std::runtime_error("PageDb: cannot open " + config_.path);

  if (fresh) {
    // header + directory pages, all zeroed.
    page_count_ = 1 + directory_pages();
    std::vector<std::uint8_t> zero(kPageSize, 0);
    for (std::uint64_t p = 0; p < page_count_; ++p) {
      if (std::fwrite(zero.data(), 1, kPageSize, file_) != kPageSize)
        throw std::runtime_error("PageDb: init write failed");
    }
    write_header();
    std::fflush(file_);
  } else {
    read_header();
  }

  std::string wal_path = config_.path + ".wal";
  bool wal_exists = std::filesystem::exists(wal_path) &&
                    std::filesystem::file_size(wal_path) > 0;
  if (wal_exists) {
    wal_ = std::fopen(wal_path.c_str(), "r+b");
    if (wal_ == nullptr) throw std::runtime_error("PageDb: cannot open WAL");
    {
      // wal_replay() requires mu_; scope the hold so checkpoint() (which
      // locks mu_ itself) does not deadlock.
      MutexLock lock(mu_);
      wal_replay();
    }
    checkpoint();
  } else {
    wal_ = std::fopen(wal_path.c_str(), "w+b");
    if (wal_ == nullptr) throw std::runtime_error("PageDb: cannot open WAL");
  }

  // Count live records once so size() is O(1) afterwards.
  MutexLock lock(mu_);
  record_count_ = 0;
  for (std::uint32_t b = 0; b < config_.bucket_count; ++b) {
    std::uint64_t pid = bucket_head(b);
    while (pid != 0) {
      Page& page = fetch_page(pid);
      const std::uint8_t* d = page.data.get();
      std::uint16_t used = load_u16(d + 8);
      std::size_t off = kPageHeaderSize;
      while (off < kPageHeaderSize + used) {
        std::uint16_t klen = load_u16(d + off);
        std::uint32_t vlen = load_u32(d + off + 2);
        std::uint8_t flags = d[off + 6];
        if (!(flags & kFlagDead)) ++record_count_;
        off += record_size(klen, vlen);
      }
      pid = load_u64(d);
    }
  }
}

PageDb::~PageDb() {
  try {
    checkpoint();
  } catch (...) {
    // Destructors must not throw; the WAL still holds the data.
  }
  if (file_ != nullptr) std::fclose(file_);
  if (wal_ != nullptr) std::fclose(wal_);
}

std::uint64_t PageDb::directory_pages() const {
  std::uint64_t entries_per_page = kPageSize / 8;
  return (config_.bucket_count + entries_per_page - 1) / entries_per_page;
}

void PageDb::write_header() {
  std::uint8_t hdr[kPageSize] = {};
  store_u64(hdr, kMagic);
  store_u32(hdr + 8, static_cast<std::uint32_t>(kPageSize));
  store_u32(hdr + 12, config_.bucket_count);
  store_u64(hdr + 16, page_count_);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(hdr, 1, kPageSize, file_) != kPageSize)
    throw std::runtime_error("PageDb: header write failed");
}

void PageDb::read_header() {
  std::uint8_t hdr[kPageSize];
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fread(hdr, 1, kPageSize, file_) != kPageSize)
    throw std::runtime_error("PageDb: header read failed");
  if (load_u64(hdr) != kMagic)
    throw std::runtime_error("PageDb: bad magic in " + config_.path);
  if (load_u32(hdr + 8) != kPageSize)
    throw std::runtime_error("PageDb: page size mismatch");
  config_.bucket_count = load_u32(hdr + 12);
  page_count_ = load_u64(hdr + 16);
}

void PageDb::read_page_from_file(std::uint64_t page_id, std::uint8_t* out) {
  if (std::fseek(file_, static_cast<long>(page_id * kPageSize), SEEK_SET) != 0)
    throw std::runtime_error("PageDb: seek failed");
  std::size_t n = std::fread(out, 1, kPageSize, file_);
  if (n != kPageSize) {
    // Page past current EOF (freshly allocated): serve zeros.
    std::memset(out, 0, kPageSize);
  }
}

void PageDb::flush_page(std::uint64_t page_id, Page& page) {
  if (!page.dirty) return;
  if (std::fseek(file_, static_cast<long>(page_id * kPageSize), SEEK_SET) !=
          0 ||
      std::fwrite(page.data.get(), 1, kPageSize, file_) != kPageSize)
    throw std::runtime_error("PageDb: page write failed");
  page.dirty = false;
  ++page_stats_.pages_flushed;
}

void PageDb::evict_if_needed() {
  while (cache_.size() > config_.cache_pages) {
    // Evict the least-recently-used page, flushing it first if dirty.
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (victim == cache_.end() || it->second.lru_tick < victim->second.lru_tick)
        victim = it;
    }
    if (victim == cache_.end()) return;
    flush_page(victim->first, victim->second);
    cache_.erase(victim);
  }
}

PageDb::Page& PageDb::fetch_page(std::uint64_t page_id) {
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    ++page_stats_.cache_hits;
    it->second.lru_tick = ++lru_clock_;
    return it->second;
  }
  ++page_stats_.cache_misses;
  Page page;
  page.data = std::make_unique<std::uint8_t[]>(kPageSize);
  read_page_from_file(page_id, page.data.get());
  page.lru_tick = ++lru_clock_;
  auto [ins, ok] = cache_.emplace(page_id, std::move(page));
  (void)ok;
  evict_if_needed();
  // evict_if_needed never evicts the page we just touched (highest tick,
  // and cache_pages >= 1), so the iterator from a fresh find is valid.
  return cache_.find(page_id)->second;
}

std::uint64_t PageDb::allocate_page() {
  std::uint64_t id = page_count_++;
  Page page;
  page.data = std::make_unique<std::uint8_t[]>(kPageSize);
  std::memset(page.data.get(), 0, kPageSize);
  page.dirty = true;
  page.lru_tick = ++lru_clock_;
  cache_.emplace(id, std::move(page));
  evict_if_needed();
  return id;
}

std::uint64_t PageDb::bucket_head(std::uint32_t bucket) {
  std::uint64_t entries_per_page = kPageSize / 8;
  std::uint64_t page_id = 1 + bucket / entries_per_page;
  std::uint64_t slot = bucket % entries_per_page;
  Page& page = fetch_page(page_id);
  return load_u64(page.data.get() + slot * 8);
}

void PageDb::set_bucket_head(std::uint32_t bucket, std::uint64_t page_id) {
  std::uint64_t entries_per_page = kPageSize / 8;
  std::uint64_t dir_page = 1 + bucket / entries_per_page;
  std::uint64_t slot = bucket % entries_per_page;
  Page& page = fetch_page(dir_page);
  store_u64(page.data.get() + slot * 8, page_id);
  page.dirty = true;
}

std::optional<std::string> PageDb::get_locked(std::string_view key) {
  std::uint32_t bucket =
      std::hash<std::string_view>{}(key) % config_.bucket_count;
  std::uint64_t pid = bucket_head(bucket);
  while (pid != 0) {
    Page& page = fetch_page(pid);
    const std::uint8_t* d = page.data.get();
    std::uint16_t used = load_u16(d + 8);
    std::size_t off = kPageHeaderSize;
    while (off < kPageHeaderSize + used) {
      std::uint16_t klen = load_u16(d + off);
      std::uint32_t vlen = load_u32(d + off + 2);
      std::uint8_t flags = d[off + 6];
      if (!(flags & kFlagDead) && klen == key.size() &&
          std::memcmp(d + off + kRecordHeaderSize, key.data(), klen) == 0) {
        return std::string(
            reinterpret_cast<const char*>(d + off + kRecordHeaderSize + klen),
            vlen);
      }
      off += record_size(klen, vlen);
    }
    pid = load_u64(d);
  }
  return std::nullopt;
}

bool PageDb::put_locked(std::string_view key, std::string_view value) {
  std::uint32_t bucket =
      std::hash<std::string_view>{}(key) % config_.bucket_count;
  std::uint64_t head = bucket_head(bucket);
  std::uint64_t pid = head;
  std::uint64_t last_pid = 0;
  bool existed = false;

  // Pass 1: find an existing live record; overwrite in place if it fits.
  while (pid != 0) {
    Page& page = fetch_page(pid);
    std::uint8_t* d = page.data.get();
    std::uint16_t used = load_u16(d + 8);
    std::size_t off = kPageHeaderSize;
    while (off < kPageHeaderSize + used) {
      std::uint16_t klen = load_u16(d + off);
      std::uint32_t vlen = load_u32(d + off + 2);
      std::uint8_t flags = d[off + 6];
      if (!(flags & kFlagDead) && klen == key.size() &&
          std::memcmp(d + off + kRecordHeaderSize, key.data(), klen) == 0) {
        existed = true;
        if (vlen == value.size()) {
          std::memcpy(d + off + kRecordHeaderSize + klen, value.data(), vlen);
          page.dirty = true;
          return existed;
        }
        d[off + 6] |= kFlagDead;  // size changed: kill and re-append below
        page.dirty = true;
      }
      off += record_size(klen, vlen);
    }
    last_pid = pid;
    pid = load_u64(d);
  }

  // Pass 2: append into the first chain page with room.
  std::size_t need = record_size(key.size(), value.size());
  if (need > kPageSize - kPageHeaderSize)
    throw std::runtime_error("PageDb: record larger than a page");

  pid = head;
  while (pid != 0) {
    Page& page = fetch_page(pid);
    std::uint8_t* d = page.data.get();
    std::uint16_t used = load_u16(d + 8);
    if (kPageHeaderSize + used + need <= kPageSize) {
      std::size_t off = kPageHeaderSize + used;
      store_u16(d + off, static_cast<std::uint16_t>(key.size()));
      store_u32(d + off + 2, static_cast<std::uint32_t>(value.size()));
      d[off + 6] = 0;
      std::memcpy(d + off + kRecordHeaderSize, key.data(), key.size());
      std::memcpy(d + off + kRecordHeaderSize + key.size(), value.data(),
                  value.size());
      store_u16(d + 8, static_cast<std::uint16_t>(used + need));
      page.dirty = true;
      return existed;
    }
    last_pid = pid;
    pid = load_u64(d);
  }

  // No room anywhere: allocate a page and link it into the chain.
  std::uint64_t fresh = allocate_page();
  {
    Page& page = fetch_page(fresh);
    std::uint8_t* d = page.data.get();
    std::size_t off = kPageHeaderSize;
    store_u16(d + off, static_cast<std::uint16_t>(key.size()));
    store_u32(d + off + 2, static_cast<std::uint32_t>(value.size()));
    d[off + 6] = 0;
    std::memcpy(d + off + kRecordHeaderSize, key.data(), key.size());
    std::memcpy(d + off + kRecordHeaderSize + key.size(), value.data(),
                value.size());
    store_u16(d + 8, static_cast<std::uint16_t>(need));
    page.dirty = true;
  }
  if (last_pid == 0) {
    set_bucket_head(bucket, fresh);
  } else {
    Page& tail = fetch_page(last_pid);
    store_u64(tail.data.get(), fresh);
    tail.dirty = true;
  }
  return existed;
}

void PageDb::put(std::string_view key, std::string_view value) {
  MutexLock lock(mu_);
  wal_append(key, value);
  bool existed = put_locked(key, value);
  if (!existed) ++record_count_;
  ++kv_stats_.writes;
}

std::optional<std::string> PageDb::get(std::string_view key) {
  MutexLock lock(mu_);
  auto out = get_locked(key);
  ++kv_stats_.reads;
  if (!out) ++kv_stats_.read_misses;
  return out;
}

bool PageDb::contains(std::string_view key) {
  MutexLock lock(mu_);
  return get_locked(key).has_value();
}

std::uint64_t PageDb::size() const {
  MutexLock lock(mu_);
  return record_count_;
}

StoreStats PageDb::stats() const {
  MutexLock lock(mu_);
  return kv_stats_;
}

PageDbStats PageDb::page_stats() const {
  MutexLock lock(mu_);
  return page_stats_;
}

void PageDb::checkpoint() {
  MutexLock lock(mu_);
  for (auto& [pid, page] : cache_) flush_page(pid, page);
  write_header();
  std::fflush(file_);
  wal_truncate();
}

void PageDb::wal_append(std::string_view key, std::string_view value) {
  std::uint8_t hdr[6];
  store_u16(hdr, static_cast<std::uint16_t>(key.size()));
  store_u32(hdr + 2, static_cast<std::uint32_t>(value.size()));
  if (std::fwrite(hdr, 1, sizeof(hdr), wal_) != sizeof(hdr) ||
      std::fwrite(key.data(), 1, key.size(), wal_) != key.size() ||
      std::fwrite(value.data(), 1, value.size(), wal_) != value.size())
    throw std::runtime_error("PageDb: WAL append failed");
  std::fflush(wal_);
  if (config_.sync_wal) {
#ifdef __unix__
    fsync(fileno(wal_));
#endif
  }
  ++page_stats_.wal_appends;
}

void PageDb::wal_replay() {
  std::fseek(wal_, 0, SEEK_SET);
  for (;;) {
    std::uint8_t hdr[6];
    if (std::fread(hdr, 1, sizeof(hdr), wal_) != sizeof(hdr)) break;
    std::uint16_t klen = load_u16(hdr);
    std::uint32_t vlen = load_u32(hdr + 2);
    std::string key(klen, '\0');
    std::string value(vlen, '\0');
    if (std::fread(key.data(), 1, klen, wal_) != klen) break;
    if (std::fread(value.data(), 1, vlen, wal_) != vlen) break;
    bool existed = put_locked(key, value);
    if (!existed) ++record_count_;
    ++page_stats_.wal_replayed;
  }
}

void PageDb::wal_truncate() {
  std::fclose(wal_);
  std::string wal_path = config_.path + ".wal";
  wal_ = std::fopen(wal_path.c_str(), "w+b");
  if (wal_ == nullptr) throw std::runtime_error("PageDb: WAL truncate failed");
}

}  // namespace rdb::storage
