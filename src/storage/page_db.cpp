#include "storage/page_db.h"

#include <cstring>
#include <functional>
#include <stdexcept>
#include <vector>

namespace rdb::storage {

namespace {

constexpr std::uint64_t kMagic = 0x5244425047444231ULL;  // "RDBPGDB1"
constexpr std::size_t kPageHeaderSize = 10;  // next (u64) + used (u16)
constexpr std::size_t kRecordHeaderSize = 7; // klen u16 + vlen u32 + flags u8
constexpr std::uint8_t kFlagDead = 0x01;
constexpr std::size_t kWalPayloadHeader = 6; // klen u16 + vlen u32

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void store_u64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}
std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void store_u32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof(v));
}
std::uint16_t load_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void store_u16(std::uint8_t* p, std::uint16_t v) {
  std::memcpy(p, &v, sizeof(v));
}

std::size_t record_size(std::size_t klen, std::size_t vlen) {
  return kRecordHeaderSize + klen + vlen;
}

}  // namespace

PageDb::PageDb(PageDbConfig config) : config_(std::move(config)) {
  Env& env = config_.env ? *config_.env : Env::real();
  MutexLock lock(mu_);
  file_ = env.open(config_.path);
  if (file_->size() == 0) {
    init_fresh_file();
  } else {
    read_header();
  }

  WalConfig wc;
  wc.path = config_.path + ".wal";
  wc.env = config_.env;
  wal_ = std::make_unique<Wal>(std::move(wc));
  wal_replay();
  const WalStats& ws = wal_->stats();
  if (ws.records_replayed > 0 || ws.tail_truncated) {
    // Absorb the replayed history into the data file so the next crash has a
    // shorter log to chew through. Crash-safe: the WAL is only reset after
    // the data file is fsynced.
    checkpoint_locked();
  }

  count_records();
}

PageDb::~PageDb() {
  try {
    MutexLock lock(mu_);
    checkpoint_locked();
  } catch (...) {
    // Destructors must not throw; the WAL still holds the data (and after a
    // FaultyEnv crash point there is deliberately nothing left to flush).
  }
}

std::uint64_t PageDb::directory_pages() const {
  std::uint64_t entries_per_page = kPageSize / 8;
  return (config_.bucket_count + entries_per_page - 1) / entries_per_page;
}

void PageDb::init_fresh_file() {
  // Header + directory pages, all zeroed, laid down with ONE write so a
  // crash during creation leaves either nothing or a truncated file that the
  // next open re-initializes (size()==0 is not the only fresh shape, but
  // read_header rejects a short/torn header with a clear error).
  page_count_ = 1 + directory_pages();
  std::vector<std::uint8_t> zero(page_count_ * kPageSize, 0);
  file_->write(0, zero.data(), zero.size());
  write_header();
  file_->sync();
}

void PageDb::write_header() {
  std::uint8_t hdr[kPageSize] = {};
  store_u64(hdr, kMagic);
  store_u32(hdr + 8, static_cast<std::uint32_t>(kPageSize));
  store_u32(hdr + 12, config_.bucket_count);
  store_u64(hdr + 16, page_count_);
  file_->write(0, hdr, kPageSize);
}

void PageDb::read_header() {
  std::uint8_t hdr[kPageSize];
  if (file_->read(0, hdr, kPageSize) != kPageSize)
    throw std::runtime_error("PageDb: header read failed");
  if (load_u64(hdr) != kMagic)
    throw std::runtime_error("PageDb: bad magic in " + config_.path);
  if (load_u32(hdr + 8) != kPageSize)
    throw std::runtime_error("PageDb: page size mismatch");
  config_.bucket_count = load_u32(hdr + 12);
  page_count_ = load_u64(hdr + 16);
}

void PageDb::read_page_from_file(std::uint64_t page_id, std::uint8_t* out) {
  std::size_t n = file_->read(page_id * kPageSize, out, kPageSize);
  // Past current EOF (freshly allocated, or allocated-but-never-flushed
  // before a crash): serve zeros; the WAL replay re-creates the contents.
  if (n < kPageSize) std::memset(out + n, 0, kPageSize - n);
}

void PageDb::flush_page(std::uint64_t page_id, Page& page) {
  if (!page.dirty) return;
  // WAL-before-data: a stolen (evicted) page may carry puts whose wave has
  // not committed yet. Force the log first so a crash never leaves a record
  // in the data file that the log cannot account for.
  if (wal_) wal_->commit();
  file_->write(page_id * kPageSize, page.data.get(), kPageSize);
  page.dirty = false;
  ++page_stats_.pages_flushed;
}

void PageDb::evict_if_needed() {
  // Determinism barrier (allowlisted): this scans the UNORDERED page cache,
  // but only as a min-reduction over lru_tick — ticks come from a monotonic
  // counter, so they are unique and the minimum is the same page no matter
  // the visit order. The choice of victim (hence all observable effects) is
  // therefore deterministic despite the unordered iteration.
  while (cache_.size() > config_.cache_pages) {
    // Evict the least-recently-used page, flushing it first if dirty.
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (victim == cache_.end() || it->second.lru_tick < victim->second.lru_tick)
        victim = it;
    }
    if (victim == cache_.end()) return;
    flush_page(victim->first, victim->second);
    cache_.erase(victim);
  }
}

PageDb::Page& PageDb::fetch_page(std::uint64_t page_id) {
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    ++page_stats_.cache_hits;
    it->second.lru_tick = ++lru_clock_;
    return it->second;
  }
  ++page_stats_.cache_misses;
  Page page;
  page.data = std::make_unique<std::uint8_t[]>(kPageSize);
  read_page_from_file(page_id, page.data.get());
  page.lru_tick = ++lru_clock_;
  auto [ins, ok] = cache_.emplace(page_id, std::move(page));
  (void)ok;
  evict_if_needed();
  // evict_if_needed never evicts the page we just touched (highest tick,
  // and cache_pages >= 1), so the iterator from a fresh find is valid.
  return cache_.find(page_id)->second;
}

std::uint64_t PageDb::allocate_page() {
  std::uint64_t id = page_count_++;
  Page page;
  page.data = std::make_unique<std::uint8_t[]>(kPageSize);
  std::memset(page.data.get(), 0, kPageSize);
  page.dirty = true;
  page.lru_tick = ++lru_clock_;
  cache_.emplace(id, std::move(page));
  evict_if_needed();
  return id;
}

std::uint64_t PageDb::bucket_head(std::uint32_t bucket) {
  std::uint64_t entries_per_page = kPageSize / 8;
  std::uint64_t page_id = 1 + bucket / entries_per_page;
  std::uint64_t slot = bucket % entries_per_page;
  Page& page = fetch_page(page_id);
  return load_u64(page.data.get() + slot * 8);
}

void PageDb::set_bucket_head(std::uint32_t bucket, std::uint64_t page_id) {
  std::uint64_t entries_per_page = kPageSize / 8;
  std::uint64_t dir_page = 1 + bucket / entries_per_page;
  std::uint64_t slot = bucket % entries_per_page;
  Page& page = fetch_page(dir_page);
  store_u64(page.data.get() + slot * 8, page_id);
  page.dirty = true;
}

std::optional<std::string> PageDb::get_locked(std::string_view key) {
  std::uint32_t bucket =
      std::hash<std::string_view>{}(key) % config_.bucket_count;
  std::uint64_t pid = bucket_head(bucket);
  while (pid != 0) {
    Page& page = fetch_page(pid);
    const std::uint8_t* d = page.data.get();
    std::uint16_t used = load_u16(d + 8);
    std::size_t off = kPageHeaderSize;
    while (off < kPageHeaderSize + used) {
      std::uint16_t klen = load_u16(d + off);
      std::uint32_t vlen = load_u32(d + off + 2);
      std::uint8_t flags = d[off + 6];
      if (!(flags & kFlagDead) && klen == key.size() &&
          std::memcmp(d + off + kRecordHeaderSize, key.data(), klen) == 0) {
        return std::string(
            reinterpret_cast<const char*>(d + off + kRecordHeaderSize + klen),
            vlen);
      }
      off += record_size(klen, vlen);
    }
    pid = load_u64(d);
  }
  return std::nullopt;
}

bool PageDb::put_locked(std::string_view key, std::string_view value) {
  std::uint32_t bucket =
      std::hash<std::string_view>{}(key) % config_.bucket_count;
  std::uint64_t head = bucket_head(bucket);
  std::uint64_t pid = head;
  std::uint64_t last_pid = 0;
  bool existed = false;
  bool written = false;

  // Pass 1: overwrite the first live record in place if the size matches;
  // every OTHER live record for this key is retired. Duplicates arise from a
  // crash between "mark dead" and "append resized" reaching disk — this scan
  // is where they get repaired.
  while (pid != 0) {
    Page& page = fetch_page(pid);
    std::uint8_t* d = page.data.get();
    std::uint16_t used = load_u16(d + 8);
    std::size_t off = kPageHeaderSize;
    while (off < kPageHeaderSize + used) {
      std::uint16_t klen = load_u16(d + off);
      std::uint32_t vlen = load_u32(d + off + 2);
      std::uint8_t flags = d[off + 6];
      if (!(flags & kFlagDead) && klen == key.size() &&
          std::memcmp(d + off + kRecordHeaderSize, key.data(), klen) == 0) {
        existed = true;
        if (!written && vlen == value.size()) {
          std::memcpy(d + off + kRecordHeaderSize + klen, value.data(), vlen);
          written = true;
        } else {
          d[off + 6] |= kFlagDead;  // size changed (or duplicate): retire
        }
        page.dirty = true;
      }
      off += record_size(klen, vlen);
    }
    last_pid = pid;
    pid = load_u64(d);
  }
  if (written) return existed;

  // Pass 2: append into the first chain page with room.
  std::size_t need = record_size(key.size(), value.size());
  if (need > kPageSize - kPageHeaderSize)
    throw std::runtime_error("PageDb: record larger than a page");

  pid = head;
  while (pid != 0) {
    Page& page = fetch_page(pid);
    std::uint8_t* d = page.data.get();
    std::uint16_t used = load_u16(d + 8);
    if (kPageHeaderSize + used + need <= kPageSize) {
      std::size_t off = kPageHeaderSize + used;
      store_u16(d + off, static_cast<std::uint16_t>(key.size()));
      store_u32(d + off + 2, static_cast<std::uint32_t>(value.size()));
      d[off + 6] = 0;
      std::memcpy(d + off + kRecordHeaderSize, key.data(), key.size());
      std::memcpy(d + off + kRecordHeaderSize + key.size(), value.data(),
                  value.size());
      store_u16(d + 8, static_cast<std::uint16_t>(used + need));
      page.dirty = true;
      return existed;
    }
    last_pid = pid;
    pid = load_u64(d);
  }

  // No room anywhere: allocate a page and link it into the chain.
  std::uint64_t fresh = allocate_page();
  {
    Page& page = fetch_page(fresh);
    std::uint8_t* d = page.data.get();
    std::size_t off = kPageHeaderSize;
    store_u16(d + off, static_cast<std::uint16_t>(key.size()));
    store_u32(d + off + 2, static_cast<std::uint32_t>(value.size()));
    d[off + 6] = 0;
    std::memcpy(d + off + kRecordHeaderSize, key.data(), key.size());
    std::memcpy(d + off + kRecordHeaderSize + key.size(), value.data(),
                value.size());
    store_u16(d + 8, static_cast<std::uint16_t>(need));
    page.dirty = true;
  }
  if (last_pid == 0) {
    set_bucket_head(bucket, fresh);
  } else {
    Page& tail = fetch_page(last_pid);
    store_u64(tail.data.get(), fresh);
    tail.dirty = true;
  }
  return existed;
}

void PageDb::put(std::string_view key, std::string_view value) {
  MutexLock lock(mu_);
  wal_append(key, value);
  bool existed = put_locked(key, value);
  if (!existed) ++record_count_;
  ++kv_stats_.writes;
  if (config_.sync_wal) wal_->commit();
}

std::optional<std::string> PageDb::get(std::string_view key) {
  MutexLock lock(mu_);
  auto out = get_locked(key);
  ++kv_stats_.reads;
  if (!out) ++kv_stats_.read_misses;
  return out;
}

bool PageDb::contains(std::string_view key) {
  MutexLock lock(mu_);
  return get_locked(key).has_value();
}

std::uint64_t PageDb::size() const {
  MutexLock lock(mu_);
  return record_count_;
}

StoreStats PageDb::stats() const {
  MutexLock lock(mu_);
  return kv_stats_;
}

PageDbStats PageDb::page_stats() const {
  MutexLock lock(mu_);
  PageDbStats out = page_stats_;
  const WalStats& ws = wal_->stats();
  out.wal_appends = ws.records_appended;
  out.wal_replayed = ws.records_replayed;
  out.wal_commits = ws.commits;
  out.wal_truncated_bytes = ws.truncated_bytes;
  out.wal_tail_truncated = ws.tail_truncated;
  return out;
}

void PageDb::for_each(const VisitFn& fn) {
  // Visit order is bucket-chain/page-slot order, which depends on the
  // store's full insertion/compaction HISTORY — not just its current
  // contents — so two replicas with identical records can still visit in
  // different orders. Order-insensitive consumers only; digest-bound
  // callers use KvStore::for_each_sorted (the determinism barrier).
  MutexLock lock(mu_);
  for (std::uint32_t b = 0; b < config_.bucket_count; ++b) {
    std::uint64_t pid = bucket_head(b);
    while (pid != 0) {
      Page& page = fetch_page(pid);
      const std::uint8_t* d = page.data.get();
      std::uint16_t used = load_u16(d + 8);
      std::size_t off = kPageHeaderSize;
      while (off < kPageHeaderSize + used) {
        std::uint16_t klen = load_u16(d + off);
        std::uint32_t vlen = load_u32(d + off + 2);
        std::uint8_t flags = d[off + 6];
        if (!(flags & kFlagDead)) {
          fn(std::string_view(
                 reinterpret_cast<const char*>(d + off + kRecordHeaderSize),
                 klen),
             std::string_view(reinterpret_cast<const char*>(
                                  d + off + kRecordHeaderSize + klen),
                              vlen));
        }
        off += record_size(klen, vlen);
      }
      pid = load_u64(d);
    }
  }
}

void PageDb::clear() {
  MutexLock lock(mu_);
  cache_.clear();
  file_->truncate(0);
  init_fresh_file();
  wal_->reset();
  record_count_ = 0;
}

void PageDb::commit_wave() {
  MutexLock lock(mu_);
  wal_->commit();
}

void PageDb::checkpoint() {
  MutexLock lock(mu_);
  checkpoint_locked();
}

void PageDb::checkpoint_locked() {
  // Order matters for crash safety:
  //   1. force the log (pending puts are already applied to cached pages —
  //      if the flush below dies halfway, the log must cover them),
  //   2. flush every dirty page + the header and fsync the DATA file,
  //   3. only then truncate the log.
  // A crash anywhere before step 3 recovers by replaying the intact log over
  // whatever mix of old/new pages reached the platter.
  wal_->commit();
  for (auto& [pid, page] : cache_) flush_page(pid, page);
  write_header();
  file_->sync();  // fail-stop: StorageError(kSyncFailed) propagates
  wal_->reset();
}

void PageDb::count_records() {
  record_count_ = 0;
  for (std::uint32_t b = 0; b < config_.bucket_count; ++b) {
    std::uint64_t pid = bucket_head(b);
    while (pid != 0) {
      Page& page = fetch_page(pid);
      const std::uint8_t* d = page.data.get();
      std::uint16_t used = load_u16(d + 8);
      std::size_t off = kPageHeaderSize;
      while (off < kPageHeaderSize + used) {
        std::uint16_t klen = load_u16(d + off);
        std::uint32_t vlen = load_u32(d + off + 2);
        std::uint8_t flags = d[off + 6];
        if (!(flags & kFlagDead)) ++record_count_;
        off += record_size(klen, vlen);
      }
      pid = load_u64(d);
    }
  }
}

void PageDb::wal_append(std::string_view key, std::string_view value) {
  std::uint8_t buf[kWalPayloadHeader];
  store_u16(buf, static_cast<std::uint16_t>(key.size()));
  store_u32(buf + 2, static_cast<std::uint32_t>(value.size()));
  Bytes payload;
  payload.reserve(kWalPayloadHeader + key.size() + value.size());
  payload.insert(payload.end(), buf, buf + sizeof(buf));
  payload.insert(payload.end(), key.begin(), key.end());
  payload.insert(payload.end(), value.begin(), value.end());
  wal_->append(BytesView(payload.data(), payload.size()));
}

void PageDb::wal_replay() {
  // Decode into a flat list first (the lambda touches no guarded state, which
  // keeps the thread-safety analysis honest), then apply under mu_. The list
  // is bounded by one checkpoint interval's worth of puts.
  std::vector<std::pair<std::string, std::string>> records;
  wal_->replay([&records](std::uint64_t /*lsn*/, BytesView payload) {
    // Malformed payloads cannot appear here — the Wal's CRC already vouched
    // for the bytes — but stay defensive about lengths anyway.
    if (payload.size() < kWalPayloadHeader) return;
    std::uint16_t klen = load_u16(payload.data());
    std::uint32_t vlen = load_u32(payload.data() + 2);
    if (payload.size() < kWalPayloadHeader + klen + vlen) return;
    const char* base =
        reinterpret_cast<const char*>(payload.data() + kWalPayloadHeader);
    records.emplace_back(std::string(base, klen),
                         std::string(base + klen, vlen));
  });
  for (const auto& [key, value] : records) {
    bool existed = put_locked(key, value);
    if (!existed) ++record_count_;
  }
}

}  // namespace rdb::storage
