#include "storage/wal.h"

#include <cstring>
#include <vector>

#include "storage/crc32c.h"

namespace rdb::storage {

namespace {

constexpr std::uint32_t kRecordMagic = 0x57414C52u;  // "RWAL"
constexpr std::size_t kRecordHeader = 4 + 4 + 8 + 4;

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void store_u32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof(v));
}
void store_u64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

/// CRC over the lsn and the payload — the fields a splice or bit flip would
/// have to forge together.
std::uint32_t record_crc(std::uint64_t lsn, BytesView payload) {
  std::uint8_t lsn_le[8];
  store_u64(lsn_le, lsn);
  std::uint32_t crc = crc32c(lsn_le, sizeof(lsn_le));
  return crc32c(payload.data(), payload.size(), crc);
}

}  // namespace

Wal::Wal(WalConfig config) : config_(std::move(config)) {
  Env& env = config_.env ? *config_.env : Env::real();
  file_ = env.open(config_.path);
}

void Wal::ensure_usable() const {
  if (failed_)
    throw StorageError(StorageErrc::kFailStop,
                       "wal " + config_.path +
                           ": earlier fsync failure, refusing further writes");
}

void Wal::replay(const ReplayFn& fn) {
  ensure_usable();
  std::uint64_t total = file_->size();
  std::vector<std::uint8_t> buf(total);
  if (total > 0 && file_->read(0, buf.data(), total) != total)
    throw StorageError(StorageErrc::kReadFailed,
                       "wal " + config_.path + ": short read during replay");

  std::size_t pos = 0;
  std::uint64_t expect_lsn = 1;
  for (;;) {
    if (total - pos < kRecordHeader) break;  // clean end or torn header
    const std::uint8_t* rec = buf.data() + pos;
    if (load_u32(rec) != kRecordMagic) break;
    std::uint32_t len = load_u32(rec + 4);
    std::uint64_t lsn = load_u64(rec + 8);
    std::uint32_t crc = load_u32(rec + 16);
    if (total - pos - kRecordHeader < len) break;  // torn payload
    BytesView payload(rec + kRecordHeader, len);
    if (record_crc(lsn, payload) != crc) break;    // bit rot / torn overlap
    if (lsn != expect_lsn) break;  // stale bytes from a recycled region
    fn(lsn, payload);
    ++stats_.records_replayed;
    ++expect_lsn;
    pos += kRecordHeader + len;
  }

  // Truncate at the first bad record: everything before `pos` verified,
  // everything after is a torn tail (or garbage) that must never be
  // replayed — and must not survive to confuse the NEXT recovery either.
  if (pos < total) {
    stats_.truncated_bytes += total - pos;
    stats_.tail_truncated = true;
    file_->truncate(pos);
  }
  file_end_ = pos;
  next_lsn_ = expect_lsn;
  replayed_ = true;
}

std::uint64_t Wal::append(BytesView payload) {
  ensure_usable();
  std::uint64_t lsn = next_lsn_++;
  std::uint8_t hdr[kRecordHeader];
  store_u32(hdr, kRecordMagic);
  store_u32(hdr + 4, static_cast<std::uint32_t>(payload.size()));
  store_u64(hdr + 8, lsn);
  store_u32(hdr + 16, record_crc(lsn, payload));
  pending_.insert(pending_.end(), hdr, hdr + sizeof(hdr));
  pending_.insert(pending_.end(), payload.begin(), payload.end());
  ++stats_.records_appended;
  return lsn;
}

void Wal::commit() {
  ensure_usable();
  if (pending_.empty()) return;
  try {
    file_->write(file_end_, pending_.data(), pending_.size());
    if (config_.sync_on_commit) file_->sync();
  } catch (const StorageError& e) {
    if (e.code() == StorageErrc::kSyncFailed) failed_ = true;
    throw;
  }
  file_end_ += pending_.size();
  pending_.clear();
  ++stats_.commits;
}

void Wal::reset() {
  ensure_usable();
  pending_.clear();
  file_->truncate(0);
  file_end_ = 0;
  next_lsn_ = 1;
}

}  // namespace rdb::storage
