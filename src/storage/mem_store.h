// In-memory key-value store: hash map sharded across lock stripes so the
// execute thread(s) and checkpoint thread can touch disjoint keys without
// contending on one lock.
#pragma once

#include <array>
#include <unordered_map>

#include "common/sync.h"
#include "storage/kv_store.h"

namespace rdb::storage {

class MemStore final : public KvStore {
 public:
  static constexpr std::size_t kStripes = 16;

  void put(std::string_view key, std::string_view value) override;
  std::optional<std::string> get(std::string_view key) override;
  bool contains(std::string_view key) override;
  std::uint64_t size() const override;
  StoreStats stats() const override;
  std::string name() const override { return "mem"; }
  void for_each(const VisitFn& fn) override;
  void clear() override;

 private:
  struct Stripe {
    // Stripes share one rank: they are only ever locked one at a time
    // (size() walks them sequentially, releasing each before the next).
    mutable Mutex mu{LockRank::kStorageStripe, "MemStore.stripe"};
    std::unordered_map<std::string, std::string> map RDB_GUARDED_BY(mu);
  };

  Stripe& stripe_for(std::string_view key);
  const Stripe& stripe_for(std::string_view key) const;

  std::array<Stripe, kStripes> stripes_;
  mutable Mutex stats_mu_{LockRank::kStorageStats, "MemStore.stats"};
  StoreStats stats_ RDB_GUARDED_BY(stats_mu_);
};

}  // namespace rdb::storage
