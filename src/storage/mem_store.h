// In-memory key-value store: hash map sharded across lock stripes so the
// execute thread(s) and checkpoint thread can touch disjoint keys without
// contending on one lock.
#pragma once

#include <array>
#include <mutex>
#include <unordered_map>

#include "storage/kv_store.h"

namespace rdb::storage {

class MemStore final : public KvStore {
 public:
  static constexpr std::size_t kStripes = 16;

  void put(std::string_view key, std::string_view value) override;
  std::optional<std::string> get(std::string_view key) override;
  bool contains(std::string_view key) override;
  std::uint64_t size() const override;
  StoreStats stats() const override;
  std::string name() const override { return "mem"; }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::string> map;
  };

  Stripe& stripe_for(std::string_view key);
  const Stripe& stripe_for(std::string_view key) const;

  std::array<Stripe, kStripes> stripes_;
  mutable std::mutex stats_mu_;
  StoreStats stats_;
};

}  // namespace rdb::storage
