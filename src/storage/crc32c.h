// CRC32C (Castagnoli, the polynomial used by iSCSI/ext4/LevelDB) for WAL
// record checksums. Chosen over CRC32 (zlib) for its better Hamming distance
// at the record sizes the WAL writes, and over a cryptographic hash because a
// torn-write detector needs speed, not collision resistance — the records it
// protects never cross a trust boundary (the log is this replica's own disk).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rdb::storage {

/// One-shot CRC32C over `n` bytes. `seed` chains incremental computations:
/// crc32c(ab) == crc32c(b, len_b, crc32c(a, len_a)).
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace rdb::storage
