// Storage fault injection — the disk-side sibling of FaultyTransport.
//
// FaultyEnv decorates a real Env and executes a deterministic StorageFaultPlan
// against every file opened through it:
//
//   * Crash points: the Nth write() call (counted across all files, 1-based)
//     persists only a configurable prefix (a torn write: the power died while
//     the sector stream was in flight), and from then on the whole env
//     behaves like a machine that lost power — every operation throws
//     StorageError(kCrashPoint). The crash-point matrix in storage_test.cpp
//     iterates N over every write boundary of a workload.
//   * fsync failure: the Nth sync() call throws StorageError(kSyncFailed)
//     once, without crashing the env — models a kernel write-back error
//     (fsyncgate). The component under test must fail-stop, not retry.
//
// After a crash, `revive(plan)` resets the env so the test can "reboot the
// machine": reopen the same on-disk files and run recovery against a fresh
// plan. The bytes already persisted (including the torn prefix) are exactly
// what recovery sees.
#pragma once

#include <cstdint>
#include <memory>

#include "storage/env.h"

namespace rdb::storage {

struct StorageFaultPlan {
  /// Crash on the Nth write() (1-based, counted across every file). 0 = off.
  std::uint64_t crash_after_writes{0};
  /// Fraction (0..100) of the crashing write that still reaches the file
  /// before the power dies. 0 = the final write is lost entirely; 100 = the
  /// write landed and the crash falls between it and the next operation.
  std::uint32_t torn_write_percent{0};
  /// Throw kSyncFailed on the Nth sync() call (1-based), once. 0 = off.
  std::uint64_t fail_sync_number{0};
};

struct StorageFaultCounters {
  std::uint64_t writes{0};
  std::uint64_t syncs{0};
  std::uint64_t torn_writes{0};
  std::uint64_t failed_syncs{0};
  bool crashed{false};
};

class FaultyEnv final : public Env {
 public:
  explicit FaultyEnv(Env& base, StorageFaultPlan plan = {});
  ~FaultyEnv() override;

  std::unique_ptr<File> open(const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void make_dirs(const std::string& path) override;

  StorageFaultCounters counters() const;
  bool crashed() const;
  /// "Reboot": clears the crashed state and installs the next fault plan.
  /// Files opened before the crash stay dead; reopen through the env.
  void revive(StorageFaultPlan next_plan = {});

  /// Shared between the env and every FaultyFile it has opened (defined in
  /// the .cpp; public so the file wrapper can name it).
  struct State;

 private:
  std::shared_ptr<State> state_;
  Env& base_;
};

}  // namespace rdb::storage
