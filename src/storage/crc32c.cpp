#include "storage/crc32c.h"

#include <array>

namespace rdb::storage {

namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i)
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

}  // namespace rdb::storage
