// Storage environment abstraction: every file operation PageDb and the WAL
// perform goes through Env/File so the fault-injection layer (faulty_env.h)
// can sit underneath them — the storage-side sibling of FaultyTransport.
//
// Error model: failures are THROWN as StorageError with a named code, never
// swallowed. fsync failure in particular is fail-stop by contract — after the
// kernel reports a lost write-back there is no way to know what reached the
// platter, so retrying fsync and continuing ("fsyncgate") silently drops
// committed data. Callers either propagate (replica goes down) or translate
// into their own fail-stop state (Wal::commit).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace rdb::storage {

enum class StorageErrc : std::uint8_t {
  kOpenFailed = 1,
  kReadFailed,
  kWriteFailed,
  kSyncFailed,      // fsync reported an error: fail-stop, data may be lost
  kTruncateFailed,
  kRemoveFailed,
  kRenameFailed,
  kCrashPoint,      // injected: the faulty env "lost power" (faulty_env.h)
  kFailStop,        // the component already failed and refuses further work
};

const char* storage_errc_name(StorageErrc c);

class StorageError : public std::runtime_error {
 public:
  StorageError(StorageErrc code, const std::string& what)
      : std::runtime_error(std::string(storage_errc_name(code)) + ": " + what),
        code_(code) {}
  StorageErrc code() const { return code_; }

 private:
  StorageErrc code_;
};

/// A random-access file. Offsets are explicit (pread/pwrite style) so callers
/// never depend on a shared cursor. Implementations are NOT thread-safe; the
/// owner serializes access (PageDb under mu_, Wal via its single owner).
class File {
 public:
  virtual ~File() = default;

  /// Reads up to `n` bytes at `offset`; returns the bytes actually read
  /// (short at EOF). Throws StorageError(kReadFailed) on I/O error.
  virtual std::size_t read(std::uint64_t offset, void* out, std::size_t n) = 0;
  /// Writes all `n` bytes at `offset` or throws StorageError(kWriteFailed).
  virtual void write(std::uint64_t offset, const void* data,
                     std::size_t n) = 0;
  /// fsync. Throws StorageError(kSyncFailed) when the kernel reports failure.
  virtual void sync() = 0;
  virtual std::uint64_t size() = 0;
  virtual void truncate(std::uint64_t len) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` read-write, creating it if missing.
  virtual std::unique_ptr<File> open(const std::string& path) = 0;
  virtual bool exists(const std::string& path) = 0;
  virtual void remove(const std::string& path) = 0;
  /// Atomic rename (the log-compaction commit point: write tmp, sync, rename).
  virtual void rename(const std::string& from, const std::string& to) = 0;
  /// Creates `path` and any missing parents (mkdir -p). Deployment setup,
  /// not the data path — fault layers pass it straight through.
  virtual void make_dirs(const std::string& path) = 0;

  /// The process-wide real (POSIX) environment.
  static Env& real();
};

}  // namespace rdb::storage
