#include "storage/faulty_env.h"

#include "common/sync.h"

namespace rdb::storage {

struct FaultyEnv::State {
  // Unranked: the env is reached from under PageDb's kStorage lock in tests
  // and from the replica's execute thread in drills; the internal critical
  // sections are leaf-level counter updates with no nested acquisition.
  mutable Mutex mu;
  StorageFaultPlan plan RDB_GUARDED_BY(mu);
  StorageFaultCounters counters RDB_GUARDED_BY(mu);

  /// Called at the top of every operation: a crashed env refuses all work.
  void check_alive() const {
    MutexLock lock(mu);
    if (counters.crashed)
      throw StorageError(StorageErrc::kCrashPoint,
                         "environment crashed (power loss simulation)");
  }

  /// Accounts one write of `n` bytes. Returns the number of bytes that still
  /// reach the file: `n` normally, a torn prefix at the crash point. Marks
  /// the env crashed at the crash point; the CALLER performs the torn prefix
  /// write and then throws kCrashPoint.
  std::size_t admit_write(std::size_t n, bool* crash_now) {
    MutexLock lock(mu);
    if (counters.crashed)
      throw StorageError(StorageErrc::kCrashPoint,
                         "environment crashed (power loss simulation)");
    ++counters.writes;
    *crash_now = plan.crash_after_writes != 0 &&
                 counters.writes == plan.crash_after_writes;
    if (!*crash_now) return n;
    counters.crashed = true;
    std::size_t keep = n * plan.torn_write_percent / 100;
    if (keep < n) ++counters.torn_writes;
    return keep;
  }

  /// Accounts one sync; throws kSyncFailed exactly at the planned call.
  void admit_sync() {
    MutexLock lock(mu);
    if (counters.crashed)
      throw StorageError(StorageErrc::kCrashPoint,
                         "environment crashed (power loss simulation)");
    ++counters.syncs;
    if (plan.fail_sync_number != 0 &&
        counters.syncs == plan.fail_sync_number) {
      ++counters.failed_syncs;
      throw StorageError(StorageErrc::kSyncFailed,
                         "injected fsync failure (fsyncgate simulation)");
    }
  }
};

namespace {

class FaultyFile final : public File {
 public:
  FaultyFile(std::unique_ptr<File> base,
             std::shared_ptr<FaultyEnv::State> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  std::size_t read(std::uint64_t offset, void* out, std::size_t n) override {
    state_->check_alive();
    return base_->read(offset, out, n);
  }

  void write(std::uint64_t offset, const void* data, std::size_t n) override {
    bool crash_now = false;
    std::size_t keep = state_->admit_write(n, &crash_now);
    if (keep > 0) base_->write(offset, data, keep);
    if (crash_now)
      throw StorageError(StorageErrc::kCrashPoint,
                         "crash point hit (write " +
                             std::to_string(keep) + "/" + std::to_string(n) +
                             " bytes persisted)");
  }

  void sync() override {
    state_->admit_sync();
    base_->sync();
  }

  std::uint64_t size() override {
    state_->check_alive();
    return base_->size();
  }

  void truncate(std::uint64_t len) override {
    state_->check_alive();
    base_->truncate(len);
  }

 private:
  std::unique_ptr<File> base_;
  std::shared_ptr<FaultyEnv::State> state_;
};

}  // namespace

FaultyEnv::FaultyEnv(Env& base, StorageFaultPlan plan)
    : state_(std::make_shared<State>()), base_(base) {
  MutexLock lock(state_->mu);
  state_->plan = plan;
}

FaultyEnv::~FaultyEnv() = default;

std::unique_ptr<File> FaultyEnv::open(const std::string& path) {
  state_->check_alive();
  return std::make_unique<FaultyFile>(base_.open(path), state_);
}

bool FaultyEnv::exists(const std::string& path) {
  state_->check_alive();
  return base_.exists(path);
}

void FaultyEnv::remove(const std::string& path) {
  state_->check_alive();
  base_.remove(path);
}

void FaultyEnv::rename(const std::string& from, const std::string& to) {
  state_->check_alive();
  base_.rename(from, to);
}

void FaultyEnv::make_dirs(const std::string& path) {
  // Deployment setup, deliberately not fault-injected (see env.h).
  base_.make_dirs(path);
}

StorageFaultCounters FaultyEnv::counters() const {
  MutexLock lock(state_->mu);
  return state_->counters;
}

bool FaultyEnv::crashed() const {
  MutexLock lock(state_->mu);
  return state_->counters.crashed;
}

void FaultyEnv::revive(StorageFaultPlan next_plan) {
  MutexLock lock(state_->mu);
  state_->counters.crashed = false;
  state_->counters.writes = 0;
  state_->counters.syncs = 0;
  state_->plan = next_plan;
}

}  // namespace rdb::storage
