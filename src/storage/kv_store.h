// Storage-layer interface. The execute thread reads and writes records
// through this; §5.7 compares an in-memory implementation against an
// off-memory embedded database accessed through a blocking API call.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rdb::storage {

struct StoreStats {
  std::uint64_t reads{0};
  std::uint64_t writes{0};
  std::uint64_t read_misses{0};
};

class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual void put(std::string_view key, std::string_view value) = 0;
  virtual std::optional<std::string> get(std::string_view key) = 0;
  virtual bool contains(std::string_view key) = 0;
  virtual std::uint64_t size() const = 0;

  virtual StoreStats stats() const = 0;

  /// Human-readable backend name ("mem", "pagedb").
  virtual std::string name() const = 0;
};

}  // namespace rdb::storage
