// Storage-layer interface. The execute thread reads and writes records
// through this; §5.7 compares an in-memory implementation against an
// off-memory embedded database accessed through a blocking API call.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/det.h"

namespace rdb::storage {

struct StoreStats {
  std::uint64_t reads{0};
  std::uint64_t writes{0};
  std::uint64_t read_misses{0};
};

class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual void put(std::string_view key, std::string_view value) = 0;
  virtual std::optional<std::string> get(std::string_view key) = 0;
  virtual bool contains(std::string_view key) = 0;
  virtual std::uint64_t size() const = 0;

  virtual StoreStats stats() const = 0;

  /// Human-readable backend name ("mem", "pagedb").
  virtual std::string name() const = 0;

  /// Visits every live record, order UNSPECIFIED (hash-bucket or page order,
  /// which varies with allocation history). Not required to be consistent
  /// under concurrent writers — callers quiesce first (the snapshot capture
  /// runs on the execute thread, the sole writer). Anything that folds the
  /// visit order into a digest, fingerprint, or snapshot image must go
  /// through for_each_sorted instead — raw for_each is ONLY for
  /// order-insensitive consumers (counting, summing, draining).
  using VisitFn = std::function<void(std::string_view key,
                                     std::string_view value)>;
  virtual void for_each(const VisitFn& fn) = 0;

  /// Visits every live record in ascending key order: collects the
  /// (unordered) for_each output and sorts it before visiting. This is the
  /// determinism BARRIER for storage iteration — two replicas holding the
  /// same records observe the identical visit sequence regardless of hash
  /// seeding, stripe layout, or page allocation history, so digests and
  /// snapshot images built on top of it are byte-identical cluster-wide.
  /// Costs one O(n) copy + O(n log n) sort; listed (with justification) in
  /// scripts/determinism_allowlist.txt.
  RDB_DET_BARRIER void for_each_sorted(const VisitFn& fn) {
    std::vector<std::pair<std::string, std::string>> kvs;
    for_each([&kvs](std::string_view k, std::string_view v) {
      kvs.emplace_back(std::string(k), std::string(v));
    });
    std::sort(kvs.begin(), kvs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [k, v] : kvs) fn(k, v);
  }

  /// Discards every record (snapshot install replaces the whole image).
  virtual void clear() = 0;

  /// True when the backend survives a process crash (put + commit_wave
  /// reach disk). Replicas only truncate their consensus log against a
  /// durable store.
  virtual bool durable() const { return false; }

  /// Group-commit barrier: makes every preceding put durable (one fsync for
  /// the whole wave). No-op for non-durable backends.
  virtual void commit_wave() {}

  /// Stable-checkpoint hook: flush everything and truncate internal logs.
  /// No-op for non-durable backends.
  virtual void checkpoint() {}
};

}  // namespace rdb::storage
