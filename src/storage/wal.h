// Checksummed group-commit write-ahead log.
//
// Record layout (little-endian):
//   [magic u32][len u32][lsn u64][crc32c u32][payload: len bytes]
// The CRC covers lsn + payload, so neither a bit flip nor a record spliced
// from a recycled file region verifies. LSNs are contiguous from 1; a gap or
// repeat marks the end of valid history (a partially-overwritten tail).
//
// Group commit: append() only buffers in memory; commit() persists the whole
// pending wave with ONE write and (when sync_on_commit) ONE fsync. The
// caller's durability contract — e.g. "client responses leave only after the
// wave is durable" — hangs off commit() returning, not off append().
//
// Recovery: replay() scans the file and TRUNCATES at the first bad record
// (bad magic, length past EOF, CRC mismatch, LSN discontinuity) instead of
// replaying garbage or throwing away the good prefix. A torn tail is the
// expected shape of a crash, not corruption to die over.
//
// fsync failure is fail-stop: after a sync error the Wal refuses every
// further operation (StorageError(kFailStop)). Retrying fsync after the
// kernel reported a lost write-back silently drops data ("fsyncgate") —
// the only safe move is to crash and recover from the log's good prefix.
//
// Not internally synchronized: the owner serializes access (PageDb under its
// lock; ReplicaLog from the execute thread).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "storage/env.h"

namespace rdb::storage {

struct WalConfig {
  std::string path;
  Env* env{nullptr};         // nullptr = Env::real()
  bool sync_on_commit{true}; // fsync per commit() (group commit granularity)
};

struct WalStats {
  std::uint64_t records_appended{0};
  std::uint64_t commits{0};          // write+fsync waves
  std::uint64_t records_replayed{0};
  std::uint64_t truncated_bytes{0};  // bytes cut at the first bad record
  bool tail_truncated{false};
};

class Wal {
 public:
  explicit Wal(WalConfig config);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Scans existing records in order. Must run before the first append();
  /// truncates the file at the first torn/bad record. Safe on a fresh file.
  using ReplayFn = std::function<void(std::uint64_t lsn, BytesView payload)>;
  void replay(const ReplayFn& fn);

  /// Buffers one record; returns its LSN. Durable only after commit().
  std::uint64_t append(BytesView payload);

  /// Persists every buffered record: one write, one fsync (group commit).
  /// No-op when nothing is pending. Throws StorageError and enters the
  /// fail-stop state if the write or fsync fails.
  void commit();

  /// Truncates the log to empty (post-checkpoint: the data file now covers
  /// everything the log held). Buffered-but-uncommitted records are dropped.
  void reset();

  std::uint64_t next_lsn() const { return next_lsn_; }
  bool failed() const { return failed_; }
  const WalStats& stats() const { return stats_; }

 private:
  void ensure_usable() const;

  WalConfig config_;
  std::unique_ptr<File> file_;
  Bytes pending_;
  std::uint64_t next_lsn_{1};
  std::uint64_t file_end_{0};
  bool replayed_{false};
  bool failed_{false};
  WalStats stats_{};
};

}  // namespace rdb::storage
