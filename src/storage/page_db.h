// PageDB: a from-scratch file-backed paged key-value store.
//
// This is the repo's stand-in for the SQLite instance of §5.7 (see DESIGN.md
// §2): an embedded, persistent database that the execute thread reaches
// through a *blocking* API call, paying page-cache misses and real file I/O.
//
// On-disk layout (single data file + write-ahead log):
//   page 0           header {magic, page_size, bucket_count, page_count}
//   pages 1..D       bucket directory: u64 first-page id per bucket
//   pages D+1..      data pages: [next u64][used u16][records...]
// Record: [klen u16][vlen u32][flags u8][key][value]; flags bit0 = dead.
// Updates overwrite in place when the value length matches, otherwise mark
// the old record dead and append a fresh one (chaining a new page if the
// bucket is full).
//
// Durability: every put appends a logical redo record to the WAL
// (storage/wal.h: CRC32C per record, LSN-stamped). With sync_wal the record
// is fsynced per put; otherwise records buffer until commit_wave() — ONE
// write + fsync for the whole execution wave (group commit) — or
// checkpoint(). open() replays the WAL (idempotent re-puts, truncating at
// the first torn/bad record) before serving. checkpoint() flushes dirty
// pages, fsyncs the data file, and truncates the WAL. fsync failure anywhere
// is fail-stop: a named StorageError propagates and the store refuses to
// pretend the data is safe.
//
// Crash consistency: the data file may hold a mix of old/new pages after a
// crash (evictions flush mid-run), but every post-checkpoint put is in the
// WAL, and replay repairs the image. A crash between "mark old record dead"
// and "append resized record" landing on disk can leave duplicate live
// records for one key; get() returns the first (repaired by replay), and
// put_locked() retires the stragglers on the next write of that key.
//
// All file I/O goes through storage/env.h, so tests can run the whole store
// against FaultyEnv crash points.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/det.h"
#include "common/rtzone.h"
#include "common/sync.h"
#include "storage/env.h"
#include "storage/kv_store.h"
#include "storage/wal.h"

namespace rdb::storage {

struct PageDbConfig {
  std::string path;            // data file; WAL lives at path + ".wal"
  std::uint32_t bucket_count{4096};
  std::size_t cache_pages{256};
  bool sync_wal{false};        // fsync the WAL on every put (no group commit)
  Env* env{nullptr};           // nullptr = Env::real()
};

struct PageDbStats {
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  std::uint64_t pages_flushed{0};
  std::uint64_t wal_appends{0};
  std::uint64_t wal_replayed{0};
  std::uint64_t wal_commits{0};          // group-commit fsync waves
  std::uint64_t wal_truncated_bytes{0};  // torn tail cut during recovery
  bool wal_tail_truncated{false};
};

class PageDb final : public KvStore {
 public:
  static constexpr std::size_t kPageSize = 4096;

  /// Opens (creating or recovering as needed). Throws StorageError on I/O
  /// failure, std::runtime_error on a corrupt header.
  explicit PageDb(PageDbConfig config);
  ~PageDb() override;

  PageDb(const PageDb&) = delete;
  PageDb& operator=(const PageDb&) = delete;

  void put(std::string_view key, std::string_view value) override;
  /// HOT BARRIER: reads ride the in-memory page cache; a miss pays one
  /// bounded page fetch (plus at most one eviction flush), both counted in
  /// StoreStats — storage latency is the execution layer's budget, priced
  /// by the paper's cost model, not hidden consensus-pipeline work.
  RDB_HOT_BARRIER
  std::optional<std::string> get(std::string_view key) override;
  /// HOT BARRIER: same bounded page-cache read path as get().
  RDB_HOT_BARRIER
  bool contains(std::string_view key) override;
  std::uint64_t size() const override;
  StoreStats stats() const override;
  std::string name() const override { return "pagedb"; }
  void for_each(const VisitFn& fn) override;
  /// HOT BARRIER: test/reset facility — rewrites the store from scratch;
  /// never called per message (snapshot install is the one runtime caller,
  /// itself behind the stalled-rejoin barrier).
  RDB_HOT_BARRIER
  void clear() override;
  bool durable() const override { return true; }

  /// Group commit: one write + fsync makes every buffered put durable.
  void commit_wave() override;

  /// Flushes all dirty pages + header, fsyncs the data file, truncates the
  /// WAL. Fail-stop on fsync error.
  void checkpoint() override;

  PageDbStats page_stats() const;

 private:
  struct Page {
    std::unique_ptr<std::uint8_t[]> data;
    bool dirty{false};
    std::uint64_t lru_tick{0};
  };

  // --- file + cache plumbing (enforced: caller holds mu_) ---
  Page& fetch_page(std::uint64_t page_id) RDB_REQUIRES(mu_);
  std::uint64_t allocate_page() RDB_REQUIRES(mu_);
  RDB_DET_BARRIER void evict_if_needed() RDB_REQUIRES(mu_);
  void flush_page(std::uint64_t page_id, Page& page) RDB_REQUIRES(mu_);
  void read_page_from_file(std::uint64_t page_id, std::uint8_t* out)
      RDB_REQUIRES(mu_);
  void write_header() RDB_REQUIRES(mu_);
  void read_header() RDB_REQUIRES(mu_);
  void init_fresh_file() RDB_REQUIRES(mu_);
  void checkpoint_locked() RDB_REQUIRES(mu_);
  void count_records() RDB_REQUIRES(mu_);

  // --- bucket directory ---
  std::uint64_t directory_pages() const;
  std::uint64_t bucket_head(std::uint32_t bucket) RDB_REQUIRES(mu_);
  void set_bucket_head(std::uint32_t bucket, std::uint64_t page_id)
      RDB_REQUIRES(mu_);

  // --- record operations (enforced: caller holds mu_) ---
  bool put_locked(std::string_view key, std::string_view value)
      RDB_REQUIRES(mu_);
  std::optional<std::string> get_locked(std::string_view key)
      RDB_REQUIRES(mu_);

  // --- WAL ---
  void wal_append(std::string_view key, std::string_view value)
      RDB_REQUIRES(mu_);
  void wal_replay() RDB_REQUIRES(mu_);

  PageDbConfig config_;

  mutable Mutex mu_{LockRank::kStorage, "PageDb"};
  // The file handles are only touched by the locked helpers above (plus the
  // constructor/destructor, where no other thread can observe the object).
  std::unique_ptr<File> file_ RDB_GUARDED_BY(mu_);
  std::unique_ptr<Wal> wal_ RDB_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, Page> cache_ RDB_GUARDED_BY(mu_);
  std::uint64_t lru_clock_ RDB_GUARDED_BY(mu_) = 0;
  std::uint64_t page_count_ RDB_GUARDED_BY(mu_) = 0;
  std::uint64_t record_count_ RDB_GUARDED_BY(mu_) = 0;
  StoreStats kv_stats_ RDB_GUARDED_BY(mu_);
  PageDbStats page_stats_ RDB_GUARDED_BY(mu_);
};

}  // namespace rdb::storage
