#include "storage/mem_store.h"

#include <functional>

namespace rdb::storage {

MemStore::Stripe& MemStore::stripe_for(std::string_view key) {
  return stripes_[std::hash<std::string_view>{}(key) % kStripes];
}

const MemStore::Stripe& MemStore::stripe_for(std::string_view key) const {
  return stripes_[std::hash<std::string_view>{}(key) % kStripes];
}

void MemStore::put(std::string_view key, std::string_view value) {
  Stripe& s = stripe_for(key);
  {
    MutexLock lock(s.mu);
    s.map.insert_or_assign(std::string(key), std::string(value));
  }
  MutexLock lock(stats_mu_);
  ++stats_.writes;
}

std::optional<std::string> MemStore::get(std::string_view key) {
  Stripe& s = stripe_for(key);
  std::optional<std::string> out;
  {
    MutexLock lock(s.mu);
    auto it = s.map.find(std::string(key));
    if (it != s.map.end()) out = it->second;
  }
  MutexLock lock(stats_mu_);
  ++stats_.reads;
  if (!out) ++stats_.read_misses;
  return out;
}

bool MemStore::contains(std::string_view key) {
  Stripe& s = stripe_for(key);
  MutexLock lock(s.mu);
  return s.map.find(std::string(key)) != s.map.end();
}

std::uint64_t MemStore::size() const {
  std::uint64_t total = 0;
  for (const auto& s : stripes_) {
    MutexLock lock(s.mu);
    total += s.map.size();
  }
  return total;
}

StoreStats MemStore::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

void MemStore::for_each(const VisitFn& fn) {
  // Stripes are visited one at a time (same discipline as size()); callers
  // needing a consistent image quiesce writers first.
  //
  // Visit order is stripe-then-bucket order — NONDETERMINISTIC across
  // replicas (libstdc++ hash seeding and rehash history differ). Raw
  // for_each is therefore fit only for order-insensitive consumers;
  // anything digest-bound goes through KvStore::for_each_sorted, which
  // sorts this output before visiting (the determinism barrier).
  for (auto& s : stripes_) {
    MutexLock lock(s.mu);
    for (const auto& [k, v] : s.map) fn(k, v);
  }
}

void MemStore::clear() {
  for (auto& s : stripes_) {
    MutexLock lock(s.mu);
    s.map.clear();
  }
}

}  // namespace rdb::storage
