// SHA-512 (FIPS 180-4), implemented from scratch. Required by Ed25519
// (RFC 8032 hashes with SHA-512 throughout).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace rdb::crypto {

using Digest512 = std::array<std::uint8_t, 64>;

class Sha512 {
 public:
  Sha512() { reset(); }

  void reset();
  void update(BytesView data);
  void update(std::string_view s) {
    update(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                     s.size()));
  }
  Digest512 finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, 128> buffer_;
  std::size_t buffer_len_{0};
  std::uint64_t total_len_{0};
};

Digest512 sha512(BytesView data);
Digest512 sha512(std::string_view s);

}  // namespace rdb::crypto
