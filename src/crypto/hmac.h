// HMAC-SHA256 (RFC 2104 / FIPS 198-1) built on the local SHA-256.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace rdb::crypto {

/// One-shot HMAC-SHA256 of `data` under `key`.
Digest hmac_sha256(BytesView key, BytesView data);

}  // namespace rdb::crypto
