// SHA-256 (FIPS 180-4), implemented from scratch. Incremental interface plus
// one-shot helpers. Tested against the NIST vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace rdb::crypto {

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  void update(std::string_view s) {
    update(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                     s.size()));
  }
  /// Finalizes and returns the digest. The object must be reset() before
  /// reuse.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_{0};
  std::uint64_t total_len_{0};
};

/// One-shot SHA-256.
Digest sha256(BytesView data);
Digest sha256(std::string_view s);

}  // namespace rdb::crypto
